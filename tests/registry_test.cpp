// Kernel registry invariants: the algorithm enums and the desc table
// grow in lockstep (every dispatchable value maps to exactly one desc),
// names round-trip, the degradation ladder reproduces the Supervisor's
// pre-registry hard-coded order, and the architecture preset table
// changes dispatch where (and only where) it should.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "vsparse/common/rng.hpp"
#include "vsparse/formats/generate.hpp"
#include "vsparse/gpusim/arch.hpp"
#include "vsparse/gpusim/device.hpp"
#include "vsparse/kernels/dispatch.hpp"
#include "vsparse/kernels/registry.hpp"
#include "vsparse/serve/error.hpp"

namespace vsparse::kernels {
namespace {

std::vector<const char*> ladder_names(KernelOp op, const DispatchShape& s) {
  std::vector<const char*> names;
  for (const LadderEntry& rung : fallback_ladder(op, s)) {
    names.push_back(rung.desc->name);
  }
  return names;
}

TEST(Registry, EveryDispatchableAlgorithmHasExactlyOneDesc) {
  for (int a = 1; a < static_cast<int>(SpmmAlgorithm::kNumSpmmAlgorithms);
       ++a) {
    int count = 0;
    for (const KernelDesc& desc : kernel_registry()) {
      if (desc.op == KernelOp::kSpmm && desc.algorithm == a) ++count;
    }
    EXPECT_EQ(count, 1) << "SpmmAlgorithm value " << a;
  }
  for (int a = 1; a < static_cast<int>(SddmmAlgorithm::kNumSddmmAlgorithms);
       ++a) {
    int count = 0;
    for (const KernelDesc& desc : kernel_registry()) {
      if (desc.op == KernelOp::kSddmm && desc.algorithm == a) ++count;
    }
    EXPECT_EQ(count, 1) << "SddmmAlgorithm value " << a;
  }
}

TEST(Registry, AutoIsNotARegisteredAlgorithm) {
  EXPECT_EQ(find_kernel(KernelOp::kSpmm,
                        static_cast<int>(SpmmAlgorithm::kAuto)),
            nullptr);
  EXPECT_EQ(find_kernel(KernelOp::kSddmm,
                        static_cast<int>(SddmmAlgorithm::kAuto)),
            nullptr);
  EXPECT_THROW(kernel_for(SpmmAlgorithm::kAuto), vsparse::Error);
  EXPECT_THROW(kernel_for(SddmmAlgorithm::kAuto), vsparse::Error);
}

// serve_rung_of (serve/supervisor.cpp) switches on the raw algorithm
// value for both ops at once; this pin keeps the two enums aligned.
TEST(Registry, SpmmAndSddmmEnumeratorValuesAlign) {
  EXPECT_EQ(static_cast<int>(SpmmAlgorithm::kAuto),
            static_cast<int>(SddmmAlgorithm::kAuto));
  EXPECT_EQ(static_cast<int>(SpmmAlgorithm::kOctet),
            static_cast<int>(SddmmAlgorithm::kOctet));
  EXPECT_EQ(static_cast<int>(SpmmAlgorithm::kWmmaWarp),
            static_cast<int>(SddmmAlgorithm::kWmmaWarp));
  EXPECT_EQ(static_cast<int>(SpmmAlgorithm::kFpuSubwarp),
            static_cast<int>(SddmmAlgorithm::kFpuSubwarp));
  EXPECT_EQ(static_cast<int>(SpmmAlgorithm::kCsrFine),
            static_cast<int>(SddmmAlgorithm::kCsrFine));
}

TEST(Registry, NamesAreUniqueAndRoundTrip) {
  std::set<std::string> seen;
  for (const KernelDesc& desc : kernel_registry()) {
    EXPECT_TRUE(seen.insert(desc.name).second) << desc.name;
    EXPECT_EQ(find_kernel(desc.name), &desc) << desc.name;
  }
  EXPECT_EQ(find_kernel("no_such_kernel"), nullptr);
}

TEST(Registry, ThunksMatchTheOp) {
  for (const KernelDesc& desc : kernel_registry()) {
    if (desc.op == KernelOp::kSpmm) {
      EXPECT_NE(desc.spmm_launch, nullptr) << desc.name;
      EXPECT_EQ(desc.sddmm_launch, nullptr) << desc.name;
      EXPECT_EQ(desc.spmm_abft_launch != nullptr, desc.has_abft) << desc.name;
    } else {
      EXPECT_NE(desc.sddmm_launch, nullptr) << desc.name;
      EXPECT_EQ(desc.spmm_launch, nullptr) << desc.name;
      EXPECT_FALSE(desc.has_abft) << desc.name;
    }
  }
}

TEST(Registry, StaticAutoHeuristicUnchanged) {
  EXPECT_EQ(resolve_auto_spmm({64, 64, 64, 1, 0.5}),
            SpmmAlgorithm::kFpuSubwarp);
  EXPECT_EQ(resolve_auto_spmm({64, 64, 64, 2, 0.5}), SpmmAlgorithm::kOctet);
  EXPECT_EQ(resolve_auto_sddmm({64, 64, 64, 1, 0.5}),
            SddmmAlgorithm::kFpuSubwarp);
  EXPECT_EQ(resolve_auto_sddmm({64, 64, 64, 8, 0.5}), SddmmAlgorithm::kOctet);
}

TEST(Registry, EligibilityPinsPreRegistrySemantics) {
  const KernelDesc& octet = kernel_for(SpmmAlgorithm::kOctet);
  EXPECT_TRUE(octet.eligible({64, 64, 64, 4, 0.5}));
  EXPECT_FALSE(octet.eligible({64, 64, 63, 4, 0.5}));   // n % 64
  EXPECT_FALSE(octet.eligible({64, 64, 64, 1, 0.5}));   // v >= 2
  EXPECT_FALSE(octet.supports_v(1));
  EXPECT_TRUE(octet.supports_v(8));

  const KernelDesc& fpu = kernel_for(SpmmAlgorithm::kFpuSubwarp);
  EXPECT_TRUE(fpu.eligible({64, 64, 16, 1, 0.5}));
  EXPECT_FALSE(fpu.eligible({64, 64, 17, 1, 0.5}));     // n % 16

  const KernelDesc& csr = kernel_for(SpmmAlgorithm::kCsrFine);
  EXPECT_TRUE(csr.eligible({64, 64, 32, 1, 0.5}));
  EXPECT_FALSE(csr.eligible({64, 64, 32, 2, 0.5}));     // v == 1 only

  const KernelDesc* dense = find_kernel("spmm_dense_gemm");
  ASSERT_NE(dense, nullptr);
  EXPECT_FALSE(dense->dispatchable());
  EXPECT_TRUE(dense->eligible({64, 16, 64, 4, 0.5}));
  EXPECT_FALSE(dense->eligible({65, 16, 64, 4, 0.5}));  // m % 64
}

// The ladder must be byte-for-byte the Supervisor's pre-registry
// hard-coded order: {octet+ABFT, blockedEll, dense, fpu, csr} for SpMM
// and {wmma, fpu, csr} for SDDMM, eligibility-filtered.
TEST(Registry, FallbackLadderReproducesHardCodedOrder) {
  const DispatchShape tcu{64, 16, 64, 4, 0.5};
  EXPECT_EQ(ladder_names(KernelOp::kSpmm, tcu),
            (std::vector<const char*>{"spmm_octet", "spmm_blocked_ell",
                                      "spmm_dense_gemm", "spmm_fpu_subwarp"}));
  const auto rungs = fallback_ladder(KernelOp::kSpmm, tcu);
  EXPECT_TRUE(rungs.front().abft);  // the octet rung runs with ABFT
  for (std::size_t i = 1; i < rungs.size(); ++i) {
    EXPECT_FALSE(rungs[i].abft);
  }

  const DispatchShape scalar{64, 16, 64, 1, 0.5};
  EXPECT_EQ(ladder_names(KernelOp::kSpmm, scalar),
            (std::vector<const char*>{"spmm_dense_gemm", "spmm_fpu_subwarp",
                                      "spmm_csr_fine"}));

  EXPECT_EQ(ladder_names(KernelOp::kSddmm, tcu),
            (std::vector<const char*>{"sddmm_wmma_warp",
                                      "sddmm_fpu_subwarp"}));
  EXPECT_EQ(ladder_names(KernelOp::kSddmm, scalar),
            (std::vector<const char*>{"sddmm_fpu_subwarp",
                                      "sddmm_csr_fine"}));
}

TEST(ArchPresets, TableRoundTripsAndRejectsUnknownNames) {
  for (const gpusim::ArchPreset& preset : gpusim::arch_presets()) {
    const gpusim::DeviceConfig cfg = gpusim::DeviceConfig::preset(preset.name);
    EXPECT_STREQ(cfg.arch, preset.name);
  }
  EXPECT_THROW(gpusim::DeviceConfig::preset("kepler-k80"), vsparse::Error);
  EXPECT_EQ(gpusim::find_arch_preset("kepler-k80"), nullptr);
}

TEST(ArchPresets, OnlyTheHmmaSwitchPresetSetsTheFlag) {
  for (const gpusim::ArchPreset& preset : gpusim::arch_presets()) {
    const gpusim::DeviceConfig cfg = preset.make();
    EXPECT_EQ(cfg.hmma_switch,
              std::string(preset.name) == "volta-hmma-switch")
        << preset.name;
  }
}

// Per-preset dispatch: the same SDDMM call picks the Fig. 15
// "mma (arch)" inverted-pattern variant on the HMMA-SWITCH preset and
// the paper's default "mma (reg)" everywhere else.
TEST(ArchPresets, HmmaSwitchPresetChangesSddmmVariant) {
  Rng rng(31);
  DenseMatrix<half_t> a(32, 64);
  a.fill_random_int(rng);
  DenseMatrix<half_t> b(64, 64, Layout::kColMajor);
  b.fill_random_int(rng);
  const Cvs mask = make_cvs_mask(32, 64, 4, 0.6, rng);

  const auto profile_on = [&](const char* arch) {
    gpusim::DeviceConfig cfg = gpusim::DeviceConfig::preset(arch);
    cfg.dram_capacity = 128 << 20;
    gpusim::Device dev(cfg);
    auto da = to_device(dev, a);
    auto db = to_device(dev, b);
    auto dmask = to_device(dev, mask);
    auto out = dev.alloc<half_t>(mask.col_idx.size() *
                                 static_cast<std::size_t>(mask.v));
    return sddmm(dev, da, db, dmask, out).config.profile.name;
  };

  EXPECT_EQ(profile_on("volta-v100"), "sddmm_octet_reg_v4");
  EXPECT_EQ(profile_on("volta-hmma-switch"), "sddmm_octet_arch_v4");
  EXPECT_EQ(profile_on("ampere-a100"), "sddmm_octet_reg_v4");
}

}  // namespace
}  // namespace vsparse::kernels

// Tests for the device arena, launch engine, and warp memory ops —
// including the coalescing/sector accounting the paper's guideline V
// analysis depends on.
#include "vsparse/gpusim/engine/lanes.hpp"
#include "vsparse/gpusim/engine/launch.hpp"
#include "vsparse/gpusim/engine/launch_config.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "vsparse/fp16/vec.hpp"
#include "vsparse/gpusim/device.hpp"

namespace vsparse::gpusim {
namespace {

DeviceConfig small_config() {
  DeviceConfig cfg;
  cfg.dram_capacity = 16 << 20;
  cfg.num_sms = 4;
  return cfg;
}

TEST(Device, AllocAlignmentAndZeroing) {
  Device dev(small_config());
  auto a = dev.alloc<float>(10);
  auto b = dev.alloc<float>(10);
  EXPECT_EQ(a.addr() % 256, 0u);
  EXPECT_EQ(b.addr() % 256, 0u);
  EXPECT_NE(a.addr(), b.addr());
  for (float v : a.host()) EXPECT_EQ(v, 0.0f);
}

TEST(Device, HostViewRoundTrip) {
  Device dev(small_config());
  std::vector<int> src(100);
  std::iota(src.begin(), src.end(), 0);
  auto buf = dev.alloc_copy<int>(src);
  auto view = buf.host();
  EXPECT_EQ(view[42], 42);
  view[42] = -1;
  EXPECT_EQ(buf.host()[42], -1);
}

TEST(Device, PeakMemoryAccounting) {
  Device dev(small_config());
  auto a = dev.alloc<std::uint8_t>(1000);
  EXPECT_EQ(dev.live_bytes(), 1000u);
  auto b = dev.alloc<std::uint8_t>(500);
  EXPECT_EQ(dev.live_bytes(), 1500u);
  EXPECT_EQ(dev.peak_bytes(), 1500u);
  dev.free(a);
  EXPECT_EQ(dev.live_bytes(), 500u);
  EXPECT_EQ(dev.peak_bytes(), 1500u);  // peak sticks
  dev.free(b);
  EXPECT_EQ(dev.live_bytes(), 0u);
  EXPECT_THROW(dev.free(b), CheckError);  // double free detected
}

TEST(Device, OutOfBoundsTranslateThrows) {
  Device dev(small_config());
  auto a = dev.alloc<float>(4);
  EXPECT_NO_THROW(dev.translate(a.addr(), 16));
  EXPECT_THROW(dev.translate(a.addr() + (16 << 20), 4), CheckError);
}

TEST(Device, ExhaustionThrows) {
  DeviceConfig cfg = small_config();
  cfg.dram_capacity = 1 << 10;
  Device dev(cfg);
  EXPECT_THROW(dev.alloc<std::uint8_t>(2048), Error);  // kOutOfMemory
}

TEST(Launch, ValidatesConfig) {
  Device dev(small_config());
  LaunchConfig cfg;
  cfg.grid = 0;
  EXPECT_THROW(launch(dev, cfg, [](Cta&) {}), CheckError);
  cfg.grid = 1;
  cfg.cta_threads = 33;
  EXPECT_THROW(launch(dev, cfg, [](Cta&) {}), CheckError);
  cfg.cta_threads = 2048;
  EXPECT_THROW(launch(dev, cfg, [](Cta&) {}), CheckError);
  cfg.cta_threads = 32;
  cfg.smem_bytes = 1 << 20;
  EXPECT_THROW(launch(dev, cfg, [](Cta&) {}), CheckError);
}

TEST(Launch, CtaIdentityAndSmRoundRobin) {
  Device dev(small_config());
  LaunchConfig cfg;
  cfg.grid = 9;
  std::vector<int> sm_of_cta(9, -1);
  KernelStats s = launch(dev, cfg, [&](Cta& cta) {
    sm_of_cta[static_cast<std::size_t>(cta.cta_id())] = cta.sm_id();
    EXPECT_EQ(cta.num_ctas(), 9);
  });
  EXPECT_EQ(s.ctas_launched, 9u);
  EXPECT_EQ(s.warps_launched, 9u);
  EXPECT_EQ(sm_of_cta[0], 0);
  EXPECT_EQ(sm_of_cta[4], 0);  // 4 SMs -> CTA 4 wraps to SM 0
  EXPECT_EQ(sm_of_cta[5], 1);
}

TEST(WarpMemory, LdgMovesDataAndCountsWidth) {
  Device dev(small_config());
  std::vector<float> src(32);
  std::iota(src.begin(), src.end(), 100.0f);
  auto buf = dev.alloc_copy<float>(src);

  LaunchConfig cfg;
  Lanes<float> got{};
  KernelStats s = launch(dev, cfg, [&](Cta& cta) {
    Warp w = cta.warp(0);
    AddrLanes addr;
    for (int lane = 0; lane < 32; ++lane) {
      addr[static_cast<std::size_t>(lane)] =
          buf.addr(static_cast<std::size_t>(lane));
    }
    w.ldg(addr, got);
  });
  for (int lane = 0; lane < 32; ++lane) {
    EXPECT_EQ(got[static_cast<std::size_t>(lane)],
              100.0f + static_cast<float>(lane));
  }
  EXPECT_EQ(s.op(Op::kLdg), 1u);
  EXPECT_EQ(s.ldg32, 1u);
  EXPECT_EQ(s.global_load_requests, 1u);
  // 32 lanes x 4 B contiguous = 128 B = 4 sectors: perfectly coalesced.
  EXPECT_EQ(s.global_load_sectors, 4u);
}

TEST(WarpMemory, Ldg128Coalescing) {
  // 32 lanes each loading 16 B contiguously = 512 B = 16 sectors.
  Device dev(small_config());
  auto buf = dev.alloc<half8>(64);
  LaunchConfig cfg;
  KernelStats s = launch(dev, cfg, [&](Cta& cta) {
    Warp w = cta.warp(0);
    AddrLanes addr;
    Lanes<half8> dst;
    for (int lane = 0; lane < 32; ++lane) {
      addr[static_cast<std::size_t>(lane)] =
          buf.addr(static_cast<std::size_t>(lane));
    }
    w.ldg(addr, dst);
  });
  EXPECT_EQ(s.ldg128, 1u);
  EXPECT_EQ(s.global_load_sectors, 16u);
  EXPECT_DOUBLE_EQ(s.sectors_per_request(), 16.0);
}

TEST(WarpMemory, StridedAccessWastesSectors) {
  // 32 lanes each loading 2 B with a 32 B stride touch 32 distinct
  // sectors — the uncoalesced pattern guideline V warns about.
  Device dev(small_config());
  auto buf = dev.alloc<half_t>(1024);
  LaunchConfig cfg;
  KernelStats s = launch(dev, cfg, [&](Cta& cta) {
    Warp w = cta.warp(0);
    AddrLanes addr;
    Lanes<half_t> dst;
    for (int lane = 0; lane < 32; ++lane) {
      addr[static_cast<std::size_t>(lane)] =
          buf.addr(static_cast<std::size_t>(lane) * 16);
    }
    w.ldg(addr, dst);
  });
  EXPECT_EQ(s.ldg16, 1u);
  EXPECT_EQ(s.global_load_sectors, 32u);
}

TEST(WarpMemory, BroadcastLoadIsSingleSector) {
  Device dev(small_config());
  auto buf = dev.alloc<float>(8);
  LaunchConfig cfg;
  KernelStats s = launch(dev, cfg, [&](Cta& cta) {
    Warp w = cta.warp(0);
    AddrLanes addr;
    Lanes<float> dst;
    addr.fill(buf.addr());
    w.ldg(addr, dst);
  });
  EXPECT_EQ(s.global_load_sectors, 1u);
}

TEST(WarpMemory, PredicatedLanesDoNotTouchMemory) {
  Device dev(small_config());
  auto buf = dev.alloc<float>(32);
  LaunchConfig cfg;
  KernelStats s = launch(dev, cfg, [&](Cta& cta) {
    Warp w = cta.warp(0);
    AddrLanes addr{};  // lane 0 valid; others would be OOB if active
    addr[0] = buf.addr();
    for (int lane = 1; lane < 32; ++lane) {
      addr[static_cast<std::size_t>(lane)] = 1 << 30;  // way out of bounds
    }
    Lanes<float> dst{};
    w.ldg(addr, dst, 0x1u);
  });
  EXPECT_EQ(s.global_load_sectors, 1u);
}

TEST(WarpMemory, L1HitsOnReuse) {
  Device dev(small_config());
  auto buf = dev.alloc<float>(32);
  LaunchConfig cfg;
  KernelStats s = launch(dev, cfg, [&](Cta& cta) {
    Warp w = cta.warp(0);
    AddrLanes addr;
    Lanes<float> dst;
    for (int lane = 0; lane < 32; ++lane) {
      addr[static_cast<std::size_t>(lane)] =
          buf.addr(static_cast<std::size_t>(lane));
    }
    w.ldg(addr, dst);
    w.ldg(addr, dst);
  });
  EXPECT_EQ(s.l1_sector_misses, 4u);
  EXPECT_EQ(s.l1_sector_hits, 4u);
  EXPECT_EQ(s.dram_read_bytes, 128u);
}

TEST(WarpMemory, L1FlushedBetweenLaunchesL2Persists) {
  Device dev(small_config());
  auto buf = dev.alloc<float>(32);
  LaunchConfig cfg;
  auto body = [&](Cta& cta) {
    Warp w = cta.warp(0);
    AddrLanes addr;
    Lanes<float> dst;
    for (int lane = 0; lane < 32; ++lane) {
      addr[static_cast<std::size_t>(lane)] =
          buf.addr(static_cast<std::size_t>(lane));
    }
    w.ldg(addr, dst);
  };
  launch(dev, cfg, body);
  KernelStats s2 = launch(dev, cfg, body);
  EXPECT_EQ(s2.l1_sector_misses, 4u);  // L1 was invalidated
  EXPECT_EQ(s2.l2_sector_hits, 4u);    // but L2 kept the data
  EXPECT_EQ(s2.dram_read_bytes, 0u);
}

TEST(WarpMemory, StoreVisibleToSubsequentLoad) {
  Device dev(small_config());
  auto buf = dev.alloc<float>(32);
  LaunchConfig cfg;
  Lanes<float> got{};
  launch(dev, cfg, [&](Cta& cta) {
    Warp w = cta.warp(0);
    AddrLanes addr;
    for (int lane = 0; lane < 32; ++lane) {
      addr[static_cast<std::size_t>(lane)] =
          buf.addr(static_cast<std::size_t>(lane));
    }
    Lanes<float> vals;
    for (int lane = 0; lane < 32; ++lane) {
      vals[static_cast<std::size_t>(lane)] = static_cast<float>(lane * 2);
    }
    w.ldg(addr, got);  // pull into L1 first to exercise store coherence
    w.stg(addr, vals);
    w.ldg(addr, got);
  });
  for (int lane = 0; lane < 32; ++lane) {
    EXPECT_EQ(got[static_cast<std::size_t>(lane)], static_cast<float>(lane * 2));
  }
  EXPECT_EQ(buf.host()[5], 10.0f);
}

TEST(SharedMemory, RoundTripAndCounters) {
  Device dev(small_config());
  LaunchConfig cfg;
  cfg.smem_bytes = 4096;
  Lanes<float> got{};
  KernelStats s = launch(dev, cfg, [&](Cta& cta) {
    Warp w = cta.warp(0);
    Lanes<std::uint32_t> off;
    Lanes<float> vals;
    for (int lane = 0; lane < 32; ++lane) {
      off[static_cast<std::size_t>(lane)] = static_cast<std::uint32_t>(lane) * 4;
      vals[static_cast<std::size_t>(lane)] = static_cast<float>(lane) + 0.5f;
    }
    w.sts(off, vals);
    cta.sync();
    w.lds(off, got);
  });
  for (int lane = 0; lane < 32; ++lane) {
    EXPECT_EQ(got[static_cast<std::size_t>(lane)],
              static_cast<float>(lane) + 0.5f);
  }
  EXPECT_EQ(s.op(Op::kSts), 1u);
  EXPECT_EQ(s.op(Op::kLds), 1u);
  EXPECT_EQ(s.op(Op::kBar), 1u);
  // Conflict-free: one word per bank -> one wavefront each way.
  EXPECT_EQ(s.smem_wavefronts, 2u);
}

TEST(SharedMemory, BankConflictsExpandWavefronts) {
  Device dev(small_config());
  LaunchConfig cfg;
  cfg.smem_bytes = 8192;
  KernelStats s = launch(dev, cfg, [&](Cta& cta) {
    Warp w = cta.warp(0);
    Lanes<std::uint32_t> off;
    Lanes<float> dst;
    // All 32 lanes read different words in the same bank (stride 128 B).
    for (int lane = 0; lane < 32; ++lane) {
      off[static_cast<std::size_t>(lane)] =
          static_cast<std::uint32_t>(lane) * 128;
    }
    w.lds(off, dst);
  });
  EXPECT_EQ(s.smem_wavefronts, 32u);
}

TEST(SharedMemory, SameWordBroadcastsWithoutConflict) {
  Device dev(small_config());
  LaunchConfig cfg;
  cfg.smem_bytes = 1024;
  KernelStats s = launch(dev, cfg, [&](Cta& cta) {
    Warp w = cta.warp(0);
    Lanes<std::uint32_t> off;
    off.fill(64);
    Lanes<float> dst;
    w.lds(off, dst);
  });
  EXPECT_EQ(s.smem_wavefronts, 1u);
}

TEST(SharedMemory, OutOfBoundsThrows) {
  Device dev(small_config());
  LaunchConfig cfg;
  cfg.smem_bytes = 64;
  EXPECT_THROW(launch(dev, cfg,
                      [&](Cta& cta) {
                        Warp w = cta.warp(0);
                        Lanes<std::uint32_t> off{};
                        off[0] = 61;  // 61 + 4 > 64
                        Lanes<float> dst;
                        w.lds(off, dst, 0x1u);
                      }),
               CheckError);
}

TEST(Shuffle, ArbitraryPermutationAndXor) {
  Device dev(small_config());
  LaunchConfig cfg;
  Lanes<int> rotated{};
  Lanes<int> butterflied{};
  KernelStats s = launch(dev, cfg, [&](Cta& cta) {
    Warp w = cta.warp(0);
    Lanes<int> src;
    Lanes<int> idx;
    for (int lane = 0; lane < 32; ++lane) {
      src[static_cast<std::size_t>(lane)] = lane * 10;
      idx[static_cast<std::size_t>(lane)] = (lane + 1) % 32;
    }
    w.shfl(rotated, src, idx);
    w.shfl_xor(butterflied, src, 16);
  });
  for (int lane = 0; lane < 32; ++lane) {
    EXPECT_EQ(rotated[static_cast<std::size_t>(lane)], ((lane + 1) % 32) * 10);
    EXPECT_EQ(butterflied[static_cast<std::size_t>(lane)], (lane ^ 16) * 10);
  }
  EXPECT_EQ(s.op(Op::kShfl), 2u);
}

TEST(Shuffle, InPlaceAliasIsSafe) {
  Device dev(small_config());
  LaunchConfig cfg;
  launch(dev, cfg, [&](Cta& cta) {
    Warp w = cta.warp(0);
    Lanes<int> v;
    for (int lane = 0; lane < 32; ++lane) {
      v[static_cast<std::size_t>(lane)] = lane;
    }
    w.shfl_xor(v, v, 1);  // dst aliases src
    for (int lane = 0; lane < 32; ++lane) {
      EXPECT_EQ(v[static_cast<std::size_t>(lane)], lane ^ 1);
    }
  });
}

TEST(Warp, ManualCountingHook) {
  Device dev(small_config());
  LaunchConfig cfg;
  KernelStats s = launch(dev, cfg, [&](Cta& cta) {
    Warp w = cta.warp(0);
    w.count(Op::kImad, 7);
    w.count(Op::kIadd3, 3);
    w.fence();
  });
  EXPECT_EQ(s.op(Op::kImad), 7u);
  EXPECT_EQ(s.op(Op::kIadd3), 3u);
  EXPECT_EQ(s.op(Op::kBar), 1u);
}

TEST(Stats, AccumulateAndDerived) {
  KernelStats a, b;
  a.op(Op::kHmma) = 10;
  a.global_load_requests = 2;
  a.global_load_sectors = 20;
  b.op(Op::kHmma) = 5;
  b.l1_sector_misses = 4;
  a += b;
  EXPECT_EQ(a.op(Op::kHmma), 15u);
  EXPECT_DOUBLE_EQ(a.sectors_per_request(), 10.0);
  EXPECT_EQ(a.bytes_l2_to_l1(), 128u);
}

}  // namespace
}  // namespace vsparse::gpusim

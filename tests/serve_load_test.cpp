// The multi-tenant load scheduler's contracts: the chaos-soak load
// report is byte-identical across engine thread counts and across
// repeated same-seed runs (the tentpole determinism claim), a chaos
// run actually exercises the breaker machinery and the load-shedding
// paths while keeping the outcome accounting internally consistent,
// and the fault-free scheduled path is bit- AND counter-identical to
// direct unsupervised dispatch (verify mode cross-checks every
// completed request against a reference device).
#include <gtest/gtest.h>

#include <string>

#include "vsparse/serve/scheduler.hpp"

namespace vsparse {
namespace {

using serve::LoadConfig;
using serve::LoadResult;
using serve::TenantStats;

// The canonical chaos configuration (mirrored by the CI serve-load
// job): 200 requests at a 12k-tick mean gap overdrives the interactive
// tenant enough to shed, and seed 2021's storm windows fire every
// outcome class — quarantines, restores, policy-cache rejections,
// deadline misses.
LoadConfig chaos_config(int threads) {
  LoadConfig config;
  config.requests = 200;
  config.seed = 2021;
  config.threads = threads;
  config.mean_gap_ticks = 12'000;
  config.chaos = true;
  return config;
}

void expect_accounting_consistent(const TenantStats& t) {
  EXPECT_EQ(t.submitted, t.completed + t.failed + t.rejected + t.shed_queue +
                             t.shed_deadline)
      << "tenant " << t.name;
  EXPECT_EQ(t.completed, t.slo_met + t.deadline_miss) << "tenant " << t.name;
  EXPECT_LE(t.p50_latency_ticks, t.p99_latency_ticks) << "tenant " << t.name;
  EXPECT_LE(t.p99_latency_ticks, t.max_latency_ticks) << "tenant " << t.name;
}

TEST(ServeLoad, ChaosReportByteIdenticalAcrossThreadsAndRuns) {
  const LoadConfig c1 = chaos_config(1);
  const std::string serial = serve::run_load(c1).to_json(c1);
  EXPECT_EQ(serial, serve::run_load(c1).to_json(c1));  // reproducible

  // The thread count changes how the engine shards CTAs — and nothing
  // else the report is allowed to observe.
  const LoadConfig c2 = chaos_config(2);
  EXPECT_EQ(serial, serve::run_load(c2).to_json(c2));
  const LoadConfig c8 = chaos_config(8);
  EXPECT_EQ(serial, serve::run_load(c8).to_json(c8));
}

TEST(ServeLoad, ChaosRunFiresBreakersSheddingAndStaysConsistent) {
  const LoadConfig config = chaos_config(1);
  const LoadResult res = serve::run_load(config);

  // Every submitted request is accounted for exactly once, per tenant
  // and in total.
  EXPECT_EQ(res.total.submitted, static_cast<std::uint64_t>(config.requests));
  expect_accounting_consistent(res.total);
  TenantStats sum;
  for (const TenantStats& t : res.tenants) {
    expect_accounting_consistent(t);
    sum.submitted += t.submitted;
    sum.completed += t.completed;
    sum.slo_met += t.slo_met;
    sum.rejected += t.rejected;
    sum.failed += t.failed;
    sum.shed_queue += t.shed_queue;
    sum.shed_deadline += t.shed_deadline;
  }
  EXPECT_EQ(sum.submitted, res.total.submitted);
  EXPECT_EQ(sum.completed, res.total.completed);
  EXPECT_EQ(sum.slo_met, res.total.slo_met);
  EXPECT_EQ(sum.rejected, res.total.rejected);
  EXPECT_EQ(sum.failed, res.total.failed);
  EXPECT_EQ(sum.shed_queue, res.total.shed_queue);
  EXPECT_EQ(sum.shed_deadline, res.total.shed_deadline);

  // The storms actually bite: ECC bursts trip breakers (and cooldowns
  // later probe them), memory pressure rejects at admission, load
  // shedding fires, corrupted policy blobs are rejected — classified,
  // not crashing the loop.
  EXPECT_GT(res.health.quarantines, 0u);
  EXPECT_GT(res.health.half_opens, 0u);
  EXPECT_GT(res.total.rejected, 0u);
  EXPECT_GT(res.total.shed_queue + res.total.shed_deadline, 0u);
  EXPECT_GT(res.policy_cache_rejections, 0u);
  EXPECT_GT(res.total.completed, 0u);
  EXPECT_GT(res.goodput_per_mtick, 0.0);
  EXPECT_GT(res.final_tick, 0u);

  // Chaos mode never runs the verify cross-check.
  EXPECT_EQ(res.mismatches, 0u);
  EXPECT_EQ(res.counter_mismatches, 0u);

  // The serialized report carries the schema tag, the chaos plan, the
  // fleet section, and the exactly-once request ledger.
  const std::string json = res.to_json(config);
  EXPECT_NE(json.find("\"schema\":\"vsparse-load-v2\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"ecc_burst\""), std::string::npos);
  EXPECT_NE(json.find("\"request_ledger\":["), std::string::npos);
  EXPECT_NE(json.find("\"fleet\":{"), std::string::npos);
  // Single device, no device chaos: no fleet recovery machinery fires.
  EXPECT_EQ(res.fleet.failovers, 0u);
  EXPECT_EQ(res.fleet.hedges, 0u);
  EXPECT_EQ(res.fleet.devices_lost, 0u);
  // Every executed request is exactly one placement on device 0.
  EXPECT_EQ(res.fleet.placements,
            res.total.completed + res.total.failed + res.total.rejected);
}

TEST(ServeLoad, FaultFreeScheduledPathIsBitAndCounterIdentical) {
  LoadConfig config;
  config.requests = 60;
  config.seed = 7;
  config.verify = true;  // cross-check against unsupervised dispatch
  const LoadResult res = serve::run_load(config);

  // No faults anywhere: every request completes on its first rung, and
  // the scheduled output is byte-identical (with SM-local counters
  // equal) to a direct dispatch of the same problem.
  EXPECT_EQ(res.total.completed, res.total.submitted);
  EXPECT_EQ(res.total.failed, 0u);
  EXPECT_EQ(res.total.rejected, 0u);
  EXPECT_EQ(res.mismatches, 0u);
  EXPECT_EQ(res.counter_mismatches, 0u);
  EXPECT_EQ(res.health.quarantines, 0u);
  expect_accounting_consistent(res.total);
}

}  // namespace
}  // namespace vsparse

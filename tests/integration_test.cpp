// Cross-module integration tests: kernel pipelines chained through
// device memory (the way the transformer uses them), the split-K dense
// path, and end-to-end agreement between independent implementations.
#include <gtest/gtest.h>

#include <cmath>

#include "vsparse/common/rng.hpp"
#include "vsparse/formats/generate.hpp"
#include "vsparse/formats/reference.hpp"
#include "vsparse/kernels/dense/gemm.hpp"
#include "vsparse/kernels/sddmm/sddmm_octet.hpp"
#include "vsparse/kernels/softmax/sparse_softmax.hpp"
#include "vsparse/kernels/spmm/spmm_fpu.hpp"
#include "vsparse/kernels/spmm/spmm_octet.hpp"
#include "vsparse/kernels/spmm/spmm_wmma.hpp"

namespace vsparse::kernels {
namespace {

gpusim::DeviceConfig test_config() {
  gpusim::DeviceConfig cfg;
  cfg.dram_capacity = 512 << 20;
  cfg.num_sms = 8;
  return cfg;
}

TEST(Integration, AllSpmmKernelsAgreeBitExactly) {
  // Three independent implementations of the same contract must agree
  // exactly on fp16-exact inputs (fp32 accumulation everywhere).
  Rng rng(31);
  Cvs a = make_cvs(128, 192, 4, 0.8, rng);
  for (half_t& h : a.values) {
    h = half_t(static_cast<float>(rng.uniform_int(-2, 2)));
  }
  DenseMatrix<half_t> b(192, 128);
  b.fill_random_int(rng);

  gpusim::Device dev(test_config());
  auto da = to_device(dev, a);
  auto db = to_device(dev, b);
  DenseMatrix<half_t> ch(128, 128);
  auto c1 = to_device(dev, ch);
  auto c2 = to_device(dev, ch);
  auto c3 = to_device(dev, ch);
  spmm_octet(dev, da, db, c1);
  spmm_wmma_warp(dev, da, db, c2);
  spmm_fpu_subwarp(dev, da, db, c3);
  auto h1 = c1.buf.host();
  auto h2 = c2.buf.host();
  auto h3 = c3.buf.host();
  for (std::size_t i = 0; i < h1.size(); ++i) {
    ASSERT_EQ(h1[i].bits(), h2[i].bits()) << i;
    ASSERT_EQ(h1[i].bits(), h3[i].bits()) << i;
  }
}

TEST(Integration, SddmmSoftmaxSpmmPipeline) {
  // The §7.4 attention core chained through device buffers, verified
  // against the composed host references.
  const int seq = 64, d = 64, v = 4;
  Rng rng(32);
  DenseMatrix<half_t> q(seq, d), kmat(seq, d), vmat(seq, d);
  q.fill_random(rng, -0.5f, 0.5f);
  kmat.fill_random(rng, -0.5f, 0.5f);
  vmat.fill_random(rng, -0.5f, 0.5f);
  Cvs mask = make_cvs_mask(seq, seq, v, 0.7, rng);

  gpusim::Device dev(test_config());
  auto dq = to_device(dev, q);
  DenseMatrix<half_t> kt_host(d, seq, Layout::kColMajor);
  for (int i = 0; i < seq; ++i) {
    for (int j = 0; j < d; ++j) kt_host.at(j, i) = kmat.at(i, j);
  }
  auto dkt = to_device(dev, kt_host);
  auto dv = to_device(dev, vmat);
  auto dmask = to_device(dev, mask);
  auto scores = dev.alloc<half_t>(mask.values.size());
  sddmm_octet(dev, dq, dkt, dmask, scores);
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  sparse_softmax(dev, dmask, scores, scores, scale);
  CvsDevice probs = dmask;
  probs.values = scores;
  DenseMatrix<half_t> out(seq, d);
  auto dout = to_device(dev, out);
  spmm_octet(dev, probs, dv, dout);

  Cvs ref_scores = sddmm_reference(q, kt_host, mask);
  Cvs ref_probs = sparse_softmax_reference(ref_scores, scale);
  DenseMatrix<half_t> ref = spmm_reference(ref_probs, vmat);
  DenseMatrix<half_t> got = from_device(dout);
  for (int i = 0; i < seq; ++i) {
    for (int j = 0; j < d; ++j) {
      ASSERT_NEAR(static_cast<float>(got.at(i, j)),
                  static_cast<float>(ref.at(i, j)), 5e-3f)
          << i << "," << j;
    }
  }
}

class SplitKTest : public ::testing::TestWithParam<int> {};

TEST_P(SplitKTest, HgemmSplitKMatchesReference) {
  const int split = GetParam();
  Rng rng(33);
  DenseMatrix<half_t> a(64, 256), b(256, 64);
  a.fill_random_int(rng);
  b.fill_random_int(rng);
  gpusim::Device dev(test_config());
  auto da = to_device(dev, a);
  auto db = to_device(dev, b);
  DenseMatrix<half_t> ch(64, 64);
  auto dc = to_device(dev, ch);
  KernelRun run = hgemm_tcu(dev, da, db, dc, {.split_k = split});
  EXPECT_EQ(run.config.grid, split);  // one base tile x split
  DenseMatrix<half_t> got = from_device(dc);
  DenseMatrix<half_t> ref = gemm_reference(a, b);
  for (int i = 0; i < 64; ++i) {
    for (int j = 0; j < 64; ++j) {
      ASSERT_EQ(got.at(i, j).bits(), ref.at(i, j).bits()) << i << "," << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Splits, SplitKTest, ::testing::Values(1, 2, 4, 8));

TEST(Integration, SplitKAutoFillsSmallGrids) {
  gpusim::Device dev(test_config());
  auto a = dev.alloc<half_t>(64 * 256);
  auto b = dev.alloc<half_t>(256 * 64);
  auto c = dev.alloc<half_t>(64 * 64);
  DenseDevice<half_t> da{a, 64, 256, 256, Layout::kRowMajor};
  DenseDevice<half_t> db{b, 256, 64, 64, Layout::kRowMajor};
  DenseDevice<half_t> dc{c, 64, 64, 64, Layout::kRowMajor};
  KernelRun run = hgemm_tcu(dev, da, db, dc);  // auto split
  EXPECT_GT(run.config.grid, 1);  // heuristic raised the grid
  // Workspace accounting balanced: nothing leaked.
  EXPECT_EQ(dev.live_bytes(),
            (64u * 256 + 256u * 64 + 64u * 64) * sizeof(half_t));
}

TEST(Integration, DeterministicStatsAcrossRuns) {
  // The whole simulator is deterministic: identical launches produce
  // identical counters (cache state is reset per device).
  Rng rng(34);
  Cvs a = make_cvs(128, 128, 4, 0.8, rng);
  DenseMatrix<half_t> b(128, 64);
  b.fill_random(rng);
  auto run_once = [&]() {
    gpusim::Device dev(test_config());
    auto da = to_device(dev, a);
    auto db = to_device(dev, b);
    DenseMatrix<half_t> ch(128, 64);
    auto dc = to_device(dev, ch);
    return spmm_octet(dev, da, db, dc);
  };
  KernelRun r1 = run_once();
  KernelRun r2 = run_once();
  EXPECT_EQ(r1.stats.l1_sector_misses, r2.stats.l1_sector_misses);
  EXPECT_EQ(r1.stats.total_instructions(), r2.stats.total_instructions());
  EXPECT_EQ(r1.stats.global_load_sectors, r2.stats.global_load_sectors);
}

}  // namespace
}  // namespace vsparse::kernels

// Unit + property tests for the performance model: occupancy limits,
// roofline term selection, stall fractions, and monotonicity
// properties that any sane cost model must satisfy.
#include "vsparse/gpusim/costmodel.hpp"

#include <gtest/gtest.h>

namespace vsparse::gpusim {
namespace {

LaunchConfig basic_cfg() {
  LaunchConfig cfg;
  cfg.grid = 1024;
  cfg.cta_threads = 32;
  cfg.profile.regs_per_thread = 32;
  cfg.profile.static_instrs = 256;
  return cfg;
}

KernelStats basic_stats() {
  KernelStats s;
  s.op(Op::kHmma) = 1 << 20;
  s.op(Op::kLdg) = 1 << 16;
  s.global_load_requests = 1 << 16;
  s.global_load_sectors = 1 << 20;
  s.l1_sector_hits = 1 << 19;
  s.l1_sector_misses = 1 << 19;
  s.ctas_launched = 1024;
  s.warps_launched = 1024;
  return s;
}

TEST(Occupancy, RespectsEachLimit) {
  DeviceConfig dev;
  LaunchConfig cfg = basic_cfg();
  // Baseline: CTA limit (32 single-warp CTAs).
  EXPECT_EQ(ctas_per_sm_limit(dev, cfg), 32);
  // Register limit: 255 regs x 32 threads -> 65536/8160 = 8.
  cfg.profile.regs_per_thread = 255;
  EXPECT_EQ(ctas_per_sm_limit(dev, cfg), 8);
  // Shared-memory limit.
  cfg.profile.regs_per_thread = 32;
  cfg.smem_bytes = 48 << 10;
  EXPECT_EQ(ctas_per_sm_limit(dev, cfg), 2);
  // Thread limit: 1024-thread CTAs -> 2 per SM.
  cfg.smem_bytes = 0;
  cfg.cta_threads = 1024;
  EXPECT_EQ(ctas_per_sm_limit(dev, cfg), 2);
}

TEST(CostModel, PicksTheWorstResource) {
  DeviceConfig dev;
  LaunchConfig cfg = basic_cfg();
  KernelStats s;
  s.op(Op::kHmma) = 100'000'000;  // overwhelming TCU load
  s.ctas_launched = 1024;
  CostEstimate e = estimate_cost(dev, cfg, s);
  // A pure HMMA stream saturates both the TCU pipe and the issue slots
  // (one HMMA per slot); either is an acceptable verdict.
  EXPECT_TRUE(e.bound_by == "tcu" || e.bound_by == "issue") << e.bound_by;
  s.op(Op::kHmma) = 0;
  s.dram_read_bytes = std::uint64_t{1} << 36;
  e = estimate_cost(dev, cfg, s);
  EXPECT_EQ(e.bound_by, "dram");
}

TEST(CostModel, MoreWorkNeverGetsFaster) {
  DeviceConfig dev;
  LaunchConfig cfg = basic_cfg();
  KernelStats s = basic_stats();
  const double base = estimate_cost(dev, cfg, s).cycles;
  KernelStats s2 = s;
  s2.op(Op::kHmma) *= 2;
  s2.l1_sector_misses *= 2;
  s2.dram_read_bytes += 1 << 20;
  EXPECT_GE(estimate_cost(dev, cfg, s2).cycles, base);
}

TEST(CostModel, IcacheOverflowStalls) {
  DeviceConfig dev;
  LaunchConfig cfg = basic_cfg();
  KernelStats s = basic_stats();
  cfg.profile.static_instrs = 512;  // fits the 768-instruction L0
  EXPECT_EQ(estimate_cost(dev, cfg, s).stall_no_instruction, 0.0);
  cfg.profile.static_instrs = 3776;  // the paper's FPU SpMM V=4
  const double fpu = estimate_cost(dev, cfg, s).stall_no_instruction;
  EXPECT_NEAR(fpu, 0.11, 0.04);  // Table 2 anchor: 11.0%
  cfg.profile.static_instrs = 6968;  // V=8
  const double fpu8 = estimate_cost(dev, cfg, s).stall_no_instruction;
  EXPECT_NEAR(fpu8, 0.52, 0.1);  // Table 2 anchor: 52.2%
  EXPECT_GT(fpu8, fpu);
}

TEST(CostModel, IntegerShareDrivesWaitStalls) {
  DeviceConfig dev;
  LaunchConfig cfg = basic_cfg();
  KernelStats s = basic_stats();
  const double lo = estimate_cost(dev, cfg, s).stall_wait;
  s.op(Op::kImad) = s.total_instructions() / 2;  // heavy address math
  const double hi = estimate_cost(dev, cfg, s).stall_wait;
  EXPECT_GT(hi, lo);
}

TEST(CostModel, SmemShareDrivesShortScoreboard) {
  DeviceConfig dev;
  LaunchConfig cfg = basic_cfg();
  KernelStats s = basic_stats();
  const double lo = estimate_cost(dev, cfg, s).stall_short_scoreboard;
  s.op(Op::kLds) = s.total_instructions();
  const double hi = estimate_cost(dev, cfg, s).stall_short_scoreboard;
  EXPECT_GT(hi, lo);
  // The §5.4 load-batching trick reduces it.
  cfg.profile.ilp_factor = 0.5;
  EXPECT_LT(estimate_cost(dev, cfg, s).stall_short_scoreboard, hi);
}

TEST(CostModel, SmallGridsExposeLatency) {
  // Guideline II: the same per-SM work with a tiny grid (few resident
  // warps) costs more cycles than spread over a big grid.
  DeviceConfig dev;
  KernelStats s = basic_stats();
  LaunchConfig big = basic_cfg();
  big.grid = 4096;
  LaunchConfig small = basic_cfg();
  small.grid = dev.num_sms;  // one single-warp CTA per SM
  const double big_c = estimate_cost(dev, big, s).cycles;
  const double small_c = estimate_cost(dev, small, s).cycles;
  EXPECT_GT(small_c, big_c);
}

TEST(CostModel, ComputePipeUtilizationBounded) {
  DeviceConfig dev;
  LaunchConfig cfg = basic_cfg();
  KernelStats s = basic_stats();
  CostEstimate e = estimate_cost(dev, cfg, s);
  EXPECT_GE(e.max_compute_pipe_utilization, 0.0);
  EXPECT_LE(e.max_compute_pipe_utilization, 1.0);
}

TEST(CostModel, WavesReflectGridAndOccupancy) {
  DeviceConfig dev;
  LaunchConfig cfg = basic_cfg();
  cfg.grid = 32 * dev.num_sms * 2;  // exactly two full waves at limit 32
  KernelStats s = basic_stats();
  CostEstimate e = estimate_cost(dev, cfg, s);
  EXPECT_NEAR(e.waves, 2.0, 1e-9);
}

}  // namespace
}  // namespace vsparse::gpusim

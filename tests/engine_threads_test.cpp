// Thread-count sweep for the sharded execution engine: the same
// kernel launched with 1, 2, and 8 host threads must produce
// bit-identical functional results and bit-identical per-SM counters
// (the determinism contract of engine/launch.hpp).  Also covers the
// Scheduler's round-robin assignment, the counter-preserving L2
// slicing, SimOptions inheritance from the device, and exception
// propagation out of worker threads.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "vsparse/common/rng.hpp"
#include "vsparse/formats/generate.hpp"
#include "vsparse/gpusim/cache.hpp"
#include "vsparse/gpusim/device.hpp"
#include "vsparse/gpusim/engine/scheduler.hpp"
#include "vsparse/gpusim/engine/launch.hpp"
#include "vsparse/gpusim/engine/launch_config.hpp"
#include "vsparse/gpusim/engine/sim_options.hpp"
#include "vsparse/gpusim/faults.hpp"
#include "vsparse/gpusim/trace/counters.hpp"
#include "vsparse/kernels/sddmm/sddmm_octet.hpp"
#include "vsparse/kernels/spmm/spmm_octet.hpp"

#include "span_corpus.hpp"

namespace vsparse::kernels {
namespace {

gpusim::DeviceConfig test_config() {
  gpusim::DeviceConfig cfg;
  cfg.dram_capacity = 256 << 20;
  cfg.num_sms = 8;
  return cfg;
}

struct SweepRun {
  std::vector<std::uint16_t> out_bits;      ///< downloaded result payload
  gpusim::KernelStats total;                ///< merged launch counters
  std::vector<gpusim::KernelStats> per_sm;  ///< one block per device SM
};

/// Run the octet SpMM end to end with `threads` workers.
SweepRun run_spmm(int threads, const Cvs& a_host,
                  const DenseMatrix<half_t>& b_host) {
  SweepRun run;
  gpusim::Device dev(test_config());
  gpusim::SimOptions sim{.threads = threads, .per_sm_stats = &run.per_sm};
  auto a = to_device(dev, a_host);
  auto b = to_device(dev, b_host);
  DenseMatrix<half_t> ch(a_host.rows, b_host.cols());
  auto c = to_device(dev, ch);
  run.total = spmm_octet(dev, a, b, c, {}, sim).stats;
  for (half_t h : c.buf.host()) run.out_bits.push_back(h.bits());
  return run;
}

/// Run the octet SDDMM end to end with `threads` workers.
SweepRun run_sddmm(int threads, const DenseMatrix<half_t>& a_host,
                   const DenseMatrix<half_t>& b_host, const Cvs& mask_host) {
  SweepRun run;
  gpusim::Device dev(test_config());
  gpusim::SimOptions sim{.threads = threads, .per_sm_stats = &run.per_sm};
  auto a = to_device(dev, a_host);
  auto b = to_device(dev, b_host);
  auto mask = to_device(dev, mask_host);
  auto out = dev.alloc<half_t>(mask_host.col_idx.size() *
                               static_cast<std::size_t>(mask_host.v));
  run.total = sddmm_octet(dev, a, b, mask, out, {}, sim).stats;
  for (half_t h : out.host()) run.out_bits.push_back(h.bits());
  return run;
}

/// The determinism contract between a serial baseline and an N-thread
/// run of the same launch.
void expect_thread_invariant(const SweepRun& base, const SweepRun& run,
                             int threads) {
  ASSERT_EQ(base.out_bits.size(), run.out_bits.size());
  for (std::size_t i = 0; i < base.out_bits.size(); ++i) {
    ASSERT_EQ(base.out_bits[i], run.out_bits[i])
        << "output word " << i << " differs at threads=" << threads;
  }
  ASSERT_EQ(base.per_sm.size(), run.per_sm.size());
  for (std::size_t sm = 0; sm < base.per_sm.size(); ++sm) {
    EXPECT_TRUE(base.per_sm[sm].sm_local_equal(run.per_sm[sm]))
        << "per-SM counters differ on SM " << sm << " at threads=" << threads
        << "\nserial:\n"
        << base.per_sm[sm].to_string() << "\nthreaded:\n"
        << run.per_sm[sm].to_string();
  }
  EXPECT_TRUE(base.total.sm_local_equal(run.total))
      << "merged SM-local counters differ at threads=" << threads;
  // The L2 hit/miss *split* may shift under concurrent interleaving,
  // but every L1 miss reaches the L2 exactly once, so the sum cannot.
  EXPECT_EQ(base.total.l2_sector_hits + base.total.l2_sector_misses,
            run.total.l2_sector_hits + run.total.l2_sector_misses);
}

/// Per-SM blocks must sum to the merged total on the SM-local fields.
void expect_per_sm_sums_to_total(const SweepRun& run) {
  gpusim::KernelStats sum;
  for (const auto& sm : run.per_sm) sum += sm;
  EXPECT_TRUE(sum.sm_local_equal(run.total));
  EXPECT_EQ(sum.l2_sector_hits, run.total.l2_sector_hits);
  EXPECT_EQ(sum.l2_sector_misses, run.total.l2_sector_misses);
}

TEST(EngineThreadSweep, SpmmBitExactAcrossThreadCounts) {
  Rng rng(99);
  Cvs a = make_cvs(128, 96, 4, 0.6, rng);
  for (half_t& h : a.values) {
    h = half_t(static_cast<float>(rng.uniform_int(-3, 3)));
  }
  DenseMatrix<half_t> b(96, 64);
  b.fill_random_int(rng);

  const SweepRun serial = run_spmm(1, a, b);
  expect_per_sm_sums_to_total(serial);
  EXPECT_GT(serial.total.ctas_launched, 1u);  // sweep exercises > 1 SM
  for (int threads : {2, 8}) {
    const SweepRun threaded = run_spmm(threads, a, b);
    expect_thread_invariant(serial, threaded, threads);
    expect_per_sm_sums_to_total(threaded);
  }
}

TEST(EngineThreadSweep, SddmmBitExactAcrossThreadCounts) {
  Rng rng(7);
  DenseMatrix<half_t> a(64, 96);
  DenseMatrix<half_t> b(96, 128, Layout::kColMajor);
  a.fill_random_int(rng);
  b.fill_random_int(rng);
  Cvs mask = make_cvs_mask(64, 128, 4, 0.5, rng);

  const SweepRun serial = run_sddmm(1, a, b, mask);
  expect_per_sm_sums_to_total(serial);
  for (int threads : {2, 8}) {
    const SweepRun threaded = run_sddmm(threads, a, b, mask);
    expect_thread_invariant(serial, threaded, threads);
    expect_per_sm_sums_to_total(threaded);
  }
}

TEST(EngineThreadSweep, PerSmStatsSizedToDeviceWithIdleSmsZero) {
  gpusim::Device dev(test_config());
  std::vector<gpusim::KernelStats> per_sm;
  gpusim::LaunchConfig cfg;
  cfg.grid = 3;  // fewer CTAs than SMs: SMs 3..7 stay idle
  cfg.cta_threads = 32;
  gpusim::launch(
      dev, cfg, [](gpusim::Cta&) {},
      gpusim::SimOptions{.threads = 8, .per_sm_stats = &per_sm});
  ASSERT_EQ(per_sm.size(), 8u);
  for (int sm = 0; sm < 3; ++sm) {
    EXPECT_EQ(per_sm[static_cast<std::size_t>(sm)].ctas_launched, 1u);
  }
  for (int sm = 3; sm < 8; ++sm) {
    EXPECT_EQ(per_sm[static_cast<std::size_t>(sm)].ctas_launched, 0u);
    EXPECT_EQ(per_sm[static_cast<std::size_t>(sm)].total_instructions(), 0u);
  }
}

TEST(EngineThreadSweep, DeviceDefaultThreadsInherited) {
  // threads = 0 in the per-launch options defers to the device-wide
  // policy installed by Device::set_sim_options (what the bench
  // drivers' --threads flag sets).
  Rng rng(11);
  Cvs a = make_cvs(64, 96, 4, 0.5, rng);
  DenseMatrix<half_t> b(96, 64);
  b.fill_random_int(rng);

  const SweepRun serial = run_spmm(1, a, b);

  gpusim::Device dev(test_config());
  dev.set_sim_options(gpusim::SimOptions{.threads = 8});
  EXPECT_EQ(dev.sim_options().threads, 8);
  auto da = to_device(dev, a);
  auto db = to_device(dev, b);
  DenseMatrix<half_t> ch(a.rows, b.cols());
  auto dc = to_device(dev, ch);
  spmm_octet(dev, da, db, dc);  // no explicit SimOptions: inherit
  std::size_t i = 0;
  for (half_t h : dc.buf.host()) {
    ASSERT_EQ(h.bits(), serial.out_bits[i]) << "word " << i;
    ++i;
  }
}

TEST(EngineThreadSweep, WorkerExceptionsPropagate) {
  gpusim::Device dev(test_config());
  gpusim::LaunchConfig cfg;
  cfg.grid = 16;
  cfg.cta_threads = 32;
  auto body = [](gpusim::Cta& cta) {
    if (cta.cta_id() == 13) throw std::runtime_error("cta 13 failed");
  };
  EXPECT_THROW(
      gpusim::launch(dev, cfg, body, gpusim::SimOptions{.threads = 8}),
      std::runtime_error);
  // The engine must stay usable after a failed launch.
  gpusim::KernelStats stats = gpusim::launch(
      dev, cfg, [](gpusim::Cta&) {}, gpusim::SimOptions{.threads = 8});
  EXPECT_EQ(stats.ctas_launched, 16u);
}

TEST(Scheduler, RoundRobinMatchesHistoricalAssignment) {
  gpusim::Scheduler sched(/*grid=*/19, /*num_sms=*/8);
  EXPECT_EQ(sched.num_active_sms(), 8);
  for (int cta = 0; cta < 19; ++cta) EXPECT_EQ(sched.sm_of(cta), cta % 8);
  // Walking one SM's list visits exactly the CTAs whose home it is,
  // in increasing order.
  for (int sm = 0; sm < 8; ++sm) {
    int prev = -1;
    for (int cta = sched.first_cta(sm); cta < 19; cta += sched.cta_stride()) {
      EXPECT_EQ(sched.sm_of(cta), sm);
      EXPECT_GT(cta, prev);
      prev = cta;
    }
  }
}

TEST(Scheduler, SmallGridActivatesOnlyGridSms) {
  gpusim::Scheduler sched(/*grid=*/3, /*num_sms=*/8);
  EXPECT_EQ(sched.num_active_sms(), 3);
  // Each active SM is claimed exactly once, then the cursor drains.
  std::vector<bool> claimed(3, false);
  for (int i = 0; i < 3; ++i) {
    const int sm = sched.next_sm();
    ASSERT_GE(sm, 0);
    ASSERT_LT(sm, 3);
    EXPECT_FALSE(claimed[static_cast<std::size_t>(sm)]);
    claimed[static_cast<std::size_t>(sm)] = true;
  }
  EXPECT_EQ(sched.next_sm(), -1);
  EXPECT_EQ(sched.next_sm(), -1);
}

TEST(ShardedCache, SerialStreamMatchesSectorCacheForAnySliceCount) {
  // The L2 slicing is counter-preserving: on a serial access stream
  // the hit/miss outcome sequence is bit-identical to the unsliced
  // model for every slice count, because the set mapping is unchanged
  // and LRU order only ever compares lines within one set.
  constexpr std::size_t kCapacity = 32 << 10;
  constexpr int kLine = 128, kSector = 32, kWays = 4;

  Rng rng(42);
  std::vector<std::uint64_t> stream(20000);
  for (auto& addr : stream) {
    // ~4x the cache capacity so the stream forces evictions.
    addr = static_cast<std::uint64_t>(rng.uniform_int(0, 4096)) * kSector;
  }

  gpusim::SectorCache ref(kCapacity, kLine, kSector, kWays);
  std::vector<bool> want;
  want.reserve(stream.size());
  for (std::uint64_t addr : stream) want.push_back(ref.access(addr));

  for (int slices : {1, 2, 7, 16}) {
    gpusim::ShardedCache l2(kCapacity, kLine, kSector, kWays, slices);
    EXPECT_EQ(l2.num_slices(), slices);
    for (std::size_t i = 0; i < stream.size(); ++i) {
      ASSERT_EQ(l2.access(stream[i]), want[i])
          << "access " << i << " with " << slices << " slices";
    }
  }
}

TEST(ShardedCache, InvalidateSectorMatchesSectorCache) {
  constexpr std::size_t kCapacity = 8 << 10;
  constexpr int kLine = 128, kSector = 32, kWays = 2;

  Rng rng(5);
  gpusim::SectorCache ref(kCapacity, kLine, kSector, kWays);
  gpusim::ShardedCache l2(kCapacity, kLine, kSector, kWays, 7);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t addr =
        static_cast<std::uint64_t>(rng.uniform_int(0, 512)) * kSector;
    if (rng.uniform_int(0, 4) == 0) {
      ref.invalidate_sector(addr);
      l2.invalidate_sector(addr);
    } else {
      ASSERT_EQ(l2.access(addr), ref.access(addr)) << "access " << i;
    }
  }
}

// ---------------------------------------------------------------------
// Span-vs-per-lane equivalence corpus (DESIGN.md §2h): the descriptor
// forms must be bit- and counter-identical to the hand-expanded
// per-lane forms for uniform, affine, and segmented patterns — on the
// serial engine, across thread counts, and under fault injection
// (where spans self-divert onto the per-lane path).

void expect_corpus_equal(const gpusim::SpanCorpusRun& span,
                         const gpusim::SpanCorpusRun& lane,
                         const char* what) {
  ASSERT_EQ(span.dst_bits.size(), lane.dst_bits.size());
  for (std::size_t i = 0; i < span.dst_bits.size(); ++i) {
    ASSERT_EQ(span.dst_bits[i], lane.dst_bits[i])
        << what << ": output half " << i << " differs";
  }
  EXPECT_TRUE(gpusim::counters_equal(span.total, lane.total))
      << what << ": merged counters differ\nspan:\n"
      << span.total.to_string() << "\nper-lane:\n" << lane.total.to_string();
  ASSERT_EQ(span.per_sm.size(), lane.per_sm.size());
  for (std::size_t sm = 0; sm < span.per_sm.size(); ++sm) {
    EXPECT_TRUE(gpusim::counters_equal(span.per_sm[sm], lane.per_sm[sm]))
        << what << ": per-SM counters differ on SM " << sm;
  }
}

TEST(SpanCorpus, BitAndCounterIdenticalToPerLaneSerial) {
  gpusim::Device dspan(test_config());
  gpusim::Device dlane(test_config());
  const auto span = run_span_corpus(dspan, true, {.threads = 1});
  const auto lane = run_span_corpus(dlane, false, {.threads = 1});
  expect_corpus_equal(span, lane, "serial");
}

TEST(SpanCorpus, ThreadInvariantAndEqualToPerLaneAtEveryThreadCount) {
  gpusim::Device dbase(test_config());
  const auto base = run_span_corpus(dbase, true, {.threads = 1});
  for (int threads : {2, 8}) {
    gpusim::Device dspan(test_config());
    gpusim::Device dlane(test_config());
    const auto span = run_span_corpus(dspan, true, {.threads = threads});
    const auto lane = run_span_corpus(dlane, false, {.threads = threads});
    expect_corpus_equal(span, lane, "threaded");
    // The span run itself honors the engine determinism contract:
    // outputs and per-SM counters bit-equal to the serial run.
    ASSERT_EQ(base.dst_bits, span.dst_bits) << "threads=" << threads;
    ASSERT_EQ(base.per_sm.size(), span.per_sm.size());
    for (std::size_t sm = 0; sm < base.per_sm.size(); ++sm) {
      EXPECT_TRUE(base.per_sm[sm].sm_local_equal(span.per_sm[sm]))
          << "per-SM counters differ on SM " << sm << " at threads="
          << threads;
    }
  }
}

TEST(SpanCorpus, EquivalentUnderFaultInjection) {
  // A sticky DRAM-read upset inside the affine pattern's footprint
  // forces every span op to divert onto the per-lane path; results and
  // counters must still match the hand-expanded run under the same
  // plan.
  const auto run_faulted = [&](bool use_span) {
    gpusim::Device dev(test_config());
    gpusim::FaultPlan plan(7);
    gpusim::FaultTarget t;
    t.site = gpusim::FaultSite::kDramRead;
    // src halves are allocated first at a deterministic arena offset;
    // target a byte inside the affine pattern of CTA 0 (halves 32..71).
    t.addr = 0;  // patched below once the buffer exists
    // Allocate via the corpus itself: run once to learn the address,
    // then target it.  Addresses are deterministic per fresh device.
    gpusim::Device probe(test_config());
    const auto probed = run_span_corpus(probe, use_span, {.threads = 1});
    t.addr = probed.src_addr + 2 * 40;  // half #40: inside the prefix
    t.bit = 3;
    t.sticky = true;
    plan.add_target(t);
    dev.set_fault_plan(&plan);
    return run_span_corpus(dev, use_span, {.threads = 1});
  };
  const auto span = run_faulted(true);
  const auto lane = run_faulted(false);
  expect_corpus_equal(span, lane, "faulted");
  // The upset must actually have landed (the corpus reads half #40).
  gpusim::Device clean(test_config());
  const auto unfaulted = run_span_corpus(clean, true, {.threads = 1});
  EXPECT_NE(span.dst_bits, unfaulted.dst_bits);
}

}  // namespace
}  // namespace vsparse::kernels

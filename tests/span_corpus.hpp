// Shared span-vs-per-lane access corpus: one kernel body that issues
// the same logical warp accesses either through the span descriptors
// (ldg_span/stg_span/lds_span/sts_span) or through hand-expanded
// per-lane address arrays.  The engine contract (DESIGN.md §2h) says
// the two must be bit- and counter-identical — under plain runs, under
// fault injection (spans self-divert), and under the sanitizer.  Used
// by engine_threads_test.cpp and sanitizer_test.cpp.
#pragma once

#include <cstdint>
#include <vector>

#include "vsparse/fp16/vec.hpp"
#include "vsparse/gpusim/device.hpp"
#include "vsparse/gpusim/engine/lanes.hpp"
#include "vsparse/gpusim/engine/launch.hpp"
#include "vsparse/gpusim/engine/launch_config.hpp"
#include "vsparse/gpusim/engine/sim_options.hpp"

namespace vsparse::gpusim {

/// Result of one corpus launch: the functional output plus counters.
struct SpanCorpusRun {
  std::vector<std::uint16_t> dst_bits;
  KernelStats total;
  std::vector<KernelStats> per_sm;
  std::uint64_t src_addr = 0;  ///< device address of src[0] (fault targets)
};

/// Launch the corpus on `dev`.  Every CTA works a private 1024-half
/// region and exercises: a uniform (stride-0) global broadcast, an
/// affine vector load under a prefix mask, a four-segment gather, an
/// affine smem round-trip plus a stride-0 smem broadcast, an affine
/// writeback, and a two-segment store with per-segment prefix masks.
/// With use_span the patterns go through the span ops; without it the
/// same addresses are expanded into per-lane arrays.
inline SpanCorpusRun run_span_corpus(Device& dev, bool use_span,
                                     const SimOptions& sim_in) {
  SpanCorpusRun run;
  SimOptions sim = sim_in;
  sim.per_sm_stats = &run.per_sm;

  constexpr int kCtas = 4;
  constexpr std::size_t kRegion = 1024;  // halves per CTA
  std::vector<half_t> init(kCtas * kRegion);
  for (std::size_t i = 0; i < init.size(); ++i) {
    init[i] = half_t::from_bits(static_cast<std::uint16_t>(0x3C00u + i * 7));
  }
  auto src = dev.alloc_copy<half_t>(init, "corpus_src");
  auto dst = dev.alloc<half_t>(init.size(), "corpus_dst");
  run.src_addr = src.addr();

  LaunchConfig cfg;
  cfg.grid = kCtas;
  cfg.cta_threads = 32;
  cfg.smem_bytes = 1024;
  cfg.profile.name = use_span ? "span_corpus" : "lane_corpus";

  run.total = launch(dev, cfg, [&](Cta& cta) {
    const std::size_t base =
        static_cast<std::size_t>(cta.cta_id()) * kRegion;
    Warp w = cta.warp(0);

    // -- uniform: every lane reads the same half (stride 0) ------------
    Lanes<half_t> u{};
    if (use_span) {
      w.ldg_span(src.addr(base), 0, u);
    } else {
      AddrLanes addr{};
      for (int l = 0; l < 32; ++l) addr[static_cast<std::size_t>(l)] =
          src.addr(base);
      w.ldg(addr, u);
    }

    // -- affine half2 load, 20-lane prefix mask ------------------------
    const std::uint32_t pmask = (1u << 20) - 1u;
    Lanes<half2> av{};
    if (use_span) {
      w.ldg_span(src.addr(base + 32), 4, av, pmask);
    } else {
      AddrLanes addr{};
      for (int l = 0; l < 20; ++l) {
        addr[static_cast<std::size_t>(l)] =
            src.addr(base + 32 + 2 * static_cast<std::size_t>(l));
      }
      w.ldg(addr, av, pmask);
    }

    // -- segmented gather: 4 segments x 8 lanes, 16 B stride,
    //    irregularly spaced (16 B aligned) bases ----------------------
    std::uint64_t gbase[4];
    for (int seg = 0; seg < 4; ++seg) {
      gbase[seg] = src.addr(base + 128 + 168 * static_cast<std::size_t>(seg));
    }
    Lanes<half8> sv{};
    if (use_span) {
      w.ldg_span(gbase, 4, 8, 16, sv);
    } else {
      AddrLanes addr{};
      for (int l = 0; l < 32; ++l) {
        addr[static_cast<std::size_t>(l)] =
            gbase[l / 8] + 16u * static_cast<std::uint32_t>(l % 8);
      }
      w.ldg(addr, sv);
    }

    // -- smem round-trip: affine sts/lds + stride-0 broadcast ----------
    if (use_span) {
      w.sts_span(0, 16, sv);
    } else {
      Lanes<std::uint32_t> off{};
      for (int l = 0; l < 32; ++l) off[static_cast<std::size_t>(l)] =
          16u * static_cast<std::uint32_t>(l);
      w.sts(off, sv);
    }
    cta.sync();
    Lanes<half8> rv{};
    Lanes<half8> bv{};
    if (use_span) {
      w.lds_span(0, 16, rv);
      w.lds_span(64, 0, bv);  // uniform smem broadcast
    } else {
      Lanes<std::uint32_t> off{};
      for (int l = 0; l < 32; ++l) off[static_cast<std::size_t>(l)] =
          16u * static_cast<std::uint32_t>(l);
      w.lds(off, rv);
      Lanes<std::uint32_t> uoff{};
      for (int l = 0; l < 32; ++l) uoff[static_cast<std::size_t>(l)] = 64u;
      w.lds(uoff, bv);
    }

    // -- combine (pure per-lane bit math, identical in both variants) --
    Lanes<half8> outv{};
    for (int l = 0; l < 32; ++l) {
      for (int e = 0; e < 8; ++e) {
        const std::uint16_t bits =
            static_cast<std::uint16_t>(rv[static_cast<std::size_t>(l)][e].bits() ^
                                       bv[static_cast<std::size_t>(l)][e].bits() ^
                                       u[static_cast<std::size_t>(l)].bits());
        outv[static_cast<std::size_t>(l)][e] = half_t::from_bits(bits);
      }
    }

    // -- affine writeback ----------------------------------------------
    if (use_span) {
      w.stg_span(dst.addr(base), 16, outv);
    } else {
      AddrLanes addr{};
      for (int l = 0; l < 32; ++l) {
        addr[static_cast<std::size_t>(l)] =
            dst.addr(base + 8 * static_cast<std::size_t>(l));
      }
      w.stg(addr, outv);
    }

    // -- segmented store: 2 segments x 16 lanes, 14-lane prefixes ------
    const std::uint32_t smask = 0x3FFFu | (0x3FFFu << 16);
    std::uint64_t sbase[2] = {dst.addr(base + 512), dst.addr(base + 600)};
    if (use_span) {
      w.stg_span(sbase, 2, 16, 4, av, smask);
    } else {
      AddrLanes addr{};
      for (int l = 0; l < 32; ++l) {
        if (!(smask & (1u << l))) continue;
        addr[static_cast<std::size_t>(l)] =
            sbase[l / 16] + 4u * static_cast<std::uint32_t>(l % 16);
      }
      w.stg(addr, av, smask);
    }
  }, sim);

  for (half_t h : dst.host()) run.dst_bits.push_back(h.bits());
  return run;
}

}  // namespace vsparse::gpusim

// Launch watchdog: a CTA body that issues warp ops forever must abort
// the launch with LaunchTimeoutError carrying a per-SM progress dump,
// at any host thread count, and the engine must stay usable after the
// unwind.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "vsparse/common/rng.hpp"
#include "vsparse/formats/generate.hpp"
#include "vsparse/gpusim/device.hpp"
#include "vsparse/gpusim/engine/launch.hpp"
#include "vsparse/gpusim/engine/launch_config.hpp"
#include "vsparse/gpusim/engine/sim_options.hpp"
#include "vsparse/gpusim/faults.hpp"
#include "vsparse/kernels/spmm/spmm_octet.hpp"

namespace vsparse::gpusim {
namespace {

DeviceConfig test_config() {
  DeviceConfig cfg;
  cfg.dram_capacity = 256 << 20;
  cfg.num_sms = 8;
  return cfg;
}

/// The malformed-input signature the watchdog guards against: a kernel
/// loop that never terminates, here spinning on __syncthreads().
void runaway_body(Cta& cta) {
  for (;;) cta.sync();
}

LaunchConfig runaway_config() {
  LaunchConfig cfg;
  cfg.grid = 16;
  cfg.cta_threads = 64;
  return cfg;
}

class WatchdogThreads : public ::testing::TestWithParam<int> {};

TEST_P(WatchdogThreads, RunawayCtaRaisesTimeoutWithProgressDump) {
  const int threads = GetParam();
  Device dev(test_config());
  const SimOptions sim{.threads = threads, .watchdog_cta_ops = 1000};
  try {
    launch(dev, runaway_config(), runaway_body, sim);
    FAIL() << "runaway CTA must trip the watchdog at threads=" << threads;
  } catch (const LaunchTimeoutError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("op budget"), std::string::npos) << what;
    EXPECT_NE(what.find("per-SM progress"), std::string::npos) << what;
    EXPECT_NE(what.find("ops_in_cta"), std::string::npos) << what;
    EXPECT_NE(what.find("sm0{"), std::string::npos) << what;
  }

  // The engine (and its persistent pool) survives the unwind: the same
  // device runs a finite launch under the same watchdog budget.
  LaunchConfig finite = runaway_config();
  KernelStats stats = launch(
      dev, finite, [](Cta& cta) { cta.sync(); }, sim);
  EXPECT_EQ(stats.ctas_launched, 16u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, WatchdogThreads, ::testing::Values(1, 8));

TEST(Watchdog, DeviceDefaultBudgetInherited) {
  Device dev(test_config());
  dev.set_sim_options(SimOptions{.threads = 1, .watchdog_cta_ops = 500});
  // No per-launch options: the device-wide budget applies.
  EXPECT_THROW(launch(dev, runaway_config(), runaway_body),
               LaunchTimeoutError);
}

TEST(Watchdog, GenerousBudgetDoesNotTripOnRealKernel) {
  Rng rng(5);
  Cvs a = vsparse::make_cvs(64, 96, 4, 0.5, rng);
  DenseMatrix<half_t> b(96, 64);
  b.fill_random_int(rng);

  Device dev(test_config());
  auto da = to_device(dev, a);
  auto db = to_device(dev, b);
  DenseMatrix<half_t> ch(a.rows, b.cols());
  auto dc = to_device(dev, ch);
  const SimOptions sim{.threads = 1,
                       .watchdog_cta_ops = std::uint64_t{1} << 40};
  KernelStats stats = kernels::spmm_octet(dev, da, db, dc, {}, sim).stats;
  EXPECT_GT(stats.ctas_launched, 0u);
}

TEST(Watchdog, DisabledByDefault) {
  Device dev(test_config());
  EXPECT_EQ(dev.sim_options().watchdog_cta_ops, 0u);
  // A modestly long loop completes when no budget is set anywhere.
  LaunchConfig cfg;
  cfg.grid = 1;
  cfg.cta_threads = 32;
  KernelStats stats = launch(dev, cfg, [](Cta& cta) {
    for (int i = 0; i < 100000; ++i) cta.sync();
  });
  EXPECT_EQ(stats.ctas_launched, 1u);
}

}  // namespace
}  // namespace vsparse::gpusim

// Correctness + counter tests for all SDDMM kernels: octet tiling with
// the three inverted-pattern strategies (§6.3/6.4), FPU subwarp tiling
// (§6.1), classic WMMA warp tiling (§6.2), and fine-grained CSR.
#include <gtest/gtest.h>

#include "vsparse/common/rng.hpp"
#include "vsparse/formats/generate.hpp"
#include "vsparse/formats/reference.hpp"
#include "vsparse/kernels/sddmm/sddmm_csr_fine.hpp"
#include "vsparse/kernels/sddmm/sddmm_fpu.hpp"
#include "vsparse/kernels/sddmm/sddmm_octet.hpp"
#include "vsparse/kernels/sddmm/sddmm_wmma.hpp"

namespace vsparse::kernels {
namespace {

gpusim::DeviceConfig test_config() {
  gpusim::DeviceConfig cfg;
  cfg.dram_capacity = 256 << 20;
  cfg.num_sms = 8;
  return cfg;
}

struct SddmmProblem {
  DenseMatrix<half_t> a;
  DenseMatrix<half_t> b;
  Cvs mask;
  Cvs ref;
};

SddmmProblem make_problem(int m, int k, int n, int v, double sparsity,
                          std::uint64_t seed) {
  Rng rng(seed);
  SddmmProblem p{DenseMatrix<half_t>(m, k),
                 DenseMatrix<half_t>(k, n, Layout::kColMajor),
                 make_cvs_mask(m, n, v, sparsity, rng), {}};
  p.a.fill_random_int(rng);
  p.b.fill_random_int(rng);
  p.ref = sddmm_reference(p.a, p.b, p.mask);
  return p;
}

template <class LaunchFn>
void expect_sddmm_matches(const SddmmProblem& p, LaunchFn&& fn) {
  gpusim::Device dev(test_config());
  auto da = to_device(dev, p.a);
  auto db = to_device(dev, p.b);
  auto dmask = to_device(dev, p.mask);
  auto out = dev.alloc<half_t>(p.mask.col_idx.size() *
                               static_cast<std::size_t>(p.mask.v));
  fn(dev, da, db, dmask, out);
  auto got = out.host();
  for (std::size_t i = 0; i < p.ref.values.size(); ++i) {
    ASSERT_EQ(got[i].bits(), p.ref.values[i].bits())
        << "value " << i << " got " << static_cast<float>(got[i]) << " want "
        << static_cast<float>(p.ref.values[i]);
  }
}

class SddmmOctetSweep
    : public ::testing::TestWithParam<
          std::tuple<int, double, InvertedPatternMode>> {};

TEST_P(SddmmOctetSweep, MatchesReference) {
  const auto [v, sparsity, mode] = GetParam();
  SddmmProblem p = make_problem(32, 64, 96, v, sparsity, 3000 + v);
  expect_sddmm_matches(p, [&](auto& dev, auto& da, auto& db, auto& dmask,
                              auto& out) {
    sddmm_octet(dev, da, db, dmask, out, SddmmOctetParams{.mode = mode});
  });
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SddmmOctetSweep,
    ::testing::Combine(
        ::testing::Values(2, 4, 8), ::testing::Values(0.0, 0.5, 0.9),
        ::testing::Values(InvertedPatternMode::kExtraRegisters,
                          InvertedPatternMode::kShuffle,
                          InvertedPatternMode::kArchSwitch)));

TEST(SddmmOctet, ResidueKAndN) {
  // K not a multiple of 64 and rows whose nonzero count is not a
  // multiple of 32 exercise both residue paths.
  SddmmProblem p = make_problem(16, 72, 80, 4, 0.7, 99);
  expect_sddmm_matches(p, [&](auto& dev, auto& da, auto& db, auto& dmask,
                              auto& out) {
    sddmm_octet(dev, da, db, dmask, out);
  });
}

TEST(SddmmOctet, MaskValuesScaleOutputs) {
  SddmmProblem p = make_problem(8, 32, 64, 4, 0.5, 55);
  for (half_t& h : p.mask.values) h = half_t(2.0f);
  p.ref = sddmm_reference(p.a, p.b, p.mask);
  expect_sddmm_matches(p, [&](auto& dev, auto& da, auto& db, auto& dmask,
                              auto& out) {
    sddmm_octet(dev, da, db, dmask, out);
  });
}

TEST(SddmmOctet, ModeCostSignatures) {
  // §7.3.2: mma(arch) removes the operand-switch SHFLs of mma(shfl) and
  // the extra registers of mma(reg).
  SddmmProblem p = make_problem(64, 128, 128, 8, 0.9, 77);
  gpusim::Device dev(test_config());
  auto da = to_device(dev, p.a);
  auto db = to_device(dev, p.b);
  auto dmask = to_device(dev, p.mask);
  auto out = dev.alloc<half_t>(p.mask.col_idx.size() * 8);
  KernelRun reg = sddmm_octet(dev, da, db, dmask, out,
                              {InvertedPatternMode::kExtraRegisters});
  KernelRun shfl =
      sddmm_octet(dev, da, db, dmask, out, {InvertedPatternMode::kShuffle});
  KernelRun arch =
      sddmm_octet(dev, da, db, dmask, out, {InvertedPatternMode::kArchSwitch});

  EXPECT_GT(shfl.stats.op(gpusim::Op::kShfl), arch.stats.op(gpusim::Op::kShfl));
  EXPECT_GT(reg.config.profile.regs_per_thread,
            arch.config.profile.regs_per_thread);
  EXPECT_EQ(reg.stats.op(gpusim::Op::kHmma), arch.stats.op(gpusim::Op::kHmma));
  // And the model must rank arch fastest (the Fig. 19 result).
  gpusim::DeviceConfig hw = gpusim::DeviceConfig::volta_v100();
  EXPECT_LE(arch.cycles(hw), reg.cycles(hw));
  EXPECT_LE(arch.cycles(hw), shfl.cycles(hw));
}

class SddmmFpuSweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(SddmmFpuSweep, MatchesReference) {
  const auto [v, sparsity] = GetParam();
  SddmmProblem p = make_problem(32, 64, 96, v, sparsity, 4000 + v);
  expect_sddmm_matches(p, [&](auto& dev, auto& da, auto& db, auto& dmask,
                              auto& out) {
    sddmm_fpu_subwarp(dev, da, db, dmask, out);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SddmmFpuSweep,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(0.0, 0.5, 0.9)));

TEST(SddmmFpu, SinglePrecisionMatches) {
  Rng rng(5001);
  const int m = 16, k = 64, n = 64, v = 4;
  DenseMatrix<float> a(m, k), b(k, n, Layout::kColMajor);
  for (auto& x : a.data()) x = static_cast<float>(rng.uniform_int(-2, 2));
  for (auto& x : b.data()) x = static_cast<float>(rng.uniform_int(-2, 2));
  Cvs mask = make_cvs_mask(m, n, v, 0.6, rng);

  gpusim::Device dev(test_config());
  auto da = to_device(dev, a);
  auto db = to_device(dev, b);
  auto dmask = to_device_f32(dev, mask);
  auto out = dev.alloc<float>(mask.col_idx.size() * static_cast<std::size_t>(v));
  sddmm_fpu_subwarp_f32(dev, da, db, dmask, out);

  auto got = out.host();
  // Reference in fp32.
  std::size_t idx = 0;
  for (int vr = 0; vr < mask.vec_rows(); ++vr) {
    for (std::int32_t i = mask.row_ptr[static_cast<std::size_t>(vr)];
         i < mask.row_ptr[static_cast<std::size_t>(vr) + 1]; ++i) {
      const std::int32_t col = mask.col_idx[static_cast<std::size_t>(i)];
      for (int t = 0; t < v; ++t) {
        float want = 0.0f;
        for (int kk = 0; kk < k; ++kk) {
          want += a.at(vr * v + t, kk) * b.at(kk, col);
        }
        ASSERT_EQ(got[idx], want) << "value " << idx;
        ++idx;
      }
    }
  }
}

TEST(SddmmFpu, RegisterPressureGrowsWithV) {
  SddmmProblem p2 = make_problem(32, 64, 64, 2, 0.5, 1);
  SddmmProblem p8 = make_problem(32, 64, 64, 8, 0.5, 2);
  gpusim::Device dev(test_config());
  auto run = [&](SddmmProblem& p) {
    auto da = to_device(dev, p.a);
    auto db = to_device(dev, p.b);
    auto dmask = to_device(dev, p.mask);
    auto out = dev.alloc<half_t>(p.mask.col_idx.size() *
                                 static_cast<std::size_t>(p.mask.v));
    return sddmm_fpu_subwarp(dev, da, db, dmask, out);
  };
  KernelRun r2 = run(p2), r8 = run(p8);
  EXPECT_GT(r8.config.profile.regs_per_thread,
            r2.config.profile.regs_per_thread);
  gpusim::DeviceConfig hw;
  EXPECT_LT(r8.cost(hw).active_warps_per_sm, r2.cost(hw).active_warps_per_sm);
}

class SddmmWmmaSweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(SddmmWmmaSweep, MatchesReference) {
  const auto [v, sparsity] = GetParam();
  SddmmProblem p = make_problem(32, 64, 96, v, sparsity, 5000 + v);
  expect_sddmm_matches(p, [&](auto& dev, auto& da, auto& db, auto& dmask,
                              auto& out) {
    sddmm_wmma_warp(dev, da, db, dmask, out);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SddmmWmmaSweep,
    ::testing::Combine(::testing::Values(2, 4, 8),
                       ::testing::Values(0.0, 0.5, 0.9)));

TEST(SddmmCsrFine, HalfAndSingleMatchReference) {
  SddmmProblem p = make_problem(16, 64, 64, 1, 0.8, 6000);
  expect_sddmm_matches(p, [&](auto& dev, auto& da, auto& db, auto& dmask,
                              auto& out) {
    sddmm_csr_fine(dev, da, db, dmask, out);
  });
}

TEST(SddmmOctet, GridMatchesPaperFormula) {
  // §6.4: [M/V] x [N/32] CTAs.
  SddmmProblem p = make_problem(64, 64, 128, 4, 0.9, 7000);
  gpusim::Device dev(test_config());
  auto da = to_device(dev, p.a);
  auto db = to_device(dev, p.b);
  auto dmask = to_device(dev, p.mask);
  auto out = dev.alloc<half_t>(p.mask.col_idx.size() * 4);
  KernelRun run = sddmm_octet(dev, da, db, dmask, out);
  EXPECT_EQ(run.config.grid, (64 / 4) * (128 / 32));
}

}  // namespace
}  // namespace vsparse::kernels

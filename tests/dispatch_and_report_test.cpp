// Tests for the high-level dispatch API, the element-wise transformer
// kernels, and the report/export module.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "vsparse/common/rng.hpp"
#include "vsparse/formats/generate.hpp"
#include "vsparse/formats/reference.hpp"
#include "vsparse/kernels/dispatch.hpp"
#include "vsparse/kernels/elementwise.hpp"
#include "vsparse/report/report.hpp"

namespace vsparse {
namespace {

gpusim::DeviceConfig test_config() {
  gpusim::DeviceConfig cfg;
  cfg.dram_capacity = 128 << 20;
  cfg.num_sms = 4;
  return cfg;
}

TEST(Dispatch, AutoPicksOctetForVectorsFpuForScalars) {
  Rng rng(1);
  gpusim::Device dev(test_config());
  DenseMatrix<half_t> b(64, 64);
  b.fill_random_int(rng);
  auto db = to_device(dev, b);
  DenseMatrix<half_t> ch(32, 64);
  auto dc = to_device(dev, ch);

  Cvs a4 = make_cvs(32, 64, 4, 0.5, rng);
  auto da4 = to_device(dev, a4);
  auto r4 = kernels::spmm(dev, da4, db, dc);
  EXPECT_NE(r4.config.profile.name.find("octet"), std::string::npos);

  Cvs a1 = make_cvs(32, 64, 1, 0.5, rng);
  auto da1 = to_device(dev, a1);
  auto r1 = kernels::spmm(dev, da1, db, dc);
  EXPECT_NE(r1.config.profile.name.find("fpu"), std::string::npos);
}

TEST(Dispatch, ForcedAlgorithmsAllProduceTheSameResult) {
  Rng rng(2);
  Cvs a = make_cvs(32, 64, 4, 0.6, rng);
  for (half_t& h : a.values) {
    h = half_t(static_cast<float>(rng.uniform_int(-2, 2)));
  }
  DenseMatrix<half_t> b(64, 64);
  b.fill_random_int(rng);
  DenseMatrix<half_t> ref = spmm_reference(a, b);
  using kernels::SpmmAlgorithm;
  for (auto algo : {SpmmAlgorithm::kOctet, SpmmAlgorithm::kWmmaWarp,
                    SpmmAlgorithm::kFpuSubwarp}) {
    DenseMatrix<half_t> got =
        kernels::spmm_host(a, b, {.algorithm = algo}).result;
    for (int r = 0; r < 32; ++r) {
      for (int c = 0; c < 64; ++c) {
        ASSERT_EQ(got.at(r, c).bits(), ref.at(r, c).bits())
            << "algo " << static_cast<int>(algo);
      }
    }
  }
}

TEST(Dispatch, SddmmHostRoundTrip) {
  Rng rng(3);
  DenseMatrix<half_t> a(16, 32);
  a.fill_random_int(rng);
  DenseMatrix<half_t> b(32, 64, Layout::kColMajor);
  b.fill_random_int(rng);
  Cvs mask = make_cvs_mask(16, 64, 4, 0.7, rng);
  auto host_run = kernels::sddmm_host(a, b, mask);
  const Cvs& got = host_run.result;
  EXPECT_GT(host_run.run.stats.total_instructions(), 0u);
  Cvs ref = sddmm_reference(a, b, mask);
  ASSERT_EQ(got.values.size(), ref.values.size());
  for (std::size_t i = 0; i < ref.values.size(); ++i) {
    ASSERT_EQ(got.values[i].bits(), ref.values[i].bits()) << i;
  }
}

TEST(Elementwise, BiasAndResidual) {
  Rng rng(4);
  gpusim::Device dev(test_config());
  DenseMatrix<half_t> x(16, 64), y(16, 64);
  x.fill_random_int(rng);
  y.fill_random_int(rng);
  std::vector<half_t> bias_host(64);
  for (auto& h : bias_host) {
    h = half_t(static_cast<float>(rng.uniform_int(-2, 2)));
  }
  auto dx = to_device(dev, x);
  auto dy = to_device(dev, y);
  auto bias = dev.alloc_copy<half_t>(bias_host);

  kernels::bias_add(dev, dx, bias);
  kernels::residual_add(dev, dx, dy);
  DenseMatrix<half_t> got = from_device(dx);
  for (int r = 0; r < 16; ++r) {
    for (int c = 0; c < 64; ++c) {
      const float want = static_cast<float>(x.at(r, c)) +
                         static_cast<float>(bias_host[static_cast<std::size_t>(c)]) +
                         static_cast<float>(y.at(r, c));
      ASSERT_EQ(static_cast<float>(got.at(r, c)), want) << r << "," << c;
    }
  }
}

TEST(Elementwise, GeluMatchesScalarFormula) {
  Rng rng(5);
  gpusim::Device dev(test_config());
  DenseMatrix<half_t> x(8, 64);
  x.fill_random(rng, -3.0f, 3.0f);
  auto dx = to_device(dev, x);
  kernels::gelu(dev, dx);
  DenseMatrix<half_t> got = from_device(dx);
  for (int r = 0; r < 8; ++r) {
    for (int c = 0; c < 64; ++c) {
      const float v = static_cast<float>(x.at(r, c));
      const float want =
          0.5f * v *
          (1.0f + std::tanh(0.7978845608f * (v + 0.044715f * v * v * v)));
      ASSERT_NEAR(static_cast<float>(got.at(r, c)), want, 2e-3f);
    }
  }
  // Sanity: GELU(0)=0, GELU(+large)~identity, GELU(-large)~0.
  EXPECT_EQ(static_cast<float>(half_t(0.0f)), 0.0f);
}

TEST(Elementwise, LayerNormNormalizesRows) {
  Rng rng(6);
  gpusim::Device dev(test_config());
  DenseMatrix<half_t> x(8, 128);
  x.fill_random(rng, -2.0f, 2.0f);
  std::vector<half_t> gamma(128, half_t(1.0f)), beta(128, half_t(0.0f));
  auto dx = to_device(dev, x);
  auto dg = dev.alloc_copy<half_t>(gamma);
  auto db = dev.alloc_copy<half_t>(beta);
  kernels::layer_norm(dev, dx, dg, db);
  DenseMatrix<half_t> got = from_device(dx);
  for (int r = 0; r < 8; ++r) {
    float mean = 0, var = 0;
    for (int c = 0; c < 128; ++c) mean += static_cast<float>(got.at(r, c));
    mean /= 128;
    for (int c = 0; c < 128; ++c) {
      const float d = static_cast<float>(got.at(r, c)) - mean;
      var += d * d;
    }
    var /= 128;
    EXPECT_NEAR(mean, 0.0f, 0.02f) << "row " << r;
    EXPECT_NEAR(var, 1.0f, 0.05f) << "row " << r;
  }
}

TEST(Elementwise, LayerNormAffineApplied) {
  Rng rng(7);
  gpusim::Device dev(test_config());
  DenseMatrix<half_t> x(4, 64);
  x.fill_random(rng, -1.0f, 1.0f);
  std::vector<half_t> gamma(64, half_t(2.0f)), beta(64, half_t(0.5f));
  auto dx = to_device(dev, x);
  auto dg = dev.alloc_copy<half_t>(gamma);
  auto db = dev.alloc_copy<half_t>(beta);
  kernels::layer_norm(dev, dx, dg, db);
  DenseMatrix<half_t> got = from_device(dx);
  for (int r = 0; r < 4; ++r) {
    float mean = 0;
    for (int c = 0; c < 64; ++c) mean += static_cast<float>(got.at(r, c));
    mean /= 64;
    EXPECT_NEAR(mean, 0.5f, 0.03f);  // beta shifts the mean
  }
}

TEST(Report, JsonAndCsvContainTheNumbers) {
  Rng rng(8);
  Cvs a = make_cvs(32, 64, 4, 0.5, rng);
  DenseMatrix<half_t> b(64, 64);
  b.fill_random(rng);
  gpusim::Device dev(test_config());
  auto da = to_device(dev, a);
  auto dbv = to_device(dev, b);
  DenseMatrix<half_t> ch(32, 64);
  auto dc = to_device(dev, ch);
  auto run = kernels::spmm(dev, da, dbv, dc);

  gpusim::DeviceConfig hw;
  report::Record rec = report::make_record(
      run, hw, {{"v", "4"}, {"sparsity", "0.5"}});
  const std::string json = report::to_json(rec);
  EXPECT_NE(json.find("\"kernel\":\"spmm_octet_v4\""), std::string::npos);
  EXPECT_NE(json.find("\"v\":\"4\""), std::string::npos);
  EXPECT_NE(json.find("\"hmma\":"), std::string::npos);

  const std::string row = report::to_csv_row(rec);
  EXPECT_NE(row.find("spmm_octet_v4,v=4;sparsity=0.5,"), std::string::npos);
  // Column count of header and row agree.
  const auto count_commas = [](const std::string& s) {
    return std::count(s.begin(), s.end(), ',');
  };
  EXPECT_EQ(count_commas(report::csv_header()), count_commas(row));

  std::ostringstream os;
  report::write_csv(os, {rec, rec});
  const std::string csv = os.str();
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
  std::ostringstream js;
  report::write_json(js, {rec});
  const std::string json_doc = js.str();
  EXPECT_EQ(json_doc.front(), '[');
}

}  // namespace
}  // namespace vsparse

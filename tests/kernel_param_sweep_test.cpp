// Parameterized correctness sweeps over the kernels' tuning spaces —
// every (parameter, shape, sparsity) combination must stay bit-exact
// against the reference, independent of the performance knobs.
#include <gtest/gtest.h>

#include "vsparse/common/rng.hpp"
#include "vsparse/formats/generate.hpp"
#include "vsparse/formats/reference.hpp"
#include "vsparse/kernels/sddmm/sddmm_fpu.hpp"
#include "vsparse/kernels/spmm/spmm_fpu.hpp"
#include "vsparse/kernels/spmm/spmm_octet.hpp"
#include "vsparse/transformer/model.hpp"

namespace vsparse::kernels {
namespace {

gpusim::DeviceConfig test_config() {
  gpusim::DeviceConfig cfg;
  cfg.dram_capacity = 256 << 20;
  cfg.num_sms = 8;
  return cfg;
}

Cvs int_cvs(int m, int k, int v, double sparsity, std::uint64_t seed) {
  Rng rng(seed);
  Cvs a = make_cvs(m, k, v, sparsity, rng);
  for (half_t& h : a.values) {
    const float x = static_cast<float>(rng.uniform_int(-3, 3));
    h = half_t(x == 0.0f ? 1.0f : x);
  }
  return a;
}

class OctetTileKSweep
    : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(OctetTileKSweep, BitExactForEveryTileK) {
  const auto [tile_k, v, batch] = GetParam();
  Cvs a = int_cvs(64, 160, v, 0.75, 77 + static_cast<std::uint64_t>(tile_k));
  Rng rng(5);
  DenseMatrix<half_t> b(160, 64);
  b.fill_random_int(rng);
  gpusim::Device dev(test_config());
  auto da = to_device(dev, a);
  auto db = to_device(dev, b);
  DenseMatrix<half_t> ch(64, 64);
  auto dc = to_device(dev, ch);
  spmm_octet(dev, da, db, dc,
             SpmmOctetParams{.tile_k = tile_k, .batch_loads = batch});
  DenseMatrix<half_t> got = from_device(dc);
  DenseMatrix<half_t> ref = spmm_reference(a, b);
  for (int r = 0; r < 64; ++r) {
    for (int j = 0; j < 64; ++j) {
      ASSERT_EQ(got.at(r, j).bits(), ref.at(r, j).bits())
          << "tile_k=" << tile_k << " v=" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OctetTileKSweep,
    ::testing::Combine(::testing::Values(4, 8, 16, 32),
                       ::testing::Values(2, 4, 8),
                       ::testing::Values(true, false)));

class FpuTileSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FpuTileSweep, BitExactForEveryTileShape) {
  const auto [tile_n, tile_k] = GetParam();
  Cvs a = int_cvs(32, 96, 4, 0.6, 99);
  Rng rng(6);
  DenseMatrix<half_t> b(96, 64);
  b.fill_random_int(rng);
  gpusim::Device dev(test_config());
  auto da = to_device(dev, a);
  auto db = to_device(dev, b);
  DenseMatrix<half_t> ch(32, 64);
  auto dc = to_device(dev, ch);
  spmm_fpu_subwarp(dev, da, db, dc,
                   SpmmFpuParams{.tile_n = tile_n, .tile_k = tile_k});
  DenseMatrix<half_t> got = from_device(dc);
  DenseMatrix<half_t> ref = spmm_reference(a, b);
  for (int r = 0; r < 32; ++r) {
    for (int j = 0; j < 64; ++j) {
      ASSERT_EQ(got.at(r, j).bits(), ref.at(r, j).bits())
          << "tile_n=" << tile_n << " tile_k=" << tile_k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, FpuTileSweep,
                         ::testing::Combine(::testing::Values(16, 32, 64),
                                            ::testing::Values(16, 32, 64)));

class SddmmFpuTileSweep : public ::testing::TestWithParam<int> {};

TEST_P(SddmmFpuTileSweep, BitExactForEveryTileN) {
  const int tile_n = GetParam();
  Rng rng(8);
  DenseMatrix<half_t> a(16, 64), b(64, 96, Layout::kColMajor);
  a.fill_random_int(rng);
  b.fill_random_int(rng);
  Cvs mask = make_cvs_mask(16, 96, 4, 0.6, rng);
  Cvs ref = sddmm_reference(a, b, mask);
  gpusim::Device dev(test_config());
  auto da = to_device(dev, a);
  auto db = to_device(dev, b);
  auto dmask = to_device(dev, mask);
  auto out = dev.alloc<half_t>(mask.values.size());
  sddmm_fpu_subwarp(dev, da, db, dmask, out,
                    SddmmFpuParams{.tile_n = tile_n});
  auto got = out.host();
  for (std::size_t i = 0; i < ref.values.size(); ++i) {
    ASSERT_EQ(got[i].bits(), ref.values[i].bits()) << "tile_n=" << tile_n;
  }
}

INSTANTIATE_TEST_SUITE_P(TileNs, SddmmFpuTileSweep,
                         ::testing::Values(1, 2, 4, 8));

// Transformer modes as a parameterized sweep: every mode must produce a
// complete breakdown and positive throughput at several shapes.
class ModelModeSweep
    : public ::testing::TestWithParam<
          std::tuple<transformer::Mode, int, double>> {};

TEST_P(ModelModeSweep, ForwardCompletesWithSaneBreakdown) {
  const auto [mode, seq, sparsity] = GetParam();
  gpusim::Device dev(test_config());
  transformer::ModelConfig cfg;
  cfg.seq = seq;
  cfg.layers = 1;
  cfg.batch = 1;
  cfg.band = 64;
  cfg.sparsity = sparsity;
  cfg.mode = mode;
  auto r = transformer::run_transformer_forward(dev, cfg, 11);
  EXPECT_GT(r.qk_cycles, 0);
  EXPECT_GT(r.softmax_cycles, 0);
  EXPECT_GT(r.av_cycles, 0);
  EXPECT_GT(r.other_cycles, r.softmax_cycles);  // projections dominate softmax
  EXPECT_GT(r.throughput(1.38e9, 1), 0);
  EXPECT_GT(r.peak_memory_bytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ModelModeSweep,
    ::testing::Combine(::testing::Values(transformer::Mode::kDenseFloat,
                                         transformer::Mode::kDenseHalf,
                                         transformer::Mode::kSparseHalf),
                       ::testing::Values(128, 256),
                       ::testing::Values(0.9, 0.98)));

}  // namespace
}  // namespace vsparse::kernels

// BoundedQueue shutdown contracts: close() must wake a consumer
// blocked in pop_wait() on an empty queue and a producer blocked in
// push_wait() on a full one (shutdown can't hang), a closed queue
// still drains what it already accepted, and there is deliberately no
// reopen — every post-close admission is a counted rejection, forever.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "vsparse/serve/queue.hpp"

namespace vsparse {
namespace {

using serve::BoundedQueue;

TEST(ServeQueue, CloseWakesConsumerBlockedOnEmptyQueue) {
  BoundedQueue<int> q(4);
  std::atomic<bool> woke{false};
  std::thread consumer([&] {
    const auto item = q.pop_wait();  // blocks: queue is empty, not closed
    EXPECT_FALSE(item.has_value()) << "closed empty queue must yield nullopt";
    woke.store(true);
  });
  // Let the consumer reach the wait; close() is correct in either
  // interleaving (before or after the block), the sleep just makes the
  // interesting one overwhelmingly likely.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  consumer.join();
  EXPECT_TRUE(woke.load());
}

TEST(ServeQueue, CloseWakesProducerBlockedOnFullQueue) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.try_push(7));  // fill to capacity
  std::atomic<bool> woke{false};
  std::thread producer([&] {
    const bool pushed = q.push_wait(8);  // blocks: queue is full
    EXPECT_FALSE(pushed) << "push_wait on a closed queue must fail";
    woke.store(true);
  });
  q.close();
  producer.join();
  EXPECT_TRUE(woke.load());
  EXPECT_EQ(q.rejected(), 1u);  // the woken push is a counted rejection

  // The item admitted before close still drains.
  const auto item = q.pop_wait();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(*item, 7);
  EXPECT_FALSE(q.pop_wait().has_value());
}

TEST(ServeQueue, ClosedQueueRejectsEveryAdmissionPath) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.try_push(1));
  q.close();
  q.close();  // idempotent: double-close is not an error

  // No reopen exists: every admission path fails and is counted.
  EXPECT_FALSE(q.try_push(2));
  EXPECT_FALSE(q.push_wait(3));  // must not block on a closed queue
  EXPECT_EQ(q.rejected(), 2u);
  EXPECT_EQ(q.accepted(), 1u);

  // Drain-after-close: the backlog survives, then nullopt forever.
  auto item = q.try_pop();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(*item, 1);
  EXPECT_FALSE(q.try_pop().has_value());
  EXPECT_FALSE(q.pop_wait().has_value());
  EXPECT_EQ(q.size(), 0u);
}

TEST(ServeQueue, BackpressureCountsSurviveClose) {
  BoundedQueue<int> q(2);
  ASSERT_TRUE(q.try_push(1));
  ASSERT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full: backpressure rejection
  q.close();
  EXPECT_FALSE(q.try_push(4));  // closed: also a rejection
  EXPECT_EQ(q.accepted(), 2u);
  EXPECT_EQ(q.rejected(), 2u);
  EXPECT_EQ(q.capacity(), 2u);
}

}  // namespace
}  // namespace vsparse

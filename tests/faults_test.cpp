// Fault-injection acceptance tests: a targeted DRAM bit flip in the
// dense GEMM and the octet SpMM must be (a) detected and recovered by
// the ABFT kernel variants to the exact fault-free result with ECC
// off, (b) corrected transparently with ECC on, and (c) raised as a
// structured EccError for a double-bit upset.  Plus the determinism
// contract: rate-based fault counts are identical at any host thread
// count, and an attached-but-empty plan is bit-identical to no plan.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "vsparse/common/rng.hpp"
#include "vsparse/formats/generate.hpp"
#include "vsparse/gpusim/device.hpp"
#include "vsparse/gpusim/faults.hpp"
#include "vsparse/kernels/dense/gemm_abft.hpp"
#include "vsparse/kernels/spmm/spmm_octet_abft.hpp"

namespace vsparse::kernels {
namespace {

gpusim::DeviceConfig test_config() {
  gpusim::DeviceConfig cfg;
  cfg.dram_capacity = 256 << 20;
  cfg.num_sms = 8;
  return cfg;
}

std::vector<std::uint16_t> bits_of(const DenseDevice<half_t>& m) {
  std::vector<std::uint16_t> out;
  for (half_t h : m.buf.host()) out.push_back(h.bits());
  return out;
}

// ---- dense GEMM ------------------------------------------------------

/// 64x64x64 problem with integer-exact values and two pinned elements:
/// A(0,1) = 2.0 is the fault target (flipping bit 14 of its fp16 word
/// zeroes it, a delta of 2) and B(1,0) = 3.0 guarantees the delta is
/// visible in output column 0 well above the checksum tolerance.
struct GemmProblem {
  DenseMatrix<half_t> a{64, 64};
  DenseMatrix<half_t> b{64, 64};

  GemmProblem() {
    Rng rng(321);
    a.fill_random_int(rng);
    b.fill_random_int(rng);
    a.at(0, 1) = half_t(2.0f);
    b.at(1, 0) = half_t(8.0f);
  }
};

struct GemmRun {
  std::vector<std::uint16_t> out_bits;
  KernelRun run;
  gpusim::Device dev{test_config()};
};

/// Upload the problem, optionally attach `plan` with a targeted flip at
/// A(0,1)'s high byte, and run the ABFT GEMM.
GemmRun run_gemm_abft(const GemmProblem& p, gpusim::FaultPlan* plan,
                      int n_bits = 1) {
  GemmRun r;
  auto da = to_device(r.dev, p.a);
  auto db = to_device(r.dev, p.b);
  DenseMatrix<half_t> ch(64, 64);
  auto dc = to_device(r.dev, ch);
  if (plan != nullptr) {
    // Byte 1 of the little-endian fp16 word, bit 6 -> flips 0x4000.
    plan->add_target({gpusim::FaultSite::kDramRead, da.addr(0, 1) + 1, 6,
                      n_bits, /*sticky=*/false});
    r.dev.set_fault_plan(plan);
  }
  r.run = hgemm_tcu_abft(r.dev, da, db, dc);
  r.out_bits = bits_of(dc);
  return r;
}

TEST(FaultGemm, AbftRecoversDramFlipToExactResult) {
  GemmProblem p;
  const GemmRun clean = run_gemm_abft(p, nullptr);
  EXPECT_TRUE(clean.run.abft.enabled);
  EXPECT_TRUE(clean.run.abft.clean);
  EXPECT_EQ(clean.run.abft.corrupted_tiles, 0);
  EXPECT_EQ(clean.run.abft.recompute_launches, 0);
  EXPECT_EQ(clean.run.stats.faults_injected, 0u);

  gpusim::FaultPlan plan(/*seed=*/7, /*ecc_enabled=*/false);
  const GemmRun faulty = run_gemm_abft(p, &plan);
  EXPECT_GE(plan.injected(), 1u);
  EXPECT_GE(faulty.run.stats.faults_injected, 1u);
  EXPECT_EQ(faulty.run.stats.faults_masked, 0u);
  EXPECT_TRUE(faulty.run.abft.enabled);
  EXPECT_GE(faulty.run.abft.corrupted_tiles, 1);
  EXPECT_GE(faulty.run.abft.recompute_launches, 1);
  EXPECT_TRUE(faulty.run.abft.clean);
  ASSERT_EQ(faulty.out_bits.size(), clean.out_bits.size());
  for (std::size_t i = 0; i < clean.out_bits.size(); ++i) {
    ASSERT_EQ(faulty.out_bits[i], clean.out_bits[i])
        << "recovered output word " << i << " differs from fault-free run";
  }
}

TEST(FaultGemm, EccCorrectsSingleBitTransparently) {
  GemmProblem p;
  const GemmRun clean = run_gemm_abft(p, nullptr);

  gpusim::FaultPlan plan(/*seed=*/7, /*ecc_enabled=*/true);
  const GemmRun ecc = run_gemm_abft(p, &plan);
  EXPECT_GE(ecc.run.stats.faults_injected, 1u);
  EXPECT_GE(ecc.run.stats.faults_masked, 1u);
  EXPECT_EQ(ecc.run.stats.faults_detected, 0u);
  EXPECT_GE(plan.masked(), 1u);
  // ECC corrected in flight: ABFT saw a clean launch.
  EXPECT_EQ(ecc.run.abft.corrupted_tiles, 0);
  EXPECT_EQ(ecc.run.abft.recompute_launches, 0);
  ASSERT_EQ(ecc.out_bits, clean.out_bits);
}

TEST(FaultGemm, EccDoubleBitRaisesStructuredError) {
  GemmProblem p;
  gpusim::FaultPlan plan(/*seed=*/7, /*ecc_enabled=*/true);
  try {
    run_gemm_abft(p, &plan, /*n_bits=*/2);
    FAIL() << "double-bit upset with ECC on must raise EccError";
  } catch (const gpusim::EccError& e) {
    EXPECT_EQ(e.site(), gpusim::FaultSite::kDramRead);
    EXPECT_GE(e.sm_id(), 0);
  }
  EXPECT_GE(plan.detected(), 1u);
}

// ---- octet SpMM ------------------------------------------------------

/// 32x96 CVS at V=4 with integer-exact values; values[0] (lane 0 of
/// vector row 0's first nonzero vector) is pinned to 2.0 as the fault
/// target and B row col_idx[0] gets a pinned 3.0 so the flip is
/// detectable in output column 0.
struct SpmmProblem {
  Cvs a;
  DenseMatrix<half_t> b{96, 64};

  SpmmProblem() {
    Rng rng(99);
    a = make_cvs(32, 96, 4, 0.5, rng);
    for (half_t& h : a.values) {
      h = half_t(static_cast<float>(rng.uniform_int(-3, 3)));
    }
    b.fill_random_int(rng);
    a.values[0] = half_t(2.0f);
    b.at(a.col_idx[0], 0) = half_t(8.0f);
  }
};

struct SpmmRun {
  std::vector<std::uint16_t> out_bits;
  KernelRun run;
  gpusim::Device dev{test_config()};
};

SpmmRun run_spmm_abft(const SpmmProblem& p, gpusim::FaultPlan* plan,
                      const gpusim::FaultRates* rates = nullptr,
                      int threads = 1) {
  SpmmRun r;
  auto a = to_device(r.dev, p.a);
  auto b = to_device(r.dev, p.b);
  DenseMatrix<half_t> ch(p.a.rows, p.b.cols());
  auto c = to_device(r.dev, ch);
  if (plan != nullptr) {
    if (rates != nullptr) {
      plan->set_rates(*rates);
    } else {
      plan->add_target({gpusim::FaultSite::kDramRead, a.values.addr(0) + 1, 6,
                        /*n_bits=*/1, /*sticky=*/false});
    }
    r.dev.set_fault_plan(plan);
  }
  r.run = spmm_octet_abft(r.dev, a, b, c, {}, {},
                          gpusim::SimOptions{.threads = threads});
  r.out_bits = bits_of(c);
  return r;
}

TEST(FaultSpmm, AbftRecoversDramFlipToExactResult) {
  SpmmProblem p;
  ASSERT_GT(p.a.row_ptr[1], p.a.row_ptr[0])
      << "test needs a nonzero in vector row 0";
  const SpmmRun clean = run_spmm_abft(p, nullptr);
  EXPECT_TRUE(clean.run.abft.clean);
  EXPECT_EQ(clean.run.abft.corrupted_tiles, 0);

  gpusim::FaultPlan plan(/*seed=*/11, /*ecc_enabled=*/false);
  const SpmmRun faulty = run_spmm_abft(p, &plan);
  EXPECT_GE(faulty.run.stats.faults_injected, 1u);
  EXPECT_GE(faulty.run.abft.corrupted_tiles, 1);
  EXPECT_GE(faulty.run.abft.recompute_launches, 1);
  EXPECT_TRUE(faulty.run.abft.clean);
  ASSERT_EQ(faulty.out_bits.size(), clean.out_bits.size());
  for (std::size_t i = 0; i < clean.out_bits.size(); ++i) {
    ASSERT_EQ(faulty.out_bits[i], clean.out_bits[i])
        << "recovered output word " << i << " differs from fault-free run";
  }
}

TEST(FaultSpmm, EccCorrectsSingleBitTransparently) {
  SpmmProblem p;
  const SpmmRun clean = run_spmm_abft(p, nullptr);

  gpusim::FaultPlan plan(/*seed=*/11, /*ecc_enabled=*/true);
  const SpmmRun ecc = run_spmm_abft(p, &plan);
  EXPECT_GE(ecc.run.stats.faults_masked, 1u);
  EXPECT_EQ(ecc.run.stats.faults_detected, 0u);
  EXPECT_EQ(ecc.run.abft.corrupted_tiles, 0);
  ASSERT_EQ(ecc.out_bits, clean.out_bits);
}

TEST(FaultSpmm, EccDoubleBitRaisesStructuredError) {
  SpmmProblem p;
  SpmmRun r;
  auto a = to_device(r.dev, p.a);
  auto b = to_device(r.dev, p.b);
  DenseMatrix<half_t> ch(p.a.rows, p.b.cols());
  auto c = to_device(r.dev, ch);
  gpusim::FaultPlan plan(/*seed=*/11, /*ecc_enabled=*/true);
  plan.add_target({gpusim::FaultSite::kDramRead, a.values.addr(0) + 1, 6,
                   /*n_bits=*/2, /*sticky=*/false});
  r.dev.set_fault_plan(&plan);
  EXPECT_THROW(spmm_octet_abft(r.dev, a, b, c), gpusim::EccError);
  EXPECT_GE(plan.detected(), 1u);
  // The device stays usable after the unwind: detach and run clean.
  r.dev.set_fault_plan(nullptr);
  KernelRun rerun = spmm_octet_abft(r.dev, a, b, c);
  EXPECT_TRUE(rerun.abft.clean);
  EXPECT_EQ(rerun.stats.faults_injected, 0u);
}

TEST(FaultSpmm, RateFaultCountsAreThreadCountInvariant) {
  SpmmProblem p;
  const SpmmRun clean = run_spmm_abft(p, nullptr);

  // Same seed, fresh plan per run: the per-SM access sequences are
  // bit-reproducible at any thread count, so the deterministic rate
  // decisions land on identical accesses.  ECC corrects every
  // single-bit upset, so the output stays exact too.
  const gpusim::FaultRates rates{.dram_read = 0.02};
  gpusim::FaultPlan serial_plan(/*seed=*/42, /*ecc_enabled=*/true);
  const SpmmRun serial = run_spmm_abft(p, &serial_plan, &rates, /*threads=*/1);
  ASSERT_GT(serial.run.stats.faults_injected, 0u)
      << "rate too low to exercise the injector";
  EXPECT_EQ(serial.run.stats.faults_injected, serial.run.stats.faults_masked);

  gpusim::FaultPlan threaded_plan(/*seed=*/42, /*ecc_enabled=*/true);
  const SpmmRun threaded =
      run_spmm_abft(p, &threaded_plan, &rates, /*threads=*/8);
  EXPECT_EQ(serial.run.stats.faults_injected,
            threaded.run.stats.faults_injected);
  EXPECT_EQ(serial.run.stats.faults_masked, threaded.run.stats.faults_masked);
  ASSERT_EQ(serial.out_bits, threaded.out_bits);
  ASSERT_EQ(serial.out_bits, clean.out_bits);
}

TEST(FaultSpmm, EmptyPlanIsBitIdenticalToNoPlan) {
  SpmmProblem p;
  const SpmmRun none = run_spmm_abft(p, nullptr);
  gpusim::FaultPlan empty(/*seed=*/1, /*ecc_enabled=*/true);
  const gpusim::FaultRates zero{};
  const SpmmRun attached = run_spmm_abft(p, &empty, &zero);
  EXPECT_EQ(attached.run.stats.faults_injected, 0u);
  EXPECT_EQ(attached.run.stats.faults_masked, 0u);
  EXPECT_EQ(attached.run.stats.faults_detected, 0u);
  ASSERT_EQ(attached.out_bits, none.out_bits);
  EXPECT_TRUE(none.run.stats.sm_local_equal(attached.run.stats));
}

}  // namespace
}  // namespace vsparse::kernels

// Correctness + counter tests for the dense GEMM baselines.
#include "vsparse/kernels/dense/gemm.hpp"

#include <gtest/gtest.h>

#include "vsparse/common/rng.hpp"
#include "vsparse/formats/reference.hpp"

namespace vsparse::kernels {
namespace {

gpusim::DeviceConfig test_config() {
  gpusim::DeviceConfig cfg;
  cfg.dram_capacity = 256 << 20;
  cfg.num_sms = 8;
  return cfg;
}

class HgemmTest : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(HgemmTest, MatchesReference) {
  const auto [m, k, n] = GetParam();
  gpusim::Device dev(test_config());
  Rng rng(1000 + m + k + n);
  DenseMatrix<half_t> a(m, k), b(k, n);
  a.fill_random_int(rng);
  b.fill_random_int(rng);
  auto da = to_device(dev, a);
  auto db = to_device(dev, b);
  DenseMatrix<half_t> c_host(m, n);
  auto dc = to_device(dev, c_host);

  KernelRun run = hgemm_tcu(dev, da, db, dc);
  DenseMatrix<half_t> c = from_device(dc);
  DenseMatrix<half_t> ref = gemm_reference(a, b);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      ASSERT_EQ(c.at(i, j).bits(), ref.at(i, j).bits())
          << "(" << i << "," << j << ") got " << static_cast<float>(c.at(i, j))
          << " want " << static_cast<float>(ref.at(i, j));
    }
  }
  // HMMA covers the whole problem: one HMMA.884 step = 4 octets x
  // (4x4 outputs x 4 k) = 256 MACs.
  const auto hmma = run.stats.op(gpusim::Op::kHmma);
  EXPECT_EQ(hmma, static_cast<std::uint64_t>(m) * n * k / 256);
}

INSTANTIATE_TEST_SUITE_P(Shapes, HgemmTest,
                         ::testing::Values(std::tuple{64, 16, 64},
                                           std::tuple{64, 32, 128},
                                           std::tuple{128, 64, 64},
                                           std::tuple{192, 48, 128}));

TEST(Hgemm, ColMajorBMatchesReference) {
  gpusim::Device dev(test_config());
  Rng rng(7);
  DenseMatrix<half_t> a(64, 32), b(32, 64, Layout::kColMajor);
  a.fill_random_int(rng);
  b.fill_random_int(rng);
  auto da = to_device(dev, a);
  auto db = to_device(dev, b);
  DenseMatrix<half_t> c_host(64, 64);
  auto dc = to_device(dev, c_host);
  hgemm_tcu(dev, da, db, dc);
  DenseMatrix<half_t> c = from_device(dc);
  DenseMatrix<half_t> ref = gemm_reference(a, b);
  for (int i = 0; i < 64; ++i) {
    for (int j = 0; j < 64; ++j) {
      ASSERT_EQ(c.at(i, j).bits(), ref.at(i, j).bits()) << i << "," << j;
    }
  }
}

TEST(Hgemm, RejectsUnpaddedShapes) {
  gpusim::Device dev(test_config());
  DenseMatrix<half_t> a(60, 16), b(16, 64);
  auto da = to_device(dev, a);
  auto db = to_device(dev, b);
  DenseMatrix<half_t> ch(60, 64);
  auto dc = to_device(dev, ch);
  EXPECT_THROW(hgemm_tcu(dev, da, db, dc), CheckError);
}

TEST(Hgemm, GoodMemoryBehaviour) {
  // The §3.1 signature of a dense TCU GEMM: perfectly coalesced global
  // loads (LDG.128, high sectors/request) and heavy smem reuse.
  gpusim::Device dev(test_config());
  Rng rng(9);
  DenseMatrix<half_t> a(256, 128), b(128, 256);
  a.fill_random(rng);
  b.fill_random(rng);
  auto da = to_device(dev, a);
  auto db = to_device(dev, b);
  DenseMatrix<half_t> ch(256, 256);
  auto dc = to_device(dev, ch);
  KernelRun run = hgemm_tcu(dev, da, db, dc);
  EXPECT_GT(run.stats.sectors_per_request(), 10.0);
  EXPECT_GT(run.stats.smem_to_global_load_ratio(), 2.0);
  EXPECT_EQ(run.stats.ldg32, 0u);  // everything is LDG.128
  EXPECT_EQ(run.stats.ldg64, 0u);
}

class SgemmTest : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SgemmTest, MatchesReference) {
  const auto [m, k, n] = GetParam();
  gpusim::Device dev(test_config());
  Rng rng(2000 + m + k + n);
  DenseMatrix<float> a(m, k), b(k, n);
  a.fill_random(rng);
  b.fill_random(rng);
  auto da = to_device(dev, a);
  auto db = to_device(dev, b);
  DenseMatrix<float> c_host(m, n);
  auto dc = to_device(dev, c_host);
  sgemm_fpu(dev, da, db, dc);
  DenseMatrix<float> c = from_device(dc);
  // fp32 throughout with identical accumulation order per element.
  DenseMatrix<float> ref = gemm_reference(a, b);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      ASSERT_NEAR(c.at(i, j), ref.at(i, j), 1e-3f) << i << "," << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SgemmTest,
                         ::testing::Values(std::tuple{64, 16, 64},
                                           std::tuple{128, 32, 64},
                                           std::tuple{64, 64, 192}));

TEST(Sgemm, UsesFpuNotTcu) {
  gpusim::Device dev(test_config());
  Rng rng(3);
  DenseMatrix<float> a(64, 32), b(32, 64);
  a.fill_random(rng);
  b.fill_random(rng);
  auto da = to_device(dev, a);
  auto db = to_device(dev, b);
  DenseMatrix<float> ch(64, 64);
  auto dc = to_device(dev, ch);
  KernelRun run = sgemm_fpu(dev, da, db, dc);
  EXPECT_EQ(run.stats.op(gpusim::Op::kHmma), 0u);
  EXPECT_GT(run.stats.op(gpusim::Op::kFfma), 0u);
}

TEST(GemmCost, HalfBeatsSingleAndTcuBeatsFpu) {
  // The Fig. 4/5 premise: cublasHgemm is much faster than cublasSgemm on
  // the same problem because of TCU math and halved traffic.
  gpusim::DeviceConfig hw = gpusim::DeviceConfig::volta_v100();
  gpusim::Device dev(test_config());
  Rng rng(4);
  const int m = 256, k = 128, n = 256;
  DenseMatrix<half_t> ah(m, k), bh(k, n);
  ah.fill_random(rng);
  bh.fill_random(rng);
  DenseMatrix<float> af(m, k), bf(k, n);
  af.fill_random(rng);
  bf.fill_random(rng);
  auto dah = to_device(dev, ah);
  auto dbh = to_device(dev, bh);
  DenseMatrix<half_t> chh(m, n);
  auto dch = to_device(dev, chh);
  auto daf = to_device(dev, af);
  auto dbf = to_device(dev, bf);
  DenseMatrix<float> chf(m, n);
  auto dcf = to_device(dev, chf);

  KernelRun h = hgemm_tcu(dev, dah, dbh, dch);
  KernelRun s = sgemm_fpu(dev, daf, dbf, dcf);
  EXPECT_LT(h.cycles(hw), s.cycles(hw));
}

}  // namespace
}  // namespace vsparse::kernels

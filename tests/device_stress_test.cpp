// Concurrency stress for Device's allocation accounting (the satellite
// fix of ISSUE 4): many host threads hammering alloc/free/translate on
// ONE device — the serving scenario where requests are admitted from a
// queue while launches are in flight — plus concurrent kernel launches
// sharing the device.  Asserts the counters (used/live/peak/allocation
// map) stay exact under the race and results stay correct; the CI
// serve-soak job runs this under ASan+UBSan.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "vsparse/common/rng.hpp"
#include "vsparse/formats/dense.hpp"
#include "vsparse/formats/generate.hpp"
#include "vsparse/gpusim/device.hpp"
#include "vsparse/kernels/dispatch.hpp"

namespace vsparse {
namespace {

gpusim::DeviceConfig test_config() {
  gpusim::DeviceConfig cfg = gpusim::DeviceConfig::volta_v100();
  cfg.dram_capacity = 512u << 20;
  return cfg;
}

TEST(DeviceStress, ConcurrentAllocFreeTranslateKeepsAccountingExact) {
  gpusim::Device dev(test_config());
  constexpr int kThreads = 8;
  constexpr int kRounds = 200;
  constexpr std::size_t kElems = 1024;  // 4 KiB per allocation

  std::atomic<std::size_t> leaked_bytes{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      std::size_t kept = 0;
      for (int r = 0; r < kRounds; ++r) {
        auto buf = dev.alloc<std::uint32_t>(kElems);
        // Touch the translated span: the bounds check in translate()
        // reads the bump pointer concurrently with other allocators.
        auto span = buf.host();
        span[0] = static_cast<std::uint32_t>(t * kRounds + r);
        span[kElems - 1] = span[0];
        EXPECT_EQ(span[0], span[kElems - 1]);
        if (r % 4 == 0) {
          kept += kElems * sizeof(std::uint32_t);  // deliberately leak
        } else {
          dev.free(buf);
        }
      }
      leaked_bytes.fetch_add(kept);
    });
  }
  for (auto& w : workers) w.join();

  // Exactly the deliberately-leaked allocations remain live, the peak
  // saw at least that much, and the bump pointer covers every alloc.
  EXPECT_EQ(dev.live_bytes(), leaked_bytes.load());
  EXPECT_GE(dev.peak_bytes(), dev.live_bytes());
  EXPECT_EQ(dev.used_bytes(),
            static_cast<std::size_t>(kThreads) * kRounds * kElems *
                sizeof(std::uint32_t));

  // Double-free detection still works after the storm.
  auto buf = dev.alloc<std::uint32_t>(8);
  dev.free(buf);
  EXPECT_ANY_THROW(dev.free(buf));
}

TEST(DeviceStress, ConcurrentLaunchesWithAllocChurnStayCorrect) {
  gpusim::Device dev(test_config());
  constexpr int kLaunchers = 4;

  // Each launcher runs its own small SpMM on the shared device and
  // checks the result against a serial reference; meanwhile churners
  // allocate and free concurrently.
  std::atomic<bool> stop{false};
  std::vector<std::thread> churners;
  for (int t = 0; t < 2; ++t) {
    churners.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto buf = dev.alloc<half_t>(2048);
        buf.host()[0] = half_t(1.0f);
        dev.free(buf);
      }
    });
  }

  std::vector<std::thread> launchers;
  std::atomic<int> failures{0};
  for (int t = 0; t < kLaunchers; ++t) {
    launchers.emplace_back([&, t] {
      Rng rng(100 + t);
      Cvs a_host = make_cvs(64, 64, 4, 0.7, rng);
      DenseMatrix<half_t> b_host(64, 64);
      b_host.fill_random_int(rng);
      DenseMatrix<half_t> c_host(64, 64);

      // Reference on a private device.
      gpusim::Device ref_dev(test_config());
      CvsDevice ra = to_device(ref_dev, a_host);
      DenseDevice<half_t> rb = to_device(ref_dev, b_host);
      DenseDevice<half_t> rc = to_device(ref_dev, c_host);
      kernels::spmm(ref_dev, ra, rb, rc, {});

      for (int round = 0; round < 8; ++round) {
        CvsDevice a = to_device(dev, a_host);
        DenseDevice<half_t> b = to_device(dev, b_host);
        DenseDevice<half_t> c = to_device(dev, c_host);
        kernels::spmm(dev, a, b, c, {});
        const auto got = c.buf.host();
        const auto want = rc.buf.host();
        if (got.size() != want.size() ||
            std::memcmp(got.data(), want.data(), got.size_bytes()) != 0) {
          failures.fetch_add(1);
        }
        dev.free(c.buf);
        dev.free(b.buf);
        dev.free(a.values);
        dev.free(a.col_idx);
        dev.free(a.row_ptr);
      }
    });
  }
  for (auto& w : launchers) w.join();
  stop.store(true);
  for (auto& w : churners) w.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(dev.live_bytes(), 0u);
  EXPECT_GE(dev.peak_bytes(), 0u);
}

}  // namespace
}  // namespace vsparse

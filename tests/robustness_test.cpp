// Negative-path robustness: malformed .smtx inputs are rejected with
// classified vsparse::Error{kMalformedFormat} (not crashes or silent
// misparses), the dispatch layer rejects shape mismatches and
// unsupported ABFT algorithms with kBadDispatch, worker and caller
// exceptions unwind the threaded engine cleanly with the pool reusable
// afterwards, and the allocator's overflow guards hold with their
// taxonomy codes (kAllocOverflow / kOutOfMemory).
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "vsparse/common/macros.hpp"
#include "vsparse/serve/error.hpp"
#include "vsparse/common/rng.hpp"
#include "vsparse/formats/generate.hpp"
#include "vsparse/formats/smtx_io.hpp"
#include "vsparse/gpusim/device.hpp"
#include "vsparse/gpusim/exec.hpp"
#include "vsparse/kernels/dispatch.hpp"

namespace vsparse {
namespace {

/// Runs `fn`, asserting it throws a classified vsparse::Error, and
/// returns the taxonomy code for the caller to match on.
template <class F>
ErrorCode code_of(F&& fn) {
  try {
    fn();
  } catch (const Error& e) {
    return e.code();
  } catch (const std::exception& e) {
    ADD_FAILURE() << "expected vsparse::Error, got: " << e.what();
    return ErrorCode::kNumCodes;
  }
  ADD_FAILURE() << "expected vsparse::Error, got no exception";
  return ErrorCode::kNumCodes;
}

gpusim::DeviceConfig test_config() {
  gpusim::DeviceConfig cfg;
  cfg.dram_capacity = 256 << 20;
  cfg.num_sms = 8;
  return cfg;
}

// ---- malformed .smtx corpus ------------------------------------------

SmtxPattern parse(const std::string& text) {
  std::istringstream is(text);
  return read_smtx(is);
}

TEST(SmtxMalformed, EmptyStream) {
  EXPECT_EQ(code_of([&] { parse(""); }), ErrorCode::kMalformedFormat);
}

TEST(SmtxMalformed, TruncatedHeader) {
  EXPECT_EQ(code_of([&] { parse("4, 4\n"); }), ErrorCode::kMalformedFormat);
}

TEST(SmtxMalformed, MissingRowPtrLine) {
  EXPECT_EQ(code_of([&] { parse("4, 4, 2\n"); }), ErrorCode::kMalformedFormat);
}

TEST(SmtxMalformed, RowPtrWrongLength) {
  EXPECT_EQ(code_of([&] { parse("4, 4, 2\n0 1 2\n0 1\n"); }), ErrorCode::kMalformedFormat);
}

TEST(SmtxMalformed, RowPtrEndpointsInconsistentWithNnz) {
  EXPECT_EQ(code_of([&] { parse("4, 4, 2\n0 1 1 2 3\n0 1\n"); }), ErrorCode::kMalformedFormat);
}

TEST(SmtxMalformed, RowPtrNotMonotone) {
  EXPECT_EQ(code_of([&] { parse("4, 4, 2\n0 2 1 2 2\n0 1\n"); }), ErrorCode::kMalformedFormat);
}

TEST(SmtxMalformed, ColumnOutOfRange) {
  EXPECT_EQ(code_of([&] { parse("4, 4, 2\n0 1 1 2 2\n0 4\n"); }), ErrorCode::kMalformedFormat);
}

TEST(SmtxMalformed, ColIdxWrongCount) {
  EXPECT_EQ(code_of([&] { parse("4, 4, 2\n0 1 1 2 2\n0\n"); }), ErrorCode::kMalformedFormat);
}

TEST(SmtxMalformed, NegativeIndexRejected) {
  EXPECT_EQ(code_of([&] { parse("4, 4, 2\n0 1 1 2 2\n0 -1\n"); }), ErrorCode::kMalformedFormat);
}

TEST(Smtx, WellFormedRoundTrips) {
  const SmtxPattern p = parse("4, 4, 3\n0 1 1 2 3\n2 0 3\n");
  EXPECT_EQ(p.rows, 4);
  EXPECT_EQ(p.cols, 4);
  std::ostringstream os;
  write_smtx(os, p);
  const SmtxPattern q = parse(os.str());
  EXPECT_EQ(q.row_ptr, p.row_ptr);
  EXPECT_EQ(q.col_idx, p.col_idx);
}

// ---- dispatch-layer rejection ----------------------------------------

TEST(DispatchGuards, SpmmShapeMismatchRejected) {
  Rng rng(3);
  Cvs a = make_cvs(32, 96, 4, 0.5, rng);
  gpusim::Device dev(test_config());
  auto da = to_device(dev, a);
  // B has 64 rows where A has 96 columns.
  auto bad_b = dev.alloc<half_t>(std::size_t{64} * 64);
  DenseDevice<half_t> db{bad_b, 64, 64, 64, Layout::kRowMajor};
  auto cbuf = dev.alloc<half_t>(std::size_t{32} * 64);
  DenseDevice<half_t> dc{cbuf, 32, 64, 64, Layout::kRowMajor};
  EXPECT_THROW(
      kernels::spmm(dev, da, db, dc,
                    {.algorithm = kernels::SpmmAlgorithm::kOctet}),
      CheckError);  // kernel-level shape guard, deliberately un-reclassified
}

TEST(DispatchGuards, AbftSpmmRequiresOctetKernel) {
  Rng rng(4);
  Cvs fine = make_cvs(32, 96, 1, 0.5, rng);  // V = 1: no octet mapping
  gpusim::Device dev(test_config());
  auto da = to_device(dev, fine);
  auto b = dev.alloc<half_t>(std::size_t{96} * 64);
  DenseDevice<half_t> db{b, 96, 64, 64, Layout::kRowMajor};
  auto c = dev.alloc<half_t>(std::size_t{32} * 64);
  DenseDevice<half_t> dc{c, 32, 64, 64, Layout::kRowMajor};
  EXPECT_EQ(code_of([&] {
              kernels::spmm(dev, da, db, dc, {.abft = kernels::AbftOptions{}});
            }),
            ErrorCode::kBadDispatch);

  Cvs octet = make_cvs(32, 96, 4, 0.5, rng);
  auto da4 = to_device(dev, octet);
  EXPECT_EQ(code_of([&] {
              kernels::spmm(dev, da4, db, dc,
                            {.algorithm = kernels::SpmmAlgorithm::kFpuSubwarp,
                             .abft = kernels::AbftOptions{}});
            }),
            ErrorCode::kBadDispatch);
}

// ---- engine unwind + pool reuse --------------------------------------

TEST(EngineUnwind, WorkerAndCallerThrowsLeavePoolReusable) {
  gpusim::Device dev(test_config());
  gpusim::LaunchConfig cfg;
  cfg.grid = 16;
  cfg.cta_threads = 32;
  const gpusim::SimOptions sim{.threads = 8};

  auto expect_clean_launch = [&] {
    gpusim::KernelStats stats =
        gpusim::launch(dev, cfg, [](gpusim::Cta&) {}, sim);
    EXPECT_EQ(stats.ctas_launched, 16u);
  };

  for (int round = 0; round < 2; ++round) {
    // CTA 0 runs on SM 0 — the shard the calling thread executes.
    EXPECT_THROW(gpusim::launch(
                     dev, cfg,
                     [](gpusim::Cta& cta) {
                       if (cta.cta_id() == 0) {
                         throw std::out_of_range("caller-shard cta failed");
                       }
                     },
                     sim),
                 std::out_of_range);
    expect_clean_launch();

    // CTA 13 lands on a worker-thread shard; the exception type must
    // survive the cross-thread hop.
    EXPECT_THROW(gpusim::launch(
                     dev, cfg,
                     [](gpusim::Cta& cta) {
                       if (cta.cta_id() == 13) {
                         throw std::out_of_range("worker-shard cta failed");
                       }
                     },
                     sim),
                 std::out_of_range);
    expect_clean_launch();
  }
}

// ---- allocator guards ------------------------------------------------

TEST(AllocGuards, ElementCountTimesSizeOverflowRejected) {
  gpusim::Device dev(test_config());
  EXPECT_EQ(code_of([&] { dev.alloc<double>(SIZE_MAX / 4); }),
            ErrorCode::kAllocOverflow);
}

TEST(AllocGuards, BeyondCapacityRejected) {
  gpusim::Device dev(test_config());
  const std::size_t cap = dev.config().dram_capacity;
  EXPECT_EQ(code_of([&] { dev.alloc<std::uint8_t>(cap + 1); }),
            ErrorCode::kOutOfMemory);
  // Near-SIZE_MAX requests must be rejected, not wrap in the
  // alignment arithmetic.
  EXPECT_EQ(code_of([&] { dev.alloc<std::uint8_t>(SIZE_MAX - 16); }),
            ErrorCode::kOutOfMemory);
  // The device stays usable after rejected requests.
  auto ok = dev.alloc<std::uint8_t>(1024);
  EXPECT_EQ(ok.size(), 1024u);
}

}  // namespace
}  // namespace vsparse

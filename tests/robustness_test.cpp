// Negative-path robustness: malformed .smtx inputs are rejected with
// classified vsparse::Error{kMalformedFormat} (not crashes or silent
// misparses) and the loader guardrails stop hostile headers before
// they size allocations, the policy-cache reader survives the full
// corrupt-blob corpus (truncation, stale versions, numeric overflow,
// binary garbage, oversized artifacts) with structured kBadDispatch,
// the dispatch layer rejects shape mismatches and unsupported ABFT
// algorithms with kBadDispatch, worker and caller exceptions unwind
// the threaded engine cleanly with the pool reusable afterwards, and
// the allocator's overflow guards hold with their taxonomy codes
// (kAllocOverflow / kOutOfMemory).
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

#include "vsparse/common/macros.hpp"
#include "vsparse/serve/error.hpp"
#include "vsparse/common/rng.hpp"
#include "vsparse/formats/generate.hpp"
#include "vsparse/formats/smtx_io.hpp"
#include "vsparse/gpusim/device.hpp"
#include "vsparse/gpusim/engine/launch.hpp"
#include "vsparse/gpusim/engine/launch_config.hpp"
#include "vsparse/gpusim/engine/sim_options.hpp"
#include "vsparse/kernels/dispatch.hpp"
#include "vsparse/kernels/policy.hpp"
#include "vsparse/serve/chaos.hpp"

namespace vsparse {
namespace {

/// Runs `fn`, asserting it throws a classified vsparse::Error, and
/// returns the taxonomy code for the caller to match on.
template <class F>
ErrorCode code_of(F&& fn) {
  try {
    fn();
  } catch (const Error& e) {
    return e.code();
  } catch (const std::exception& e) {
    ADD_FAILURE() << "expected vsparse::Error, got: " << e.what();
    return ErrorCode::kNumCodes;
  }
  ADD_FAILURE() << "expected vsparse::Error, got no exception";
  return ErrorCode::kNumCodes;
}

gpusim::DeviceConfig test_config() {
  gpusim::DeviceConfig cfg;
  cfg.dram_capacity = 256 << 20;
  cfg.num_sms = 8;
  return cfg;
}

// ---- malformed .smtx corpus ------------------------------------------

SmtxPattern parse(const std::string& text) {
  std::istringstream is(text);
  return read_smtx(is);
}

TEST(SmtxMalformed, EmptyStream) {
  EXPECT_EQ(code_of([&] { parse(""); }), ErrorCode::kMalformedFormat);
}

TEST(SmtxMalformed, TruncatedHeader) {
  EXPECT_EQ(code_of([&] { parse("4, 4\n"); }), ErrorCode::kMalformedFormat);
}

TEST(SmtxMalformed, MissingRowPtrLine) {
  EXPECT_EQ(code_of([&] { parse("4, 4, 2\n"); }), ErrorCode::kMalformedFormat);
}

TEST(SmtxMalformed, RowPtrWrongLength) {
  EXPECT_EQ(code_of([&] { parse("4, 4, 2\n0 1 2\n0 1\n"); }), ErrorCode::kMalformedFormat);
}

TEST(SmtxMalformed, RowPtrEndpointsInconsistentWithNnz) {
  EXPECT_EQ(code_of([&] { parse("4, 4, 2\n0 1 1 2 3\n0 1\n"); }), ErrorCode::kMalformedFormat);
}

TEST(SmtxMalformed, RowPtrNotMonotone) {
  EXPECT_EQ(code_of([&] { parse("4, 4, 2\n0 2 1 2 2\n0 1\n"); }), ErrorCode::kMalformedFormat);
}

TEST(SmtxMalformed, ColumnOutOfRange) {
  EXPECT_EQ(code_of([&] { parse("4, 4, 2\n0 1 1 2 2\n0 4\n"); }), ErrorCode::kMalformedFormat);
}

TEST(SmtxMalformed, ColIdxWrongCount) {
  EXPECT_EQ(code_of([&] { parse("4, 4, 2\n0 1 1 2 2\n0\n"); }), ErrorCode::kMalformedFormat);
}

TEST(SmtxMalformed, NegativeIndexRejected) {
  EXPECT_EQ(code_of([&] { parse("4, 4, 2\n0 1 1 2 2\n0 -1\n"); }), ErrorCode::kMalformedFormat);
}

// Loader guardrails: header fields that would balloon allocations are
// rejected before any container is sized from them.

TEST(SmtxMalformed, HugeExtentsRejectedBeforeAllocation) {
  EXPECT_EQ(code_of([&] { parse("4194305, 4, 0\n"); }),
            ErrorCode::kMalformedFormat);  // rows > kMaxSmtxExtent
  EXPECT_EQ(code_of([&] { parse("4, 2147483647, 0\n"); }),
            ErrorCode::kMalformedFormat);  // cols = INT_MAX
}

TEST(SmtxMalformed, NnzBeyondCapRejected) {
  // 2^26 + 1 nonzeros exceeds kMaxSmtxNnz even though the extents are
  // individually plausible.
  EXPECT_EQ(code_of([&] { parse("100000, 100000, 67108865\n"); }),
            ErrorCode::kMalformedFormat);
}

TEST(SmtxMalformed, NnzBeyondRowsTimesColsRejected) {
  // The product check runs in 64-bit: 4*4 = 16 < 17, no int overflow
  // escape hatch.
  EXPECT_EQ(code_of([&] { parse("4, 4, 17\n"); }),
            ErrorCode::kMalformedFormat);
}

TEST(SmtxMalformed, RowsTimesVOverflowRejected) {
  // smtx_to_cvs multiplies pattern rows by the vector grain; a rows
  // value that survives the extent cap must still not overflow int
  // after * v.
  SmtxPattern p;
  p.rows = 0x7fffffff / 8 + 1;
  p.cols = 4;
  p.row_ptr.assign(1, 0);  // never reached: the overflow guard fires first
  Rng rng(1);
  EXPECT_EQ(code_of([&] { smtx_to_cvs(p, 8, rng); }),
            ErrorCode::kMalformedFormat);
}

TEST(Smtx, WellFormedRoundTrips) {
  const SmtxPattern p = parse("4, 4, 3\n0 1 1 2 3\n2 0 3\n");
  EXPECT_EQ(p.rows, 4);
  EXPECT_EQ(p.cols, 4);
  std::ostringstream os;
  write_smtx(os, p);
  const SmtxPattern q = parse(os.str());
  EXPECT_EQ(q.row_ptr, p.row_ptr);
  EXPECT_EQ(q.col_idx, p.col_idx);
}

// ---- malformed policy-cache corpus -----------------------------------

using kernels::PolicyCache;

/// One syntactically valid single-entry cache with `cycles` spliced in
/// verbatim, for probing the numeric hardening.
std::string cache_with_cycles(const std::string& cycles) {
  return "{\"version\":\"vsparse-policy-v1\",\"entries\":[{\"key\":"
         "\"spmm|volta-v100|m6k6n6d1v4\",\"kernel\":\"spmm_octet\","
         "\"cycles\":" +
         cycles + "}]}";
}

TEST(PolicyCacheMalformed, ChaosCorruptVariantsAllClassified) {
  // The chaos layer's corrupt-blob generator cycles through truncated
  // JSON, a stale version tag, an overflowing numeric field, and
  // binary garbage; every variant must come back as a structured
  // kBadDispatch — never an unclassified std::out_of_range from stod,
  // never a crash.
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    EXPECT_EQ(code_of([&] {
                PolicyCache::from_json(serve::corrupt_policy_cache_json(seed));
              }),
              ErrorCode::kBadDispatch)
        << "seed " << seed;
  }
}

TEST(PolicyCacheMalformed, OversizedBlobRejectedBeforeParsing) {
  std::string huge(kernels::kMaxPolicyCacheBytes + 1, ' ');
  EXPECT_EQ(code_of([&] { PolicyCache::from_json(huge); }),
            ErrorCode::kBadDispatch);
}

TEST(PolicyCacheMalformed, OverlongStringsRejected) {
  const std::string long_key(kernels::kMaxPolicyStringLength + 1, 'k');
  EXPECT_EQ(code_of([&] {
              PolicyCache::from_json(
                  "{\"version\":\"vsparse-policy-v1\",\"entries\":[{\"key\":"
                  "\"" +
                  long_key +
                  "\",\"kernel\":\"spmm_octet\",\"cycles\":1.0}]}");
            }),
            ErrorCode::kBadDispatch);
}

TEST(PolicyCacheMalformed, HostileCyclesValuesRejected) {
  // Exponent overflow (stod would throw std::out_of_range), negative
  // cycles, and syntactically broken numbers are all classified.
  EXPECT_EQ(code_of([&] { PolicyCache::from_json(cache_with_cycles("1e99999")); }),
            ErrorCode::kBadDispatch);
  EXPECT_EQ(code_of([&] { PolicyCache::from_json(cache_with_cycles("-1.0")); }),
            ErrorCode::kBadDispatch);
  EXPECT_EQ(code_of([&] { PolicyCache::from_json(cache_with_cycles(".")); }),
            ErrorCode::kBadDispatch);
  // A near-max finite exponent is fine: the cap is on non-finite and
  // negative values, not on magnitude.
  const PolicyCache ok = PolicyCache::from_json(cache_with_cycles("1e300"));
  EXPECT_EQ(ok.size(), 1u);
}

TEST(PolicyCacheMalformed, EntryCountCapEnforced) {
  std::string json = "{\"version\":\"vsparse-policy-v1\",\"entries\":[";
  for (std::size_t i = 0; i <= kernels::kMaxPolicyCacheEntries; ++i) {
    if (i) json += ",";
    json += "{\"key\":\"k" + std::to_string(i) +
            "\",\"kernel\":\"spmm_octet\",\"cycles\":1.0}";
  }
  json += "]}";
  ASSERT_LE(json.size(), kernels::kMaxPolicyCacheBytes);  // hits the
  // entry cap, not the byte cap
  EXPECT_EQ(code_of([&] { PolicyCache::from_json(json); }),
            ErrorCode::kBadDispatch);
}

// ---- dispatch-layer rejection ----------------------------------------

TEST(DispatchGuards, SpmmShapeMismatchRejected) {
  Rng rng(3);
  Cvs a = make_cvs(32, 96, 4, 0.5, rng);
  gpusim::Device dev(test_config());
  auto da = to_device(dev, a);
  // B has 64 rows where A has 96 columns.
  auto bad_b = dev.alloc<half_t>(std::size_t{64} * 64);
  DenseDevice<half_t> db{bad_b, 64, 64, 64, Layout::kRowMajor};
  auto cbuf = dev.alloc<half_t>(std::size_t{32} * 64);
  DenseDevice<half_t> dc{cbuf, 32, 64, 64, Layout::kRowMajor};
  EXPECT_THROW(
      kernels::spmm(dev, da, db, dc,
                    {.algorithm = kernels::SpmmAlgorithm::kOctet}),
      CheckError);  // kernel-level shape guard, deliberately un-reclassified
}

TEST(DispatchGuards, AbftSpmmRequiresOctetKernel) {
  Rng rng(4);
  Cvs fine = make_cvs(32, 96, 1, 0.5, rng);  // V = 1: no octet mapping
  gpusim::Device dev(test_config());
  auto da = to_device(dev, fine);
  auto b = dev.alloc<half_t>(std::size_t{96} * 64);
  DenseDevice<half_t> db{b, 96, 64, 64, Layout::kRowMajor};
  auto c = dev.alloc<half_t>(std::size_t{32} * 64);
  DenseDevice<half_t> dc{c, 32, 64, 64, Layout::kRowMajor};
  EXPECT_EQ(code_of([&] {
              kernels::spmm(dev, da, db, dc, {.abft = kernels::AbftOptions{}});
            }),
            ErrorCode::kBadDispatch);

  Cvs octet = make_cvs(32, 96, 4, 0.5, rng);
  auto da4 = to_device(dev, octet);
  EXPECT_EQ(code_of([&] {
              kernels::spmm(dev, da4, db, dc,
                            {.algorithm = kernels::SpmmAlgorithm::kFpuSubwarp,
                             .abft = kernels::AbftOptions{}});
            }),
            ErrorCode::kBadDispatch);
}

// ---- engine unwind + pool reuse --------------------------------------

TEST(EngineUnwind, WorkerAndCallerThrowsLeavePoolReusable) {
  gpusim::Device dev(test_config());
  gpusim::LaunchConfig cfg;
  cfg.grid = 16;
  cfg.cta_threads = 32;
  const gpusim::SimOptions sim{.threads = 8};

  auto expect_clean_launch = [&] {
    gpusim::KernelStats stats =
        gpusim::launch(dev, cfg, [](gpusim::Cta&) {}, sim);
    EXPECT_EQ(stats.ctas_launched, 16u);
  };

  for (int round = 0; round < 2; ++round) {
    // CTA 0 runs on SM 0 — the shard the calling thread executes.
    EXPECT_THROW(gpusim::launch(
                     dev, cfg,
                     [](gpusim::Cta& cta) {
                       if (cta.cta_id() == 0) {
                         throw std::out_of_range("caller-shard cta failed");
                       }
                     },
                     sim),
                 std::out_of_range);
    expect_clean_launch();

    // CTA 13 lands on a worker-thread shard; the exception type must
    // survive the cross-thread hop.
    EXPECT_THROW(gpusim::launch(
                     dev, cfg,
                     [](gpusim::Cta& cta) {
                       if (cta.cta_id() == 13) {
                         throw std::out_of_range("worker-shard cta failed");
                       }
                     },
                     sim),
                 std::out_of_range);
    expect_clean_launch();
  }
}

// ---- allocator guards ------------------------------------------------

TEST(AllocGuards, ElementCountTimesSizeOverflowRejected) {
  gpusim::Device dev(test_config());
  EXPECT_EQ(code_of([&] { dev.alloc<double>(SIZE_MAX / 4); }),
            ErrorCode::kAllocOverflow);
}

TEST(AllocGuards, BeyondCapacityRejected) {
  gpusim::Device dev(test_config());
  const std::size_t cap = dev.config().dram_capacity;
  EXPECT_EQ(code_of([&] { dev.alloc<std::uint8_t>(cap + 1); }),
            ErrorCode::kOutOfMemory);
  // Near-SIZE_MAX requests must be rejected, not wrap in the
  // alignment arithmetic.
  EXPECT_EQ(code_of([&] { dev.alloc<std::uint8_t>(SIZE_MAX - 16); }),
            ErrorCode::kOutOfMemory);
  // The device stays usable after rejected requests.
  auto ok = dev.alloc<std::uint8_t>(1024);
  EXPECT_EQ(ok.size(), 1024u);
}

}  // namespace
}  // namespace vsparse

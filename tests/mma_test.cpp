// Tests for the tensor-core model: octet-level mma.m8n8k4 semantics
// (Fig. 2), the SWITCH extension (Fig. 15), step masking, and the
// classic warp-level wmma.m8n32k16.
#include "vsparse/gpusim/tensorcore.hpp"

#include <gtest/gtest.h>

#include "vsparse/common/rng.hpp"
#include "vsparse/gpusim/device.hpp"
#include "vsparse/gpusim/engine/launch.hpp"

namespace vsparse::gpusim {
namespace {

DeviceConfig small_config() {
  DeviceConfig cfg;
  cfg.dram_capacity = 1 << 20;
  cfg.num_sms = 2;
  return cfg;
}

// Mirrors the documented fragment contract of tensorcore.hpp.
int octet_lane(int octet, int j, bool high) {
  return (high ? 16 : 0) + 4 * octet + j;
}

struct OctetProblem {
  // Per octet: A is 8x4, B is 4x8 (stored as 8 columns), C is 8x8.
  float a[4][8][4];
  float b[4][4][8];
};

OctetProblem random_problem(Rng& rng) {
  OctetProblem p;
  for (int o = 0; o < 4; ++o) {
    for (int i = 0; i < 8; ++i) {
      for (int k = 0; k < 4; ++k) {
        // Small integers: fp16-exact and order-insensitive to accumulate.
        p.a[o][i][k] = static_cast<float>(rng.uniform_int(-4, 4));
        p.b[o][k][i] = static_cast<float>(rng.uniform_int(-4, 4));
      }
    }
  }
  return p;
}

void pack_fragments(const OctetProblem& p, MmaFragAB& a, MmaFragAB& b) {
  for (int o = 0; o < 4; ++o) {
    for (int j = 0; j < 4; ++j) {
      const int lo = octet_lane(o, j, false);
      const int hi = octet_lane(o, j, true);
      for (int k = 0; k < 4; ++k) {
        a[static_cast<std::size_t>(lo)][k] = half_t(p.a[o][j][k]);
        a[static_cast<std::size_t>(hi)][k] = half_t(p.a[o][4 + j][k]);
        b[static_cast<std::size_t>(lo)][k] = half_t(p.b[o][k][j]);
        b[static_cast<std::size_t>(hi)][k] = half_t(p.b[o][k][4 + j]);
      }
    }
  }
}

void reference_product(const OctetProblem& p, float (&c)[4][8][8]) {
  for (int o = 0; o < 4; ++o) {
    for (int i = 0; i < 8; ++i) {
      for (int j = 0; j < 8; ++j) {
        float sum = 0.0f;
        for (int k = 0; k < 4; ++k) sum += p.a[o][i][k] * p.b[o][k][j];
        c[o][i][j] = sum;
      }
    }
  }
}

// Extracts the output row held by the lane that sourced A row i.
float c_at(const MmaFragC& c, int octet, int i, int j) {
  const int lane = octet_lane(octet, i % 4, /*high=*/i >= 4);
  return c[static_cast<std::size_t>(lane)][static_cast<std::size_t>(j)];
}

class MmaTest : public ::testing::Test {
 protected:
  Device dev_{small_config()};
};

TEST_F(MmaTest, MatchesReferenceGemmPerOctet) {
  Rng rng(2021);
  for (int trial = 0; trial < 50; ++trial) {
    const OctetProblem p = random_problem(rng);
    MmaFragAB a, b;
    MmaFragC c{};
    pack_fragments(p, a, b);
    float ref[4][8][8];
    reference_product(p, ref);

    LaunchConfig cfg;
    launch(dev_, cfg, [&](Cta& cta) {
      Warp w = cta.warp(0);
      mma_m8n8k4(w, a, b, c);
    });
    for (int o = 0; o < 4; ++o) {
      for (int i = 0; i < 8; ++i) {
        for (int j = 0; j < 8; ++j) {
          EXPECT_EQ(c_at(c, o, i, j), ref[o][i][j])
              << "trial=" << trial << " o=" << o << " i=" << i << " j=" << j;
        }
      }
    }
  }
}

TEST_F(MmaTest, AccumulatesOntoExistingC) {
  Rng rng(7);
  const OctetProblem p = random_problem(rng);
  MmaFragAB a, b;
  pack_fragments(p, a, b);
  MmaFragC c;
  for (auto& row : c) row.fill(100.0f);
  float ref[4][8][8];
  reference_product(p, ref);

  LaunchConfig cfg;
  launch(dev_, cfg, [&](Cta& cta) {
    Warp w = cta.warp(0);
    mma_m8n8k4(w, a, b, c);
  });
  EXPECT_EQ(c_at(c, 0, 0, 0), 100.0f + ref[0][0][0]);
  EXPECT_EQ(c_at(c, 3, 7, 7), 100.0f + ref[3][7][7]);
}

TEST_F(MmaTest, CountsFourHmmaStepsPerInstruction) {
  MmaFragAB a{}, b{};
  MmaFragC c{};
  LaunchConfig cfg;
  KernelStats s = launch(dev_, cfg, [&](Cta& cta) {
    Warp w = cta.warp(0);
    mma_m8n8k4(w, a, b, c);
    mma_m8n8k4(w, a, b, c);
  });
  EXPECT_EQ(s.op(Op::kHmma), 8u);
}

TEST_F(MmaTest, StepMaskComputesOnlySelectedQuadrants) {
  Rng rng(5);
  const OctetProblem p = random_problem(rng);
  MmaFragAB a, b;
  MmaFragC c{};
  pack_fragments(p, a, b);
  float ref[4][8][8];
  reference_product(p, ref);

  LaunchConfig cfg;
  KernelStats s = launch(dev_, cfg, [&](Cta& cta) {
    Warp w = cta.warp(0);
    mma_m8n8k4(w, a, b, c, MmaFlags{.switch_groups = false, .step_mask = 0x3});
  });
  EXPECT_EQ(s.op(Op::kHmma), 2u);  // only STEP 0&1 issued
  for (int o = 0; o < 4; ++o) {
    for (int i = 0; i < 8; ++i) {
      for (int j = 0; j < 4; ++j) {
        EXPECT_EQ(c_at(c, o, i, j), ref[o][i][j]);     // left 4 columns done
        EXPECT_EQ(c_at(c, o, i, 4 + j), 0.0f);         // right 4 untouched
      }
    }
  }
}

// The SWITCH flag exchanges the low/high sources of both operands while
// accumulators stay put: c_low gets [A_hi*B_hi | A_hi*B_lo] and c_high
// gets [A_lo*B_hi | A_lo*B_lo] (see tensorcore.hpp derivation).
TEST_F(MmaTest, SwitchFlagSwapsSourceGroups) {
  Rng rng(11);
  const OctetProblem p = random_problem(rng);
  MmaFragAB a, b;
  MmaFragC c{};
  pack_fragments(p, a, b);
  float ref[4][8][8];
  reference_product(p, ref);

  LaunchConfig cfg;
  launch(dev_, cfg, [&](Cta& cta) {
    Warp w = cta.warp(0);
    mma_m8n8k4(w, a, b, c, MmaFlags{.switch_groups = true, .step_mask = 0xF});
  });
  for (int o = 0; o < 4; ++o) {
    // Build the expected block-swapped product: rows swapped between
    // low/high, columns swapped between left/right.
    for (int i = 0; i < 8; ++i) {
      const int src_row = (i + 4) % 8;
      for (int j = 0; j < 8; ++j) {
        const int src_col = (j + 4) % 8;
        EXPECT_EQ(c_at(c, o, i, j), ref[o][src_row][src_col])
            << "o=" << o << " i=" << i << " j=" << j;
      }
    }
  }
}

// Property: switch applied twice at the fragment level is the identity —
// mma(a, b) equals mma with both operands pre-swapped and switch set.
TEST_F(MmaTest, SwitchEqualsPreSwappedOperands) {
  Rng rng(13);
  const OctetProblem p = random_problem(rng);
  MmaFragAB a, b;
  pack_fragments(p, a, b);

  MmaFragAB a_swapped = a, b_swapped = b;
  for (int lane = 0; lane < 16; ++lane) {
    std::swap(a_swapped[static_cast<std::size_t>(lane)],
              a_swapped[static_cast<std::size_t>(lane + 16)]);
    std::swap(b_swapped[static_cast<std::size_t>(lane)],
              b_swapped[static_cast<std::size_t>(lane + 16)]);
  }

  MmaFragC c_plain{}, c_double_switch{};
  LaunchConfig cfg;
  launch(dev_, cfg, [&](Cta& cta) {
    Warp w = cta.warp(0);
    mma_m8n8k4(w, a, b, c_plain);
    mma_m8n8k4(w, a_swapped, b_swapped, c_double_switch,
               MmaFlags{.switch_groups = true, .step_mask = 0xF});
  });
  for (int lane = 0; lane < 32; ++lane) {
    for (int j = 0; j < 8; ++j) {
      EXPECT_EQ(c_plain[static_cast<std::size_t>(lane)][static_cast<std::size_t>(j)],
                c_double_switch[static_cast<std::size_t>(lane)]
                               [static_cast<std::size_t>(j)]);
    }
  }
}

TEST_F(MmaTest, WmmaMatchesReference) {
  Rng rng(42);
  half_t a[8][16], b[16][32];
  float c[8][32] = {};
  float ref[8][32] = {};
  for (int i = 0; i < 8; ++i) {
    for (int k = 0; k < 16; ++k) {
      a[i][k] = half_t(static_cast<float>(rng.uniform_int(-3, 3)));
    }
  }
  for (int k = 0; k < 16; ++k) {
    for (int j = 0; j < 32; ++j) {
      b[k][j] = half_t(static_cast<float>(rng.uniform_int(-3, 3)));
    }
  }
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 32; ++j) {
      for (int k = 0; k < 16; ++k) {
        ref[i][j] += static_cast<float>(a[i][k]) * static_cast<float>(b[k][j]);
      }
    }
  }
  LaunchConfig cfg;
  KernelStats s = launch(dev_, cfg, [&](Cta& cta) {
    Warp w = cta.warp(0);
    wmma_m8n32k16(w, a, b, c);
  });
  EXPECT_EQ(s.op(Op::kHmma), 16u);
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 32; ++j) EXPECT_EQ(c[i][j], ref[i][j]);
  }
}

// fp16 rounding is applied to the *operands*, not the accumulation:
// products of exactly-representable halves accumulate exactly in fp32.
TEST_F(MmaTest, Fp32AccumulationOfFp16Products) {
  MmaFragAB a{}, b{};
  MmaFragC c{};
  // A[0][k] = 2048 for k=0..3, B col 0 = 1.0: row sum = 4*2048 = 8192,
  // which fp16 accumulation would round (ulp at 8192 is 8) but fp32
  // holds exactly; then add 0.5 via a second mma.
  for (int k = 0; k < 4; ++k) {
    a[0][k] = half_t(2048.0f);
    b[0][k] = half_t(1.0f);
  }
  LaunchConfig cfg;
  launch(dev_, cfg, [&](Cta& cta) {
    Warp w = cta.warp(0);
    mma_m8n8k4(w, a, b, c);
  });
  EXPECT_EQ(c[0][0], 8192.0f);
}

}  // namespace
}  // namespace vsparse::gpusim

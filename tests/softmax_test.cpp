// Tests for the CVS sparse-softmax kernel (§7.4).
#include "vsparse/kernels/softmax/sparse_softmax.hpp"

#include <gtest/gtest.h>

#include "vsparse/common/rng.hpp"
#include "vsparse/formats/generate.hpp"
#include "vsparse/formats/reference.hpp"

namespace vsparse::kernels {
namespace {

gpusim::DeviceConfig test_config() {
  gpusim::DeviceConfig cfg;
  cfg.dram_capacity = 64 << 20;
  cfg.num_sms = 4;
  return cfg;
}

class SoftmaxSweep : public ::testing::TestWithParam<std::tuple<int, double>> {
};

TEST_P(SoftmaxSweep, MatchesReference) {
  const auto [v, sparsity] = GetParam();
  Rng rng(10 + v);
  Cvs logits = make_cvs(64, 96, v, sparsity, rng);
  const float scale = 0.125f;
  Cvs ref = sparse_softmax_reference(logits, scale);

  gpusim::Device dev(test_config());
  auto pattern = to_device(dev, logits);
  auto out = dev.alloc<half_t>(logits.values.size());
  sparse_softmax(dev, pattern, pattern.values, out, scale);

  auto got = out.host();
  for (std::size_t i = 0; i < ref.values.size(); ++i) {
    ASSERT_NEAR(static_cast<float>(got[i]), static_cast<float>(ref.values[i]),
                2e-3f)
        << "value " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SoftmaxSweep,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(0.5, 0.9, 0.98)));

TEST(Softmax, InPlaceOperation) {
  Rng rng(3);
  Cvs logits = make_cvs(32, 64, 4, 0.8, rng);
  Cvs ref = sparse_softmax_reference(logits, 1.0f);
  gpusim::Device dev(test_config());
  auto pattern = to_device(dev, logits);
  sparse_softmax(dev, pattern, pattern.values, pattern.values, 1.0f);
  auto got = pattern.values.host();
  for (std::size_t i = 0; i < ref.values.size(); ++i) {
    ASSERT_NEAR(static_cast<float>(got[i]), static_cast<float>(ref.values[i]),
                2e-3f);
  }
}

TEST(Softmax, RowsSumToOneAndLargeLogitsStable) {
  // Large logits (up to the half max) must not overflow thanks to the
  // max-subtraction pass.
  Rng rng(4);
  Cvs logits = make_cvs(16, 128, 4, 0.7, rng);
  for (half_t& h : logits.values) {
    h = half_t(rng.uniform_float(50000.0f, 60000.0f));
  }
  gpusim::Device dev(test_config());
  auto pattern = to_device(dev, logits);
  auto out = dev.alloc<half_t>(logits.values.size());
  sparse_softmax(dev, pattern, pattern.values, out, 1.0f);
  auto got = out.host();
  for (int vr = 0; vr < logits.vec_rows(); ++vr) {
    for (int t = 0; t < 4; ++t) {
      float sum = 0.0f;
      for (std::int32_t i = logits.row_ptr[static_cast<std::size_t>(vr)];
           i < logits.row_ptr[static_cast<std::size_t>(vr) + 1]; ++i) {
        const float p = static_cast<float>(
            got[static_cast<std::size_t>(i) * 4 + static_cast<std::size_t>(t)]);
        EXPECT_TRUE(std::isfinite(p));
        sum += p;
      }
      EXPECT_NEAR(sum, 1.0f, 0.03f);
    }
  }
}

TEST(Softmax, EmptyRowsAreNoOp) {
  Cvs logits;
  logits.rows = 8;
  logits.cols = 16;
  logits.v = 4;
  logits.row_ptr = {0, 0, 0};
  gpusim::Device dev(test_config());
  auto pattern = to_device(dev, logits);
  auto out = dev.alloc<half_t>(0);
  EXPECT_NO_THROW(sparse_softmax(dev, pattern, pattern.values, out, 1.0f));
}

}  // namespace
}  // namespace vsparse::kernels

// Policy cache: key bucketing, deterministic versioned JSON round
// trips, the advisory lookup contract (hit steers kAuto, every kind of
// miss falls back to the static heuristic bit-identically), and the
// offline autotuner producing a cache that disagrees with the
// heuristic across shape classes and presets.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "vsparse/common/rng.hpp"
#include "vsparse/formats/generate.hpp"
#include "vsparse/gpusim/device.hpp"
#include "vsparse/gpusim/trace/counters.hpp"
#include "vsparse/kernels/autotune.hpp"
#include "vsparse/kernels/dispatch.hpp"
#include "vsparse/kernels/policy.hpp"
#include "vsparse/serve/error.hpp"

namespace vsparse::kernels {
namespace {

gpusim::DeviceConfig small_config(const char* arch = "volta-v100") {
  gpusim::DeviceConfig cfg = gpusim::DeviceConfig::preset(arch);
  cfg.dram_capacity = 128 << 20;
  cfg.num_sms = 4;
  return cfg;
}

TEST(PolicyCache, ExtentBucketIsCeilLog2) {
  EXPECT_EQ(extent_bucket(1), 0);
  EXPECT_EQ(extent_bucket(2), 1);
  EXPECT_EQ(extent_bucket(64), 6);
  EXPECT_EQ(extent_bucket(65), 7);   // off-grid rounds up
  EXPECT_EQ(extent_bucket(1024), 10);
}

TEST(PolicyCache, DensityBucketFollowsThePaperSparsityGrid) {
  EXPECT_EQ(density_bucket(0.60), 0);   // sparsity 0.40 -> before the grid
  EXPECT_EQ(density_bucket(0.50), 0);   // sparsity 0.50
  EXPECT_EQ(density_bucket(0.30), 1);   // sparsity 0.70
  EXPECT_EQ(density_bucket(0.05), 4);   // sparsity 0.95
  EXPECT_EQ(density_bucket(0.01), 6);    // sparsity 0.99
  EXPECT_EQ(density_bucket(0.001), 7);   // sparsity 0.999 -> tail bucket
}

TEST(PolicyCache, ShapeClassKeyIsStable) {
  const DispatchShape shape{1024, 1024, 64, 4, 0.30};
  EXPECT_EQ(shape_class_key(KernelOp::kSpmm, "volta-v100", shape),
            "spmm|volta-v100|m10k10n6d1v4");
  EXPECT_EQ(shape_class_key(KernelOp::kSddmm, "turing-t4", shape),
            "sddmm|turing-t4|m10k10n6d1v4");
}

TEST(PolicyCache, InsertLookupHitAndMissCounters) {
  PolicyCache cache;
  const DispatchShape shape{1024, 1024, 64, 4, 0.30};
  cache.insert(KernelOp::kSpmm, "volta-v100", shape, "spmm_wmma_warp", 123.0);

  const KernelDesc* hit = cache.lookup(KernelOp::kSpmm, "volta-v100", shape);
  ASSERT_NE(hit, nullptr);
  EXPECT_STREQ(hit->name, "spmm_wmma_warp");

  // Same class, different arch / op: miss.
  EXPECT_EQ(cache.lookup(KernelOp::kSpmm, "turing-t4", shape), nullptr);
  EXPECT_EQ(cache.lookup(KernelOp::kSddmm, "volta-v100", shape), nullptr);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(PolicyCache, LookupRejectsEntriesTheOperandCannotUse) {
  PolicyCache cache;
  const DispatchShape v1{1024, 1024, 64, 1, 0.30};
  // Cached kernel does not support V=1: advisory miss, not an error.
  cache.insert(KernelOp::kSpmm, "volta-v100", v1, "spmm_octet", 1.0);
  EXPECT_EQ(cache.lookup(KernelOp::kSpmm, "volta-v100", v1), nullptr);

  // Wrong-op kernel name under an SpMM key: miss.
  const DispatchShape v4{1024, 1024, 64, 4, 0.30};
  cache.insert(KernelOp::kSpmm, "volta-v100", v4, "sddmm_octet", 1.0);
  EXPECT_EQ(cache.lookup(KernelOp::kSpmm, "volta-v100", v4), nullptr);

  // Ladder-only kernels are not dispatchable: miss.
  cache.insert(KernelOp::kSpmm, "volta-v100", v4, "spmm_blocked_ell", 1.0);
  EXPECT_EQ(cache.lookup(KernelOp::kSpmm, "volta-v100", v4), nullptr);
}

TEST(PolicyCache, JsonRoundTripIsDeterministicAndVersioned) {
  PolicyCache cache;
  cache.insert(KernelOp::kSpmm, "volta-v100", {1024, 1024, 64, 4, 0.30},
               "spmm_wmma_warp", 123.456);
  cache.insert(KernelOp::kSddmm, "turing-t4", {512, 512, 256, 1, 0.05},
               "sddmm_csr_fine", 78.9);

  const std::string json = cache.to_json();
  EXPECT_NE(json.find(kPolicyCacheVersion), std::string::npos);

  const PolicyCache back = PolicyCache::from_json(json);
  EXPECT_EQ(back.size(), cache.size());
  EXPECT_EQ(back.to_json(), json);  // canonical form is a fixed point

  const std::string temp =
      ::testing::TempDir() + "/vsparse_policy_roundtrip.json";
  cache.save(temp);
  const PolicyCache loaded = PolicyCache::load(temp);
  EXPECT_EQ(loaded.to_json(), json);
  std::remove(temp.c_str());
}

TEST(PolicyCache, VersionMismatchAndBadEntriesRaise) {
  PolicyCache cache;
  cache.insert(KernelOp::kSpmm, "volta-v100", {1024, 1024, 64, 4, 0.30},
               "spmm_wmma_warp", 123.0);
  std::string json = cache.to_json();
  const std::string stale =
      [&] {
        std::string s = json;
        const auto pos = s.find(kPolicyCacheVersion);
        s.replace(pos, std::string(kPolicyCacheVersion).size(),
                  "vsparse-policy-v0");
        return s;
      }();
  EXPECT_THROW(PolicyCache::from_json(stale), vsparse::Error);
  EXPECT_THROW(PolicyCache::from_json("{}"), vsparse::Error);
  EXPECT_THROW(PolicyCache::from_json("not json at all"), vsparse::Error);

  // An entry naming an unknown kernel is rejected at load time.
  const auto pos = json.find("spmm_wmma_warp");
  json.replace(pos, std::string("spmm_wmma_warp").size(), "spmm_mystery_v9");
  EXPECT_THROW(PolicyCache::from_json(json), vsparse::Error);

  EXPECT_THROW(PolicyCache::load("/nonexistent/policy.json"), vsparse::Error);
}

struct SpmmProblem {
  Cvs a;
  DenseMatrix<half_t> b;

  SpmmProblem(int m, int k, int n, int v, double sparsity, std::uint64_t seed)
      : b(k, n) {
    Rng rng(seed);
    a = make_cvs(m, k, v, sparsity, rng);
    b.fill_random_int(rng);
  }
};

KernelRun run_spmm(const SpmmProblem& p, const gpusim::DeviceConfig& cfg,
                   const SpmmOptions& options,
                   std::vector<std::uint16_t>* bits = nullptr) {
  gpusim::Device dev(cfg);
  auto da = to_device(dev, p.a);
  auto db = to_device(dev, p.b);
  DenseMatrix<half_t> ch(p.a.rows, p.b.cols());
  auto dc = to_device(dev, ch);
  KernelRun run = spmm(dev, da, db, dc, options);
  if (bits != nullptr) {
    bits->clear();
    for (half_t h : dc.buf.host()) bits->push_back(h.bits());
  }
  return run;
}

// The shape class dispatch will build internally for a problem, so the
// tests can seed cache entries for exactly that class.
DispatchShape spmm_dispatch_shape_for_test(const SpmmProblem& p,
                                           const gpusim::DeviceConfig& cfg) {
  gpusim::Device dev(cfg);
  auto da = to_device(dev, p.a);
  auto db = to_device(dev, p.b);
  return spmm_dispatch_shape(da, db);
}

// The acceptance bar: with a cache attached, kAuto picks at least two
// different kernels across shape classes, on at least two presets.
TEST(PolicyCache, AutoFollowsTheCacheAcrossClassesAndPresets) {
  const SpmmProblem tcu(64, 96, 64, 4, 0.5, 41);
  const SpmmProblem scalar(64, 96, 32, 1, 0.5, 42);

  for (const char* arch : {"volta-v100", "turing-t4"}) {
    const gpusim::DeviceConfig cfg = small_config(arch);
    PolicyCache cache;
    cache.insert(KernelOp::kSpmm, arch,
                 spmm_dispatch_shape_for_test(tcu, cfg), "spmm_wmma_warp",
                 1.0);
    cache.insert(KernelOp::kSpmm, arch,
                 spmm_dispatch_shape_for_test(scalar, cfg), "spmm_csr_fine",
                 1.0);

    // Heuristic would pick octet / fpu; the cache steers to wmma / csr.
    EXPECT_EQ(run_spmm(tcu, cfg, {.policy = &cache}).config.profile.name,
              "spmm_wmma_v4")
        << arch;
    EXPECT_EQ(run_spmm(scalar, cfg, {.policy = &cache}).config.profile.name,
              "spmm_csr_fine_half")
        << arch;
    EXPECT_EQ(cache.hits(), 2u) << arch;
  }
}

TEST(PolicyCache, ExplicitAlgorithmIgnoresTheCache) {
  const SpmmProblem tcu(64, 96, 64, 4, 0.5, 43);
  const gpusim::DeviceConfig cfg = small_config();
  PolicyCache cache;
  cache.insert(KernelOp::kSpmm, cfg.arch, spmm_dispatch_shape_for_test(tcu, cfg),
               "spmm_wmma_warp", 1.0);
  const KernelRun run = run_spmm(
      tcu, cfg, {.algorithm = SpmmAlgorithm::kOctet, .policy = &cache});
  EXPECT_EQ(run.config.profile.name, "spmm_octet_v4");
  EXPECT_EQ(cache.hits(), 0u);  // never consulted
}

TEST(PolicyCache, MissAndNullPolicyAreBitIdentical) {
  const SpmmProblem tcu(64, 96, 64, 4, 0.5, 44);
  const gpusim::DeviceConfig cfg = small_config();

  std::vector<std::uint16_t> bits_null, bits_empty, bits_other_arch;
  const KernelRun run_null = run_spmm(tcu, cfg, {}, &bits_null);

  PolicyCache empty;
  const KernelRun run_empty =
      run_spmm(tcu, cfg, {.policy = &empty}, &bits_empty);
  EXPECT_EQ(empty.misses(), 1u);

  // A cache populated only for another preset is as good as empty.
  PolicyCache other;
  other.insert(KernelOp::kSpmm, "turing-t4",
               spmm_dispatch_shape_for_test(tcu, cfg), "spmm_wmma_warp", 1.0);
  const KernelRun run_other =
      run_spmm(tcu, cfg, {.policy = &other}, &bits_other_arch);

  EXPECT_EQ(run_null.config.profile.name, run_empty.config.profile.name);
  EXPECT_EQ(run_null.config.profile.name, run_other.config.profile.name);
  EXPECT_TRUE(gpusim::counters_equal(run_null.stats, run_empty.stats));
  EXPECT_TRUE(gpusim::counters_equal(run_null.stats, run_other.stats));
  EXPECT_EQ(bits_null, bits_empty);
  EXPECT_EQ(bits_null, bits_other_arch);
}

TEST(PolicyCache, AutotunerProducesAValidDeterministicCache) {
  PolicyTuneSpec spec;
  spec.arches = {"volta-v100", "turing-t4"};
  spec.ms = {64};
  spec.ks = {64};
  spec.ns = {64};
  spec.vs = {1, 4};
  spec.sparsities = {0.7};

  const PolicyCache cache = autotune_policy(spec);
  EXPECT_FALSE(cache.empty());
  std::set<std::string> kernels;
  for (const auto& [key, entry] : cache.entries()) {
    const KernelDesc* desc = find_kernel(entry.kernel);
    ASSERT_NE(desc, nullptr) << key;
    EXPECT_TRUE(desc->dispatchable()) << key;
    kernels.insert(entry.kernel);
  }
  EXPECT_GE(kernels.size(), 2u);  // the palette disagrees across classes
  EXPECT_EQ(autotune_policy(spec).to_json(), cache.to_json());
}

}  // namespace
}  // namespace vsparse::kernels

// Sanitizer acceptance tests: the seeded hazard corpus (each detector
// fires exactly once, with correct site attribution, deterministically
// at 1/2/8 host threads), abort-path delivery for hard smem OOB, the
// zero-overhead contract (sanitize-off AND sanitize-on-clean runs are
// bit-identical in counters and results), dedup + report-cap
// semantics, trace mirroring, named-allocation diagnostics, and a
// golden sweep asserting the shipped kernels are hazard-free on the
// benchmark suite's shapes.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "vsparse/bench/scale.hpp"
#include "vsparse/bench/suite.hpp"
#include "vsparse/common/rng.hpp"
#include "vsparse/formats/generate.hpp"
#include "vsparse/gpusim/device.hpp"
#include "vsparse/gpusim/engine/lanes.hpp"
#include "vsparse/gpusim/engine/launch.hpp"
#include "vsparse/gpusim/engine/launch_config.hpp"
#include "vsparse/gpusim/engine/sim_options.hpp"
#include "vsparse/gpusim/sanitizer/report.hpp"
#include "vsparse/gpusim/trace/counters.hpp"
#include "vsparse/gpusim/trace/trace.hpp"
#include "vsparse/kernels/dispatch.hpp"

#include "span_corpus.hpp"

namespace vsparse::gpusim {
namespace {

DeviceConfig test_config(int num_sms = 4) {
  DeviceConfig cfg;
  cfg.dram_capacity = 128 << 20;
  cfg.num_sms = num_sms;
  return cfg;
}

SanitizerOptions all_tools() { return SanitizerOptions{}; }

SanitizerOptions only(bool race, bool sync, bool init, bool bounds) {
  SanitizerOptions opts;
  opts.race = race;
  opts.sync = sync;
  opts.init = init;
  opts.bounds = bounds;
  return opts;
}

/// Run one seeded body at 1, 2, and 8 host threads and require the
/// delivered LaunchSanitizerRecord — and its JSON rendering — to be
/// identical across all three.  `make_body` receives the fresh device
/// (so bodies can capture per-device buffer addresses).
template <class MakeBody>
LaunchSanitizerRecord run_seeded(
    const LaunchConfig& cfg, const SanitizerOptions& tools,
    MakeBody&& make_body, bool expect_abort = false) {
  std::vector<LaunchSanitizerRecord> records;
  std::vector<std::string> jsons;
  for (int threads : {1, 2, 8}) {
    Device dev(test_config(4));
    Sanitizer sink;
    SimOptions sim;
    sim.threads = threads;
    sim.sanitize = tools;
    sim.sanitize.sink = &sink;
    const auto body = make_body(dev);
    if (expect_abort) {
      EXPECT_THROW(launch(dev, cfg, body, sim), CheckError);
    } else {
      launch(dev, cfg, body, sim);
    }
    const auto launches = sink.launches();
    EXPECT_EQ(launches.size(), 1u) << "threads=" << threads;
    records.push_back(launches.empty() ? LaunchSanitizerRecord{}
                                       : launches[0]);
    jsons.push_back(sanitizer_json(sink));
  }
  EXPECT_TRUE(records[0] == records[1])
      << "record differs between threads=1 and threads=2";
  EXPECT_TRUE(records[0] == records[2])
      << "record differs between threads=1 and threads=8";
  EXPECT_EQ(jsons[0], jsons[1]);
  EXPECT_EQ(jsons[0], jsons[2]);
  return records[0];
}

// ---------------------------------------------------------------------
// Seeded hazard corpus
// ---------------------------------------------------------------------

TEST(Sanitizer, InterWarpRawRaceFiresOnce) {
  LaunchConfig cfg;
  cfg.grid = 8;  // same hazard in every CTA must dedup to one report
  cfg.cta_threads = 64;
  cfg.smem_bytes = 64;
  const auto record = run_seeded(cfg, all_tools(), [](Device&) {
    return [](Cta& cta) {
      Lanes<std::uint32_t> off{};
      Lanes<std::int32_t> data{};
      // Warp 0 stores, warp 1 loads the same word with no barrier in
      // between: a classic inter-warp RAW shared-memory race.
      cta.warp(0).sts(off, data, 0x1u);
      cta.warp(1).lds(off, data, 0x1u);
    };
  });
  ASSERT_EQ(record.reports.size(), 1u);
  const SanitizerReport& r = record.reports[0];
  EXPECT_EQ(r.kind, HazardKind::kRawRace);
  EXPECT_EQ(r.tool(), SanitizerTool::kRace);
  EXPECT_EQ(r.sm, 0);
  EXPECT_EQ(r.cta, 0);
  EXPECT_EQ(r.first.warp, 0);
  EXPECT_EQ(r.first.op, Op::kSts);
  EXPECT_EQ(r.second.warp, 1);
  EXPECT_EQ(r.second.op, Op::kLds);
  EXPECT_EQ(r.addr, 0u);
  EXPECT_EQ(r.bytes, 4u);
  EXPECT_EQ(r.epoch, 0u);
}

TEST(Sanitizer, MissingBarrierInDoubleBufferIsRacy) {
  LaunchConfig cfg;
  cfg.grid = 4;
  cfg.cta_threads = 64;
  cfg.smem_bytes = 128;  // two 64 B buffers
  // Double-buffered epilogue that forgets the second barrier: after a
  // correct stage+sync on buffer 0, warp 0 refills buffer 1 while
  // warp 1 consumes it in the same epoch.
  const auto body_missing_barrier = [](Cta& cta) {
    Lanes<std::uint32_t> buf0{};
    Lanes<std::uint32_t> buf1{};
    for (auto& o : buf1) o = 64;
    Lanes<std::int32_t> data{};
    cta.warp(0).sts(buf0, data, 0x1u);
    cta.sync();
    cta.warp(1).lds(buf0, data, 0x1u);  // epoch 1: safe
    cta.warp(0).sts(buf1, data, 0x1u);  // refill...
    cta.warp(1).lds(buf1, data, 0x1u);  // ...consumed without a barrier
  };
  const auto record =
      run_seeded(cfg, all_tools(),
                 [&](Device&) { return body_missing_barrier; });
  ASSERT_EQ(record.reports.size(), 1u);
  EXPECT_EQ(record.reports[0].kind, HazardKind::kRawRace);
  EXPECT_EQ(record.reports[0].addr, 64u);
  EXPECT_EQ(record.reports[0].epoch, 1u);

  // The corrected kernel — barrier restored — is clean.
  const auto body_fixed = [](Cta& cta) {
    Lanes<std::uint32_t> buf0{};
    Lanes<std::uint32_t> buf1{};
    for (auto& o : buf1) o = 64;
    Lanes<std::int32_t> data{};
    cta.warp(0).sts(buf0, data, 0x1u);
    cta.sync();
    cta.warp(1).lds(buf0, data, 0x1u);
    cta.warp(0).sts(buf1, data, 0x1u);
    cta.sync();
    cta.warp(1).lds(buf1, data, 0x1u);
  };
  const auto clean =
      run_seeded(cfg, all_tools(), [&](Device&) { return body_fixed; });
  EXPECT_EQ(clean.reports.size(), 0u);
}

TEST(Sanitizer, WarAndWawRacesDetected) {
  LaunchConfig cfg;
  cfg.grid = 1;
  cfg.cta_threads = 64;
  cfg.smem_bytes = 64;
  // Race tool only, so the deliberate read-before-write below is not
  // also flagged by initcheck.
  const auto record =
      run_seeded(cfg, only(true, false, false, false), [](Device&) {
        return [](Cta& cta) {
          Lanes<std::uint32_t> off{};
          Lanes<std::uint32_t> off2{};
          for (auto& o : off2) o = 32;
          Lanes<std::int32_t> data{};
          cta.warp(1).lds(off, data, 0x1u);   // reader...
          cta.warp(0).sts(off, data, 0x1u);   // ...overwritten: WAR
          cta.warp(0).sts(off2, data, 0x1u);  // writer...
          cta.warp(1).sts(off2, data, 0x1u);  // ...overwritten: WAW
        };
      });
  ASSERT_EQ(record.reports.size(), 2u);
  EXPECT_EQ(record.reports[0].kind, HazardKind::kWarRace);
  EXPECT_EQ(record.reports[0].first.warp, 1);
  EXPECT_EQ(record.reports[0].second.warp, 0);
  EXPECT_EQ(record.reports[1].kind, HazardKind::kWawRace);
  EXPECT_EQ(record.reports[1].addr, 32u);
}

TEST(Sanitizer, DivergentBarrierFiresOnce) {
  LaunchConfig cfg;
  cfg.grid = 8;
  cfg.cta_threads = 32;  // one warp: no mismatched-count side report
  const auto record = run_seeded(cfg, all_tools(), [](Device&) {
    return [](Cta& cta) { cta.warp(0).bar_sync(0x0000FFFFu); };
  });
  ASSERT_EQ(record.reports.size(), 1u);
  const SanitizerReport& r = record.reports[0];
  EXPECT_EQ(r.kind, HazardKind::kDivergentBarrier);
  EXPECT_EQ(r.tool(), SanitizerTool::kSync);
  EXPECT_EQ(r.second.warp, 0);
  EXPECT_EQ(r.second.op, Op::kBar);
  EXPECT_NE(r.detail.find("partial lane mask"), std::string::npos);
}

TEST(Sanitizer, BarrierCountMismatchAtCtaEnd) {
  LaunchConfig cfg;
  cfg.grid = 4;
  cfg.cta_threads = 64;
  const auto record = run_seeded(cfg, all_tools(), [](Device&) {
    return [](Cta& cta) {
      cta.warp(0).bar_sync();  // warp 1 never arrives
    };
  });
  ASSERT_EQ(record.reports.size(), 1u);
  const SanitizerReport& r = record.reports[0];
  EXPECT_EQ(r.kind, HazardKind::kBarrierMismatch);
  EXPECT_EQ(r.first.warp, 0);   // arrived the most
  EXPECT_EQ(r.second.warp, 1);  // arrived the least
  EXPECT_NE(r.detail.find("unequal barrier counts"), std::string::npos);
}

TEST(Sanitizer, UninitSmemReadFiresOnce) {
  LaunchConfig cfg;
  cfg.grid = 8;
  cfg.cta_threads = 32;
  cfg.smem_bytes = 64;
  const auto record = run_seeded(cfg, all_tools(), [](Device&) {
    return [](Cta& cta) {
      Lanes<std::uint32_t> off{};
      for (auto& o : off) o = 16;
      Lanes<std::int32_t> data{};
      cta.warp(0).lds(off, data, 0x3u);  // nothing ever stored there
    };
  });
  ASSERT_EQ(record.reports.size(), 1u);
  const SanitizerReport& r = record.reports[0];
  EXPECT_EQ(r.kind, HazardKind::kUninitSmemRead);
  EXPECT_EQ(r.tool(), SanitizerTool::kInit);
  EXPECT_EQ(r.first.warp, -1);  // an uninit read has no writer site
  EXPECT_EQ(r.second.op, Op::kLds);
  EXPECT_EQ(r.addr, 16u);
  EXPECT_EQ(r.bytes, 8u);  // two lanes x 4 B, same word broadcast twice
}

TEST(Sanitizer, GlobalRedZoneReadFiresOnce) {
  LaunchConfig cfg;
  cfg.grid = 8;
  cfg.cta_threads = 32;
  const auto record = run_seeded(cfg, all_tools(), [](Device& dev) {
    // 100 ints end at +400; the next 256-aligned allocation starts at
    // +512, leaving a 112 B red zone that translate() accepts (it is
    // below the bump pointer) but no allocation owns.
    auto idx = dev.alloc<std::int32_t>(100, "idx");
    dev.alloc<std::int32_t>(64, "next");
    const std::uint64_t gap = idx.addr() + idx.bytes();
    return [gap](Cta& cta) {
      AddrLanes addr{};
      addr[0] = gap;
      Lanes<std::int32_t> dst{};
      cta.warp(0).ldg(addr, dst, 0x1u);
    };
  });
  ASSERT_EQ(record.reports.size(), 1u);
  const SanitizerReport& r = record.reports[0];
  EXPECT_EQ(r.kind, HazardKind::kGlobalOob);
  EXPECT_EQ(r.tool(), SanitizerTool::kBounds);
  EXPECT_EQ(r.second.op, Op::kLdg);
  EXPECT_NE(r.detail.find("'idx'"), std::string::npos)
      << "OOB report names the nearest allocation: " << r.detail;
}

TEST(Sanitizer, UseAfterFreeDetected) {
  LaunchConfig cfg;
  cfg.grid = 2;
  cfg.cta_threads = 32;
  const auto record = run_seeded(cfg, all_tools(), [](Device& dev) {
    auto stale = dev.alloc<std::int32_t>(64, "stale");
    const std::uint64_t addr0 = stale.addr();
    dev.free(stale);
    return [addr0](Cta& cta) {
      AddrLanes addr{};
      addr[0] = addr0;
      Lanes<std::int32_t> dst{};
      cta.warp(0).ldg(addr, dst, 0x1u);
    };
  });
  ASSERT_EQ(record.reports.size(), 1u);
  EXPECT_EQ(record.reports[0].kind, HazardKind::kGlobalUseAfterFree);
  EXPECT_NE(record.reports[0].detail.find("'stale'"), std::string::npos);
}

TEST(Sanitizer, SmemOobReportedThenLaunchAborts) {
  LaunchConfig cfg;
  cfg.grid = 4;
  cfg.cta_threads = 32;
  cfg.smem_bytes = 32;
  const auto record = run_seeded(
      cfg, all_tools(),
      [](Device&) {
        return [](Cta& cta) {
          Lanes<std::uint32_t> off{};
          for (auto& o : off) o = 32;  // first byte past the window
          Lanes<std::int32_t> data{};
          cta.warp(0).lds(off, data, 0x1u);
        };
      },
      /*expect_abort=*/true);
  // The hazard is reported even though the engine's always-on bounds
  // check unwinds the launch right after: abort-path delivery.
  EXPECT_TRUE(record.aborted);
  ASSERT_EQ(record.reports.size(), 1u);
  EXPECT_EQ(record.reports[0].kind, HazardKind::kSmemOob);
  EXPECT_EQ(record.reports[0].tool(), SanitizerTool::kBounds);
  EXPECT_EQ(record.reports[0].addr, 32u);
}

// ---------------------------------------------------------------------
// Semantics: tool gating, caps, trace mirroring
// ---------------------------------------------------------------------

TEST(Sanitizer, ToolGatingFiltersKinds) {
  LaunchConfig cfg;
  cfg.grid = 1;
  cfg.cta_threads = 32;
  cfg.smem_bytes = 64;
  // An uninit read with initcheck off must not report.
  const auto record =
      run_seeded(cfg, only(true, true, false, true), [](Device&) {
        return [](Cta& cta) {
          Lanes<std::uint32_t> off{};
          Lanes<std::int32_t> data{};
          cta.warp(0).lds(off, data, 0x1u);
        };
      });
  EXPECT_EQ(record.reports.size(), 0u);
}

TEST(Sanitizer, ReportCapCountsSuppressed) {
  LaunchConfig cfg;
  cfg.grid = 1;
  cfg.cta_threads = 32;
  cfg.smem_bytes = 64;
  SanitizerOptions opts = all_tools();
  opts.max_reports = 1;
  const auto record = run_seeded(cfg, opts, [](Device&) {
    return [](Cta& cta) {
      Lanes<std::uint32_t> a{};
      Lanes<std::uint32_t> b{};
      for (auto& o : b) o = 32;
      Lanes<std::int32_t> data{};
      cta.warp(0).lds(a, data, 0x1u);  // uninit #1: kept
      cta.warp(0).lds(b, data, 0x1u);  // uninit #2: over the cap
    };
  });
  EXPECT_EQ(record.reports.size(), 1u);
  EXPECT_EQ(record.suppressed, 1u);
}

TEST(Sanitizer, HazardsMirrorIntoTraceStream) {
  LaunchConfig cfg;
  cfg.grid = 2;
  cfg.cta_threads = 32;
  cfg.smem_bytes = 64;
  Device dev(test_config(4));
  Trace trace;
  Sanitizer sink;
  SimOptions sim;
  sim.threads = 1;
  sim.trace.sink = &trace;
  sim.sanitize.sink = &sink;
  launch(dev, cfg, [](Cta& cta) {
    Lanes<std::uint32_t> off{};
    Lanes<std::int32_t> data{};
    cta.warp(0).lds(off, data, 0x1u);
  }, sim);
  ASSERT_EQ(trace.launches().size(), 1u);
  const auto& events = trace.launches()[0].events;
  const auto it = std::find_if(
      events.begin(), events.end(), [](const TraceEvent& e) {
        return e.kind == TraceEventKind::kSanitizer;
      });
  ASSERT_NE(it, events.end());
  EXPECT_EQ(it->a, static_cast<std::uint64_t>(SanitizerTool::kInit));
  EXPECT_EQ(it->b,
            static_cast<std::uint64_t>(HazardKind::kUninitSmemRead));
}

TEST(Sanitizer, ParseToolListSelectsTools) {
  SanitizerOptions opts;
  EXPECT_TRUE(parse_sanitizer_tools("race,init", &opts));
  EXPECT_TRUE(opts.race);
  EXPECT_FALSE(opts.sync);
  EXPECT_TRUE(opts.init);
  EXPECT_FALSE(opts.bounds);
  EXPECT_TRUE(parse_sanitizer_tools("all", &opts));
  EXPECT_TRUE(opts.race && opts.sync && opts.init && opts.bounds);
  EXPECT_FALSE(parse_sanitizer_tools("race,bogus", &opts));
}

// ---------------------------------------------------------------------
// Zero-overhead contract and diagnostics
// ---------------------------------------------------------------------

TEST(Sanitizer, CleanKernelBitIdenticalWithSanitizerOn) {
  Rng rng(23);
  Cvs a = make_cvs(64, 128, 4, 0.6, rng);
  DenseMatrix<half_t> b(128, 64);
  b.fill_random_int(rng);

  const auto run_once = [&](Sanitizer* sink) {
    Device dev(test_config(8));
    auto da = to_device(dev, a);
    auto db = to_device(dev, b);
    DenseMatrix<half_t> ch(64, 64);
    auto dc = to_device(dev, ch);
    kernels::SpmmOptions options;
    options.sim.threads = 1;
    options.sim.sanitize.sink = sink;
    auto run = kernels::spmm(dev, da, db, dc, options);
    std::vector<std::uint16_t> bits;
    for (half_t h : dc.buf.host()) bits.push_back(h.bits());
    return std::make_pair(run.stats, bits);
  };

  Sanitizer sink;
  const auto off = run_once(nullptr);
  const auto on = run_once(&sink);
  EXPECT_TRUE(counters_equal(off.first, on.first))
      << "a clean sanitized run must not perturb any counter";
  EXPECT_EQ(off.second, on.second)
      << "a clean sanitized run must not perturb results";
  ASSERT_EQ(sink.launches().size(), 1u);
  EXPECT_EQ(sink.launches()[0].kernel, "spmm_octet_v4");
  EXPECT_EQ(sink.launches()[0].reports.size(), 0u);
  EXPECT_EQ(sink.num_reports(), 0u);
}

TEST(Sanitizer, TranslateErrorNamesOffendingAllocation) {
  Device dev(test_config());
  dev.alloc<std::int32_t>(16, "weights");
  try {
    dev.translate(1u << 20, 4);
    FAIL() << "translate past the bump pointer must throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("device OOB access"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("'weights'"), std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------
// Golden sweep: shipped kernels are hazard-free on the suite's shapes
// ---------------------------------------------------------------------

TEST(SanitizerSweep, ShippedKernelsCleanOnSuiteShapes) {
  Sanitizer sink;
  const auto all_shapes = bench::suite_shapes(bench::Scale::kSmall);
  const std::vector<bench::Shape> shapes(
      all_shapes.begin(),
      all_shapes.begin() +
          static_cast<std::ptrdiff_t>(std::min<std::size_t>(all_shapes.size(), 2)));
  int cases = 0;
  for (const int v : {1, 2, 4, 8}) {
    for (const double sparsity : {0.5, 0.98}) {
      for (const bench::Shape& shape : shapes) {
        const Cvs a = bench::make_suite_cvs(shape, sparsity, v);
        Rng rng(bench::bench_seed(shape, sparsity, v));
        DenseMatrix<half_t> b(shape.k, 64);
        b.fill_random_int(rng);
        kernels::SpmmOptions options;
        options.sim.threads = 2;
        options.sim.sanitize.sink = &sink;
        const std::vector<kernels::SpmmAlgorithm> algos =
            v == 1 ? std::vector<kernels::SpmmAlgorithm>{
                         kernels::SpmmAlgorithm::kFpuSubwarp,
                         kernels::SpmmAlgorithm::kCsrFine}
                   : std::vector<kernels::SpmmAlgorithm>{
                         kernels::SpmmAlgorithm::kOctet,
                         kernels::SpmmAlgorithm::kWmmaWarp,
                         kernels::SpmmAlgorithm::kFpuSubwarp};
        for (const auto algo : algos) {
          options.algorithm = algo;
          kernels::spmm_host(a, b, options);
          ++cases;
        }
      }
    }
  }
  EXPECT_GT(cases, 0);
  EXPECT_EQ(sink.num_launches(), static_cast<std::size_t>(cases));
  for (const auto& l : sink.launches()) {
    EXPECT_EQ(l.reports.size(), 0u)
        << l.kernel << " reported: "
        << (l.reports.empty() ? "" : to_string(l.reports[0]));
  }
}

TEST(SanitizerSweep, ShippedSddmmCleanOnSuiteShapes) {
  Sanitizer sink;
  const auto all_shapes = bench::suite_shapes(bench::Scale::kSmall);
  const std::vector<bench::Shape> shapes(
      all_shapes.begin(),
      all_shapes.begin() +
          static_cast<std::ptrdiff_t>(std::min<std::size_t>(all_shapes.size(), 2)));
  int cases = 0;
  for (const int v : {1, 2, 4, 8}) {
    for (const bench::Shape& shape : shapes) {
      Rng rng(bench::bench_seed(shape, 0.9, v));
      Cvs mask = make_cvs_mask(shape.m, 64, v, 0.9, rng);
      DenseMatrix<half_t> a(shape.m, shape.k);
      DenseMatrix<half_t> b(shape.k, 64, Layout::kColMajor);
      a.fill_random_int(rng);
      b.fill_random_int(rng);
      kernels::SddmmOptions options;
      options.sim.threads = 2;
      options.sim.sanitize.sink = &sink;
      kernels::sddmm_host(a, b, mask, options);
      ++cases;
    }
  }
  EXPECT_GT(cases, 0);
  EXPECT_EQ(sink.num_launches(), static_cast<std::size_t>(cases));
  for (const auto& l : sink.launches()) {
    EXPECT_EQ(l.reports.size(), 0u)
        << l.kernel << " reported: "
        << (l.reports.empty() ? "" : to_string(l.reports[0]));
  }
}

// ---------------------------------------------------------------------
// Span ops under the sanitizer (DESIGN.md §2h): with any tool armed a
// span op self-diverts onto the per-lane path, so the sanitizer sees
// the exact per-lane access sequence.  A clean span corpus must report
// nothing, and the diversion must not perturb results or counters —
// neither against the unsanitized span run nor against a sanitized
// hand-expanded per-lane run.

TEST(SanitizerSpan, CorpusCleanAndUnperturbedUnderAllTools) {
  const auto run_once = [&](bool use_span, Sanitizer* sink) {
    Device dev(test_config(4));
    SimOptions sim;
    sim.threads = 1;
    if (sink != nullptr) {
      sim.sanitize = all_tools();
      sim.sanitize.sink = sink;
    }
    return run_span_corpus(dev, use_span, sim);
  };

  Sanitizer span_sink;
  Sanitizer lane_sink;
  const auto span_off = run_once(true, nullptr);
  const auto span_on = run_once(true, &span_sink);
  const auto lane_on = run_once(false, &lane_sink);

  // Zero reports on every tool for the span run.
  ASSERT_EQ(span_sink.launches().size(), 1u);
  EXPECT_EQ(span_sink.launches()[0].kernel, "span_corpus");
  EXPECT_EQ(span_sink.num_reports(), 0u);
  EXPECT_EQ(span_sink.num_reports(SanitizerTool::kRace), 0u);
  EXPECT_EQ(span_sink.num_reports(SanitizerTool::kSync), 0u);
  EXPECT_EQ(span_sink.num_reports(SanitizerTool::kInit), 0u);
  EXPECT_EQ(span_sink.num_reports(SanitizerTool::kBounds), 0u);
  EXPECT_EQ(lane_sink.num_reports(), 0u);

  // The divert is invisible: sanitized span == unsanitized span ==
  // sanitized per-lane, in bits and counters.
  EXPECT_EQ(span_off.dst_bits, span_on.dst_bits);
  EXPECT_TRUE(counters_equal(span_off.total, span_on.total))
      << "sanitized span run perturbed counters";
  EXPECT_EQ(span_on.dst_bits, lane_on.dst_bits);
  EXPECT_TRUE(counters_equal(span_on.total, lane_on.total))
      << "span and per-lane differ under the sanitizer";
}

TEST(SanitizerSpan, RacecheckSeesThroughSpanStores) {
  // Two warps sts_span to the same smem words with no barrier: the
  // span store must not mask the race from racecheck.
  LaunchConfig cfg;
  cfg.grid = 1;
  cfg.cta_threads = 64;
  cfg.smem_bytes = 256;
  cfg.profile.name = "span_race";
  const auto rec = run_seeded(cfg, only(true, false, false, false),
                              [&](Device&) {
    return [](Cta& cta) {
      Lanes<std::uint32_t> v{};
      Warp w0 = cta.warp(0);
      Warp w1 = cta.warp(1);
      w0.sts_span(0, 4, v);
      w1.sts_span(0, 4, v);  // WAW with warp 0, no barrier
    };
  });
  EXPECT_EQ(rec.reports.size(), 1u);
  ASSERT_FALSE(rec.reports.empty());
  EXPECT_EQ(rec.reports[0].tool(), SanitizerTool::kRace);
}

}  // namespace
}  // namespace vsparse::gpusim

// Unit + property tests for the software binary16 type.
#include "vsparse/fp16/half.hpp"
#include "vsparse/fp16/vec.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "vsparse/common/rng.hpp"

namespace vsparse {
namespace {

TEST(Half, ZeroAndSigns) {
  EXPECT_EQ(half_t(0.0f).bits(), 0x0000u);
  EXPECT_EQ(half_t(-0.0f).bits(), 0x8000u);
  EXPECT_EQ(static_cast<float>(half_t::from_bits(0x8000)), -0.0f);
}

TEST(Half, KnownValues) {
  EXPECT_EQ(half_t(1.0f).bits(), 0x3c00u);
  EXPECT_EQ(half_t(-2.0f).bits(), 0xc000u);
  EXPECT_EQ(half_t(0.5f).bits(), 0x3800u);
  EXPECT_EQ(half_t(65504.0f).bits(), 0x7bffu);  // max finite half
  EXPECT_EQ(half_t(0.000061035156f).bits(), 0x0400u);  // min normal
  EXPECT_FLOAT_EQ(static_cast<float>(half_t::from_bits(0x3555)), 0.333251953125f);
}

TEST(Half, OverflowToInfinity) {
  EXPECT_TRUE(isinf(half_t(65536.0f)));
  EXPECT_TRUE(isinf(half_t(1e10f)));
  EXPECT_TRUE(isinf(half_t(-1e10f)));
  EXPECT_EQ(half_t(1e10f).bits(), 0x7c00u);
  EXPECT_EQ(half_t(-1e10f).bits(), 0xfc00u);
  // 65520 is the rounding boundary: everything >= 65520 becomes inf.
  EXPECT_TRUE(isinf(half_t(65520.0f)));
  EXPECT_EQ(half_t(65519.996f).bits(), 0x7bffu);
}

TEST(Half, UnderflowAndSubnormals) {
  // Smallest subnormal: 2^-24.
  EXPECT_EQ(half_t(5.9604644775390625e-8f).bits(), 0x0001u);
  // Half the smallest subnormal rounds to zero (ties-to-even).
  EXPECT_EQ(half_t(2.98023223876953125e-8f).bits(), 0x0000u);
  // Just above half the smallest subnormal rounds up.
  EXPECT_EQ(half_t(3.1e-8f).bits(), 0x0001u);
}

TEST(Half, RoundToNearestEven) {
  // 1 + 2^-11 is exactly between 1.0 and the next half (1+2^-10):
  // rounds to even (1.0).
  EXPECT_EQ(half_t(1.00048828125f).bits(), 0x3c00u);
  // 1 + 3*2^-11 is between 1+2^-10 and 1+2^-9: rounds to even (1+2^-9).
  EXPECT_EQ(half_t(1.00146484375f).bits(), 0x3c02u);
}

TEST(Half, NanPropagation) {
  const half_t n = half_t(std::numeric_limits<float>::quiet_NaN());
  EXPECT_TRUE(isnan(n));
  EXPECT_TRUE(std::isnan(static_cast<float>(n)));
  EXPECT_FALSE(isnan(half_t(1.0f)));
  EXPECT_FALSE(isinf(n));
}

// Exhaustive: every half bit pattern converts to float and back
// unchanged (NaNs keep NaN-ness; everything else is bit-exact).
TEST(Half, ExhaustiveRoundTrip) {
  for (std::uint32_t bits = 0; bits <= 0xffffu; ++bits) {
    const half_t h = half_t::from_bits(static_cast<std::uint16_t>(bits));
    const float f = static_cast<float>(h);
    const half_t back = half_t(f);
    if (isnan(h)) {
      EXPECT_TRUE(isnan(back)) << "bits=" << bits;
    } else {
      EXPECT_EQ(back.bits(), h.bits()) << "bits=" << bits;
    }
  }
}

// The portable conversion path must agree with the hardware (F16C)
// path bit-for-bit in both directions.
TEST(Half, PortableMatchesHardwareHalfToFloat) {
  for (std::uint32_t bits = 0; bits <= 0xffffu; ++bits) {
    const auto h = static_cast<std::uint16_t>(bits);
    const float portable = fp16_detail::half_bits_to_float_portable(h);
    const float active = fp16_detail::half_bits_to_float(h);
    if (std::isnan(portable)) {
      EXPECT_TRUE(std::isnan(active)) << "bits=" << bits;
    } else {
      EXPECT_EQ(std::bit_cast<std::uint32_t>(portable),
                std::bit_cast<std::uint32_t>(active))
          << "bits=" << bits;
    }
  }
}

TEST(Half, PortableMatchesHardwareFloatToHalf) {
  Rng rng(123);
  for (int i = 0; i < 200000; ++i) {
    const auto word = static_cast<std::uint32_t>(rng() & 0xffffffffu);
    const float f = std::bit_cast<float>(word);
    const std::uint16_t portable = fp16_detail::float_to_half_bits_portable(f);
    const std::uint16_t active = fp16_detail::float_to_half_bits(f);
    if (std::isnan(f)) {
      EXPECT_EQ(portable & 0x7c00u, 0x7c00u);
      EXPECT_NE(portable & 0x3ffu, 0u);
      EXPECT_EQ(active & 0x7c00u, 0x7c00u);
    } else {
      EXPECT_EQ(portable, active)
          << "float bits=" << word << " value=" << f;
    }
  }
}

// Property: conversion is monotone on finite floats.
TEST(Half, MonotoneConversion) {
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    const float a = rng.uniform_float(-70000.0f, 70000.0f);
    const float b = rng.uniform_float(-70000.0f, 70000.0f);
    const float lo = std::min(a, b), hi = std::max(a, b);
    EXPECT_LE(static_cast<float>(half_t(lo)), static_cast<float>(half_t(hi)))
        << "lo=" << lo << " hi=" << hi;
  }
}

// Property: round-to-nearest error is within half a ULP of the result.
TEST(Half, RoundingErrorBound) {
  Rng rng(99);
  for (int i = 0; i < 100000; ++i) {
    const float f = rng.uniform_float(-60000.0f, 60000.0f);
    const float r = static_cast<float>(half_t(f));
    const float mag = std::max(std::fabs(f), 6.1035156e-5f);  // >= min normal
    // ulp(half) = 2^-10 relative for normals.
    EXPECT_LE(std::fabs(r - f), mag * (1.0f / 1024.0f) * 0.5f + 1e-7f)
        << "f=" << f << " r=" << r;
  }
}

TEST(Half, HaddHmulRoundOnce) {
  // 2048 + 1 is not representable in half (ulp at 2048 is 2):
  // ties-to-even keeps 2048.
  EXPECT_EQ(hadd(half_t(2048.0f), half_t(1.0f)).bits(), half_t(2048.0f).bits());
  EXPECT_EQ(hadd(half_t(2048.0f), half_t(3.0f)).bits(), half_t(2052.0f).bits());
  EXPECT_EQ(static_cast<float>(hmul(half_t(3.0f), half_t(5.0f))), 15.0f);
  // Product overflow saturates to inf.
  EXPECT_TRUE(isinf(hmul(half_t(300.0f), half_t(300.0f))));
}

TEST(Half, NumericLimits) {
  using lim = std::numeric_limits<half_t>;
  EXPECT_FLOAT_EQ(static_cast<float>(lim::max()), 65504.0f);
  EXPECT_FLOAT_EQ(static_cast<float>(lim::lowest()), -65504.0f);
  EXPECT_FLOAT_EQ(static_cast<float>(lim::min()), 6.103515625e-5f);
  EXPECT_FLOAT_EQ(static_cast<float>(lim::epsilon()), 0.0009765625f);
  EXPECT_TRUE(isinf(lim::infinity()));
  EXPECT_TRUE(isnan(lim::quiet_NaN()));
}

TEST(HalfVec, LayoutAndAccess) {
  half4 v;
  for (int i = 0; i < 4; ++i) v[i] = half_t(static_cast<float>(i + 1));
  EXPECT_EQ(static_cast<float>(v[2]), 3.0f);
  // Contiguous 2-byte packing is what the vector memory ops rely on.
  const auto* raw = reinterpret_cast<const std::uint16_t*>(&v);
  EXPECT_EQ(raw[0], half_t(1.0f).bits());
  EXPECT_EQ(raw[3], half_t(4.0f).bits());
}

}  // namespace
}  // namespace vsparse

// Tests for the benchmark-support library: summaries, suite
// determinism, and the dense-baseline cache.
#include <gtest/gtest.h>

#include "vsparse/bench/runner.hpp"
#include "vsparse/bench/suite.hpp"
#include "vsparse/bench/summary.hpp"

namespace vsparse::bench {
namespace {

TEST(Summary, GeomeanAndQuartiles) {
  BoxStats s = summarize({1.0, 2.0, 4.0, 8.0});
  EXPECT_NEAR(s.geomean, 2.8284, 1e-3);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 8.0);
  EXPECT_NEAR(s.median, 3.0, 1e-9);
  EXPECT_EQ(s.count, 4);
}

TEST(Summary, SingleSample) {
  BoxStats s = summarize({3.5});
  EXPECT_DOUBLE_EQ(s.geomean, 3.5);
  EXPECT_DOUBLE_EQ(s.median, 3.5);
}

TEST(Summary, EmptyIsZero) {
  BoxStats s = summarize({});
  EXPECT_EQ(s.count, 0);
  EXPECT_DOUBLE_EQ(s.geomean, 0.0);
}

TEST(Summary, RejectsNonPositive) {
  EXPECT_THROW(geomean({1.0, 0.0}), CheckError);
}

TEST(Suite, DeterministicConstruction) {
  Cvs a = make_suite_cvs({512, 256}, 0.9, 4);
  Cvs b = make_suite_cvs({512, 256}, 0.9, 4);
  EXPECT_EQ(a.row_ptr, b.row_ptr);
  EXPECT_EQ(a.col_idx, b.col_idx);
  EXPECT_EQ(a.values.size(), b.values.size());
  for (std::size_t i = 0; i < a.values.size(); ++i) {
    EXPECT_EQ(a.values[i].bits(), b.values[i].bits());
  }
}

TEST(Suite, BlockedEllTwinMatchesSparsity) {
  Cvs cvs = make_suite_cvs({512, 256}, 0.9, 4);
  BlockedEll ell = make_suite_blocked_ell({512, 256}, 0.9, 4);
  EXPECT_EQ(ell.rows, cvs.rows);
  EXPECT_EQ(ell.cols, cvs.cols);
  EXPECT_NEAR(ell.sparsity(), cvs.sparsity(), 0.05);
}

TEST(Suite, ScalesDiffer) {
  EXPECT_LT(suite_shapes(Scale::kSmall).size(),
            suite_shapes(Scale::kPaper).size());
}

TEST(DenseBaselineCache, MemoizesAndIsConsistent) {
  DenseBaseline base;
  const double a = base.hgemm_cycles(256, 128, 128);
  const double b = base.hgemm_cycles(256, 128, 128);
  EXPECT_DOUBLE_EQ(a, b);
  // Bigger problems cost more.
  EXPECT_GT(base.hgemm_cycles(512, 128, 128), a);
  // Single precision costs more than half on the same problem.
  EXPECT_GT(base.sgemm_cycles(256, 128, 128), a);
}

}  // namespace
}  // namespace vsparse::bench

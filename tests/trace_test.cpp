// Launch-tracing acceptance tests: event structure and attribution,
// the zero-overhead contract (tracing off == bit-identical counters
// and results), determinism of the merged trace across host thread
// counts, fault/watchdog/abort events, warp-op sampling, the
// Perfetto + metrics.json exporters, and the per_sm_stats
// reset-between-launches regression.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "vsparse/common/rng.hpp"
#include "vsparse/formats/generate.hpp"
#include "vsparse/gpusim/device.hpp"
#include "vsparse/gpusim/engine/lanes.hpp"
#include "vsparse/gpusim/engine/launch.hpp"
#include "vsparse/gpusim/engine/launch_config.hpp"
#include "vsparse/gpusim/engine/sim_options.hpp"
#include "vsparse/gpusim/faults.hpp"
#include "vsparse/gpusim/trace/counters.hpp"
#include "vsparse/gpusim/trace/export.hpp"
#include "vsparse/gpusim/trace/trace.hpp"
#include "vsparse/kernels/dispatch.hpp"

namespace vsparse::gpusim {
namespace {

DeviceConfig test_config(int num_sms = 4) {
  DeviceConfig cfg;
  cfg.dram_capacity = 128 << 20;
  cfg.num_sms = num_sms;
  return cfg;
}

int count_kind(const LaunchTrace& lt, TraceEventKind kind) {
  return static_cast<int>(
      std::count_if(lt.events.begin(), lt.events.end(),
                    [&](const TraceEvent& e) { return e.kind == kind; }));
}

/// A CTA body with some per-warp instruction traffic and two barriers.
void busy_body(Cta& cta) {
  for (int w = 0; w < cta.num_warps(); ++w) {
    Warp warp = cta.warp(w);
    warp.count(Op::kIadd3, 4);
    warp.count(Op::kImad, 2);
  }
  cta.sync();
  cta.sync();
}

TEST(Trace, RecordsLaunchStructureAndMergesDeterministically) {
  Device dev(test_config());
  Trace trace;
  LaunchConfig cfg;
  cfg.grid = 6;
  cfg.cta_threads = 64;  // 2 warps per CTA
  const SimOptions sim{.threads = 1, .trace = {.sink = &trace}};
  const KernelStats stats = launch(dev, cfg, busy_body, sim);

  ASSERT_EQ(trace.launches().size(), 1u);
  const LaunchTrace& lt = trace.launches()[0];
  EXPECT_EQ(lt.grid, 6);
  EXPECT_EQ(lt.cta_threads, 64);
  EXPECT_EQ(lt.num_sms, 4);
  EXPECT_FALSE(lt.aborted);
  EXPECT_GT(lt.duration, 0u);
  EXPECT_TRUE(counters_equal(lt.stats, stats))
      << "merged trace counters must equal the launch's return value";

  // Bracketing: launch-scope begin/end around the per-SM streams.
  ASSERT_GE(lt.events.size(), 2u);
  EXPECT_EQ(lt.events.front().kind, TraceEventKind::kKernelBegin);
  EXPECT_EQ(lt.events.front().a, 6u);
  EXPECT_EQ(lt.events.front().b, 64u);
  EXPECT_EQ(lt.events.back().kind, TraceEventKind::kKernelEnd);
  EXPECT_EQ(lt.events.back().cycles, lt.duration);

  // Every CTA opens and closes, attributed to a valid SM, and the
  // merged stream is ordered by SM id (the deterministic merge order).
  EXPECT_EQ(count_kind(lt, TraceEventKind::kCtaBegin), 6);
  EXPECT_EQ(count_kind(lt, TraceEventKind::kCtaEnd), 6);
  EXPECT_EQ(count_kind(lt, TraceEventKind::kBarrier), 12);
  int last_sm = -1;
  for (const TraceEvent& ev : lt.events) {
    if (ev.sm < 0) continue;  // launch scope
    EXPECT_LT(ev.sm, 4);
    EXPECT_GE(ev.sm, last_sm) << "per-SM streams must merge in SM-id order";
    last_sm = ev.sm;
    if (ev.kind == TraceEventKind::kCtaBegin) {
      EXPECT_GE(ev.cta, 0);
      EXPECT_LT(ev.cta, 6);
      EXPECT_EQ(ev.a, 2u) << "kCtaBegin payload is the CTA's warp count";
    }
  }
}

TEST(Trace, DisabledTracingIsBitIdenticalToUntraced) {
  Rng rng(11);
  Cvs a = make_cvs(64, 128, 4, 0.6, rng);
  DenseMatrix<half_t> b(128, 64);
  b.fill_random_int(rng);

  const auto run_once = [&](Trace* sink) {
    Device dev(test_config(8));
    auto da = to_device(dev, a);
    auto db = to_device(dev, b);
    DenseMatrix<half_t> ch(64, 64);
    auto dc = to_device(dev, ch);
    kernels::SpmmOptions options;
    options.sim.threads = 1;
    options.sim.trace.sink = sink;
    auto run = kernels::spmm(dev, da, db, dc, options);
    std::vector<std::uint16_t> bits;
    for (half_t h : dc.buf.host()) bits.push_back(h.bits());
    return std::make_pair(run.stats, bits);
  };

  Trace trace;
  const auto untraced = run_once(nullptr);
  const auto traced = run_once(&trace);
  EXPECT_TRUE(counters_equal(untraced.first, traced.first))
      << "tracing must not perturb any counter";
  EXPECT_EQ(untraced.second, traced.second)
      << "tracing must not perturb results";
  ASSERT_EQ(trace.launches().size(), 1u);
  EXPECT_EQ(trace.launches()[0].kernel, "spmm_octet_v4");
}

TEST(Trace, MergedTraceIdenticalAcrossThreadCounts) {
  Rng rng(12);
  Cvs a = make_cvs(128, 128, 4, 0.5, rng);
  DenseMatrix<half_t> b(128, 128);
  b.fill_random_int(rng);

  struct Run {
    std::vector<TraceEvent> events;
    std::string perfetto;
  };
  const auto run_with = [&](int threads) {
    Device dev(test_config(8));
    auto da = to_device(dev, a);
    auto db = to_device(dev, b);
    DenseMatrix<half_t> ch(128, 128);
    auto dc = to_device(dev, ch);
    Trace trace;
    kernels::SpmmOptions options;
    options.sim.threads = threads;
    options.sim.trace.sink = &trace;
    options.sim.trace.sample_ops = 256;  // sampling must be thread-invariant
    kernels::spmm(dev, da, db, dc, options);
    return Run{trace.launches().at(0).events, perfetto_json(trace)};
  };

  const Run serial = run_with(1);
  EXPECT_FALSE(serial.events.empty());
  for (int threads : {2, 8}) {
    const Run threaded = run_with(threads);
    EXPECT_EQ(serial.events, threaded.events)
        << "merged event stream differs at threads=" << threads;
    EXPECT_EQ(serial.perfetto, threaded.perfetto)
        << "Perfetto export differs at threads=" << threads;
  }
}

TEST(Trace, BarrierEventsCanBeSuppressed) {
  Device dev(test_config());
  LaunchConfig cfg;
  cfg.grid = 4;
  cfg.cta_threads = 64;

  Trace with_barriers;
  launch(dev, cfg, busy_body,
         SimOptions{.threads = 1, .trace = {.sink = &with_barriers}});
  EXPECT_EQ(count_kind(with_barriers.launches()[0], TraceEventKind::kBarrier),
            8);

  Trace without;
  launch(
      dev, cfg, busy_body,
      SimOptions{.threads = 1,
                 .trace = {.sink = &without, .barriers = false}});
  EXPECT_EQ(count_kind(without.launches()[0], TraceEventKind::kBarrier), 0);
  // Suppressing barrier *events* must not move the instruction clock.
  EXPECT_EQ(without.launches()[0].duration,
            with_barriers.launches()[0].duration);
}

TEST(Trace, WarpOpSamplingFollowsTheStride) {
  Device dev(test_config(1));
  LaunchConfig cfg;
  cfg.grid = 1;
  cfg.cta_threads = 32;
  const auto body = [](Cta& cta) {
    Warp w = cta.warp(0);
    for (int i = 0; i < 5; ++i) w.count(Op::kIadd3);
  };

  Trace every_op;
  launch(dev, cfg, body,
         SimOptions{.threads = 1,
                    .trace = {.sink = &every_op, .sample_ops = 1}});
  const LaunchTrace& dense = every_op.launches()[0];
  EXPECT_EQ(count_kind(dense, TraceEventKind::kWarpOp), 5);
  for (const TraceEvent& ev : dense.events) {
    if (ev.kind != TraceEventKind::kWarpOp) continue;
    EXPECT_EQ(ev.warp, 0);
    EXPECT_EQ(ev.cta, 0);
    EXPECT_LT(ev.a, static_cast<std::uint64_t>(kNumOps));
    EXPECT_GE(ev.b, 1u);  // batch size
  }

  Trace sparse;
  launch(dev, cfg, body,
         SimOptions{.threads = 1,
                    .trace = {.sink = &sparse, .sample_ops = 1000}});
  EXPECT_EQ(count_kind(sparse.launches()[0], TraceEventKind::kWarpOp), 0);

  Trace off;  // sample_ops = 0 (the default): no warp-op events at all
  launch(dev, cfg, body, SimOptions{.threads = 1, .trace = {.sink = &off}});
  EXPECT_EQ(count_kind(off.launches()[0], TraceEventKind::kWarpOp), 0);
}

TEST(Trace, WatchdogAbortIsTraced) {
  Device dev(test_config());
  LaunchConfig cfg;
  cfg.grid = 4;
  cfg.cta_threads = 64;
  Trace trace;
  const SimOptions sim{.threads = 1,
                       .watchdog_cta_ops = 500,
                       .trace = {.sink = &trace}};
  EXPECT_THROW(launch(
                   dev, cfg, [](Cta& cta) {
                     for (;;) cta.sync();
                   },
                   sim),
               LaunchTimeoutError);

  ASSERT_EQ(trace.launches().size(), 1u);
  const LaunchTrace& lt = trace.launches()[0];
  EXPECT_TRUE(lt.aborted);
  ASSERT_GE(count_kind(lt, TraceEventKind::kWatchdog), 1);
  EXPECT_EQ(count_kind(lt, TraceEventKind::kLaunchAbort), 1);
  EXPECT_EQ(lt.events.back().kind, TraceEventKind::kKernelEnd);
  for (const TraceEvent& ev : lt.events) {
    if (ev.kind == TraceEventKind::kWatchdog) {
      EXPECT_EQ(ev.a, 500u) << "kWatchdog payload a is the budget";
      EXPECT_GE(ev.b, 500u) << "payload b is the ops the CTA had issued";
    }
  }
}

TEST(Trace, EccEventsAreTraced) {
  std::vector<float> src(32, 1.0f);
  const auto read_word = [&](FaultPlan& plan, Trace& trace) {
    Device dev(test_config(1));
    auto buf = dev.alloc_copy<float>(src);
    plan.add_target({FaultSite::kDramRead, buf.addr(0), /*bit=*/1,
                     plan.ecc() ? 1 : 2, /*sticky=*/false});
    dev.set_fault_plan(&plan);
    LaunchConfig cfg;
    cfg.grid = 1;
    cfg.cta_threads = 32;
    launch(
        dev, cfg,
        [&](Cta& cta) {
          Warp w = cta.warp(0);
          AddrLanes addr;
          for (int lane = 0; lane < 32; ++lane) {
            addr[static_cast<std::size_t>(lane)] =
                buf.addr(static_cast<std::size_t>(lane));
          }
          Lanes<float> got{};
          w.ldg(addr, got);
        },
        SimOptions{.threads = 1, .trace = {.sink = &trace}});
  };

  // ECC on, single-bit flip: corrected in flight — injected + masked.
  FaultPlan corrected(/*seed=*/5, /*ecc_enabled=*/true);
  Trace masked_trace;
  read_word(corrected, masked_trace);
  const LaunchTrace& masked = masked_trace.launches()[0];
  EXPECT_FALSE(masked.aborted);
  EXPECT_EQ(count_kind(masked, TraceEventKind::kFaultInjected), 1);
  EXPECT_EQ(count_kind(masked, TraceEventKind::kFaultMasked), 1);
  EXPECT_EQ(count_kind(masked, TraceEventKind::kFaultDetected), 0);

  // ECC off: the upset lands silently — injected only, data corrupted.
  FaultPlan silent(/*seed=*/5, /*ecc_enabled=*/false);
  silent.set_ecc(false);
  Trace silent_trace;
  read_word(silent, silent_trace);
  const LaunchTrace& quiet = silent_trace.launches()[0];
  EXPECT_EQ(count_kind(quiet, TraceEventKind::kFaultInjected), 1);
  EXPECT_EQ(count_kind(quiet, TraceEventKind::kFaultMasked), 0);
}

TEST(Trace, DoubleBitDetectionAbortsAndIsTraced) {
  Device dev(test_config(1));
  std::vector<float> src(32, 1.0f);
  auto buf = dev.alloc_copy<float>(src);
  FaultPlan plan(/*seed=*/5, /*ecc_enabled=*/true);
  plan.add_target({FaultSite::kDramRead, buf.addr(0), /*bit=*/1,
                   /*n_bits=*/2, /*sticky=*/false});
  dev.set_fault_plan(&plan);
  Trace trace;
  LaunchConfig cfg;
  cfg.grid = 1;
  cfg.cta_threads = 32;
  EXPECT_THROW(
      launch(
          dev, cfg,
          [&](Cta& cta) {
            Warp w = cta.warp(0);
            AddrLanes addr;
            for (int lane = 0; lane < 32; ++lane) {
              addr[static_cast<std::size_t>(lane)] =
                  buf.addr(static_cast<std::size_t>(lane));
            }
            Lanes<float> got{};
            w.ldg(addr, got);
          },
          SimOptions{.threads = 1, .trace = {.sink = &trace}}),
      EccError);

  ASSERT_EQ(trace.launches().size(), 1u);
  const LaunchTrace& lt = trace.launches()[0];
  EXPECT_TRUE(lt.aborted);
  EXPECT_EQ(count_kind(lt, TraceEventKind::kFaultDetected), 1);
  EXPECT_EQ(count_kind(lt, TraceEventKind::kLaunchAbort), 1);
}

TEST(Trace, AbftRunsAnnotateTheTrace) {
  Rng rng(13);
  Cvs a = make_cvs(64, 64, 4, 0.5, rng);
  DenseMatrix<half_t> b(64, 64);
  b.fill_random_int(rng);
  Device dev(test_config(8));
  auto da = to_device(dev, a);
  auto db = to_device(dev, b);
  DenseMatrix<half_t> ch(64, 64);
  auto dc = to_device(dev, ch);

  Trace trace;
  kernels::SpmmOptions options;
  options.abft = kernels::AbftOptions{};
  options.sim.threads = 1;
  options.sim.trace.sink = &trace;
  auto run = kernels::spmm(dev, da, db, dc, options);
  EXPECT_TRUE(run.abft.enabled);

  ASSERT_GE(trace.launches().size(), 1u);
  const LaunchTrace& lt = trace.launches()[0];
  // A clean ABFT run records its verify pass (0 corrupted tiles) as a
  // launch-scope annotation pinned to the end of the launch.
  ASSERT_EQ(count_kind(lt, TraceEventKind::kAbftVerify), 1);
  for (const TraceEvent& ev : lt.events) {
    if (ev.kind == TraceEventKind::kAbftVerify) {
      EXPECT_EQ(ev.a, 0u);
      EXPECT_EQ(ev.sm, -1) << "ABFT verify is host-side, not SM-attributed";
      EXPECT_EQ(ev.cycles, lt.duration);
    }
  }
}

TEST(Trace, DeviceDefaultSinkIsInherited) {
  // The same inherit chain as `threads`: a launch with no per-call
  // sink picks up the device-wide TraceOptions.
  Trace trace;
  Device dev(test_config());
  dev.set_sim_options(SimOptions{.threads = 1, .trace = {.sink = &trace}});
  LaunchConfig cfg;
  cfg.grid = 2;
  launch(dev, cfg, [](Cta&) {});
  ASSERT_EQ(trace.launches().size(), 1u);
  EXPECT_EQ(trace.launches()[0].grid, 2);
}

TEST(Trace, ExportersEmitTheDocumentedSchema) {
  Device dev(test_config());
  Trace trace;
  LaunchConfig cfg;
  cfg.grid = 3;
  cfg.cta_threads = 64;
  cfg.profile.name = "trace_schema_kernel";
  launch(dev, cfg, busy_body,
         SimOptions{.threads = 1, .trace = {.sink = &trace}});

  const std::string perfetto = perfetto_json(trace);
  for (const char* needle :
       {"\"traceEvents\":[", "\"process_name\"",
        "\"args\":{\"name\":\"launch 0: trace_schema_kernel\"}",
        "\"args\":{\"name\":\"SM 0\"}", "\"args\":{\"name\":\"launch\"}",
        "\"ph\":\"X\"", "\"ph\":\"B\"", "\"ph\":\"E\"", "\"ph\":\"i\"",
        "\"name\":\"barrier\"", "\"grid\":3"}) {
    EXPECT_NE(perfetto.find(needle), std::string::npos)
        << "perfetto export lacks " << needle;
  }

  const std::string metrics = metrics_json(trace);
  for (const char* needle :
       {"\"schema\": \"vsparse-metrics-v1\"", "\"num_launches\": 1",
        "\"kernel\": \"trace_schema_kernel\"", "\"grid\": 3",
        "\"cta_threads\": 64", "\"aborted\": false", "\"duration_cycles\": ",
        "\"by_kind\": {", "\"cta_begin\": 3", "\"barrier\": 6",
        "\"counters\":", "\"inst_iadd3\": ", "\"ctas_launched\": 3",
        "\"derived\": {", "\"sectors_per_request\": "}) {
    EXPECT_NE(metrics.find(needle), std::string::npos)
        << "metrics export lacks " << needle;
  }
  // Every registry counter has a key in the metrics export.
  for (const CounterDef& def : counter_registry()) {
    EXPECT_NE(metrics.find(std::string("\"") + def.name + "\": "),
              std::string::npos)
        << def.name;
  }
}

TEST(Trace, WriteTraceFilesWritesBothExports) {
  Device dev(test_config());
  Trace trace;
  LaunchConfig cfg;
  cfg.grid = 2;
  launch(dev, cfg, busy_body,
         SimOptions{.threads = 1, .trace = {.sink = &trace}});

  const std::string prefix = ::testing::TempDir() + "vsparse_trace_test";
  ASSERT_TRUE(write_trace_files(trace, prefix));
  for (const char* suffix : {".perfetto.json", ".metrics.json"}) {
    const std::string path = prefix + suffix;
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr) << path;
    std::fseek(f, 0, SEEK_END);
    EXPECT_GT(std::ftell(f), 0) << path << " is empty";
    std::fclose(f);
    std::remove(path.c_str());
  }
}

TEST(Trace, PerSmStatsAreResetEachLaunch) {
  // Regression: per_sm_stats documents "the most recent launch", but
  // the blocks used to carry stale counters from the previous launch
  // for any SM the new launch did not touch.
  Device dev(test_config(4));
  std::vector<KernelStats> per_sm;
  const SimOptions sim{.threads = 1, .per_sm_stats = &per_sm};

  LaunchConfig big;
  big.grid = 8;
  big.cta_threads = 64;
  launch(dev, big, busy_body, sim);
  ASSERT_EQ(per_sm.size(), 4u);
  for (const KernelStats& s : per_sm) EXPECT_GT(s.ctas_launched, 0u);

  LaunchConfig tiny;
  tiny.grid = 1;  // lands on SM 0 only
  tiny.cta_threads = 32;
  launch(dev, tiny, [](Cta&) {}, sim);
  ASSERT_EQ(per_sm.size(), 4u);
  std::uint64_t total_ctas = 0;
  for (const KernelStats& s : per_sm) total_ctas += s.ctas_launched;
  EXPECT_EQ(total_ctas, 1u)
      << "per_sm_stats must describe only the most recent launch";
  for (std::size_t sm = 1; sm < per_sm.size(); ++sm) {
    EXPECT_EQ(per_sm[sm].total_instructions(), 0u)
        << "stale counters on SM " << sm;
  }
}

}  // namespace
}  // namespace vsparse::gpusim

// Correctness + counter tests for the octet-tiling SpMM (the paper's
// §5.3/5.4 contribution).
#include "vsparse/kernels/spmm/spmm_octet.hpp"

#include <gtest/gtest.h>

#include "vsparse/common/rng.hpp"
#include "vsparse/formats/generate.hpp"
#include "vsparse/formats/reference.hpp"

namespace vsparse::kernels {
namespace {

gpusim::DeviceConfig test_config() {
  gpusim::DeviceConfig cfg;
  cfg.dram_capacity = 256 << 20;
  cfg.num_sms = 8;
  return cfg;
}

struct Problem {
  Cvs a;
  DenseMatrix<half_t> b;
};

Problem make_problem(int m, int k, int n, int v, double sparsity,
                     std::uint64_t seed, bool exact_ints = true) {
  Rng rng(seed);
  Problem p{make_cvs(m, k, v, sparsity, rng), DenseMatrix<half_t>(k, n)};
  if (exact_ints) {
    // Integer values make fp32 accumulation order-insensitive, so the
    // kernel must match the reference bit-for-bit.
    for (half_t& h : p.a.values) {
      h = half_t(static_cast<float>(rng.uniform_int(-3, 3)));
    }
    p.b.fill_random_int(rng);
  } else {
    p.b.fill_random(rng);
  }
  return p;
}

void expect_matches_reference(const Cvs& a, const DenseMatrix<half_t>& b,
                              const SpmmOctetParams& params = {}) {
  gpusim::Device dev(test_config());
  auto da = to_device(dev, a);
  auto db = to_device(dev, b);
  DenseMatrix<half_t> ch(a.rows, b.cols());
  auto dc = to_device(dev, ch);
  spmm_octet(dev, da, db, dc, params);
  DenseMatrix<half_t> c = from_device(dc);
  DenseMatrix<half_t> ref = spmm_reference(a, b);
  for (int r = 0; r < a.rows; ++r) {
    for (int j = 0; j < b.cols(); ++j) {
      ASSERT_EQ(c.at(r, j).bits(), ref.at(r, j).bits())
          << "(" << r << "," << j << ") got "
          << static_cast<float>(c.at(r, j)) << " want "
          << static_cast<float>(ref.at(r, j));
    }
  }
}

class SpmmOctetSweep
    : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(SpmmOctetSweep, MatchesReference) {
  const auto [v, sparsity, n] = GetParam();
  Problem p = make_problem(64, 96, n, v, sparsity, 1234 + v);
  expect_matches_reference(p.a, p.b);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SpmmOctetSweep,
    ::testing::Combine(::testing::Values(2, 4, 8),
                       ::testing::Values(0.0, 0.5, 0.9, 0.98),
                       ::testing::Values(64, 128)));

TEST(SpmmOctet, EmptyRowsProduceZeros) {
  Cvs a;
  a.rows = 8;
  a.cols = 32;
  a.v = 4;
  a.row_ptr = {0, 0, 0};  // two empty vector rows
  DenseMatrix<half_t> b(32, 64);
  Rng rng(5);
  b.fill_random(rng);
  gpusim::Device dev(test_config());
  auto da = to_device(dev, a);
  auto db = to_device(dev, b);
  DenseMatrix<half_t> ch(8, 64);
  auto dc = to_device(dev, ch);
  spmm_octet(dev, da, db, dc);
  DenseMatrix<half_t> c = from_device(dc);
  for (half_t h : c.data()) {
    EXPECT_EQ(static_cast<float>(h), 0.0f);
  }
}

TEST(SpmmOctet, ResidueHandling) {
  // Row nonzero counts that are not multiples of TileK or 4 exercise
  // the interleaved residue path.
  for (int nnz_target : {1, 3, 5, 31, 33, 37}) {
    Rng rng(100 + nnz_target);
    DenseMatrix<half_t> dense(8, 64);
    // Exactly nnz_target nonzero vectors in each of the 2 vector-rows.
    for (int vr = 0; vr < 2; ++vr) {
      for (int i = 0; i < nnz_target; ++i) {
        const int col = (i * 7 + vr) % 64;
        for (int t = 0; t < 4; ++t) {
          dense.at(vr * 4 + t, col) =
              half_t(static_cast<float>(rng.uniform_int(1, 3)));
        }
      }
    }
    Cvs a = Cvs::from_dense(dense, 4);
    DenseMatrix<half_t> b(64, 64);
    b.fill_random_int(rng);
    expect_matches_reference(a, b);
  }
}

TEST(SpmmOctet, BatchingOffStillCorrect) {
  Problem p = make_problem(32, 128, 64, 4, 0.6, 77);
  expect_matches_reference(p.a, p.b,
                           SpmmOctetParams{.batch_loads = false});
}

TEST(SpmmOctet, StepSkipAblationStillCorrect) {
  Problem p = make_problem(32, 128, 64, 4, 0.6, 78);
  expect_matches_reference(
      p.a, p.b, SpmmOctetParams{.skip_steps_for_small_v = true});
}

TEST(SpmmOctet, RejectsBadArguments) {
  gpusim::Device dev(test_config());
  Rng rng(9);
  Cvs a = make_cvs(16, 32, 1, 0.5, rng);  // V=1 unsupported here
  DenseMatrix<half_t> b(32, 64);
  auto da = to_device(dev, a);
  auto db = to_device(dev, b);
  DenseMatrix<half_t> ch(16, 64);
  auto dc = to_device(dev, ch);
  EXPECT_THROW(spmm_octet(dev, da, db, dc), CheckError);

  Cvs a2 = make_cvs(16, 32, 4, 0.5, rng);
  DenseMatrix<half_t> b2(32, 48);  // N % 64 != 0
  auto da2 = to_device(dev, a2);
  auto db2 = to_device(dev, b2);
  DenseMatrix<half_t> ch2(16, 48);
  auto dc2 = to_device(dev, ch2);
  EXPECT_THROW(spmm_octet(dev, da2, db2, dc2), CheckError);
}

TEST(SpmmOctet, GuidelineCounters) {
  // The §7.2.2 signature of the octet kernel: LDG.128-dominated B
  // traffic (sectors/req well above the FPU baseline's ~4), HMMA math,
  // tiny integer-op share, one CTA per VxTileN tile.
  Problem p = make_problem(256, 256, 128, 4, 0.9, 42, /*exact_ints=*/false);
  gpusim::Device dev(test_config());
  auto da = to_device(dev, p.a);
  auto db = to_device(dev, p.b);
  DenseMatrix<half_t> ch(256, 128);
  auto dc = to_device(dev, ch);
  KernelRun run = spmm_octet(dev, da, db, dc);

  EXPECT_EQ(run.config.grid, (256 / 4) * (128 / 64));
  EXPECT_EQ(run.stats.op(gpusim::Op::kHfma), 0u);  // all math on the TCU
  EXPECT_GT(run.stats.op(gpusim::Op::kHmma), 0u);
  const double int_share =
      static_cast<double>(run.stats.op(gpusim::Op::kImad) +
                          run.stats.op(gpusim::Op::kIadd3)) /
      static_cast<double>(run.stats.total_instructions());
  EXPECT_LT(int_share, 0.15);
  EXPECT_GT(run.stats.sectors_per_request(), 6.0);
  // HMMA count: 8 per 4-vector step regardless of V (no SASS editing).
  std::uint64_t expected_hmma = 0;
  for (int vr = 0; vr < p.a.vec_rows(); ++vr) {
    const int nnz = p.a.row_ptr[static_cast<std::size_t>(vr) + 1] -
                    p.a.row_ptr[static_cast<std::size_t>(vr)];
    expected_hmma += static_cast<std::uint64_t>((nnz + 3) / 4) * 8;
  }
  expected_hmma *= 128 / 64;  // two N tiles
  EXPECT_EQ(run.stats.op(gpusim::Op::kHmma), expected_hmma);
}

TEST(SpmmOctet, StepSkipHalvesHmmaForSmallV) {
  Problem p = make_problem(64, 128, 64, 4, 0.8, 43);
  gpusim::Device dev(test_config());
  auto da = to_device(dev, p.a);
  auto db = to_device(dev, p.b);
  DenseMatrix<half_t> ch(64, 64);
  auto dc = to_device(dev, ch);
  KernelRun base = spmm_octet(dev, da, db, dc);
  KernelRun skip = spmm_octet(dev, da, db, dc,
                              SpmmOctetParams{.skip_steps_for_small_v = true});
  EXPECT_EQ(skip.stats.op(gpusim::Op::kHmma) * 2,
            base.stats.op(gpusim::Op::kHmma));
}

}  // namespace
}  // namespace vsparse::kernels

// The kernel circuit breaker's state machine: sliding-window trip
// thresholds (with the min-attempts cold-start guard and eviction of
// aged-out outcomes), the Open -> Half-Open cooldown driven by the
// simulated clock, probe-success restoration that clears the window,
// reopen-with-escalated-cooldown on probe failure (saturating at the
// doubling cap), the ServePolicy::kernel_gate adapter, the
// health_key rung mapping, and byte-identical events_json() across
// repeated identical sequences.
#include <gtest/gtest.h>

#include <string>

#include "vsparse/serve/health.hpp"

namespace vsparse {
namespace {

using serve::BreakerState;
using serve::HealthConfig;
using serve::HealthEvent;
using serve::HealthTracker;
using serve::ServeRung;

// Small, fast-tripping config: window 8, trip at >= 50% of >= 4
// attempts, 1000-tick cooldown, 2 probe successes, 3 doublings max.
HealthConfig test_config() {
  HealthConfig cfg;
  cfg.window = 8;
  cfg.min_attempts = 4;
  cfg.failure_percent = 50;
  cfg.cooldown_ticks = 1000;
  cfg.probe_successes = 2;
  cfg.max_cooldown_doublings = 3;
  return cfg;
}

TEST(ServeHealth, TripsAtThresholdNotBefore) {
  HealthTracker health(test_config());
  const std::string k = "spmm_octet";

  // Three straight failures: below min_attempts, still Closed.
  health.record(k, false, 10);
  health.record(k, false, 20);
  health.record(k, false, 30);
  EXPECT_EQ(health.state(k), BreakerState::kClosed);
  EXPECT_TRUE(health.allowed(k));
  EXPECT_EQ(health.totals().quarantines, 0u);

  // Fourth attempt reaches min_attempts with 4/4 failures: quarantine.
  health.record(k, false, 40);
  EXPECT_EQ(health.state(k), BreakerState::kOpen);
  EXPECT_FALSE(health.allowed(k));
  EXPECT_EQ(health.totals().quarantines, 1u);
  ASSERT_EQ(health.events().size(), 1u);
  EXPECT_EQ(health.events()[0].kind, HealthEvent::Kind::kQuarantine);
  EXPECT_EQ(health.events()[0].tick, 40u);
  EXPECT_EQ(health.events()[0].failures, 4);
  EXPECT_EQ(health.events()[0].attempts, 4);
}

TEST(ServeHealth, HealthyTrafficNeverTrips) {
  HealthTracker health(test_config());
  for (int i = 0; i < 100; ++i) {
    // 25% failure rate, below the 50% threshold at every prefix that
    // clears min_attempts (pattern: ok ok ok FAIL).
    health.record("sddmm_octet", i % 4 != 3, static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(health.state("sddmm_octet"), BreakerState::kClosed);
  EXPECT_EQ(health.totals().quarantines, 0u);
  EXPECT_TRUE(health.events().empty());
}

TEST(ServeHealth, WindowEvictsAgedOutOutcomes) {
  // 100% threshold over a 4-deep window: trips only when the last four
  // attempts ALL failed.  A lone success keeps blocking the trip —
  // until it ages out of the window.
  HealthConfig cfg = test_config();
  cfg.window = 4;
  cfg.min_attempts = 4;
  cfg.failure_percent = 100;
  HealthTracker health(cfg);
  const std::string k = "spmm_octet";
  health.record(k, false, 1);
  health.record(k, false, 2);
  health.record(k, false, 3);
  health.record(k, true, 4);
  health.record(k, false, 5);
  health.record(k, false, 6);
  health.record(k, false, 7);
  // Window is {ok, fail, fail, fail}: the tick-4 success still counts.
  EXPECT_EQ(health.state(k), BreakerState::kClosed);
  EXPECT_EQ(health.totals().quarantines, 0u);
  // One more failure evicts the success: {fail x4} trips.
  health.record(k, false, 8);
  EXPECT_EQ(health.state(k), BreakerState::kOpen);
  EXPECT_EQ(health.totals().quarantines, 1u);
}

TEST(ServeHealth, CooldownHalfOpenProbeRestore) {
  HealthTracker health(test_config());
  const std::string k = "spmm_octet";
  for (int i = 0; i < 4; ++i) {
    health.record(k, false, static_cast<std::uint64_t>(10 * (i + 1)));
  }
  ASSERT_EQ(health.state(k), BreakerState::kOpen);

  // Cooldown is 1000 ticks from the trip at tick 40.
  health.advance(1039);
  EXPECT_EQ(health.state(k), BreakerState::kOpen);
  health.advance(1040);
  EXPECT_EQ(health.state(k), BreakerState::kHalfOpen);
  EXPECT_TRUE(health.allowed(k));  // probes admitted
  EXPECT_EQ(health.totals().half_opens, 1u);

  // Two consecutive clean probes restore the breaker and clear the
  // window: the next failure is 1/1, not 5/8.
  health.record(k, true, 1100);
  EXPECT_EQ(health.state(k), BreakerState::kHalfOpen);
  health.record(k, true, 1200);
  EXPECT_EQ(health.state(k), BreakerState::kClosed);
  EXPECT_EQ(health.totals().restores, 1u);
  health.record(k, false, 1300);
  EXPECT_EQ(health.state(k), BreakerState::kClosed);
}

TEST(ServeHealth, ReopenEscalatesCooldownAndSaturates) {
  HealthTracker health(test_config());
  const std::string k = "spmm_octet";
  for (int i = 0; i < 4; ++i) {
    health.record(k, false, 0);
  }
  ASSERT_EQ(health.state(k), BreakerState::kOpen);

  // Each probe failure reopens with cooldown_ticks << min(n, 3):
  // 2000, 4000, 8000, then saturated at 8000.
  const std::uint64_t expected_cooldowns[] = {2000, 4000, 8000, 8000, 8000};
  std::uint64_t now = 1000;
  for (std::uint64_t cooldown : expected_cooldowns) {
    health.advance(now);
    ASSERT_EQ(health.state(k), BreakerState::kHalfOpen) << "at tick " << now;
    health.record(k, false, now);
    ASSERT_EQ(health.state(k), BreakerState::kOpen);
    // One tick early: still Open; at the boundary: Half-Open.
    health.advance(now + cooldown - 1);
    EXPECT_EQ(health.state(k), BreakerState::kOpen)
        << "cooldown " << cooldown << " ended early";
    now += cooldown;
  }
  EXPECT_EQ(health.totals().reopens, 5u);

  // A restore resets the escalation: the next trip cools down at the
  // base 1000 ticks again.
  health.advance(now);
  health.record(k, true, now);
  health.record(k, true, now + 1);
  ASSERT_EQ(health.state(k), BreakerState::kClosed);
  for (int i = 0; i < 4; ++i) {
    health.record(k, false, now + 10);
  }
  ASSERT_EQ(health.state(k), BreakerState::kOpen);
  health.advance(now + 10 + 999);
  EXPECT_EQ(health.state(k), BreakerState::kOpen);
  health.advance(now + 10 + 1000);
  EXPECT_EQ(health.state(k), BreakerState::kHalfOpen);
}

TEST(ServeHealth, GateAdapterComposesAbftSuffix) {
  HealthTracker health(test_config());
  for (int i = 0; i < 4; ++i) {
    health.record("spmm_octet+abft", false, 0);
  }
  ASSERT_EQ(health.state("spmm_octet+abft"), BreakerState::kOpen);

  // Only the ABFT variant is quarantined; the plain kernel and every
  // unknown kernel stay admitted.
  EXPECT_FALSE(HealthTracker::gate(&health, "spmm_octet", /*abft=*/true));
  EXPECT_TRUE(HealthTracker::gate(&health, "spmm_octet", /*abft=*/false));
  EXPECT_TRUE(HealthTracker::gate(&health, "spmm_blocked_ell", false));
}

TEST(ServeHealth, HealthKeyMapsRungsToRegistryNames) {
  EXPECT_EQ(serve::health_key("spmm", ServeRung::kOctet), "spmm_octet");
  EXPECT_EQ(serve::health_key("spmm", ServeRung::kOctetAbft),
            "spmm_octet+abft");
  EXPECT_EQ(serve::health_key("spmm", ServeRung::kBlockedEll),
            "spmm_blocked_ell");
  EXPECT_EQ(serve::health_key("spmm", ServeRung::kDenseGemm),
            "spmm_dense_gemm");
  EXPECT_EQ(serve::health_key("spmm", ServeRung::kFpuSubwarp),
            "spmm_fpu_subwarp");
  EXPECT_EQ(serve::health_key("sddmm", ServeRung::kOctet), "sddmm_octet");
  EXPECT_EQ(serve::health_key("sddmm", ServeRung::kWmmaWarp),
            "sddmm_wmma_warp");
  EXPECT_EQ(serve::health_key("sddmm", ServeRung::kFpuSubwarp),
            "sddmm_fpu_subwarp");
}

TEST(ServeHealth, IdenticalSequencesYieldIdenticalEventJson) {
  auto run_once = [] {
    HealthTracker health(test_config());
    // A deterministic mixed script over two kernels: trip both, probe
    // one back to Closed, reopen the other.
    for (int i = 0; i < 4; ++i) {
      health.record("spmm_octet", false, static_cast<std::uint64_t>(i));
      health.record("sddmm_octet", false, static_cast<std::uint64_t>(i));
    }
    health.advance(2000);
    health.record("spmm_octet", true, 2001);
    health.record("spmm_octet", true, 2002);
    health.record("sddmm_octet", false, 2003);
    return health.events_json();
  };
  const std::string first = run_once();
  EXPECT_EQ(first, run_once());
  // Sanity on the serialized shape (tick order, all four kinds).
  EXPECT_NE(first.find("\"kind\":\"quarantine\""), std::string::npos);
  EXPECT_NE(first.find("\"kind\":\"half_open\""), std::string::npos);
  EXPECT_NE(first.find("\"kind\":\"restore\""), std::string::npos);
  EXPECT_NE(first.find("\"kind\":\"reopen\""), std::string::npos);
}

}  // namespace
}  // namespace vsparse

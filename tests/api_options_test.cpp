// Options-struct dispatch API: the descriptor entry points produce the
// same results and counters as calling the concrete kernels directly
// (dispatch through the registry adds nothing), the host round trips
// return the KernelRun alongside the result, and the reserved
// SddmmOptions::abft field is rejected loudly.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "vsparse/common/macros.hpp"
#include "vsparse/common/rng.hpp"
#include "vsparse/formats/generate.hpp"
#include "vsparse/formats/reference.hpp"
#include "vsparse/gpusim/trace/counters.hpp"
#include "vsparse/kernels/dispatch.hpp"
#include "vsparse/kernels/sddmm/sddmm_octet.hpp"
#include "vsparse/kernels/sddmm/sddmm_fpu.hpp"
#include "vsparse/kernels/spmm/spmm_octet.hpp"
#include "vsparse/kernels/spmm/spmm_octet_abft.hpp"
#include "vsparse/kernels/spmm/spmm_wmma.hpp"

namespace vsparse::kernels {
namespace {

gpusim::DeviceConfig test_config() {
  gpusim::DeviceConfig cfg;
  cfg.dram_capacity = 128 << 20;
  cfg.num_sms = 4;
  return cfg;
}

template <class Range>
std::vector<std::uint16_t> bits_of(const Range& v) {
  std::vector<std::uint16_t> out;
  for (half_t h : v) out.push_back(h.bits());
  return out;
}

struct SpmmFixture {
  Cvs a;
  DenseMatrix<half_t> b{96, 64};

  explicit SpmmFixture(int v = 4) {
    Rng rng(21);
    a = make_cvs(64, 96, v, 0.5, rng);
    b.fill_random_int(rng);
  }
};

struct SpmmDeviceRun {
  gpusim::Device dev{test_config()};
  CvsDevice da;
  DenseDevice<half_t> db;
  DenseDevice<half_t> dc;

  explicit SpmmDeviceRun(const SpmmFixture& f)
      : da(to_device(dev, f.a)), db(to_device(dev, f.b)) {
    DenseMatrix<half_t> ch(f.a.rows, f.b.cols());
    dc = to_device(dev, ch);
  }
};

TEST(ApiOptions, SpmmDispatchMatchesDirectKernelCall) {
  const SpmmFixture f;
  SpmmDeviceRun via_options(f);
  const auto new_run =
      spmm(via_options.dev, via_options.da, via_options.db, via_options.dc,
           {.algorithm = SpmmAlgorithm::kWmmaWarp});

  SpmmDeviceRun direct(f);
  const auto direct_run =
      spmm_wmma_warp(direct.dev, direct.da, direct.db, direct.dc);

  EXPECT_EQ(new_run.config.profile.name, direct_run.config.profile.name);
  EXPECT_TRUE(gpusim::counters_equal(new_run.stats, direct_run.stats));
  EXPECT_EQ(bits_of(via_options.dc.buf.host()),
            bits_of(direct.dc.buf.host()));
}

TEST(ApiOptions, SpmmAbftDispatchMatchesDirectKernelCall) {
  const SpmmFixture f;
  SpmmDeviceRun via_options(f);
  const auto new_run =
      spmm(via_options.dev, via_options.da, via_options.db, via_options.dc,
           {.abft = AbftOptions{}});
  EXPECT_TRUE(new_run.abft.enabled);
  EXPECT_TRUE(new_run.abft.clean);

  SpmmDeviceRun direct(f);
  const auto direct_run = spmm_octet_abft(direct.dev, direct.da, direct.db,
                                          direct.dc, {}, AbftOptions{});
  EXPECT_TRUE(direct_run.abft.enabled);
  EXPECT_TRUE(gpusim::counters_equal(new_run.stats, direct_run.stats));
  EXPECT_EQ(bits_of(via_options.dc.buf.host()),
            bits_of(direct.dc.buf.host()));
}

TEST(ApiOptions, SddmmDispatchMatchesDirectKernelCall) {
  Rng rng(22);
  DenseMatrix<half_t> a(32, 64);
  a.fill_random_int(rng);
  DenseMatrix<half_t> b(64, 64, Layout::kColMajor);
  b.fill_random_int(rng);
  Cvs mask = make_cvs_mask(32, 64, 4, 0.6, rng);

  const auto run_both = [&](bool use_direct) {
    gpusim::Device dev(test_config());
    auto da = to_device(dev, a);
    auto db = to_device(dev, b);
    auto dmask = to_device(dev, mask);
    auto out = dev.alloc<half_t>(mask.col_idx.size() *
                                 static_cast<std::size_t>(mask.v));
    const KernelRun run =
        use_direct
            ? sddmm_octet(dev, da, db, dmask, out)
            : sddmm(dev, da, db, dmask, out,
                    {.algorithm = SddmmAlgorithm::kOctet});
    return std::make_pair(run.stats, bits_of(out.host()));
  };

  const auto dispatched = run_both(false);
  const auto direct = run_both(true);
  EXPECT_TRUE(gpusim::counters_equal(dispatched.first, direct.first));
  EXPECT_EQ(dispatched.second, direct.second);
}

TEST(ApiOptions, SpmmHostRoundTripMatchesDeviceRun) {
  const SpmmFixture f;
  const HostRun<DenseMatrix<half_t>> host =
      spmm_host(f.a, f.b, {.algorithm = SpmmAlgorithm::kOctet});

  SpmmDeviceRun direct(f);
  spmm_octet(direct.dev, direct.da, direct.db, direct.dc);
  const auto direct_bits = bits_of(direct.dc.buf.host());

  ASSERT_EQ(host.result.rows(), f.a.rows);
  ASSERT_EQ(host.result.cols(), f.b.cols());
  std::size_t i = 0;
  for (int r = 0; r < host.result.rows(); ++r) {
    for (int c = 0; c < host.result.cols(); ++c) {
      ASSERT_EQ(host.result.at(r, c).bits(), direct_bits[i++]) << r << "," << c;
    }
  }
  // The point of HostRun: the KernelRun rides along.
  EXPECT_EQ(host.run.config.profile.name, "spmm_octet_v4");
  EXPECT_GT(host.run.stats.total_instructions(), 0u);
  EXPECT_GT(host.run.stats.ctas_launched, 0u);
}

TEST(ApiOptions, SddmmHostRoundTripMatchesDeviceRun) {
  Rng rng(23);
  DenseMatrix<half_t> a(16, 32);
  a.fill_random_int(rng);
  DenseMatrix<half_t> b(32, 64, Layout::kColMajor);
  b.fill_random_int(rng);
  Cvs mask = make_cvs_mask(16, 64, 4, 0.7, rng);

  const HostRun<Cvs> host =
      sddmm_host(a, b, mask, {.algorithm = SddmmAlgorithm::kFpuSubwarp});

  gpusim::Device dev;
  auto da = to_device(dev, a);
  auto db = to_device(dev, b);
  auto dmask = to_device(dev, mask);
  auto out = dev.alloc<half_t>(mask.values.size());
  sddmm_fpu_subwarp(dev, da, db, dmask, out);
  const auto direct_bits = bits_of(out.host());

  ASSERT_EQ(host.result.values.size(), direct_bits.size());
  for (std::size_t i = 0; i < direct_bits.size(); ++i) {
    ASSERT_EQ(host.result.values[i].bits(), direct_bits[i]) << i;
  }
  EXPECT_GT(host.run.stats.total_instructions(), 0u);
}

TEST(ApiOptions, DefaultOptionsAutoSelect) {
  const SpmmFixture octets(4);
  SpmmDeviceRun r4(octets);
  const auto run4 = spmm(r4.dev, r4.da, r4.db, r4.dc);  // no options at all
  EXPECT_EQ(run4.config.profile.name, "spmm_octet_v4");

  const SpmmFixture scalars(1);
  SpmmDeviceRun r1(scalars);
  const auto run1 = spmm(r1.dev, r1.da, r1.db, r1.dc);
  EXPECT_NE(run1.config.profile.name.find("fpu"), std::string::npos);
}

TEST(ApiOptions, HostResultMatchesReference) {
  const SpmmFixture f;
  for (half_t& h : const_cast<Cvs&>(f.a).values) {
    h = half_t(static_cast<float>(h) > 0 ? 1.0f : -1.0f);
  }
  const auto host = spmm_host(f.a, f.b);
  const DenseMatrix<half_t> ref = spmm_reference(f.a, f.b);
  for (int r = 0; r < ref.rows(); ++r) {
    for (int c = 0; c < ref.cols(); ++c) {
      ASSERT_EQ(host.result.at(r, c).bits(), ref.at(r, c).bits())
          << r << "," << c;
    }
  }
}

TEST(ApiOptions, SimOptionsThreadThroughTheDescriptor) {
  const SpmmFixture f;
  std::vector<gpusim::KernelStats> per_sm;
  SpmmDeviceRun r(f);
  SpmmOptions options;
  options.sim.threads = 2;
  options.sim.per_sm_stats = &per_sm;
  const auto run = spmm(r.dev, r.da, r.db, r.dc, options);
  ASSERT_EQ(per_sm.size(), 4u);  // one block per SM of the test device
  gpusim::KernelStats merged{};
  for (const auto& s : per_sm) merged += s;
  EXPECT_TRUE(merged.sm_local_equal(run.stats));
}

TEST(ApiOptions, SddmmAbftIsReservedAndRejected) {
  Rng rng(24);
  DenseMatrix<half_t> a(16, 32);
  a.fill_random_int(rng);
  DenseMatrix<half_t> b(32, 64, Layout::kColMajor);
  b.fill_random_int(rng);
  Cvs mask = make_cvs_mask(16, 64, 4, 0.7, rng);
  gpusim::Device dev(test_config());
  auto da = to_device(dev, a);
  auto db = to_device(dev, b);
  auto dmask = to_device(dev, mask);
  auto out =
      dev.alloc<half_t>(mask.col_idx.size() * static_cast<std::size_t>(mask.v));
  EXPECT_THROW(
      sddmm(dev, da, db, dmask, out, {.abft = AbftOptions{}}),
      vsparse::Error);  // kBadDispatch
}

}  // namespace
}  // namespace vsparse::kernels

// Tests for the .smtx reader/writer (DLMC's on-disk format) and the
// tiling autotuner.
#include <gtest/gtest.h>

#include <sstream>

#include "vsparse/formats/generate.hpp"
#include "vsparse/serve/error.hpp"
#include "vsparse/formats/smtx_io.hpp"
#include "vsparse/kernels/autotune.hpp"

namespace vsparse {
namespace {

TEST(Smtx, ParsesCanonicalFile) {
  // The Fig. 8 example matrix as an smtx pattern.
  std::istringstream is(
      "3, 8, 6\n"
      "0 3 4 6\n"
      "0 2 6 3 1 6\n");
  SmtxPattern p = read_smtx(is);
  EXPECT_EQ(p.rows, 3);
  EXPECT_EQ(p.cols, 8);
  const std::vector<std::int32_t> rp = {0, 3, 4, 6};
  const std::vector<std::int32_t> ci = {0, 2, 6, 3, 1, 6};
  EXPECT_EQ(p.row_ptr, rp);
  EXPECT_EQ(p.col_idx, ci);
}

TEST(Smtx, AcceptsCommaSeparators) {
  std::istringstream is(
      "2, 4, 2\n"
      "0, 1, 2\n"
      "3, 0\n");
  SmtxPattern p = read_smtx(is);
  EXPECT_EQ(p.col_idx[0], 3);
}

TEST(Smtx, RejectsMalformedInput) {
  {
    std::istringstream is("3, 8\n");  // short header
    EXPECT_THROW(read_smtx(is), Error);  // kMalformedFormat
  }
  {
    std::istringstream is(
        "2, 4, 2\n"
        "0 1 2\n"
        "5 0\n");  // column 5 out of range
    EXPECT_THROW(read_smtx(is), Error);  // kMalformedFormat
  }
  {
    std::istringstream is(
        "2, 4, 2\n"
        "0 2 1\n"  // non-monotone row_ptr (and back != nnz)
        "1 0\n");
    EXPECT_THROW(read_smtx(is), Error);  // kMalformedFormat
  }
  {
    std::istringstream is(
        "2, 4, 3\n"
        "0 1 3\n"
        "1 0\n");  // col_idx shorter than nnz
    EXPECT_THROW(read_smtx(is), Error);  // kMalformedFormat
  }
}

TEST(Smtx, RoundTripThroughCvs) {
  Rng rng(1);
  Cvs original = make_cvs(64, 96, 4, 0.8, rng);
  SmtxPattern p = cvs_to_smtx(original);
  std::ostringstream os;
  write_smtx(os, p);
  std::istringstream is(os.str());
  SmtxPattern back = read_smtx(is);
  EXPECT_EQ(back.row_ptr, original.row_ptr);
  EXPECT_EQ(back.col_idx, original.col_idx);

  Rng rng2(2);
  Cvs rebuilt = smtx_to_cvs(back, 4, rng2);
  rebuilt.validate();
  EXPECT_EQ(rebuilt.rows, original.rows);
  EXPECT_EQ(rebuilt.cols, original.cols);
  EXPECT_EQ(rebuilt.nnz_vectors(), original.nnz_vectors());
}

TEST(Smtx, FileRoundTrip) {
  Rng rng(3);
  Cvs m = make_cvs(32, 64, 2, 0.7, rng);
  const std::string path = "/tmp/vsparse_test.smtx";
  write_smtx_file(path, cvs_to_smtx(m));
  SmtxPattern p = read_smtx_file(path);
  EXPECT_EQ(p.rows, m.vec_rows());
  EXPECT_EQ(p.col_idx, m.col_idx);
  EXPECT_THROW(read_smtx_file("/nonexistent/x.smtx"), Error);
}

TEST(Autotune, OctetPrefersBatchingAndRanksAllCandidates) {
  Rng rng(4);
  std::vector<kernels::TuneProblem> problems;
  problems.push_back({make_cvs(256, 256, 4, 0.9, rng), 128});
  problems.push_back({make_cvs(256, 256, 4, 0.7, rng), 128});
  auto result = kernels::autotune_spmm_octet(problems);
  EXPECT_EQ(result.ranking.size(), 6u);  // 3 TileK x 2 batching
  EXPECT_TRUE(result.best.batch_loads);  // the §5.4 trick should win
  EXPECT_GT(result.best_geomean_cycles, 0);
  // Ranking is sorted best-first.
  for (std::size_t i = 1; i < result.ranking.size(); ++i) {
    EXPECT_LE(result.ranking[i - 1].second, result.ranking[i].second);
  }
}

TEST(Autotune, FpuReproducesThePapersNarrowTileChoice) {
  Rng rng(5);
  std::vector<kernels::TuneProblem> problems;
  problems.push_back({make_cvs(512, 256, 4, 0.9, rng), 256});
  auto result = kernels::autotune_spmm_fpu(problems);
  EXPECT_EQ(result.ranking.size(), 6u);
  // §5.1/§7.2.2: the tuned configuration gives up wide loads for grid
  // size — TileN=16 must win.
  EXPECT_EQ(result.best.tile_n, 16);
}

}  // namespace
}  // namespace vsparse

// Tests for the sparse formats: CSR, column-vector sparse encoding,
// Blocked-ELL, and the §7.1.1 benchmark generators.
#include <gtest/gtest.h>

#include <set>

#include "vsparse/common/rng.hpp"
#include "vsparse/formats/blocked_ell.hpp"
#include "vsparse/formats/csr.hpp"
#include "vsparse/formats/cvs.hpp"
#include "vsparse/formats/generate.hpp"
#include "vsparse/formats/reference.hpp"

namespace vsparse {
namespace {

TEST(Dense, LayoutConversion) {
  DenseMatrix<float> m(3, 4);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 4; ++c) m.at(r, c) = static_cast<float>(10 * r + c);
  }
  DenseMatrix<float> t = m.with_layout(Layout::kColMajor);
  EXPECT_EQ(t.at(2, 3), 23.0f);
  EXPECT_EQ(t.data()[0], 0.0f);
  EXPECT_EQ(t.data()[1], 10.0f);  // col-major: (1,0) second
  EXPECT_EQ(t.ld(), 3);
  EXPECT_EQ(m.ld(), 4);
}

TEST(Csr, DenseRoundTrip) {
  Rng rng(1);
  DenseMatrix<half_t> m(16, 24);
  for (int r = 0; r < 16; ++r) {
    for (int c = 0; c < 24; ++c) {
      m.at(r, c) = rng.bernoulli(0.3f)
                       ? half_t(rng.uniform_float(0.5f, 1.5f))
                       : half_t(0.0f);
    }
  }
  Csr<half_t> csr = Csr<half_t>::from_dense(m);
  csr.validate();
  DenseMatrix<half_t> back = csr.to_dense();
  for (int r = 0; r < 16; ++r) {
    for (int c = 0; c < 24; ++c) {
      EXPECT_EQ(back.at(r, c).bits(), m.at(r, c).bits());
    }
  }
}

TEST(Cvs, FigureEightExample) {
  // Reproduces Fig. 8: a 6x8 matrix (V=2 -> 3 vector rows) with
  // nonzero vectors at (vr0: cols 0,2,6), (vr1: col 3), (vr2: cols 1,6).
  DenseMatrix<half_t> m(6, 8);
  auto put = [&](int vr, int c, float base) {
    m.at(vr * 2, c) = half_t(base);
    m.at(vr * 2 + 1, c) = half_t(base + 1);
  };
  put(0, 0, 0.0f);  // values {0,1} — but 0 would vanish; use nonzero
  m.at(0, 0) = half_t(12.0f);
  m.at(1, 0) = half_t(1.0f);
  put(0, 2, 2.0f);
  put(0, 6, 4.0f);
  put(1, 3, 6.0f);
  put(2, 1, 8.0f);
  put(2, 6, 10.0f);

  Cvs cvs = Cvs::from_dense(m, 2);
  cvs.validate();
  EXPECT_EQ(cvs.vec_rows(), 3);
  EXPECT_EQ(cvs.nnz_vectors(), 6);
  const std::vector<std::int32_t> expected_row_ptr = {0, 3, 4, 6};
  const std::vector<std::int32_t> expected_col_idx = {0, 2, 6, 3, 1, 6};
  EXPECT_EQ(cvs.row_ptr, expected_row_ptr);
  EXPECT_EQ(cvs.col_idx, expected_col_idx);
  // Vector elements are contiguous.
  EXPECT_EQ(static_cast<float>(cvs.values[0]), 12.0f);
  EXPECT_EQ(static_cast<float>(cvs.values[1]), 1.0f);
  EXPECT_EQ(static_cast<float>(cvs.values[2]), 2.0f);
}

TEST(Cvs, RoundTripAllV) {
  Rng rng(2);
  for (int v : {1, 2, 4, 8}) {
    DenseMatrix<half_t> m(32, 20);
    for (int r = 0; r < 32; ++r) {
      for (int c = 0; c < 20; ++c) {
        if (rng.bernoulli(0.2f)) m.at(r, c) = half_t(rng.uniform_float(1, 2));
      }
    }
    Cvs cvs = Cvs::from_dense(m, v);
    cvs.validate();
    DenseMatrix<half_t> back = cvs.to_dense();
    // Round trip preserves every nonzero; vector granularity may add
    // explicit zeros within stored vectors, which to_dense writes back
    // as 0 — so dense representations must match exactly.
    for (int r = 0; r < 32; ++r) {
      for (int c = 0; c < 20; ++c) {
        EXPECT_EQ(back.at(r, c).bits(), m.at(r, c).bits())
            << "v=" << v << " r=" << r << " c=" << c;
      }
    }
  }
}

TEST(Cvs, V1MatchesCsrStructure) {
  Rng rng(3);
  DenseMatrix<half_t> m(8, 16);
  for (int r = 0; r < 8; ++r) {
    for (int c = 0; c < 16; ++c) {
      if (rng.bernoulli(0.25f)) m.at(r, c) = half_t(1.0f);
    }
  }
  Cvs cvs = Cvs::from_dense(m, 1);
  Csr<half_t> csr = Csr<half_t>::from_dense(m);
  EXPECT_EQ(cvs.row_ptr, csr.row_ptr);
  EXPECT_EQ(cvs.col_idx, csr.col_idx);
}

TEST(Cvs, RejectsBadShapes) {
  DenseMatrix<half_t> m(10, 4);
  EXPECT_THROW(Cvs::from_dense(m, 4), CheckError);  // 10 % 4 != 0
  EXPECT_THROW(Cvs::from_dense(m, 3), CheckError);  // V must be 1/2/4/8
}

TEST(BlockedEll, RoundTripAndSparsity) {
  Rng rng(4);
  BlockedEll ell = make_blocked_ell(64, 64, 8, 0.75, rng);
  ell.validate();
  EXPECT_EQ(ell.blocks_per_row, 2);  // ceil(8 * 0.25)
  EXPECT_NEAR(ell.sparsity(), 0.75, 1e-9);
  DenseMatrix<half_t> dense = ell.to_dense();
  // Every stored block appears in the dense matrix with nonzero values.
  int nonzeros = 0;
  for (int r = 0; r < 64; ++r) {
    for (int c = 0; c < 64; ++c) {
      if (static_cast<float>(dense.at(r, c)) != 0.0f) ++nonzeros;
    }
  }
  EXPECT_EQ(nonzeros, 64 * 64 / 4);
}

TEST(BlockedEll, DistinctColumnsPerRow) {
  Rng rng(5);
  BlockedEll ell = make_blocked_ell(32, 128, 4, 0.5, rng);
  for (int brow = 0; brow < ell.block_rows(); ++brow) {
    std::set<std::int32_t> seen;
    for (int s = 0; s < ell.blocks_per_row; ++s) {
      const std::int32_t c =
          ell.col_idx[static_cast<std::size_t>(brow * ell.blocks_per_row + s)];
      EXPECT_TRUE(seen.insert(c).second) << "duplicate block column";
    }
  }
}

class GeneratorSparsityTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(GeneratorSparsityTest, CvsHitsTargetSparsity) {
  const auto [v, sparsity] = GetParam();
  Rng rng(6);
  Cvs cvs = make_cvs(256, 512, v, sparsity, rng);
  cvs.validate();
  EXPECT_NEAR(cvs.sparsity(), sparsity, 0.02) << "v=" << v;
  // All stored values nonzero.
  for (half_t h : cvs.values) EXPECT_NE(static_cast<float>(h), 0.0f);
}

INSTANTIATE_TEST_SUITE_P(
    SparsityGrid, GeneratorSparsityTest,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(0.5, 0.7, 0.8, 0.9, 0.95, 0.98)));

TEST(Generators, RowJitterProducesImbalance) {
  Rng rng(7);
  Cvs uniform = make_cvs(512, 256, 1, 0.8, rng, /*row_jitter=*/0.0);
  Cvs jittered = make_cvs(512, 256, 1, 0.8, rng, /*row_jitter=*/0.5);
  auto row_nnz_range = [](const Cvs& m) {
    int lo = 1 << 30, hi = 0;
    for (int r = 0; r < m.vec_rows(); ++r) {
      const int n = m.row_ptr[static_cast<std::size_t>(r) + 1] -
                    m.row_ptr[static_cast<std::size_t>(r)];
      lo = std::min(lo, n);
      hi = std::max(hi, n);
    }
    return hi - lo;
  };
  EXPECT_EQ(row_nnz_range(uniform), 0);
  EXPECT_GT(row_nnz_range(jittered), 10);
}

TEST(Generators, MaskIsAllOnes) {
  Rng rng(8);
  Cvs mask = make_cvs_mask(64, 128, 4, 0.9, rng);
  for (half_t h : mask.values) EXPECT_EQ(static_cast<float>(h), 1.0f);
}

TEST(Generators, AttentionMaskBandPlusRandom) {
  Rng rng(9);
  const int seq = 512, v = 8, band = 64;
  Cvs mask = make_attention_mask(seq, v, band, 0.9, rng);
  mask.validate();
  EXPECT_NEAR(mask.sparsity(), 0.9, 0.02);
  // Band coverage: the diagonal entry of every vector-row is present.
  for (int vr = 0; vr < mask.vec_rows(); ++vr) {
    bool has_diag = false;
    for (std::int32_t i = mask.row_ptr[static_cast<std::size_t>(vr)];
         i < mask.row_ptr[static_cast<std::size_t>(vr) + 1]; ++i) {
      if (mask.col_idx[static_cast<std::size_t>(i)] == vr * v) {
        has_diag = true;
        break;
      }
    }
    EXPECT_TRUE(has_diag) << "vector-row " << vr << " misses its diagonal";
  }
}

TEST(Reference, SpmmAgreesWithDenseGemm) {
  Rng rng(10);
  Cvs a = make_cvs(32, 48, 4, 0.7, rng);
  DenseMatrix<half_t> b(48, 24);
  b.fill_random_int(rng);
  // Sparse reference == dense GEMM on the densified A.
  DenseMatrix<half_t> c_sparse = spmm_reference(a, b);
  DenseMatrix<half_t> c_dense = gemm_reference(a.to_dense(), b);
  for (int r = 0; r < 32; ++r) {
    for (int j = 0; j < 24; ++j) {
      EXPECT_EQ(c_sparse.at(r, j).bits(), c_dense.at(r, j).bits());
    }
  }
}

TEST(Reference, SddmmMasksDenseProduct) {
  Rng rng(11);
  DenseMatrix<half_t> a(16, 32);
  a.fill_random_int(rng);
  DenseMatrix<half_t> b(32, 24, Layout::kColMajor);
  b.fill_random_int(rng);
  Cvs mask = make_cvs_mask(16, 24, 2, 0.6, rng);
  Cvs out = sddmm_reference(a, b, mask);
  DenseMatrix<half_t> full = gemm_reference(a, b);
  DenseMatrix<half_t> sparse = out.to_dense();
  DenseMatrix<half_t> mask_dense = mask.to_dense();
  for (int r = 0; r < 16; ++r) {
    for (int c = 0; c < 24; ++c) {
      if (static_cast<float>(mask_dense.at(r, c)) != 0.0f) {
        EXPECT_EQ(sparse.at(r, c).bits(), full.at(r, c).bits());
      } else {
        EXPECT_EQ(static_cast<float>(sparse.at(r, c)), 0.0f);
      }
    }
  }
}

TEST(Reference, SoftmaxRowsSumToOne) {
  Rng rng(12);
  Cvs logits = make_cvs(64, 64, 4, 0.8, rng);
  Cvs probs = sparse_softmax_reference(logits, 0.125f);
  for (int vr = 0; vr < probs.vec_rows(); ++vr) {
    for (int t = 0; t < probs.v; ++t) {
      float sum = 0.0f;
      for (std::int32_t i = probs.row_ptr[static_cast<std::size_t>(vr)];
           i < probs.row_ptr[static_cast<std::size_t>(vr) + 1]; ++i) {
        sum += static_cast<float>(
            probs.values[static_cast<std::size_t>(i) *
                             static_cast<std::size_t>(probs.v) +
                         static_cast<std::size_t>(t)]);
      }
      EXPECT_NEAR(sum, 1.0f, 0.02f);  // half rounding per element
    }
  }
}

}  // namespace
}  // namespace vsparse

// Tests for the sparse-attention pipeline and the §7.4 transformer
// model: functional agreement with the host reference, the Fig. 20
// stage breakdown, the Table 4 memory shape, and the fidelity proxy.
#include <gtest/gtest.h>

#include <cmath>

#include "vsparse/common/rng.hpp"
#include "vsparse/formats/generate.hpp"
#include "vsparse/formats/reference.hpp"
#include "vsparse/transformer/attention.hpp"
#include "vsparse/transformer/fidelity.hpp"
#include "vsparse/transformer/model.hpp"

namespace vsparse::transformer {
namespace {

gpusim::DeviceConfig test_config() {
  gpusim::DeviceConfig cfg;
  cfg.dram_capacity = 512 << 20;
  cfg.num_sms = 8;
  return cfg;
}

TEST(SparseAttention, MatchesHostReference) {
  const int seq = 128, d = 64, v = 8;
  Rng rng(42);
  DenseMatrix<half_t> q(seq, d), k(seq, d), vals(seq, d);
  q.fill_random(rng, -0.5f, 0.5f);
  k.fill_random(rng, -0.5f, 0.5f);
  vals.fill_random(rng, -0.5f, 0.5f);
  Cvs mask = make_attention_mask(seq, v, 32, 0.8, rng);

  gpusim::Device dev(test_config());
  auto dq = to_device(dev, q);
  auto dk = to_device(dev, k);
  auto dv = to_device(dev, vals);
  auto dmask = to_device(dev, mask);
  auto scratch = dev.alloc<half_t>(mask.values.size());
  DenseMatrix<half_t> out_h(seq, d);
  auto dout = to_device(dev, out_h);

  AttentionBreakdown br =
      sparse_attention_head(dev, dq, dk, dv, dmask, scratch, dout);
  DenseMatrix<half_t> got = from_device(dout);

  // Host reference: SDDMM -> sparse softmax -> SpMM with the same
  // rounding points.
  DenseMatrix<half_t> kt = k.with_layout(Layout::kColMajor);
  DenseMatrix<half_t> kt_view(d, seq, Layout::kRowMajor);
  for (int i = 0; i < seq; ++i) {
    for (int j = 0; j < d; ++j) kt_view.at(j, i) = k.at(i, j);
  }
  Cvs scores = sddmm_reference(q, kt_view.with_layout(Layout::kColMajor), mask);
  Cvs probs = sparse_softmax_reference(
      scores, 1.0f / std::sqrt(static_cast<float>(d)));
  DenseMatrix<half_t> ref = spmm_reference(probs, vals);
  for (int i = 0; i < seq; ++i) {
    for (int j = 0; j < d; ++j) {
      ASSERT_NEAR(static_cast<float>(got.at(i, j)),
                  static_cast<float>(ref.at(i, j)), 5e-3f)
          << i << "," << j;
    }
  }
  EXPECT_GT(br.qk.stats.op(gpusim::Op::kHmma), 0u);
  EXPECT_GT(br.av.stats.op(gpusim::Op::kHmma), 0u);
}

TEST(DenseAttention, RowsOfProbsSumToOne) {
  const int seq = 64, d = 64;
  Rng rng(7);
  DenseMatrix<half_t> q(seq, d), k(seq, d), vals(seq, d);
  q.fill_random(rng, -0.25f, 0.25f);
  k.fill_random(rng, -0.25f, 0.25f);
  vals.fill_random(rng, -0.25f, 0.25f);
  gpusim::Device dev(test_config());
  auto dq = to_device(dev, q);
  auto dk = to_device(dev, k);
  auto dv = to_device(dev, vals);
  DenseMatrix<half_t> scores_h(seq, seq);
  auto dscores = to_device(dev, scores_h);
  DenseMatrix<half_t> out_h(seq, d);
  auto dout = to_device(dev, out_h);
  dense_attention_head(dev, dq, dk, dv, dscores, dout);
  DenseMatrix<half_t> probs = from_device(dscores);
  for (int i = 0; i < seq; ++i) {
    float sum = 0;
    for (int j = 0; j < seq; ++j) sum += static_cast<float>(probs.at(i, j));
    EXPECT_NEAR(sum, 1.0f, 0.05f) << "row " << i;
  }
  // Output rows are convex combinations of V rows: bounded by V range.
  DenseMatrix<half_t> out = from_device(dout);
  for (int j = 0; j < d; ++j) {
    EXPECT_LE(std::fabs(static_cast<float>(out.at(0, j))), 0.3f);
  }
}

TEST(Model, SparseForwardRunsAndBreaksDown) {
  gpusim::Device dev(test_config());
  ModelConfig cfg;
  cfg.seq = 256;
  cfg.layers = 2;
  cfg.batch = 2;
  cfg.band = 64;
  cfg.mode = Mode::kSparseHalf;
  ForwardResult r = run_transformer_forward(dev, cfg, 1);
  EXPECT_GT(r.qk_cycles, 0);
  EXPECT_GT(r.softmax_cycles, 0);
  EXPECT_GT(r.av_cycles, 0);
  EXPECT_GT(r.other_cycles, 0);
  EXPECT_GT(r.peak_memory_bytes, 0u);
  EXPECT_GT(r.throughput(1.38e9, cfg.batch), 0);
}

TEST(Model, MemoryShapeMatchesTable4) {
  // Dense(float) ~ 2x Dense(half) peak memory; Sparse(half) far below
  // both (the score matrices dominate).
  ModelConfig cfg;
  cfg.seq = 1024;  // large enough for score matrices to dominate
  cfg.layers = 1;
  cfg.batch = 2;
  cfg.band = 64;

  auto peak_for = [&](Mode mode) {
    gpusim::Device dev(test_config());
    cfg.mode = mode;
    return run_transformer_forward(dev, cfg, 2).peak_memory_bytes;
  };
  const auto dense_f = peak_for(Mode::kDenseFloat);
  const auto dense_h = peak_for(Mode::kDenseHalf);
  const auto sparse_h = peak_for(Mode::kSparseHalf);
  EXPECT_GT(dense_f, dense_h);
  EXPECT_NEAR(static_cast<double>(dense_f) / dense_h, 2.0, 0.35);
  EXPECT_LT(sparse_h * 2, dense_h);
}

TEST(Model, SparseFasterThanDenseAtHighSparsity) {
  // The Table 4 throughput ordering at 90% sparsity.
  ModelConfig cfg;
  cfg.seq = 512;
  cfg.layers = 1;
  cfg.batch = 1;
  cfg.band = 64;
  cfg.sparsity = 0.9;
  gpusim::DeviceConfig hw;
  auto cycles_for = [&](Mode mode) {
    gpusim::Device dev(test_config());
    cfg.mode = mode;
    return run_transformer_forward(dev, cfg, 3).total_cycles();
  };
  const double dense_f = cycles_for(Mode::kDenseFloat);
  const double dense_h = cycles_for(Mode::kDenseHalf);
  const double sparse_h = cycles_for(Mode::kSparseHalf);
  EXPECT_LT(dense_h, dense_f);
  EXPECT_LT(sparse_h, dense_h);
}

TEST(Fidelity, HalfAndSparsePipelinesPreserveDecisions) {
  FidelityConfig cfg;
  cfg.seq = 128;
  cfg.trials = 10;
  cfg.band = 32;
  FidelityReport rep = measure_fidelity(cfg, 99);
  EXPECT_GT(rep.dense_half_cosine, 0.999);
  EXPECT_GT(rep.sparse_half_cosine, 0.999);
  EXPECT_GE(rep.dense_half_agreement, 0.9);
  EXPECT_GE(rep.sparse_half_agreement, 0.9);
}

}  // namespace
}  // namespace vsparse::transformer

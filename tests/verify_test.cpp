// Static launch verifier tests: the interval domain, the exact span
// overlap primitive, shape-class corner enumeration, the full-registry
// zero-refutation sweep on every architecture preset, seeded-broken
// contracts that must be refuted with a concrete counterexample, the
// certificate store round-trip, and the cert-gated dispatch / serve
// admission paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "vsparse/common/rng.hpp"
#include "vsparse/formats/generate.hpp"
#include "vsparse/gpusim/arch.hpp"
#include "vsparse/gpusim/device.hpp"
#include "vsparse/gpusim/verify/certs.hpp"
#include "vsparse/gpusim/verify/interval.hpp"
#include "vsparse/gpusim/verify/span_set.hpp"
#include "vsparse/gpusim/verify/verifier.hpp"
#include "vsparse/kernels/contracts.hpp"
#include "vsparse/kernels/dispatch.hpp"
#include "vsparse/kernels/registry.hpp"
#include "vsparse/serve/error.hpp"
#include "vsparse/serve/fleet.hpp"
#include "vsparse/serve/supervisor.hpp"

namespace vsparse {
namespace {

using verify::CertEntry;
using verify::CertStore;
using verify::Ival;
using verify::ShapeClass;
using verify::ShapeCorner;
using verify::SpanRef;
using verify::Verdict;
using verify::VerdictKind;

// ---- interval domain --------------------------------------------------

TEST(Ival, ArithmeticIsMonotoneAndExactOnPoints) {
  const Ival a(2, 5);
  const Ival b(-1, 3);
  EXPECT_EQ((a + b).lo, 1);
  EXPECT_EQ((a + b).hi, 8);
  EXPECT_EQ((a - b).lo, -1);
  EXPECT_EQ((a - b).hi, 6);
  EXPECT_EQ((a * b).lo, -5);
  EXPECT_EQ((a * b).hi, 15);
  const Ival p(7);
  EXPECT_TRUE(p.is_point());
  EXPECT_EQ((p * p).lo, 49);
  EXPECT_TRUE(a.contains(5));
  EXPECT_FALSE(a.contains(6));
  EXPECT_EQ(a.hull(b).lo, -1);
  EXPECT_EQ(a.hull(b).hi, 5);
}

TEST(Ival, SaturatesInsteadOfWrapping) {
  const std::int64_t big = std::numeric_limits<std::int64_t>::max();
  const Ival huge(big - 1, big);
  EXPECT_EQ((huge + huge).hi, big);      // no wrap to negative
  EXPECT_EQ((huge * Ival(2)).hi, big);
  EXPECT_EQ((Ival(-big, -big + 1) - huge).lo,
            std::numeric_limits<std::int64_t>::min());
}

// ---- exact span overlap ----------------------------------------------

TEST(SpanOverlap, InterleavedStridesDoNotCollide) {
  // Two warps writing alternating 2-byte elements: bases 0 and 2,
  // stride 4.  A hull test would report a collision; the exact test
  // must not.
  const std::uint64_t base_a[] = {0};
  const std::uint64_t base_b[] = {2};
  const SpanRef a{base_a, 1, 32, 4, 2, 0xFFFFFFFFu};
  const SpanRef b{base_b, 1, 32, 4, 2, 0xFFFFFFFFu};
  EXPECT_FALSE(verify::spans_overlap(a, b));

  // Widen the access to 3 bytes and lanes of `a` now reach into `b`.
  const SpanRef a3{base_a, 1, 32, 4, 3, 0xFFFFFFFFu};
  EXPECT_TRUE(verify::spans_overlap(a3, b));
}

TEST(SpanOverlap, MaskAndSegmentsRespected) {
  const std::uint64_t base_a[] = {0, 64};
  const std::uint64_t base_b[] = {64};
  // 2 segments of 16 lanes x 4 bytes; only segment 0 of `a` active.
  const SpanRef a_seg0{base_a, 2, 16, 4, 4, 0x0000FFFFu};
  const SpanRef b{base_b, 1, 16, 4, 4, 0x0000FFFFu};
  EXPECT_FALSE(verify::spans_overlap(a_seg0, b));
  // Activate segment 1 (lanes 16..31) and it lands on b's bytes.
  const SpanRef a_both{base_a, 2, 16, 4, 4, 0xFFFFFFFFu};
  EXPECT_TRUE(verify::spans_overlap(a_both, b));
  // Empty mask never overlaps anything.
  const SpanRef empty{base_a, 2, 16, 4, 4, 0};
  EXPECT_FALSE(verify::spans_overlap(empty, b));
}

// ---- shape classes ----------------------------------------------------

TEST(ShapeClasses, CornersEnumerateExtremesAndMembership) {
  ShapeClass cls;
  cls.name = "t";
  cls.v = 4;
  cls.m = {64, 256, 64};
  cls.k = {64, 64, 64};    // degenerate: lo == hi
  cls.n = {64, 128, 64};
  cls.d_lo = 0.1;
  cls.d_hi = 0.5;
  const std::vector<ShapeCorner> corners = cls.corners();
  // 2 (m) x 1 (k) x 2 (n) x 2 (density) = 8 corners.
  EXPECT_EQ(corners.size(), 8u);
  for (const ShapeCorner& c : corners) {
    EXPECT_TRUE(cls.contains(c)) << c.str();
  }
  EXPECT_FALSE(cls.contains({63, 64, 64, 4, 0.3}));   // modulus
  EXPECT_FALSE(cls.contains({64, 64, 64, 2, 0.3}));   // wrong v
  EXPECT_FALSE(cls.contains({64, 64, 64, 4, 0.7}));   // density
}

TEST(ShapeClasses, SingletonDenotesExactlyOneShape) {
  const ShapeCorner s{128, 64, 64, 2, 0.4};
  const ShapeClass cls = ShapeClass::singleton("one", s);
  EXPECT_TRUE(cls.contains(s));
  const std::vector<ShapeCorner> corners = cls.corners();
  ASSERT_GE(corners.size(), 1u);
  for (const ShapeCorner& c : corners) {
    EXPECT_EQ(c.m, s.m);
    EXPECT_EQ(c.k, s.k);
    EXPECT_EQ(c.n, s.n);
    EXPECT_EQ(c.v, s.v);
  }
}

// ---- the shipped registry is proved everywhere ------------------------

TEST(Verifier, EveryRegisteredKernelHasAContract) {
  for (const kernels::KernelDesc& desc : kernels::kernel_registry()) {
    EXPECT_NE(desc.contract, nullptr) << desc.name;
  }
  EXPECT_FALSE(verify::extra_contracts().empty());
  for (const verify::ExtraContract& extra : verify::extra_contracts()) {
    EXPECT_NE(extra.contract, nullptr) << extra.name;
  }
}

TEST(Verifier, FullRegistryProvedOverBuiltinClassesOnEveryPreset) {
  const std::vector<ShapeClass> classes = verify::builtin_shape_classes();
  ASSERT_FALSE(classes.empty());
  int proved = 0;
  for (const gpusim::ArchPreset& preset : gpusim::arch_presets()) {
    const gpusim::DeviceConfig hw = preset.make();
    for (const kernels::KernelDesc& desc : kernels::kernel_registry()) {
      for (const ShapeClass& cls : classes) {
        const Verdict v = verify::verify_kernel(desc.contract, cls, hw);
        EXPECT_NE(v.kind, VerdictKind::kRefuted)
            << desc.name << " over " << cls.name << " on " << preset.name
            << ": " << v.detail << " at " << v.site << " (counterexample "
            << v.counterexample.str() << ")";
        if (v.kind == VerdictKind::kProved) ++proved;
      }
    }
  }
  EXPECT_GT(proved, 0);
}

// eligible() and the verifier must agree on a seeded shape corpus:
// a dispatchable shape is never refuted (the shipped kernels are safe
// on every shape they accept), and the proof at an ineligible shape is
// by precondition rejection, never by running the kernel body.
TEST(Verifier, EligibleAgreesWithVerdictsOnSeededCorpus) {
  Rng rng(0xC0FFEEu);
  const gpusim::DeviceConfig hw = gpusim::DeviceConfig::volta_v100();
  const int dims[] = {16, 32, 64, 128, 192, 256};
  const int vs[] = {1, 2, 4, 8};
  for (int i = 0; i < 40; ++i) {
    ShapeCorner s;
    s.m = dims[rng.uniform_int(0, 5)];
    s.k = dims[rng.uniform_int(0, 5)];
    s.n = dims[rng.uniform_int(0, 5)];
    s.v = vs[rng.uniform_int(0, 3)];
    s.density = 0.1 + 0.2 * rng.uniform_int(0, 4);
    const ShapeClass cls = ShapeClass::singleton("corpus", s);
    const kernels::DispatchShape ds{s.m, s.k, s.n, s.v, s.density};
    for (const kernels::KernelDesc& desc : kernels::kernel_registry()) {
      const Verdict v = verify::verify_kernel(desc.contract, cls, hw);
      EXPECT_NE(v.kind, VerdictKind::kRefuted)
          << desc.name << " on " << s.str() << ": " << v.detail;
      if (desc.eligible(ds) && v.kind == VerdictKind::kProved) {
        EXPECT_LT(v.corners_rejected, v.corners_checked)
            << desc.name << " rejected the eligible shape " << s.str();
      }
    }
  }
}

// ---- seeded-broken contracts must be refuted --------------------------

// A store one element past the end of its buffer: classic missing
// `-1` on the tail extent.
void broken_bounds_contract(verify::CtaModel& m, const ShapeCorner& s,
                            const gpusim::DeviceConfig&) {
  m.launch(1, 0);
  const std::int64_t bytes = std::int64_t{2} * s.m * s.n;
  const int out = m.gbuf("c", bytes);
  // Last row writeback with the row index off by one.
  m.stg1(out, Ival(std::int64_t{2} * s.m * s.n - 64 + 2), 2, 2, 0xFFFFFFFFu,
         "broken.writeback");
  m.finish();
}

// A CTA-wide barrier after one warp took a divergent early exit.
void broken_barrier_contract(verify::CtaModel& m, const ShapeCorner&,
                             const gpusim::DeviceConfig&) {
  m.launch(2, 256);
  m.skip_rest(0);
  m.sync();
  m.finish();
}

// Two warps storing to the same shared-memory bytes in one epoch.
void broken_race_contract(verify::CtaModel& m, const ShapeCorner&,
                          const gpusim::DeviceConfig&) {
  m.launch(2, 1024);
  m.sts(0, {0}, 32, 4, 4, 0xFFFFFFFFu, "broken.sts.w0");
  m.sts(1, {64}, 32, 4, 4, 0xFFFFFFFFu, "broken.sts.w1");  // lanes collide
  m.finish();
}

TEST(Verifier, SeededBrokenKernelsAreRefutedWithConcreteCounterexample) {
  const gpusim::DeviceConfig hw = gpusim::DeviceConfig::volta_v100();
  ShapeClass cls;
  cls.name = "seeded";
  cls.v = 4;
  cls.m = {64, 128, 64};
  cls.k = {64, 64, 64};
  cls.n = {64, 64, 64};
  cls.d_lo = 0.3;
  cls.d_hi = 0.3;

  const Verdict bounds = verify::verify_kernel(broken_bounds_contract, cls, hw);
  ASSERT_EQ(bounds.kind, VerdictKind::kRefuted);
  EXPECT_EQ(bounds.site, "broken.writeback");
  EXPECT_TRUE(cls.contains(bounds.counterexample))
      << bounds.counterexample.str();
  EXPECT_FALSE(bounds.detail.empty());

  const Verdict barrier =
      verify::verify_kernel(broken_barrier_contract, cls, hw);
  ASSERT_EQ(barrier.kind, VerdictKind::kRefuted);
  EXPECT_TRUE(cls.contains(barrier.counterexample));

  const Verdict race = verify::verify_kernel(broken_race_contract, cls, hw);
  ASSERT_EQ(race.kind, VerdictKind::kRefuted);
  EXPECT_TRUE(cls.contains(race.counterexample));
  EXPECT_NE(race.detail.find("broken.sts"), std::string::npos)
      << race.detail;
}

// ---- certificate store ------------------------------------------------

CertEntry make_entry(const char* kernel, const char* arch,
                     const ShapeClass& cls, VerdictKind verdict) {
  CertEntry e;
  e.kernel = kernel;
  e.arch = arch;
  e.cls = cls;
  e.verdict = verdict;
  e.corners_checked = 8;
  if (verdict == VerdictKind::kRefuted) {
    e.counterexample = {cls.m.lo, cls.k.lo, cls.n.lo, cls.v, cls.d_lo};
    e.site = "test.site";
    e.detail = "seeded refutation";
  }
  return e;
}

ShapeClass test_class(const char* name, int v = 4) {
  ShapeClass cls;
  cls.name = name;
  cls.v = v;
  cls.m = {64, 256, 64};
  cls.k = {64, 256, 64};
  cls.n = {64, 256, 64};
  cls.d_lo = 0.0;
  cls.d_hi = 1.0;
  return cls;
}

TEST(CertStore, RoundTripsThroughJsonAndPrefersRefutedOnLookup) {
  CertStore store;
  store.put(make_entry("spmm_octet", "volta-v100", test_class("wide"),
                       VerdictKind::kProved));
  // A narrower refuted class overlapping the proved one: lookup must
  // surface the refutation (worst verdict wins).
  ShapeClass narrow = test_class("narrow");
  narrow.m = {64, 64, 64};
  store.put(make_entry("spmm_octet", "volta-v100", narrow,
                       VerdictKind::kRefuted));
  store.put(make_entry("spmm_octet", "turing-t4", test_class("wide"),
                       VerdictKind::kProved));

  const CertStore loaded = CertStore::from_json(store.to_json());
  EXPECT_EQ(loaded.size(), 3u);

  const CertEntry* hit =
      loaded.lookup("spmm_octet", "volta-v100", {64, 64, 64, 4, 0.5});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->verdict, VerdictKind::kRefuted);
  EXPECT_EQ(hit->cls.name, "narrow");
  EXPECT_EQ(hit->counterexample.m, 64);

  // Outside the narrow class only the proved cert covers.
  const CertEntry* proved =
      loaded.lookup("spmm_octet", "volta-v100", {128, 64, 64, 4, 0.5});
  ASSERT_NE(proved, nullptr);
  EXPECT_EQ(proved->verdict, VerdictKind::kProved);

  // Uncovered kernel/arch/shape miss.
  EXPECT_EQ(loaded.lookup("sddmm_octet", "volta-v100", {64, 64, 64, 4, 0.5}),
            nullptr);
  EXPECT_EQ(loaded.lookup("spmm_octet", "ampere-a100", {64, 64, 64, 4, 0.5}),
            nullptr);
  EXPECT_EQ(loaded.lookup("spmm_octet", "volta-v100", {64, 64, 64, 1, 0.5}),
            nullptr);
}

TEST(CertStore, MalformedAndOversizedBlobsRaise) {
  EXPECT_THROW(CertStore::from_json("{"), vsparse::Error);
  EXPECT_THROW(CertStore::from_json("[]"), vsparse::Error);
  EXPECT_THROW(CertStore::from_json("{\"entries\": []}"), vsparse::Error);
  EXPECT_THROW(CertStore::from_json("{\"version\": \"vsparse-static-v0\", "
                                    "\"entries\": []}"),
               vsparse::Error);
  const std::string oversized(verify::kMaxCertStoreBytes + 1, ' ');
  EXPECT_THROW(CertStore::from_json(oversized), vsparse::Error);
  // Trailing garbage after the object.
  EXPECT_THROW(
      CertStore::from_json("{\"version\": \"vsparse-static-v1\", "
                           "\"entries\": []} x"),
      vsparse::Error);
}

// ---- cert-gated dispatch ----------------------------------------------

gpusim::DeviceConfig small_config() {
  gpusim::DeviceConfig cfg;
  cfg.dram_capacity = 128 << 20;
  cfg.num_sms = 4;
  return cfg;
}

/// A store refuting `kernel` on volta-v100 for every shape of vector
/// width `v` (the singleton-free wide class).
CertStore refute_kernel(const char* kernel, int v) {
  CertStore store;
  store.put(make_entry(kernel, "volta-v100", test_class("gate", v),
                       VerdictKind::kRefuted));
  return store;
}

TEST(CertGate, AutoDispatchDivertsAwayFromRefutedKernel) {
  Rng rng(11);
  gpusim::Device dev(small_config());
  const Cvs a = make_cvs(64, 64, 4, 0.5, rng);
  DenseMatrix<half_t> b(64, 64);
  b.fill_random_int(rng);
  DenseMatrix<half_t> c(64, 64);
  auto da = to_device(dev, a);
  auto db = to_device(dev, b);
  auto dc = to_device(dev, c);

  // Unconstrained auto picks octet for V=4.
  const auto baseline = kernels::spmm(dev, da, db, dc);
  EXPECT_NE(baseline.config.profile.name.find("octet"), std::string::npos);

  // With spmm_octet refuted, auto must divert to another proved rung
  // instead of failing.
  const CertStore store = refute_kernel("spmm_octet", 4);
  const auto diverted = kernels::spmm(dev, da, db, dc, {.certs = &store});
  EXPECT_EQ(diverted.config.profile.name.find("octet"), std::string::npos)
      << diverted.config.profile.name;
}

TEST(CertGate, ExplicitlyRequestedRefutedKernelRaisesWithCounterexample) {
  Rng rng(12);
  gpusim::Device dev(small_config());
  const Cvs a = make_cvs(64, 64, 4, 0.5, rng);
  DenseMatrix<half_t> b(64, 64);
  b.fill_random_int(rng);
  DenseMatrix<half_t> c(64, 64);
  auto da = to_device(dev, a);
  auto db = to_device(dev, b);
  auto dc = to_device(dev, c);

  const CertStore store = refute_kernel("spmm_octet", 4);
  try {
    kernels::spmm(dev, da, db, dc,
                  {.algorithm = kernels::SpmmAlgorithm::kOctet,
                   .certs = &store});
    FAIL() << "refuted explicit dispatch did not raise";
  } catch (const vsparse::Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBadDispatch);
    EXPECT_NE(std::string(e.what()).find("64"), std::string::npos)
        << "counterexample shape missing from: " << e.what();
  }

  // A proved cert for the same pair changes nothing.
  CertStore proved;
  proved.put(make_entry("spmm_octet", "volta-v100", test_class("gate", 4),
                        VerdictKind::kProved));
  const auto run = kernels::spmm(dev, da, db, dc,
                                 {.algorithm = kernels::SpmmAlgorithm::kOctet,
                                  .certs = &proved});
  EXPECT_NE(run.config.profile.name.find("octet"), std::string::npos);
}

TEST(CertGate, SddmmGateMirrorsSpmm) {
  Rng rng(13);
  gpusim::Device dev(small_config());
  DenseMatrix<half_t> a(64, 64);
  a.fill_random_int(rng);
  DenseMatrix<half_t> b(64, 64, Layout::kColMajor);
  b.fill_random_int(rng);
  const Cvs mask = make_cvs_mask(64, 64, 4, 0.5, rng);
  auto da = to_device(dev, a);
  auto db = to_device(dev, b);
  auto dmask = to_device(dev, mask);
  auto out = dev.alloc<half_t>(mask.col_idx.size() *
                               static_cast<std::size_t>(mask.v));

  const CertStore store = refute_kernel("sddmm_octet", 4);
  const auto diverted =
      kernels::sddmm(dev, da, db, dmask, out, {.certs = &store});
  EXPECT_EQ(diverted.config.profile.name.find("octet"), std::string::npos)
      << diverted.config.profile.name;
  EXPECT_THROW(
      kernels::sddmm(dev, da, db, dmask, out,
                     {.algorithm = kernels::SddmmAlgorithm::kOctet,
                      .certs = &store}),
      vsparse::Error);
}

// ---- serve admission gate ---------------------------------------------

TEST(CertGate, FleetAdmissionRejectsRefutedRequestBeforeExecution) {
  gpusim::Device dev(small_config());
  serve::ServePolicy policy;
  serve::Supervisor sup(dev, policy);

  serve::RequestSpec spec;
  spec.op = serve::RequestOp::kSpmm;
  spec.m = 64;
  spec.k = 64;
  spec.v = 4;
  spec.sparsity = 0.5;
  spec.data_seed = 7;

  // V=4 SpMM auto-resolves to octet; refute it for this shape class.
  const CertStore store = refute_kernel("spmm_octet", 4);
  serve::ExecEnv env;
  env.certs = &store;
  const serve::ExecOutcome out = serve::execute_request(sup, spec, env);
  EXPECT_TRUE(out.rejected);
  EXPECT_FALSE(out.completed);
  EXPECT_EQ(out.final_code, ErrorCode::kBadDispatch);
  EXPECT_EQ(out.final_site, "serve.verify.admission");

  // Null store: the same request executes normally.
  serve::ExecEnv clean;
  const serve::ExecOutcome ok = serve::execute_request(sup, spec, clean);
  EXPECT_TRUE(ok.completed);
  EXPECT_FALSE(ok.rejected);

  // A cert refuting an *unrelated* kernel does not block admission.
  const CertStore other = refute_kernel("sddmm_octet", 4);
  serve::ExecEnv unrelated;
  unrelated.certs = &other;
  const serve::ExecOutcome pass = serve::execute_request(sup, spec, unrelated);
  EXPECT_TRUE(pass.completed);
}

}  // namespace
}  // namespace vsparse

// The ISSUE-4 acceptance soak: 1000 supervised launches through one
// Supervisor under a seeded fault storm (serve/soak.hpp) — zero
// process aborts, every outcome classified by taxonomy code, every
// recovered launch bit-identical to the fault-free reference, and the
// full vsparse-serve-v1 report byte-identical at --threads=1/2/8.
#include <gtest/gtest.h>

#include <string>

#include "vsparse/serve/soak.hpp"

namespace vsparse {
namespace {

serve::SoakConfig storm_config(int threads) {
  serve::SoakConfig config;
  config.requests = 1000;
  config.seed = 2021;
  config.threads = threads;
  config.queue_capacity = 64;
  config.memory_quota_bytes = std::size_t{1} << 19;  // oversized mech on
  return config;
}

TEST(ServeSoak, ThousandLaunchStormZeroAbortsAllClassifiedBitExact) {
  // run_soak never throws for classified failures; reaching the
  // assertions below IS the zero-aborts contract.
  const serve::SoakResult result = serve::run_soak(storm_config(1));

  EXPECT_EQ(result.totals.requests, 1000u);
  EXPECT_GT(result.totals.completed, 0u);
  EXPECT_GT(result.totals.retries, 0u);     // transient mechanism hit
  EXPECT_GT(result.totals.fallbacks, 0u);   // sticky mechanism hit
  EXPECT_GT(result.totals.give_ups, 0u);    // watchdog mechanism hit
  EXPECT_GT(result.totals.rejected, 0u);    // quota + queue rejections
  EXPECT_GT(result.queue_rejected, 0u);     // backpressure exercised
  EXPECT_EQ(result.totals.completed + result.totals.give_ups +
                result.totals.rejected,
            result.totals.requests);

  // Every recovered launch bit-identical to its fault-free reference.
  EXPECT_EQ(result.mismatches, 0u);

  // Every report line carries a machine-readable outcome: completed
  // reports a rung, failed reports a taxonomy code.
  EXPECT_NE(result.report_json.find("\"schema\":\"vsparse-serve-v1\""),
            std::string::npos);
  EXPECT_EQ(result.report_json.find("\"code\":\"internal\""),
            std::string::npos);
}

TEST(ServeSoak, ReportByteIdenticalAcrossThreadCounts) {
  const serve::SoakResult t1 = serve::run_soak(storm_config(1));
  const serve::SoakResult t2 = serve::run_soak(storm_config(2));
  const serve::SoakResult t8 = serve::run_soak(storm_config(8));
  EXPECT_EQ(t1.report_json, t2.report_json);
  EXPECT_EQ(t1.report_json, t8.report_json);
  EXPECT_EQ(t1.mismatches, 0u);
  EXPECT_EQ(t2.mismatches, 0u);
  EXPECT_EQ(t8.mismatches, 0u);
}

}  // namespace
}  // namespace vsparse

// Tests for the §8 Discussion-case utilities: square-block encoding,
// encoded-form transpose (Case 1, training), and global-attention rows
// (Case 2) — including the backward-pass SpMM they enable.
#include "vsparse/formats/blocksparse.hpp"

#include <gtest/gtest.h>

#include "vsparse/formats/generate.hpp"
#include "vsparse/formats/reference.hpp"
#include "vsparse/gpusim/device.hpp"
#include "vsparse/kernels/spmm/spmm_octet.hpp"

namespace vsparse {
namespace {

TEST(SquareBlock, GeneratorProducesAlignedBlocks) {
  Rng rng(1);
  Cvs a = make_square_block_cvs(64, 128, 4, 0.75, rng);
  a.validate();
  EXPECT_TRUE(has_square_block_structure(a));
  EXPECT_NEAR(a.sparsity(), 0.75, 0.05);
}

TEST(SquareBlock, DetectsNonBlockStructure) {
  Rng rng(2);
  Cvs a = make_cvs(64, 128, 4, 0.75, rng);  // arbitrary columns
  EXPECT_FALSE(has_square_block_structure(a));
  Cvs b = make_square_block_cvs(64, 128, 4, 0.75, rng);
  b.col_idx[0] += 1;  // break alignment
  EXPECT_FALSE(has_square_block_structure(b));
}

TEST(SquareBlock, TransposeMatchesDenseTranspose) {
  Rng rng(3);
  for (int v : {2, 4, 8}) {
    Cvs a = make_square_block_cvs(8 * v, 16 * v, v, 0.6, rng);
    Cvs at = transpose_square_block_cvs(a);
    at.validate();
    EXPECT_TRUE(has_square_block_structure(at));
    DenseMatrix<half_t> da = a.to_dense();
    DenseMatrix<half_t> dat = at.to_dense();
    ASSERT_EQ(dat.rows(), da.cols());
    ASSERT_EQ(dat.cols(), da.rows());
    for (int r = 0; r < da.rows(); ++r) {
      for (int c = 0; c < da.cols(); ++c) {
        ASSERT_EQ(dat.at(c, r).bits(), da.at(r, c).bits())
            << "v=" << v << " (" << r << "," << c << ")";
      }
    }
  }
}

TEST(SquareBlock, TransposeIsInvolution) {
  Rng rng(4);
  Cvs a = make_square_block_cvs(32, 64, 4, 0.5, rng);
  Cvs back = transpose_square_block_cvs(transpose_square_block_cvs(a));
  EXPECT_EQ(back.row_ptr, a.row_ptr);
  EXPECT_EQ(back.col_idx, a.col_idx);
  for (std::size_t i = 0; i < a.values.size(); ++i) {
    ASSERT_EQ(back.values[i].bits(), a.values[i].bits());
  }
}

TEST(SquareBlock, TransposeRejectsIrregularPattern) {
  Rng rng(5);
  Cvs a = make_cvs(32, 64, 4, 0.5, rng);
  EXPECT_THROW(transpose_square_block_cvs(a), CheckError);
}

// §8 Case 1 end to end: forward Y = W X and backward dX = Wᵀ dY both
// run on the octet SpMM, using the two encodings of the same weights.
TEST(SquareBlock, TrainingBackwardPassOnEncodedTranspose) {
  Rng rng(6);
  const int m = 64, k = 96, n = 64, v = 4;
  Cvs w = make_square_block_cvs(m, k, v, 0.7, rng);
  for (half_t& h : w.values) {
    h = half_t(static_cast<float>(rng.uniform_int(-2, 2)));
  }
  Cvs wt = transpose_square_block_cvs(w);
  DenseMatrix<half_t> x(k, n), dy(m, n);
  x.fill_random_int(rng);
  dy.fill_random_int(rng);

  gpusim::DeviceConfig cfg;
  cfg.dram_capacity = 64 << 20;
  cfg.num_sms = 4;
  gpusim::Device dev(cfg);
  auto dw = to_device(dev, w);
  auto dwt = to_device(dev, wt);
  auto dx = to_device(dev, x);
  auto ddy = to_device(dev, dy);
  DenseMatrix<half_t> yh(m, n), dxh(k, n);
  auto dy_out = to_device(dev, yh);
  auto dx_out = to_device(dev, dxh);

  kernels::spmm_octet(dev, dw, dx, dy_out);    // forward
  kernels::spmm_octet(dev, dwt, ddy, dx_out);  // backward

  DenseMatrix<half_t> y_ref = spmm_reference(w, x);
  DenseMatrix<half_t> dx_ref = spmm_reference(wt, dy);
  DenseMatrix<half_t> y_got = from_device(dy_out);
  DenseMatrix<half_t> dx_got = from_device(dx_out);
  for (int r = 0; r < m; ++r) {
    for (int c = 0; c < n; ++c) {
      ASSERT_EQ(y_got.at(r, c).bits(), y_ref.at(r, c).bits());
    }
  }
  for (int r = 0; r < k; ++r) {
    for (int c = 0; c < n; ++c) {
      ASSERT_EQ(dx_got.at(r, c).bits(), dx_ref.at(r, c).bits());
    }
  }
}

TEST(GlobalRows, PatternAndKernelExecution) {
  Rng rng(7);
  Cvs a = make_global_row_cvs(64, 128, 8, /*dense_vec_rows=*/2, rng);
  a.validate();
  // Exactly two fully-dense vector rows.
  int dense_rows = 0;
  for (int vr = 0; vr < a.vec_rows(); ++vr) {
    const int cnt = a.row_ptr[static_cast<std::size_t>(vr) + 1] -
                    a.row_ptr[static_cast<std::size_t>(vr)];
    EXPECT_TRUE(cnt == 0 || cnt == 128);
    if (cnt == 128) ++dense_rows;
  }
  EXPECT_EQ(dense_rows, 2);

  // The octet kernel handles the extreme row-length imbalance.
  DenseMatrix<half_t> b(128, 64);
  b.fill_random_int(rng);
  for (half_t& h : a.values) {
    h = half_t(static_cast<float>(rng.uniform_int(-2, 2)));
  }
  gpusim::DeviceConfig cfg;
  cfg.dram_capacity = 64 << 20;
  cfg.num_sms = 4;
  gpusim::Device dev(cfg);
  auto da = to_device(dev, a);
  auto db = to_device(dev, b);
  DenseMatrix<half_t> ch(64, 64);
  auto dc = to_device(dev, ch);
  kernels::spmm_octet(dev, da, db, dc);
  DenseMatrix<half_t> got = from_device(dc);
  DenseMatrix<half_t> ref = spmm_reference(a, b);
  for (int r = 0; r < 64; ++r) {
    for (int c = 0; c < 64; ++c) {
      ASSERT_EQ(got.at(r, c).bits(), ref.at(r, c).bits());
    }
  }
}

}  // namespace
}  // namespace vsparse

// Correctness + counter-signature tests for the SpMM baseline kernels:
// FPU 1-D subwarp tiling (§5.1), classic WMMA warp tiling (§5.2),
// Blocked-ELL (cuSPARSE stand-in, §3.2) and fine-grained CSR.
#include <gtest/gtest.h>

#include "vsparse/common/rng.hpp"
#include "vsparse/formats/generate.hpp"
#include "vsparse/formats/reference.hpp"
#include "vsparse/kernels/spmm/spmm_blocked_ell.hpp"
#include "vsparse/kernels/spmm/spmm_csr_fine.hpp"
#include "vsparse/kernels/spmm/spmm_fpu.hpp"
#include "vsparse/kernels/spmm/spmm_octet.hpp"
#include "vsparse/kernels/spmm/spmm_wmma.hpp"

namespace vsparse::kernels {
namespace {

gpusim::DeviceConfig test_config() {
  gpusim::DeviceConfig cfg;
  cfg.dram_capacity = 256 << 20;
  cfg.num_sms = 8;
  return cfg;
}

void expect_half_equal(const DenseMatrix<half_t>& got,
                       const DenseMatrix<half_t>& want) {
  for (int r = 0; r < want.rows(); ++r) {
    for (int j = 0; j < want.cols(); ++j) {
      ASSERT_EQ(got.at(r, j).bits(), want.at(r, j).bits())
          << "(" << r << "," << j << ") got "
          << static_cast<float>(got.at(r, j)) << " want "
          << static_cast<float>(want.at(r, j));
    }
  }
}

Cvs int_cvs(int m, int k, int v, double sparsity, std::uint64_t seed) {
  Rng rng(seed);
  Cvs a = make_cvs(m, k, v, sparsity, rng);
  for (half_t& h : a.values) {
    float x = static_cast<float>(rng.uniform_int(-3, 3));
    h = half_t(x == 0.0f ? 1.0f : x);
  }
  return a;
}

class SpmmFpuSweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(SpmmFpuSweep, MatchesReference) {
  const auto [v, sparsity] = GetParam();
  Cvs a = int_cvs(64, 96, v, sparsity, 500 + v);
  Rng rng(1);
  DenseMatrix<half_t> b(96, 64);
  b.fill_random_int(rng);
  gpusim::Device dev(test_config());
  auto da = to_device(dev, a);
  auto db = to_device(dev, b);
  DenseMatrix<half_t> ch(64, 64);
  auto dc = to_device(dev, ch);
  spmm_fpu_subwarp(dev, da, db, dc);
  expect_half_equal(from_device(dc), spmm_reference(a, b));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SpmmFpuSweep,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(0.0, 0.5, 0.9, 0.98)));

TEST(SpmmFpu, RowImbalanceHandled) {
  // Vector rows with wildly different nonzero counts share a warp:
  // the lockstep masking must not corrupt results.
  DenseMatrix<half_t> dense(16, 64);
  Rng rng(3);
  for (int c = 0; c < 64; ++c) {  // row block 0: full
    for (int t = 0; t < 2; ++t) {
      dense.at(t, c) = half_t(static_cast<float>(rng.uniform_int(1, 3)));
    }
  }
  dense.at(4, 7) = half_t(2.0f);  // row block 2: single nonzero
  // row blocks 1,3..7: empty
  Cvs a = Cvs::from_dense(dense, 2);
  DenseMatrix<half_t> b(64, 32);
  b.fill_random_int(rng);
  gpusim::Device dev(test_config());
  auto da = to_device(dev, a);
  auto db = to_device(dev, b);
  DenseMatrix<half_t> ch(16, 32);
  auto dc = to_device(dev, ch);
  spmm_fpu_subwarp(dev, da, db, dc, SpmmFpuParams{.tile_n = 16});
  expect_half_equal(from_device(dc), spmm_reference(a, b));
}

TEST(SpmmFpu, WideTileUsesWideLoads) {
  Cvs a = int_cvs(32, 64, 4, 0.5, 11);
  Rng rng(2);
  DenseMatrix<half_t> b(64, 64);
  b.fill_random_int(rng);
  gpusim::Device dev(test_config());
  auto da = to_device(dev, a);
  auto db = to_device(dev, b);
  DenseMatrix<half_t> ch(32, 64);
  auto dc = to_device(dev, ch);
  KernelRun narrow = spmm_fpu_subwarp(dev, da, db, dc,
                                      SpmmFpuParams{.tile_n = 16});
  KernelRun wide = spmm_fpu_subwarp(dev, da, db, dc,
                                    SpmmFpuParams{.tile_n = 64});
  // TileN=64 -> 16 B B-slices (LDG.128); TileN=16 -> 4 B (LDG.32): the
  // §5.1 guideline-V-vs-guideline-II trade-off.
  EXPECT_GT(wide.stats.ldg128, narrow.stats.ldg128);
  EXPECT_GT(narrow.stats.ldg32, wide.stats.ldg32);
  EXPECT_GT(narrow.config.grid, wide.config.grid);
  expect_half_equal(from_device(dc), spmm_reference(a, b));
}

TEST(SpmmFpu, SinglePrecisionMatchesReference) {
  Rng rng(21);
  Cvs pattern = make_cvs(64, 96, 1, 0.8, rng);
  Csr<float> a;
  a.rows = 64;
  a.cols = 96;
  a.row_ptr = pattern.row_ptr;
  a.col_idx = pattern.col_idx;
  a.values.resize(pattern.col_idx.size());
  for (float& f : a.values) {
    f = static_cast<float>(rng.uniform_int(1, 4));
  }
  DenseMatrix<float> b(96, 64);
  for (int r = 0; r < 96; ++r) {
    for (int c = 0; c < 64; ++c) {
      b.at(r, c) = static_cast<float>(rng.uniform_int(-2, 2));
    }
  }
  gpusim::Device dev(test_config());
  CvsDeviceT<float> da{dev.alloc_copy<std::int32_t>(a.row_ptr),
                       dev.alloc_copy<std::int32_t>(a.col_idx),
                       dev.alloc_copy<float>(a.values), 64, 96, 1};
  auto db = to_device(dev, b);
  DenseMatrix<float> ch(64, 64);
  auto dc = to_device(dev, ch);
  KernelRun run = spmm_fpu_subwarp_f32(dev, da, db, dc);
  DenseMatrix<float> got = from_device(dc);
  DenseMatrix<float> ref = spmm_csr_reference(a, b);
  for (int r = 0; r < 64; ++r) {
    for (int j = 0; j < 64; ++j) {
      ASSERT_EQ(got.at(r, j), ref.at(r, j)) << r << "," << j;
    }
  }
  EXPECT_EQ(run.stats.op(gpusim::Op::kHfma), 0u);  // pure fp32 math
}

TEST(SpmmFpu, SassSizeCalibration) {
  // §7.2.2: 3776 / 6968 SASS lines for V = 4 / 8 (we calibrate the
  // profile formula to land near those numbers).
  Cvs a4 = int_cvs(32, 64, 4, 0.5, 1);
  Cvs a8 = int_cvs(32, 64, 8, 0.5, 2);
  Rng rng(3);
  DenseMatrix<half_t> b(64, 64);
  b.fill_random_int(rng);
  gpusim::Device dev(test_config());
  auto db = to_device(dev, b);
  DenseMatrix<half_t> ch(32, 64);
  auto dc = to_device(dev, ch);
  auto da4 = to_device(dev, a4);
  auto da8 = to_device(dev, a8);
  KernelRun r4 = spmm_fpu_subwarp(dev, da4, db, dc);
  KernelRun r8 = spmm_fpu_subwarp(dev, da8, db, dc);
  EXPECT_NEAR(r4.config.profile.static_instrs, 3776, 500);
  EXPECT_NEAR(r8.config.profile.static_instrs, 6968, 500);
}

class SpmmWmmaSweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(SpmmWmmaSweep, MatchesReference) {
  const auto [v, sparsity] = GetParam();
  Cvs a = int_cvs(64, 96, v, sparsity, 600 + v);
  Rng rng(4);
  DenseMatrix<half_t> b(96, 128);
  b.fill_random_int(rng);
  gpusim::Device dev(test_config());
  auto da = to_device(dev, a);
  auto db = to_device(dev, b);
  DenseMatrix<half_t> ch(64, 128);
  auto dc = to_device(dev, ch);
  spmm_wmma_warp(dev, da, db, dc);
  expect_half_equal(from_device(dc), spmm_reference(a, b));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SpmmWmmaSweep,
    ::testing::Combine(::testing::Values(2, 4, 8),
                       ::testing::Values(0.0, 0.5, 0.9, 0.98)));

TEST(SpmmWmma, NarrowerLoadsThanOctet) {
  // The §5.2 analysis: classic mapping caps B loads at LDG.64 while the
  // octet mapping reaches LDG.128.
  Cvs a = int_cvs(64, 128, 4, 0.7, 12);
  Rng rng(5);
  DenseMatrix<half_t> b(128, 64);
  b.fill_random_int(rng);
  gpusim::Device dev(test_config());
  auto da = to_device(dev, a);
  auto db = to_device(dev, b);
  DenseMatrix<half_t> ch(64, 64);
  auto dc = to_device(dev, ch);
  KernelRun wmma = spmm_wmma_warp(dev, da, db, dc);
  KernelRun octet = spmm_octet(dev, da, db, dc);
  EXPECT_GT(wmma.stats.ldg64, 0u);
  // Octet B loads are LDG.128 only.
  EXPECT_GT(octet.stats.ldg128, wmma.stats.ldg128);
}

class BlockedEllSweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(BlockedEllSweep, MatchesReference) {
  const auto [blk, sparsity] = GetParam();
  Rng rng(700 + blk);
  BlockedEll a = make_blocked_ell(64, 64, blk, sparsity, rng);
  for (half_t& h : a.values) {
    h = half_t(static_cast<float>(rng.uniform_int(1, 3)));
  }
  DenseMatrix<half_t> b(64, 128);
  b.fill_random_int(rng);
  gpusim::Device dev(test_config());
  auto da = to_device(dev, a);
  auto db = to_device(dev, b);
  DenseMatrix<half_t> ch(64, 128);
  auto dc = to_device(dev, ch);
  spmm_blocked_ell(dev, da, db, dc);
  expect_half_equal(from_device(dc), gemm_reference(a.to_dense(), b));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BlockedEllSweep,
    ::testing::Combine(::testing::Values(4, 8, 16),
                       ::testing::Values(0.5, 0.9)));

TEST(BlockedEll, PaddingSlotsAreSkipped) {
  // blocks_per_row rounds up, creating -1 padding: results must ignore it.
  Rng rng(8);
  BlockedEll a = make_blocked_ell(32, 32, 8, 0.9, rng);
  ASSERT_EQ(a.blocks_per_row, 1);
  a.col_idx[0] = -1;  // force a padding slot
  DenseMatrix<half_t> b(32, 128);
  b.fill_random_int(rng);
  gpusim::Device dev(test_config());
  auto da = to_device(dev, a);
  auto db = to_device(dev, b);
  DenseMatrix<half_t> ch(32, 128);
  auto dc = to_device(dev, ch);
  spmm_blocked_ell(dev, da, db, dc);
  expect_half_equal(from_device(dc), gemm_reference(a.to_dense(), b));
}

TEST(BlockedEll, SmallBlockWastesTcuWork) {
  // Same sparsity and problem: block=4 executes ~4x the HMMA of
  // block=16 because of k-padding to 16 (§3.2's compute inefficiency).
  Rng rng(9);
  gpusim::Device dev(test_config());
  DenseMatrix<half_t> b(128, 128);
  b.fill_random_int(rng);
  auto db = to_device(dev, b);
  DenseMatrix<half_t> ch(128, 128);
  auto dc = to_device(dev, ch);
  BlockedEll a4 = make_blocked_ell(128, 128, 4, 0.75, rng);
  BlockedEll a16 = make_blocked_ell(128, 128, 16, 0.75, rng);
  auto da4 = to_device(dev, a4);
  auto da16 = to_device(dev, a16);
  KernelRun r4 = spmm_blocked_ell(dev, da4, db, dc);
  KernelRun r16 = spmm_blocked_ell(dev, da16, db, dc);
  EXPECT_GE(r4.stats.op(gpusim::Op::kHmma),
            3 * r16.stats.op(gpusim::Op::kHmma));
  // And it stages everything through smem (the Short Scoreboard source).
  EXPECT_GT(r4.stats.smem_load_requests, 0u);
}

class CsrFineSweep : public ::testing::TestWithParam<double> {};

TEST_P(CsrFineSweep, HalfMatchesReference) {
  const double sparsity = GetParam();
  Cvs a = int_cvs(32, 64, 1, sparsity, 900);
  Rng rng(10);
  DenseMatrix<half_t> b(64, 64);
  b.fill_random_int(rng);
  gpusim::Device dev(test_config());
  auto da = to_device(dev, a);
  auto db = to_device(dev, b);
  DenseMatrix<half_t> ch(32, 64);
  auto dc = to_device(dev, ch);
  spmm_csr_fine(dev, da, db, dc);
  expect_half_equal(from_device(dc), spmm_reference(a, b));
}

INSTANTIATE_TEST_SUITE_P(Sparsities, CsrFineSweep,
                         ::testing::Values(0.0, 0.5, 0.9, 0.98));

TEST(CsrFine, SinglePrecisionMatches) {
  Rng rng(11);
  Cvs pattern = make_cvs(32, 64, 1, 0.7, rng);
  gpusim::Device dev(test_config());
  auto da = to_device_f32(dev, pattern);
  DenseMatrix<float> b(64, 32);
  for (auto& x : b.data()) x = rng.uniform_float(-1, 1);
  auto db = to_device(dev, b);
  DenseMatrix<float> ch(32, 32);
  auto dc = to_device(dev, ch);
  spmm_csr_fine_f32(dev, da, db, dc);
  DenseMatrix<float> got = from_device(dc);

  // Reference through the half pattern widened to float.
  Csr<float> a;
  a.rows = 32;
  a.cols = 64;
  a.row_ptr = pattern.row_ptr;
  a.col_idx = pattern.col_idx;
  for (half_t h : pattern.values) a.values.push_back(static_cast<float>(h));
  DenseMatrix<float> ref = spmm_csr_reference(a, b);
  for (int r = 0; r < 32; ++r) {
    for (int j = 0; j < 32; ++j) {
      ASSERT_NEAR(got.at(r, j), ref.at(r, j), 1e-4f);
    }
  }
}

}  // namespace
}  // namespace vsparse::kernels

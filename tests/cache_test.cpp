// Unit + property tests for the sector-granular cache model.
#include "vsparse/gpusim/cache.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "vsparse/common/rng.hpp"

namespace vsparse::gpusim {
namespace {

// A 2-way cache with 2 sets: 4 lines of 128 B, sectors of 32 B.
SectorCache tiny_cache() { return SectorCache(512, 128, 32, 2); }

TEST(SectorCache, Geometry) {
  SectorCache c(128 << 10, 128, 32, 4);
  EXPECT_EQ(c.num_sets(), 256);
  EXPECT_EQ(c.ways(), 4);
  SectorCache t = tiny_cache();
  EXPECT_EQ(t.num_sets(), 2);
}

TEST(SectorCache, ColdMissThenHit) {
  SectorCache c = tiny_cache();
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(0));
}

TEST(SectorCache, SectorGranularFill) {
  // Touching sector 0 of a line does NOT fill its sibling sectors.
  SectorCache c = tiny_cache();
  EXPECT_FALSE(c.access(0));
  EXPECT_FALSE(c.access(32));   // same line, different sector: still a miss
  EXPECT_FALSE(c.access(64));
  EXPECT_FALSE(c.access(96));
  EXPECT_TRUE(c.access(0));     // all four sectors now resident
  EXPECT_TRUE(c.access(32));
  EXPECT_TRUE(c.access(64));
  EXPECT_TRUE(c.access(96));
}

TEST(SectorCache, LruEviction) {
  SectorCache c = tiny_cache();  // 2 sets x 2 ways; set = (addr/128) % 2
  // Three distinct lines mapping to set 0: line addrs 0, 256, 512.
  EXPECT_FALSE(c.access(0));
  EXPECT_FALSE(c.access(256));
  EXPECT_TRUE(c.access(0));     // touch line 0 so line 256 becomes LRU
  EXPECT_FALSE(c.access(512));  // evicts line 256
  EXPECT_TRUE(c.access(0));     // line 0 survived
  EXPECT_FALSE(c.access(256));  // line 256 was evicted
}

TEST(SectorCache, SetsAreIndependent) {
  SectorCache c = tiny_cache();
  EXPECT_FALSE(c.access(0));     // set 0
  EXPECT_FALSE(c.access(128));   // set 1
  EXPECT_FALSE(c.access(256));   // set 0, second way
  EXPECT_FALSE(c.access(384));   // set 1, second way
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(128));
}

TEST(SectorCache, InvalidateSector) {
  SectorCache c = tiny_cache();
  c.access(0);
  c.access(32);
  c.invalidate_sector(0);
  EXPECT_FALSE(c.access(0));   // invalidated
  EXPECT_TRUE(c.access(32));   // sibling sector untouched
}

TEST(SectorCache, InvalidateLastSectorFreesLine) {
  SectorCache c = tiny_cache();
  c.access(0);
  c.invalidate_sector(0);
  // Line should be reusable without evicting another way: fill both
  // ways of set 0 and verify both stay resident.
  EXPECT_FALSE(c.access(256));
  EXPECT_FALSE(c.access(512));
  EXPECT_TRUE(c.access(256));
  EXPECT_TRUE(c.access(512));
}

TEST(SectorCache, Flush) {
  SectorCache c = tiny_cache();
  c.access(0);
  c.flush();
  EXPECT_FALSE(c.access(0));
}

TEST(SectorCache, RejectsBadGeometry) {
  EXPECT_THROW(SectorCache(100, 128, 32, 4), CheckError);   // capacity % ways
  EXPECT_THROW(SectorCache(512, 96, 32, 2), CheckError);    // non-pow2 line
}

// Property: a working set that fits within one set's ways never misses
// after warmup, regardless of access order.
TEST(SectorCacheProperty, FittingWorkingSetAlwaysHits) {
  Rng rng(42);
  SectorCache c(8 << 10, 128, 32, 4);  // 16 sets x 4 ways
  // Four lines all mapping to set 3.
  std::vector<std::uint64_t> sectors;
  for (int line = 0; line < 4; ++line) {
    for (int s = 0; s < 4; ++s) {
      sectors.push_back((3 + 16 * static_cast<std::uint64_t>(line)) * 128 +
                        static_cast<std::uint64_t>(s) * 32);
    }
  }
  for (std::uint64_t s : sectors) c.access(s);  // warmup
  for (int i = 0; i < 10000; ++i) {
    const auto pick = sectors[rng.uniform_u64(sectors.size())];
    EXPECT_TRUE(c.access(pick)) << "iteration " << i;
  }
}

// Property: streaming a working set far larger than capacity misses on
// every first touch of each sector.
TEST(SectorCacheProperty, StreamingMissesEachNewSector) {
  SectorCache c(4 << 10, 128, 32, 4);
  int misses = 0;
  const int sectors = 4096;
  for (int i = 0; i < sectors; ++i) {
    if (!c.access(static_cast<std::uint64_t>(i) * 32)) ++misses;
  }
  EXPECT_EQ(misses, sectors);
}

// Property: hits never exceed accesses and a second identical pass over
// a fitting working set is all hits (LRU keeps it resident).
TEST(SectorCacheProperty, SecondPassOverFittingSetHits) {
  SectorCache c(64 << 10, 128, 32, 4);
  const int n = (32 << 10) / 32;  // half capacity worth of sectors
  for (int i = 0; i < n; ++i) c.access(static_cast<std::uint64_t>(i) * 32);
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(c.access(static_cast<std::uint64_t>(i) * 32)) << i;
  }
}

}  // namespace
}  // namespace vsparse::gpusim

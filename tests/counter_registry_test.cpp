// Counter-registry acceptance tests: every KernelStats counter is in
// the registry exactly once (distinct storage, unique stable name),
// and merge, diff, equality, JSON export, and the pretty-printer are
// all derived from the same table — so the historical text dump is
// reproduced byte for byte and a counter can never silently miss an
// exporter.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <sstream>
#include <string>

#include "vsparse/gpusim/stats.hpp"
#include "vsparse/gpusim/trace/counters.hpp"

namespace vsparse::gpusim {
namespace {

/// Count occurrences of `needle` in `hay`.
int occurrences(const std::string& hay, const std::string& needle) {
  int n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + 1)) {
    ++n;
  }
  return n;
}

TEST(CounterRegistry, EveryFieldCoveredExactlyOnce) {
  // Bump each registry accessor once; if two entries aliased the same
  // field (or one missed), the flat uint64 view would not be all-ones.
  KernelStats s{};
  for (const CounterDef& def : counter_registry()) {
    counter_ref(s, def) += 1;
  }
  std::uint64_t words[kNumCounters];
  static_assert(sizeof(words) == sizeof(KernelStats));
  std::memcpy(words, &s, sizeof(words));
  for (int i = 0; i < kNumCounters; ++i) {
    EXPECT_EQ(words[i], 1u) << "KernelStats word " << i
                            << " not covered exactly once by the registry";
  }
}

TEST(CounterRegistry, NamesAreUniqueStableKeys) {
  std::set<std::string> names;
  for (const CounterDef& def : counter_registry()) {
    EXPECT_TRUE(names.insert(def.name).second) << "duplicate " << def.name;
    EXPECT_EQ(find_counter(def.name), &def);
    EXPECT_NE(def.desc[0], '\0') << def.name << " has no description";
    EXPECT_NE(def.unit[0], '\0') << def.name << " has no unit";
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kNumCounters));
  EXPECT_EQ(find_counter("no_such_counter"), nullptr);
}

TEST(CounterRegistry, NonSmLocalSetIsExactlyTheL2DramSplit) {
  // The determinism contract excludes exactly four counters at
  // threads > 1: the L2 hit/miss split and the DRAM byte counters.
  std::set<std::string> shifty;
  for (const CounterDef& def : counter_registry()) {
    if (!def.sm_local) shifty.insert(def.name);
  }
  const std::set<std::string> want = {"l2_sector_hits", "l2_sector_misses",
                                      "dram_read_bytes", "dram_write_bytes"};
  EXPECT_EQ(shifty, want);
}

/// A stats block with a distinct value in every counter.
KernelStats sequential_stats(std::uint64_t base) {
  KernelStats s{};
  std::uint64_t v = base;
  for (const CounterDef& def : counter_registry()) {
    counter_ref(s, def) = v++;
  }
  return s;
}

TEST(CounterRegistry, AccumulateEqualityAndDiffAreRegistryDriven) {
  const KernelStats a = sequential_stats(1);
  const KernelStats b = sequential_stats(1000);

  KernelStats sum = a;
  sum += b;  // KernelStats::operator+= forwards to counters_accumulate
  for (const CounterDef& def : counter_registry()) {
    EXPECT_EQ(counter_value(sum, def),
              counter_value(a, def) + counter_value(b, def))
        << def.name;
  }

  EXPECT_TRUE(counters_equal(a, a));
  EXPECT_FALSE(counters_equal(a, b));

  // diff inverts accumulate: (a + b) - a == b, over every counter.
  const KernelStats back = counters_diff(sum, a);
  EXPECT_TRUE(counters_equal(back, b));
}

TEST(CounterRegistry, SmLocalEqualityIgnoresOnlyTheL2DramSplit) {
  const KernelStats a = sequential_stats(1);
  KernelStats b = a;
  b.l2_sector_hits += 5;
  b.l2_sector_misses -= 5;
  b.dram_read_bytes += 32;
  b.dram_write_bytes += 32;
  EXPECT_TRUE(counters_sm_local_equal(a, b));
  EXPECT_FALSE(counters_equal(a, b));
  EXPECT_TRUE(a.sm_local_equal(b));  // the method forwards here

  b.l1_sector_hits += 1;  // any SM-local counter breaks both
  EXPECT_FALSE(counters_sm_local_equal(a, b));
}

TEST(CounterRegistry, PrettyPrintReproducesHistoricalDump) {
  KernelStats s{};
  s.op(Op::kHmma) = 10;
  s.op(Op::kLdg) = 3;
  s.ldg16 = 1;
  s.ldg32 = 2;
  s.ldg64 = 3;
  s.ldg128 = 4;
  s.global_load_requests = 2;
  s.global_load_sectors = 4;  // sectors/req = 2, exact in double
  s.global_store_requests = 5;
  s.global_store_sectors = 6;
  s.l1_sector_hits = 7;
  s.l1_sector_misses = 8;
  s.l2_sector_hits = 9;
  s.l2_sector_misses = 10;
  s.dram_read_bytes = 11;
  s.dram_write_bytes = 12;
  s.smem_load_requests = 13;
  s.smem_store_requests = 14;
  s.smem_load_bytes = 999;   // hidden: merged/exported, never printed
  s.smem_store_bytes = 998;  // hidden
  s.smem_wavefronts = 15;
  s.ctas_launched = 16;
  s.warps_launched = 17;

  const std::string want =
      "instructions: HMMA=10 LDG=3\n"
      "ldg widths: 16b=1 32b=2 64b=3 128b=4\n"
      "global: load_req=2 load_sectors=4 store_req=5 store_sectors=6 "
      "sectors/req=2\n"
      "L1: hits=7 misses=8  L2: hits=9 misses=10  DRAM rd=11B wr=12B\n"
      "smem: ld_req=13 st_req=14 wavefronts=15\n"
      "launch: ctas=16 warps=17";
  EXPECT_EQ(s.to_string(), want);

  // The faults group appears only once a fault actually fired, so
  // fault-free dumps stay byte-identical to the pre-fault output.
  s.faults_injected = 1;
  s.faults_masked = 2;
  EXPECT_EQ(s.to_string(), want + "\nfaults: injected=1 masked=2 detected=0");
}

TEST(CounterRegistry, JsonContainsEveryCounterAndDerivedExactlyOnce) {
  const KernelStats s = sequential_stats(1);
  std::ostringstream os;
  counters_json(os, s);
  const std::string json = os.str();
  for (const CounterDef& def : counter_registry()) {
    const std::string key = std::string("\"") + def.name + "\": ";
    EXPECT_EQ(occurrences(json, key), 1) << def.name;
    // The value is the counter, verbatim.
    const std::size_t pos = json.find(key);
    ASSERT_NE(pos, std::string::npos);
    EXPECT_EQ(json.compare(pos + key.size(),
                           std::to_string(counter_value(s, def)).size(),
                           std::to_string(counter_value(s, def))),
              0)
        << def.name;
  }
  EXPECT_EQ(occurrences(json, "\"derived\""), 1);
  for (const DerivedDef& def : derived_registry()) {
    EXPECT_EQ(occurrences(json, std::string("\"") + def.name + "\": "), 1)
        << def.name;
  }
}

TEST(CounterRegistry, DerivedMetricsMatchTheirMethods) {
  KernelStats s{};
  s.op(Op::kHmma) = 3;
  s.op(Op::kHfma) = 4;
  s.op(Op::kImad) = 5;
  s.l1_sector_misses = 2;
  s.global_load_requests = 4;
  s.global_load_sectors = 10;
  s.smem_load_requests = 8;

  for (const DerivedDef& def : derived_registry()) {
    // Exactly one evaluator per derived metric.
    EXPECT_NE(def.ival == nullptr, def.fval == nullptr) << def.name;
  }
  const auto value_of = [&](const char* name) {
    for (const DerivedDef& def : derived_registry()) {
      if (std::string(def.name) == name) {
        return def.ival != nullptr ? static_cast<double>(def.ival(s))
                                   : def.fval(s);
      }
    }
    ADD_FAILURE() << "derived metric " << name << " not in the registry";
    return -1.0;
  };
  EXPECT_EQ(value_of("total_instructions"),
            static_cast<double>(s.total_instructions()));
  EXPECT_EQ(value_of("math_instructions"), 7.0);
  EXPECT_EQ(value_of("bytes_l2_to_l1"), 64.0);
  EXPECT_EQ(value_of("sectors_per_request"), 2.5);
  EXPECT_EQ(value_of("smem_to_global_load_ratio"), 2.0);
}

}  // namespace
}  // namespace vsparse::gpusim

// Fleet serving contracts: the devices=N load report is byte-identical
// across engine thread counts (including under kernel + device chaos),
// a fleet of one is insensitive to fleet-only knobs, device storms
// drive failover / draining / death and the fleet recovers requests
// bit-identically to their fault-free reference, hedged launches
// reconcile exactly once, flight-recorder bundles round-trip through
// JSON and replay to the identical failure signature, and out-of-range
// configs raise structured errors instead of running with garbage.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "vsparse/serve/recorder.hpp"
#include "vsparse/serve/scheduler.hpp"

namespace vsparse {
namespace {

using serve::LoadConfig;
using serve::LoadResult;

// The CI fleet-soak configuration: four devices under both kernel- and
// device-level storms.  Seed 2021's device storms include a wedge, a
// brownout, flapping, and a permanent death, so every recovery path
// fires within 200 requests.
LoadConfig fleet_chaos_config(int threads) {
  LoadConfig config;
  config.requests = 200;
  config.seed = 2021;
  config.threads = threads;
  config.mean_gap_ticks = 12'000;
  config.chaos = true;
  config.devices = 4;
  config.device_chaos = true;
  return config;
}

TEST(ServeFleet, FleetReportByteIdenticalAcrossThreadsAndRuns) {
  const LoadConfig c1 = fleet_chaos_config(1);
  const std::string serial = serve::run_load(c1).to_json(c1);
  EXPECT_EQ(serial, serve::run_load(c1).to_json(c1));  // reproducible

  const LoadConfig c2 = fleet_chaos_config(2);
  EXPECT_EQ(serial, serve::run_load(c2).to_json(c2));
  const LoadConfig c8 = fleet_chaos_config(8);
  EXPECT_EQ(serial, serve::run_load(c8).to_json(c8));
}

TEST(ServeFleet, FleetOfOneIgnoresFleetOnlyKnobs) {
  // On one device no hedge can trigger, no failover target exists, and
  // device storms never schedule (death always spares device 0 and
  // storms need a fleet) — so fleet-only knobs must not perturb a
  // single-device report.
  LoadConfig base;
  base.requests = 80;
  base.seed = 11;
  base.chaos = true;
  base.mean_gap_ticks = 12'000;
  const LoadResult ref = serve::run_load(base);

  LoadConfig knobs = base;
  knobs.hedge = false;
  knobs.hedge_margin_percent = 90;
  knobs.drain_cooldown_ticks = 1;
  const LoadResult got = serve::run_load(knobs);

  // Behavior (as opposed to the echoed config) is identical: same
  // clock, same outcomes, same per-request trail, same breaker events.
  EXPECT_EQ(ref.final_tick, got.final_tick);
  EXPECT_EQ(ref.goodput_per_mtick, got.goodput_per_mtick);
  EXPECT_EQ(ref.total.completed, got.total.completed);
  EXPECT_EQ(ref.total.failed, got.total.failed);
  EXPECT_EQ(ref.sim_ctas, got.sim_ctas);
  EXPECT_EQ(ref.report_json, got.report_json);
  EXPECT_EQ(ref.request_ledger_json, got.request_ledger_json);
  EXPECT_EQ(ref.health_events_json, got.health_events_json);
  EXPECT_EQ(ref.fleet_events_json, got.fleet_events_json);
  EXPECT_EQ(ref.fleet.hedges, 0u);
  EXPECT_EQ(got.fleet.hedges, 0u);
}

TEST(ServeFleet, DeviceStormsDriveFailoverDrainingAndForensics) {
  const LoadConfig config = fleet_chaos_config(1);
  const LoadResult res = serve::run_load(config);

  // The storms bite at the device level: failovers re-place wedged
  // requests, the device breaker drains, a probe restores, one device
  // dies for good, and the flight recorder captured the failures.
  EXPECT_GT(res.fleet.failovers, 0u);
  EXPECT_GT(res.fleet.drains, 0u);
  EXPECT_GT(res.fleet.restores + res.fleet.drain_reopens, 0u);
  EXPECT_EQ(res.fleet.devices_lost, 1u);  // death storms spare device 0
  EXPECT_GT(res.repro_bundles, 0u);
  EXPECT_GT(res.total.completed, 0u);

  // Placement arithmetic: every executed request is one placement,
  // plus one per launched hedge duplicate and one per failover leg.
  const std::uint64_t executed =
      res.total.completed + res.total.failed + res.total.rejected;
  EXPECT_EQ(res.fleet.placements,
            executed + res.fleet.hedges - res.fleet.hedges_unlaunched +
                res.fleet.failovers);

  // The ledger, events, and repro artifact made it into the report.
  const std::string json = res.to_json(config);
  EXPECT_NE(json.find("\"device_chaos\":{\"enabled\":true"),
            std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"failover\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"dead\""), std::string::npos);
}

TEST(ServeFleet, FailedOverRequestsBitIdenticalToFaultFreeReference) {
  // Device chaos only (no kernel chaos, so verify stays armed): every
  // completed request — including every failed-over one — must be
  // bit-identical to direct unsupervised dispatch on the reference
  // device.  This is the failover-correctness acceptance criterion.
  LoadConfig config;
  config.requests = 200;
  config.seed = 2021;
  config.mean_gap_ticks = 12'000;
  config.devices = 4;
  config.device_chaos = true;
  config.verify = true;
  const LoadResult res = serve::run_load(config);

  EXPECT_GT(res.fleet.failovers, 0u) << "storm must actually displace work";
  EXPECT_EQ(res.mismatches, 0u);
  EXPECT_EQ(res.counter_mismatches, 0u);
  EXPECT_GT(res.total.completed, 0u);
}

TEST(ServeFleet, HedgedRequestsReconcileExactlyOnce) {
  // Margin at 100% makes every interactive placement hedge whenever a
  // second worker is free.  Fault-free, so every hedge has a winner
  // and a cancelled loser, and accounting stays exactly-once.
  LoadConfig config;
  config.requests = 60;
  config.seed = 7;
  config.devices = 2;
  config.hedge_margin_percent = 100;
  config.verify = true;
  const LoadResult res = serve::run_load(config);

  EXPECT_GT(res.fleet.hedges, 0u);
  EXPECT_EQ(res.fleet.hedge_cancelled, res.fleet.hedges)
      << "every fault-free hedge must cancel exactly one loser";
  EXPECT_EQ(res.fleet.failovers, 0u);
  EXPECT_EQ(res.total.completed, res.total.submitted);
  EXPECT_EQ(res.mismatches, 0u) << "hedge winners must stay bit-identical";
  EXPECT_EQ(res.counter_mismatches, 0u);
  const std::uint64_t executed =
      res.total.completed + res.total.failed + res.total.rejected;
  EXPECT_EQ(res.fleet.placements,
            executed + res.fleet.hedges - res.fleet.hedges_unlaunched);

  // Hedging is thread-invariant like everything else.
  LoadConfig c8 = config;
  c8.threads = 8;
  EXPECT_EQ(serve::run_load(config).to_json(config),
            serve::run_load(c8).to_json(c8));
}

TEST(ServeFleet, OperatorDrainMigratesBacklogAndRestores) {
  // Drain device 1 over the middle of the trace: placements migrate to
  // device 0, nothing fails, and device 1 serves again after the
  // window.
  LoadConfig config;
  config.requests = 60;
  config.seed = 7;
  config.devices = 2;
  config.hedge = false;
  config.drains = {{1, 200'000, 700'000}};
  const LoadResult res = serve::run_load(config);

  EXPECT_GT(res.fleet.migrated, 0u)
      << "a drained-but-idle device must show up as migration pressure";
  EXPECT_EQ(res.total.failed, 0u);
  EXPECT_EQ(res.total.completed, res.total.submitted);
  // Both devices served: the drain ended and placements resumed.
  const std::string json = res.to_json(config);
  EXPECT_EQ(json.find("\"placements\":0,"), std::string::npos)
      << "every worker must have taken placements: " << json;
}

TEST(ServeFleet, KernelProbeRestoreRacesDeviceDrainDeterministically) {
  // Kernel breakers (chaos ECC storms) probe and restore while device
  // breakers drain the same workers (device storms + an operator
  // drain).  The interleaving is entirely simulated-clock driven, so
  // the merged health event stream must be byte-identical at any
  // engine thread count.
  LoadConfig c1 = fleet_chaos_config(1);
  c1.drains = {{2, 300'000, 900'000}};
  const LoadResult r1 = serve::run_load(c1);
  EXPECT_GT(r1.health.quarantines, 0u);
  EXPECT_GT(r1.health.half_opens, 0u);
  EXPECT_GT(r1.fleet.drains + r1.fleet.probes, 0u);

  LoadConfig c8 = c1;
  c8.threads = 8;
  const LoadResult r8 = serve::run_load(c8);
  EXPECT_EQ(r1.health_events_json, r8.health_events_json);
  EXPECT_EQ(r1.fleet_events_json, r8.fleet_events_json);
  EXPECT_EQ(r1.to_json(c1), r8.to_json(c8));
}

TEST(ServeFleet, ReproBundlesRoundTripAndReplayToIdenticalSignature) {
  const LoadConfig config = fleet_chaos_config(1);
  const LoadResult res = serve::run_load(config);
  ASSERT_GT(res.repro_bundles, 0u);

  // JSON round-trip: parse what the recorder serialized.
  const std::vector<serve::ReproBundle> bundles =
      serve::parse_repro_json(res.repro_json);
  ASSERT_EQ(bundles.size(), res.repro_bundles);

  for (const serve::ReproBundle& b : bundles) {
    // The digest survives the round-trip (identity fields intact).
    EXPECT_EQ(b.options_digest, b.compute_digest());
    // Replay re-executes the recorded failure standalone and must land
    // on the identical attempt-trail signature, byte for byte.
    const serve::ReplayResult r = serve::replay_bundle(b);
    EXPECT_TRUE(r.signature_match)
        << "request " << b.request_id << " expected " << r.expected_signature
        << " got " << r.got_signature;
  }

  // A tampered bundle must not silently parse.
  EXPECT_THROW(serve::parse_repro_json("{\"schema\":\"bogus\"}"),
               vsparse::Error);
  EXPECT_THROW(serve::parse_repro_json("not json"), vsparse::Error);
}

TEST(ServeFleet, OutOfRangeConfigRaisesStructuredErrors) {
  const auto expect_raise = [](LoadConfig config) {
    EXPECT_THROW(serve::run_load(config), vsparse::Error);
  };
  LoadConfig c;
  c.requests = 0;
  expect_raise(c);
  c = LoadConfig{};
  c.devices = 0;
  expect_raise(c);
  c = LoadConfig{};
  c.devices = 33;
  expect_raise(c);
  c = LoadConfig{};
  c.hedge_margin_percent = 101;
  expect_raise(c);
  c = LoadConfig{};
  c.mean_gap_ticks = 0;
  expect_raise(c);
  c = LoadConfig{};
  c.tenants = serve::default_tenants();
  c.tenants[0].name = "";
  expect_raise(c);
  c = LoadConfig{};
  c.drains = {{5, 0, 100}};  // device outside the fleet of one
  expect_raise(c);
  c = LoadConfig{};
  c.drains = {{0, 100, 100}};  // empty window
  expect_raise(c);
}

}  // namespace
}  // namespace vsparse

// The launch supervisor's contracts (serve/): the error-taxonomy
// property table, the null-policy fast path (supervised fault-free
// dispatch bit- AND counter-identical to unsupervised), retry recovery
// from transient ECC detections, degradation-ladder recovery from
// sticky faults via re-encode, admission control (memory quota, queue
// backpressure), give-up classification, trace-event emission, report
// determinism, and the supervised transformer forward pass surviving
// an injected attention fault storm.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "vsparse/common/rng.hpp"
#include "vsparse/formats/dense.hpp"
#include "vsparse/formats/generate.hpp"
#include "vsparse/gpusim/device.hpp"
#include "vsparse/gpusim/faults.hpp"
#include "vsparse/gpusim/trace/trace.hpp"
#include "vsparse/kernels/dispatch.hpp"
#include "vsparse/serve/policy.hpp"
#include "vsparse/serve/queue.hpp"
#include "vsparse/serve/supervisor.hpp"
#include "vsparse/transformer/model.hpp"

namespace vsparse {
namespace {

using serve::ServePolicy;
using serve::ServeReport;
using serve::ServeRung;
using serve::Supervisor;

gpusim::DeviceConfig test_config() {
  gpusim::DeviceConfig cfg = gpusim::DeviceConfig::volta_v100();
  cfg.dram_capacity = 64u << 20;
  return cfg;
}

// A 64x64x64 V=4 problem with integer-valued data: N = 64 keeps the
// octet SpMM at one CTA per vector row (targeted faults fire exactly
// once), and integer values keep every ladder rung — including the
// dense-GEMM decode — bit-identical to the reference.
struct Problem {
  Cvs a_host;
  DenseMatrix<half_t> b_host{64, 64};
  DenseMatrix<half_t> c_host{64, 64};

  CvsDevice a;
  DenseDevice<half_t> b;
  DenseDevice<half_t> c;

  explicit Problem(gpusim::Device& dev, std::uint64_t seed = 7) {
    Rng rng(seed);
    a_host = make_cvs(64, 64, 4, 0.7, rng);
    for (std::size_t j = 0; j < a_host.values.size(); ++j) {
      a_host.values[j] = half_t(static_cast<float>(1 + (j % 3)));
    }
    b_host.fill_random_int(rng);
    a = to_device(dev, a_host);
    b = to_device(dev, b_host);
    c = to_device(dev, c_host);
  }
};

// Fault-free reference: the same seed-7 problem on a fresh device.
std::vector<half_t> run_clean() {
  gpusim::Device dev(test_config());
  Problem p(dev);
  kernels::spmm(dev, p.a, p.b, p.c, {});
  auto span = p.c.buf.host();
  return {span.begin(), span.end()};
}

// ---- taxonomy property table -----------------------------------------

TEST(ServeTaxonomy, CodePropertiesMatchTheDesignTable) {
  using enum ErrorCode;
  struct Row {
    ErrorCode code;
    const char* name;
    bool retryable;
    bool fallback;
  };
  const Row rows[] = {
      {kMalformedFormat, "malformed_format", false, false},
      {kBadDispatch, "bad_dispatch", false, false},
      {kAllocOverflow, "alloc_overflow", false, false},
      {kOutOfMemory, "out_of_memory", false, true},
      {kQuotaExceeded, "quota_exceeded", false, false},
      {kQueueFull, "queue_full", false, false},
      {kDeadlineExceeded, "deadline_exceeded", false, false},
      {kEccUncorrectable, "ecc_uncorrectable", true, true},
      {kLaunchTimeout, "launch_timeout", false, true},
      {kAbftExhausted, "abft_exhausted", true, true},
      {kDeviceLost, "device_lost", false, false},
      {kInternal, "internal", false, false},
  };
  for (const Row& r : rows) {
    EXPECT_STREQ(error_code_name(r.code), r.name);
    EXPECT_EQ(error_code_retryable(r.code), r.retryable) << r.name;
    EXPECT_EQ(error_code_fallback_eligible(r.code), r.fallback) << r.name;
  }
  const Error e(ErrorCode::kEccUncorrectable, "gpusim.ecc", "boom");
  EXPECT_EQ(e.to_json(),
            "{\"code\":\"ecc_uncorrectable\",\"site\":\"gpusim.ecc\","
            "\"retryable\":true}");
}

// ---- null-policy fast path -------------------------------------------

TEST(ServeFastPath, FaultFreeSupervisedIsBitAndCounterIdentical) {
  gpusim::Device plain_dev(test_config());
  Problem plain(plain_dev);
  kernels::KernelRun plain_run =
      kernels::spmm(plain_dev, plain.a, plain.b, plain.c, {});

  gpusim::Device served_dev(test_config());
  Problem served(served_dev);
  ServePolicy policy;  // defaults; no faults anywhere
  ServeReport report;
  kernels::KernelRun served_run =
      kernels::spmm(served_dev, served.a, served.b, served.c,
                    {.serve = &policy, .serve_report = &report});

  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.retries, 0);
  EXPECT_EQ(report.fallbacks, 0);
  EXPECT_EQ(report.attempts.size(), 1u);
  EXPECT_EQ(report.final_rung, ServeRung::kOctet);

  // Bit-identical output and counter-identical stats (KernelStats is a
  // plain struct of counters; threads=1 makes every field exact).
  const auto pc = plain.c.buf.host();
  const auto sc = served.c.buf.host();
  ASSERT_EQ(pc.size(), sc.size());
  EXPECT_EQ(std::memcmp(pc.data(), sc.data(), pc.size_bytes()), 0);
  EXPECT_EQ(std::memcmp(&plain_run.stats, &served_run.stats,
                        sizeof(gpusim::KernelStats)),
            0);
  EXPECT_EQ(plain_run.config.grid, served_run.config.grid);
}

// ---- retry path -------------------------------------------------------

TEST(ServeRetry, TransientEccDetectionRecoversBitExact) {
  gpusim::Device dev(test_config());
  Problem p(dev);
  gpusim::FaultPlan plan(99, /*ecc_enabled=*/true);
  plan.add_target({gpusim::FaultSite::kDramRead, p.a.values.addr(0),
                   /*bit=*/1, /*n_bits=*/2, /*sticky=*/false});
  dev.set_fault_plan(&plan);

  ServePolicy policy;
  ServeReport report;
  kernels::spmm(dev, p.a, p.b, p.c,
                {.serve = &policy, .serve_report = &report});
  dev.set_fault_plan(nullptr);

  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.retries, 1);
  EXPECT_EQ(report.fallbacks, 0);
  EXPECT_EQ(report.final_rung, ServeRung::kOctet);
  ASSERT_EQ(report.attempts.size(), 2u);
  EXPECT_FALSE(report.attempts[0].ok);
  EXPECT_EQ(report.attempts[0].code, ErrorCode::kEccUncorrectable);
  EXPECT_TRUE(report.attempts[1].ok);
  EXPECT_GT(report.attempts[1].backoff_cycles, 0u);

  const auto got = p.c.buf.host();
  const auto want = run_clean();
  ASSERT_EQ(got.size(), want.size());
  EXPECT_EQ(std::memcmp(got.data(), want.data(), got.size_bytes()), 0);
}

// ---- ladder path ------------------------------------------------------

TEST(ServeLadder, StickyFaultFallsBackToReencodeBitExact) {
  gpusim::Device dev(test_config());
  Problem p(dev);
  gpusim::FaultPlan plan(99, /*ecc_enabled=*/true);
  plan.add_target({gpusim::FaultSite::kDramRead, p.a.values.addr(0),
                   /*bit=*/1, /*n_bits=*/2, /*sticky=*/true});
  dev.set_fault_plan(&plan);

  ServePolicy policy;
  ServeReport report;
  kernels::spmm(dev, p.a, p.b, p.c,
                {.serve = &policy, .serve_report = &report});
  dev.set_fault_plan(nullptr);

  // Every octet-family attempt hits the hard fault on the original
  // encoding; the Blocked-ELL re-encode rung rebuilds A at fresh
  // addresses and completes.
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.final_rung, ServeRung::kBlockedEll);
  EXPECT_EQ(report.fallbacks, 2);  // octet -> octet+ABFT -> blocked-ELL
  EXPECT_GT(report.retries, 0);
  for (const auto& at : report.attempts) {
    if (!at.ok) EXPECT_EQ(at.code, ErrorCode::kEccUncorrectable);
  }

  const auto got = p.c.buf.host();
  const auto want = run_clean();
  ASSERT_EQ(got.size(), want.size());
  EXPECT_EQ(std::memcmp(got.data(), want.data(), got.size_bytes()), 0);
}

TEST(ServeLadder, LadderOffTurnsStickyFaultIntoClassifiedGiveUp) {
  gpusim::Device dev(test_config());
  Problem p(dev);
  gpusim::FaultPlan plan(99, /*ecc_enabled=*/true);
  plan.add_target({gpusim::FaultSite::kDramRead, p.a.values.addr(0),
                   /*bit=*/1, /*n_bits=*/2, /*sticky=*/true});
  dev.set_fault_plan(&plan);

  ServePolicy policy;
  policy.ladder = false;
  ServeReport report;
  bool threw = false;
  try {
    kernels::spmm(dev, p.a, p.b, p.c,
                  {.serve = &policy, .serve_report = &report});
  } catch (const Error& e) {
    threw = true;
    EXPECT_EQ(e.code(), ErrorCode::kEccUncorrectable);
  }
  dev.set_fault_plan(nullptr);

  EXPECT_TRUE(threw);  // direct dispatch rethrows the original error
  EXPECT_FALSE(report.completed);
  EXPECT_TRUE(report.has_error);
  EXPECT_EQ(report.final_code, ErrorCode::kEccUncorrectable);
  EXPECT_EQ(report.fallbacks, 0);
  EXPECT_EQ(report.retries, policy.retry.max_retries);
}

TEST(ServeLadder, WatchdogTimeoutWalksEveryRungThenGivesUp) {
  gpusim::Device dev(test_config());
  Problem p(dev);
  Supervisor sup(dev, ServePolicy{});
  kernels::SpmmOptions options;
  options.sim.watchdog_cta_ops = 16;  // every rung times out
  const ServeReport& report = sup.submit_spmm(p.a, p.b, p.c, options);

  EXPECT_FALSE(report.completed);
  EXPECT_FALSE(report.rejected);
  EXPECT_TRUE(report.has_error);
  EXPECT_EQ(report.final_code, ErrorCode::kLaunchTimeout);
  EXPECT_EQ(report.final_site, "gpusim.watchdog");
  // kLaunchTimeout is fallback-eligible but not retryable: exactly one
  // attempt per eligible rung (octet, +ABFT, ELL, dense, FPU).
  EXPECT_EQ(report.attempts.size(), 5u);
  EXPECT_EQ(report.fallbacks, 4);
  EXPECT_EQ(report.retries, 0);
  EXPECT_EQ(sup.totals().give_ups, 1u);
}

// ---- admission control ------------------------------------------------

TEST(ServeAdmission, QuotaRejectsOversizedRequestBeforeLaunching) {
  gpusim::Device dev(test_config());
  Problem p(dev);
  ServePolicy policy;
  policy.memory_quota_bytes = 1024;  // smaller than any rung workspace
  ServeReport report;
  EXPECT_THROW(kernels::spmm(dev, p.a, p.b, p.c,
                             {.serve = &policy, .serve_report = &report}),
               Error);
  EXPECT_TRUE(report.rejected);
  EXPECT_EQ(report.final_code, ErrorCode::kQuotaExceeded);
  EXPECT_TRUE(report.attempts.empty());  // nothing launched
}

TEST(ServeAdmission, BoundedQueueBackpressure) {
  serve::BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(0));
  EXPECT_TRUE(q.try_push(1));
  EXPECT_FALSE(q.try_push(2));  // full: rejected, counted
  EXPECT_EQ(q.accepted(), 2u);
  EXPECT_EQ(q.rejected(), 1u);
  EXPECT_EQ(q.try_pop().value(), 0);
  EXPECT_TRUE(q.try_push(3));
  q.close();
  EXPECT_FALSE(q.try_push(4));  // closed: rejected
  EXPECT_EQ(q.pop_wait().value(), 1);
  EXPECT_EQ(q.pop_wait().value(), 3);
  EXPECT_FALSE(q.pop_wait().has_value());  // closed and drained
}

TEST(ServeAdmission, RecordRejectionKeepsReportNumberingDense) {
  gpusim::Device dev(test_config());
  Problem p(dev);
  Supervisor sup(dev, ServePolicy{});
  sup.submit_spmm(p.a, p.b, p.c);
  sup.record_rejection("spmm", ErrorCode::kQueueFull, "serve.queue");
  sup.submit_spmm(p.a, p.b, p.c);

  ASSERT_EQ(sup.reports().size(), 3u);
  EXPECT_EQ(sup.reports()[0].request_id, 0u);
  EXPECT_EQ(sup.reports()[1].request_id, 1u);
  EXPECT_EQ(sup.reports()[2].request_id, 2u);
  EXPECT_TRUE(sup.reports()[1].rejected);
  EXPECT_EQ(sup.reports()[1].final_code, ErrorCode::kQueueFull);
  EXPECT_EQ(sup.totals().requests, 3u);
  EXPECT_EQ(sup.totals().completed, 2u);
  EXPECT_EQ(sup.totals().rejected, 1u);
}

// ---- backoff arithmetic ----------------------------------------------

TEST(ServeBackoff, ScheduleSaturatesInsteadOfWrapping) {
  serve::RetryPolicy retry;
  retry.backoff_base_cycles = std::uint64_t{1} << 20;
  retry.backoff_multiplier = 8;
  retry.seed = 2021;

  // base * 8^(k-1) crosses kMaxBackoffCycles (2^40) at k = 8; from
  // there every attempt — including soak-scale counts that would wrap
  // a naive pow — plateaus at the cap plus sub-base jitter.
  for (std::int64_t step = 1; step <= 1'000'000'000; step = step * 7 + 1) {
    const int attempt = static_cast<int>(step);
    const std::uint64_t wait =
        serve::backoff_cycles_for(retry, /*request_id=*/42, /*rung=*/0,
                                  attempt);
    EXPECT_LT(wait, serve::kMaxBackoffCycles + retry.backoff_base_cycles)
        << "attempt " << attempt;
    if (attempt >= 8) {
      EXPECT_GE(wait, serve::kMaxBackoffCycles) << "attempt " << attempt;
    }
    // Deterministic: the same (seed, request, rung, attempt) tuple
    // always yields the same schedule entry.
    EXPECT_EQ(wait, serve::backoff_cycles_for(retry, 42, 0, attempt));
  }

  // Unjittered floor below saturation: attempt k waits at least
  // base * 8^(k-1).
  EXPECT_GE(serve::backoff_cycles_for(retry, 42, 0, 1),
            retry.backoff_base_cycles);
  EXPECT_GE(serve::backoff_cycles_for(retry, 42, 0, 3),
            retry.backoff_base_cycles * 64);

  // Degenerate knobs stay safe: no base means no wait, multiplier <= 1
  // never grows, attempt <= 0 never charges.
  serve::RetryPolicy zero = retry;
  zero.backoff_base_cycles = 0;
  EXPECT_EQ(serve::backoff_cycles_for(zero, 42, 0, 5), 0u);
  EXPECT_EQ(serve::backoff_cycles_for(retry, 42, 0, 0), 0u);
  serve::RetryPolicy flat = retry;
  flat.backoff_multiplier = 1;
  EXPECT_LT(serve::backoff_cycles_for(flat, 42, 0, 1'000'000),
            2 * flat.backoff_base_cycles);
}

TEST(ServeBackoff, JitterDecorrelatesRequestsAndRungs) {
  serve::RetryPolicy retry;  // defaults: base 1024, multiplier 2
  const std::uint64_t a = serve::backoff_cycles_for(retry, 1, 0, 1);
  const std::uint64_t b = serve::backoff_cycles_for(retry, 2, 0, 1);
  const std::uint64_t c = serve::backoff_cycles_for(retry, 1, 1, 1);
  EXPECT_NE(a, b);  // different request
  EXPECT_NE(a, c);  // different rung
}

// ---- kernel-health gate routing ---------------------------------------

bool deny_octet_gate(void*, const char* kernel, bool /*abft*/) {
  return std::string_view(kernel) != "spmm_octet";
}

bool deny_all_gate(void*, const char*, bool) { return false; }

TEST(ServeGate, QuarantinedKernelIsRoutedAround) {
  gpusim::Device dev(test_config());
  Problem p(dev);
  ServePolicy policy;
  policy.kernel_gate = &deny_octet_gate;  // octet + octet+ABFT quarantined
  Supervisor sup(dev, policy);
  const ServeReport& report = sup.submit_spmm(p.a, p.b, p.c);

  // Fault-free, but the gate removed the first two rungs: the request
  // lands directly on blocked-ELL with no retries or fallbacks burned.
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.final_rung, ServeRung::kBlockedEll);
  EXPECT_EQ(report.attempts.size(), 1u);
  EXPECT_EQ(report.retries, 0);

  const auto got = p.c.buf.host();
  const auto want = run_clean();
  ASSERT_EQ(got.size(), want.size());
  EXPECT_EQ(std::memcmp(got.data(), want.data(), got.size_bytes()), 0);
}

TEST(ServeGate, AllQuarantinedFailsStaticToUnfilteredLadder) {
  gpusim::Device dev(test_config());
  Problem p(dev);
  ServePolicy policy;
  policy.kernel_gate = &deny_all_gate;
  Supervisor sup(dev, policy);
  const ServeReport& report = sup.submit_spmm(p.a, p.b, p.c);

  // An all-quarantined palette must still serve: the unfiltered ladder
  // applies and the fault-free entry rung completes.
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.final_rung, ServeRung::kOctet);
  EXPECT_EQ(report.attempts.size(), 1u);
}

// ---- report numbering at soak scale -----------------------------------

TEST(ServeNumbering, StaysDenseAcrossALargeMixedSoak) {
  gpusim::Device dev(test_config());
  Problem p(dev);
  Supervisor sup(dev, ServePolicy{});
  // A rejection-heavy soak (rejections are cheap — nothing launches)
  // with periodic real launches mixed in: request ids must stay dense
  // with no gaps or reuse across 50k reports.
  constexpr std::size_t kRequests = 50'000;
  for (std::size_t i = 0; i < kRequests; ++i) {
    if (i % 10'000 == 0) {
      sup.submit_spmm(p.a, p.b, p.c);
    } else {
      sup.record_rejection("spmm", ErrorCode::kQueueFull, "serve.queue");
    }
  }
  ASSERT_EQ(sup.reports().size(), kRequests);
  for (std::size_t i = 0; i < kRequests; ++i) {
    ASSERT_EQ(sup.reports()[i].request_id, i);
  }
  EXPECT_EQ(sup.totals().requests, kRequests);
  EXPECT_EQ(sup.totals().completed, 5u);
  EXPECT_EQ(sup.totals().rejected, kRequests - 5);
}

// ---- observability ----------------------------------------------------

TEST(ServeTrace, RetryFallbackAndGiveUpEventsAreEmitted) {
  auto count = [](const gpusim::Trace& trace, gpusim::TraceEventKind kind) {
    std::size_t n = 0;
    for (const auto& launch : trace.launches()) {
      for (const auto& ev : launch.events) {
        if (ev.kind == kind) ++n;
      }
    }
    return n;
  };

  gpusim::Device dev(test_config());
  Problem p(dev);
  gpusim::FaultPlan plan(99, /*ecc_enabled=*/true);
  plan.add_target({gpusim::FaultSite::kDramRead, p.a.values.addr(0),
                   /*bit=*/1, /*n_bits=*/2, /*sticky=*/true});
  dev.set_fault_plan(&plan);

  gpusim::Trace trace;
  ServePolicy policy;
  kernels::SpmmOptions options{.serve = &policy};
  options.sim.trace.sink = &trace;
  kernels::spmm(dev, p.a, p.b, p.c, options);
  dev.set_fault_plan(nullptr);

  EXPECT_GT(count(trace, gpusim::TraceEventKind::kServeRetry), 0u);
  EXPECT_GT(count(trace, gpusim::TraceEventKind::kServeFallback), 0u);
  EXPECT_EQ(count(trace, gpusim::TraceEventKind::kServeGiveUp), 0u);
}

TEST(ServeReportJson, DeterministicAcrossRunsAndThreadCounts) {
  auto run_once = [](int threads) {
    gpusim::Device dev(test_config());
    Problem p(dev);
    gpusim::FaultPlan plan(99, /*ecc_enabled=*/true);
    plan.add_target({gpusim::FaultSite::kDramRead, p.a.values.addr(0),
                     /*bit=*/1, /*n_bits=*/2, /*sticky=*/false});
    dev.set_fault_plan(&plan);
    ServePolicy policy;
    policy.retry.seed = 2021;
    ServeReport report;
    kernels::SpmmOptions options{.serve = &policy, .serve_report = &report};
    options.sim.threads = threads;
    kernels::spmm(dev, p.a, p.b, p.c, options);
    dev.set_fault_plan(nullptr);
    return report.to_json();
  };
  const std::string serial = run_once(1);
  EXPECT_EQ(serial, run_once(1));  // reproducible
  EXPECT_EQ(serial, run_once(2));  // thread-invariant
  EXPECT_EQ(serial, run_once(8));
}

// ---- supervised transformer under an attention fault storm ------------

TEST(ServeTransformer, ForwardPassSurvivesAttentionFaultStorm) {
  transformer::ModelConfig cfg;
  cfg.seq = 256;
  cfg.layers = 1;
  cfg.heads = 2;
  cfg.head_dim = 64;
  cfg.ffn_dim = 256;
  cfg.v = 8;
  cfg.band = 64;
  cfg.batch = 1;
  cfg.mode = transformer::Mode::kSparseHalf;

  ServePolicy policy;
  cfg.serve = &policy;

  // Transient double-bit upset on the attention mask's col_idx buffer,
  // SEC-DED detected on DRAM read.  The mask is the first upload on the
  // fresh device, so row_ptr sits at arena address 0 and col_idx at the
  // next 256-byte boundary (33 x 4-byte row_ptr entries round up to
  // 256).  Only the supervised SDDMM and SpMM launches read col_idx —
  // the sparse softmax between them reads row_ptr alone — so every
  // strike lands inside the fault boundary, and the per-SM transient
  // arming turns each strike into one detected attempt followed by a
  // clean retry.
  gpusim::FaultPlan storm(2021, /*ecc_enabled=*/true);
  storm.add_target({gpusim::FaultSite::kDramRead, /*addr=*/256,
                    /*bit=*/1, /*n_bits=*/2, /*sticky=*/false});
  cfg.attention_storm = &storm;

  gpusim::Device dev(test_config());
  transformer::ForwardResult res =
      transformer::run_transformer_forward(dev, cfg, /*seed=*/5);

  EXPECT_GT(res.serve_retries + res.serve_fallbacks, 0u);
  EXPECT_GT(res.total_cycles(), 0.0);

  // The storm-free pass reports no supervisor activity at all.
  transformer::ModelConfig clean_cfg = cfg;
  clean_cfg.serve = nullptr;
  clean_cfg.attention_storm = nullptr;
  gpusim::Device clean_dev(test_config());
  transformer::ForwardResult clean =
      transformer::run_transformer_forward(clean_dev, clean_cfg, /*seed=*/5);
  EXPECT_EQ(clean.serve_retries, 0u);
  EXPECT_EQ(clean.serve_fallbacks, 0u);
  EXPECT_GT(clean.total_cycles(), 0.0);
}

}  // namespace
}  // namespace vsparse

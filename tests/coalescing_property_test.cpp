// Parameterized property tests for the memory-system model — the
// machinery behind guideline V's numbers.  For strided warp accesses,
// the number of touched sectors has a closed form; the simulator must
// match it for every (element size, stride) combination.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "vsparse/common/rng.hpp"
#include "vsparse/fp16/vec.hpp"
#include "vsparse/gpusim/device.hpp"
#include "vsparse/gpusim/engine/lanes.hpp"
#include "vsparse/gpusim/engine/launch.hpp"
#include "vsparse/gpusim/engine/launch_config.hpp"

namespace vsparse::gpusim {
namespace {

DeviceConfig small_config() {
  DeviceConfig cfg;
  cfg.dram_capacity = 32 << 20;
  cfg.num_sms = 2;
  return cfg;
}

/// Expected unique 32 B sectors for 32 lanes of `width`-byte accesses
/// with byte stride `stride` from a 256-aligned base.
std::uint64_t expected_sectors(int width, int stride) {
  std::set<std::uint64_t> sectors;
  for (int lane = 0; lane < 32; ++lane) {
    sectors.insert(static_cast<std::uint64_t>(lane) * stride / 32);
  }
  (void)width;  // naturally aligned accesses never straddle sectors
  return sectors.size();
}

class CoalescingSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CoalescingSweep, SectorCountMatchesClosedForm) {
  const auto [width, stride_mult] = GetParam();
  const int stride = width * stride_mult;
  Device dev(small_config());
  auto buf = dev.alloc<std::uint8_t>(static_cast<std::size_t>(stride) * 64 +
                                     256);
  LaunchConfig cfg;
  KernelStats s = launch(dev, cfg, [&](Cta& cta) {
    Warp w = cta.warp(0);
    AddrLanes addr;
    for (int lane = 0; lane < 32; ++lane) {
      addr[static_cast<std::size_t>(lane)] =
          buf.addr(static_cast<std::size_t>(lane) *
                   static_cast<std::size_t>(stride));
    }
    switch (width) {
      case 2: {
        Lanes<half_t> d;
        w.ldg(addr, d);
        break;
      }
      case 4: {
        Lanes<float> d;
        w.ldg(addr, d);
        break;
      }
      case 8: {
        Lanes<half4> d;
        w.ldg(addr, d);
        break;
      }
      default: {
        Lanes<half8> d;
        w.ldg(addr, d);
        break;
      }
    }
  });
  EXPECT_EQ(s.global_load_sectors, expected_sectors(width, stride))
      << "width=" << width << " stride=" << stride;
  EXPECT_EQ(s.global_load_requests, 1u);
  // Every touched sector either hit or missed in L1.
  EXPECT_EQ(s.l1_sector_hits + s.l1_sector_misses, s.global_load_sectors);
  // And every L1 miss either hit or missed in L2 (conservation).
  EXPECT_EQ(s.l2_sector_hits + s.l2_sector_misses, s.l1_sector_misses);
  // Cold caches: everything misses all the way to DRAM.
  EXPECT_EQ(s.dram_read_bytes, s.global_load_sectors * 32);
}

INSTANTIATE_TEST_SUITE_P(
    WidthStride, CoalescingSweep,
    ::testing::Combine(::testing::Values(2, 4, 8, 16),
                       ::testing::Values(1, 2, 4, 8, 16)));

// Property: repeating any access pattern back-to-back hits 100% in L1
// (the working set of one warp request always fits).
class ReuseSweep : public ::testing::TestWithParam<int> {};

TEST_P(ReuseSweep, ImmediateReuseAlwaysHits) {
  const int stride = GetParam();
  Device dev(small_config());
  auto buf = dev.alloc<std::uint8_t>(static_cast<std::size_t>(stride) * 64 +
                                     256);
  LaunchConfig cfg;
  KernelStats s = launch(dev, cfg, [&](Cta& cta) {
    Warp w = cta.warp(0);
    AddrLanes addr;
    Lanes<float> d;
    for (int lane = 0; lane < 32; ++lane) {
      addr[static_cast<std::size_t>(lane)] =
          buf.addr(static_cast<std::size_t>(lane) *
                   static_cast<std::size_t>(stride));
    }
    w.ldg(addr, d);
    w.ldg(addr, d);
  });
  EXPECT_EQ(s.l1_sector_hits, s.global_load_sectors / 2) << stride;
}

INSTANTIATE_TEST_SUITE_P(Strides, ReuseSweep,
                         ::testing::Values(4, 16, 64, 256, 1024));

// Property: a randomly-generated batch of naturally-aligned accesses
// never reports more sectors than active lanes nor fewer than
// ceil(total unique bytes / 32).
TEST(CoalescingRandom, SectorBoundsHold) {
  Rng rng(99);
  Device dev(small_config());
  auto buf = dev.alloc<std::uint8_t>(1 << 20);
  LaunchConfig cfg;
  for (int trial = 0; trial < 200; ++trial) {
    KernelStats s = launch(dev, cfg, [&](Cta& cta) {
      Warp w = cta.warp(0);
      AddrLanes addr;
      Lanes<float> d;
      std::uint32_t mask = 0;
      int active = 0;
      for (int lane = 0; lane < 32; ++lane) {
        if (rng.bernoulli(0.7f)) {
          addr[static_cast<std::size_t>(lane)] =
              buf.addr(rng.uniform_u64((1 << 18)) * 4);
          mask |= 1u << lane;
          ++active;
        }
      }
      if (mask == 0) {
        addr[0] = buf.addr(0);
        mask = 1;
        active = 1;
      }
      w.ldg(addr, d, mask);
      EXPECT_LE(active, 32);
    });
    EXPECT_LE(s.global_load_sectors, 32u);
    EXPECT_GE(s.global_load_sectors, 1u);
  }
}

}  // namespace
}  // namespace vsparse::gpusim

// Profile explorer: run any shipped SpMM kernel on a chosen problem and
// print the full nsight-style counter dump plus the cost-model
// breakdown — the tool to reproduce the paper's per-kernel analysis
// (Tables 1-2) on your own configurations.
//
// Usage: profile_explorer [kernel] [M] [K] [N] [V] [sparsity]
//   kernel in {octet, wmma, fpu, blocked-ell, dense}
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "vsparse/common/rng.hpp"
#include "vsparse/formats/generate.hpp"
#include "vsparse/kernels/dense/gemm.hpp"
#include "vsparse/kernels/spmm/spmm_blocked_ell.hpp"
#include "vsparse/kernels/spmm/spmm_fpu.hpp"
#include "vsparse/kernels/spmm/spmm_octet.hpp"
#include "vsparse/kernels/spmm/spmm_wmma.hpp"

int main(int argc, char** argv) {
  using namespace vsparse;
  const char* kernel = argc > 1 ? argv[1] : "octet";
  const int m = argc > 2 ? std::atoi(argv[2]) : 2048;
  const int k = argc > 3 ? std::atoi(argv[3]) : 1024;
  const int n = argc > 4 ? std::atoi(argv[4]) : 256;
  const int v = argc > 5 ? std::atoi(argv[5]) : 4;
  const double sparsity = argc > 6 ? std::atof(argv[6]) : 0.9;

  gpusim::DeviceConfig hw;
  gpusim::DeviceConfig cfg = hw;
  cfg.dram_capacity = std::size_t{2} << 30;
  gpusim::Device dev(cfg);
  Rng rng(1);

  auto b = dev.alloc<half_t>(static_cast<std::size_t>(k) * n);
  auto c = dev.alloc<half_t>(static_cast<std::size_t>(m) * n);
  DenseDevice<half_t> db{b, k, n, n, Layout::kRowMajor};
  DenseDevice<half_t> dc{c, m, n, n, Layout::kRowMajor};

  kernels::KernelRun run;
  if (std::strcmp(kernel, "dense") == 0) {
    auto a = dev.alloc<half_t>(static_cast<std::size_t>(m) * k);
    DenseDevice<half_t> da{a, m, k, k, Layout::kRowMajor};
    run = kernels::hgemm_tcu(dev, da, db, dc);
  } else if (std::strcmp(kernel, "blocked-ell") == 0) {
    BlockedEll ell = make_blocked_ell(m, k, v, sparsity, rng);
    auto dell = to_device(dev, ell);
    run = kernels::spmm_blocked_ell(dev, dell, db, dc);
  } else {
    Cvs a_host = make_cvs(m, k, v, sparsity, rng, 0.25);
    auto a = to_device(dev, a_host);
    if (std::strcmp(kernel, "octet") == 0) {
      run = kernels::spmm_octet(dev, a, db, dc);
    } else if (std::strcmp(kernel, "wmma") == 0) {
      run = kernels::spmm_wmma_warp(dev, a, db, dc);
    } else if (std::strcmp(kernel, "fpu") == 0) {
      run = kernels::spmm_fpu_subwarp(dev, a, db, dc);
    } else {
      std::fprintf(stderr,
                   "unknown kernel '%s' (octet|wmma|fpu|blocked-ell|dense)\n",
                   kernel);
      return 1;
    }
  }

  std::printf("kernel %s on %dx%dx%d, V=%d, %.0f%% sparse\n",
              run.config.profile.name.c_str(), m, k, n, v, sparsity * 100);
  std::printf("grid=%d ctas x %d threads, %zu B smem, %d regs/thread, "
              "~%d SASS instrs\n\n",
              run.config.grid, run.config.cta_threads, run.config.smem_bytes,
              run.config.profile.regs_per_thread,
              run.config.profile.static_instrs);
  std::printf("%s\n", run.stats.to_string().c_str());

  const auto est = run.cost(hw);
  std::printf("\ncost model: %.0f cycles (%.1f us @1.38GHz), bound by %s\n",
              est.cycles, est.cycles / 1.38e3, est.bound_by.c_str());
  std::printf("  issue %.0f | tcu %.0f | fma %.0f | alu %.0f | lsu %.0f | "
              "smem %.0f | l1 %.0f | l2 %.0f | dram %.0f\n",
              est.issue_cycles, est.tcu_cycles, est.fma_cycles,
              est.alu_cycles, est.lsu_cycles, est.smem_cycles, est.l1_cycles,
              est.l2_cycles, est.dram_cycles);
  std::printf("  stalls: no-instruction %.1f%%, wait %.1f%%, "
              "short-scoreboard %.1f%%\n",
              est.stall_no_instruction * 100, est.stall_wait * 100,
              est.stall_short_scoreboard * 100);
  std::printf("  occupancy: %d CTAs/SM, %d warps/SM, %.2f waves\n",
              est.ctas_per_sm, est.active_warps_per_sm, est.waves);
  return 0;
}

// Quickstart: sparse x dense matrix multiplication with the
// column-vector sparse encoding and the octet-tiling SpMM kernel.
//
//   1. build a dense matrix, prune it at 4x1 vector granularity,
//   2. encode it (Cvs), upload operands to the simulated GPU,
//   3. run spmm_octet, verify against the host reference,
//   4. read out the hardware counters and the performance model,
//   5. do the same round trip in one call with the dispatch host API.
//
// Build: cmake --build build --target quickstart && ./build/examples/quickstart
#include <cstdio>

#include "vsparse/common/rng.hpp"
#include "vsparse/formats/generate.hpp"
#include "vsparse/formats/reference.hpp"
#include "vsparse/kernels/dispatch.hpp"
#include "vsparse/kernels/spmm/spmm_octet.hpp"

int main() {
  using namespace vsparse;

  // ---- 1. a 256x128 matrix, 90% sparse at 4x1 vector grain -----------
  const int m = 256, k = 128, n = 64, v = 4;
  Rng rng(2021);
  Cvs a = make_cvs(m, k, v, /*sparsity=*/0.9, rng);
  std::printf("A: %dx%d, V=%d, %lld nonzero vectors (%.1f%% sparse)\n", m, k,
              v, static_cast<long long>(a.nnz_vectors()), a.sparsity() * 100);

  DenseMatrix<half_t> b(k, n);
  b.fill_random(rng);

  // ---- 2. upload to the simulated V100 --------------------------------
  gpusim::Device dev;  // DeviceConfig::volta_v100() by default
  CvsDevice da = to_device(dev, a);
  DenseDevice<half_t> db = to_device(dev, b);
  DenseMatrix<half_t> c_init(m, n);
  DenseDevice<half_t> dc = to_device(dev, c_init);

  // ---- 3. run the paper's kernel and verify ----------------------------
  kernels::KernelRun run = kernels::spmm_octet(dev, da, db, dc);
  DenseMatrix<half_t> c = from_device(dc);
  DenseMatrix<half_t> ref = spmm_reference(a, b);
  double max_err = 0;
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      max_err = std::max<double>(max_err,
                         std::abs(static_cast<float>(c.at(i, j)) -
                                  static_cast<float>(ref.at(i, j))));
    }
  }
  std::printf("max |kernel - reference| = %g (fp16 rounding only)\n", max_err);

  // ---- 4. counters + model ---------------------------------------------
  std::printf("\nhardware counters:\n%s\n", run.stats.to_string().c_str());
  const auto est = run.cost(dev.config());
  std::printf("\nmodel: %.0f cycles, bound by %s, sectors/request %.2f\n",
              est.cycles, est.bound_by.c_str(),
              run.stats.sectors_per_request());

  // ---- 5. or let the dispatch layer do the whole round trip ------------
  // spmm_host picks the kernel (octet for V >= 2), sizes a device, and
  // returns the result *with* the KernelRun, so cost and counters are
  // available without managing device buffers.
  auto host = kernels::spmm_host(a, b);
  std::printf("\nhost API: %s, %.0f model cycles, %llu HMMA instructions\n",
              host.run.config.profile.name.c_str(),
              host.run.cycles(dev.config()),
              static_cast<unsigned long long>(
                  host.run.stats.op(gpusim::Op::kHmma)));

  return max_err < 1.0 ? 0 : 1;
}

// Pruning-deployment demo: take a dense "weight" layer, magnitude-prune
// it at V x 1 column-vector granularity (the algorithm-side workflow
// the paper's encoding enables), encode to CVS, and compare every SpMM
// kernel the library ships on the resulting matrix.
//
// Usage: prune_and_deploy [sparsity] [V]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "vsparse/common/rng.hpp"
#include "vsparse/formats/generate.hpp"
#include "vsparse/formats/reference.hpp"
#include "vsparse/kernels/dense/gemm.hpp"
#include "vsparse/kernels/spmm/spmm_blocked_ell.hpp"
#include "vsparse/kernels/spmm/spmm_fpu.hpp"
#include "vsparse/kernels/spmm/spmm_octet.hpp"
#include "vsparse/kernels/spmm/spmm_wmma.hpp"

namespace {

// Magnitude pruning at Vx1 granularity: keep the (1-sparsity) fraction
// of column vectors with the largest L2 norm.
vsparse::Cvs magnitude_prune(const vsparse::DenseMatrix<vsparse::half_t>& w,
                             int v, double sparsity) {
  using namespace vsparse;
  const int vec_rows = w.rows() / v;
  struct Scored {
    float norm;
    int vr, col;
  };
  std::vector<Scored> scored;
  scored.reserve(static_cast<std::size_t>(vec_rows) * w.cols());
  for (int vr = 0; vr < vec_rows; ++vr) {
    for (int c = 0; c < w.cols(); ++c) {
      float norm = 0;
      for (int t = 0; t < v; ++t) {
        const float x = static_cast<float>(w.at(vr * v + t, c));
        norm += x * x;
      }
      scored.push_back({norm, vr, c});
    }
  }
  const auto keep = static_cast<std::size_t>(
      static_cast<double>(scored.size()) * (1.0 - sparsity));
  std::nth_element(scored.begin(), scored.begin() + static_cast<long>(keep),
                   scored.end(),
                   [](const Scored& a, const Scored& b) { return a.norm > b.norm; });
  DenseMatrix<half_t> pruned(w.rows(), w.cols());
  for (std::size_t i = 0; i < keep; ++i) {
    for (int t = 0; t < v; ++t) {
      pruned.at(scored[i].vr * v + t, scored[i].col) =
          w.at(scored[i].vr * v + t, scored[i].col);
    }
  }
  return Cvs::from_dense(pruned, v);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vsparse;
  const double sparsity = argc > 1 ? std::atof(argv[1]) : 0.9;
  const int v = argc > 2 ? std::atoi(argv[2]) : 4;
  const int m = 1024, k = 512, n = 256;

  Rng rng(11);
  DenseMatrix<half_t> w(m, k);
  w.fill_random(rng, -1.0f, 1.0f);
  Cvs pruned = magnitude_prune(w, v, sparsity);
  std::printf("pruned %dx%d layer at %dx1 grain: %.1f%% sparse, "
              "%lld vectors kept\n",
              m, k, v, pruned.sparsity() * 100,
              static_cast<long long>(pruned.nnz_vectors()));

  gpusim::DeviceConfig hw;
  gpusim::Device dev;
  auto da = to_device(dev, pruned);
  DenseMatrix<half_t> b(k, n);
  b.fill_random(rng);
  auto db = to_device(dev, b);
  DenseMatrix<half_t> ci(m, n);
  auto dc = to_device(dev, ci);

  // Dense baseline on the unpruned weights.
  auto dw = to_device(dev, w);
  DenseMatrix<half_t> cd(m, n);
  auto dcd = to_device(dev, cd);
  const double dense = kernels::hgemm_tcu(dev, dw, db, dcd).cycles(hw);

  std::printf("\n%-22s %12s %10s\n", "kernel", "cycles", "speedup");
  std::printf("%-22s %12.0f %9.2fx\n", "cublasHgemm (dense)", dense, 1.0);
  const auto row = [&](const char* name, const kernels::KernelRun& r) {
    std::printf("%-22s %12.0f %9.2fx\n", name, r.cycles(hw),
                dense / r.cycles(hw));
  };
  row("spmm_octet (paper)", kernels::spmm_octet(dev, da, db, dc));
  row("spmm_wmma (classic)", kernels::spmm_wmma_warp(dev, da, db, dc));
  row("spmm_fpu (sputnik)", kernels::spmm_fpu_subwarp(dev, da, db, dc));
  BlockedEll ell = make_blocked_ell(m, k, v, sparsity, rng);
  auto dell = to_device(dev, ell);
  row("blocked-ELL (cusparse)", kernels::spmm_blocked_ell(dev, dell, db, dc));

  // Deployment-quality check: kernel output equals the reference SpMM.
  DenseMatrix<half_t> got = from_device(dc);
  // (dc holds the blocked-ELL result now; rerun octet for the check.)
  kernels::spmm_octet(dev, da, db, dc);
  got = from_device(dc);
  DenseMatrix<half_t> ref = spmm_reference(pruned, b);
  double max_err = 0;
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      max_err = std::max<double>(max_err,
                         std::abs(static_cast<float>(got.at(i, j)) -
                                  static_cast<float>(ref.at(i, j))));
    }
  }
  std::printf("\noctet kernel vs reference: max abs err %g\n", max_err);
  return 0;
}

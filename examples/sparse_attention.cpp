// Sparse self-attention demo (§7.4): builds the paper's banded+random
// attention mask at 8x1 grain, runs one attention head through the
// SDDMM -> sparse softmax -> SpMM pipeline, compares against the dense
// head, and prints the latency breakdown Fig. 20 reports.
//
// Usage: sparse_attention [seq] [head_dim] [sparsity]
#include <cstdio>
#include <cstdlib>

#include "vsparse/common/rng.hpp"
#include "vsparse/formats/generate.hpp"
#include "vsparse/transformer/attention.hpp"

int main(int argc, char** argv) {
  using namespace vsparse;
  const int seq = argc > 1 ? std::atoi(argv[1]) : 1024;
  const int d = argc > 2 ? std::atoi(argv[2]) : 64;
  const double sparsity = argc > 3 ? std::atof(argv[3]) : 0.9;
  VSPARSE_CHECK(seq % 64 == 0 && d % 64 == 0);

  Rng rng(7);
  DenseMatrix<half_t> q(seq, d), k(seq, d), v(seq, d);
  q.fill_random(rng, -0.5f, 0.5f);
  k.fill_random(rng, -0.5f, 0.5f);
  v.fill_random(rng, -0.5f, 0.5f);
  Cvs mask = make_attention_mask(seq, /*v=*/8, /*band=*/256, sparsity, rng);
  std::printf("attention: seq=%d head_dim=%d mask %.1f%% sparse "
              "(band 256 + random, 8x1 grain)\n",
              seq, d, mask.sparsity() * 100);

  gpusim::DeviceConfig hw;
  gpusim::Device dev;
  auto dq = to_device(dev, q);
  auto dk = to_device(dev, k);
  auto dv = to_device(dev, v);
  auto dmask = to_device(dev, mask);
  auto scratch = dev.alloc<half_t>(mask.values.size());
  DenseMatrix<half_t> out(seq, d);
  auto dout = to_device(dev, out);

  auto sp = transformer::sparse_attention_head(dev, dq, dk, dv, dmask,
                                               scratch, dout);

  DenseMatrix<half_t> scores(seq, seq);
  auto dscores = to_device(dev, scores);
  DenseMatrix<half_t> out2(seq, d);
  auto dout2 = to_device(dev, out2);
  auto de = transformer::dense_attention_head(dev, dq, dk, dv, dscores,
                                              dout2);

  const auto kc = [&](const kernels::KernelRun& r) {
    return r.cycles(hw) / 1000.0;
  };
  std::printf("\n%-10s %10s %10s %10s %10s\n", "", "QK^T", "Softmax", "AV",
              "total");
  std::printf("%-10s %9.1fk %9.1fk %9.1fk %9.1fk\n", "dense", kc(de.qk),
              kc(de.softmax), kc(de.av),
              de.total_cycles(hw) / 1000.0);
  std::printf("%-10s %9.1fk %9.1fk %9.1fk %9.1fk\n", "sparse", kc(sp.qk),
              kc(sp.softmax), kc(sp.av),
              sp.total_cycles(hw) / 1000.0);
  std::printf("\nattention-core speedup: %.2fx; scores memory: %.1f MB "
              "dense vs %.2f MB sparse\n",
              de.total_cycles(hw) / sp.total_cycles(hw),
              static_cast<double>(seq) * seq * 2 / (1 << 20),
              static_cast<double>(mask.values.size()) * 2 / (1 << 20));

  // Sanity: the two heads agree where the mask is dense (the band).
  DenseMatrix<half_t> o1 = from_device(dout);
  double band_dot = 0, band_norm = 0;
  DenseMatrix<half_t> o2 = from_device(dout2);
  for (int j = 0; j < d; ++j) {
    const double x = static_cast<float>(o1.at(0, j));
    const double y = static_cast<float>(o2.at(0, j));
    band_dot += x * y;
    band_norm += y * y;
  }
  std::printf("row-0 sparse/dense projection ratio: %.3f (differs because "
              "the mask prunes attention, by design)\n",
              band_norm > 0 ? band_dot / band_norm : 0.0);
  return 0;
}

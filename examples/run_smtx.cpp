// Run the library on a real DLMC matrix: load an .smtx pattern file
// (the format the Deep Learning Matrix Collection distributes), attach
// random values per §7.1.1, and race every SpMM implementation on it.
//
// Usage: run_smtx [file.smtx] [V] [N]
// Without a file, writes and uses a small demonstration pattern.
#include <cstdio>
#include <cstdlib>

#include "vsparse/bench/runner.hpp"
#include "vsparse/formats/generate.hpp"
#include "vsparse/formats/smtx_io.hpp"
#include "vsparse/kernels/dispatch.hpp"
#include "vsparse/report/report.hpp"

int main(int argc, char** argv) {
  using namespace vsparse;
  const char* path = argc > 1 ? argv[1] : nullptr;
  const int v = argc > 2 ? std::atoi(argv[2]) : 4;
  const int n = argc > 3 ? std::atoi(argv[3]) : 256;

  SmtxPattern pattern;
  if (path != nullptr) {
    pattern = read_smtx_file(path);
    std::printf("loaded %s: %d x %d pattern rows, %zu nonzeros\n", path,
                pattern.rows, pattern.cols, pattern.col_idx.size());
  } else {
    Rng rng(42);
    Cvs demo = make_cvs(512, 512, 1, 0.9, rng, 0.25);
    pattern = cvs_to_smtx(demo);
    write_smtx_file("/tmp/demo.smtx", pattern);
    std::printf("no file given; wrote a 512x512 90%%-sparse demo to "
                "/tmp/demo.smtx\n");
  }

  Rng rng(7);
  Cvs a = smtx_to_cvs(pattern, v, rng);
  std::printf("as CVS at V=%d: %d x %d, %.1f%% sparse, %lld vectors\n\n",
              v, a.rows, a.cols, a.sparsity() * 100,
              static_cast<long long>(a.nnz_vectors()));

  gpusim::DeviceConfig hw;
  gpusim::DeviceConfig dc = hw;
  dc.dram_capacity = std::size_t{2} << 30;
  gpusim::Device dev(dc);
  auto da = to_device(dev, a);
  auto b = dev.alloc<half_t>(static_cast<std::size_t>(a.cols) * n);
  auto c = dev.alloc<half_t>(static_cast<std::size_t>(a.rows) * n);
  DenseDevice<half_t> db{b, a.cols, n, n, Layout::kRowMajor};
  DenseDevice<half_t> dcv{c, a.rows, n, n, Layout::kRowMajor};

  bench::DenseBaseline dense;
  const double dense_cycles = dense.hgemm_cycles(a.rows, a.cols, n);
  std::printf("%-14s %12s %10s   (dense hgemm: %.0f cycles)\n", "kernel",
              "cycles", "speedup", dense_cycles);

  using kernels::SpmmAlgorithm;
  std::vector<report::Record> records;
  const SpmmAlgorithm algos[] = {SpmmAlgorithm::kOctet,
                                 SpmmAlgorithm::kWmmaWarp,
                                 SpmmAlgorithm::kFpuSubwarp};
  for (SpmmAlgorithm algo : algos) {
    if (v == 1 && algo != SpmmAlgorithm::kFpuSubwarp) continue;
    auto run = kernels::spmm(dev, da, db, dcv, {.algorithm = algo});
    std::printf("%-14s %12.0f %9.2fx\n", run.config.profile.name.c_str(),
                run.cycles(hw), dense_cycles / run.cycles(hw));
    records.push_back(report::make_record(
        run, hw,
        {{"v", std::to_string(v)}, {"n", std::to_string(n)}}));
    dev.flush_all_caches();
  }

  std::printf("\nJSON records (pipe to a file for tooling):\n");
  for (const auto& r : records) {
    std::printf("%s\n", report::to_json(r).c_str());
  }
  return 0;
}

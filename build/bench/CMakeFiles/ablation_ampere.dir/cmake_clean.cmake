file(REMOVE_RECURSE
  "CMakeFiles/ablation_ampere.dir/ablation_ampere.cpp.o"
  "CMakeFiles/ablation_ampere.dir/ablation_ampere.cpp.o.d"
  "ablation_ampere"
  "ablation_ampere.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ampere.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ablation_ampere.
# This may be replaced when dependencies are built.

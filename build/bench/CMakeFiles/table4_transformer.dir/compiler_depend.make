# Empty compiler generated dependencies file for table4_transformer.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table4_transformer.dir/table4_transformer.cpp.o"
  "CMakeFiles/table4_transformer.dir/table4_transformer.cpp.o.d"
  "table4_transformer"
  "table4_transformer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_transformer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_stepskip.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_stepskip.dir/ablation_stepskip.cpp.o"
  "CMakeFiles/ablation_stepskip.dir/ablation_stepskip.cpp.o.d"
  "ablation_stepskip"
  "ablation_stepskip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_stepskip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ablation_tilen.dir/ablation_tilen.cpp.o"
  "CMakeFiles/ablation_tilen.dir/ablation_tilen.cpp.o.d"
  "ablation_tilen"
  "ablation_tilen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tilen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_tilen.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table1_stalls.dir/table1_stalls.cpp.o"
  "CMakeFiles/table1_stalls.dir/table1_stalls.cpp.o.d"
  "table1_stalls"
  "table1_stalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_stalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for table1_stalls.
# This may be replaced when dependencies are built.

# Empty dependencies file for table3_guidelines_sddmm.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table3_guidelines_sddmm.dir/table3_guidelines_sddmm.cpp.o"
  "CMakeFiles/table3_guidelines_sddmm.dir/table3_guidelines_sddmm.cpp.o.d"
  "table3_guidelines_sddmm"
  "table3_guidelines_sddmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_guidelines_sddmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

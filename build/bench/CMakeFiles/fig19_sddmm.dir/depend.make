# Empty dependencies file for fig19_sddmm.
# This may be replaced when dependencies are built.

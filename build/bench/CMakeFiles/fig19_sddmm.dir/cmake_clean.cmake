file(REMOVE_RECURSE
  "CMakeFiles/fig19_sddmm.dir/fig19_sddmm.cpp.o"
  "CMakeFiles/fig19_sddmm.dir/fig19_sddmm.cpp.o.d"
  "fig19_sddmm"
  "fig19_sddmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_sddmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig17_spmm.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig17_spmm.dir/fig17_spmm.cpp.o"
  "CMakeFiles/fig17_spmm.dir/fig17_spmm.cpp.o.d"
  "fig17_spmm"
  "fig17_spmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_spmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/table2_guidelines_spmm.dir/table2_guidelines_spmm.cpp.o"
  "CMakeFiles/table2_guidelines_spmm.dir/table2_guidelines_spmm.cpp.o.d"
  "table2_guidelines_spmm"
  "table2_guidelines_spmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_guidelines_spmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

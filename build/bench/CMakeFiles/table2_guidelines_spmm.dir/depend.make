# Empty dependencies file for table2_guidelines_spmm.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig18_l2l1_bytes.dir/fig18_l2l1_bytes.cpp.o"
  "CMakeFiles/fig18_l2l1_bytes.dir/fig18_l2l1_bytes.cpp.o.d"
  "fig18_l2l1_bytes"
  "fig18_l2l1_bytes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_l2l1_bytes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig18_l2l1_bytes.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for fig06_blocked_ell.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig06_blocked_ell.dir/fig06_blocked_ell.cpp.o"
  "CMakeFiles/fig06_blocked_ell.dir/fig06_blocked_ell.cpp.o.d"
  "fig06_blocked_ell"
  "fig06_blocked_ell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_blocked_ell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig20_attention.dir/fig20_attention.cpp.o"
  "CMakeFiles/fig20_attention.dir/fig20_attention.cpp.o.d"
  "fig20_attention"
  "fig20_attention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_attention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig20_attention.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig04_finegrained.dir/fig04_finegrained.cpp.o"
  "CMakeFiles/fig04_finegrained.dir/fig04_finegrained.cpp.o.d"
  "fig04_finegrained"
  "fig04_finegrained.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_finegrained.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

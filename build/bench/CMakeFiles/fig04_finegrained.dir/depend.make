# Empty dependencies file for fig04_finegrained.
# This may be replaced when dependencies are built.

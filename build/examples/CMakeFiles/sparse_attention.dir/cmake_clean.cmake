file(REMOVE_RECURSE
  "CMakeFiles/sparse_attention.dir/sparse_attention.cpp.o"
  "CMakeFiles/sparse_attention.dir/sparse_attention.cpp.o.d"
  "sparse_attention"
  "sparse_attention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_attention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

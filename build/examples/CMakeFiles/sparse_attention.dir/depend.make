# Empty dependencies file for sparse_attention.
# This may be replaced when dependencies are built.

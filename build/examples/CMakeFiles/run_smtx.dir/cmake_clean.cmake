file(REMOVE_RECURSE
  "CMakeFiles/run_smtx.dir/run_smtx.cpp.o"
  "CMakeFiles/run_smtx.dir/run_smtx.cpp.o.d"
  "run_smtx"
  "run_smtx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_smtx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

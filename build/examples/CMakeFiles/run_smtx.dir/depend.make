# Empty dependencies file for run_smtx.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/prune_and_deploy.dir/prune_and_deploy.cpp.o"
  "CMakeFiles/prune_and_deploy.dir/prune_and_deploy.cpp.o.d"
  "prune_and_deploy"
  "prune_and_deploy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prune_and_deploy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

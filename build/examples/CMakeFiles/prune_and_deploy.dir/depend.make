# Empty dependencies file for prune_and_deploy.
# This may be replaced when dependencies are built.

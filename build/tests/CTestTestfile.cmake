# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/bench_util_test[1]_include.cmake")
include("/root/repo/build/tests/blocksparse_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/coalescing_property_test[1]_include.cmake")
include("/root/repo/build/tests/costmodel_test[1]_include.cmake")
include("/root/repo/build/tests/dense_gemm_test[1]_include.cmake")
include("/root/repo/build/tests/dispatch_and_report_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/formats_test[1]_include.cmake")
include("/root/repo/build/tests/fp16_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_param_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/mma_test[1]_include.cmake")
include("/root/repo/build/tests/sddmm_test[1]_include.cmake")
include("/root/repo/build/tests/smtx_autotune_test[1]_include.cmake")
include("/root/repo/build/tests/softmax_test[1]_include.cmake")
include("/root/repo/build/tests/spmm_baselines_test[1]_include.cmake")
include("/root/repo/build/tests/spmm_octet_test[1]_include.cmake")
include("/root/repo/build/tests/transformer_test[1]_include.cmake")

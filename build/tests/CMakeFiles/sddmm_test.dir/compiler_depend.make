# Empty compiler generated dependencies file for sddmm_test.
# This may be replaced when dependencies are built.

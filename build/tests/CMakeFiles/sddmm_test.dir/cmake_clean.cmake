file(REMOVE_RECURSE
  "CMakeFiles/sddmm_test.dir/sddmm_test.cpp.o"
  "CMakeFiles/sddmm_test.dir/sddmm_test.cpp.o.d"
  "sddmm_test"
  "sddmm_test.pdb"
  "sddmm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sddmm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

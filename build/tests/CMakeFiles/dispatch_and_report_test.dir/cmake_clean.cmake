file(REMOVE_RECURSE
  "CMakeFiles/dispatch_and_report_test.dir/dispatch_and_report_test.cpp.o"
  "CMakeFiles/dispatch_and_report_test.dir/dispatch_and_report_test.cpp.o.d"
  "dispatch_and_report_test"
  "dispatch_and_report_test.pdb"
  "dispatch_and_report_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dispatch_and_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

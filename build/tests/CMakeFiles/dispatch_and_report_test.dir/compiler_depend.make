# Empty compiler generated dependencies file for dispatch_and_report_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/smtx_autotune_test.dir/smtx_autotune_test.cpp.o"
  "CMakeFiles/smtx_autotune_test.dir/smtx_autotune_test.cpp.o.d"
  "smtx_autotune_test"
  "smtx_autotune_test.pdb"
  "smtx_autotune_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtx_autotune_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

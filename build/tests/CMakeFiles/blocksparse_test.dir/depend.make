# Empty dependencies file for blocksparse_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/blocksparse_test.dir/blocksparse_test.cpp.o"
  "CMakeFiles/blocksparse_test.dir/blocksparse_test.cpp.o.d"
  "blocksparse_test"
  "blocksparse_test.pdb"
  "blocksparse_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blocksparse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for spmm_octet_test.
# This may be replaced when dependencies are built.

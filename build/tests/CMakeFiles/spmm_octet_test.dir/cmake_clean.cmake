file(REMOVE_RECURSE
  "CMakeFiles/spmm_octet_test.dir/spmm_octet_test.cpp.o"
  "CMakeFiles/spmm_octet_test.dir/spmm_octet_test.cpp.o.d"
  "spmm_octet_test"
  "spmm_octet_test.pdb"
  "spmm_octet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmm_octet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

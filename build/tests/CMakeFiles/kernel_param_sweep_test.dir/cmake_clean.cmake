file(REMOVE_RECURSE
  "CMakeFiles/kernel_param_sweep_test.dir/kernel_param_sweep_test.cpp.o"
  "CMakeFiles/kernel_param_sweep_test.dir/kernel_param_sweep_test.cpp.o.d"
  "kernel_param_sweep_test"
  "kernel_param_sweep_test.pdb"
  "kernel_param_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_param_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

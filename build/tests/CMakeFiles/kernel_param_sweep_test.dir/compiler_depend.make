# Empty compiler generated dependencies file for kernel_param_sweep_test.
# This may be replaced when dependencies are built.

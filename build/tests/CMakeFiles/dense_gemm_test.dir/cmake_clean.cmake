file(REMOVE_RECURSE
  "CMakeFiles/dense_gemm_test.dir/dense_gemm_test.cpp.o"
  "CMakeFiles/dense_gemm_test.dir/dense_gemm_test.cpp.o.d"
  "dense_gemm_test"
  "dense_gemm_test.pdb"
  "dense_gemm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dense_gemm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

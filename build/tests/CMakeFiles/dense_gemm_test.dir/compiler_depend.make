# Empty compiler generated dependencies file for dense_gemm_test.
# This may be replaced when dependencies are built.

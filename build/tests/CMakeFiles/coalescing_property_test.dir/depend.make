# Empty dependencies file for coalescing_property_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/coalescing_property_test.dir/coalescing_property_test.cpp.o"
  "CMakeFiles/coalescing_property_test.dir/coalescing_property_test.cpp.o.d"
  "coalescing_property_test"
  "coalescing_property_test.pdb"
  "coalescing_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coalescing_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for mma_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mma_test.dir/mma_test.cpp.o"
  "CMakeFiles/mma_test.dir/mma_test.cpp.o.d"
  "mma_test"
  "mma_test.pdb"
  "mma_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mma_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

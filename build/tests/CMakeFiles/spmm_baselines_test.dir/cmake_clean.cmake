file(REMOVE_RECURSE
  "CMakeFiles/spmm_baselines_test.dir/spmm_baselines_test.cpp.o"
  "CMakeFiles/spmm_baselines_test.dir/spmm_baselines_test.cpp.o.d"
  "spmm_baselines_test"
  "spmm_baselines_test.pdb"
  "spmm_baselines_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmm_baselines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for spmm_baselines_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libvsparse.a"
)

# Empty dependencies file for vsparse.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vsparse/bench/runner.cpp" "src/CMakeFiles/vsparse.dir/vsparse/bench/runner.cpp.o" "gcc" "src/CMakeFiles/vsparse.dir/vsparse/bench/runner.cpp.o.d"
  "/root/repo/src/vsparse/bench/scale.cpp" "src/CMakeFiles/vsparse.dir/vsparse/bench/scale.cpp.o" "gcc" "src/CMakeFiles/vsparse.dir/vsparse/bench/scale.cpp.o.d"
  "/root/repo/src/vsparse/bench/suite.cpp" "src/CMakeFiles/vsparse.dir/vsparse/bench/suite.cpp.o" "gcc" "src/CMakeFiles/vsparse.dir/vsparse/bench/suite.cpp.o.d"
  "/root/repo/src/vsparse/bench/summary.cpp" "src/CMakeFiles/vsparse.dir/vsparse/bench/summary.cpp.o" "gcc" "src/CMakeFiles/vsparse.dir/vsparse/bench/summary.cpp.o.d"
  "/root/repo/src/vsparse/formats/blocked_ell.cpp" "src/CMakeFiles/vsparse.dir/vsparse/formats/blocked_ell.cpp.o" "gcc" "src/CMakeFiles/vsparse.dir/vsparse/formats/blocked_ell.cpp.o.d"
  "/root/repo/src/vsparse/formats/blocksparse.cpp" "src/CMakeFiles/vsparse.dir/vsparse/formats/blocksparse.cpp.o" "gcc" "src/CMakeFiles/vsparse.dir/vsparse/formats/blocksparse.cpp.o.d"
  "/root/repo/src/vsparse/formats/cvs.cpp" "src/CMakeFiles/vsparse.dir/vsparse/formats/cvs.cpp.o" "gcc" "src/CMakeFiles/vsparse.dir/vsparse/formats/cvs.cpp.o.d"
  "/root/repo/src/vsparse/formats/generate.cpp" "src/CMakeFiles/vsparse.dir/vsparse/formats/generate.cpp.o" "gcc" "src/CMakeFiles/vsparse.dir/vsparse/formats/generate.cpp.o.d"
  "/root/repo/src/vsparse/formats/reference.cpp" "src/CMakeFiles/vsparse.dir/vsparse/formats/reference.cpp.o" "gcc" "src/CMakeFiles/vsparse.dir/vsparse/formats/reference.cpp.o.d"
  "/root/repo/src/vsparse/formats/smtx_io.cpp" "src/CMakeFiles/vsparse.dir/vsparse/formats/smtx_io.cpp.o" "gcc" "src/CMakeFiles/vsparse.dir/vsparse/formats/smtx_io.cpp.o.d"
  "/root/repo/src/vsparse/gpusim/cache.cpp" "src/CMakeFiles/vsparse.dir/vsparse/gpusim/cache.cpp.o" "gcc" "src/CMakeFiles/vsparse.dir/vsparse/gpusim/cache.cpp.o.d"
  "/root/repo/src/vsparse/gpusim/costmodel.cpp" "src/CMakeFiles/vsparse.dir/vsparse/gpusim/costmodel.cpp.o" "gcc" "src/CMakeFiles/vsparse.dir/vsparse/gpusim/costmodel.cpp.o.d"
  "/root/repo/src/vsparse/gpusim/device.cpp" "src/CMakeFiles/vsparse.dir/vsparse/gpusim/device.cpp.o" "gcc" "src/CMakeFiles/vsparse.dir/vsparse/gpusim/device.cpp.o.d"
  "/root/repo/src/vsparse/gpusim/stats.cpp" "src/CMakeFiles/vsparse.dir/vsparse/gpusim/stats.cpp.o" "gcc" "src/CMakeFiles/vsparse.dir/vsparse/gpusim/stats.cpp.o.d"
  "/root/repo/src/vsparse/gpusim/tensorcore.cpp" "src/CMakeFiles/vsparse.dir/vsparse/gpusim/tensorcore.cpp.o" "gcc" "src/CMakeFiles/vsparse.dir/vsparse/gpusim/tensorcore.cpp.o.d"
  "/root/repo/src/vsparse/kernels/autotune.cpp" "src/CMakeFiles/vsparse.dir/vsparse/kernels/autotune.cpp.o" "gcc" "src/CMakeFiles/vsparse.dir/vsparse/kernels/autotune.cpp.o.d"
  "/root/repo/src/vsparse/kernels/dense/gemm.cpp" "src/CMakeFiles/vsparse.dir/vsparse/kernels/dense/gemm.cpp.o" "gcc" "src/CMakeFiles/vsparse.dir/vsparse/kernels/dense/gemm.cpp.o.d"
  "/root/repo/src/vsparse/kernels/dispatch.cpp" "src/CMakeFiles/vsparse.dir/vsparse/kernels/dispatch.cpp.o" "gcc" "src/CMakeFiles/vsparse.dir/vsparse/kernels/dispatch.cpp.o.d"
  "/root/repo/src/vsparse/kernels/elementwise.cpp" "src/CMakeFiles/vsparse.dir/vsparse/kernels/elementwise.cpp.o" "gcc" "src/CMakeFiles/vsparse.dir/vsparse/kernels/elementwise.cpp.o.d"
  "/root/repo/src/vsparse/kernels/sddmm/sddmm_csr_fine.cpp" "src/CMakeFiles/vsparse.dir/vsparse/kernels/sddmm/sddmm_csr_fine.cpp.o" "gcc" "src/CMakeFiles/vsparse.dir/vsparse/kernels/sddmm/sddmm_csr_fine.cpp.o.d"
  "/root/repo/src/vsparse/kernels/sddmm/sddmm_fpu.cpp" "src/CMakeFiles/vsparse.dir/vsparse/kernels/sddmm/sddmm_fpu.cpp.o" "gcc" "src/CMakeFiles/vsparse.dir/vsparse/kernels/sddmm/sddmm_fpu.cpp.o.d"
  "/root/repo/src/vsparse/kernels/sddmm/sddmm_octet.cpp" "src/CMakeFiles/vsparse.dir/vsparse/kernels/sddmm/sddmm_octet.cpp.o" "gcc" "src/CMakeFiles/vsparse.dir/vsparse/kernels/sddmm/sddmm_octet.cpp.o.d"
  "/root/repo/src/vsparse/kernels/sddmm/sddmm_wmma.cpp" "src/CMakeFiles/vsparse.dir/vsparse/kernels/sddmm/sddmm_wmma.cpp.o" "gcc" "src/CMakeFiles/vsparse.dir/vsparse/kernels/sddmm/sddmm_wmma.cpp.o.d"
  "/root/repo/src/vsparse/kernels/softmax/sparse_softmax.cpp" "src/CMakeFiles/vsparse.dir/vsparse/kernels/softmax/sparse_softmax.cpp.o" "gcc" "src/CMakeFiles/vsparse.dir/vsparse/kernels/softmax/sparse_softmax.cpp.o.d"
  "/root/repo/src/vsparse/kernels/spmm/spmm_blocked_ell.cpp" "src/CMakeFiles/vsparse.dir/vsparse/kernels/spmm/spmm_blocked_ell.cpp.o" "gcc" "src/CMakeFiles/vsparse.dir/vsparse/kernels/spmm/spmm_blocked_ell.cpp.o.d"
  "/root/repo/src/vsparse/kernels/spmm/spmm_csr_fine.cpp" "src/CMakeFiles/vsparse.dir/vsparse/kernels/spmm/spmm_csr_fine.cpp.o" "gcc" "src/CMakeFiles/vsparse.dir/vsparse/kernels/spmm/spmm_csr_fine.cpp.o.d"
  "/root/repo/src/vsparse/kernels/spmm/spmm_fpu.cpp" "src/CMakeFiles/vsparse.dir/vsparse/kernels/spmm/spmm_fpu.cpp.o" "gcc" "src/CMakeFiles/vsparse.dir/vsparse/kernels/spmm/spmm_fpu.cpp.o.d"
  "/root/repo/src/vsparse/kernels/spmm/spmm_octet.cpp" "src/CMakeFiles/vsparse.dir/vsparse/kernels/spmm/spmm_octet.cpp.o" "gcc" "src/CMakeFiles/vsparse.dir/vsparse/kernels/spmm/spmm_octet.cpp.o.d"
  "/root/repo/src/vsparse/kernels/spmm/spmm_wmma.cpp" "src/CMakeFiles/vsparse.dir/vsparse/kernels/spmm/spmm_wmma.cpp.o" "gcc" "src/CMakeFiles/vsparse.dir/vsparse/kernels/spmm/spmm_wmma.cpp.o.d"
  "/root/repo/src/vsparse/report/report.cpp" "src/CMakeFiles/vsparse.dir/vsparse/report/report.cpp.o" "gcc" "src/CMakeFiles/vsparse.dir/vsparse/report/report.cpp.o.d"
  "/root/repo/src/vsparse/transformer/attention.cpp" "src/CMakeFiles/vsparse.dir/vsparse/transformer/attention.cpp.o" "gcc" "src/CMakeFiles/vsparse.dir/vsparse/transformer/attention.cpp.o.d"
  "/root/repo/src/vsparse/transformer/fidelity.cpp" "src/CMakeFiles/vsparse.dir/vsparse/transformer/fidelity.cpp.o" "gcc" "src/CMakeFiles/vsparse.dir/vsparse/transformer/fidelity.cpp.o.d"
  "/root/repo/src/vsparse/transformer/model.cpp" "src/CMakeFiles/vsparse.dir/vsparse/transformer/model.cpp.o" "gcc" "src/CMakeFiles/vsparse.dir/vsparse/transformer/model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

#include "vsparse/transformer/attention.hpp"

#include <cmath>

#include "vsparse/kernels/dense/gemm.hpp"
#include "vsparse/kernels/dispatch.hpp"
#include "vsparse/kernels/sddmm/sddmm_octet.hpp"
#include "vsparse/kernels/softmax/sparse_softmax.hpp"
#include "vsparse/kernels/spmm/spmm_octet.hpp"

namespace vsparse::transformer {

AttentionBreakdown sparse_attention_head(gpusim::Device& dev,
                                         const DenseDevice<half_t>& q,
                                         const DenseDevice<half_t>& k,
                                         const DenseDevice<half_t>& v,
                                         const CvsDevice& mask,
                                         gpusim::Buffer<half_t>& scratch_values,
                                         DenseDevice<half_t>& out,
                                         const AttentionServe& serve) {
  const int seq = q.rows;
  const int d = q.cols;
  VSPARSE_CHECK(k.rows == seq && k.cols == d);
  VSPARSE_CHECK(v.rows == seq && v.cols == d);
  VSPARSE_CHECK(mask.rows == seq && mask.cols == seq);
  VSPARSE_CHECK(out.rows == seq && out.cols == d);

  AttentionBreakdown r;

  // Q Kᵀ ⊙ C: the row-major seq x d K matrix is bit-identical to the
  // column-major d x seq Kᵀ the SDDMM RHS wants.  With a serve policy
  // the call goes through dispatch's fault boundary; the forced kOctet
  // algorithm and default inverted-pattern mode keep the fault-free
  // path counter-identical to the direct kernel call.
  DenseDevice<half_t> kt{k.buf, d, seq, k.ld, Layout::kColMajor};
  if (serve.policy != nullptr) {
    r.qk = kernels::sddmm(dev, q, kt, mask, scratch_values,
                          {.algorithm = kernels::SddmmAlgorithm::kOctet,
                           .serve = serve.policy,
                           .serve_report = serve.qk_report});
  } else {
    r.qk = kernels::sddmm_octet(dev, q, kt, mask, scratch_values,
                                {kernels::InvertedPatternMode::kExtraRegisters});
  }

  // Softmax over the masked scores, scaled by 1/sqrt(k), in place.
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  r.softmax = kernels::sparse_softmax(dev, mask, scratch_values,
                                      scratch_values, scale);

  // A V: the probabilities (CVS values) drive the octet SpMM.
  CvsDevice probs = mask;
  probs.values = scratch_values;
  if (serve.policy != nullptr) {
    r.av = kernels::spmm(dev, probs, v, out,
                         {.algorithm = kernels::SpmmAlgorithm::kOctet,
                          .serve = serve.policy,
                          .serve_report = serve.av_report});
  } else {
    r.av = kernels::spmm_octet(dev, probs, v, out);
  }
  return r;
}

AttentionBreakdown dense_attention_head(gpusim::Device& dev,
                                        const DenseDevice<half_t>& q,
                                        const DenseDevice<half_t>& k,
                                        const DenseDevice<half_t>& v,
                                        DenseDevice<half_t>& scores,
                                        DenseDevice<half_t>& out) {
  const int seq = q.rows;
  const int d = q.cols;
  VSPARSE_CHECK(scores.rows == seq && scores.cols == seq);
  VSPARSE_CHECK(out.rows == seq && out.cols == d);

  AttentionBreakdown r;
  DenseDevice<half_t> kt{k.buf, d, seq, k.ld, Layout::kColMajor};
  r.qk = kernels::hgemm_tcu(dev, q, kt, scores);
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  r.softmax = kernels::dense_softmax(dev, scores, scale);
  r.av = kernels::hgemm_tcu(dev, scores, v, out);
  return r;
}

}  // namespace vsparse::transformer

// The §7.4 sparse-transformer inference model (Table 4 / Fig. 20).
//
// A 4-layer, 4-head encoder (head dim 64 => d_model 256, FFN 1024) with
// a fixed banded+random attention mask at 8x1 vector granularity and
// 90% sparsity — the configuration the paper trains on the LRA
// byte-level text-classification task.  We run forward-only inference
// with random weights (training is out of scope here; numerical
// fidelity is measured separately, see fidelity.hpp) in one of three
// modes matching Table 4's columns:
//
//   kDenseFloat  — cublasSgemm-style fp32 GEMMs + fp32 softmax,
//   kDenseHalf   — cublasHgemm-style TCU GEMMs + fp16 softmax,
//   kSparseHalf  — SDDMM(octet) + sparse softmax + SpMM(octet) for the
//                  attention core, TCU GEMMs elsewhere.
//
// Heads and batch elements execute identical kernels on identically
// shaped operands; the simulator runs one instance and scales the
// cycle estimate by heads x batch (per-head kernel launches, as the
// paper's implementation does).  Peak memory is the device allocator's
// high-water mark with all heads' and batch elements' score buffers
// live at the attention stage — which is exactly what dominates
// Table 4's memory column.
#pragma once

#include <cstdint>

#include "vsparse/gpusim/costmodel.hpp"
#include "vsparse/gpusim/device.hpp"
#include "vsparse/kernels/api.hpp"

namespace vsparse::serve {
struct ServePolicy;
}  // namespace vsparse::serve

namespace vsparse::transformer {

enum class Mode : std::uint8_t { kDenseFloat, kDenseHalf, kSparseHalf };

struct ModelConfig {
  int seq = 1024;      ///< paper scale: 4096 (LRA byte task uses 4000)
  int layers = 4;
  int heads = 4;
  int head_dim = 64;
  int ffn_dim = 1024;
  int v = 8;           ///< mask grain (8x1, §7.4)
  int band = 256;      ///< diagonal band width
  double sparsity = 0.90;
  int batch = 8;
  Mode mode = Mode::kSparseHalf;

  /// Opt-in serving supervision for the sparse attention core
  /// (kSparseHalf only): the QKᵀ∘C SDDMM and AV SpMM launches run
  /// inside the launch supervisor's fault boundary, so a forward pass
  /// survives transient fault storms via retry instead of unwinding to
  /// main.  Null (the default) is the zero-overhead fast path — bit-
  /// and counter-identical to the unsupervised model.  The policy must
  /// outlive the call.
  const serve::ServePolicy* serve = nullptr;

  /// Optional seeded fault storm aimed at the attention core: the plan
  /// is attached around the attention head (SDDMM, sparse softmax,
  /// SpMM) and detached for the surrounding dense GEMMs, which run
  /// outside the fault boundary.  Set `serve` too, and aim the storm
  /// at reads only the supervised SDDMM/SpMM launches perform (e.g.
  /// the mask's col_idx buffer — the softmax reads row_ptr alone), or
  /// the first detection unwinds the forward pass.  The plan must
  /// outlive the call.
  gpusim::FaultPlan* attention_storm = nullptr;

  int d_model() const { return heads * head_dim; }
};

/// Cycle/memory results of one batched forward pass.
struct ForwardResult {
  double qk_cycles = 0;       ///< QKᵀ(⊙C) across all layers/heads/batch
  double softmax_cycles = 0;
  double av_cycles = 0;
  double other_cycles = 0;    ///< projections + FFN

  std::size_t peak_memory_bytes = 0;
  gpusim::KernelStats stats;  ///< aggregated hardware counters

  /// Supervisor activity across all supervised attention launches
  /// (zero when ModelConfig::serve is null or the storm misses).
  std::uint64_t serve_retries = 0;
  std::uint64_t serve_fallbacks = 0;

  double total_cycles() const {
    return qk_cycles + softmax_cycles + av_cycles + other_cycles;
  }
  /// Sequences per second at the given core clock.
  double throughput(double clock_hz, int batch) const {
    return batch / (total_cycles() / clock_hz);
  }
};

/// Run one batched forward pass on the device (which should be freshly
/// reset; its peak-memory counter is the Table 4 memory column).
ForwardResult run_transformer_forward(gpusim::Device& dev,
                                      const ModelConfig& cfg,
                                      std::uint64_t seed,
                                      const gpusim::CostParams& params = {});

}  // namespace vsparse::transformer

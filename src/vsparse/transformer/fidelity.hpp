// Numerical-fidelity proxy for Table 4's accuracy column.
//
// The paper trains a 4-layer transformer on LRA byte-level text
// classification and reports 65.12% / 65.09% / 65.01% accuracy for
// Dense(float) / Dense(half) / Sparse(half) — i.e., quantization and
// 8x1-vector sparsification each cost ~0.1% or less.  Training is out
// of scope for this reproduction, so we substitute the measurable
// claim underneath: running the SAME weights through the three
// numerical pipelines barely perturbs the model's outputs and
// decisions.  We run a host-side reference forward of one attention
// block + classifier head in the three modes and report
//
//   * cosine similarity of the output logits vs the fp32 reference,
//   * the fraction of argmax decisions that agree ("decision
//     agreement", the accuracy-like number),
//
// where Sparse(half) additionally applies the banded+random mask in
// both the reference and the sparse path (the mask is part of the
// *model*, not an approximation, which is why the paper's accuracy
// loss is so small: the model was trained with it).
#pragma once

#include <cstdint>

namespace vsparse::transformer {

struct FidelityReport {
  // vs. the fp32 pipeline on identical weights/inputs:
  double dense_half_cosine = 0;
  double dense_half_agreement = 0;  ///< argmax decision agreement
  double sparse_half_cosine = 0;
  double sparse_half_agreement = 0;
  double sparse_half_max_rel_err = 0;
};

struct FidelityConfig {
  int seq = 256;
  int head_dim = 64;
  int heads = 4;
  int classes = 10;
  int v = 8;
  int band = 64;
  double sparsity = 0.9;
  int trials = 20;  ///< independent random inputs per metric
};

/// Run the three pipelines on random weights/inputs and compare.
FidelityReport measure_fidelity(const FidelityConfig& cfg,
                                std::uint64_t seed);

}  // namespace vsparse::transformer

#include "vsparse/transformer/fidelity.hpp"

#include <cmath>
#include <vector>

#include "vsparse/common/macros.hpp"
#include "vsparse/common/rng.hpp"
#include "vsparse/fp16/half.hpp"
#include "vsparse/formats/generate.hpp"

namespace vsparse::transformer {

namespace {

using Mat = std::vector<float>;  // row-major seq x cols

/// Quantize a matrix to binary16 and back (the fp16 pipeline's operand
/// rounding; accumulation stays fp32 as on the TCU).
Mat quantize(const Mat& m) {
  Mat out(m.size());
  for (std::size_t i = 0; i < m.size(); ++i) {
    out[i] = static_cast<float>(half_t(m[i]));
  }
  return out;
}

Mat matmul(const Mat& a, int m, int k, const Mat& b, int n) {
  Mat c(static_cast<std::size_t>(m) * n, 0.0f);
  for (int i = 0; i < m; ++i) {
    for (int kk = 0; kk < k; ++kk) {
      const float av = a[static_cast<std::size_t>(i) * k + kk];
      if (av == 0.0f) continue;
      for (int j = 0; j < n; ++j) {
        c[static_cast<std::size_t>(i) * n + j] +=
            av * b[static_cast<std::size_t>(kk) * n + j];
      }
    }
  }
  return c;
}

/// One attention head + mean-pool + classifier, parameterized by
/// whether operands are fp16-quantized and whether the sparse mask is
/// applied.  `mask_dense` is a seq x seq 0/1 matrix (empty = dense).
Mat forward(const Mat& x, int seq, int d, const Mat& wq, const Mat& wk,
            const Mat& wv, const Mat& wcls, int classes, bool fp16,
            const Mat& mask_dense) {
  const auto maybe_q = [&](const Mat& m) { return fp16 ? quantize(m) : m; };
  Mat q = matmul(maybe_q(x), seq, d, maybe_q(wq), d);
  Mat k = matmul(maybe_q(x), seq, d, maybe_q(wk), d);
  Mat v = matmul(maybe_q(x), seq, d, maybe_q(wv), d);
  if (fp16) {
    q = quantize(q);
    k = quantize(k);
    v = quantize(v);
  }
  // scores = q k^T / sqrt(d), masked.
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  Mat probs(static_cast<std::size_t>(seq) * seq, 0.0f);
  for (int i = 0; i < seq; ++i) {
    float maxv = -1e30f;
    std::vector<float> row(static_cast<std::size_t>(seq), -1e30f);
    for (int j = 0; j < seq; ++j) {
      if (!mask_dense.empty() &&
          mask_dense[static_cast<std::size_t>(i) * seq + j] == 0.0f) {
        continue;
      }
      float dot = 0.0f;
      for (int kk = 0; kk < d; ++kk) {
        dot += q[static_cast<std::size_t>(i) * d + kk] *
               k[static_cast<std::size_t>(j) * d + kk];
      }
      if (fp16) dot = static_cast<float>(half_t(dot));
      row[static_cast<std::size_t>(j)] = dot * scale;
      maxv = std::max(maxv, dot * scale);
    }
    float denom = 0.0f;
    for (int j = 0; j < seq; ++j) {
      if (row[static_cast<std::size_t>(j)] > -1e29f) {
        denom += std::exp(row[static_cast<std::size_t>(j)] - maxv);
      }
    }
    for (int j = 0; j < seq; ++j) {
      if (row[static_cast<std::size_t>(j)] > -1e29f) {
        float p = std::exp(row[static_cast<std::size_t>(j)] - maxv) / denom;
        if (fp16) p = static_cast<float>(half_t(p));
        probs[static_cast<std::size_t>(i) * seq + j] = p;
      }
    }
  }
  Mat ctx = matmul(probs, seq, seq, v, d);
  if (fp16) ctx = quantize(ctx);
  // Mean-pool over the sequence, then classify.
  Mat pooled(static_cast<std::size_t>(d), 0.0f);
  for (int i = 0; i < seq; ++i) {
    for (int kk = 0; kk < d; ++kk) {
      pooled[static_cast<std::size_t>(kk)] +=
          ctx[static_cast<std::size_t>(i) * d + kk] / seq;
    }
  }
  return matmul(pooled, 1, d, maybe_q(wcls), classes);
}

double cosine(const Mat& a, const Mat& b) {
  double dot = 0, na = 0, nb = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double x = a[i], y = b[i];
    dot += x * y;
    na += x * x;
    nb += y * y;
  }
  return na > 0 && nb > 0 ? dot / (std::sqrt(na) * std::sqrt(nb)) : 1.0;
}

int argmax(const Mat& a) {
  int best = 0;
  for (std::size_t i = 1; i < a.size(); ++i) {
    if (a[i] > a[static_cast<std::size_t>(best)]) best = static_cast<int>(i);
  }
  return best;
}

}  // namespace

FidelityReport measure_fidelity(const FidelityConfig& cfg,
                                std::uint64_t seed) {
  VSPARSE_CHECK(cfg.seq % cfg.v == 0);
  Rng rng(seed);
  const int d = cfg.head_dim;
  const auto randmat = [&](int rows, int cols, float s) {
    Mat m(static_cast<std::size_t>(rows) * cols);
    for (float& x : m) x = rng.uniform_float(-s, s);
    return m;
  };
  const Mat wq = randmat(d, d, 0.3f), wk = randmat(d, d, 0.3f),
            wv = randmat(d, d, 0.3f), wcls = randmat(d, cfg.classes, 0.3f);

  // The fixed banded+random mask, densified for the host reference.
  Cvs mask = make_attention_mask(cfg.seq, cfg.v, cfg.band, cfg.sparsity, rng);
  Mat mask_dense(static_cast<std::size_t>(cfg.seq) * cfg.seq, 0.0f);
  for (int vr = 0; vr < mask.vec_rows(); ++vr) {
    for (std::int32_t i = mask.row_ptr[static_cast<std::size_t>(vr)];
         i < mask.row_ptr[static_cast<std::size_t>(vr) + 1]; ++i) {
      const std::int32_t c = mask.col_idx[static_cast<std::size_t>(i)];
      for (int t = 0; t < cfg.v; ++t) {
        mask_dense[static_cast<std::size_t>(vr * cfg.v + t) * cfg.seq + c] =
            1.0f;
      }
    }
  }

  FidelityReport rep;
  double dh_cos = 0, sh_cos = 0;
  int dh_agree = 0, sh_agree = 0;
  double max_rel = 0;
  for (int trial = 0; trial < cfg.trials; ++trial) {
    const Mat x = randmat(cfg.seq, d, 1.0f);
    // fp32 references: dense-dense and masked (the model the sparse
    // pipeline approximates numerically is the MASKED fp32 model).
    const Mat ref_dense =
        forward(x, cfg.seq, d, wq, wk, wv, wcls, cfg.classes, false, {});
    const Mat ref_masked = forward(x, cfg.seq, d, wq, wk, wv, wcls,
                                   cfg.classes, false, mask_dense);
    const Mat dense_half =
        forward(x, cfg.seq, d, wq, wk, wv, wcls, cfg.classes, true, {});
    const Mat sparse_half = forward(x, cfg.seq, d, wq, wk, wv, wcls,
                                    cfg.classes, true, mask_dense);
    dh_cos += cosine(ref_dense, dense_half);
    sh_cos += cosine(ref_masked, sparse_half);
    dh_agree += argmax(ref_dense) == argmax(dense_half) ? 1 : 0;
    sh_agree += argmax(ref_masked) == argmax(sparse_half) ? 1 : 0;
    for (std::size_t i = 0; i < ref_masked.size(); ++i) {
      const double want = ref_masked[i];
      const double got = sparse_half[i];
      const double denom = std::max(1e-3, std::fabs(want));
      max_rel = std::max(max_rel, std::fabs(got - want) / denom);
    }
  }
  rep.dense_half_cosine = dh_cos / cfg.trials;
  rep.sparse_half_cosine = sh_cos / cfg.trials;
  rep.dense_half_agreement = static_cast<double>(dh_agree) / cfg.trials;
  rep.sparse_half_agreement = static_cast<double>(sh_agree) / cfg.trials;
  rep.sparse_half_max_rel_err = max_rel;
  return rep;
}

}  // namespace vsparse::transformer

// Sparse multi-head self-attention (§7.4):
//
//   A = Softmax((Q Kᵀ ⊙ C) / sqrt(k)),   Attention(Q,K,V) = A V
//
// with C a fixed banded+random attention mask in column-vector sparse
// encoding.  QKᵀ⊙C maps onto the SDDMM kernel (Kᵀ is free: the
// row-major K matrix *is* the column-major k x seq RHS), the sparse
// softmax runs on the CVS values in place, and AV maps onto the SpMM
// kernel.  The dense baseline path computes the same layer with
// hgemm + dense softmax.
#pragma once

#include "vsparse/formats/cvs.hpp"
#include "vsparse/formats/dense.hpp"
#include "vsparse/kernels/api.hpp"
#include "vsparse/serve/report.hpp"

namespace vsparse::serve {
struct ServePolicy;
}  // namespace vsparse::serve

namespace vsparse::transformer {

/// Per-stage results of one attention-head forward (the Fig. 20
/// breakdown: QKᵀ∘C, Softmax, AV).
struct AttentionBreakdown {
  kernels::KernelRun qk;
  kernels::KernelRun softmax;
  kernels::KernelRun av;

  double total_cycles(const gpusim::DeviceConfig& hw,
                      const gpusim::CostParams& p = {}) const {
    return qk.cycles(hw, p) + softmax.cycles(hw, p) + av.cycles(hw, p);
  }
};

/// Opt-in serving supervision for the attention core.  With a policy
/// attached, the QKᵀ∘C SDDMM and AV SpMM run inside the launch
/// supervisor's fault boundary (serve/supervisor.hpp) and the reports
/// record every retry/fallback hop.  Null policy is the fast path:
/// the head is bit- and counter-identical to the unsupervised build.
/// The policy must outlive the call.
struct AttentionServe {
  const serve::ServePolicy* policy = nullptr;
  serve::ServeReport* qk_report = nullptr;  ///< optional out-params
  serve::ServeReport* av_report = nullptr;
};

/// One sparse attention head: q, k, v are seq x head_dim row-major
/// device matrices; `mask` is the seq x seq CVS attention mask;
/// `out` receives the seq x head_dim context.  `scratch_values` must
/// hold mask.nnz() halves (the attention-probability buffer).
AttentionBreakdown sparse_attention_head(gpusim::Device& dev,
                                         const DenseDevice<half_t>& q,
                                         const DenseDevice<half_t>& k,
                                         const DenseDevice<half_t>& v,
                                         const CvsDevice& mask,
                                         gpusim::Buffer<half_t>& scratch_values,
                                         DenseDevice<half_t>& out,
                                         const AttentionServe& serve = {});

/// The dense baseline head: full seq x seq attention matrix via hgemm,
/// dense softmax, dense AV.  `scores` must be a seq x seq scratch.
AttentionBreakdown dense_attention_head(gpusim::Device& dev,
                                        const DenseDevice<half_t>& q,
                                        const DenseDevice<half_t>& k,
                                        const DenseDevice<half_t>& v,
                                        DenseDevice<half_t>& scores,
                                        DenseDevice<half_t>& out);

}  // namespace vsparse::transformer

#include "vsparse/transformer/model.hpp"

#include <cmath>
#include <vector>

#include "vsparse/common/rng.hpp"
#include "vsparse/formats/generate.hpp"
#include "vsparse/kernels/dense/gemm.hpp"
#include "vsparse/kernels/softmax/sparse_softmax.hpp"
#include "vsparse/transformer/attention.hpp"

namespace vsparse::transformer {

namespace {

/// Accumulate `run`'s counters and model cycles into a result bucket,
/// scaled by `mult` identical executions (heads x batch).
void add_run(const kernels::KernelRun& run, const gpusim::DeviceConfig& hw,
             const gpusim::CostParams& params, double mult, double& bucket,
             gpusim::KernelStats& total) {
  bucket += run.cycles(hw, params) * mult;
  gpusim::KernelStats scaled = run.stats;
  const auto m = static_cast<std::uint64_t>(mult);
  for (auto& op : scaled.ops) op *= m;
  scaled.global_load_sectors *= m;
  scaled.global_load_requests *= m;
  scaled.global_store_requests *= m;
  scaled.global_store_sectors *= m;
  scaled.l1_sector_hits *= m;
  scaled.l1_sector_misses *= m;
  scaled.l2_sector_hits *= m;
  scaled.l2_sector_misses *= m;
  scaled.dram_read_bytes *= m;
  scaled.dram_write_bytes *= m;
  scaled.smem_load_requests *= m;
  scaled.smem_store_requests *= m;
  scaled.smem_load_bytes *= m;
  scaled.smem_store_bytes *= m;
  scaled.smem_wavefronts *= m;
  scaled.ctas_launched *= m;
  scaled.warps_launched *= m;
  total += scaled;
}

template <class T>
void fill_device(gpusim::Buffer<T>& buf, Rng& rng, float lo, float hi) {
  for (T& x : buf.host()) x = T(rng.uniform_float(lo, hi));
}

}  // namespace

ForwardResult run_transformer_forward(gpusim::Device& dev,
                                      const ModelConfig& cfg,
                                      std::uint64_t seed,
                                      const gpusim::CostParams& params) {
  VSPARSE_CHECK(cfg.seq % 64 == 0);
  VSPARSE_CHECK(cfg.head_dim % 64 == 0);
  VSPARSE_CHECK(cfg.d_model() % 64 == 0 && cfg.ffn_dim % 64 == 0);
  const gpusim::DeviceConfig& hw = dev.config();
  Rng rng(seed);
  ForwardResult res;
  const int d = cfg.d_model();
  const int seq = cfg.seq;
  const double per_batch = cfg.batch;
  const double per_head_batch = static_cast<double>(cfg.heads) * cfg.batch;

  const bool fp32 = cfg.mode == Mode::kDenseFloat;

  // ---- weights (per layer: Wq, Wk, Wv, Wo, W1, W2) --------------------
  const std::size_t weight_elems =
      static_cast<std::size_t>(cfg.layers) *
      (4u * d * d + 2u * static_cast<std::size_t>(d) * cfg.ffn_dim);

  // ---- helper running the three-mode GEMM C = A * W -------------------
  // (executes once; caller scales by batch).
  struct GemmIo {
    gpusim::Buffer<half_t> h;
    gpusim::Buffer<float> f;
    int rows, cols;
  };
  auto alloc_mat = [&](int rows, int cols) {
    GemmIo io;
    io.rows = rows;
    io.cols = cols;
    const auto count =
        static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
    if (fp32) {
      io.f = dev.alloc<float>(count);
    } else {
      io.h = dev.alloc<half_t>(count);
    }
    return io;
  };
  auto fill_mat = [&](GemmIo& io, float lo, float hi) {
    if (fp32) {
      fill_device(io.f, rng, lo, hi);
    } else {
      fill_device(io.h, rng, lo, hi);
    }
  };
  auto gemm = [&](const GemmIo& a, const GemmIo& w, GemmIo& c,
                  double mult) -> void {
    kernels::KernelRun run;
    if (fp32) {
      DenseDevice<float> da{a.f, a.rows, a.cols, a.cols, Layout::kRowMajor};
      DenseDevice<float> dw{w.f, w.rows, w.cols, w.cols, Layout::kRowMajor};
      DenseDevice<float> dc{c.f, c.rows, c.cols, c.cols, Layout::kRowMajor};
      run = kernels::sgemm_fpu(dev, da, dw, dc);
    } else {
      DenseDevice<half_t> da{a.h, a.rows, a.cols, a.cols, Layout::kRowMajor};
      DenseDevice<half_t> dw{w.h, w.rows, w.cols, w.cols, Layout::kRowMajor};
      DenseDevice<half_t> dc{c.h, c.rows, c.cols, c.cols, Layout::kRowMajor};
      run = kernels::hgemm_tcu(dev, da, dw, dc);
    }
    add_run(run, hw, params, mult, res.other_cycles, res.stats);
  };

  // ---- allocations (reused across layers, like framework workspaces) --
  // The attention-score scratch is live for ALL heads and batch
  // elements simultaneously — the dominant Table 4 memory term.
  Cvs mask_host;
  CvsDevice mask{};
  std::vector<gpusim::Buffer<half_t>> sparse_scores;
  std::vector<gpusim::Buffer<half_t>> dense_scores_h;
  std::vector<gpusim::Buffer<float>> dense_scores_f;
  if (cfg.mode == Mode::kSparseHalf) {
    mask_host = make_attention_mask(seq, cfg.v, cfg.band, cfg.sparsity, rng);
    mask = to_device(dev, mask_host);
    const std::size_t nnz = mask_host.values.size();
    for (int i = 0; i < cfg.heads * cfg.batch; ++i) {
      sparse_scores.push_back(dev.alloc<half_t>(nnz));
    }
  } else {
    for (int i = 0; i < cfg.heads * cfg.batch; ++i) {
      const auto count =
          static_cast<std::size_t>(seq) * static_cast<std::size_t>(seq);
      if (fp32) {
        dense_scores_f.push_back(dev.alloc<float>(count));
      } else {
        dense_scores_h.push_back(dev.alloc<half_t>(count));
      }
    }
  }

  // Weights as one arena-style allocation (values random).
  GemmIo weights = alloc_mat(1, static_cast<int>(weight_elems));
  fill_mat(weights, -0.05f, 0.05f);
  // Views into the weight arena per matrix kind (same shapes each
  // layer; one layer's weights are executed, cycles scaled by layers
  // via the loop below).
  auto weight_view = [&](std::size_t offset, int rows, int cols) {
    GemmIo io;
    io.rows = rows;
    io.cols = cols;
    if (fp32) {
      io.f = gpusim::Buffer<float>(&dev, weights.f.addr(offset),
                                   static_cast<std::size_t>(rows) * cols);
    } else {
      io.h = gpusim::Buffer<half_t>(&dev, weights.h.addr(offset),
                                    static_cast<std::size_t>(rows) * cols);
    }
    return io;
  };

  // Activations (batch copies live at once; executed on element 0).
  std::vector<GemmIo> activations;
  for (int b = 0; b < cfg.batch; ++b) {
    activations.push_back(alloc_mat(seq, d));
  }
  fill_mat(activations[0], -1.0f, 1.0f);
  GemmIo q_act = alloc_mat(seq, d);
  GemmIo k_act = alloc_mat(seq, d);
  GemmIo v_act = alloc_mat(seq, d);
  GemmIo attn_out = alloc_mat(seq, d);
  GemmIo ffn_mid = alloc_mat(seq, cfg.ffn_dim);

  const float scale = 1.0f / std::sqrt(static_cast<float>(cfg.head_dim));

  for (int layer = 0; layer < cfg.layers; ++layer) {
    std::size_t woff = static_cast<std::size_t>(layer) *
                       (4u * d * d + 2u * static_cast<std::size_t>(d) *
                                         cfg.ffn_dim);
    GemmIo wq = weight_view(woff, d, d);
    GemmIo wk = weight_view(woff + static_cast<std::size_t>(d) * d, d, d);
    GemmIo wv = weight_view(woff + 2u * d * d, d, d);
    GemmIo wo = weight_view(woff + 3u * d * d, d, d);
    GemmIo w1 = weight_view(woff + 4u * d * d, d, cfg.ffn_dim);
    GemmIo w2 = weight_view(woff + 4u * d * d +
                                static_cast<std::size_t>(d) * cfg.ffn_dim,
                            cfg.ffn_dim, d);

    // QKV projections + output projection + FFN: "Others" in Fig. 20.
    gemm(activations[0], wq, q_act, per_batch);
    gemm(activations[0], wk, k_act, per_batch);
    gemm(activations[0], wv, v_act, per_batch);

    // ---- attention core, per head ------------------------------------
    if (cfg.mode == Mode::kSparseHalf) {
      DenseDevice<half_t> qh{q_act.h, seq, cfg.head_dim, d,
                             Layout::kRowMajor};
      DenseDevice<half_t> kh{k_act.h, seq, cfg.head_dim, d,
                             Layout::kRowMajor};
      DenseDevice<half_t> vh{v_act.h, seq, cfg.head_dim, d,
                             Layout::kRowMajor};
      DenseDevice<half_t> oh{attn_out.h, seq, cfg.head_dim, d,
                             Layout::kRowMajor};
      AttentionServe serve;
      serve::ServeReport qk_report, av_report;
      if (cfg.serve != nullptr) {
        serve.policy = cfg.serve;
        serve.qk_report = &qk_report;
        serve.av_report = &av_report;
      }
      // Scope the storm (if any) to the supervised attention launches;
      // detach even when a give-up unwinds past us.
      struct StormGuard {
        gpusim::Device& dev;
        bool armed;
        ~StormGuard() {
          if (armed) dev.set_fault_plan(nullptr);
        }
      } storm_guard{dev, cfg.attention_storm != nullptr};
      if (cfg.attention_storm != nullptr) {
        dev.set_fault_plan(cfg.attention_storm);
      }
      AttentionBreakdown br = sparse_attention_head(
          dev, qh, kh, vh, mask, sparse_scores[0], oh, serve);
      if (storm_guard.armed) {
        dev.set_fault_plan(nullptr);
        storm_guard.armed = false;
      }
      res.serve_retries += static_cast<std::uint64_t>(qk_report.retries) +
                           static_cast<std::uint64_t>(av_report.retries);
      res.serve_fallbacks += static_cast<std::uint64_t>(qk_report.fallbacks) +
                             static_cast<std::uint64_t>(av_report.fallbacks);
      add_run(br.qk, hw, params, per_head_batch, res.qk_cycles, res.stats);
      add_run(br.softmax, hw, params, per_head_batch, res.softmax_cycles,
              res.stats);
      add_run(br.av, hw, params, per_head_batch, res.av_cycles, res.stats);
    } else if (cfg.mode == Mode::kDenseHalf) {
      DenseDevice<half_t> qh{q_act.h, seq, cfg.head_dim, d,
                             Layout::kRowMajor};
      DenseDevice<half_t> kh{k_act.h, seq, cfg.head_dim, d,
                             Layout::kRowMajor};
      DenseDevice<half_t> vh{v_act.h, seq, cfg.head_dim, d,
                             Layout::kRowMajor};
      DenseDevice<half_t> oh{attn_out.h, seq, cfg.head_dim, d,
                             Layout::kRowMajor};
      DenseDevice<half_t> scores{dense_scores_h[0], seq, seq, seq,
                                 Layout::kRowMajor};
      AttentionBreakdown br =
          dense_attention_head(dev, qh, kh, vh, scores, oh);
      add_run(br.qk, hw, params, per_head_batch, res.qk_cycles, res.stats);
      add_run(br.softmax, hw, params, per_head_batch, res.softmax_cycles,
              res.stats);
      add_run(br.av, hw, params, per_head_batch, res.av_cycles, res.stats);
    } else {
      // Dense fp32: QKᵀ and AV with sgemm, fp32 softmax.
      DenseDevice<float> qh{q_act.f, seq, cfg.head_dim, d, Layout::kRowMajor};
      DenseDevice<float> kh{k_act.f, seq, cfg.head_dim, d, Layout::kRowMajor};
      DenseDevice<float> vh{v_act.f, seq, cfg.head_dim, d, Layout::kRowMajor};
      DenseDevice<float> oh{attn_out.f, seq, cfg.head_dim, d,
                            Layout::kRowMajor};
      DenseDevice<float> scores{dense_scores_f[0], seq, seq, seq,
                                Layout::kRowMajor};
      DenseDevice<float> kt{kh.buf, cfg.head_dim, seq, kh.ld,
                            Layout::kColMajor};
      kernels::KernelRun qk = kernels::sgemm_fpu(dev, qh, kt, scores);
      add_run(qk, hw, params, per_head_batch, res.qk_cycles, res.stats);
      kernels::KernelRun sm = kernels::dense_softmax_f32(dev, scores, scale);
      add_run(sm, hw, params, per_head_batch, res.softmax_cycles, res.stats);
      kernels::KernelRun av = kernels::sgemm_fpu(dev, scores, vh, oh);
      add_run(av, hw, params, per_head_batch, res.av_cycles, res.stats);
    }

    // Output projection + FFN.
    gemm(attn_out, wo, activations[0], per_batch);
    gemm(activations[0], w1, ffn_mid, per_batch);
    gemm(ffn_mid, w2, activations[0], per_batch);
  }

  res.peak_memory_bytes = dev.peak_bytes();
  return res;
}

}  // namespace vsparse::transformer

// Small integer-math helpers used throughout tiling and cache-geometry
// code.  All constexpr so tile shapes can be computed at compile time
// (paper guideline III: compute offsets and constants at compile time).
#pragma once

#include <cstdint>
#include <type_traits>

#include "vsparse/common/macros.hpp"

namespace vsparse {

/// ceil(a / b) for non-negative integers, b > 0.
template <class T>
constexpr T ceil_div(T a, T b) {
  static_assert(std::is_integral_v<T>);
  return static_cast<T>((a + b - 1) / b);
}

/// Smallest multiple of `b` that is >= `a`.
template <class T>
constexpr T round_up(T a, T b) {
  static_assert(std::is_integral_v<T>);
  return ceil_div(a, b) * b;
}

/// Largest multiple of `b` that is <= `a`.
template <class T>
constexpr T round_down(T a, T b) {
  static_assert(std::is_integral_v<T>);
  return (a / b) * b;
}

/// True iff `x` is a power of two (0 is not).
constexpr bool is_pow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// floor(log2(x)) for x > 0.
constexpr int ilog2(std::uint64_t x) {
  int r = 0;
  while (x >>= 1) ++r;
  return r;
}

}  // namespace vsparse

// Environment-variable access for single-threaded setup code.
//
// std::getenv is not safe against a concurrent setenv, which is why
// concurrency-mt-unsafe flags every call site.  In this codebase all
// environment reads happen in bench/CLI setup before any simulator
// worker thread exists, and nothing in-process ever calls setenv — so
// the reads are safe, and the suppression lives here, once, instead of
// on every call site.
#pragma once

#include <cstdlib>

namespace vsparse {

/// Read an environment variable during process setup.  Returns nullptr
/// when unset, exactly like std::getenv.  Only call before simulator
/// worker threads are spawned.
inline const char* env_get(const char* name) {
  return std::getenv(name);  // NOLINT(concurrency-mt-unsafe)
}

}  // namespace vsparse

// Core error-handling and annotation macros shared by all vectorsparse
// modules.  Runtime invariants use VSPARSE_CHECK (always on); hot-path
// invariants use VSPARSE_DCHECK (debug builds only).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace vsparse {

/// Exception thrown by VSPARSE_CHECK failures.  Deriving from
/// std::logic_error: a failed check is a programming error, not an
/// environmental condition.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "VSPARSE_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace vsparse

/// Always-on invariant check.  Throws vsparse::CheckError on failure so
/// tests can assert on misuse and applications can fail loudly.
#define VSPARSE_CHECK(cond)                                              \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::vsparse::detail::check_failed(#cond, __FILE__, __LINE__, {});    \
    }                                                                    \
  } while (0)

/// Always-on invariant check with a streamed message, e.g.
/// `VSPARSE_CHECK_MSG(a == b, "a=" << a << " b=" << b)`.
#define VSPARSE_CHECK_MSG(cond, stream_expr)                             \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::ostringstream vsparse_check_os_;                              \
      vsparse_check_os_ << stream_expr;                                  \
      ::vsparse::detail::check_failed(#cond, __FILE__, __LINE__,         \
                                      vsparse_check_os_.str());          \
    }                                                                    \
  } while (0)

/// Debug-only check for hot paths (warp-level simulator internals).
#ifndef NDEBUG
#define VSPARSE_DCHECK(cond) VSPARSE_CHECK(cond)
#else
#define VSPARSE_DCHECK(cond) \
  do {                       \
  } while (0)
#endif

#if defined(__GNUC__) || defined(__clang__)
#define VSPARSE_ALWAYS_INLINE inline __attribute__((always_inline))
#else
#define VSPARSE_ALWAYS_INLINE inline
#endif

// Deterministic pseudo-random number generation for benchmark and test
// reproducibility.  We use xoshiro256** (public-domain reference
// algorithm by Blackman & Vigna) rather than std::mt19937 because it is
// faster, has a tiny state, and — unlike the standard distributions —
// the helper methods below are bit-identical across standard libraries,
// which keeps the synthetic DLMC suite stable across toolchains.
#pragma once

#include <cstdint>
#include <limits>

#include "vsparse/common/macros.hpp"

namespace vsparse {

/// xoshiro256** generator.  Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words from a single seed via splitmix64, as
  /// recommended by the xoshiro authors.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n) without modulo bias (Lemire's method).
  std::uint64_t uniform_u64(std::uint64_t n) {
    VSPARSE_DCHECK(n > 0);
    unsigned __int128 m = static_cast<unsigned __int128>((*this)()) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        m = static_cast<unsigned __int128>((*this)()) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform int in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    VSPARSE_DCHECK(hi >= lo);
    return lo + static_cast<int>(uniform_u64(
                    static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform float in [0, 1).
  float uniform_float() {
    return static_cast<float>((*this)() >> 40) * 0x1.0p-24f;
  }

  /// Uniform float in [lo, hi).
  float uniform_float(float lo, float hi) {
    return lo + (hi - lo) * uniform_float();
  }

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(float p) { return uniform_float() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace vsparse

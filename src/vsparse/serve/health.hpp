// Kernel health tracking — per-kernel circuit breakers over a sliding
// window of supervised launch outcomes.
//
// Every ServeAttempt the Supervisor records is fed to a HealthTracker
// keyed by the kernel's stable registry name ("spmm_octet",
// "sddmm_wmma_warp", ...; the ABFT variant gets a "+abft" suffix).
// Each key owns one breaker:
//
//   Closed     normal service.  Outcomes land in a sliding window of
//              the last `window` attempts; once at least
//              `min_attempts` are in the window and the failure
//              fraction reaches `failure_percent`, the breaker trips
//              to Open (a *quarantine* event).
//   Open       the gate (ServePolicy::kernel_gate) answers false, so
//              the degradation ladder routes requests around this
//              kernel.  After `cooldown_ticks` of simulated time the
//              breaker moves to Half-Open.
//   Half-Open  traffic is admitted again as probes.  `probe_successes`
//              consecutive clean launches close the breaker (a
//              *restore* event, window cleared); any failure re-opens
//              it with the cooldown doubled per reopening (a *reopen*
//              event), saturating after `max_cooldown_doublings`.
//
// Determinism: everything is keyed on simulated ticks and stored in a
// std::map (sorted iteration), so the event sequence — and
// events_json() — is byte-identical across --threads=N and across
// repeated same-seed runs (asserted by serve_health_test).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "vsparse/serve/report.hpp"

namespace vsparse::serve {

enum class BreakerState : std::uint8_t { kClosed = 0, kOpen, kHalfOpen };

const char* breaker_state_name(BreakerState state);

/// Tuning knobs for every breaker a tracker owns.
struct HealthConfig {
  /// Sliding-window length in attempts (capped at 64 — the window is a
  /// bitmask).
  int window = 16;
  /// Minimum attempts in the window before the trip test applies; a
  /// single early failure must not quarantine a cold kernel.
  int min_attempts = 4;
  /// Trip when failures * 100 >= failure_percent * attempts.
  int failure_percent = 50;
  /// Simulated ticks an Open breaker waits before Half-Open probing.
  std::uint64_t cooldown_ticks = 2'000'000;
  /// Consecutive Half-Open successes that close the breaker.
  int probe_successes = 2;
  /// Reopen cooldown escalation cap: cooldown_ticks << min(reopens, cap).
  int max_cooldown_doublings = 6;
};

/// One state-machine transition, in global tick order.
struct HealthEvent {
  enum class Kind : std::uint8_t { kQuarantine = 0, kHalfOpen, kRestore, kReopen };

  Kind kind = Kind::kQuarantine;
  std::uint64_t tick = 0;
  std::string kernel;  ///< health key ("spmm_octet", "spmm_octet+abft", ...)
  int failures = 0;    ///< window failures at transition time
  int attempts = 0;    ///< window attempts at transition time
};

const char* health_event_kind_name(HealthEvent::Kind kind);

/// The registry-keyed breaker table.  Single-threaded by design: the
/// scheduler's event loop is the only caller, and the gpusim engine's
/// worker threads never touch it.
class HealthTracker {
 public:
  struct Totals {
    std::uint64_t quarantines = 0;
    std::uint64_t half_opens = 0;
    std::uint64_t restores = 0;
    std::uint64_t reopens = 0;
  };

  explicit HealthTracker(HealthConfig config = {});

  /// Move time forward: Open breakers whose cooldown expired at or
  /// before `tick` transition to Half-Open (map order, so the event
  /// sequence is deterministic).  Call once per scheduling step.
  void advance(std::uint64_t tick);

  /// Gate query: false only while `kernel`'s breaker is Open.  Unknown
  /// kernels are healthy by definition.
  bool allowed(const std::string& kernel) const;

  /// Feed one launch outcome (ok == the attempt completed).
  void record(const std::string& kernel, bool ok, std::uint64_t tick);

  /// ServePolicy::kernel_gate adapter: ctx is the HealthTracker.
  static bool gate(void* ctx, const char* kernel, bool abft);

  BreakerState state(const std::string& kernel) const;

  /// Health keys whose breakers are currently Open, in map (sorted)
  /// order — the flight recorder snapshots this so a replay can rebuild
  /// the exact gate the failing request ran under.
  std::vector<std::string> open_kernels() const;

  const Totals& totals() const { return totals_; }
  const std::vector<HealthEvent>& events() const { return events_; }

  /// Deterministic JSON array of every transition, in tick order.
  std::string events_json() const;

 private:
  struct Circuit {
    BreakerState state = BreakerState::kClosed;
    std::uint64_t window_bits = 0;  ///< bit i set => attempt i failed
    int window_size = 0;            ///< attempts currently in the window
    int failures = 0;               ///< set bits in window_bits
    std::uint64_t cooldown_until = 0;
    int probe_ok = 0;     ///< consecutive Half-Open successes
    int reopenings = 0;   ///< Half-Open failures so far (escalates cooldown)
  };

  void push_outcome(Circuit& c, bool ok);
  void emit(HealthEvent::Kind kind, std::uint64_t tick,
            const std::string& kernel, const Circuit& c);

  HealthConfig config_;
  std::map<std::string, Circuit> circuits_;
  std::vector<HealthEvent> events_;
  Totals totals_;
};

/// The health key for a supervised attempt: registry kernel name, with
/// "+abft" appended for the ABFT rung ("spmm" + kOctetAbft ->
/// "spmm_octet+abft").  `op` is ServeReport::op ("spmm" | "sddmm").
std::string health_key(const std::string& op, ServeRung rung);

}  // namespace vsparse::serve

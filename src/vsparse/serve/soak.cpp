#include "vsparse/serve/soak.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>

#include "vsparse/common/rng.hpp"
#include "vsparse/formats/cvs.hpp"
#include "vsparse/formats/dense.hpp"
#include "vsparse/formats/generate.hpp"
#include "vsparse/gpusim/device.hpp"
#include "vsparse/gpusim/faults.hpp"
#include "vsparse/kernels/dispatch.hpp"
#include "vsparse/serve/queue.hpp"

namespace vsparse::serve {
namespace {

// splitmix64 — the same mixer the supervisor's backoff jitter uses, so
// the storm is reproducible from the seed alone.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

enum class Mechanism : std::uint8_t {
  kClean,
  kTransientEcc,
  kStickyEcc,
  kRateMasked,
  kWatchdog,
  kOversized,
};

struct RequestSpec {
  Mechanism mech = Mechanism::kClean;
  bool sddmm = false;
  int m = 64, k = 64, n = 64, v = 4;
  double sparsity = 0.7;
  std::uint64_t data_seed = 0;
  std::uint64_t storm_seed = 0;
};

// Everything about request i follows from (config.seed, i).  Shapes
// keep N = 64: the octet SpMM then runs one CTA per vector row, so a
// targeted fault address is read by exactly one CTA and the retry
// sequence is identical at any --threads=N (see soak.hpp).
RequestSpec make_spec(const SoakConfig& config, int i) {
  RequestSpec spec;
  const std::uint64_t h =
      mix64(config.seed ^ (static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ull));
  spec.data_seed = mix64(h ^ 0xda7a);
  spec.storm_seed = mix64(h ^ 0x570) | 1;
  spec.v = ((h >> 8) & 1) ? 2 : 4;
  spec.sparsity = ((h >> 12) & 1) ? 0.9 : 0.7;
  const int r = static_cast<int>(h % 100);
  if (r < 50) {
    spec.mech = Mechanism::kClean;
  } else if (r < 64) {
    spec.mech = Mechanism::kTransientEcc;
  } else if (r < 76) {
    spec.mech = Mechanism::kStickyEcc;
  } else if (r < 86) {
    spec.mech = Mechanism::kRateMasked;
  } else if (r < 93) {
    spec.mech = Mechanism::kWatchdog;
  } else if (config.memory_quota_bytes > 0) {
    spec.mech = Mechanism::kOversized;
    spec.m = spec.k = 512;  // footprint + re-encode workspace blow the quota
  } else {
    spec.mech = Mechanism::kClean;
  }
  // A slice of the benign requests exercises the SDDMM path (its ladder
  // has no re-encode rung, so targeted-fault mechanisms stay SpMM-only).
  if ((spec.mech == Mechanism::kClean || spec.mech == Mechanism::kRateMasked) &&
      ((h >> 16) & 3) == 0) {
    spec.sddmm = true;
  }
  return spec;
}

const char* op_name(const RequestSpec& spec) {
  return spec.sddmm ? "sddmm" : "spmm";
}

// Force integer values so every ladder rung — including the dense-GEMM
// decode, whose fp16 accumulation order differs — is bit-identical to
// the fault-free run.  |value| <= 3, |B| <= 3, K <= 512 keeps every
// partial sum an exact fp16 integer.
void make_integer_values(std::vector<half_t>& values, std::uint64_t seed) {
  for (std::size_t j = 0; j < values.size(); ++j) {
    const std::uint64_t hv = mix64(seed ^ (0x7a1ee5 + j));
    const float mag = static_cast<float>(1 + (hv % 3));
    values[j] = half_t((hv & 8) ? mag : -mag);
  }
}

struct RunResult {
  bool completed = false;
  bool bit_exact = true;
};

RunResult run_spmm_request(const SoakConfig& config, Supervisor& sup,
                           gpusim::Device& ref_dev, const RequestSpec& spec) {
  gpusim::Device& dev = sup.device();
  Rng rng(spec.data_seed);
  Cvs a_host = make_cvs(spec.m, spec.k, spec.v, spec.sparsity, rng);
  make_integer_values(a_host.values, spec.data_seed);
  DenseMatrix<half_t> b_host(spec.k, spec.n);
  b_host.fill_random_int(rng);
  DenseMatrix<half_t> c_host(spec.m, spec.n);

  CvsDevice a = to_device(dev, a_host);
  DenseDevice<half_t> b = to_device(dev, b_host);
  DenseDevice<half_t> c = to_device(dev, c_host);

  gpusim::FaultPlan plan(spec.storm_seed, /*ecc_enabled=*/true);
  bool armed = false;
  switch (spec.mech) {
    case Mechanism::kTransientEcc:
    case Mechanism::kStickyEcc:
      // A double-bit upset parked on the sparse operand's first value —
      // read by exactly one CTA (N = 64), detected-uncorrectable under
      // SEC-DED.  Transient fires once (retry sees clean data); sticky
      // fires every attempt until the ladder re-encodes A elsewhere.
      plan.add_target({gpusim::FaultSite::kDramRead, a.values.addr(0),
                       /*bit=*/1, /*n_bits=*/2,
                       /*sticky=*/spec.mech == Mechanism::kStickyEcc});
      armed = true;
      break;
    case Mechanism::kRateMasked:
      // Random single-bit upsets under SEC-DED: every one is corrected
      // in flight, the request completes clean with zero retries.
      plan.set_rates({.dram_read = 1e-4});
      armed = true;
      break;
    default:
      break;
  }
  if (armed) dev.set_fault_plan(&plan);

  kernels::SpmmOptions options;
  options.sim.threads = config.threads;
  options.sim.trace = config.trace;
  if (spec.mech == Mechanism::kWatchdog) options.sim.watchdog_cta_ops = 16;

  const ServeReport& report = sup.submit_spmm(a, b, c, options);
  if (armed) dev.set_fault_plan(nullptr);

  RunResult out;
  out.completed = report.completed;
  if (report.completed) {
    // Recovery contract: bit-identical to a fault-free, unsupervised
    // run of the same problem.
    ref_dev.reset();
    CvsDevice ra = to_device(ref_dev, a_host);
    DenseDevice<half_t> rb = to_device(ref_dev, b_host);
    DenseDevice<half_t> rc = to_device(ref_dev, c_host);
    kernels::spmm(ref_dev, ra, rb, rc, {.sim = {.threads = config.threads}});
    const auto got = c.buf.host();
    const auto want = rc.buf.host();
    out.bit_exact =
        got.size() == want.size() &&
        std::memcmp(got.data(), want.data(), got.size_bytes()) == 0;
  }
  return out;
}

RunResult run_sddmm_request(const SoakConfig& config, Supervisor& sup,
                            gpusim::Device& ref_dev, const RequestSpec& spec) {
  gpusim::Device& dev = sup.device();
  Rng rng(spec.data_seed);
  DenseMatrix<half_t> a_host(spec.m, spec.k);
  a_host.fill_random_int(rng);
  DenseMatrix<half_t> b_host(spec.k, spec.n, Layout::kColMajor);
  b_host.fill_random_int(rng);
  Cvs mask_host = make_cvs_mask(spec.m, spec.n, spec.v, spec.sparsity, rng);

  DenseDevice<half_t> a = to_device(dev, a_host);
  DenseDevice<half_t> b = to_device(dev, b_host);
  CvsDevice mask = to_device(dev, mask_host);
  auto out_values = dev.alloc<half_t>(mask_host.values.size());

  gpusim::FaultPlan plan(spec.storm_seed, /*ecc_enabled=*/true);
  const bool armed = spec.mech == Mechanism::kRateMasked;
  if (armed) {
    plan.set_rates({.dram_read = 1e-4});
    dev.set_fault_plan(&plan);
  }

  kernels::SddmmOptions options;
  options.sim.threads = config.threads;
  options.sim.trace = config.trace;

  const ServeReport& report = sup.submit_sddmm(a, b, mask, out_values, options);
  if (armed) dev.set_fault_plan(nullptr);

  RunResult out;
  out.completed = report.completed;
  if (report.completed) {
    ref_dev.reset();
    DenseDevice<half_t> ra = to_device(ref_dev, a_host);
    DenseDevice<half_t> rb = to_device(ref_dev, b_host);
    CvsDevice rmask = to_device(ref_dev, mask_host);
    auto rout = ref_dev.alloc<half_t>(mask_host.values.size());
    kernels::sddmm(ref_dev, ra, rb, rmask, rout,
                   {.sim = {.threads = config.threads}});
    const auto got = out_values.host();
    const auto want = rout.host();
    out.bit_exact =
        got.size() == want.size() &&
        std::memcmp(got.data(), want.data(), got.size_bytes()) == 0;
  }
  return out;
}

}  // namespace

SoakResult run_soak(const SoakConfig& config) {
  gpusim::DeviceConfig hw = gpusim::DeviceConfig::volta_v100();
  hw.dram_capacity = std::size_t{1} << 26;  // 64 MiB — reset per request
  gpusim::Device dev(hw);
  gpusim::Device ref_dev(hw);

  ServePolicy policy;
  policy.retry = config.retry;
  policy.ladder = true;
  policy.memory_quota_bytes = config.memory_quota_bytes;
  Supervisor sup(dev, policy);

  SoakResult result;
  BoundedQueue<int> queue(config.queue_capacity);
  // Bursty arrivals: each burst overshoots capacity by ~1/8, so a
  // deterministic slice of requests is turned away at admission — the
  // backpressure path, classified kQueueFull like any other failure.
  const int burst = static_cast<int>(
      config.queue_capacity + std::max<std::size_t>(1, config.queue_capacity / 8));

  int next = 0;
  while (next < config.requests || queue.size() > 0) {
    for (int j = 0; j < burst && next < config.requests; ++j, ++next) {
      if (!queue.try_push(next)) {
        sup.record_rejection(op_name(make_spec(config, next)),
                             ErrorCode::kQueueFull, "serve.queue");
      }
    }
    while (auto item = queue.try_pop()) {
      const RequestSpec spec = make_spec(config, *item);
      dev.reset();
      const RunResult run =
          spec.sddmm ? run_sddmm_request(config, sup, ref_dev, spec)
                     : run_spmm_request(config, sup, ref_dev, spec);
      if (run.completed && !run.bit_exact) ++result.mismatches;
    }
  }
  queue.close();

  result.totals = sup.totals();
  result.queue_accepted = queue.accepted();
  result.queue_rejected = queue.rejected();
  result.report_json = sup.reports_json();
  return result;
}

}  // namespace vsparse::serve

#include "vsparse/serve/recorder.hpp"

#include <cctype>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "vsparse/serve/error.hpp"

namespace vsparse::serve {
namespace {

// splitmix64 — the same mixer the rest of the serving layer uses.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t mix_string(std::uint64_t h, const std::string& s) {
  for (char ch : s) h = mix64(h ^ static_cast<unsigned char>(ch));
  return h;
}

/// Sparsity values are seed-derived from {0.7, 0.9}; three fixed
/// digits round-trip them exactly through stod.
std::string format_sparsity(double sparsity) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3) << sparsity;
  return os.str();
}

RequestOp parse_op(const std::string& name, std::size_t offset) {
  if (name == "spmm") return RequestOp::kSpmm;
  if (name == "sddmm") return RequestOp::kSddmm;
  if (name == "attention") return RequestOp::kAttention;
  VSPARSE_RAISE(ErrorCode::kMalformedFormat, "serve.recorder",
                "unknown request op \"" << name << "\" at offset " << offset);
}

/// Minimal recursive-descent reader for the vsparse-repro-v1 schema —
/// the same shape as the hardened policy-cache loader (kernels/
/// policy.cpp), including the raise-on-anything-odd posture: a repro
/// bundle is an external artifact.
class ReproReader {
 public:
  explicit ReproReader(std::string_view text) : text_(text) {}

  void expect(char ch) {
    skip_ws();
    check(pos_ < text_.size() && text_[pos_] == ch,
          std::string("expected '") + ch + "'");
    ++pos_;
  }

  bool consume(char ch) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ch) {
      ++pos_;
      return true;
    }
    return false;
  }

  char peek() {
    skip_ws();
    check(pos_ < text_.size(), "unexpected end of input");
    return text_[pos_];
  }

  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char ch = text_[pos_++];
      if (ch == '\\') {
        check(pos_ < text_.size(), "truncated escape");
        ch = text_[pos_++];
        check(ch == '"' || ch == '\\' || ch == '/', "unsupported escape");
      }
      out += ch;
    }
    check(pos_ < text_.size(), "unterminated string");
    ++pos_;
    return out;
  }

  double number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    check(pos_ > start, "expected number");
    double value = 0.0;
    try {
      value = std::stod(std::string(text_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      check(false, "unparseable number");
    }
    check(std::isfinite(value), "non-finite number");
    return value;
  }

  /// Exact unsigned 64-bit parse — seeds are full-width mix64 outputs,
  /// so routing them through double would silently round above 2^53.
  std::uint64_t u64() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    check(pos_ > start, "expected unsigned integer");
    std::uint64_t value = 0;
    for (std::size_t i = start; i < pos_; ++i) {
      const std::uint64_t digit =
          static_cast<std::uint64_t>(text_[i] - '0');
      check(value <= (~std::uint64_t{0} - digit) / 10, "integer overflow");
      value = value * 10 + digit;
    }
    return value;
  }

  bool boolean() {
    skip_ws();
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return false;
    }
    check(false, "expected boolean");
    return false;
  }

  /// Skip any JSON value and return its raw text — how the failure
  /// signature travels through parsing as an opaque canonical string.
  std::string raw_value() {
    skip_ws();
    const std::size_t start = pos_;
    skip_value();
    return std::string(text_.substr(start, pos_ - start));
  }

  bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

  std::size_t offset() const { return pos_; }

  void check(bool ok, const std::string& what) {
    VSPARSE_CHECK_RAISE(ok, ErrorCode::kMalformedFormat, "serve.recorder",
                        "malformed repro bundle at offset " << pos_ << ": "
                                                            << what);
  }

 private:
  void skip_value() {
    skip_ws();
    check(pos_ < text_.size(), "unexpected end of input");
    const char ch = text_[pos_];
    if (ch == '{') {
      ++pos_;
      if (consume('}')) return;
      do {
        (void)string();
        expect(':');
        skip_value();
      } while (consume(','));
      expect('}');
    } else if (ch == '[') {
      ++pos_;
      if (consume(']')) return;
      do {
        skip_value();
      } while (consume(','));
      expect(']');
    } else if (ch == '"') {
      (void)string();
    } else if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
    } else if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
    } else {
      (void)number();
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

ReproBundle parse_bundle_object(ReproReader& r) {
  ReproBundle b;
  bool have_op = false, have_seed = false, have_signature = false;
  r.expect('{');
  if (!r.consume('}')) {
    do {
      const std::string key = r.string();
      r.expect(':');
      if (key == "request_id") {
        b.request_id = r.u64();
      } else if (key == "tick") {
        b.tick = r.u64();
      } else if (key == "device") {
        b.device = static_cast<int>(r.u64());
      } else if (key == "op") {
        b.spec.op = parse_op(r.string(), r.offset());
        have_op = true;
      } else if (key == "m") {
        b.spec.m = static_cast<int>(r.u64());
      } else if (key == "k") {
        b.spec.k = static_cast<int>(r.u64());
      } else if (key == "v") {
        b.spec.v = static_cast<int>(r.u64());
      } else if (key == "sparsity") {
        b.spec.sparsity = r.number();
      } else if (key == "data_seed") {
        b.spec.data_seed = r.u64();
        have_seed = true;
      } else if (key == "threads") {
        b.threads = static_cast<int>(r.u64());
      } else if (key == "ecc_burst") {
        b.ecc_burst = r.boolean();
      } else if (key == "watchdog_cta_ops") {
        b.watchdog_cta_ops = r.u64();
      } else if (key == "device_fault") {
        b.device_fault = r.string();
        r.check(b.device_fault == "none" || b.device_fault == "wedged" ||
                    b.device_fault == "dead",
                "unknown device_fault");
      } else if (key == "memory_quota_bytes") {
        b.memory_quota_bytes = static_cast<std::size_t>(r.u64());
      } else if (key == "retry") {
        r.expect('{');
        if (!r.consume('}')) {
          do {
            const std::string rk = r.string();
            r.expect(':');
            if (rk == "max_retries") {
              b.retry.max_retries = static_cast<int>(r.u64());
            } else if (rk == "backoff_base_cycles") {
              b.retry.backoff_base_cycles = r.u64();
            } else if (rk == "backoff_multiplier") {
              b.retry.backoff_multiplier = static_cast<int>(r.u64());
            } else if (rk == "seed") {
              b.retry.seed = r.u64();
            } else {
              r.check(false, "unknown retry key \"" + rk + "\"");
            }
          } while (r.consume(','));
          r.expect('}');
        }
      } else if (key == "first_request_id") {
        b.first_request_id = r.u64();
      } else if (key == "open_kernels") {
        r.expect('[');
        if (!r.consume(']')) {
          do {
            b.open_kernels.push_back(r.string());
          } while (r.consume(','));
          r.expect(']');
        }
      } else if (key == "options_digest") {
        b.options_digest = r.u64();
      } else if (key == "signature") {
        b.signature = r.raw_value();
        have_signature = true;
      } else {
        r.check(false, "unknown bundle key \"" + key + "\"");
      }
    } while (r.consume(','));
    r.expect('}');
  }
  r.check(have_op && have_seed && have_signature,
          "bundle missing op/data_seed/signature");
  r.check(b.spec.m >= 1 && b.spec.k >= 1 && b.spec.v >= 1 && b.threads >= 1,
          "non-positive shape or thread count");
  r.check(b.spec.sparsity >= 0.0 && b.spec.sparsity < 1.0,
          "sparsity out of [0,1)");
  return b;
}

/// Static quarantine gate for replay: a snapshot of the Open health
/// keys stands in for the live tracker.
bool snapshot_gate(void* ctx, const char* kernel, bool abft) {
  const auto* open = static_cast<const std::vector<std::string>*>(ctx);
  std::string key = kernel;
  if (abft) key += "+abft";
  for (const std::string& k : *open) {
    if (k == key) return false;
  }
  return true;
}

}  // namespace

std::uint64_t ReproBundle::compute_digest() const {
  std::uint64_t h = mix64(0x4ec0bd ^ request_id);
  h = mix64(h ^ tick);
  h = mix64(h ^ static_cast<std::uint64_t>(device));
  h = mix64(h ^ static_cast<std::uint64_t>(spec.op));
  h = mix64(h ^ static_cast<std::uint64_t>(spec.m));
  h = mix64(h ^ static_cast<std::uint64_t>(spec.k));
  h = mix64(h ^ static_cast<std::uint64_t>(spec.v));
  h = mix_string(h, format_sparsity(spec.sparsity));
  h = mix64(h ^ spec.data_seed);
  h = mix64(h ^ static_cast<std::uint64_t>(threads));
  h = mix64(h ^ (ecc_burst ? 1 : 0));
  h = mix64(h ^ watchdog_cta_ops);
  h = mix_string(h, device_fault);
  h = mix64(h ^ static_cast<std::uint64_t>(memory_quota_bytes));
  h = mix64(h ^ static_cast<std::uint64_t>(retry.max_retries));
  h = mix64(h ^ retry.backoff_base_cycles);
  h = mix64(h ^ static_cast<std::uint64_t>(retry.backoff_multiplier));
  h = mix64(h ^ retry.seed);
  h = mix64(h ^ first_request_id);
  for (const std::string& k : open_kernels) h = mix_string(h, k);
  return h;
}

std::string ReproBundle::to_json() const {
  std::ostringstream os;
  os << "{\"request_id\":" << request_id << ",\"tick\":" << tick
     << ",\"device\":" << device << ",\"op\":\"" << request_op_name(spec.op)
     << "\",\"m\":" << spec.m << ",\"k\":" << spec.k << ",\"v\":" << spec.v
     << ",\"sparsity\":" << format_sparsity(spec.sparsity)
     << ",\"data_seed\":" << spec.data_seed << ",\"threads\":" << threads
     << ",\"ecc_burst\":" << (ecc_burst ? "true" : "false")
     << ",\"watchdog_cta_ops\":" << watchdog_cta_ops << ",\"device_fault\":\""
     << device_fault << "\",\"memory_quota_bytes\":" << memory_quota_bytes
     << ",\"retry\":{\"max_retries\":" << retry.max_retries
     << ",\"backoff_base_cycles\":" << retry.backoff_base_cycles
     << ",\"backoff_multiplier\":" << retry.backoff_multiplier
     << ",\"seed\":" << retry.seed << "}"
     << ",\"first_request_id\":" << first_request_id << ",\"open_kernels\":[";
  for (std::size_t i = 0; i < open_kernels.size(); ++i) {
    if (i) os << ",";
    os << "\"" << open_kernels[i] << "\"";
  }
  os << "],\"options_digest\":" << options_digest
     << ",\"signature\":" << signature << "}";
  return os.str();
}

std::string signature_json(const std::vector<ServeReport>& reports,
                           std::size_t first, const ExecOutcome& outcome) {
  std::ostringstream os;
  os << "{\"final_code\":\"" << error_code_name(outcome.final_code)
     << "\",\"final_site\":\"" << outcome.final_site << "\",\"attempts\":[";
  bool any = false;
  for (std::size_t ri = first; ri < reports.size(); ++ri) {
    const ServeReport& rep = reports[ri];
    for (const ServeAttempt& at : rep.attempts) {
      if (any) os << ",";
      any = true;
      os << "{\"op\":\"" << rep.op << "\",\"rung\":\""
         << serve_rung_name(at.rung) << "\",\"attempt\":" << at.attempt
         << ",\"backoff_cycles\":" << at.backoff_cycles << ",\"outcome\":\""
         << (at.ok ? "ok" : error_code_name(at.code)) << "\",\"site\":\""
         << at.site << "\"}";
    }
  }
  os << "]}";
  return os.str();
}

std::vector<ReproBundle> parse_repro_json(std::string_view text) {
  constexpr std::size_t kMaxReproBytes = std::size_t{4} << 20;
  VSPARSE_CHECK_RAISE(text.size() <= kMaxReproBytes,
                      ErrorCode::kMalformedFormat, "serve.recorder",
                      "repro artifact is " << text.size()
                                           << " bytes (cap "
                                           << kMaxReproBytes << ")");
  ReproReader r(text);
  std::vector<ReproBundle> bundles;
  // A whole recorder document starts with a "schema" key; a bare
  // bundle starts with any bundle key.  Disambiguate by peeking at the
  // first key of the top-level object.
  r.expect('{');
  const std::string first_key = r.string();
  r.expect(':');
  if (first_key == "schema") {
    const std::string schema = r.string();
    r.check(schema == "vsparse-repro-v1",
            "unsupported schema \"" + schema + "\"");
    while (r.consume(',')) {
      const std::string key = r.string();
      r.expect(':');
      if (key == "bundles") {
        r.expect('[');
        if (!r.consume(']')) {
          do {
            bundles.push_back(parse_bundle_object(r));
          } while (r.consume(','));
          r.expect(']');
        }
      } else if (key == "dropped") {
        (void)r.u64();
      } else {
        r.check(false, "unknown document key \"" + key + "\"");
      }
    }
    r.expect('}');
    r.check(r.at_end(), "trailing bytes after document");
    return bundles;
  }
  // Bare bundle: re-parse from the top with the bundle grammar.
  ReproReader r2(text);
  bundles.push_back(parse_bundle_object(r2));
  r2.check(r2.at_end(), "trailing bytes after bundle");
  return bundles;
}

bool FlightRecorder::capture(ReproBundle bundle) {
  if (bundles_.size() >= capacity_) {
    ++dropped_;
    return false;
  }
  bundle.options_digest = bundle.compute_digest();
  bundles_.push_back(std::move(bundle));
  return true;
}

std::string FlightRecorder::to_json() const {
  std::ostringstream os;
  os << "{\"schema\":\"vsparse-repro-v1\",\"bundles\":[";
  for (std::size_t i = 0; i < bundles_.size(); ++i) {
    if (i) os << ",\n";
    os << bundles_[i].to_json();
  }
  os << "],\"dropped\":" << dropped_ << "}\n";
  return os.str();
}

ReplayResult replay_bundle(const ReproBundle& bundle) {
  gpusim::DeviceConfig hw = gpusim::DeviceConfig::volta_v100();
  hw.dram_capacity = std::size_t{1} << 26;  // the scheduler's arena size
  gpusim::Device dev(hw);

  ServePolicy policy;
  policy.retry = bundle.retry;
  policy.ladder = true;
  policy.memory_quota_bytes = bundle.memory_quota_bytes;
  policy.kernel_gate = &snapshot_gate;
  // snapshot_gate only reads; the const_cast keeps ServePolicy's
  // void* context signature unchanged.
  policy.kernel_gate_ctx =
      const_cast<std::vector<std::string>*>(&bundle.open_kernels);

  Supervisor sup(dev, policy);
  sup.set_next_request_id(bundle.first_request_id);

  if (bundle.device_fault == "wedged") {
    dev.set_device_fault(gpusim::DeviceFault::kWedged);
  } else if (bundle.device_fault == "dead") {
    dev.set_device_fault(gpusim::DeviceFault::kDead);
  }

  ExecEnv env;
  env.threads = bundle.threads;
  env.ecc_burst = bundle.ecc_burst;
  env.watchdog_cta_ops = bundle.watchdog_cta_ops;

  ReplayResult result;
  result.expected_signature = bundle.signature;
  result.outcome = execute_request(sup, bundle.spec, env);
  result.got_signature = signature_json(sup.reports(), 0, result.outcome);
  result.signature_match = result.got_signature == result.expected_signature;
  return result;
}

}  // namespace vsparse::serve

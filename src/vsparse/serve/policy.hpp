// Serving policy knobs — what a long-lived process decides *once* and
// applies to every launch it supervises.
//
// Dependency leaf (cstddef/cstdint only): kernels/dispatch.hpp keeps
// the policy behind a forward-declared pointer, and this header is
// what callers include to construct one.
#pragma once

#include <cstddef>
#include <cstdint>

namespace vsparse::serve {

/// Saturation ceiling of the exponential backoff schedule: one retry
/// never waits more than ~2^40 simulated cycles (minutes of device
/// time).  Million-launch soaks with aggressive multipliers hit this
/// cap instead of wrapping the uint64 arithmetic — the overflow
/// invariant serve_test pins.
inline constexpr std::uint64_t kMaxBackoffCycles = std::uint64_t{1} << 40;

/// Bounded retries with deterministic exponential backoff.  Backoff is
/// *simulated* time: the supervisor records the cycles a real serving
/// loop would have waited (seeded jitter decorrelates concurrent
/// requests) instead of sleeping, so soak runs are fast and reports
/// are bit-identical at any --threads=N.
struct RetryPolicy {
  /// Extra attempts per ladder rung after the first, spent only on
  /// retryable errors (ErrorCode taxonomy: ECC detections, ABFT
  /// exhaustion).  0 disables retry; the ladder still applies.
  int max_retries = 2;
  /// Backoff before retry k (1-based): base * multiplier^(k-1) + jitter,
  /// jitter in [0, base) hashed from (seed, request, rung, attempt).
  std::uint64_t backoff_base_cycles = 1024;
  int backoff_multiplier = 2;
  std::uint64_t seed = 0;
};

/// The full fault-boundary policy a Supervisor (or a dispatch call
/// with SpmmOptions::serve set) executes a request under.
struct ServePolicy {
  RetryPolicy retry;

  /// Walk the degradation ladder after retries are exhausted (octet ->
  /// octet+ABFT -> blocked-ELL -> dense GEMM -> FPU reference for
  /// SpMM; octet -> WMMA -> FPU for SDDMM).  Off = retry-only: any
  /// rung failure is final.
  bool ladder = true;

  /// Per-request memory quota: operand bytes plus the worst-case
  /// ladder re-encode workspace must fit, or the request is rejected
  /// with kQuotaExceeded before anything launches.  0 = unlimited.
  std::size_t memory_quota_bytes = 0;

  /// Identifies the request in reports and decorrelates backoff jitter
  /// across requests.  Supervisor::submit_* stamps this automatically;
  /// direct dispatch callers may set it by hand.
  std::uint64_t request_id = 0;

  /// Optional kernel-health gate (serve/health.hpp is the canonical
  /// implementation).  Consulted once per candidate rung while the
  /// supervisor builds a request's rung list — entry kernel included —
  /// with the kernel's stable registry name and whether the ABFT
  /// variant is meant; returning false routes the request around that
  /// kernel (a quarantined circuit).  If the gate rejects *every* rung
  /// the unfiltered list is used (fail-static: an all-quarantined
  /// palette must still serve rather than reject traffic).  A function
  /// pointer + context keeps this header a dependency leaf.  Null (the
  /// default) changes nothing — the fault-free fast path stays bit-
  /// and counter-identical to unsupervised dispatch.
  bool (*kernel_gate)(void* ctx, const char* kernel, bool abft) = nullptr;
  void* kernel_gate_ctx = nullptr;
};

}  // namespace vsparse::serve

#include "vsparse/serve/report.hpp"

#include <sstream>

namespace vsparse::serve {

const char* serve_rung_name(ServeRung rung) {
  switch (rung) {
    case ServeRung::kOctet:
      return "octet";
    case ServeRung::kOctetAbft:
      return "octet_abft";
    case ServeRung::kBlockedEll:
      return "blocked_ell";
    case ServeRung::kDenseGemm:
      return "dense_gemm";
    case ServeRung::kFpuSubwarp:
      return "fpu_subwarp";
    case ServeRung::kCsrFine:
      return "csr_fine";
    case ServeRung::kWmmaWarp:
      return "wmma_warp";
    case ServeRung::kNumRungs:
      break;
  }
  return "none";
}

std::string ServeReport::to_json() const {
  std::ostringstream os;
  os << "{\"request\":" << request_id << ",\"op\":\"" << op
     << "\",\"completed\":" << (completed ? "true" : "false")
     << ",\"rejected\":" << (rejected ? "true" : "false")
     << ",\"final_rung\":\"" << serve_rung_name(final_rung)
     << "\",\"retries\":" << retries << ",\"fallbacks\":" << fallbacks
     << ",\"backoff_cycles\":" << backoff_cycles;
  if (has_error) {
    os << ",\"error\":{\"code\":\"" << error_code_name(final_code)
       << "\",\"site\":\"" << final_site << "\"}";
  }
  os << ",\"attempts\":[";
  for (std::size_t i = 0; i < attempts.size(); ++i) {
    const ServeAttempt& at = attempts[i];
    if (i > 0) os << ',';
    os << "{\"rung\":\"" << serve_rung_name(at.rung)
       << "\",\"attempt\":" << at.attempt
       << ",\"backoff_cycles\":" << at.backoff_cycles << ",\"outcome\":\"";
    if (at.ok) {
      os << "ok\"";
    } else {
      os << error_code_name(at.code) << "\",\"site\":\"" << at.site
         << "\",\"retryable\":"
         << (error_code_retryable(at.code) ? "true" : "false");
    }
    os << '}';
  }
  os << "]}";
  return os.str();
}

std::string reports_json(const std::vector<ServeReport>& reports) {
  std::uint64_t completed = 0, rejected = 0, retries = 0, fallbacks = 0,
                give_ups = 0;
  for (const ServeReport& r : reports) {
    completed += r.completed ? 1 : 0;
    rejected += r.rejected ? 1 : 0;
    retries += static_cast<std::uint64_t>(r.retries);
    fallbacks += static_cast<std::uint64_t>(r.fallbacks);
    give_ups += (!r.completed && !r.rejected) ? 1 : 0;
  }
  std::ostringstream os;
  os << "{\"schema\":\"vsparse-serve-v1\",\"requests\":" << reports.size()
     << ",\"completed\":" << completed << ",\"rejected\":" << rejected
     << ",\"give_ups\":" << give_ups << ",\"retries\":" << retries
     << ",\"fallbacks\":" << fallbacks << ",\"reports\":[\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    os << reports[i].to_json() << (i + 1 < reports.size() ? ",\n" : "\n");
  }
  os << "]}\n";
  return os.str();
}

}  // namespace vsparse::serve

// Multi-tenant request scheduler — the serving front end that turns
// the PR 4 per-request Supervisor into a *system*: an open-loop,
// seeded stream of heterogeneous requests (SpMM / SDDMM / sparse
// attention) from several tenants, scheduled one at a time on a
// simulated device under admission control, per-tenant memory quotas,
// and deadline SLOs.
//
// Time is a deterministic simulated clock (ticks).  Arrivals follow
// seeded inter-arrival gaps; service time is charged from a fixed
// model over *SM-local* engine counters (instructions, L1 missed
// sectors, shared-memory wavefronts — never the L2/DRAM split, which
// legitimately varies at --threads>1) plus the supervisor's recorded
// backoff cycles.  Same seed + config => byte-identical load report at
// any thread count.
//
// The control loop per step:
//
//   admit     arrivals up to `now` join their tenant's FIFO backlog;
//             a full backlog sheds the request (kQueueFull)
//   schedule  earliest-deadline-first across tenant queue fronts
//   shed      a request whose deadline already passed is dropped
//             before launch (kDeadlineExceeded) — load shedding
//   execute   otherwise the request runs under the Supervisor with
//             the tenant's quota and the HealthTracker's kernel gate;
//             every attempt outcome feeds the circuit breakers
//   charge    the service model advances `now`; completion latency
//             lands in the tenant's SLO accounting
//
// Chaos storms (serve/chaos.hpp) modulate the execute step: ECC
// bursts arm fault plans, brownouts shrink the watchdog budget,
// memory-pressure windows slash the quota, policy-corrupt windows
// feed the hardened cache loader garbage.  Fault-free runs are bit-
// and counter-identical to direct unsupervised dispatch (verify mode
// cross-checks every request against a reference device).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "vsparse/serve/chaos.hpp"
#include "vsparse/serve/health.hpp"
#include "vsparse/serve/policy.hpp"

namespace vsparse::serve {

/// One tenant's contract with the scheduler.
struct TenantSpec {
  std::string name;
  /// SLO: a request must complete within this many ticks of arrival.
  std::uint64_t deadline_ticks = 600'000;
  /// Per-request memory quota passed to the Supervisor's admission.
  std::size_t memory_quota_bytes = std::size_t{1} << 20;
  /// Backlog bound: arrivals beyond this many queued requests are shed.
  std::size_t max_backlog = 8;
  /// Share of the trace: tenants are drawn proportionally to weight.
  int weight = 1;
};

/// The default three-tenant mix: a tight-SLO interactive tenant with
/// most of the traffic, an analytics tenant, and a background tenant
/// that tolerates long queueing but little backlog shedding.
std::vector<TenantSpec> default_tenants();

enum class RequestOp : int { kSpmm = 0, kSddmm, kAttention };

const char* request_op_name(RequestOp op);

/// Everything one load run varies.
struct LoadConfig {
  int requests = 200;
  std::uint64_t seed = 1;
  /// Engine threads for every launch (determinism demo knob — the
  /// load report must not change with it).
  int threads = 1;
  /// Mean seeded inter-arrival gap; gaps are 1 + h % (2*mean).
  std::uint64_t mean_gap_ticks = 30'000;
  std::vector<TenantSpec> tenants;  ///< empty => default_tenants()
  RetryPolicy retry;
  HealthConfig health;
  /// Compose seeded chaos storms over the trace horizon.
  bool chaos = false;
  int storms_per_kind = 2;
  /// Cross-check every completed request against an unsupervised run
  /// on a reference device (output bytes + SM-local counters).  Only
  /// meaningful fault-free; forced off when chaos is on.
  bool verify = false;
};

/// Per-tenant (and whole-run) outcome accounting.
///   submitted = completed + failed + rejected + shed_queue + shed_deadline
///   completed = slo_met + deadline_miss
struct TenantStats {
  std::string name;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t slo_met = 0;
  std::uint64_t deadline_miss = 0;  ///< completed, but after the deadline
  std::uint64_t shed_queue = 0;     ///< backlog full at admission
  std::uint64_t shed_deadline = 0;  ///< deadline passed before launch
  std::uint64_t rejected = 0;       ///< supervisor admission (quota)
  std::uint64_t failed = 0;         ///< ladder exhausted / terminal error
  std::uint64_t p50_latency_ticks = 0;
  std::uint64_t p99_latency_ticks = 0;
  std::uint64_t max_latency_ticks = 0;
};

/// The whole run, ready to serialize as vsparse-load-v1.
struct LoadResult {
  TenantStats total;
  std::vector<TenantStats> tenants;
  std::uint64_t final_tick = 0;
  /// SLO-met completions per million ticks — the headline goodput.
  double goodput_per_mtick = 0.0;
  HealthTracker::Totals health;
  std::uint64_t policy_cache_rejections = 0;
  std::uint64_t mismatches = 0;          ///< verify: output bytes differ
  std::uint64_t counter_mismatches = 0;  ///< verify: SM-local stats differ
  std::uint64_t sim_ctas = 0;            ///< for the throughput line
  std::string health_events_json;        ///< HealthTracker::events_json()
  std::string chaos_json;                ///< ChaosPlan::to_json()
  std::string report_json;               ///< supervisor vsparse-serve-v1

  /// The versioned load report ({"schema":"vsparse-load-v1",...}).
  /// Deliberately excludes wall-clock time and the thread count, so it
  /// is byte-identical across --threads=N (tools/validate_load_report.py
  /// checks the schema; CI diffs the bytes).
  std::string to_json(const LoadConfig& config) const;
};

/// Run one seeded multi-tenant load trace to completion.
LoadResult run_load(const LoadConfig& config);

}  // namespace vsparse::serve

// Multi-tenant request scheduler — the serving front end that turns
// the PR 4 per-request Supervisor into a *system*: an open-loop,
// seeded stream of heterogeneous requests (SpMM / SDDMM / sparse
// attention) from several tenants, scheduled across a fleet of
// simulated devices under admission control, per-tenant memory quotas,
// and deadline SLOs.
//
// Time is a deterministic simulated clock (ticks).  Arrivals follow
// seeded inter-arrival gaps; service time is charged from a fixed
// model over *SM-local* engine counters (instructions, L1 missed
// sectors, shared-memory wavefronts — never the L2/DRAM split, which
// legitimately varies at --threads>1) plus the supervisor's recorded
// backoff cycles.  Same seed + config => byte-identical load report at
// any thread count.
//
// The control loop per step:
//
//   admit     arrivals up to `now` join their tenant's FIFO backlog;
//             a full backlog sheds the request (kQueueFull)
//   schedule  earliest-deadline-first across tenant queue fronts
//   place     the EDF winner goes to the least-loaded free fleet
//             worker (serve/fleet.hpp); no free worker => the clock
//             jumps to the next completion / probe / arrival
//   shed      a request whose deadline already passed is dropped
//             before launch (kDeadlineExceeded) — load shedding
//   execute   the request runs under the worker's Supervisor with the
//             tenant's quota and that worker's HealthTracker gate;
//             every attempt outcome feeds the kernel breakers, every
//             execution outcome feeds the worker's device breaker
//   recover   a whole-device failure (wedge timeout, device loss)
//             fails over: the request re-places on the next healthy
//             worker, bit-identical to its fault-free reference.
//             Deadline-critical tenants with shrinking margin hedge:
//             the request duplicates onto a second free worker, first
//             completion wins, the loser is cancelled and reconciled
//   record    any supervisor-exhausted failure captures a
//             vsparse-repro-v1 flight-recorder bundle (serve/
//             recorder.hpp) that replays standalone
//   charge    the service model advances the worker's busy horizon;
//             completion latency lands in the tenant's SLO accounting
//
// Chaos storms (serve/chaos.hpp) modulate the execute step: ECC
// bursts arm fault plans, brownouts shrink the watchdog budget,
// memory-pressure windows slash the quota, policy-corrupt windows
// feed the hardened cache loader garbage.  Device storms add
// whole-device fault domains: wedges, brownouts, flapping, permanent
// death.  A fleet of one fault-free device is bit- and counter-
// identical to direct unsupervised dispatch (verify mode cross-checks
// every request against a reference device).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "vsparse/serve/chaos.hpp"
#include "vsparse/serve/fleet.hpp"
#include "vsparse/serve/health.hpp"
#include "vsparse/serve/policy.hpp"

namespace vsparse::serve {

/// One tenant's contract with the scheduler.
struct TenantSpec {
  std::string name;
  /// SLO: a request must complete within this many ticks of arrival.
  std::uint64_t deadline_ticks = 600'000;
  /// Per-request memory quota passed to the Supervisor's admission.
  std::size_t memory_quota_bytes = std::size_t{1} << 20;
  /// Backlog bound: arrivals beyond this many queued requests are shed.
  std::size_t max_backlog = 8;
  /// Share of the trace: tenants are drawn proportionally to weight.
  int weight = 1;
  /// Deadline-critical: when the remaining deadline margin at placement
  /// falls under LoadConfig::hedge_margin_percent of the SLO, the
  /// request is hedged — duplicated onto the next-soonest eligible
  /// worker (launching when it frees; first completion wins, the loser
  /// is cancelled).  No effect on a fleet of one.
  bool hedge = false;
};

/// The default three-tenant mix: a tight-SLO interactive tenant with
/// most of the traffic (hedged on a fleet), an analytics tenant, and a
/// background tenant that tolerates long queueing but little backlog
/// shedding.
std::vector<TenantSpec> default_tenants();

/// Everything one load run varies.
struct LoadConfig {
  int requests = 200;
  std::uint64_t seed = 1;
  /// Engine threads for every launch (determinism demo knob — the
  /// load report must not change with it).
  int threads = 1;
  /// Mean seeded inter-arrival gap; gaps are 1 + h % (2*mean).
  std::uint64_t mean_gap_ticks = 30'000;
  std::vector<TenantSpec> tenants;  ///< empty => default_tenants()
  RetryPolicy retry;
  HealthConfig health;
  /// Compose seeded chaos storms over the trace horizon.
  bool chaos = false;
  int storms_per_kind = 2;
  /// Cross-check every completed request against an unsupervised run
  /// on a reference device (output bytes + SM-local counters).  Only
  /// meaningful fault-free; forced off when chaos is on.  Device chaos
  /// does NOT force it off — that is how failover bit-identity is
  /// asserted.
  bool verify = false;

  // ---- fleet ----
  /// Fleet size (1..32); 1 reproduces the single-device scheduler
  /// exactly.
  int devices = 1;
  /// Compose seeded *device* storms (wedge / brownout / flap / death)
  /// over the horizon.  No-op on a fleet of one.
  bool device_chaos = false;
  int device_storms_per_kind = 1;
  /// Enable hedged launches for tenants with TenantSpec::hedge.
  bool hedge = true;
  /// Hedge trigger: remaining margin < deadline_ticks * percent / 100.
  int hedge_margin_percent = 25;
  /// Ticks a drained worker cools down before its first probe.
  std::uint64_t drain_cooldown_ticks = 250'000;
  /// Operator maintenance drains ([begin, end) per device).
  std::vector<DrainWindow> drains;
  /// Flight-recorder capacity: failures beyond this are counted, not
  /// captured.
  int max_repro_bundles = 16;
};

/// Per-tenant (and whole-run) outcome accounting.
///   submitted = completed + failed + rejected + shed_queue + shed_deadline
///   completed = slo_met + deadline_miss
struct TenantStats {
  std::string name;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t slo_met = 0;
  std::uint64_t deadline_miss = 0;  ///< completed, but after the deadline
  std::uint64_t shed_queue = 0;     ///< backlog full at admission
  std::uint64_t shed_deadline = 0;  ///< deadline passed before launch
  std::uint64_t rejected = 0;       ///< supervisor admission (quota)
  std::uint64_t failed = 0;         ///< ladder exhausted / terminal error
  std::uint64_t p50_latency_ticks = 0;
  std::uint64_t p99_latency_ticks = 0;
  std::uint64_t max_latency_ticks = 0;
};

/// The whole run, ready to serialize as vsparse-load-v2.
struct LoadResult {
  TenantStats total;
  std::vector<TenantStats> tenants;
  std::uint64_t final_tick = 0;
  /// SLO-met completions per million ticks — the headline goodput.
  double goodput_per_mtick = 0.0;
  HealthTracker::Totals health;  ///< merged across the fleet
  std::uint64_t policy_cache_rejections = 0;
  std::uint64_t mismatches = 0;          ///< verify: output bytes differ
  std::uint64_t counter_mismatches = 0;  ///< verify: SM-local stats differ
  std::uint64_t sim_ctas = 0;            ///< for the throughput line
  PlacementStats fleet;                  ///< placements/failovers/hedges/...
  std::uint64_t repro_bundles = 0;       ///< flight-recorder captures
  std::uint64_t repro_dropped = 0;       ///< failures past the cap
  std::string health_events_json;        ///< fleet-merged breaker events
  std::string chaos_json;                ///< ChaosPlan::to_json()
  std::string device_chaos_json;         ///< DeviceChaosPlan::to_json()
  std::string fleet_events_json;         ///< Fleet::events_json()
  std::string workers_json;              ///< Fleet::workers_json()
  std::string request_ledger_json;       ///< exactly-once per-request ledger
  std::string report_json;               ///< merged vsparse-serve-v1
  std::string repro_json;                ///< vsparse-repro-v1 artifact

  /// The versioned load report ({"schema":"vsparse-load-v2",...}).
  /// Deliberately excludes wall-clock time and the thread count, so it
  /// is byte-identical across --threads=N (tools/validate_load_report.py
  /// checks the schema; CI diffs the bytes).
  std::string to_json(const LoadConfig& config) const;
};

/// Run one seeded multi-tenant load trace to completion.  Raises
/// vsparse::Error (kBadDispatch, "serve.scheduler") on out-of-range
/// config instead of running with garbage.
LoadResult run_load(const LoadConfig& config);

}  // namespace vsparse::serve

#include "vsparse/serve/chaos.hpp"

#include <algorithm>
#include <sstream>

namespace vsparse::serve {
namespace {

// splitmix64 — the same mixer the supervisor's backoff jitter uses.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

const char* chaos_kind_name(ChaosKind kind) {
  switch (kind) {
    case ChaosKind::kEccBurst:
      return "ecc_burst";
    case ChaosKind::kBrownout:
      return "brownout";
    case ChaosKind::kMemPressure:
      return "mem_pressure";
    case ChaosKind::kPolicyCorrupt:
      return "policy_corrupt";
    case ChaosKind::kNumKinds:
      break;
  }
  return "ecc_burst";
}

ChaosPlan ChaosPlan::storms(std::uint64_t seed, std::uint64_t horizon_ticks,
                            int storms_per_kind) {
  ChaosPlan plan;
  if (horizon_ticks < 16 || storms_per_kind <= 0) return plan;
  for (int kind = 0; kind < kNumChaosKinds; ++kind) {
    for (int i = 0; i < storms_per_kind; ++i) {
      const std::uint64_t h =
          mix64(seed ^ (static_cast<std::uint64_t>(kind) << 32) ^
                static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ull);
      ChaosWindow w;
      w.kind = static_cast<ChaosKind>(kind);
      w.begin = h % (horizon_ticks * 3 / 4);
      const std::uint64_t len =
          horizon_ticks / 16 + mix64(h) % (horizon_ticks / 16 + 1);
      w.end = w.begin + len;
      plan.windows.push_back(w);
    }
  }
  std::sort(plan.windows.begin(), plan.windows.end(),
            [](const ChaosWindow& a, const ChaosWindow& b) {
              if (a.begin != b.begin) return a.begin < b.begin;
              if (a.kind != b.kind) return a.kind < b.kind;
              return a.end < b.end;
            });
  return plan;
}

ChaosActive ChaosPlan::at(std::uint64_t tick) const {
  ChaosActive active;
  for (const ChaosWindow& w : windows) {
    if (!w.covers(tick)) continue;
    switch (w.kind) {
      case ChaosKind::kEccBurst:
        active.ecc_burst = true;
        break;
      case ChaosKind::kBrownout:
        active.brownout = true;
        break;
      case ChaosKind::kMemPressure:
        active.mem_pressure = true;
        break;
      case ChaosKind::kPolicyCorrupt:
        active.policy_corrupt = true;
        break;
      case ChaosKind::kNumKinds:
        break;
    }
  }
  return active;
}

std::string ChaosPlan::to_json() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const ChaosWindow& w = windows[i];
    if (i) os << ",";
    os << "{\"kind\":\"" << chaos_kind_name(w.kind) << "\",\"begin\":" << w.begin
       << ",\"end\":" << w.end << "}";
  }
  os << "]";
  return os.str();
}

const char* device_chaos_kind_name(DeviceChaosKind kind) {
  switch (kind) {
    case DeviceChaosKind::kWedge:
      return "wedge";
    case DeviceChaosKind::kBrownout:
      return "brownout";
    case DeviceChaosKind::kFlap:
      return "flap";
    case DeviceChaosKind::kDeath:
      return "death";
    case DeviceChaosKind::kNumKinds:
      break;
  }
  return "wedge";
}

DeviceChaosPlan DeviceChaosPlan::storms(std::uint64_t seed,
                                        std::uint64_t horizon_ticks,
                                        int num_devices, int storms_per_kind) {
  DeviceChaosPlan plan;
  if (horizon_ticks < 16 || storms_per_kind <= 0 || num_devices < 2) {
    return plan;
  }
  for (int kind = 0; kind < kNumDeviceChaosKinds; ++kind) {
    for (int i = 0; i < storms_per_kind; ++i) {
      const std::uint64_t h =
          mix64(seed ^ 0xdef1ce ^ (static_cast<std::uint64_t>(kind) << 32) ^
                static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ull);
      DeviceChaosWindow w;
      w.kind = static_cast<DeviceChaosKind>(kind);
      w.begin = h % (horizon_ticks * 3 / 4);
      const std::uint64_t len =
          horizon_ticks / 16 + mix64(h) % (horizon_ticks / 16 + 1);
      w.end = w.begin + len;
      if (w.kind == DeviceChaosKind::kDeath) {
        // Device 0 is immortal so the fleet never loses its last worker.
        w.device = 1 + static_cast<int>(mix64(h ^ 0xd00d) %
                                        static_cast<std::uint64_t>(
                                            num_devices - 1));
      } else {
        w.device = static_cast<int>(mix64(h ^ 0xd00d) %
                                    static_cast<std::uint64_t>(num_devices));
      }
      if (w.kind == DeviceChaosKind::kFlap) {
        w.flap_period = std::max<std::uint64_t>(len / 6, 1);
      }
      plan.windows.push_back(w);
    }
  }
  std::sort(plan.windows.begin(), plan.windows.end(),
            [](const DeviceChaosWindow& a, const DeviceChaosWindow& b) {
              if (a.begin != b.begin) return a.begin < b.begin;
              if (a.kind != b.kind) return a.kind < b.kind;
              return a.device < b.device;
            });
  return plan;
}

DeviceFaultActive DeviceChaosPlan::at(int device, std::uint64_t tick) const {
  DeviceFaultActive active;
  for (const DeviceChaosWindow& w : windows) {
    if (w.device != device) continue;
    switch (w.kind) {
      case DeviceChaosKind::kWedge:
        if (w.covers(tick)) active.wedged = true;
        break;
      case DeviceChaosKind::kBrownout:
        if (w.covers(tick)) active.brownout = true;
        break;
      case DeviceChaosKind::kFlap:
        if (w.covers(tick) &&
            ((tick - w.begin) / w.flap_period) % 2 == 0) {
          active.wedged = true;
        }
        break;
      case DeviceChaosKind::kDeath:
        if (tick >= w.begin) active.dead = true;  // permanent
        break;
      case DeviceChaosKind::kNumKinds:
        break;
    }
  }
  return active;
}

std::string DeviceChaosPlan::to_json() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const DeviceChaosWindow& w = windows[i];
    if (i) os << ",";
    os << "{\"kind\":\"" << device_chaos_kind_name(w.kind)
       << "\",\"device\":" << w.device << ",\"begin\":" << w.begin
       << ",\"end\":" << w.end << ",\"flap_period\":" << w.flap_period << "}";
  }
  os << "]";
  return os.str();
}

std::string corrupt_policy_cache_json(std::uint64_t seed) {
  const std::uint64_t h = mix64(seed ^ 0xc0bb7ed);
  switch (h % 4) {
    case 0:  // truncated mid-entry
      return "{\"version\":\"vsparse-policy-v1\",\"entries\":[{\"key\":\"spmm";
    case 1:  // stale version tag
      return "{\"version\":\"vsparse-policy-v9\",\"entries\":[]}";
    case 2:  // numeric field that overflows double parsing
      return "{\"version\":\"vsparse-policy-v1\",\"entries\":[{\"key\":"
             "\"spmm|volta-v100|m6k6n6d1v4\",\"kernel\":\"spmm_octet\","
             "\"cycles\":1e99999}]}";
    default:  // binary garbage
      return std::string("\x7f\x45\x4c\x46\x02\x01\x01", 7) + "policy?";
  }
}

}  // namespace vsparse::serve

// The serving soak harness: N supervised requests through a
// Supervisor under a seeded fault storm, with bounded-queue admission
// and per-request result verification — the long-lived many-launch
// scenario the serving layer exists for.  Shared by the serve_soak
// bench driver and the soak acceptance tests.
//
// Per request, a deterministic hash of (seed, request index) picks ONE
// fault mechanism:
//
//   clean               no plan attached (the null fast path)
//   transient ECC       one targeted double-bit upset on the sparse
//                       operand's values — fires once, so the first
//                       attempt fails and the retry completes
//   sticky ECC          a hard fault parked on the original encoding —
//                       every octet attempt fails; the ladder's
//                       re-encode rung rebuilds A at fresh addresses
//                       and completes
//   rate + ECC          random single-bit upsets under SEC-DED — all
//                       corrected in flight, no error, bit-clean result
//   watchdog            a tiny per-CTA op budget — every rung times
//                       out; the request gives up with kLaunchTimeout
//   oversized           (only when memory_quota_bytes > 0) a request
//                       whose footprint exceeds the quota — rejected at
//                       admission with kQuotaExceeded
//
// At most one targeted fault per request, and the problem shape keeps
// N = 64 (one CTA per vector row in the octet kernel), so each
// targeted address is read by exactly one CTA and the attempt sequence
// is bit-identical at any --threads=N.
//
// Every completed SpMM request's output is compared byte-for-byte
// against a fault-free run of the same problem; `mismatches` counts
// requests where recovery was not bit-exact (expected: 0).
#pragma once

#include <cstdint>
#include <string>

#include "vsparse/gpusim/trace/trace.hpp"
#include "vsparse/serve/policy.hpp"
#include "vsparse/serve/supervisor.hpp"

namespace vsparse::serve {

struct SoakConfig {
  int requests = 100;          ///< supervised launches to attempt
  std::uint64_t seed = 2021;   ///< storm + data seed
  int threads = 1;             ///< host simulation threads per launch
  std::size_t queue_capacity = 64;  ///< admission queue bound
  /// Per-request quota passed to the ServePolicy; 0 disables both the
  /// quota check and the oversized-request mechanism.
  std::size_t memory_quota_bytes = 0;
  RetryPolicy retry;                ///< retry/backoff policy
  gpusim::TraceOptions trace;       ///< optional trace sink for events
};

struct SoakResult {
  Supervisor::Totals totals;        ///< outcome counters
  std::uint64_t queue_accepted = 0;
  std::uint64_t queue_rejected = 0;  ///< backpressure turn-aways
  std::uint64_t mismatches = 0;  ///< completed requests not bit-exact
  std::string report_json;       ///< the vsparse-serve-v1 artifact
};

/// Run the storm.  Never throws for classified failures — a nonzero
/// give_up count is data, not an error.
SoakResult run_soak(const SoakConfig& config);

}  // namespace vsparse::serve

// Structured error taxonomy for the serving layer.
//
// Every failure a long-lived vsparse process can hit — ECC
// detected-uncorrectable upsets, watchdog timeouts, malformed input
// encodings, allocator overflow/exhaustion, bad dispatch requests,
// admission-control rejections — is classified under one ErrorCode
// with two machine-readable properties the Supervisor's policy engine
// keys on:
//
//   retryable         — a re-run of the *same* kernel may succeed
//                       (transient upsets: ECC detections, ABFT
//                       exhaustion under a transient storm).
//   fallback_eligible — a *different* algorithm rung may succeed
//                       (timeouts, per-algorithm failures, memory
//                       pressure).  Not eligible: malformed inputs and
//                       config errors, which fail every rung the same
//                       way.
//
// vsparse::Error is the common base; the pre-existing structured
// throws (gpusim::EccError, gpusim::LaunchTimeoutError) re-base onto
// it so one `catch (const vsparse::Error&)` is the whole fault
// boundary.  This header is a dependency leaf (stdexcept/string only)
// so gpusim/ and formats/ can adopt the taxonomy without layering
// cycles.
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace vsparse {

enum class ErrorCode : std::uint8_t {
  kMalformedFormat = 0,  ///< input encoding violates a format invariant
  kBadDispatch,          ///< invalid algorithm/options combination
  kAllocOverflow,        ///< size arithmetic would overflow the allocator
  kOutOfMemory,          ///< simulated DRAM exhausted
  kQuotaExceeded,        ///< request footprint exceeds the serve quota
  kQueueFull,            ///< admission queue at capacity (backpressure)
  kDeadlineExceeded,     ///< SLO deadline passed before launch (load shed)
  kEccUncorrectable,     ///< SEC-DED detected a double-bit upset
  kLaunchTimeout,        ///< watchdog per-CTA op budget exceeded
  kAbftExhausted,        ///< ABFT retries spent, tiles still corrupted
  kDeviceLost,           ///< whole-device fault domain failed permanently
  kInternal,             ///< unclassified invariant violation
  kNumCodes
};

constexpr int kNumErrorCodes = static_cast<int>(ErrorCode::kNumCodes);

/// Stable machine-readable name ("ecc_uncorrectable", ...).
const char* error_code_name(ErrorCode code);

/// May an identical re-run succeed?  (Taxonomy property, not per-throw.)
bool error_code_retryable(ErrorCode code);

/// May a different algorithm rung succeed?
bool error_code_fallback_eligible(ErrorCode code);

/// The common base of every classified vsparse failure.  `site` names
/// the throwing subsystem ("gpusim.ecc", "formats.smtx", ...) with a
/// stable string so reports stay byte-identical across thread counts
/// — free-text detail lives only in what().
class Error : public std::runtime_error {
 public:
  Error(ErrorCode code, std::string site, const std::string& what)
      : std::runtime_error(what), code_(code), site_(std::move(site)) {}

  ErrorCode code() const { return code_; }
  const std::string& site() const { return site_; }
  bool retryable() const { return error_code_retryable(code_); }
  bool fallback_eligible() const { return error_code_fallback_eligible(code_); }

  /// {"code":"...","site":"...","retryable":...} — no free text, so the
  /// serialization is deterministic at any --threads=N.
  std::string to_json() const;

 private:
  ErrorCode code_;
  std::string site_;
};

}  // namespace vsparse

/// Throw a classified vsparse::Error with an ostream-built message:
///   VSPARSE_RAISE(ErrorCode::kOutOfMemory, "gpusim.alloc",
///                 "want " << bytes << "B");
#define VSPARSE_RAISE(code, site, msg)                                \
  do {                                                                \
    std::ostringstream vsparse_raise_os_;                             \
    vsparse_raise_os_ << msg;                                         \
    throw ::vsparse::Error((code), (site), vsparse_raise_os_.str());  \
  } while (0)

/// Guard form: raise `code` unless `cond` holds.
#define VSPARSE_CHECK_RAISE(cond, code, site, msg) \
  do {                                             \
    if (!(cond)) VSPARSE_RAISE((code), (site), msg); \
  } while (0)

#include "vsparse/serve/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <deque>
#include <iomanip>
#include <sstream>

#include "vsparse/common/rng.hpp"
#include "vsparse/formats/cvs.hpp"
#include "vsparse/formats/dense.hpp"
#include "vsparse/formats/generate.hpp"
#include "vsparse/gpusim/device.hpp"
#include "vsparse/gpusim/faults.hpp"
#include "vsparse/kernels/dispatch.hpp"
#include "vsparse/kernels/policy.hpp"
#include "vsparse/kernels/softmax/sparse_softmax.hpp"
#include "vsparse/serve/supervisor.hpp"

namespace vsparse::serve {
namespace {

// splitmix64 — the same mixer the supervisor's backoff jitter uses, so
// the whole trace is reproducible from the seed alone.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Fixed dispatch/teardown charge per supervised attempt, and the
/// memory quota a kMemPressure storm clamps requests to (small enough
/// that the dense-decode ladder workspace of a 128-row request no
/// longer fits).
constexpr std::uint64_t kDispatchOverheadTicks = 2000;
constexpr std::size_t kPressureQuotaBytes = std::size_t{16} << 10;
/// kBrownout watchdog budget: tight enough to kill the TCU kernels'
/// CTAs on 128-row shapes, loose enough that the trace keeps moving.
constexpr std::uint64_t kBrownoutCtaOps = 256;

struct TraceRequest {
  int id = 0;
  int tenant = 0;
  RequestOp op = RequestOp::kSpmm;
  std::uint64_t arrival = 0;
  std::uint64_t deadline = 0;  ///< arrival + tenant SLO
  int m = 64, k = 64, v = 4;
  double sparsity = 0.7;
  std::uint64_t data_seed = 0;
};

// Everything about request i follows from (config.seed, i).  N stays
// 64 everywhere (the soak's determinism idiom): the octet SpMM runs
// one CTA per vector row, so a targeted fault address is read by
// exactly one CTA and the attempt sequence is identical at any
// --threads=N.
std::vector<TraceRequest> build_trace(const LoadConfig& config,
                                      const std::vector<TenantSpec>& tenants) {
  int total_weight = 0;
  for (const TenantSpec& t : tenants) total_weight += std::max(t.weight, 1);

  std::vector<TraceRequest> trace;
  trace.reserve(static_cast<std::size_t>(config.requests));
  std::uint64_t arrival = 0;
  for (int i = 0; i < config.requests; ++i) {
    const std::uint64_t h = mix64(
        config.seed ^ (static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ull));
    TraceRequest r;
    r.id = i;
    arrival += 1 + mix64(h ^ 0xa441) % (2 * config.mean_gap_ticks);
    r.arrival = arrival;

    std::uint64_t pick = mix64(h ^ 0x7e4a) % static_cast<std::uint64_t>(total_weight);
    for (std::size_t t = 0; t < tenants.size(); ++t) {
      const auto w = static_cast<std::uint64_t>(std::max(tenants[t].weight, 1));
      if (pick < w) {
        r.tenant = static_cast<int>(t);
        break;
      }
      pick -= w;
    }
    r.deadline = arrival + tenants[r.tenant].deadline_ticks;

    switch (mix64(h ^ 0x09) % 4) {
      case 0:
      case 1:
        r.op = RequestOp::kSpmm;
        break;
      case 2:
        r.op = RequestOp::kSddmm;
        break;
      default:
        r.op = RequestOp::kAttention;
        break;
    }
    r.m = ((h >> 4) & 1) ? 64 : 128;
    r.k = ((h >> 6) & 1) ? 64 : 128;
    r.v = ((h >> 8) & 1) ? 2 : 4;
    r.sparsity = ((h >> 12) & 1) ? 0.9 : 0.7;
    if (r.op == RequestOp::kAttention) {
      r.m = r.k = 64;  // seq = head_dim = 64, one CTA per vector row
      r.v = 4;
    }
    r.data_seed = mix64(h ^ 0xda7a);
    trace.push_back(r);
  }
  return trace;
}

// Force integer values so every ladder rung — including the dense-GEMM
// decode, whose fp16 accumulation order differs — is bit-identical to
// the fault-free run (the soak's recovery-contract idiom).
void make_integer_values(std::vector<half_t>& values, std::uint64_t seed) {
  for (std::size_t j = 0; j < values.size(); ++j) {
    const std::uint64_t hv = mix64(seed ^ (0x7a1ee5 + j));
    const float mag = static_cast<float>(1 + (hv % 3));
    values[j] = half_t((hv & 8) ? mag : -mag);
  }
}

/// Service ticks of one completed kernel run — SM-local counters only
/// (never the L2 split or DRAM bytes, which vary at --threads>1).
std::uint64_t service_of_run(const kernels::KernelRun& run) {
  const gpusim::KernelStats& s = run.stats;
  return s.total_instructions() + 4 * s.l1_sector_misses + s.smem_wavefronts;
}

/// Service ticks of one supervised report: per-attempt dispatch
/// overhead + recorded backoff + the successful run's modeled work.
std::uint64_t service_of_report(const ServeReport& rep) {
  std::uint64_t svc = kDispatchOverheadTicks *
                      std::max<std::uint64_t>(1, rep.attempts.size());
  svc += rep.backoff_cycles;
  if (rep.completed) svc += service_of_run(rep.run);
  return svc;
}

struct ExecResult {
  bool completed = false;
  bool rejected = false;  ///< supervisor admission (quota)
  std::uint64_t service = kDispatchOverheadTicks;
  std::uint64_t ctas = 0;
  bool bit_exact = true;
  bool counters_exact = true;
};

void fold_report(ExecResult& out, const ServeReport& rep) {
  out.service += service_of_report(rep);
  if (rep.completed) out.ctas += rep.run.stats.ctas_launched;
}

ExecResult run_spmm_request(const LoadConfig& config, Supervisor& sup,
                            gpusim::Device& ref_dev, const TraceRequest& req,
                            const ChaosActive& active, bool verify) {
  gpusim::Device& dev = sup.device();
  Rng rng(req.data_seed);
  Cvs a_host = make_cvs(req.m, req.k, req.v, req.sparsity, rng);
  make_integer_values(a_host.values, req.data_seed);
  DenseMatrix<half_t> b_host(req.k, 64);
  b_host.fill_random_int(rng);
  DenseMatrix<half_t> c_host(req.m, 64);

  CvsDevice a = to_device(dev, a_host);
  DenseDevice<half_t> b = to_device(dev, b_host);
  DenseDevice<half_t> c = to_device(dev, c_host);

  // ECC burst: a sticky double-bit upset parked on the sparse operand
  // — the octet rungs keep detecting it until the ladder re-encodes A
  // at fresh addresses, and the repeated failures trip the breaker.
  gpusim::FaultPlan plan(mix64(req.data_seed ^ 0x570) | 1,
                         /*ecc_enabled=*/true);
  const bool armed = active.ecc_burst;
  if (armed) {
    plan.add_target({gpusim::FaultSite::kDramRead, a.values.addr(0),
                     /*bit=*/1, /*n_bits=*/2, /*sticky=*/true});
    dev.set_fault_plan(&plan);
  }

  kernels::SpmmOptions options;
  options.sim.threads = config.threads;
  if (active.brownout) options.sim.watchdog_cta_ops = kBrownoutCtaOps;

  const ServeReport& report = sup.submit_spmm(a, b, c, options);
  if (armed) dev.set_fault_plan(nullptr);

  ExecResult out;
  out.completed = report.completed;
  out.rejected = report.rejected;
  fold_report(out, report);
  if (verify && report.completed) {
    ref_dev.reset();
    CvsDevice ra = to_device(ref_dev, a_host);
    DenseDevice<half_t> rb = to_device(ref_dev, b_host);
    DenseDevice<half_t> rc = to_device(ref_dev, c_host);
    const kernels::KernelRun ref =
        kernels::spmm(ref_dev, ra, rb, rc, {.sim = {.threads = config.threads}});
    const auto got = c.buf.host();
    const auto want = rc.buf.host();
    out.bit_exact = got.size() == want.size() &&
                    std::memcmp(got.data(), want.data(), got.size_bytes()) == 0;
    out.counters_exact = report.run.stats.sm_local_equal(ref.stats);

  }
  return out;
}

ExecResult run_sddmm_request(const LoadConfig& config, Supervisor& sup,
                             gpusim::Device& ref_dev, const TraceRequest& req,
                             const ChaosActive& active, bool verify) {
  gpusim::Device& dev = sup.device();
  Rng rng(req.data_seed);
  DenseMatrix<half_t> a_host(req.m, req.k);
  a_host.fill_random_int(rng);
  DenseMatrix<half_t> b_host(req.k, 64, Layout::kColMajor);
  b_host.fill_random_int(rng);
  Cvs mask_host = make_cvs_mask(req.m, 64, req.v, req.sparsity, rng);

  DenseDevice<half_t> a = to_device(dev, a_host);
  DenseDevice<half_t> b = to_device(dev, b_host);
  CvsDevice mask = to_device(dev, mask_host);
  auto out_values = dev.alloc<half_t>(mask_host.values.size());

  // The SDDMM ladder has no re-encode rung, so a sticky target would
  // fail every rung; ECC bursts hit it with rate-based single-bit
  // upsets instead — corrected in flight, but counted by the engine.
  gpusim::FaultPlan plan(mix64(req.data_seed ^ 0x570) | 1,
                         /*ecc_enabled=*/true);
  const bool armed = active.ecc_burst;
  if (armed) {
    plan.set_rates({.dram_read = 1e-4});
    dev.set_fault_plan(&plan);
  }

  kernels::SddmmOptions options;
  options.sim.threads = config.threads;
  if (active.brownout) options.sim.watchdog_cta_ops = kBrownoutCtaOps;

  const ServeReport& report = sup.submit_sddmm(a, b, mask, out_values, options);
  if (armed) dev.set_fault_plan(nullptr);

  ExecResult out;
  out.completed = report.completed;
  out.rejected = report.rejected;
  fold_report(out, report);
  if (verify && report.completed) {
    ref_dev.reset();
    DenseDevice<half_t> ra = to_device(ref_dev, a_host);
    DenseDevice<half_t> rb = to_device(ref_dev, b_host);
    CvsDevice rmask = to_device(ref_dev, mask_host);
    auto rout = ref_dev.alloc<half_t>(mask_host.values.size());
    const kernels::KernelRun ref = kernels::sddmm(
        ref_dev, ra, rb, rmask, rout, {.sim = {.threads = config.threads}});
    const auto got = out_values.host();
    const auto want = rout.host();
    out.bit_exact = got.size() == want.size() &&
                    std::memcmp(got.data(), want.data(), got.size_bytes()) == 0;
    out.counters_exact = report.run.stats.sm_local_equal(ref.stats);

  }
  return out;
}

// Attention composed scheduler-side from its supervised stages (the
// same QKᵀ∘C -> sparse softmax -> AV pipeline as transformer/
// attention.cpp, with both matrix products inside the fault boundary).
// The AV stage is skipped when QK fails, so supervisor numbering stays
// dense and a failed head costs one report, not two.
ExecResult run_attention_request(const LoadConfig& config, Supervisor& sup,
                                 gpusim::Device& ref_dev,
                                 const TraceRequest& req,
                                 const ChaosActive& active, bool verify) {
  gpusim::Device& dev = sup.device();
  const int seq = req.m;
  const int d = req.k;
  Rng rng(req.data_seed);
  DenseMatrix<half_t> q_host(seq, d);
  q_host.fill_random_int(rng);
  DenseMatrix<half_t> k_host(seq, d);
  k_host.fill_random_int(rng);
  DenseMatrix<half_t> v_host(seq, d);
  v_host.fill_random_int(rng);
  Cvs mask_host = make_cvs_mask(seq, seq, req.v, req.sparsity, rng);

  DenseDevice<half_t> q = to_device(dev, q_host);
  DenseDevice<half_t> k = to_device(dev, k_host);
  DenseDevice<half_t> v = to_device(dev, v_host);
  CvsDevice mask = to_device(dev, mask_host);
  auto scratch = dev.alloc<half_t>(mask_host.values.size());
  DenseMatrix<half_t> out_host(seq, d);
  DenseDevice<half_t> out = to_device(dev, out_host);

  gpusim::FaultPlan plan(mix64(req.data_seed ^ 0x570) | 1,
                         /*ecc_enabled=*/true);
  const bool armed = active.ecc_burst;
  if (armed) {
    plan.set_rates({.dram_read = 1e-4});
    dev.set_fault_plan(&plan);
  }

  kernels::SddmmOptions qk_options;
  qk_options.algorithm = kernels::SddmmAlgorithm::kOctet;
  qk_options.sim.threads = config.threads;
  if (active.brownout) qk_options.sim.watchdog_cta_ops = kBrownoutCtaOps;

  DenseDevice<half_t> kt{k.buf, d, seq, k.ld, Layout::kColMajor};
  const ServeReport& qk_report =
      sup.submit_sddmm(q, kt, mask, scratch, qk_options);

  ExecResult out_res;
  out_res.rejected = qk_report.rejected;
  fold_report(out_res, qk_report);
  if (!qk_report.completed) {
    if (armed) dev.set_fault_plan(nullptr);
    return out_res;  // completed stays false; AV is skipped
  }
  // The AV submit below appends to the supervisor's report vector,
  // which may reallocate and invalidate qk_report — copy the stats the
  // verify pass needs while the reference is still live.
  const gpusim::KernelStats qk_stats = qk_report.run.stats;

  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  const kernels::KernelRun softmax_run =
      kernels::sparse_softmax(dev, mask, scratch, scratch, scale);
  out_res.service += service_of_run(softmax_run);
  out_res.ctas += softmax_run.stats.ctas_launched;

  CvsDevice probs = mask;
  probs.values = scratch;
  kernels::SpmmOptions av_options;
  av_options.algorithm = kernels::SpmmAlgorithm::kOctet;
  av_options.sim.threads = config.threads;
  if (active.brownout) av_options.sim.watchdog_cta_ops = kBrownoutCtaOps;

  const ServeReport& av_report = sup.submit_spmm(probs, v, out, av_options);
  if (armed) dev.set_fault_plan(nullptr);

  out_res.completed = av_report.completed;
  out_res.rejected = out_res.rejected || av_report.rejected;
  fold_report(out_res, av_report);
  if (verify && out_res.completed) {
    ref_dev.reset();
    DenseDevice<half_t> rq = to_device(ref_dev, q_host);
    DenseDevice<half_t> rk = to_device(ref_dev, k_host);
    DenseDevice<half_t> rv = to_device(ref_dev, v_host);
    CvsDevice rmask = to_device(ref_dev, mask_host);
    auto rscratch = ref_dev.alloc<half_t>(mask_host.values.size());
    DenseDevice<half_t> rout = to_device(ref_dev, out_host);
    DenseDevice<half_t> rkt{rk.buf, d, seq, rk.ld, Layout::kColMajor};
    const kernels::KernelRun ref_qk = kernels::sddmm(
        ref_dev, rq, rkt, rmask, rscratch,
        {.algorithm = kernels::SddmmAlgorithm::kOctet,
         .sim = {.threads = config.threads}});
    const kernels::KernelRun ref_softmax =
        kernels::sparse_softmax(ref_dev, rmask, rscratch, rscratch, scale);
    CvsDevice rprobs = rmask;
    rprobs.values = rscratch;
    const kernels::KernelRun ref_av =
        kernels::spmm(ref_dev, rprobs, rv, rout,
                      {.algorithm = kernels::SpmmAlgorithm::kOctet,
                       .sim = {.threads = config.threads}});
    const auto got = out.buf.host();
    const auto want = rout.buf.host();
    out_res.bit_exact =
        got.size() == want.size() &&
        std::memcmp(got.data(), want.data(), got.size_bytes()) == 0;
    out_res.counters_exact =
        qk_stats.sm_local_equal(ref_qk.stats) &&
        softmax_run.stats.sm_local_equal(ref_softmax.stats) &&
        av_report.run.stats.sm_local_equal(ref_av.stats);
  }
  return out_res;
}

std::uint64_t percentile(const std::vector<std::uint64_t>& sorted, int p) {
  if (sorted.empty()) return 0;
  return sorted[(sorted.size() - 1) * static_cast<std::size_t>(p) / 100];
}

void finish_latencies(TenantStats& stats, std::vector<std::uint64_t>& lat) {
  std::sort(lat.begin(), lat.end());
  stats.p50_latency_ticks = percentile(lat, 50);
  stats.p99_latency_ticks = percentile(lat, 99);
  stats.max_latency_ticks = lat.empty() ? 0 : lat.back();
}

void append_tenant_json(std::ostringstream& os, const TenantStats& s) {
  os << "{\"name\":\"" << s.name << "\",\"submitted\":" << s.submitted
     << ",\"completed\":" << s.completed << ",\"slo_met\":" << s.slo_met
     << ",\"deadline_miss\":" << s.deadline_miss
     << ",\"shed_queue\":" << s.shed_queue
     << ",\"shed_deadline\":" << s.shed_deadline
     << ",\"rejected\":" << s.rejected << ",\"failed\":" << s.failed
     << ",\"p50_latency_ticks\":" << s.p50_latency_ticks
     << ",\"p99_latency_ticks\":" << s.p99_latency_ticks
     << ",\"max_latency_ticks\":" << s.max_latency_ticks << "}";
}

}  // namespace

std::vector<TenantSpec> default_tenants() {
  return {
      {"interactive", /*deadline=*/150'000, std::size_t{1} << 20,
       /*backlog=*/4, /*weight=*/2},
      {"analytics", /*deadline=*/600'000, std::size_t{1} << 20,
       /*backlog=*/8, /*weight=*/1},
      {"background", /*deadline=*/3'000'000, std::size_t{1} << 20,
       /*backlog=*/16, /*weight=*/1},
  };
}

const char* request_op_name(RequestOp op) {
  switch (op) {
    case RequestOp::kSpmm:
      return "spmm";
    case RequestOp::kSddmm:
      return "sddmm";
    case RequestOp::kAttention:
      return "attention";
  }
  return "spmm";
}

LoadResult run_load(const LoadConfig& config) {
  const std::vector<TenantSpec> tenants =
      config.tenants.empty() ? default_tenants() : config.tenants;
  const std::vector<TraceRequest> trace = build_trace(config, tenants);
  const bool verify = config.verify && !config.chaos;

  gpusim::DeviceConfig hw = gpusim::DeviceConfig::volta_v100();
  hw.dram_capacity = std::size_t{1} << 26;  // 64 MiB — reset per request
  gpusim::Device dev(hw);
  gpusim::Device ref_dev(hw);

  HealthTracker health(config.health);
  ServePolicy policy;
  policy.retry = config.retry;
  policy.ladder = true;
  policy.kernel_gate = &HealthTracker::gate;
  policy.kernel_gate_ctx = &health;
  Supervisor sup(dev, policy);

  const std::uint64_t horizon =
      config.mean_gap_ticks * static_cast<std::uint64_t>(config.requests);
  ChaosPlan chaos;
  if (config.chaos) {
    chaos = ChaosPlan::storms(mix64(config.seed ^ 0x57095), horizon,
                              config.storms_per_kind);
  }

  LoadResult result;
  result.tenants.resize(tenants.size());
  std::vector<std::vector<std::uint64_t>> latencies(tenants.size());
  std::vector<std::uint64_t> all_latencies;
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    result.tenants[t].name = tenants[t].name;
  }

  std::vector<std::deque<std::size_t>> queues(tenants.size());
  std::size_t next_arrival = 0;
  std::uint64_t now = 0;

  const auto queues_empty = [&] {
    for (const auto& q : queues)
      if (!q.empty()) return false;
    return true;
  };

  while (next_arrival < trace.size() || !queues_empty()) {
    // Admit every arrival at or before `now`; full backlogs shed.
    while (next_arrival < trace.size() &&
           trace[next_arrival].arrival <= now) {
      const TraceRequest& r = trace[next_arrival];
      TenantStats& ts = result.tenants[static_cast<std::size_t>(r.tenant)];
      ++ts.submitted;
      if (queues[static_cast<std::size_t>(r.tenant)].size() >=
          tenants[static_cast<std::size_t>(r.tenant)].max_backlog) {
        sup.record_rejection(request_op_name(r.op), ErrorCode::kQueueFull,
                             "serve.scheduler");
        ++ts.shed_queue;
      } else {
        queues[static_cast<std::size_t>(r.tenant)].push_back(next_arrival);
      }
      ++next_arrival;
    }

    // Earliest-deadline-first across tenant queue fronts (FIFO within
    // a tenant); ties break on arrival order.
    int best = -1;
    for (std::size_t t = 0; t < queues.size(); ++t) {
      if (queues[t].empty()) continue;
      const TraceRequest& cand = trace[queues[t].front()];
      if (best < 0 || cand.deadline < trace[queues[best].front()].deadline ||
          (cand.deadline == trace[queues[best].front()].deadline &&
           cand.id < trace[queues[best].front()].id)) {
        best = static_cast<int>(t);
      }
    }
    if (best < 0) {
      now = trace[next_arrival].arrival;  // idle until the next arrival
      continue;
    }

    const TraceRequest& req = trace[queues[static_cast<std::size_t>(best)].front()];
    queues[static_cast<std::size_t>(best)].pop_front();
    TenantStats& ts = result.tenants[static_cast<std::size_t>(req.tenant)];

    if (now > req.deadline) {
      // Deadline already blown: shed before launch — cheaper than
      // wasting device time on a guaranteed SLO miss.
      sup.record_rejection(request_op_name(req.op),
                           ErrorCode::kDeadlineExceeded, "serve.deadline");
      ++ts.shed_deadline;
      continue;
    }

    const ChaosActive active = chaos.at(now);
    health.advance(now);
    sup.mutable_policy().memory_quota_bytes =
        active.mem_pressure
            ? kPressureQuotaBytes
            : tenants[static_cast<std::size_t>(req.tenant)].memory_quota_bytes;

    if (active.policy_corrupt) {
      // A corrupted dispatch-policy artifact arrives mid-storm: the
      // hardened loader must reject it with a structured error, and
      // serving proceeds on the static heuristic.
      try {
        (void)kernels::PolicyCache::from_json(corrupt_policy_cache_json(
            config.seed ^ static_cast<std::uint64_t>(req.id)));
      } catch (const vsparse::Error&) {
        ++result.policy_cache_rejections;
      }
    }

    dev.reset();
    const std::size_t first_report = sup.reports().size();
    ExecResult exec;
    switch (req.op) {
      case RequestOp::kSpmm:
        exec = run_spmm_request(config, sup, ref_dev, req, active, verify);
        break;
      case RequestOp::kSddmm:
        exec = run_sddmm_request(config, sup, ref_dev, req, active, verify);
        break;
      case RequestOp::kAttention:
        exec = run_attention_request(config, sup, ref_dev, req, active, verify);
        break;
    }

    // Feed every launch outcome to the circuit breakers.
    for (std::size_t ri = first_report; ri < sup.reports().size(); ++ri) {
      const ServeReport& rep = sup.reports()[ri];
      for (const ServeAttempt& attempt : rep.attempts) {
        if (attempt.rung == ServeRung::kNumRungs) continue;
        health.record(health_key(rep.op, attempt.rung), attempt.ok, now);
      }
    }

    now += exec.service;
    result.sim_ctas += exec.ctas;
    if (exec.completed) {
      ++ts.completed;
      const std::uint64_t latency = now - req.arrival;
      latencies[static_cast<std::size_t>(req.tenant)].push_back(latency);
      all_latencies.push_back(latency);
      if (now <= req.deadline) {
        ++ts.slo_met;
      } else {
        ++ts.deadline_miss;
      }
      if (!exec.bit_exact) ++result.mismatches;
      if (!exec.counters_exact) ++result.counter_mismatches;
    } else if (exec.rejected) {
      ++ts.rejected;
    } else {
      ++ts.failed;
    }
  }

  result.final_tick = now;
  result.total.name = "total";
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    TenantStats& ts = result.tenants[t];
    finish_latencies(ts, latencies[t]);
    result.total.submitted += ts.submitted;
    result.total.completed += ts.completed;
    result.total.slo_met += ts.slo_met;
    result.total.deadline_miss += ts.deadline_miss;
    result.total.shed_queue += ts.shed_queue;
    result.total.shed_deadline += ts.shed_deadline;
    result.total.rejected += ts.rejected;
    result.total.failed += ts.failed;
  }
  finish_latencies(result.total, all_latencies);
  if (result.final_tick > 0) {
    result.goodput_per_mtick = static_cast<double>(result.total.slo_met) *
                               1e6 / static_cast<double>(result.final_tick);
  }
  result.health = health.totals();
  result.health_events_json = health.events_json();
  result.chaos_json = chaos.to_json();
  result.report_json = sup.reports_json();
  return result;
}

std::string LoadResult::to_json(const LoadConfig& config) const {
  std::ostringstream os;
  os << "{\"schema\":\"vsparse-load-v1\",\"seed\":" << config.seed
     << ",\"requests\":" << config.requests
     << ",\"mean_gap_ticks\":" << config.mean_gap_ticks
     << ",\"chaos\":{\"enabled\":" << (config.chaos ? "true" : "false")
     << ",\"storms_per_kind\":" << config.storms_per_kind
     << ",\"windows\":" << chaos_json << "}"
     << ",\"final_tick\":" << final_tick << ",\"goodput_per_mtick\":"
     << std::fixed << std::setprecision(3) << goodput_per_mtick
     << ",\"totals\":";
  append_tenant_json(os, total);
  os << ",\"tenants\":[";
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    if (t) os << ",";
    append_tenant_json(os, tenants[t]);
  }
  os << "],\"health\":{\"quarantines\":" << health.quarantines
     << ",\"half_opens\":" << health.half_opens
     << ",\"restores\":" << health.restores
     << ",\"reopens\":" << health.reopens
     << ",\"events\":" << health_events_json << "}"
     << ",\"policy_cache_rejections\":" << policy_cache_rejections
     << ",\"verify\":{\"enabled\":"
     << ((config.verify && !config.chaos) ? "true" : "false")
     << ",\"mismatches\":" << mismatches
     << ",\"counter_mismatches\":" << counter_mismatches << "}"
     << ",\"sim_ctas\":" << sim_ctas << "}";
  return os.str();
}

}  // namespace vsparse::serve

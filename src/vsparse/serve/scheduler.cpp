#include "vsparse/serve/scheduler.hpp"

#include <algorithm>
#include <deque>
#include <iomanip>
#include <limits>
#include <sstream>
#include <utility>

#include "vsparse/gpusim/device.hpp"
#include "vsparse/kernels/policy.hpp"
#include "vsparse/serve/recorder.hpp"
#include "vsparse/serve/supervisor.hpp"

namespace vsparse::serve {
namespace {

// splitmix64 — the same mixer the supervisor's backoff jitter uses, so
// the whole trace is reproducible from the seed alone.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// The memory quota a kMemPressure storm clamps requests to (small
/// enough that the dense-decode ladder workspace of a 128-row request
/// no longer fits).
constexpr std::size_t kPressureQuotaBytes = std::size_t{16} << 10;

struct TraceRequest {
  int id = 0;
  int tenant = 0;
  RequestOp op = RequestOp::kSpmm;
  std::uint64_t arrival = 0;
  std::uint64_t deadline = 0;  ///< arrival + tenant SLO
  int m = 64, k = 64, v = 4;
  double sparsity = 0.7;
  std::uint64_t data_seed = 0;
};

// Everything about request i follows from (config.seed, i).  N stays
// 64 everywhere (the soak's determinism idiom): the octet SpMM runs
// one CTA per vector row, so a targeted fault address is read by
// exactly one CTA and the attempt sequence is identical at any
// --threads=N.
std::vector<TraceRequest> build_trace(const LoadConfig& config,
                                      const std::vector<TenantSpec>& tenants) {
  int total_weight = 0;
  for (const TenantSpec& t : tenants) total_weight += std::max(t.weight, 1);

  std::vector<TraceRequest> trace;
  trace.reserve(static_cast<std::size_t>(config.requests));
  std::uint64_t arrival = 0;
  for (int i = 0; i < config.requests; ++i) {
    const std::uint64_t h = mix64(
        config.seed ^ (static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ull));
    TraceRequest r;
    r.id = i;
    arrival += 1 + mix64(h ^ 0xa441) % (2 * config.mean_gap_ticks);
    r.arrival = arrival;

    std::uint64_t pick = mix64(h ^ 0x7e4a) % static_cast<std::uint64_t>(total_weight);
    for (std::size_t t = 0; t < tenants.size(); ++t) {
      const auto w = static_cast<std::uint64_t>(std::max(tenants[t].weight, 1));
      if (pick < w) {
        r.tenant = static_cast<int>(t);
        break;
      }
      pick -= w;
    }
    r.deadline = arrival + tenants[static_cast<std::size_t>(r.tenant)].deadline_ticks;

    switch (mix64(h ^ 0x09) % 4) {
      case 0:
      case 1:
        r.op = RequestOp::kSpmm;
        break;
      case 2:
        r.op = RequestOp::kSddmm;
        break;
      default:
        r.op = RequestOp::kAttention;
        break;
    }
    r.m = ((h >> 4) & 1) ? 64 : 128;
    r.k = ((h >> 6) & 1) ? 64 : 128;
    r.v = ((h >> 8) & 1) ? 2 : 4;
    r.sparsity = ((h >> 12) & 1) ? 0.9 : 0.7;
    if (r.op == RequestOp::kAttention) {
      r.m = r.k = 64;  // seq = head_dim = 64, one CTA per vector row
      r.v = 4;
    }
    r.data_seed = mix64(h ^ 0xda7a);
    trace.push_back(r);
  }
  return trace;
}

std::uint64_t percentile(const std::vector<std::uint64_t>& sorted, int p) {
  if (sorted.empty()) return 0;
  return sorted[(sorted.size() - 1) * static_cast<std::size_t>(p) / 100];
}

void finish_latencies(TenantStats& stats, std::vector<std::uint64_t>& lat) {
  std::sort(lat.begin(), lat.end());
  stats.p50_latency_ticks = percentile(lat, 50);
  stats.p99_latency_ticks = percentile(lat, 99);
  stats.max_latency_ticks = lat.empty() ? 0 : lat.back();
}

void append_tenant_json(std::ostringstream& os, const TenantStats& s) {
  os << "{\"name\":\"" << s.name << "\",\"submitted\":" << s.submitted
     << ",\"completed\":" << s.completed << ",\"slo_met\":" << s.slo_met
     << ",\"deadline_miss\":" << s.deadline_miss
     << ",\"shed_queue\":" << s.shed_queue
     << ",\"shed_deadline\":" << s.shed_deadline
     << ",\"rejected\":" << s.rejected << ",\"failed\":" << s.failed
     << ",\"p50_latency_ticks\":" << s.p50_latency_ticks
     << ",\"p99_latency_ticks\":" << s.p99_latency_ticks
     << ",\"max_latency_ticks\":" << s.max_latency_ticks << "}";
}

void validate_load_config(const LoadConfig& config,
                          const std::vector<TenantSpec>& tenants) {
  VSPARSE_CHECK_RAISE(config.requests > 0, ErrorCode::kBadDispatch,
                      "serve.scheduler",
                      "requests must be positive, got " << config.requests);
  VSPARSE_CHECK_RAISE(config.threads >= 1, ErrorCode::kBadDispatch,
                      "serve.scheduler",
                      "threads must be >= 1, got " << config.threads);
  VSPARSE_CHECK_RAISE(config.mean_gap_ticks >= 1, ErrorCode::kBadDispatch,
                      "serve.scheduler", "mean_gap_ticks must be >= 1");
  VSPARSE_CHECK_RAISE(config.devices >= 1 && config.devices <= 32,
                      ErrorCode::kBadDispatch, "serve.scheduler",
                      "devices must be in [1, 32], got " << config.devices);
  VSPARSE_CHECK_RAISE(
      config.hedge_margin_percent >= 0 && config.hedge_margin_percent <= 100,
      ErrorCode::kBadDispatch, "serve.scheduler",
      "hedge_margin_percent must be in [0, 100], got "
          << config.hedge_margin_percent);
  VSPARSE_CHECK_RAISE(config.max_repro_bundles >= 0, ErrorCode::kBadDispatch,
                      "serve.scheduler", "max_repro_bundles must be >= 0");
  VSPARSE_CHECK_RAISE(!tenants.empty(), ErrorCode::kBadDispatch,
                      "serve.scheduler", "tenant set must not be empty");
  for (const TenantSpec& t : tenants) {
    VSPARSE_CHECK_RAISE(!t.name.empty(), ErrorCode::kBadDispatch,
                        "serve.scheduler", "tenant name must not be empty");
    VSPARSE_CHECK_RAISE(t.deadline_ticks >= 1, ErrorCode::kBadDispatch,
                        "serve.scheduler",
                        "tenant \"" << t.name << "\" deadline must be >= 1");
    VSPARSE_CHECK_RAISE(t.max_backlog >= 1, ErrorCode::kBadDispatch,
                        "serve.scheduler",
                        "tenant \"" << t.name << "\" backlog must be >= 1");
  }
  for (const DrainWindow& d : config.drains) {
    VSPARSE_CHECK_RAISE(d.device >= 0 && d.device < config.devices,
                        ErrorCode::kBadDispatch, "serve.scheduler",
                        "drain device " << d.device << " outside fleet of "
                                        << config.devices);
    VSPARSE_CHECK_RAISE(d.begin < d.end, ErrorCode::kBadDispatch,
                        "serve.scheduler",
                        "drain window must have begin < end");
  }
}

/// The per-request row of the exactly-once accounting ledger.
struct LedgerEntry {
  const char* outcome = "";  ///< terminal: one of the five outcome strings
  int device = -1;           ///< final serving device (-1: never placed)
  int failovers = 0;
  bool hedged = false;
  bool hedge_win_secondary = false;
  std::uint64_t completion_tick = 0;
  std::uint64_t latency = 0;
};

std::string ledger_json(const std::vector<TraceRequest>& trace,
                        const std::vector<TenantSpec>& tenants,
                        const std::vector<LedgerEntry>& ledger) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const TraceRequest& r = trace[i];
    const LedgerEntry& e = ledger[i];
    if (i) os << ",\n";
    os << "{\"id\":" << r.id << ",\"tenant\":\""
       << tenants[static_cast<std::size_t>(r.tenant)].name << "\",\"op\":\""
       << request_op_name(r.op) << "\",\"arrival\":" << r.arrival
       << ",\"deadline\":" << r.deadline << ",\"outcome\":\"" << e.outcome
       << "\",\"device\":" << e.device << ",\"failovers\":" << e.failovers
       << ",\"hedged\":" << (e.hedged ? "true" : "false")
       << ",\"hedge_win_secondary\":"
       << (e.hedge_win_secondary ? "true" : "false")
       << ",\"completion_tick\":" << e.completion_tick
       << ",\"latency\":" << e.latency << "}";
  }
  os << "]";
  return os.str();
}

}  // namespace

std::vector<TenantSpec> default_tenants() {
  return {
      {"interactive", /*deadline=*/150'000, std::size_t{1} << 20,
       /*backlog=*/4, /*weight=*/2, /*hedge=*/true},
      {"analytics", /*deadline=*/600'000, std::size_t{1} << 20,
       /*backlog=*/8, /*weight=*/1, /*hedge=*/false},
      {"background", /*deadline=*/3'000'000, std::size_t{1} << 20,
       /*backlog=*/16, /*weight=*/1, /*hedge=*/false},
  };
}

LoadResult run_load(const LoadConfig& config) {
  const std::vector<TenantSpec> tenants =
      config.tenants.empty() ? default_tenants() : config.tenants;
  validate_load_config(config, tenants);
  const std::vector<TraceRequest> trace = build_trace(config, tenants);
  const bool verify = config.verify && !config.chaos;

  gpusim::DeviceConfig hw = gpusim::DeviceConfig::volta_v100();
  hw.dram_capacity = std::size_t{1} << 26;  // 64 MiB — reset per request
  gpusim::Device ref_dev(hw);

  const std::uint64_t horizon =
      config.mean_gap_ticks * static_cast<std::uint64_t>(config.requests);
  ChaosPlan chaos;
  if (config.chaos) {
    chaos = ChaosPlan::storms(mix64(config.seed ^ 0x57095), horizon,
                              config.storms_per_kind);
  }
  DeviceChaosPlan device_chaos;
  if (config.device_chaos) {
    device_chaos =
        DeviceChaosPlan::storms(mix64(config.seed ^ 0xf1ee7), horizon,
                                config.devices, config.device_storms_per_kind);
  }

  ServePolicy base_policy;
  base_policy.retry = config.retry;
  base_policy.ladder = true;
  FleetConfig fleet_config;
  fleet_config.devices = config.devices;
  fleet_config.drain_cooldown_ticks = config.drain_cooldown_ticks;
  fleet_config.drains = config.drains;
  Fleet fleet(fleet_config, hw, base_policy, config.health,
              config.device_chaos ? &device_chaos : nullptr);
  FlightRecorder recorder(
      static_cast<std::size_t>(config.max_repro_bundles));

  LoadResult result;
  result.tenants.resize(tenants.size());
  std::vector<std::vector<std::uint64_t>> latencies(tenants.size());
  std::vector<std::uint64_t> all_latencies;
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    result.tenants[t].name = tenants[t].name;
  }
  std::vector<LedgerEntry> ledger(trace.size());

  std::vector<std::deque<std::size_t>> queues(tenants.size());
  std::size_t next_arrival = 0;
  std::uint64_t now = 0;

  // Run one execution of `req` on worker `d` starting at `start`;
  // returns (outcome, completion tick).  Everything request-scoped —
  // chaos evaluation, breaker advance, quota, fault arming, flight-
  // recorder capture, health/breaker feeding — happens here, so
  // failover legs and hedge duplicates behave exactly like initial
  // placements.
  const auto run_on = [&](int d, const TraceRequest& req,
                          std::uint64_t start)
      -> std::pair<ExecOutcome, std::uint64_t> {
    Fleet::Worker& w = fleet.worker(d);
    const bool was_probe = fleet.note_placement(w, start, result.fleet);
    if (fleet.placement_migrated(d, start)) ++result.fleet.migrated;

    const ChaosActive active = chaos.at(start);
    w.health.advance(start);
    w.sup.mutable_policy().memory_quota_bytes =
        active.mem_pressure
            ? kPressureQuotaBytes
            : tenants[static_cast<std::size_t>(req.tenant)].memory_quota_bytes;

    w.dev.reset();
    const DeviceFaultActive dfault = fleet.arm_device(w, start);

    const RequestSpec spec{req.op, req.m, req.k, req.v, req.sparsity,
                           req.data_seed};
    ExecEnv env;
    env.threads = config.threads;
    env.ecc_burst = active.ecc_burst;
    env.watchdog_cta_ops =
        (active.brownout || dfault.brownout) ? kBrownoutCtaOps : 0;
    env.verify = verify;
    env.ref_dev = &ref_dev;

    const std::size_t first_report = w.sup.reports().size();
    const std::uint64_t first_id = fleet.next_request_id();
    const ExecOutcome out = execute_request(w.sup, spec, env);
    fleet.disarm_device(w);
    const std::uint64_t end = start + out.service;
    w.busy_until = end;

    if (!out.completed && !out.rejected) {
      // Capture before feeding the breakers: the tracker does not
      // change during execution, so the open-kernel snapshot equals
      // the gate the failing request actually ran under.
      ReproBundle b;
      b.request_id = static_cast<std::uint64_t>(req.id);
      b.tick = start;
      b.device = d;
      b.spec = spec;
      b.threads = config.threads;
      b.ecc_burst = env.ecc_burst;
      b.watchdog_cta_ops = env.watchdog_cta_ops;
      b.device_fault = dfault.dead ? "dead" : (dfault.wedged ? "wedged" : "none");
      b.memory_quota_bytes = w.sup.policy().memory_quota_bytes;
      b.retry = config.retry;
      b.first_request_id = first_id;
      b.open_kernels = w.health.open_kernels();
      b.signature = signature_json(w.sup.reports(), first_report, out);
      recorder.capture(std::move(b));
    }

    // Feed every launch outcome to this worker's kernel breakers.
    for (std::size_t ri = first_report; ri < w.sup.reports().size(); ++ri) {
      const ServeReport& rep = w.sup.reports()[ri];
      for (const ServeAttempt& attempt : rep.attempts) {
        if (attempt.rung == ServeRung::kNumRungs) continue;
        w.health.record(health_key(rep.op, attempt.rung), attempt.ok, start);
      }
    }
    fleet.note_outcome(w, out, end, was_probe, result.fleet);
    result.sim_ctas += out.ctas;
    if (verify && out.completed) {
      if (!out.bit_exact) ++result.mismatches;
      if (!out.counters_exact) ++result.counter_mismatches;
    }
    return {out, end};
  };

  const auto queues_empty = [&] {
    for (const auto& q : queues)
      if (!q.empty()) return false;
    return true;
  };

  while (next_arrival < trace.size() || !queues_empty()) {
    // Admit every arrival at or before `now`; full backlogs shed.
    while (next_arrival < trace.size() &&
           trace[next_arrival].arrival <= now) {
      const TraceRequest& r = trace[next_arrival];
      TenantStats& ts = result.tenants[static_cast<std::size_t>(r.tenant)];
      ++ts.submitted;
      if (queues[static_cast<std::size_t>(r.tenant)].size() >=
          tenants[static_cast<std::size_t>(r.tenant)].max_backlog) {
        fleet.worker(0).sup.record_rejection(
            request_op_name(r.op), ErrorCode::kQueueFull, "serve.scheduler");
        ++ts.shed_queue;
        ledger[next_arrival].outcome = "shed_queue";
      } else {
        queues[static_cast<std::size_t>(r.tenant)].push_back(next_arrival);
      }
      ++next_arrival;
    }

    // Earliest-deadline-first across tenant queue fronts (FIFO within
    // a tenant); ties break on arrival order.  Peek only — the pop
    // happens at placement, so waiting for a free worker never
    // reorders the backlog.
    int best = -1;
    for (std::size_t t = 0; t < queues.size(); ++t) {
      if (queues[t].empty()) continue;
      const TraceRequest& cand = trace[queues[t].front()];
      if (best < 0 ||
          cand.deadline < trace[queues[static_cast<std::size_t>(best)].front()].deadline ||
          (cand.deadline ==
               trace[queues[static_cast<std::size_t>(best)].front()].deadline &&
           cand.id < trace[queues[static_cast<std::size_t>(best)].front()].id)) {
        best = static_cast<int>(t);
      }
    }
    if (best < 0) {
      now = trace[next_arrival].arrival;  // idle until the next arrival
      continue;
    }

    fleet.observe(now, result.fleet);
    const int d0 = fleet.pick_free(now);
    if (d0 < 0) {
      // Every eligible worker is busy: jump to the next completion,
      // probe expiry, drain end, or arrival — whichever is soonest.
      std::uint64_t next_now = fleet.next_event_tick(now);
      if (next_arrival < trace.size()) {
        next_now = std::min(next_now, trace[next_arrival].arrival);
      }
      now = next_now > now ? next_now : now + 1;
      continue;
    }

    const std::size_t idx = queues[static_cast<std::size_t>(best)].front();
    const TraceRequest& req = trace[idx];
    queues[static_cast<std::size_t>(best)].pop_front();
    TenantStats& ts = result.tenants[static_cast<std::size_t>(req.tenant)];

    if (now > req.deadline) {
      // Deadline already blown: shed before launch — cheaper than
      // wasting device time on a guaranteed SLO miss.
      fleet.worker(0).sup.record_rejection(request_op_name(req.op),
                                           ErrorCode::kDeadlineExceeded,
                                           "serve.deadline");
      ++ts.shed_deadline;
      ledger[idx].outcome = "shed_deadline";
      continue;
    }

    if (chaos.at(now).policy_corrupt) {
      // A corrupted dispatch-policy artifact arrives mid-storm: the
      // hardened loader must reject it with a structured error, and
      // serving proceeds on the static heuristic.  Once per request —
      // failover legs and hedge duplicates don't re-load it.
      try {
        (void)kernels::PolicyCache::from_json(corrupt_policy_cache_json(
            config.seed ^ static_cast<std::uint64_t>(req.id)));
      } catch (const vsparse::Error&) {
        ++result.policy_cache_rejections;
      }
    }

    // Hedge decision: a deadline-critical tenant whose remaining
    // margin shrank below the trigger duplicates onto the next-soonest
    // eligible worker — the classic tail-latency hedge, where the
    // backup launches when that worker frees.  Initial placements only
    // — failover legs never hedge.
    const TenantSpec& tspec = tenants[static_cast<std::size_t>(req.tenant)];
    int d1 = -1;
    std::uint64_t hedge_start = 0;
    if (config.hedge && tspec.hedge && config.devices > 1 &&
        (req.deadline - now) * 100 <
            tspec.deadline_ticks *
                static_cast<std::uint64_t>(config.hedge_margin_percent)) {
      for (int d = 0; d < fleet.devices(); ++d) {
        if (d == d0) continue;
        const Fleet::Worker& w = fleet.worker(d);
        if (!fleet.available(w, now)) continue;
        const std::uint64_t start = std::max(now, w.busy_until);
        if (start >= req.deadline) continue;  // can't possibly help
        if (d1 < 0 || start < hedge_start) {
          d1 = d;
          hedge_start = start;
        }
      }
    }

    ExecOutcome out;
    std::uint64_t end = 0;
    int serving_device = d0;
    if (d1 >= 0) {
      ++result.fleet.hedges;
      ledger[idx].hedged = true;
      fleet.emit(now, d1, "hedge");
      const auto [out_p, end_p] = run_on(d0, req, now);
      if (out_p.completed && end_p <= hedge_start) {
        // The primary finished before the backup's worker even freed:
        // cancel the duplicate pre-launch (no device time consumed).
        out = out_p;
        end = end_p;
        ++result.fleet.hedge_cancelled;
        ++result.fleet.hedges_unlaunched;
        fleet.emit(end, d1, "hedge_cancel");
      } else if (const auto [out_s, end_s] = run_on(d1, req, hedge_start);
                 out_p.completed && (!out_s.completed || end_p <= end_s)) {
        // Primary wins (ties go to the primary); cancel the secondary.
        out = out_p;
        end = end_p;
        fleet.worker(d1).busy_until = std::min(end_s, end_p);
        ++result.fleet.hedge_cancelled;
        fleet.emit(end, d1, "hedge_cancel");
      } else if (out_s.completed) {
        out = out_s;
        end = end_s;
        serving_device = d1;
        ++result.fleet.hedge_wins_secondary;
        ledger[idx].hedge_win_secondary = true;
        fleet.worker(d0).busy_until = std::min(end_p, end_s);
        ++result.fleet.hedge_cancelled;
        fleet.emit(end, d0, "hedge_cancel");
      } else if (out_p.device_failure() && out_s.device_failure()) {
        // Both legs hit device faults: fail over past both of them.
        out = out_p;
        end = std::max(end_p, end_s);
      } else if (!out_p.device_failure()) {
        // A genuine (non-device) failure is authoritative — re-placing
        // would just re-run the same deterministic failure.
        out = out_p;
        end = end_p;
      } else {
        out = out_s;
        end = end_s;
        serving_device = d1;
      }
    } else {
      const auto [out_0, end_0] = run_on(d0, req, now);
      out = out_0;
      end = end_0;
    }

    // Failover chain: only whole-device failure signatures re-place
    // (an ECC/kernel failure would deterministically recur), each leg
    // on the next untried worker that can start soonest.
    std::vector<char> tried(static_cast<std::size_t>(fleet.devices()), 0);
    tried[static_cast<std::size_t>(d0)] = 1;
    if (d1 >= 0) tried[static_cast<std::size_t>(d1)] = 1;
    while (out.device_failure()) {
      const int dn = fleet.pick_failover(end, tried);
      if (dn < 0) break;
      tried[static_cast<std::size_t>(dn)] = 1;
      const std::uint64_t start2 = std::max(end, fleet.worker(dn).busy_until);
      ++result.fleet.failovers;
      ++ledger[idx].failovers;
      fleet.emit(start2, dn, "failover");
      const auto [out_n, end_n] = run_on(dn, req, start2);
      out = out_n;
      end = end_n;
      serving_device = dn;
    }

    ledger[idx].device = serving_device;
    ledger[idx].completion_tick = end;
    if (out.completed) {
      ++ts.completed;
      const std::uint64_t latency = end - req.arrival;
      latencies[static_cast<std::size_t>(req.tenant)].push_back(latency);
      all_latencies.push_back(latency);
      if (end <= req.deadline) {
        ++ts.slo_met;
      } else {
        ++ts.deadline_miss;
      }
      ledger[idx].outcome = "completed";
      ledger[idx].latency = latency;
    } else if (out.rejected) {
      ++ts.rejected;
      ledger[idx].outcome = "rejected";
    } else {
      ++ts.failed;
      ledger[idx].outcome = "failed";
    }
  }

  std::uint64_t final_tick = now;
  for (int d = 0; d < fleet.devices(); ++d) {
    final_tick = std::max(final_tick, fleet.worker(d).busy_until);
  }
  result.final_tick = final_tick;
  result.total.name = "total";
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    TenantStats& ts = result.tenants[t];
    finish_latencies(ts, latencies[t]);
    result.total.submitted += ts.submitted;
    result.total.completed += ts.completed;
    result.total.slo_met += ts.slo_met;
    result.total.deadline_miss += ts.deadline_miss;
    result.total.shed_queue += ts.shed_queue;
    result.total.shed_deadline += ts.shed_deadline;
    result.total.rejected += ts.rejected;
    result.total.failed += ts.failed;
  }
  finish_latencies(result.total, all_latencies);
  if (result.final_tick > 0) {
    result.goodput_per_mtick = static_cast<double>(result.total.slo_met) *
                               1e6 / static_cast<double>(result.final_tick);
  }
  result.health = fleet.merged_health_totals();
  result.health_events_json = fleet.merged_health_events_json();
  result.chaos_json = chaos.to_json();
  result.device_chaos_json = device_chaos.to_json();
  result.fleet_events_json = fleet.events_json();
  result.workers_json = fleet.workers_json();
  result.report_json = reports_json(fleet.merged_reports());
  result.repro_bundles = recorder.bundles().size();
  result.repro_dropped = recorder.dropped();
  result.repro_json = recorder.to_json();
  result.request_ledger_json = ledger_json(trace, tenants, ledger);
  return result;
}

std::string LoadResult::to_json(const LoadConfig& config) const {
  std::ostringstream os;
  os << "{\"schema\":\"vsparse-load-v2\",\"seed\":" << config.seed
     << ",\"requests\":" << config.requests
     << ",\"mean_gap_ticks\":" << config.mean_gap_ticks
     << ",\"devices\":" << config.devices
     << ",\"chaos\":{\"enabled\":" << (config.chaos ? "true" : "false")
     << ",\"storms_per_kind\":" << config.storms_per_kind
     << ",\"windows\":" << chaos_json << "}"
     << ",\"device_chaos\":{\"enabled\":"
     << (config.device_chaos ? "true" : "false")
     << ",\"storms_per_kind\":" << config.device_storms_per_kind
     << ",\"windows\":" << device_chaos_json << "}"
     << ",\"final_tick\":" << final_tick << ",\"goodput_per_mtick\":"
     << std::fixed << std::setprecision(3) << goodput_per_mtick
     << ",\"totals\":";
  append_tenant_json(os, total);
  os << ",\"tenants\":[";
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    if (t) os << ",";
    append_tenant_json(os, tenants[t]);
  }
  os << "],\"health\":{\"quarantines\":" << health.quarantines
     << ",\"half_opens\":" << health.half_opens
     << ",\"restores\":" << health.restores
     << ",\"reopens\":" << health.reopens
     << ",\"events\":" << health_events_json << "}"
     << ",\"policy_cache_rejections\":" << policy_cache_rejections
     << ",\"verify\":{\"enabled\":"
     << ((config.verify && !config.chaos) ? "true" : "false")
     << ",\"mismatches\":" << mismatches
     << ",\"counter_mismatches\":" << counter_mismatches << "}"
     << ",\"fleet\":{\"hedge\":" << (config.hedge ? "true" : "false")
     << ",\"hedge_margin_percent\":" << config.hedge_margin_percent
     << ",\"placements\":{\"placements\":" << fleet.placements
     << ",\"failovers\":" << fleet.failovers
     << ",\"migrated\":" << fleet.migrated << ",\"hedges\":" << fleet.hedges
     << ",\"hedge_wins_secondary\":" << fleet.hedge_wins_secondary
     << ",\"hedge_cancelled\":" << fleet.hedge_cancelled
     << ",\"hedges_unlaunched\":" << fleet.hedges_unlaunched
     << ",\"probes\":" << fleet.probes << ",\"drains\":" << fleet.drains
     << ",\"drain_reopens\":" << fleet.drain_reopens
     << ",\"restores\":" << fleet.restores
     << ",\"devices_lost\":" << fleet.devices_lost << "}"
     << ",\"workers\":" << workers_json << ",\"events\":" << fleet_events_json
     << ",\"repro_bundles\":" << repro_bundles
     << ",\"repro_dropped\":" << repro_dropped << "}"
     << ",\"request_ledger\":" << request_ledger_json
     << ",\"sim_ctas\":" << sim_ctas << "}";
  return os.str();
}

}  // namespace vsparse::serve

// ServeReport — the attempt-by-attempt record of one supervised
// request: every rung tried, every retry, every backoff, and the
// final outcome, all classified by the error taxonomy.
//
// Determinism contract: to_json() contains only thread-invariant
// fields — rung names, attempt ordinals, simulated backoff cycles,
// taxonomy codes and stable site strings.  No wall-clock time, no
// free-text messages (a watchdog message embeds a per-SM progress dump
// that legitimately varies with host scheduling), no L2/DRAM-split
// counters.  Same seed + policy => byte-identical JSON at any
// --threads=N.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "vsparse/kernels/api.hpp"
#include "vsparse/serve/error.hpp"

namespace vsparse::serve {

/// The degradation-ladder rungs, in canonical fallback order for SpMM.
/// SDDMM uses the subset {kOctet, kWmmaWarp, kFpuSubwarp, kCsrFine}.
enum class ServeRung : std::uint8_t {
  kOctet = 0,   ///< TCU 1-D octet tiling — the paper's kernel
  kOctetAbft,   ///< octet + ABFT checksum verify/recompute
  kBlockedEll,  ///< re-encode to Blocked-ELL, cuSPARSE-style kernel
  kDenseGemm,   ///< decode to dense, cublasHgemm stand-in
  kFpuSubwarp,  ///< FPU reference tiling (any V, no TCU)
  kCsrFine,     ///< fine-grained V=1 baseline
  kWmmaWarp,    ///< classic warp-level WMMA mapping
  kNumRungs
};

const char* serve_rung_name(ServeRung rung);

/// One kernel attempt (or an admission rejection, rung-less).
struct ServeAttempt {
  ServeRung rung = ServeRung::kNumRungs;
  int attempt = 0;  ///< 0 = first try on this rung, k = k-th retry
  std::uint64_t backoff_cycles = 0;  ///< simulated wait before this try
  bool ok = false;
  ErrorCode code = ErrorCode::kInternal;  ///< valid when !ok
  std::string site;                       ///< stable throw site, "" when ok
};

/// Everything the supervisor did for one request.
struct ServeReport {
  std::uint64_t request_id = 0;
  std::string op;  ///< "spmm" | "sddmm"
  bool completed = false;
  bool rejected = false;  ///< failed admission; nothing launched
  ServeRung final_rung = ServeRung::kNumRungs;  ///< rung that completed
  int retries = 0;    ///< same-rung re-attempts across all rungs
  int fallbacks = 0;  ///< ladder hops taken
  std::uint64_t backoff_cycles = 0;  ///< total simulated backoff
  std::vector<ServeAttempt> attempts;
  bool has_error = false;  ///< request ultimately failed
  ErrorCode final_code = ErrorCode::kInternal;
  std::string final_site;

  /// The successful run (counters + launch shape).  In-memory only —
  /// deliberately not serialized (L2/DRAM counter splits are only
  /// bit-exact at threads=1).
  kernels::KernelRun run;

  void clear() { *this = ServeReport{}; }

  /// Deterministic single-line JSON (see header comment).
  std::string to_json() const;
};

/// {"schema":"vsparse-serve-v1",...} wrapping one report line each —
/// the soak artifact CI uploads.
std::string reports_json(const std::vector<ServeReport>& reports);

}  // namespace vsparse::serve

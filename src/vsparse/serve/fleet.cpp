#include "vsparse/serve/fleet.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>

#include "vsparse/common/rng.hpp"
#include "vsparse/formats/cvs.hpp"
#include "vsparse/formats/dense.hpp"
#include "vsparse/formats/generate.hpp"
#include "vsparse/gpusim/faults.hpp"
#include "vsparse/gpusim/verify/certs.hpp"
#include "vsparse/kernels/dispatch.hpp"
#include "vsparse/kernels/softmax/sparse_softmax.hpp"

namespace vsparse::serve {
namespace {

// splitmix64 — the same mixer the supervisor's backoff jitter uses, so
// the whole trace is reproducible from the seed alone.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Force integer values so every ladder rung — including the dense-GEMM
// decode, whose fp16 accumulation order differs — is bit-identical to
// the fault-free run (the soak's recovery-contract idiom).
void make_integer_values(std::vector<half_t>& values, std::uint64_t seed) {
  for (std::size_t j = 0; j < values.size(); ++j) {
    const std::uint64_t hv = mix64(seed ^ (0x7a1ee5 + j));
    const float mag = static_cast<float>(1 + (hv % 3));
    values[j] = half_t((hv & 8) ? mag : -mag);
  }
}

/// Service ticks of one completed kernel run — SM-local counters only
/// (never the L2 split or DRAM bytes, which vary at --threads>1).
std::uint64_t service_of_run(const kernels::KernelRun& run) {
  const gpusim::KernelStats& s = run.stats;
  return s.total_instructions() + 4 * s.l1_sector_misses + s.smem_wavefronts;
}

/// Service ticks of one supervised report: per-attempt dispatch
/// overhead + recorded backoff + the successful run's modeled work.
std::uint64_t service_of_report(const ServeReport& rep) {
  std::uint64_t svc = kDispatchOverheadTicks *
                      std::max<std::uint64_t>(1, rep.attempts.size());
  svc += rep.backoff_cycles;
  if (rep.completed) svc += service_of_run(rep.run);
  return svc;
}

void fold_report(ExecOutcome& out, const ServeReport& rep) {
  out.service += service_of_report(rep);
  if (rep.completed) out.ctas += rep.run.stats.ctas_launched;
}

void fold_failure(ExecOutcome& out, const ServeReport& rep) {
  if (rep.completed) return;
  out.final_code = rep.final_code;
  out.final_site = rep.final_site;
}

ExecOutcome exec_spmm(Supervisor& sup, const RequestSpec& spec,
                      const ExecEnv& env) {
  gpusim::Device& dev = sup.device();
  Rng rng(spec.data_seed);
  Cvs a_host = make_cvs(spec.m, spec.k, spec.v, spec.sparsity, rng);
  make_integer_values(a_host.values, spec.data_seed);
  DenseMatrix<half_t> b_host(spec.k, 64);
  b_host.fill_random_int(rng);
  DenseMatrix<half_t> c_host(spec.m, 64);

  CvsDevice a = to_device(dev, a_host);
  DenseDevice<half_t> b = to_device(dev, b_host);
  DenseDevice<half_t> c = to_device(dev, c_host);

  // ECC burst: a sticky double-bit upset parked on the sparse operand
  // — the octet rungs keep detecting it until the ladder re-encodes A
  // at fresh addresses, and the repeated failures trip the breaker.
  gpusim::FaultPlan plan(mix64(spec.data_seed ^ 0x570) | 1,
                         /*ecc_enabled=*/true);
  if (env.ecc_burst) {
    plan.add_target({gpusim::FaultSite::kDramRead, a.values.addr(0),
                     /*bit=*/1, /*n_bits=*/2, /*sticky=*/true});
    dev.set_fault_plan(&plan);
  }

  kernels::SpmmOptions options;
  options.sim.threads = env.threads;
  if (env.watchdog_cta_ops) options.sim.watchdog_cta_ops = env.watchdog_cta_ops;

  const ServeReport& report = sup.submit_spmm(a, b, c, options);
  if (env.ecc_burst) dev.set_fault_plan(nullptr);

  ExecOutcome out;
  out.completed = report.completed;
  out.rejected = report.rejected;
  fold_report(out, report);
  fold_failure(out, report);
  if (env.verify && report.completed) {
    gpusim::Device& ref_dev = *env.ref_dev;
    ref_dev.reset();
    CvsDevice ra = to_device(ref_dev, a_host);
    DenseDevice<half_t> rb = to_device(ref_dev, b_host);
    DenseDevice<half_t> rc = to_device(ref_dev, c_host);
    const kernels::KernelRun ref =
        kernels::spmm(ref_dev, ra, rb, rc, {.sim = {.threads = env.threads}});
    const auto got = c.buf.host();
    const auto want = rc.buf.host();
    out.bit_exact = got.size() == want.size() &&
                    std::memcmp(got.data(), want.data(), got.size_bytes()) == 0;
    // A device brownout may legitimately push the request to a
    // different ladder rung, so counters compare only fault-free.
    if (env.watchdog_cta_ops == 0) {
      out.counters_exact = report.run.stats.sm_local_equal(ref.stats);
    }
  }
  return out;
}

ExecOutcome exec_sddmm(Supervisor& sup, const RequestSpec& spec,
                       const ExecEnv& env) {
  gpusim::Device& dev = sup.device();
  Rng rng(spec.data_seed);
  DenseMatrix<half_t> a_host(spec.m, spec.k);
  a_host.fill_random_int(rng);
  DenseMatrix<half_t> b_host(spec.k, 64, Layout::kColMajor);
  b_host.fill_random_int(rng);
  Cvs mask_host = make_cvs_mask(spec.m, 64, spec.v, spec.sparsity, rng);

  DenseDevice<half_t> a = to_device(dev, a_host);
  DenseDevice<half_t> b = to_device(dev, b_host);
  CvsDevice mask = to_device(dev, mask_host);
  auto out_values = dev.alloc<half_t>(mask_host.values.size());

  // The SDDMM ladder has no re-encode rung, so a sticky target would
  // fail every rung; ECC bursts hit it with rate-based single-bit
  // upsets instead — corrected in flight, but counted by the engine.
  gpusim::FaultPlan plan(mix64(spec.data_seed ^ 0x570) | 1,
                         /*ecc_enabled=*/true);
  if (env.ecc_burst) {
    plan.set_rates({.dram_read = 1e-4});
    dev.set_fault_plan(&plan);
  }

  kernels::SddmmOptions options;
  options.sim.threads = env.threads;
  if (env.watchdog_cta_ops) options.sim.watchdog_cta_ops = env.watchdog_cta_ops;

  const ServeReport& report = sup.submit_sddmm(a, b, mask, out_values, options);
  if (env.ecc_burst) dev.set_fault_plan(nullptr);

  ExecOutcome out;
  out.completed = report.completed;
  out.rejected = report.rejected;
  fold_report(out, report);
  fold_failure(out, report);
  if (env.verify && report.completed) {
    gpusim::Device& ref_dev = *env.ref_dev;
    ref_dev.reset();
    DenseDevice<half_t> ra = to_device(ref_dev, a_host);
    DenseDevice<half_t> rb = to_device(ref_dev, b_host);
    CvsDevice rmask = to_device(ref_dev, mask_host);
    auto rout = ref_dev.alloc<half_t>(mask_host.values.size());
    const kernels::KernelRun ref = kernels::sddmm(
        ref_dev, ra, rb, rmask, rout, {.sim = {.threads = env.threads}});
    const auto got = out_values.host();
    const auto want = rout.host();
    out.bit_exact = got.size() == want.size() &&
                    std::memcmp(got.data(), want.data(), got.size_bytes()) == 0;
    if (env.watchdog_cta_ops == 0) {
      out.counters_exact = report.run.stats.sm_local_equal(ref.stats);
    }
  }
  return out;
}

// Attention composed scheduler-side from its supervised stages (the
// same QKᵀ∘C -> sparse softmax -> AV pipeline as transformer/
// attention.cpp, with both matrix products inside the fault boundary).
// The AV stage is skipped when QK fails, so supervisor numbering stays
// dense and a failed head costs one report, not two.
ExecOutcome exec_attention(Supervisor& sup, const RequestSpec& spec,
                           const ExecEnv& env) {
  gpusim::Device& dev = sup.device();
  const int seq = spec.m;
  const int d = spec.k;
  Rng rng(spec.data_seed);
  DenseMatrix<half_t> q_host(seq, d);
  q_host.fill_random_int(rng);
  DenseMatrix<half_t> k_host(seq, d);
  k_host.fill_random_int(rng);
  DenseMatrix<half_t> v_host(seq, d);
  v_host.fill_random_int(rng);
  Cvs mask_host = make_cvs_mask(seq, seq, spec.v, spec.sparsity, rng);

  DenseDevice<half_t> q = to_device(dev, q_host);
  DenseDevice<half_t> k = to_device(dev, k_host);
  DenseDevice<half_t> v = to_device(dev, v_host);
  CvsDevice mask = to_device(dev, mask_host);
  auto scratch = dev.alloc<half_t>(mask_host.values.size());
  DenseMatrix<half_t> out_host(seq, d);
  DenseDevice<half_t> out = to_device(dev, out_host);

  gpusim::FaultPlan plan(mix64(spec.data_seed ^ 0x570) | 1,
                         /*ecc_enabled=*/true);
  if (env.ecc_burst) {
    plan.set_rates({.dram_read = 1e-4});
    dev.set_fault_plan(&plan);
  }

  kernels::SddmmOptions qk_options;
  qk_options.algorithm = kernels::SddmmAlgorithm::kOctet;
  qk_options.sim.threads = env.threads;
  if (env.watchdog_cta_ops) {
    qk_options.sim.watchdog_cta_ops = env.watchdog_cta_ops;
  }

  DenseDevice<half_t> kt{k.buf, d, seq, k.ld, Layout::kColMajor};
  const ServeReport& qk_report =
      sup.submit_sddmm(q, kt, mask, scratch, qk_options);

  ExecOutcome out_res;
  out_res.rejected = qk_report.rejected;
  fold_report(out_res, qk_report);
  fold_failure(out_res, qk_report);
  if (!qk_report.completed) {
    if (env.ecc_burst) dev.set_fault_plan(nullptr);
    return out_res;  // completed stays false; AV is skipped
  }
  // The AV submit below appends to the supervisor's report vector,
  // which may reallocate and invalidate qk_report — copy the stats the
  // verify pass needs while the reference is still live.
  const gpusim::KernelStats qk_stats = qk_report.run.stats;

  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  const kernels::KernelRun softmax_run =
      kernels::sparse_softmax(dev, mask, scratch, scratch, scale);
  out_res.service += service_of_run(softmax_run);
  out_res.ctas += softmax_run.stats.ctas_launched;

  CvsDevice probs = mask;
  probs.values = scratch;
  kernels::SpmmOptions av_options;
  av_options.algorithm = kernels::SpmmAlgorithm::kOctet;
  av_options.sim.threads = env.threads;
  if (env.watchdog_cta_ops) {
    av_options.sim.watchdog_cta_ops = env.watchdog_cta_ops;
  }

  const ServeReport& av_report = sup.submit_spmm(probs, v, out, av_options);
  if (env.ecc_burst) dev.set_fault_plan(nullptr);

  out_res.completed = av_report.completed;
  out_res.rejected = out_res.rejected || av_report.rejected;
  fold_report(out_res, av_report);
  fold_failure(out_res, av_report);
  if (env.verify && out_res.completed) {
    gpusim::Device& ref_dev = *env.ref_dev;
    ref_dev.reset();
    DenseDevice<half_t> rq = to_device(ref_dev, q_host);
    DenseDevice<half_t> rk = to_device(ref_dev, k_host);
    DenseDevice<half_t> rv = to_device(ref_dev, v_host);
    CvsDevice rmask = to_device(ref_dev, mask_host);
    auto rscratch = ref_dev.alloc<half_t>(mask_host.values.size());
    DenseDevice<half_t> rout = to_device(ref_dev, out_host);
    DenseDevice<half_t> rkt{rk.buf, d, seq, rk.ld, Layout::kColMajor};
    const kernels::KernelRun ref_qk = kernels::sddmm(
        ref_dev, rq, rkt, rmask, rscratch,
        {.algorithm = kernels::SddmmAlgorithm::kOctet,
         .sim = {.threads = env.threads}});
    const kernels::KernelRun ref_softmax =
        kernels::sparse_softmax(ref_dev, rmask, rscratch, rscratch, scale);
    CvsDevice rprobs = rmask;
    rprobs.values = rscratch;
    const kernels::KernelRun ref_av =
        kernels::spmm(ref_dev, rprobs, rv, rout,
                      {.algorithm = kernels::SpmmAlgorithm::kOctet,
                       .sim = {.threads = env.threads}});
    const auto got = out.buf.host();
    const auto want = rout.buf.host();
    out_res.bit_exact =
        got.size() == want.size() &&
        std::memcmp(got.data(), want.data(), got.size_bytes()) == 0;
    if (env.watchdog_cta_ops == 0) {
      out_res.counters_exact =
          qk_stats.sm_local_equal(ref_qk.stats) &&
          softmax_run.stats.sm_local_equal(ref_softmax.stats) &&
          av_report.run.stats.sm_local_equal(ref_av.stats);
    }
  }
  return out_res;
}

/// The refuted certificate barring this request from the worker, or
/// nullptr.  Admission screens the kernel(s) the request would resolve
/// to — kAuto's pick for plain SpMM/SDDMM, the pinned octet pair for
/// attention — against the store, using the request's nominal density
/// (1 - sparsity).  The dispatch-level gate stays authoritative for
/// whatever the ladder actually launches; this pre-screen only keeps
/// provably-unsafe work from consuming a placement.
const verify::CertEntry* admission_refuted(const verify::CertStore* certs,
                                           std::string_view arch,
                                           const RequestSpec& spec) {
  if (certs == nullptr) return nullptr;
  const double density = 1.0 - spec.sparsity;
  const auto refuted = [&](const char* kernel, const kernels::DispatchShape& s)
      -> const verify::CertEntry* {
    const verify::CertEntry* entry = certs->lookup(
        kernel, arch, verify::ShapeCorner{s.m, s.k, s.n, s.v, s.density});
    if (entry == nullptr || entry->verdict != verify::VerdictKind::kRefuted) {
      return nullptr;
    }
    return entry;
  };
  switch (spec.op) {
    case RequestOp::kSpmm: {
      const kernels::DispatchShape s{spec.m, spec.k, 64, spec.v, density};
      return refuted(kernels::kernel_for(kernels::resolve_auto_spmm(s)).name,
                     s);
    }
    case RequestOp::kSddmm: {
      const kernels::DispatchShape s{spec.m, spec.k, 64, spec.v, density};
      return refuted(kernels::kernel_for(kernels::resolve_auto_sddmm(s)).name,
                     s);
    }
    case RequestOp::kAttention: {
      const kernels::DispatchShape qk{spec.m, spec.k, spec.m, spec.v, density};
      if (const verify::CertEntry* entry = refuted(
              kernels::kernel_for(kernels::SddmmAlgorithm::kOctet).name, qk)) {
        return entry;
      }
      const kernels::DispatchShape av{spec.m, spec.m, spec.k, spec.v, density};
      return refuted(kernels::kernel_for(kernels::SpmmAlgorithm::kOctet).name,
                     av);
    }
  }
  return nullptr;
}

}  // namespace

const char* request_op_name(RequestOp op) {
  switch (op) {
    case RequestOp::kSpmm:
      return "spmm";
    case RequestOp::kSddmm:
      return "sddmm";
    case RequestOp::kAttention:
      return "attention";
  }
  return "spmm";
}

ExecOutcome execute_request(Supervisor& sup, const RequestSpec& spec,
                            const ExecEnv& env) {
  if (admission_refuted(env.certs, sup.device().config().arch, spec) !=
      nullptr) {
    ExecOutcome out;
    out.rejected = true;
    out.final_code = ErrorCode::kBadDispatch;
    out.final_site = "serve.verify.admission";
    return out;
  }
  switch (spec.op) {
    case RequestOp::kSpmm:
      return exec_spmm(sup, spec, env);
    case RequestOp::kSddmm:
      return exec_sddmm(sup, spec, env);
    case RequestOp::kAttention:
      return exec_attention(sup, spec, env);
  }
  return {};
}

// ---- the fleet --------------------------------------------------------

const char* worker_state_name(WorkerState state) {
  switch (state) {
    case WorkerState::kActive:
      return "active";
    case WorkerState::kDraining:
      return "draining";
    case WorkerState::kDead:
      return "dead";
  }
  return "active";
}

Fleet::Worker::Worker(int id_in, const gpusim::DeviceConfig& hw,
                      const ServePolicy& policy,
                      const HealthConfig& health_config)
    : id(id_in), dev(hw), health(health_config), sup(dev, policy) {
  sup.mutable_policy().kernel_gate = &HealthTracker::gate;
  sup.mutable_policy().kernel_gate_ctx = &health;
}

Fleet::Fleet(const FleetConfig& config, const gpusim::DeviceConfig& hw,
             const ServePolicy& base_policy, const HealthConfig& health_config,
             const DeviceChaosPlan* storms)
    : config_(config), storms_(storms) {
  workers_.reserve(static_cast<std::size_t>(config_.devices));
  for (int d = 0; d < config_.devices; ++d) {
    workers_.push_back(
        std::make_unique<Worker>(d, hw, base_policy, health_config));
    workers_.back()->sup.set_request_id_source(&next_request_id_);
  }
}

void Fleet::observe(std::uint64_t now, PlacementStats& stats) {
  if (storms_ == nullptr) return;
  for (auto& wp : workers_) {
    Worker& w = *wp;
    if (w.state == WorkerState::kDead) continue;
    if (storms_->at(w.id, now).dead) mark_dead(w, now, &stats);
  }
}

bool Fleet::op_drained(const Worker& w, std::uint64_t t) const {
  for (const DrainWindow& d : config_.drains) {
    if (d.device == w.id && d.covers(t)) return true;
  }
  return false;
}

bool Fleet::available(const Worker& w, std::uint64_t t) const {
  if (w.state == WorkerState::kDead) return false;
  if (op_drained(w, t)) return false;
  return w.state == WorkerState::kActive || t >= w.probe_at;
}

int Fleet::pick_free(std::uint64_t now) const {
  int best = -1;
  std::uint64_t best_bu = 0;
  bool any_available = false;
  for (const auto& wp : workers_) {
    const Worker& w = *wp;
    if (!available(w, now)) continue;
    any_available = true;
    if (w.busy_until <= now && (best < 0 || w.busy_until < best_bu)) {
      best = w.id;
      best_bu = w.busy_until;
    }
  }
  if (any_available) return best;
  // Fail-static: every survivor is draining/drained — serve on the
  // non-dead set rather than deadlock.
  for (const auto& wp : workers_) {
    const Worker& w = *wp;
    if (w.state == WorkerState::kDead) continue;
    if (w.busy_until <= now && (best < 0 || w.busy_until < best_bu)) {
      best = w.id;
      best_bu = w.busy_until;
    }
  }
  return best;
}

int Fleet::pick_failover(std::uint64_t now,
                         const std::vector<char>& exclude) const {
  int best = -1;
  std::uint64_t best_start = 0;
  bool any_available = false;
  for (const auto& wp : workers_) {
    const Worker& w = *wp;
    if (exclude[static_cast<std::size_t>(w.id)]) continue;
    const std::uint64_t start = std::max(now, w.busy_until);
    if (!available(w, start)) continue;
    any_available = true;
    if (best < 0 || start < best_start) {
      best = w.id;
      best_start = start;
    }
  }
  if (any_available) return best;
  for (const auto& wp : workers_) {
    const Worker& w = *wp;
    if (exclude[static_cast<std::size_t>(w.id)]) continue;
    if (w.state == WorkerState::kDead) continue;
    const std::uint64_t start = std::max(now, w.busy_until);
    if (best < 0 || start < best_start) {
      best = w.id;
      best_start = start;
    }
  }
  return best;
}

std::uint64_t Fleet::next_event_tick(std::uint64_t now) const {
  bool any_available = false;
  for (const auto& wp : workers_) {
    if (available(*wp, now)) {
      any_available = true;
      break;
    }
  }
  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  for (const auto& wp : workers_) {
    const Worker& w = *wp;
    if (w.state == WorkerState::kDead) continue;
    std::uint64_t candidate;
    if (!any_available) {
      // Fail-static regime: the non-dead set serves as soon as a
      // worker frees up.
      candidate = std::max(w.busy_until, now + 1);
    } else if (available(w, now)) {
      candidate = std::max(w.busy_until, now + 1);
    } else {
      // When does this worker become available?  The end of the
      // covering operator-drain window and/or its probe tick.
      std::uint64_t avail_t = now + 1;
      for (const DrainWindow& d : config_.drains) {
        if (d.device == w.id && d.covers(now)) {
          avail_t = std::max(avail_t, d.end);
        }
      }
      if (w.state == WorkerState::kDraining && now < w.probe_at) {
        avail_t = std::max(avail_t, w.probe_at);
      }
      candidate = std::max(avail_t, w.busy_until);
    }
    best = std::min(best, std::max(candidate, now + 1));
  }
  return best == std::numeric_limits<std::uint64_t>::max() ? now : best;
}

bool Fleet::placement_migrated(int chosen, std::uint64_t t) const {
  for (const auto& wp : workers_) {
    const Worker& w = *wp;
    if (w.id == chosen || w.state == WorkerState::kDead) continue;
    if (w.busy_until <= t && !available(w, t)) return true;
  }
  return false;
}

bool Fleet::note_placement(Worker& w, std::uint64_t start,
                           PlacementStats& stats) {
  ++stats.placements;
  ++w.placements;
  if (w.state == WorkerState::kDraining && start >= w.probe_at) {
    ++w.probes;
    ++stats.probes;
    emit(start, w.id, "probe");
    return true;
  }
  return false;
}

DeviceFaultActive Fleet::arm_device(Worker& w, std::uint64_t tick) {
  const DeviceFaultActive fault =
      storms_ != nullptr ? storms_->at(w.id, tick) : DeviceFaultActive{};
  if (fault.dead) {
    w.dev.set_device_fault(gpusim::DeviceFault::kDead);
  } else if (fault.wedged) {
    w.dev.set_device_fault(gpusim::DeviceFault::kWedged);
  } else {
    w.dev.set_device_fault(gpusim::DeviceFault::kNone);
  }
  return fault;
}

void Fleet::disarm_device(Worker& w) {
  w.dev.set_device_fault(gpusim::DeviceFault::kNone);
}

void Fleet::mark_dead(Worker& w, std::uint64_t tick, PlacementStats* stats) {
  if (w.state == WorkerState::kDead) return;
  w.state = WorkerState::kDead;
  if (stats != nullptr) ++stats->devices_lost;
  emit(tick, w.id, "dead");
}

void Fleet::note_outcome(Worker& w, const ExecOutcome& out,
                         std::uint64_t end_tick, bool was_probe,
                         PlacementStats& stats) {
  if (out.rejected) return;  // nothing launched — no device-level signal
  if (!out.completed && out.final_code == ErrorCode::kDeviceLost) {
    ++w.failures;
    mark_dead(w, end_tick, &stats);
    return;
  }
  if (out.device_failure()) {
    ++w.failures;
    ++w.device_failures;
    if (w.state == WorkerState::kDraining) {
      // A probe (or fail-static placement) hit the device fault again:
      // re-drain with the cooldown doubled, saturating.
      const int doublings =
          std::min(++w.drain_reopens, config_.max_drain_doublings);
      w.probe_at = end_tick + (config_.drain_cooldown_ticks << doublings);
      ++stats.drain_reopens;
      emit(end_tick, w.id, "drain_reopen");
    } else if (w.device_failures >= config_.drain_failure_threshold) {
      w.state = WorkerState::kDraining;
      w.probe_at = end_tick + config_.drain_cooldown_ticks;
      ++stats.drains;
      emit(end_tick, w.id, "drain");
    }
    return;
  }
  // The device itself answered launches: completed, or a per-kernel
  // failure the kernel breakers own.
  w.device_failures = 0;
  if (out.completed) {
    ++w.completions;
  } else {
    ++w.failures;
  }
  if (w.state == WorkerState::kDraining && was_probe) {
    w.state = WorkerState::kActive;
    w.drain_reopens = 0;
    w.probe_at = 0;
    ++stats.restores;
    emit(end_tick, w.id, "restore");
  }
}

void Fleet::emit(std::uint64_t tick, int device, const char* kind) {
  events_.push_back(FleetEvent{tick, device, kind});
}

std::string Fleet::events_json() const {
  // Events are emitted in processing order; present them in simulated-
  // tick order (stable, so same-tick events keep their causal order).
  std::vector<const FleetEvent*> sorted;
  sorted.reserve(events_.size());
  for (const FleetEvent& e : events_) sorted.push_back(&e);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const FleetEvent* a, const FleetEvent* b) {
                     return a->tick < b->tick;
                   });
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i) os << ",";
    os << "{\"tick\":" << sorted[i]->tick << ",\"device\":" << sorted[i]->device
       << ",\"kind\":\"" << sorted[i]->kind << "\"}";
  }
  os << "]";
  return os.str();
}

std::string Fleet::workers_json() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    const Worker& w = *workers_[i];
    const HealthTracker::Totals& h = w.health.totals();
    if (i) os << ",";
    os << "{\"device\":" << w.id << ",\"state\":\""
       << worker_state_name(w.state) << "\",\"placements\":" << w.placements
       << ",\"completions\":" << w.completions << ",\"failures\":" << w.failures
       << ",\"probes\":" << w.probes << ",\"busy_until\":" << w.busy_until
       << ",\"health\":{\"quarantines\":" << h.quarantines
       << ",\"half_opens\":" << h.half_opens << ",\"restores\":" << h.restores
       << ",\"reopens\":" << h.reopens << "}}";
  }
  os << "]";
  return os.str();
}

HealthTracker::Totals Fleet::merged_health_totals() const {
  HealthTracker::Totals sum;
  for (const auto& wp : workers_) {
    const HealthTracker::Totals& t = wp->health.totals();
    sum.quarantines += t.quarantines;
    sum.half_opens += t.half_opens;
    sum.restores += t.restores;
    sum.reopens += t.reopens;
  }
  return sum;
}

std::string Fleet::merged_health_events_json() const {
  // Each worker's stream is tick-sorted (the scheduler's decision clock
  // is monotonic); k-way merge on (tick, worker id, stream order).  The
  // element format matches HealthTracker::events_json exactly, so a
  // fleet of one serializes byte-identically to its single tracker.
  struct Tagged {
    const HealthEvent* e;
    int worker;
    std::size_t index;
  };
  std::vector<Tagged> merged;
  for (const auto& wp : workers_) {
    const auto& events = wp->health.events();
    for (std::size_t i = 0; i < events.size(); ++i) {
      merged.push_back(Tagged{&events[i], wp->id, i});
    }
  }
  std::sort(merged.begin(), merged.end(), [](const Tagged& a, const Tagged& b) {
    if (a.e->tick != b.e->tick) return a.e->tick < b.e->tick;
    if (a.worker != b.worker) return a.worker < b.worker;
    return a.index < b.index;
  });
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < merged.size(); ++i) {
    const HealthEvent& e = *merged[i].e;
    if (i) os << ",";
    os << "{\"kind\":\"" << health_event_kind_name(e.kind)
       << "\",\"tick\":" << e.tick << ",\"kernel\":\"" << e.kernel
       << "\",\"failures\":" << e.failures << ",\"attempts\":" << e.attempts
       << "}";
  }
  os << "]";
  return os.str();
}

std::vector<ServeReport> Fleet::merged_reports() const {
  std::vector<ServeReport> merged;
  std::size_t total = 0;
  for (const auto& wp : workers_) total += wp->sup.reports().size();
  merged.reserve(total);
  for (const auto& wp : workers_) {
    const auto& reports = wp->sup.reports();
    merged.insert(merged.end(), reports.begin(), reports.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const ServeReport& a, const ServeReport& b) {
              return a.request_id < b.request_id;
            });
  return merged;
}

}  // namespace vsparse::serve

#include "vsparse/serve/health.hpp"

#include <algorithm>
#include <sstream>

namespace vsparse::serve {

const char* breaker_state_name(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "closed";
}

const char* health_event_kind_name(HealthEvent::Kind kind) {
  switch (kind) {
    case HealthEvent::Kind::kQuarantine:
      return "quarantine";
    case HealthEvent::Kind::kHalfOpen:
      return "half_open";
    case HealthEvent::Kind::kRestore:
      return "restore";
    case HealthEvent::Kind::kReopen:
      return "reopen";
  }
  return "quarantine";
}

HealthTracker::HealthTracker(HealthConfig config) : config_(config) {
  config_.window = std::clamp(config_.window, 1, 64);
  config_.min_attempts = std::clamp(config_.min_attempts, 1, config_.window);
  config_.failure_percent = std::clamp(config_.failure_percent, 1, 100);
  config_.probe_successes = std::max(config_.probe_successes, 1);
  config_.max_cooldown_doublings =
      std::clamp(config_.max_cooldown_doublings, 0, 20);
}

void HealthTracker::advance(std::uint64_t tick) {
  for (auto& [kernel, c] : circuits_) {
    if (c.state == BreakerState::kOpen && tick >= c.cooldown_until) {
      c.state = BreakerState::kHalfOpen;
      c.probe_ok = 0;
      ++totals_.half_opens;
      emit(HealthEvent::Kind::kHalfOpen, tick, kernel, c);
    }
  }
}

bool HealthTracker::allowed(const std::string& kernel) const {
  const auto it = circuits_.find(kernel);
  return it == circuits_.end() || it->second.state != BreakerState::kOpen;
}

bool HealthTracker::gate(void* ctx, const char* kernel, bool abft) {
  const auto* tracker = static_cast<const HealthTracker*>(ctx);
  std::string key = kernel;
  if (abft) key += "+abft";
  return tracker->allowed(key);
}

void HealthTracker::push_outcome(Circuit& c, bool ok) {
  const std::uint64_t evict_mask = std::uint64_t{1}
                                   << (config_.window - 1);
  if (c.window_size == config_.window) {
    if (c.window_bits & evict_mask) --c.failures;
  } else {
    ++c.window_size;
  }
  // For window == 64 `evict_mask << 1` wraps to 0 and the mask becomes
  // all-ones — exactly right, the shift itself evicts bit 63.
  c.window_bits = (c.window_bits << 1) & ((evict_mask << 1) - 1);
  if (!ok) {
    c.window_bits |= 1;
    ++c.failures;
  }
}

void HealthTracker::emit(HealthEvent::Kind kind, std::uint64_t tick,
                         const std::string& kernel, const Circuit& c) {
  events_.push_back(HealthEvent{kind, tick, kernel, c.failures, c.window_size});
}

void HealthTracker::record(const std::string& kernel, bool ok,
                           std::uint64_t tick) {
  Circuit& c = circuits_[kernel];
  switch (c.state) {
    case BreakerState::kClosed: {
      push_outcome(c, ok);
      if (c.window_size >= config_.min_attempts &&
          c.failures * 100 >= config_.failure_percent * c.window_size) {
        c.state = BreakerState::kOpen;
        c.cooldown_until = tick + config_.cooldown_ticks;
        ++totals_.quarantines;
        emit(HealthEvent::Kind::kQuarantine, tick, kernel, c);
      }
      break;
    }
    case BreakerState::kHalfOpen: {
      push_outcome(c, ok);
      if (ok) {
        if (++c.probe_ok >= config_.probe_successes) {
          c.state = BreakerState::kClosed;
          c.window_bits = 0;
          c.window_size = 0;
          c.failures = 0;
          c.reopenings = 0;
          ++totals_.restores;
          emit(HealthEvent::Kind::kRestore, tick, kernel, c);
        }
      } else {
        c.state = BreakerState::kOpen;
        const int doublings =
            std::min(++c.reopenings, config_.max_cooldown_doublings);
        c.cooldown_until = tick + (config_.cooldown_ticks << doublings);
        ++totals_.reopens;
        emit(HealthEvent::Kind::kReopen, tick, kernel, c);
      }
      break;
    }
    case BreakerState::kOpen:
      // A launch still reached an Open kernel — the fail-static path
      // when every rung is quarantined.  The outcome carries no new
      // signal (the breaker already tripped) and the cooldown clock is
      // tick-driven, so it is deliberately not recorded.
      break;
  }
}

BreakerState HealthTracker::state(const std::string& kernel) const {
  const auto it = circuits_.find(kernel);
  return it == circuits_.end() ? BreakerState::kClosed : it->second.state;
}

std::vector<std::string> HealthTracker::open_kernels() const {
  std::vector<std::string> open;
  for (const auto& [kernel, c] : circuits_) {
    if (c.state == BreakerState::kOpen) open.push_back(kernel);
  }
  return open;
}

std::string HealthTracker::events_json() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const HealthEvent& e = events_[i];
    if (i) os << ",";
    os << "{\"kind\":\"" << health_event_kind_name(e.kind)
       << "\",\"tick\":" << e.tick << ",\"kernel\":\"" << e.kernel
       << "\",\"failures\":" << e.failures << ",\"attempts\":" << e.attempts
       << "}";
  }
  os << "]";
  return os.str();
}

std::string health_key(const std::string& op, ServeRung rung) {
  const bool spmm = op == "spmm";
  switch (rung) {
    case ServeRung::kOctet:
      return spmm ? "spmm_octet" : "sddmm_octet";
    case ServeRung::kOctetAbft:
      return spmm ? "spmm_octet+abft" : "sddmm_octet+abft";
    case ServeRung::kBlockedEll:
      return "spmm_blocked_ell";
    case ServeRung::kDenseGemm:
      return "spmm_dense_gemm";
    case ServeRung::kFpuSubwarp:
      return spmm ? "spmm_fpu_subwarp" : "sddmm_fpu_subwarp";
    case ServeRung::kCsrFine:
      return spmm ? "spmm_csr_fine" : "sddmm_csr_fine";
    case ServeRung::kWmmaWarp:
      return spmm ? "spmm_wmma_warp" : "sddmm_wmma_warp";
    case ServeRung::kNumRungs:
      break;
  }
  return op + "_unknown";
}

}  // namespace vsparse::serve

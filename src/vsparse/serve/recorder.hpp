// Failure flight recorder — deterministic repro bundles for serving
// failures.
//
// When a supervised request exhausts its ladder on a fleet worker, the
// scheduler captures everything needed to re-execute that one request
// standalone: the seed-derived request identity, the chaos environment
// the placement ran under (device fault state, ECC arming, watchdog
// budget), the supervisor policy (retry schedule, quota, the set of
// quarantined kernels gating the ladder at placement time), and the
// *failure signature* — the flattened attempt trail (rung, attempt
// ordinal, outcome, taxonomy code) plus the final classification.
//
// A bundle serializes as vsparse-repro-v1 JSON; tools/replay (or
// replay_bundle below, which it wraps) rebuilds a fresh device, arms
// the recorded fault state, re-runs execute_request — literally the
// code the fleet ran — and diffs the resulting signature against the
// captured one.  Same bundle => same signature, bit for bit: the
// repro is the contract, not a best-effort hint.
//
// Everything in a bundle is simulated-clock/seed-derived; no wall
// time, no host pointers, so bundles are portable across machines and
// thread counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "vsparse/serve/fleet.hpp"
#include "vsparse/serve/report.hpp"

namespace vsparse::serve {

/// One captured failure, ready to serialize / replay.
struct ReproBundle {
  /// Trace request id (informational — ties the bundle to the load
  /// report's request ledger).
  std::uint64_t request_id = 0;
  /// Simulated tick the failing placement started at.
  std::uint64_t tick = 0;
  /// Fleet worker the placement ran on.
  int device = 0;

  RequestSpec spec;

  // The execution environment at placement time.
  int threads = 1;
  bool ecc_burst = false;
  std::uint64_t watchdog_cta_ops = 0;
  /// Armed device fault-domain state: "none" | "wedged" | "dead".
  std::string device_fault = "none";

  // Supervisor policy at placement time.
  std::size_t memory_quota_bytes = 0;
  RetryPolicy retry;
  /// Supervisor report numbering starts here on replay, so replayed
  /// reports carry the captured ids.
  std::uint64_t first_request_id = 0;
  /// Health keys whose breakers were Open at placement — replay gates
  /// the ladder with exactly this set.
  std::vector<std::string> open_kernels;

  /// splitmix64 digest over the identity fields above — a cheap
  /// equality check between a bundle and a ledger entry.
  std::uint64_t options_digest = 0;

  /// Canonical failure-signature JSON (signature_json output): the
  /// flattened attempt trail + final taxonomy classification.  Replay
  /// compares this string byte-for-byte.
  std::string signature;

  std::uint64_t compute_digest() const;
  std::string to_json() const;
};

/// Canonical signature of one placement's report window: every attempt
/// of every report in [reports.begin()+first, reports.end()), flattened,
/// plus the final classification.  Built identically at capture and at
/// replay, so signature equality is string equality.
std::string signature_json(const std::vector<ServeReport>& reports,
                           std::size_t first, const ExecOutcome& outcome);

/// Parse one vsparse-repro-v1 document.  Raises vsparse::Error
/// (kMalformedFormat, site "serve.recorder") on anything malformed —
/// a repro bundle is an external artifact and gets external-artifact
/// treatment.  Accepts both a whole recorder document
/// ({"schema":"vsparse-repro-v1","bundles":[...]}) and a single bare
/// bundle object; returns every bundle found.
std::vector<ReproBundle> parse_repro_json(std::string_view text);

/// Bounded capture buffer the scheduler owns: the first `capacity`
/// failures are kept, later ones are counted as dropped (a chaos soak
/// can fail hundreds of requests; the artifact stays small).
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity) : capacity_(capacity) {}

  /// True if the bundle was kept (digest stamped here).
  bool capture(ReproBundle bundle);

  const std::vector<ReproBundle>& bundles() const { return bundles_; }
  std::uint64_t dropped() const { return dropped_; }

  /// {"schema":"vsparse-repro-v1","bundles":[...],"dropped":N}
  std::string to_json() const;

 private:
  std::size_t capacity_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<ReproBundle> bundles_;
};

/// Outcome of re-executing one bundle.
struct ReplayResult {
  /// Replayed signature == captured signature, byte for byte.
  bool signature_match = false;
  std::string expected_signature;  ///< from the bundle
  std::string got_signature;      ///< rebuilt by the replay
  ExecOutcome outcome;            ///< the replay's execution outcome
};

/// Re-execute `bundle` on a fresh device: rebuild the recorded policy
/// (retry, quota, static quarantine gate), arm the recorded fault
/// state, run execute_request, and diff signatures.
ReplayResult replay_bundle(const ReproBundle& bundle);

}  // namespace vsparse::serve

#include "vsparse/serve/error.hpp"

namespace vsparse {
namespace {

struct CodeRow {
  const char* name;
  bool retryable;
  bool fallback_eligible;
};

// One row per ErrorCode, in enum order.  retryable == "an identical
// re-run may observe different (clean) data"; fallback_eligible ==
// "another rung may dodge the failure".  Malformed inputs and config
// errors fail every rung identically, so they are neither.
constexpr CodeRow kCodes[kNumErrorCodes] = {
    /* kMalformedFormat  */ {"malformed_format", false, false},
    /* kBadDispatch      */ {"bad_dispatch", false, false},
    /* kAllocOverflow    */ {"alloc_overflow", false, false},
    /* kOutOfMemory      */ {"out_of_memory", false, true},
    /* kQuotaExceeded    */ {"quota_exceeded", false, false},
    /* kQueueFull        */ {"queue_full", false, false},
    /* kDeadlineExceeded */ {"deadline_exceeded", false, false},
    /* kEccUncorrectable */ {"ecc_uncorrectable", true, true},
    /* kLaunchTimeout    */ {"launch_timeout", false, true},
    /* kAbftExhausted    */ {"abft_exhausted", true, true},
    /* kDeviceLost       */ {"device_lost", false, false},
    /* kInternal         */ {"internal", false, false},
};

const CodeRow& row(ErrorCode code) {
  const int i = static_cast<int>(code);
  return kCodes[(i >= 0 && i < kNumErrorCodes)
                    ? i
                    : static_cast<int>(ErrorCode::kInternal)];
}

}  // namespace

const char* error_code_name(ErrorCode code) { return row(code).name; }

bool error_code_retryable(ErrorCode code) { return row(code).retryable; }

bool error_code_fallback_eligible(ErrorCode code) {
  return row(code).fallback_eligible;
}

std::string Error::to_json() const {
  std::string out = "{\"code\":\"";
  out += error_code_name(code_);
  out += "\",\"site\":\"";
  out += site_;
  out += "\",\"retryable\":";
  out += retryable() ? "true" : "false";
  out += "}";
  return out;
}

}  // namespace vsparse

#include "vsparse/serve/supervisor.hpp"

#include <algorithm>
#include <cstring>
#include <exception>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "vsparse/formats/blocked_ell.hpp"
#include "vsparse/gpusim/trace/trace.hpp"
#include "vsparse/kernels/dense/gemm.hpp"
#include "vsparse/kernels/sddmm/sddmm_csr_fine.hpp"
#include "vsparse/kernels/sddmm/sddmm_fpu.hpp"
#include "vsparse/kernels/sddmm/sddmm_octet.hpp"
#include "vsparse/kernels/sddmm/sddmm_wmma.hpp"
#include "vsparse/kernels/spmm/spmm_blocked_ell.hpp"
#include "vsparse/kernels/spmm/spmm_csr_fine.hpp"
#include "vsparse/kernels/spmm/spmm_fpu.hpp"
#include "vsparse/kernels/spmm/spmm_octet.hpp"
#include "vsparse/kernels/spmm/spmm_octet_abft.hpp"
#include "vsparse/kernels/spmm/spmm_wmma.hpp"

namespace vsparse::serve {
namespace {

using kernels::KernelRun;
using kernels::SpmmAlgorithm;
using kernels::SddmmAlgorithm;

// splitmix64 — the jitter hash.  Everything the backoff depends on is
// policy state, so the schedule is bit-identical at any thread count.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t backoff_for(const RetryPolicy& retry, std::uint64_t request_id,
                          int rung_index, int attempt) {
  if (retry.backoff_base_cycles == 0) return 0;
  std::uint64_t wait = retry.backoff_base_cycles;
  for (int i = 1; i < attempt; ++i) {
    wait *= static_cast<std::uint64_t>(
        retry.backoff_multiplier > 1 ? retry.backoff_multiplier : 1);
  }
  const std::uint64_t jitter =
      mix64(retry.seed ^ (request_id * 0x9e3779b97f4a7c15ull) ^
            (static_cast<std::uint64_t>(rung_index) << 32) ^
            static_cast<std::uint64_t>(attempt)) %
      retry.backoff_base_cycles;
  return wait + jitter;
}

/// The trace sink this request's events land in — same inherit chain
/// as the engine (explicit per-launch options beat the Device default).
gpusim::Trace* resolve_sink(gpusim::Device& dev,
                            const gpusim::SimOptions& sim) {
  return sim.trace.sink != nullptr ? sim.trace.sink
                                   : dev.sim_options().trace.sink;
}

/// Zero the output view between attempts: an aborted launch may have
/// partially written it, and a later rung must not inherit stale
/// elements it would legitimately skip (e.g. all-zero rows).  Host-side
/// write into the arena — deterministic, no simulated traffic.
void zero_output(gpusim::Device& dev, DenseDevice<half_t>& c) {
  if (c.rows == 0 || c.cols == 0) return;
  if (c.layout == Layout::kRowMajor) {
    for (int r = 0; r < c.rows; ++r) {
      std::memset(dev.translate(c.addr(r, 0),
                                static_cast<std::size_t>(c.cols) *
                                    sizeof(half_t)),
                  0, static_cast<std::size_t>(c.cols) * sizeof(half_t));
    }
  } else {
    for (int col = 0; col < c.cols; ++col) {
      std::memset(dev.translate(c.addr(0, col),
                                static_cast<std::size_t>(c.rows) *
                                    sizeof(half_t)),
                  0, static_cast<std::size_t>(c.rows) * sizeof(half_t));
    }
  }
}

void zero_buffer(gpusim::Buffer<half_t>& buf) {
  auto host = buf.host();
  std::memset(host.data(), 0, host.size_bytes());
}

/// Rebuild the host-side Cvs from its device mirror.  The simulated
/// DRAM is host memory faults never touch (faults strike only the
/// simulated load/MMA paths), so this is the *clean* encoding — the
/// re-encode rungs rebuild from it at fresh device addresses, which is
/// what gets the ladder past sticky faults parked on the original
/// buffers.
Cvs download_cvs(const CvsDevice& a) {
  Cvs host;
  host.rows = a.rows;
  host.cols = a.cols;
  host.v = a.v;
  const auto rp = a.row_ptr.host();
  const auto ci = a.col_idx.host();
  const auto va = a.values.host();
  host.row_ptr.assign(rp.begin(), rp.end());
  host.col_idx.assign(ci.begin(), ci.end());
  host.values.assign(va.begin(), va.end());
  return host;
}

struct SpmmShape {
  int m = 0, k = 0, n = 0, v = 1;
};

bool spmm_rung_eligible(ServeRung rung, const SpmmShape& s) {
  switch (rung) {
    case ServeRung::kOctet:
    case ServeRung::kOctetAbft:
    case ServeRung::kWmmaWarp:
      return s.v >= 2 && s.n % 64 == 0;
    case ServeRung::kBlockedEll:
      // block = V; the kernel accepts blocks {2,4,8,16} and N % 64.
      return s.v >= 2 && s.n % 64 == 0;
    case ServeRung::kDenseGemm:
      return s.m % 64 == 0 && s.n % 64 == 0 && s.k % 16 == 0;
    case ServeRung::kFpuSubwarp:
      return s.n % 16 == 0;
    case ServeRung::kCsrFine:
      return s.v == 1 && s.n % 32 == 0;
    case ServeRung::kNumRungs:
      break;
  }
  return false;
}

bool sddmm_rung_eligible(ServeRung rung, int v) {
  switch (rung) {
    case ServeRung::kOctet:
    case ServeRung::kWmmaWarp:
      return v >= 2;
    case ServeRung::kFpuSubwarp:
      return true;
    case ServeRung::kCsrFine:
      return v == 1;
    default:
      return false;
  }
}

/// The generic retry + degradation-ladder loop shared by both ops.
/// `run_rung` performs one attempt; `reset_output` clears partially
/// written output after an aborted attempt.  Returns the successful
/// run or rethrows the last failure after recording the give-up.
KernelRun run_ladder(const ServePolicy& policy, gpusim::Trace* sink,
                     ServeReport& report,
                     const std::vector<ServeRung>& rungs,
                     const std::function<void()>& reset_output,
                     const std::function<KernelRun(ServeRung)>& run_rung) {
  std::exception_ptr last_eptr;
  ErrorCode last_code = ErrorCode::kInternal;
  std::string last_site = "serve.supervisor";
  int total_attempts = 0;
  bool output_dirty = false;

  for (std::size_t ri = 0; ri < rungs.size(); ++ri) {
    const ServeRung rung = rungs[ri];
    for (int attempt = 0; attempt <= policy.retry.max_retries; ++attempt) {
      std::uint64_t backoff = 0;
      if (attempt > 0) {
        backoff = backoff_for(policy.retry, policy.request_id,
                              static_cast<int>(ri), attempt);
        ++report.retries;
        report.backoff_cycles += backoff;
        if (sink != nullptr) {
          sink->annotate(gpusim::TraceEventKind::kServeRetry,
                         static_cast<std::uint64_t>(rung),
                         static_cast<std::uint64_t>(attempt));
        }
      }
      if (output_dirty) {
        reset_output();
        output_dirty = false;
      }
      ++total_attempts;
      ServeAttempt at;
      at.rung = rung;
      at.attempt = attempt;
      at.backoff_cycles = backoff;
      try {
        KernelRun run = run_rung(rung);
        at.ok = true;
        report.attempts.push_back(std::move(at));
        report.completed = true;
        report.final_rung = rung;
        report.run = run;
        return run;
      } catch (const vsparse::Error& e) {
        last_code = e.code();
        last_site = e.site();
        last_eptr = std::current_exception();
      } catch (const std::exception&) {
        last_code = ErrorCode::kInternal;
        last_site = "serve.unclassified";
        last_eptr = std::current_exception();
      }
      output_dirty = true;
      at.ok = false;
      at.code = last_code;
      at.site = last_site;
      report.attempts.push_back(std::move(at));
      if (!error_code_retryable(last_code)) break;
    }
    if (policy.ladder && ri + 1 < rungs.size() &&
        error_code_fallback_eligible(last_code)) {
      ++report.fallbacks;
      if (sink != nullptr) {
        sink->annotate(gpusim::TraceEventKind::kServeFallback,
                       static_cast<std::uint64_t>(rungs[ri]),
                       static_cast<std::uint64_t>(rungs[ri + 1]));
      }
      continue;
    }
    break;
  }

  report.has_error = true;
  report.final_code = last_code;
  report.final_site = last_site;
  if (sink != nullptr) {
    sink->annotate(gpusim::TraceEventKind::kServeGiveUp,
                   static_cast<std::uint64_t>(last_code),
                   static_cast<std::uint64_t>(total_attempts));
  }
  std::rethrow_exception(last_eptr);
}

/// Admission rejection: record, emit give_up, throw the structured
/// error — nothing has launched.
[[noreturn]] void reject(ServeReport& report, gpusim::Trace* sink,
                         ErrorCode code, const std::string& site,
                         const std::string& what) {
  report.rejected = true;
  report.has_error = true;
  report.final_code = code;
  report.final_site = site;
  if (sink != nullptr) {
    sink->annotate(gpusim::TraceEventKind::kServeGiveUp,
                   static_cast<std::uint64_t>(code), 0);
  }
  throw Error(code, site, what);
}

/// Worst-case device bytes the SpMM ladder may still allocate: the
/// dense decode (M*K halves) and the Blocked-ELL re-encode (at worst
/// every block stored, plus its index array).  The reservation check
/// demands this much headroom up front so a fallback can never abort
/// mid-ladder on an allocation failure.
std::size_t spmm_ladder_workspace(const ServePolicy& policy,
                                  const SpmmShape& s,
                                  const std::vector<ServeRung>& rungs) {
  if (!policy.ladder) return 0;
  const std::size_t dense_bytes =
      static_cast<std::size_t>(s.m) * static_cast<std::size_t>(s.k) *
      sizeof(half_t);
  std::size_t worst = 0;
  for (ServeRung rung : rungs) {
    std::size_t need = 0;
    if (rung == ServeRung::kDenseGemm) {
      need = dense_bytes;
    } else if (rung == ServeRung::kBlockedEll) {
      need = dense_bytes + (static_cast<std::size_t>(s.m) / s.v) *
                               (static_cast<std::size_t>(s.k) / s.v) *
                               sizeof(std::int32_t);
    }
    worst = std::max(worst, need);
  }
  return worst;
}

}  // namespace

KernelRun supervised_spmm(gpusim::Device& dev, const CvsDevice& a,
                          const DenseDevice<half_t>& b,
                          DenseDevice<half_t>& c,
                          const kernels::SpmmOptions& options) {
  VSPARSE_CHECK(options.serve != nullptr);
  const ServePolicy& policy = *options.serve;
  ServeReport local;
  ServeReport& report = options.serve_report != nullptr
                            ? *options.serve_report
                            : local;
  report.clear();
  report.request_id = policy.request_id;
  report.op = "spmm";

  gpusim::Trace* sink = resolve_sink(dev, options.sim);
  const SpmmShape shape{c.rows, b.rows, c.cols, a.v};

  // Inner attempts must not re-enter the supervisor.
  kernels::SpmmOptions inner = options;
  inner.serve = nullptr;
  inner.serve_report = nullptr;

  // ---- rung list: requested entry first, then the canonical ladder --
  ServeRung entry;
  if (options.abft.has_value()) {
    VSPARSE_CHECK_RAISE(options.algorithm == SpmmAlgorithm::kAuto ||
                            options.algorithm == SpmmAlgorithm::kOctet,
                        ErrorCode::kBadDispatch, "serve.supervisor",
                        "ABFT is only implemented for the octet SpMM kernel");
    entry = ServeRung::kOctetAbft;
  } else {
    switch (options.algorithm) {
      case SpmmAlgorithm::kAuto:
        entry = a.v >= 2 ? ServeRung::kOctet : ServeRung::kFpuSubwarp;
        break;
      case SpmmAlgorithm::kOctet:
        entry = ServeRung::kOctet;
        break;
      case SpmmAlgorithm::kWmmaWarp:
        entry = ServeRung::kWmmaWarp;
        break;
      case SpmmAlgorithm::kFpuSubwarp:
        entry = ServeRung::kFpuSubwarp;
        break;
      case SpmmAlgorithm::kCsrFine:
        entry = ServeRung::kCsrFine;
        break;
      default:
        entry = ServeRung::kFpuSubwarp;
        break;
    }
  }
  if (!spmm_rung_eligible(entry, shape)) {
    reject(report, sink, ErrorCode::kBadDispatch, "serve.supervisor",
           "requested spmm algorithm is not eligible for this shape");
  }
  std::vector<ServeRung> rungs{entry};
  if (policy.ladder) {
    for (ServeRung rung :
         {ServeRung::kOctetAbft, ServeRung::kBlockedEll, ServeRung::kDenseGemm,
          ServeRung::kFpuSubwarp, ServeRung::kCsrFine}) {
      if (rung != entry && spmm_rung_eligible(rung, shape)) {
        rungs.push_back(rung);
      }
    }
  }

  // ---- admission: quota, then device-memory reservation -------------
  const std::size_t operand_bytes = a.row_ptr.bytes() + a.col_idx.bytes() +
                                    a.values.bytes() + b.buf.bytes() +
                                    c.buf.bytes();
  const std::size_t workspace = spmm_ladder_workspace(policy, shape, rungs);
  if (policy.memory_quota_bytes != 0 &&
      operand_bytes + workspace > policy.memory_quota_bytes) {
    reject(report, sink, ErrorCode::kQuotaExceeded, "serve.quota",
           "request footprint " + std::to_string(operand_bytes + workspace) +
               "B exceeds the per-request quota of " +
               std::to_string(policy.memory_quota_bytes) + "B");
  }
  if (workspace > dev.capacity_bytes() - dev.used_bytes()) {
    reject(report, sink, ErrorCode::kOutOfMemory, "serve.reserve",
           "device headroom " +
               std::to_string(dev.capacity_bytes() - dev.used_bytes()) +
               "B cannot hold the " + std::to_string(workspace) +
               "B ladder workspace; rejecting before launch");
  }

  // Re-encoded operands, built lazily on first use of their rung and
  // logically freed on exit so long-lived peak accounting stays honest.
  std::optional<BlockedEllDevice> ell_dev;
  std::optional<DenseDevice<half_t>> dense_a;
  const kernels::AbftOptions abft_opts =
      options.abft.has_value() ? *options.abft : kernels::AbftOptions{};

  auto cleanup = [&] {
    if (ell_dev.has_value()) {
      dev.free(ell_dev->col_idx);
      dev.free(ell_dev->values);
      ell_dev.reset();
    }
    if (dense_a.has_value()) {
      dev.free(dense_a->buf);
      dense_a.reset();
    }
  };

  auto run_rung = [&](ServeRung rung) -> KernelRun {
    switch (rung) {
      case ServeRung::kOctet:
        return kernels::spmm_octet(dev, a, b, c, {}, inner.sim);
      case ServeRung::kOctetAbft: {
        KernelRun run =
            kernels::spmm_octet_abft(dev, a, b, c, {}, abft_opts, inner.sim);
        // ABFT reports exhaustion instead of throwing; classify it so
        // the retry/ladder policy can act on it.
        if (!run.abft.clean) {
          VSPARSE_RAISE(ErrorCode::kAbftExhausted, "serve.abft",
                        "ABFT retries exhausted with "
                            << run.abft.corrupted_tiles
                            << " corrupted tiles remaining");
        }
        return run;
      }
      case ServeRung::kBlockedEll: {
        if (!ell_dev.has_value()) {
          const Cvs host = download_cvs(a);
          ell_dev = to_device(
              dev, BlockedEll::from_dense(host.to_dense(), a.v));
        }
        return kernels::spmm_blocked_ell(dev, *ell_dev, b, c, inner.sim);
      }
      case ServeRung::kDenseGemm: {
        if (!dense_a.has_value()) {
          const Cvs host = download_cvs(a);
          dense_a = to_device(dev, host.to_dense());
        }
        return kernels::hgemm_tcu(dev, *dense_a, b, c, {}, inner.sim);
      }
      case ServeRung::kFpuSubwarp:
        return kernels::spmm_fpu_subwarp(dev, a, b, c, {}, inner.sim);
      case ServeRung::kCsrFine:
        return kernels::spmm_csr_fine(dev, a, b, c, inner.sim);
      case ServeRung::kWmmaWarp:
        return kernels::spmm_wmma_warp(dev, a, b, c, inner.sim);
      case ServeRung::kNumRungs:
        break;
    }
    VSPARSE_RAISE(ErrorCode::kInternal, "serve.supervisor",
                  "unreachable spmm rung");
  };

  try {
    KernelRun run = run_ladder(policy, sink, report, rungs,
                               [&] { zero_output(dev, c); }, run_rung);
    cleanup();
    return run;
  } catch (...) {
    cleanup();
    throw;
  }
}

KernelRun supervised_sddmm(gpusim::Device& dev, const DenseDevice<half_t>& a,
                           const DenseDevice<half_t>& b, const CvsDevice& mask,
                           gpusim::Buffer<half_t>& out_values,
                           const kernels::SddmmOptions& options) {
  VSPARSE_CHECK(options.serve != nullptr);
  const ServePolicy& policy = *options.serve;
  ServeReport local;
  ServeReport& report = options.serve_report != nullptr
                            ? *options.serve_report
                            : local;
  report.clear();
  report.request_id = policy.request_id;
  report.op = "sddmm";

  gpusim::Trace* sink = resolve_sink(dev, options.sim);

  kernels::SddmmOptions inner = options;
  inner.serve = nullptr;
  inner.serve_report = nullptr;

  ServeRung entry;
  switch (options.algorithm) {
    case SddmmAlgorithm::kAuto:
      entry = mask.v >= 2 ? ServeRung::kOctet : ServeRung::kFpuSubwarp;
      break;
    case SddmmAlgorithm::kOctet:
      entry = ServeRung::kOctet;
      break;
    case SddmmAlgorithm::kWmmaWarp:
      entry = ServeRung::kWmmaWarp;
      break;
    case SddmmAlgorithm::kFpuSubwarp:
      entry = ServeRung::kFpuSubwarp;
      break;
    case SddmmAlgorithm::kCsrFine:
      entry = ServeRung::kCsrFine;
      break;
    default:
      entry = ServeRung::kFpuSubwarp;
      break;
  }
  if (!sddmm_rung_eligible(entry, mask.v)) {
    reject(report, sink, ErrorCode::kBadDispatch, "serve.supervisor",
           "requested sddmm algorithm is not eligible for this mask");
  }
  std::vector<ServeRung> rungs{entry};
  if (policy.ladder) {
    for (ServeRung rung :
         {ServeRung::kWmmaWarp, ServeRung::kFpuSubwarp, ServeRung::kCsrFine}) {
      if (rung != entry && sddmm_rung_eligible(rung, mask.v)) {
        rungs.push_back(rung);
      }
    }
  }

  // SDDMM has no re-encode rungs, so the footprint is operands only.
  const std::size_t operand_bytes =
      a.buf.bytes() + b.buf.bytes() + mask.row_ptr.bytes() +
      mask.col_idx.bytes() + mask.values.bytes() + out_values.bytes();
  if (policy.memory_quota_bytes != 0 &&
      operand_bytes > policy.memory_quota_bytes) {
    reject(report, sink, ErrorCode::kQuotaExceeded, "serve.quota",
           "request footprint " + std::to_string(operand_bytes) +
               "B exceeds the per-request quota of " +
               std::to_string(policy.memory_quota_bytes) + "B");
  }

  auto run_rung = [&](ServeRung rung) -> KernelRun {
    switch (rung) {
      case ServeRung::kOctet:
        return kernels::sddmm_octet(dev, a, b, mask, out_values, {},
                                    inner.sim);
      case ServeRung::kWmmaWarp:
        return kernels::sddmm_wmma_warp(dev, a, b, mask, out_values,
                                        inner.sim);
      case ServeRung::kFpuSubwarp:
        return kernels::sddmm_fpu_subwarp(dev, a, b, mask, out_values, {},
                                          inner.sim);
      case ServeRung::kCsrFine:
        return kernels::sddmm_csr_fine(dev, a, b, mask, out_values,
                                       inner.sim);
      default:
        break;
    }
    VSPARSE_RAISE(ErrorCode::kInternal, "serve.supervisor",
                  "unreachable sddmm rung");
  };

  return run_ladder(policy, sink, report, rungs,
                    [&] { zero_buffer(out_values); }, run_rung);
}

const ServeReport& Supervisor::finish(ServeReport&& report) {
  ++totals_.requests;
  totals_.completed += report.completed ? 1 : 0;
  totals_.retries += static_cast<std::uint64_t>(report.retries);
  totals_.fallbacks += static_cast<std::uint64_t>(report.fallbacks);
  totals_.rejected += report.rejected ? 1 : 0;
  totals_.give_ups += (!report.completed && !report.rejected) ? 1 : 0;
  reports_.push_back(std::move(report));
  return reports_.back();
}

const ServeReport& Supervisor::record_rejection(const char* op, ErrorCode code,
                                                std::string site) {
  ServeReport report;
  report.request_id = next_request_++;
  report.op = op;
  report.rejected = true;
  report.has_error = true;
  report.final_code = code;
  report.final_site = std::move(site);
  return finish(std::move(report));
}

const ServeReport& Supervisor::submit_spmm(const CvsDevice& a,
                                           const DenseDevice<half_t>& b,
                                           DenseDevice<half_t>& c,
                                           kernels::SpmmOptions options) {
  ServePolicy policy = policy_;
  policy.request_id = next_request_++;
  ServeReport report;
  options.serve = &policy;
  options.serve_report = &report;
  try {
    supervised_spmm(dev_, a, b, c, options);
  } catch (const vsparse::Error&) {
    // Classified and recorded in the report — contained by design.
  } catch (const std::exception&) {
    // run_ladder classified it kInternal; still contained.
  }
  return finish(std::move(report));
}

const ServeReport& Supervisor::submit_sddmm(const DenseDevice<half_t>& a,
                                            const DenseDevice<half_t>& b,
                                            const CvsDevice& mask,
                                            gpusim::Buffer<half_t>& out_values,
                                            kernels::SddmmOptions options) {
  ServePolicy policy = policy_;
  policy.request_id = next_request_++;
  ServeReport report;
  options.serve = &policy;
  options.serve_report = &report;
  try {
    supervised_sddmm(dev_, a, b, mask, out_values, options);
  } catch (const vsparse::Error&) {
  } catch (const std::exception&) {
  }
  return finish(std::move(report));
}

}  // namespace vsparse::serve

#include "vsparse/serve/supervisor.hpp"

#include <algorithm>
#include <cstring>
#include <exception>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "vsparse/formats/blocked_ell.hpp"
#include "vsparse/gpusim/trace/trace.hpp"
#include "vsparse/kernels/policy.hpp"
#include "vsparse/kernels/registry.hpp"

namespace vsparse::serve {
namespace {

using kernels::DispatchShape;
using kernels::KernelOp;
using kernels::KernelRun;
using kernels::LadderEntry;
using kernels::SddmmAlgorithm;
using kernels::SpmmAlgorithm;

// splitmix64 — the jitter hash.  Everything the backoff depends on is
// policy state, so the schedule is bit-identical at any thread count.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t backoff_cycles_for(const RetryPolicy& retry,
                                 std::uint64_t request_id, int rung_index,
                                 int attempt) {
  if (retry.backoff_base_cycles == 0 || attempt <= 0) return 0;
  // Saturating exponential: base * multiplier^(attempt-1), clamped at
  // kMaxBackoffCycles *before* the multiply that would overflow, so a
  // million-launch soak with an aggressive multiplier plateaus instead
  // of wrapping (the schedule stays monotone non-decreasing in attempt).
  const std::uint64_t mult = static_cast<std::uint64_t>(
      retry.backoff_multiplier > 1 ? retry.backoff_multiplier : 1);
  std::uint64_t wait = std::min(retry.backoff_base_cycles, kMaxBackoffCycles);
  for (int i = 1; i < attempt && wait < kMaxBackoffCycles; ++i) {
    wait = wait > kMaxBackoffCycles / mult ? kMaxBackoffCycles : wait * mult;
  }
  // Jitter stays below the (already clamped) base, so wait + jitter
  // cannot overflow: kMaxBackoffCycles + 2^40 << 2^64.
  const std::uint64_t jitter =
      mix64(retry.seed ^ (request_id * 0x9e3779b97f4a7c15ull) ^
            (static_cast<std::uint64_t>(rung_index) << 32) ^
            static_cast<std::uint64_t>(attempt)) %
      std::min(retry.backoff_base_cycles, kMaxBackoffCycles);
  return wait + jitter;
}

namespace {

/// The trace sink this request's events land in — same inherit chain
/// as the engine (explicit per-launch options beat the Device default).
gpusim::Trace* resolve_sink(gpusim::Device& dev,
                            const gpusim::SimOptions& sim) {
  return sim.trace.sink != nullptr ? sim.trace.sink
                                   : dev.sim_options().trace.sink;
}

/// Zero the output view between attempts: an aborted launch may have
/// partially written it, and a later rung must not inherit stale
/// elements it would legitimately skip (e.g. all-zero rows).  Host-side
/// write into the arena — deterministic, no simulated traffic.
void zero_output(gpusim::Device& dev, DenseDevice<half_t>& c) {
  if (c.rows == 0 || c.cols == 0) return;
  if (c.layout == Layout::kRowMajor) {
    for (int r = 0; r < c.rows; ++r) {
      std::memset(dev.translate(c.addr(r, 0),
                                static_cast<std::size_t>(c.cols) *
                                    sizeof(half_t)),
                  0, static_cast<std::size_t>(c.cols) * sizeof(half_t));
    }
  } else {
    for (int col = 0; col < c.cols; ++col) {
      std::memset(dev.translate(c.addr(0, col),
                                static_cast<std::size_t>(c.rows) *
                                    sizeof(half_t)),
                  0, static_cast<std::size_t>(c.rows) * sizeof(half_t));
    }
  }
}

void zero_buffer(gpusim::Buffer<half_t>& buf) {
  auto host = buf.host();
  std::memset(host.data(), 0, host.size_bytes());
}

/// Rebuild the host-side Cvs from its device mirror.  The simulated
/// DRAM is host memory faults never touch (faults strike only the
/// simulated load/MMA paths), so this is the *clean* encoding — the
/// re-encode rungs rebuild from it at fresh device addresses, which is
/// what gets the ladder past sticky faults parked on the original
/// buffers.
Cvs download_cvs(const CvsDevice& a) {
  Cvs host;
  host.rows = a.rows;
  host.cols = a.cols;
  host.v = a.v;
  const auto rp = a.row_ptr.host();
  const auto ci = a.col_idx.host();
  const auto va = a.values.host();
  host.row_ptr.assign(rp.begin(), rp.end());
  host.col_idx.assign(ci.begin(), ci.end());
  host.values.assign(va.begin(), va.end());
  return host;
}

double cvs_density(const CvsDevice& m) {
  const double total = static_cast<double>(m.rows) * m.cols;
  if (total == 0) return 0.0;
  return static_cast<double>(m.col_idx.size()) * m.v / total;
}

/// The ServeRung a ladder entry reports/traces as.  The report's rung
/// vocabulary predates the registry and is part of the stable JSON
/// schema, so the mapping lives here, not in KernelDesc (kernels must
/// not depend on serve's reporting types).
ServeRung serve_rung_of(const LadderEntry& entry) {
  switch (entry.desc->format) {
    case kernels::OperandFormat::kBlockedEll:
      return ServeRung::kBlockedEll;
    case kernels::OperandFormat::kDense:
      return ServeRung::kDenseGemm;
    case kernels::OperandFormat::kCvs:
      break;
  }
  // SpmmAlgorithm and SddmmAlgorithm share enumerator values for the
  // four CVS kernels (registry_test pins this).
  switch (static_cast<SpmmAlgorithm>(entry.desc->algorithm)) {
    case SpmmAlgorithm::kOctet:
      return entry.abft ? ServeRung::kOctetAbft : ServeRung::kOctet;
    case SpmmAlgorithm::kWmmaWarp:
      return ServeRung::kWmmaWarp;
    case SpmmAlgorithm::kFpuSubwarp:
      return ServeRung::kFpuSubwarp;
    case SpmmAlgorithm::kCsrFine:
      return ServeRung::kCsrFine;
    default:
      break;
  }
  VSPARSE_RAISE(ErrorCode::kInternal, "serve.supervisor",
                "kernel desc with no serve rung mapping: "
                    << entry.desc->name);
}

/// One resolved rung: the registry entry plus its report identity.
struct Rung {
  LadderEntry entry;
  ServeRung id;
};

std::vector<Rung> build_rungs(const ServePolicy& policy, KernelOp op,
                              const LadderEntry& entry,
                              const DispatchShape& shape) {
  std::vector<Rung> rungs{{entry, serve_rung_of(entry)}};
  if (policy.ladder) {
    for (const LadderEntry& fb : kernels::fallback_ladder(op, shape)) {
      if (fb.desc == entry.desc && fb.abft == entry.abft) continue;
      rungs.push_back({fb, serve_rung_of(fb)});
    }
  }
  // Health gate: drop quarantined kernels (entry included) so traffic
  // routes around an open circuit breaker — unless that would empty
  // the list, in which case the unfiltered ladder serves (fail-static).
  if (policy.kernel_gate != nullptr) {
    std::vector<Rung> allowed;
    allowed.reserve(rungs.size());
    for (const Rung& rung : rungs) {
      if (policy.kernel_gate(policy.kernel_gate_ctx, rung.entry.desc->name,
                             rung.entry.abft)) {
        allowed.push_back(rung);
      }
    }
    if (!allowed.empty()) rungs = std::move(allowed);
  }
  return rungs;
}

/// The generic retry + degradation-ladder loop shared by both ops.
/// `run_rung` performs one attempt; `reset_output` clears partially
/// written output after an aborted attempt.  Returns the successful
/// run or rethrows the last failure after recording the give-up.
KernelRun run_ladder(const ServePolicy& policy, gpusim::Trace* sink,
                     ServeReport& report, const std::vector<Rung>& rungs,
                     const std::function<void()>& reset_output,
                     const std::function<KernelRun(const Rung&)>& run_rung) {
  std::exception_ptr last_eptr;
  ErrorCode last_code = ErrorCode::kInternal;
  std::string last_site = "serve.supervisor";
  int total_attempts = 0;
  bool output_dirty = false;

  for (std::size_t ri = 0; ri < rungs.size(); ++ri) {
    const Rung& rung = rungs[ri];
    for (int attempt = 0; attempt <= policy.retry.max_retries; ++attempt) {
      std::uint64_t backoff = 0;
      if (attempt > 0) {
        backoff = backoff_cycles_for(policy.retry, policy.request_id,
                                     static_cast<int>(ri), attempt);
        ++report.retries;
        report.backoff_cycles += backoff;
        if (sink != nullptr) {
          sink->annotate(gpusim::TraceEventKind::kServeRetry,
                         static_cast<std::uint64_t>(rung.id),
                         static_cast<std::uint64_t>(attempt));
        }
      }
      if (output_dirty) {
        reset_output();
        output_dirty = false;
      }
      ++total_attempts;
      ServeAttempt at;
      at.rung = rung.id;
      at.attempt = attempt;
      at.backoff_cycles = backoff;
      try {
        KernelRun run = run_rung(rung);
        at.ok = true;
        report.attempts.push_back(std::move(at));
        report.completed = true;
        report.final_rung = rung.id;
        report.run = run;
        return run;
      } catch (const vsparse::Error& e) {
        last_code = e.code();
        last_site = e.site();
        last_eptr = std::current_exception();
      } catch (const std::exception&) {
        last_code = ErrorCode::kInternal;
        last_site = "serve.unclassified";
        last_eptr = std::current_exception();
      }
      output_dirty = true;
      at.ok = false;
      at.code = last_code;
      at.site = last_site;
      report.attempts.push_back(std::move(at));
      if (!error_code_retryable(last_code)) break;
    }
    if (policy.ladder && ri + 1 < rungs.size() &&
        error_code_fallback_eligible(last_code)) {
      ++report.fallbacks;
      if (sink != nullptr) {
        sink->annotate(gpusim::TraceEventKind::kServeFallback,
                       static_cast<std::uint64_t>(rungs[ri].id),
                       static_cast<std::uint64_t>(rungs[ri + 1].id));
      }
      continue;
    }
    break;
  }

  report.has_error = true;
  report.final_code = last_code;
  report.final_site = last_site;
  if (sink != nullptr) {
    sink->annotate(gpusim::TraceEventKind::kServeGiveUp,
                   static_cast<std::uint64_t>(last_code),
                   static_cast<std::uint64_t>(total_attempts));
  }
  std::rethrow_exception(last_eptr);
}

/// Admission rejection: record, emit give_up, throw the structured
/// error — nothing has launched.
[[noreturn]] void reject(ServeReport& report, gpusim::Trace* sink,
                         ErrorCode code, const std::string& site,
                         const std::string& what) {
  report.rejected = true;
  report.has_error = true;
  report.final_code = code;
  report.final_site = site;
  if (sink != nullptr) {
    sink->annotate(gpusim::TraceEventKind::kServeGiveUp,
                   static_cast<std::uint64_t>(code), 0);
  }
  throw Error(code, site, what);
}

/// Worst-case device bytes the SpMM ladder may still allocate: the
/// dense decode (M*K halves) and the Blocked-ELL re-encode (at worst
/// every block stored, plus its index array).  The reservation check
/// demands this much headroom up front so a fallback can never abort
/// mid-ladder on an allocation failure.
std::size_t spmm_ladder_workspace(const ServePolicy& policy,
                                  const DispatchShape& s,
                                  const std::vector<Rung>& rungs) {
  if (!policy.ladder) return 0;
  const std::size_t dense_bytes =
      static_cast<std::size_t>(s.m) * static_cast<std::size_t>(s.k) *
      sizeof(half_t);
  std::size_t worst = 0;
  for (const Rung& rung : rungs) {
    std::size_t need = 0;
    if (rung.entry.desc->format == kernels::OperandFormat::kDense) {
      need = dense_bytes;
    } else if (rung.entry.desc->format ==
               kernels::OperandFormat::kBlockedEll) {
      need = dense_bytes + (static_cast<std::size_t>(s.m) / s.v) *
                               (static_cast<std::size_t>(s.k) / s.v) *
                               sizeof(std::int32_t);
    }
    worst = std::max(worst, need);
  }
  return worst;
}

}  // namespace

KernelRun supervised_spmm(gpusim::Device& dev, const CvsDevice& a,
                          const DenseDevice<half_t>& b,
                          DenseDevice<half_t>& c,
                          const kernels::SpmmOptions& options) {
  VSPARSE_CHECK(options.serve != nullptr);
  const ServePolicy& policy = *options.serve;
  ServeReport local;
  ServeReport& report = options.serve_report != nullptr
                            ? *options.serve_report
                            : local;
  report.clear();
  report.request_id = policy.request_id;
  report.op = "spmm";

  gpusim::Trace* sink = resolve_sink(dev, options.sim);
  const DispatchShape shape{c.rows, b.rows, c.cols, a.v, cvs_density(a)};

  // ---- rung list: requested entry first, then the canonical ladder --
  LadderEntry entry{nullptr, false};
  if (options.abft.has_value()) {
    VSPARSE_CHECK_RAISE(options.algorithm == SpmmAlgorithm::kAuto ||
                            options.algorithm == SpmmAlgorithm::kOctet,
                        ErrorCode::kBadDispatch, "serve.supervisor",
                        "ABFT is only implemented for the octet SpMM kernel");
    entry = {&kernels::kernel_for(SpmmAlgorithm::kOctet), true};
  } else {
    SpmmAlgorithm algo = options.algorithm;
    if (algo == SpmmAlgorithm::kAuto) {
      const kernels::KernelDesc* cached =
          options.policy != nullptr
              ? options.policy->lookup(KernelOp::kSpmm, dev.config().arch,
                                       shape)
              : nullptr;
      algo = cached != nullptr
                 ? static_cast<SpmmAlgorithm>(cached->algorithm)
                 : kernels::resolve_auto_spmm(shape);
    }
    entry = {&kernels::kernel_for(algo), false};
  }
  if (!entry.desc->eligible(shape)) {
    reject(report, sink, ErrorCode::kBadDispatch, "serve.supervisor",
           "requested spmm algorithm is not eligible for this shape");
  }
  const std::vector<Rung> rungs =
      build_rungs(policy, KernelOp::kSpmm, entry, shape);

  // ---- admission: quota, then device-memory reservation -------------
  const std::size_t operand_bytes = a.row_ptr.bytes() + a.col_idx.bytes() +
                                    a.values.bytes() + b.buf.bytes() +
                                    c.buf.bytes();
  const std::size_t workspace = spmm_ladder_workspace(policy, shape, rungs);
  if (policy.memory_quota_bytes != 0 &&
      operand_bytes + workspace > policy.memory_quota_bytes) {
    reject(report, sink, ErrorCode::kQuotaExceeded, "serve.quota",
           "request footprint " + std::to_string(operand_bytes + workspace) +
               "B exceeds the per-request quota of " +
               std::to_string(policy.memory_quota_bytes) + "B");
  }
  if (workspace > dev.capacity_bytes() - dev.used_bytes()) {
    reject(report, sink, ErrorCode::kOutOfMemory, "serve.reserve",
           "device headroom " +
               std::to_string(dev.capacity_bytes() - dev.used_bytes()) +
               "B cannot hold the " + std::to_string(workspace) +
               "B ladder workspace; rejecting before launch");
  }

  // Re-encoded operands, built lazily on first use of their rung and
  // logically freed on exit so long-lived peak accounting stays honest.
  std::optional<BlockedEllDevice> ell_dev;
  std::optional<DenseDevice<half_t>> dense_a;
  const kernels::AbftOptions abft_opts =
      options.abft.has_value() ? *options.abft : kernels::AbftOptions{};

  auto cleanup = [&] {
    if (ell_dev.has_value()) {
      dev.free(ell_dev->col_idx);
      dev.free(ell_dev->values);
      ell_dev.reset();
    }
    if (dense_a.has_value()) {
      dev.free(dense_a->buf);
      dense_a.reset();
    }
  };

  auto run_rung = [&](const Rung& rung) -> KernelRun {
    kernels::SpmmCall call{dev, a, b, c, options.sim};
    switch (rung.entry.desc->format) {
      case kernels::OperandFormat::kBlockedEll:
        if (!ell_dev.has_value()) {
          const Cvs host = download_cvs(a);
          ell_dev = to_device(
              dev, BlockedEll::from_dense(host.to_dense(), a.v));
        }
        call.ell = &*ell_dev;
        break;
      case kernels::OperandFormat::kDense:
        if (!dense_a.has_value()) {
          const Cvs host = download_cvs(a);
          dense_a = to_device(dev, host.to_dense());
        }
        call.dense_a = &*dense_a;
        break;
      case kernels::OperandFormat::kCvs:
        break;
    }
    if (rung.entry.abft) {
      call.abft = &abft_opts;
      KernelRun run = rung.entry.desc->spmm_abft_launch(call);
      // ABFT reports exhaustion instead of throwing; classify it so
      // the retry/ladder policy can act on it.
      if (!run.abft.clean) {
        VSPARSE_RAISE(ErrorCode::kAbftExhausted, "serve.abft",
                      "ABFT retries exhausted with "
                          << run.abft.corrupted_tiles
                          << " corrupted tiles remaining");
      }
      return run;
    }
    return rung.entry.desc->spmm_launch(call);
  };

  try {
    KernelRun run = run_ladder(policy, sink, report, rungs,
                               [&] { zero_output(dev, c); }, run_rung);
    cleanup();
    return run;
  } catch (...) {
    cleanup();
    throw;
  }
}

KernelRun supervised_sddmm(gpusim::Device& dev, const DenseDevice<half_t>& a,
                           const DenseDevice<half_t>& b, const CvsDevice& mask,
                           gpusim::Buffer<half_t>& out_values,
                           const kernels::SddmmOptions& options) {
  VSPARSE_CHECK(options.serve != nullptr);
  const ServePolicy& policy = *options.serve;
  ServeReport local;
  ServeReport& report = options.serve_report != nullptr
                            ? *options.serve_report
                            : local;
  report.clear();
  report.request_id = policy.request_id;
  report.op = "sddmm";

  gpusim::Trace* sink = resolve_sink(dev, options.sim);
  const DispatchShape shape{mask.rows, a.cols, mask.cols, mask.v,
                            cvs_density(mask)};

  SddmmAlgorithm algo = options.algorithm;
  if (algo == SddmmAlgorithm::kAuto) {
    const kernels::KernelDesc* cached =
        options.policy != nullptr
            ? options.policy->lookup(KernelOp::kSddmm, dev.config().arch,
                                     shape)
            : nullptr;
    algo = cached != nullptr ? static_cast<SddmmAlgorithm>(cached->algorithm)
                             : kernels::resolve_auto_sddmm(shape);
  }
  const LadderEntry entry{&kernels::kernel_for(algo), false};
  if (!entry.desc->eligible(shape)) {
    reject(report, sink, ErrorCode::kBadDispatch, "serve.supervisor",
           "requested sddmm algorithm is not eligible for this mask");
  }
  const std::vector<Rung> rungs =
      build_rungs(policy, KernelOp::kSddmm, entry, shape);

  // SDDMM has no re-encode rungs, so the footprint is operands only.
  const std::size_t operand_bytes =
      a.buf.bytes() + b.buf.bytes() + mask.row_ptr.bytes() +
      mask.col_idx.bytes() + mask.values.bytes() + out_values.bytes();
  if (policy.memory_quota_bytes != 0 &&
      operand_bytes > policy.memory_quota_bytes) {
    reject(report, sink, ErrorCode::kQuotaExceeded, "serve.quota",
           "request footprint " + std::to_string(operand_bytes) +
               "B exceeds the per-request quota of " +
               std::to_string(policy.memory_quota_bytes) + "B");
  }

  auto run_rung = [&](const Rung& rung) -> KernelRun {
    return rung.entry.desc->sddmm_launch(
        kernels::SddmmCall{dev, a, b, mask, out_values, options.sim});
  };

  return run_ladder(policy, sink, report, rungs,
                    [&] { zero_buffer(out_values); }, run_rung);
}

const ServeReport& Supervisor::finish(ServeReport&& report) {
  ++totals_.requests;
  totals_.completed += report.completed ? 1 : 0;
  totals_.retries += static_cast<std::uint64_t>(report.retries);
  totals_.fallbacks += static_cast<std::uint64_t>(report.fallbacks);
  totals_.rejected += report.rejected ? 1 : 0;
  totals_.give_ups += (!report.completed && !report.rejected) ? 1 : 0;
  reports_.push_back(std::move(report));
  return reports_.back();
}

const ServeReport& Supervisor::record_rejection(const char* op, ErrorCode code,
                                                std::string site) {
  ServeReport report;
  report.request_id = take_request_id();
  report.op = op;
  report.rejected = true;
  report.has_error = true;
  report.final_code = code;
  report.final_site = std::move(site);
  return finish(std::move(report));
}

const ServeReport& Supervisor::submit_spmm(const CvsDevice& a,
                                           const DenseDevice<half_t>& b,
                                           DenseDevice<half_t>& c,
                                           kernels::SpmmOptions options) {
  ServePolicy policy = policy_;
  policy.request_id = take_request_id();
  ServeReport report;
  options.serve = &policy;
  options.serve_report = &report;
  try {
    supervised_spmm(dev_, a, b, c, options);
  } catch (const vsparse::Error&) {
    // Classified and recorded in the report — contained by design.
  } catch (const std::exception&) {
    // run_ladder classified it kInternal; still contained.
  }
  return finish(std::move(report));
}

const ServeReport& Supervisor::submit_sddmm(const DenseDevice<half_t>& a,
                                            const DenseDevice<half_t>& b,
                                            const CvsDevice& mask,
                                            gpusim::Buffer<half_t>& out_values,
                                            kernels::SddmmOptions options) {
  ServePolicy policy = policy_;
  policy.request_id = take_request_id();
  ServeReport report;
  options.serve = &policy;
  options.serve_report = &report;
  try {
    supervised_sddmm(dev_, a, b, mask, out_values, options);
  } catch (const vsparse::Error&) {
  } catch (const std::exception&) {
  }
  return finish(std::move(report));
}

}  // namespace vsparse::serve

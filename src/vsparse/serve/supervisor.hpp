// The launch supervisor — the fault boundary that keeps a long-lived
// many-launch process correct and alive.
//
// One supervised request runs as:
//
//   admission   quota + device-memory reservation check; oversized
//               requests are rejected with a structured error before
//               anything launches
//   retry       up to RetryPolicy::max_retries re-runs of the current
//               rung, spent only on *retryable* taxonomy codes, each
//               preceded by deterministic seeded exponential backoff
//               (simulated cycles — recorded, never slept)
//   ladder      on a fallback-eligible failure, hop to the next
//               eligible rung: octet -> octet+ABFT -> blocked-ELL ->
//               dense GEMM -> FPU reference (SpMM); octet -> WMMA ->
//               FPU (SDDMM).  Re-encode rungs rebuild the sparse
//               operand from the (clean) host-side arena copy at fresh
//               device addresses, which is what defeats sticky faults
//               parked on the original encoding.
//   give up     non-eligible failure or ladder exhausted: the original
//               exception propagates; the report records why.
//
// Every hop emits a PR 3 trace event (serve_retry / serve_fallback /
// serve_give_up) and lands in the ServeReport.  All rungs are bit-
// compatible (every SpMM kernel reproduces spmm_reference's fp32
// K-ordered accumulation exactly), so a recovered launch is
// bit-identical to a fault-free one.
//
// The null-policy fast path: dispatch with SpmmOptions::serve ==
// nullptr never reaches this layer, and a supervised fault-free launch
// performs exactly one kernel call with unchanged options — bit- and
// counter-identical to unsupervised dispatch (asserted by serve_test).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "vsparse/kernels/dispatch.hpp"
#include "vsparse/serve/policy.hpp"
#include "vsparse/serve/report.hpp"

namespace vsparse::serve {

/// Deterministic saturating backoff schedule: base * multiplier^(attempt-1)
/// + seeded jitter, clamped at kMaxBackoffCycles *before* the multiply so
/// million-launch soaks with aggressive multipliers never wrap uint64.
/// Exposed for the overflow regression in serve_test.
std::uint64_t backoff_cycles_for(const RetryPolicy& retry,
                                 std::uint64_t request_id, int rung_index,
                                 int attempt);

/// Execute one supervised SpMM under options.serve (must be non-null).
/// On success returns the final rung's KernelRun; on give-up rethrows
/// the last underlying error (original type preserved).  When
/// options.serve_report is set it receives the full attempt record
/// either way.  Called by kernels::spmm; callable directly.
kernels::KernelRun supervised_spmm(gpusim::Device& dev, const CvsDevice& a,
                                   const DenseDevice<half_t>& b,
                                   DenseDevice<half_t>& c,
                                   const kernels::SpmmOptions& options);

/// Supervised SDDMM; same contract.
kernels::KernelRun supervised_sddmm(gpusim::Device& dev,
                                    const DenseDevice<half_t>& a,
                                    const DenseDevice<half_t>& b,
                                    const CvsDevice& mask,
                                    gpusim::Buffer<half_t>& out_values,
                                    const kernels::SddmmOptions& options);

/// The long-lived serving front end: owns the policy, stamps request
/// ids, keeps every ServeReport, and never lets a classified failure
/// escape — submit_* returns the report instead of throwing, which is
/// the "zero process aborts" contract the soak asserts.
class Supervisor {
 public:
  /// Aggregate outcome counters across all submitted requests.
  struct Totals {
    std::uint64_t requests = 0;
    std::uint64_t completed = 0;
    std::uint64_t retries = 0;
    std::uint64_t fallbacks = 0;
    std::uint64_t give_ups = 0;
    std::uint64_t rejected = 0;
  };

  Supervisor(gpusim::Device& dev, ServePolicy policy)
      : dev_(dev), policy_(policy) {}

  /// Run one supervised SpMM.  `options.serve`/`serve_report` are
  /// overridden by this Supervisor's policy and report storage.
  ///
  /// Lifetime: the returned reference points into reports(), so the
  /// NEXT submit_* / record_rejection call may invalidate it (vector
  /// growth).  Copy anything needed across a later submit — the
  /// scheduler's composed attention request is the canonical example.
  const ServeReport& submit_spmm(const CvsDevice& a,
                                 const DenseDevice<half_t>& b,
                                 DenseDevice<half_t>& c,
                                 kernels::SpmmOptions options = {});

  /// Run one supervised SDDMM.
  const ServeReport& submit_sddmm(const DenseDevice<half_t>& a,
                                  const DenseDevice<half_t>& b,
                                  const CvsDevice& mask,
                                  gpusim::Buffer<half_t>& out_values,
                                  kernels::SddmmOptions options = {});

  /// Record a request turned away *before* it reached the device — the
  /// producer side of BoundedQueue backpressure (kQueueFull) or any
  /// other pre-admission rejection.  Consumes a request id so report
  /// numbering stays dense and arrival-ordered.
  const ServeReport& record_rejection(const char* op, ErrorCode code,
                                      std::string site);

  /// Route request-id stamping through an external counter shared by a
  /// fleet of per-device supervisors, so the merged report numbering
  /// stays dense and submission-ordered across workers (failover and
  /// hedge duplicates included).  nullptr restores the private counter.
  /// The counter must outlive the attachment.
  void set_request_id_source(std::uint64_t* source) { id_source_ = source; }

  /// Replay hook: continue private numbering from `id`, so a replayed
  /// request reproduces the captured report ids exactly.
  void set_next_request_id(std::uint64_t id) { next_request_ = id; }

  gpusim::Device& device() { return dev_; }
  const ServePolicy& policy() const { return policy_; }
  /// Scheduler hook: adjust quota / kernel gate between submits (the
  /// policy is consulted afresh on every submit_*).
  ServePolicy& mutable_policy() { return policy_; }
  const std::vector<ServeReport>& reports() const { return reports_; }
  const Totals& totals() const { return totals_; }

  /// The vsparse-serve-v1 JSON artifact (serve/report.hpp).
  std::string reports_json() const { return serve::reports_json(reports_); }

 private:
  const ServeReport& finish(ServeReport&& report);

  std::uint64_t take_request_id() {
    return id_source_ != nullptr ? (*id_source_)++ : next_request_++;
  }

  gpusim::Device& dev_;
  ServePolicy policy_;
  std::uint64_t* id_source_ = nullptr;
  std::uint64_t next_request_ = 0;
  std::vector<ServeReport> reports_;
  Totals totals_;
};

}  // namespace vsparse::serve

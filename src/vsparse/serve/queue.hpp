// Bounded MPMC request queue with backpressure — the admission stage
// in front of a Supervisor when requests arrive faster than the
// simulator drains them (batch soaks, the --soak bench driver).
//
// try_push() never blocks: a full queue rejects the request (counted),
// which is the backpressure signal a producer turns into its own
// kQueueFull taxonomy error.  push_wait()/pop_wait() are the blocking
// endpoints for multi-threaded producer/consumer use; close() wakes
// every waiter so shutdown can't hang.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace vsparse::serve {

template <class T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Non-blocking admission; false = queue full or closed (rejected).
  bool try_push(T v) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) {
        ++rejected_;
        return false;
      }
      items_.push_back(std::move(v));
      ++accepted_;
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking admission; false only when the queue is closed.
  bool push_wait(T v) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_full_.wait(lock,
                     [&] { return closed_ || items_.size() < capacity_; });
      if (closed_) {
        ++rejected_;
        return false;
      }
      items_.push_back(std::move(v));
      ++accepted_;
    }
    not_empty_.notify_one();
    return true;
  }

  std::optional<T> try_pop() {
    std::optional<T> out;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (items_.empty()) return out;
      out.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    not_full_.notify_one();
    return out;
  }

  /// Blocks until an item arrives; nullopt once closed *and* drained.
  std::optional<T> pop_wait() {
    std::optional<T> out;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
      if (items_.empty()) return out;
      out.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    not_full_.notify_one();
    return out;
  }

  /// No further admissions; waiters wake and drain what remains.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  std::uint64_t accepted() const {
    std::lock_guard<std::mutex> lock(mu_);
    return accepted_;
  }
  /// Backpressure events: try_push() calls turned away.
  std::uint64_t rejected() const {
    std::lock_guard<std::mutex> lock(mu_);
    return rejected_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace vsparse::serve

// Device-fleet serving — N simulated devices behind one scheduler.
//
// A Fleet owns `devices` Workers.  Each Worker is a full serving stack
// of its own: a gpusim::Device (private DRAM arena + engine thread
// budget), a Supervisor (retry/backoff/degradation ladder, per-worker
// quota pool), and a registry-keyed HealthTracker whose circuit
// breakers quarantine individual kernels on that device.  On top of
// the per-kernel breakers each Worker carries a *device-level* breaker
// driven by whole-device failure signatures (wedge timeouts, device
// loss):
//
//   Active    normal service; consecutive device-level failures trip
//             the breaker at drain_failure_threshold
//   Draining  quiesced: placements route around the worker while its
//             backlog migrates to healthy peers; after a cooldown the
//             next placement on it is a *probe* — success restores the
//             worker, another device-level failure re-drains it with
//             the cooldown doubled (saturating)
//   Dead      permanent loss (a death storm); never serves again
//
// Supervisor request ids are stamped from one fleet-shared counter, so
// the merged vsparse-serve-v1 report stays dense and submission-
// ordered across workers — failover re-placements and hedge duplicates
// included — which is what lets the report validator assert
// exactly-once accounting per request id.
//
// Determinism: Workers are picked least-loaded on the *simulated*
// clock (min busy_until, ties to the lowest device id), every breaker
// transition is keyed to simulated ticks, and nothing here reads wall
// clocks or thread ids — a fleet run's report is byte-identical at any
// --threads=N, and a fleet of one fault-free device is bit- and
// counter-identical to the single-device scheduler it generalizes.
//
// This header also hosts the request *executor* shared by the
// scheduler and the flight-recorder replay path (tools/replay): one
// function that builds a request's operands from its seed and runs it
// under a Supervisor, so a replayed failure re-executes literally the
// same code the fleet ran.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "vsparse/gpusim/device.hpp"
#include "vsparse/serve/chaos.hpp"
#include "vsparse/serve/health.hpp"
#include "vsparse/serve/policy.hpp"
#include "vsparse/serve/supervisor.hpp"

namespace vsparse::verify {
class CertStore;
}  // namespace vsparse::verify

namespace vsparse::serve {

enum class RequestOp : std::uint8_t { kSpmm = 0, kSddmm, kAttention };

const char* request_op_name(RequestOp op);

/// Fixed dispatch/teardown charge per supervised attempt in the
/// scheduler's service model.
constexpr std::uint64_t kDispatchOverheadTicks = 2000;

/// Brownout watchdog budget (kernel-level kBrownout storms and
/// device-level brownouts alike): tight enough to kill the TCU
/// kernels' CTAs on 128-row shapes, loose enough that traffic moves.
constexpr std::uint64_t kBrownoutCtaOps = 256;

/// Everything needed to rebuild one request's operands from scratch —
/// the seed-derived identity the flight recorder captures.
struct RequestSpec {
  RequestOp op = RequestOp::kSpmm;
  int m = 64, k = 64, v = 4;
  double sparsity = 0.7;
  std::uint64_t data_seed = 0;
};

/// The environment one execution runs under (chaos modulation + engine
/// threading + optional verify cross-check).
struct ExecEnv {
  int threads = 1;
  /// Arm the seeded ECC-burst fault plan (kEccBurst storms).
  bool ecc_burst = false;
  /// Non-zero: launch under this watchdog budget (brownouts).
  std::uint64_t watchdog_cta_ops = 0;
  /// Cross-check a completed request against unsupervised dispatch on
  /// ref_dev: output bytes always; SM-local counters only when no
  /// watchdog degradation is armed (a brownout may legitimately push
  /// the request to a different ladder rung).
  bool verify = false;
  gpusim::Device* ref_dev = nullptr;
  /// Opt-in static-verification admission gate (gpusim/verify/
  /// certs.hpp): a request whose resolved kernel carries a `refuted`
  /// certificate for this shape class on the worker's architecture is
  /// rejected at admission (final_site "serve.verify.admission")
  /// before any operand is built or launched.  Null (the default),
  /// uncovered shapes, and proved/unknown verdicts change nothing.
  const verify::CertStore* certs = nullptr;
};

/// One execution's outcome in the scheduler's service model.
struct ExecOutcome {
  bool completed = false;
  bool rejected = false;  ///< supervisor admission (quota)
  std::uint64_t service = kDispatchOverheadTicks;
  std::uint64_t ctas = 0;
  bool bit_exact = true;
  bool counters_exact = true;
  /// Failure signature (valid when !completed): the supervisor's final
  /// classification, used by the device breaker to tell whole-device
  /// faults from per-kernel ones.
  ErrorCode final_code = ErrorCode::kInternal;
  std::string final_site;

  /// Whole-device failure signature: the launch died at the device
  /// fault-domain check, not inside a kernel.
  bool device_failure() const {
    return !completed && !rejected &&
           (final_code == ErrorCode::kDeviceLost ||
            final_site == "gpusim.device.wedged");
  }
};

/// Build the request's operands from spec.data_seed and run it under
/// `sup` (SpMM / SDDMM / composed attention pipeline).  Shared by the
/// fleet scheduler and the flight-recorder replay path, so a replayed
/// bundle executes exactly the code the failing placement ran.
ExecOutcome execute_request(Supervisor& sup, const RequestSpec& spec,
                            const ExecEnv& env);

// ---- the fleet --------------------------------------------------------

enum class WorkerState : std::uint8_t { kActive = 0, kDraining, kDead };

const char* worker_state_name(WorkerState state);

struct FleetConfig {
  int devices = 1;
  /// Consecutive device-level failures that trip a worker's breaker.
  int drain_failure_threshold = 2;
  /// Ticks a draining worker waits before its first probe placement.
  std::uint64_t drain_cooldown_ticks = 250'000;
  /// Probe-failure escalation cap: cooldown << min(reopens, cap).
  int max_drain_doublings = 4;
  /// Operator maintenance windows (drain device for [begin, end)).
  std::vector<DrainWindow> drains;
};

/// One fleet state transition or placement-level action, in global
/// simulated-tick order ("dead", "drain", "probe", "drain_reopen",
/// "restore", "failover", "hedge", "hedge_cancel").
struct FleetEvent {
  std::uint64_t tick = 0;
  int device = 0;
  std::string kind;
};

/// Whole-run placement counters for the v2 load report.
struct PlacementStats {
  std::uint64_t placements = 0;   ///< executions started (hedges included)
  std::uint64_t failovers = 0;    ///< re-placements after device failures
  std::uint64_t migrated = 0;     ///< placements routed around a drain
  std::uint64_t hedges = 0;       ///< hedged (duplicated) requests
  std::uint64_t hedge_wins_secondary = 0;
  std::uint64_t hedge_cancelled = 0;  ///< losers reconciled away
  /// Duplicates cancelled before launch: the primary finished before
  /// the backup's worker freed (counted in hedge_cancelled too, but
  /// consumed no placement).
  std::uint64_t hedges_unlaunched = 0;
  std::uint64_t probes = 0;
  std::uint64_t drains = 0;
  std::uint64_t drain_reopens = 0;
  std::uint64_t restores = 0;
  std::uint64_t devices_lost = 0;
};

class Fleet {
 public:
  struct Worker {
    int id = 0;
    gpusim::Device dev;
    HealthTracker health;  ///< before sup: the policy gate points at it
    Supervisor sup;
    std::uint64_t busy_until = 0;
    WorkerState state = WorkerState::kActive;
    int device_failures = 0;  ///< consecutive, device-level
    std::uint64_t probe_at = 0;
    int drain_reopens = 0;
    std::uint64_t placements = 0;
    std::uint64_t completions = 0;
    std::uint64_t failures = 0;
    std::uint64_t probes = 0;

    Worker(int id_in, const gpusim::DeviceConfig& hw,
           const ServePolicy& policy, const HealthConfig& health_config);
  };

  /// `storms` may be null (no device chaos); it must outlive the fleet.
  Fleet(const FleetConfig& config, const gpusim::DeviceConfig& hw,
        const ServePolicy& base_policy, const HealthConfig& health_config,
        const DeviceChaosPlan* storms);

  int devices() const { return static_cast<int>(workers_.size()); }
  Worker& worker(int d) { return *workers_[static_cast<std::size_t>(d)]; }
  const Worker& worker(int d) const {
    return *workers_[static_cast<std::size_t>(d)];
  }

  /// Apply permanent death windows that began at or before `now`
  /// (worker-id order, so the event sequence is deterministic).
  void observe(std::uint64_t now, PlacementStats& stats);

  /// May `w` take a placement at tick `t`?  Not dead, not inside an
  /// operator drain window, and either Active or past its probe tick.
  bool available(const Worker& w, std::uint64_t t) const;

  /// Least-loaded free worker at `now` (min busy_until among available
  /// workers with busy_until <= now, ties to the lowest id), or -1.
  /// Fail-static: when *no* worker is available — every survivor is
  /// draining — the non-dead set serves anyway, so the fleet never
  /// deadlocks while a worker still answers launches.
  int pick_free(std::uint64_t now) const;

  /// Failover target: the worker (excluding `exclude`) that can start
  /// soonest at or after `now` (min max(busy_until, now), ties to the
  /// lowest id), or -1 when every candidate is excluded or dead.
  int pick_failover(std::uint64_t now,
                    const std::vector<char>& exclude) const;

  /// Earliest tick after `now` at which pick_free could change its
  /// answer: a busy worker completing, a probe cooldown expiring, or an
  /// operator drain window ending.  Returns `now` only if the fleet is
  /// wedged solid (cannot happen while worker 0 is alive).
  std::uint64_t next_event_tick(std::uint64_t now) const;

  /// Any worker besides `chosen` idle-but-unavailable at `t`?  (Its
  /// traffic is being migrated — the drain accounting signal.)
  bool placement_migrated(int chosen, std::uint64_t t) const;

  /// Record a placement start on `w`.  Returns true when this placement
  /// is a *probe* of a draining worker (start >= probe_at) — pass the
  /// flag back to note_outcome so only probe outcomes can restore.
  bool note_placement(Worker& w, std::uint64_t start, PlacementStats& stats);

  /// Arm `w`'s device-level fault state for an execution starting at
  /// `tick` and return what was armed (wedge/brownout/death).
  DeviceFaultActive arm_device(Worker& w, std::uint64_t tick);
  void disarm_device(Worker& w);

  /// Feed one execution outcome to `w`'s device breaker: trips drains,
  /// reopens probes, restores workers, marks deaths (events emitted at
  /// `end_tick`, the failure-discovery / completion tick).  `was_probe`
  /// is note_placement's return value for this placement.
  void note_outcome(Worker& w, const ExecOutcome& out, std::uint64_t end_tick,
                    bool was_probe, PlacementStats& stats);

  /// Append a placement-level event ("failover", "hedge", ...).
  void emit(std::uint64_t tick, int device, const char* kind);

  /// The fleet-shared supervisor request-id counter.
  std::uint64_t next_request_id() const { return next_request_id_; }

  const std::vector<FleetEvent>& events() const { return events_; }
  std::string events_json() const;

  /// Per-worker summary array for the v2 report (stats + final state +
  /// per-worker health totals).
  std::string workers_json() const;

  /// Sum of every worker's HealthTracker totals.
  HealthTracker::Totals merged_health_totals() const;

  /// Every worker's health events merged in (tick, worker-id) order —
  /// byte-identical to the single tracker's stream when devices == 1.
  std::string merged_health_events_json() const;

  /// Every worker's ServeReports merged in request-id order: the dense
  /// vsparse-serve-v1 artifact.
  std::vector<ServeReport> merged_reports() const;

 private:
  bool op_drained(const Worker& w, std::uint64_t t) const;
  void mark_dead(Worker& w, std::uint64_t tick, PlacementStats* stats);

  FleetConfig config_;
  const DeviceChaosPlan* storms_ = nullptr;
  std::uint64_t next_request_id_ = 0;
  /// unique_ptr storage: Supervisor holds Device&, so Workers must
  /// never relocate.
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<FleetEvent> events_;
};

}  // namespace vsparse::serve

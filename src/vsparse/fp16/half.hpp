// Software IEEE-754 binary16 ("half") type.
//
// The paper's kernels operate on CUDA `__half` operands with fp32
// accumulation inside the tensor core.  This header provides the same
// semantics on the host: storage is the 16-bit pattern, arithmetic is
// performed by converting to float (all binary16 values are exactly
// representable in binary32), and explicit `hadd`/`hmul` helpers
// perform the fp16-rounded operations used by FPU-based kernels.
//
// Conversion uses the F16C hardware instructions when available
// (-march=native on this host enables them) and a portable
// round-to-nearest-even bit-manipulation fallback otherwise.  The two
// paths are bit-identical; tests/fp16_test.cpp verifies this
// exhaustively over all 65536 half patterns.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

#if defined(__F16C__)
#include <immintrin.h>
#endif

namespace vsparse {

namespace fp16_detail {

/// Portable float -> binary16 conversion with round-to-nearest-even,
/// handling subnormals, infinities, and NaN (quietized).
constexpr std::uint16_t float_to_half_bits_portable(float f) {
  std::uint32_t x = std::bit_cast<std::uint32_t>(f);
  const std::uint32_t sign = (x >> 16) & 0x8000u;
  x &= 0x7fffffffu;

  if (x >= 0x7f800000u) {
    // Inf or NaN.  Preserve NaN-ness; quietize the payload.
    return static_cast<std::uint16_t>(
        sign | 0x7c00u | (x > 0x7f800000u ? 0x0200u | ((x >> 13) & 0x3ffu) : 0u));
  }
  if (x >= 0x477ff000u) {
    // Rounds to a magnitude >= 65520 -> overflow to infinity.
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  }
  if (x < 0x33000001u) {
    // Magnitude below half the smallest subnormal -> rounds to zero.
    return static_cast<std::uint16_t>(sign);
  }
  if (x < 0x38800000u) {
    // Subnormal half: m = round(sig24 * 2^(e-126)) with e in [102,112],
    // i.e. a right shift of (126 - e) in [14,24], rounded to nearest even.
    const int shift = 126 - static_cast<int>(x >> 23);
    const std::uint32_t sig = (x & 0x7fffffu) | 0x800000u;
    const std::uint32_t shifted = sig >> shift;
    const std::uint32_t rem = sig & ((1u << shift) - 1);
    const std::uint32_t halfway = 1u << (shift - 1);
    std::uint32_t out = shifted;
    if (rem > halfway || (rem == halfway && (shifted & 1u))) ++out;
    return static_cast<std::uint16_t>(sign | out);
  }
  // Normal half.  Rebias the exponent and round the 13 dropped bits.
  std::uint32_t out = (x - 0x38000000u) >> 13;
  const std::uint32_t rem = x & 0x1fffu;
  if (rem > 0x1000u || (rem == 0x1000u && (out & 1u))) ++out;
  return static_cast<std::uint16_t>(sign | out);
}

/// Portable binary16 -> float conversion (exact).
constexpr float half_bits_to_float_portable(std::uint16_t h) {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1fu;
  const std::uint32_t sig = h & 0x3ffu;
  std::uint32_t out = 0;
  if (exp == 0) {
    if (sig == 0) {
      out = sign;  // +-0
    } else {
      // Subnormal: normalize.
      int e = -1;
      std::uint32_t s = sig;
      while ((s & 0x400u) == 0) {
        s <<= 1;
        ++e;
      }
      out = sign | ((127 - 15 - e) << 23) | ((s & 0x3ffu) << 13);
    }
  } else if (exp == 31) {
    out = sign | 0x7f800000u | (sig << 13);  // Inf / NaN
  } else {
    out = sign | ((exp + 127 - 15) << 23) | (sig << 13);
  }
  return std::bit_cast<float>(out);
}

inline std::uint16_t float_to_half_bits(float f) {
#if defined(__F16C__)
  return static_cast<std::uint16_t>(
      _cvtss_sh(f, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC));
#else
  return float_to_half_bits_portable(f);
#endif
}

inline float half_bits_to_float(std::uint16_t h) {
#if defined(__F16C__)
  return _cvtsh_ss(h);
#else
  return half_bits_to_float_portable(h);
#endif
}

}  // namespace fp16_detail

/// IEEE binary16 value.  Trivially copyable 16-bit POD so it can live in
/// simulated device memory and be moved by sector-granular loads.
class half_t {
 public:
  half_t() = default;

  /// Implicit conversion from float mirrors the ergonomics of CUDA
  /// `__half` construction; rounding is to nearest even.
  half_t(float f) : bits_(fp16_detail::float_to_half_bits(f)) {}  // NOLINT

  /// Exact widening conversion.
  operator float() const { return fp16_detail::half_bits_to_float(bits_); }

  /// Reinterpret a raw bit pattern as a half.
  static half_t from_bits(std::uint16_t bits) {
    half_t h;
    h.bits_ = bits;
    return h;
  }

  std::uint16_t bits() const { return bits_; }

  friend bool operator==(half_t a, half_t b) {
    return static_cast<float>(a) == static_cast<float>(b);
  }
  friend bool operator!=(half_t a, half_t b) { return !(a == b); }
  friend bool operator<(half_t a, half_t b) {
    return static_cast<float>(a) < static_cast<float>(b);
  }

 private:
  std::uint16_t bits_ = 0;
};

static_assert(sizeof(half_t) == 2);

/// fp16-rounded addition: round(a + b) in binary16, as performed by a
/// HADD instruction.  (Exact in fp32, then one rounding.)
inline half_t hadd(half_t a, half_t b) {
  return half_t(static_cast<float>(a) + static_cast<float>(b));
}

/// fp16-rounded multiplication, as performed by an HMUL instruction.
inline half_t hmul(half_t a, half_t b) {
  return half_t(static_cast<float>(a) * static_cast<float>(b));
}

/// Batched exact widening: dst[i] = float(src[i]) for i in [0, n).
/// Uses the packed F16C form (VCVTPH2PS, 8 halves per instruction) when
/// available; bit-identical to the scalar conversion either way, so
/// callers may freely hoist per-element conversions into one batch.
inline void half_to_float_n(const half_t* src, float* dst, std::size_t n) {
#if defined(__F16C__)
  const std::size_t vec = n & ~std::size_t{7};
  for (std::size_t i = 0; i < vec; i += 8) {
    __m128i h;
    std::memcpy(&h, src + i, sizeof(h));
    _mm256_storeu_ps(dst + i, _mm256_cvtph_ps(h));
  }
  for (std::size_t t = 0; t < (n & 7); ++t) {
    dst[vec + t] = static_cast<float>(src[vec + t]);
  }
#else
  for (std::size_t i = 0; i < n; ++i) dst[i] = static_cast<float>(src[i]);
#endif
}

/// Batched rounding narrow: dst[i] = half_t(src[i]) for i in [0, n),
/// round-to-nearest-even.  Uses the packed F16C form (VCVTPS2PH, 8
/// floats per instruction) with the same rounding control as the scalar
/// conversion, so results are bit-identical either way and callers may
/// freely hoist per-element narrowing into one batch.
inline void float_to_half_n(const float* src, half_t* dst, std::size_t n) {
#if defined(__F16C__)
  const std::size_t vec = n & ~std::size_t{7};
  for (std::size_t i = 0; i < vec; i += 8) {
    const __m128i h =
        _mm256_cvtps_ph(_mm256_loadu_ps(src + i),
                        _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    std::memcpy(static_cast<void*>(dst + i), &h, sizeof(h));
  }
  for (std::size_t t = vec; t < n; ++t) dst[t] = half_t(src[t]);
#else
  for (std::size_t i = 0; i < n; ++i) dst[i] = half_t(src[i]);
#endif
}

/// True iff the value is a NaN pattern.
inline bool isnan(half_t h) {
  return (h.bits() & 0x7c00u) == 0x7c00u && (h.bits() & 0x3ffu) != 0;
}

/// True iff the value is +-infinity.
inline bool isinf(half_t h) { return (h.bits() & 0x7fffu) == 0x7c00u; }

}  // namespace vsparse

namespace std {

/// numeric_limits so generic test utilities can query binary16 bounds.
template <>
class numeric_limits<vsparse::half_t> {
 public:
  static constexpr bool is_specialized = true;
  static constexpr bool is_signed = true;
  static constexpr bool is_integer = false;
  static constexpr bool is_exact = false;
  static constexpr int digits = 11;  // including the implicit bit

  static vsparse::half_t max() { return vsparse::half_t::from_bits(0x7bff); }
  static vsparse::half_t lowest() { return vsparse::half_t::from_bits(0xfbff); }
  static vsparse::half_t min() { return vsparse::half_t::from_bits(0x0400); }
  static vsparse::half_t denorm_min() {
    return vsparse::half_t::from_bits(0x0001);
  }
  static vsparse::half_t epsilon() { return vsparse::half_t::from_bits(0x1400); }
  static vsparse::half_t infinity() { return vsparse::half_t::from_bits(0x7c00); }
  static vsparse::half_t quiet_NaN() {
    return vsparse::half_t::from_bits(0x7e00);
  }
};

}  // namespace std

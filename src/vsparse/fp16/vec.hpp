// Short vectors of binary16 values mirroring CUDA's half2 / "half4" /
// float4 vector types.  The paper's column-vector sparse encoding
// stores each nonzero as one of these: half2 for V=2, half4 for V=4,
// and float4 (= 8 halves reinterpreted) for V=8 (§4.2).  On the
// simulator they are plain contiguous arrays; their size determines the
// width of the vector memory operation (LDG.32 / LDG.64 / LDG.128).
#pragma once

#include <array>
#include <cstddef>

#include "vsparse/common/macros.hpp"
#include "vsparse/fp16/half.hpp"

namespace vsparse {

/// Fixed-width vector of halves.  Trivially copyable, 2*N bytes.
template <int N>
struct HalfVec {
  static_assert(N >= 1 && N <= 8);
  std::array<half_t, N> v{};

  half_t& operator[](int i) {
    VSPARSE_DCHECK(i >= 0 && i < N);
    return v[static_cast<std::size_t>(i)];
  }
  half_t operator[](int i) const {
    VSPARSE_DCHECK(i >= 0 && i < N);
    return v[static_cast<std::size_t>(i)];
  }

  static constexpr int width = N;
  static constexpr std::size_t bytes = static_cast<std::size_t>(N) * 2;
};

using half2 = HalfVec<2>;
using half4 = HalfVec<4>;
using half8 = HalfVec<8>;  ///< what the paper stores via a float4 reinterpret

static_assert(sizeof(half2) == 4);
static_assert(sizeof(half4) == 8);
static_assert(sizeof(half8) == 16);

}  // namespace vsparse

#include "vsparse/kernels/registry.hpp"

#include <algorithm>

#include "vsparse/gpusim/device.hpp"
#include "vsparse/kernels/dense/gemm.hpp"
#include "vsparse/kernels/sddmm/sddmm_csr_fine.hpp"
#include "vsparse/kernels/sddmm/sddmm_fpu.hpp"
#include "vsparse/kernels/sddmm/sddmm_octet.hpp"
#include "vsparse/kernels/sddmm/sddmm_wmma.hpp"
#include "vsparse/kernels/spmm/spmm_blocked_ell.hpp"
#include "vsparse/kernels/spmm/spmm_csr_fine.hpp"
#include "vsparse/kernels/spmm/spmm_fpu.hpp"
#include "vsparse/kernels/spmm/spmm_octet.hpp"
#include "vsparse/kernels/spmm/spmm_octet_abft.hpp"
#include "vsparse/kernels/contracts.hpp"
#include "vsparse/kernels/spmm/spmm_wmma.hpp"
#include "vsparse/serve/error.hpp"

namespace vsparse::kernels {

namespace {

constexpr std::uint16_t v_set(int a) {
  return static_cast<std::uint16_t>(1u << a);
}
constexpr std::uint16_t kVTcu = v_set(2) | v_set(4) | v_set(8);
constexpr std::uint16_t kVAll = v_set(1) | kVTcu;
constexpr std::uint16_t kVScalar = v_set(1);

// ---- eligibility predicates -------------------------------------------
// Byte-for-byte the constraints the Supervisor's hard-coded
// spmm_rung_eligible/sddmm_rung_eligible encoded before the registry;
// serve_test's ladder expectations pin them.

bool tcu_64col(const DispatchShape& s) { return s.v >= 2 && s.n % 64 == 0; }

bool dense_tiles(const DispatchShape& s) {
  return s.m % 64 == 0 && s.n % 64 == 0 && s.k % 16 == 0;
}

bool fpu_16col(const DispatchShape& s) { return s.n % 16 == 0; }

bool scalar_32col(const DispatchShape& s) {
  return s.v == 1 && s.n % 32 == 0;
}

bool sddmm_tcu(const DispatchShape& s) { return s.v >= 2; }

bool sddmm_any(const DispatchShape&) { return true; }

bool sddmm_scalar(const DispatchShape& s) { return s.v == 1; }

// ---- launch thunks -----------------------------------------------------

KernelRun run_spmm_octet(const SpmmCall& c) {
  return spmm_octet(c.dev, c.a, c.b, c.c, {}, c.sim);
}

KernelRun run_spmm_octet_abft(const SpmmCall& c) {
  VSPARSE_CHECK(c.abft != nullptr);
  return spmm_octet_abft(c.dev, c.a, c.b, c.c, {}, *c.abft, c.sim);
}

KernelRun run_spmm_wmma(const SpmmCall& c) {
  return spmm_wmma_warp(c.dev, c.a, c.b, c.c, c.sim);
}

KernelRun run_spmm_fpu(const SpmmCall& c) {
  return spmm_fpu_subwarp(c.dev, c.a, c.b, c.c, {}, c.sim);
}

KernelRun run_spmm_csr_fine(const SpmmCall& c) {
  return spmm_csr_fine(c.dev, c.a, c.b, c.c, c.sim);
}

KernelRun run_spmm_blocked_ell(const SpmmCall& c) {
  VSPARSE_CHECK(c.ell != nullptr);  // caller re-encodes (serve ladder)
  return spmm_blocked_ell(c.dev, *c.ell, c.b, c.c, c.sim);
}

KernelRun run_spmm_dense_gemm(const SpmmCall& c) {
  VSPARSE_CHECK(c.dense_a != nullptr);  // caller decodes (serve ladder)
  return hgemm_tcu(c.dev, *c.dense_a, c.b, c.c, {}, c.sim);
}

KernelRun run_sddmm_octet(const SddmmCall& c) {
  SddmmOctetParams params;
  // The Fig. 15 architecture point: on a TCU with the HMMA...SWITCH
  // extension the inverted-pattern fix is free, so the registry picks
  // the "mma (arch)" variant.  Every shipping preset leaves the flag
  // off and gets the paper's default "mma (reg)".
  if (c.dev.config().hmma_switch) {
    params.mode = InvertedPatternMode::kArchSwitch;
  }
  return sddmm_octet(c.dev, c.a, c.b, c.mask, c.out_values, params, c.sim);
}

KernelRun run_sddmm_wmma(const SddmmCall& c) {
  return sddmm_wmma_warp(c.dev, c.a, c.b, c.mask, c.out_values, c.sim);
}

KernelRun run_sddmm_fpu(const SddmmCall& c) {
  return sddmm_fpu_subwarp(c.dev, c.a, c.b, c.mask, c.out_values, {}, c.sim);
}

KernelRun run_sddmm_csr_fine(const SddmmCall& c) {
  return sddmm_csr_fine(c.dev, c.a, c.b, c.mask, c.out_values, c.sim);
}

}  // namespace

const char* kernel_op_name(KernelOp op) {
  return op == KernelOp::kSpmm ? "spmm" : "sddmm";
}

const std::vector<KernelDesc>& kernel_registry() {
  // Ladder ranks mirror the pre-registry Supervisor: the octet desc's
  // rung runs *with* ABFT (plain octet re-runs are what retries already
  // spent), WMMA is an entry point but never a fallback, and the two
  // re-encode kernels exist only as rungs (kNoAlgorithm).
  static const std::vector<KernelDesc> kTable = {
      // ---- SpMM ------------------------------------------------------
      {"spmm_octet", KernelOp::kSpmm,
       static_cast<int>(SpmmAlgorithm::kOctet), OperandFormat::kCvs, kVTcu,
       /*has_abft=*/true, /*ladder_rank=*/0, &tcu_64col, &run_spmm_octet,
       &run_spmm_octet_abft, nullptr, &contracts::spmm_octet},
      {"spmm_wmma_warp", KernelOp::kSpmm,
       static_cast<int>(SpmmAlgorithm::kWmmaWarp), OperandFormat::kCvs,
       kVTcu, false, kNotInLadder, &tcu_64col, &run_spmm_wmma, nullptr,
       nullptr, &contracts::spmm_wmma_warp},
      {"spmm_fpu_subwarp", KernelOp::kSpmm,
       static_cast<int>(SpmmAlgorithm::kFpuSubwarp), OperandFormat::kCvs,
       kVAll, false, /*ladder_rank=*/3, &fpu_16col, &run_spmm_fpu, nullptr,
       nullptr, &contracts::spmm_fpu_subwarp},
      {"spmm_csr_fine", KernelOp::kSpmm,
       static_cast<int>(SpmmAlgorithm::kCsrFine), OperandFormat::kCvs,
       kVScalar, false, /*ladder_rank=*/4, &scalar_32col,
       &run_spmm_csr_fine, nullptr, nullptr, &contracts::spmm_csr_fine},
      {"spmm_blocked_ell", KernelOp::kSpmm, kNoAlgorithm,
       OperandFormat::kBlockedEll, kVTcu, false, /*ladder_rank=*/1,
       &tcu_64col, &run_spmm_blocked_ell, nullptr, nullptr,
       &contracts::spmm_blocked_ell},
      {"spmm_dense_gemm", KernelOp::kSpmm, kNoAlgorithm,
       OperandFormat::kDense, kVAll, false, /*ladder_rank=*/2,
       &dense_tiles, &run_spmm_dense_gemm, nullptr, nullptr,
       &contracts::spmm_dense_gemm},
      // ---- SDDMM -----------------------------------------------------
      {"sddmm_octet", KernelOp::kSddmm,
       static_cast<int>(SddmmAlgorithm::kOctet), OperandFormat::kCvs, kVTcu,
       false, kNotInLadder, &sddmm_tcu, nullptr, nullptr,
       &run_sddmm_octet, &contracts::sddmm_octet},
      {"sddmm_wmma_warp", KernelOp::kSddmm,
       static_cast<int>(SddmmAlgorithm::kWmmaWarp), OperandFormat::kCvs,
       kVTcu, false, /*ladder_rank=*/0, &sddmm_tcu, nullptr, nullptr,
       &run_sddmm_wmma, &contracts::sddmm_wmma_warp},
      {"sddmm_fpu_subwarp", KernelOp::kSddmm,
       static_cast<int>(SddmmAlgorithm::kFpuSubwarp), OperandFormat::kCvs,
       kVAll, false, /*ladder_rank=*/1, &sddmm_any, nullptr, nullptr,
       &run_sddmm_fpu, &contracts::sddmm_fpu_subwarp},
      {"sddmm_csr_fine", KernelOp::kSddmm,
       static_cast<int>(SddmmAlgorithm::kCsrFine), OperandFormat::kCvs,
       kVScalar, false, /*ladder_rank=*/2, &sddmm_scalar, nullptr, nullptr,
       &run_sddmm_csr_fine, &contracts::sddmm_csr_fine},
  };
  return kTable;
}

const KernelDesc* find_kernel(std::string_view name) {
  for (const KernelDesc& desc : kernel_registry()) {
    if (name == desc.name) return &desc;
  }
  return nullptr;
}

const KernelDesc* find_kernel(KernelOp op, int algorithm) {
  if (algorithm == kNoAlgorithm) return nullptr;
  for (const KernelDesc& desc : kernel_registry()) {
    if (desc.op == op && desc.algorithm == algorithm) return &desc;
  }
  return nullptr;
}

const KernelDesc& kernel_for(SpmmAlgorithm algorithm) {
  const KernelDesc* desc =
      find_kernel(KernelOp::kSpmm, static_cast<int>(algorithm));
  VSPARSE_CHECK_RAISE(desc != nullptr, ErrorCode::kBadDispatch,
                      "kernels.registry",
                      "no registered SpMM kernel for algorithm value "
                          << static_cast<int>(algorithm));
  return *desc;
}

const KernelDesc& kernel_for(SddmmAlgorithm algorithm) {
  const KernelDesc* desc =
      find_kernel(KernelOp::kSddmm, static_cast<int>(algorithm));
  VSPARSE_CHECK_RAISE(desc != nullptr, ErrorCode::kBadDispatch,
                      "kernels.registry",
                      "no registered SDDMM kernel for algorithm value "
                          << static_cast<int>(algorithm));
  return *desc;
}

SpmmAlgorithm resolve_auto_spmm(const DispatchShape& shape) {
  return shape.v >= 2 ? SpmmAlgorithm::kOctet : SpmmAlgorithm::kFpuSubwarp;
}

SddmmAlgorithm resolve_auto_sddmm(const DispatchShape& shape) {
  return shape.v >= 2 ? SddmmAlgorithm::kOctet : SddmmAlgorithm::kFpuSubwarp;
}

std::vector<LadderEntry> fallback_ladder(KernelOp op,
                                         const DispatchShape& shape) {
  std::vector<LadderEntry> rungs;
  for (const KernelDesc& desc : kernel_registry()) {
    if (desc.op != op || desc.ladder_rank == kNotInLadder) continue;
    if (!desc.eligible(shape)) continue;
    rungs.push_back({&desc, desc.has_abft});
  }
  std::sort(rungs.begin(), rungs.end(),
            [](const LadderEntry& x, const LadderEntry& y) {
              return x.desc->ladder_rank < y.desc->ladder_rank;
            });
  return rungs;
}

}  // namespace vsparse::kernels

// Static launch contracts — one per registered kernel, plus the
// non-registry kernels the fig05 suites exercise (dense GEMM entry
// points and the softmax kernels).
//
// A contract replays the address behaviour of one representative CTA
// of its kernel against verify::CtaModel at a concrete corner shape
// (see gpusim/verify/machine.hpp for the obligations it must meet).
// Contracts model loop *extremes*, not every iteration: each staging /
// compute / writeback loop is replayed at its first and last trip with
// the staged-count data dependency probed at both its empty and
// maximal value — sound because every address expression is monotone
// in the trip index and the staged count, which is also why corner
// shapes cover the whole shape class (shape_class.hpp).
#pragma once

#include "vsparse/kernels/registry.hpp"

namespace vsparse::kernels::contracts {

// SpMM
void spmm_octet(verify::CtaModel& m, const verify::ShapeCorner& s,
                const gpusim::DeviceConfig& hw);
void spmm_wmma_warp(verify::CtaModel& m, const verify::ShapeCorner& s,
                    const gpusim::DeviceConfig& hw);
void spmm_fpu_subwarp(verify::CtaModel& m, const verify::ShapeCorner& s,
                      const gpusim::DeviceConfig& hw);
void spmm_csr_fine(verify::CtaModel& m, const verify::ShapeCorner& s,
                   const gpusim::DeviceConfig& hw);
void spmm_blocked_ell(verify::CtaModel& m, const verify::ShapeCorner& s,
                      const gpusim::DeviceConfig& hw);
void spmm_dense_gemm(verify::CtaModel& m, const verify::ShapeCorner& s,
                     const gpusim::DeviceConfig& hw);

// SDDMM
void sddmm_octet(verify::CtaModel& m, const verify::ShapeCorner& s,
                 const gpusim::DeviceConfig& hw);
void sddmm_wmma_warp(verify::CtaModel& m, const verify::ShapeCorner& s,
                     const gpusim::DeviceConfig& hw);
void sddmm_fpu_subwarp(verify::CtaModel& m, const verify::ShapeCorner& s,
                       const gpusim::DeviceConfig& hw);
void sddmm_csr_fine(verify::CtaModel& m, const verify::ShapeCorner& s,
                    const gpusim::DeviceConfig& hw);

// Non-registry kernels certified alongside (verifier extra set).
void sgemm_fpu(verify::CtaModel& m, const verify::ShapeCorner& s,
               const gpusim::DeviceConfig& hw);
void sparse_softmax(verify::CtaModel& m, const verify::ShapeCorner& s,
                    const gpusim::DeviceConfig& hw);
void dense_softmax(verify::CtaModel& m, const verify::ShapeCorner& s,
                   const gpusim::DeviceConfig& hw);

}  // namespace vsparse::kernels::contracts

// SDDMM with TCU-based 1-D Octet Tiling (§6.3 / §6.4).
//
// C = (A[MxK] * B[KxN]) ⊙ mask, A row-major, B column-major (the
// self-attention transpose, §4.1), mask and output in column-vector
// sparse encoding.
//
// Launch shape: ceil(M/V) x ceil(N/32) single-warp CTAs (§6.4); CTA t
// of a vector-row owns its nonzero vectors [32t, 32t+32) and exits
// early when the row has fewer — so the grid size matches the paper's
// [M/V]x[N/32] while only ~(1-sparsity) of the CTAs do work.
//
// Per K-stride of 64: the warp loads the V x 64 A fragment and, per
// 8-output-vector sub-step, the 64 x 8 B fragment — both with LDG.128
// generating 128 B coalesced transactions (guideline V), both straight
// to registers (guideline IV; neither operand is reused within the
// CTA).  Each octet owns a 16-wide K slice; at the end the four octets'
// partial sums are combined with warp shuffles.
//
// After the High Group Switch, each octet computes an (8x16)·(16x8)
// tile in four mma.m8n8k4 steps whose source rows/columns alternate
// between the low and high thread groups — the "inverted pattern".
// Three remedies (Fig. 19's mma(reg)/(shfl)/(arch)):
//   kExtraRegisters — second accumulator set, merged at the end
//                     (more registers -> lower occupancy),
//   kShuffle        — SHFL the sources before the inverted steps
//                     (extra SHFL issue slots),
//   kArchSwitch     — the proposed HMMA...SWITCH instruction (Fig. 15):
//                     the TCU swaps operand buses; no extra cost.
#pragma once

#include <cstdint>

#include "vsparse/formats/cvs.hpp"
#include "vsparse/formats/dense.hpp"
#include "vsparse/kernels/api.hpp"

namespace vsparse::kernels {

enum class InvertedPatternMode : std::uint8_t {
  kExtraRegisters,  ///< "mma (reg)"
  kShuffle,         ///< "mma (shfl)"
  kArchSwitch,      ///< "mma (arch)" — needs the Fig. 15 TCU extension
};

struct SddmmOctetParams {
  InvertedPatternMode mode = InvertedPatternMode::kExtraRegisters;
};

/// out_values receives the masked products in the mask's storage order
/// (mask.nnz_vectors * V halves).  Requires V in {2,4,8}.
KernelRun sddmm_octet(gpusim::Device& dev, const DenseDevice<half_t>& a,
                      const DenseDevice<half_t>& b, const CvsDevice& mask,
                      gpusim::Buffer<half_t>& out_values,
                      const SddmmOctetParams& params = {},
                      const gpusim::SimOptions& sim = {});

}  // namespace vsparse::kernels

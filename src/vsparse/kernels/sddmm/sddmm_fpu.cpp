#include "vsparse/kernels/sddmm/sddmm_fpu.hpp"

#include <algorithm>
#include <string>

#include "vsparse/common/math.hpp"
#include "vsparse/fp16/vec.hpp"

namespace vsparse::kernels {

namespace {

using gpusim::Cta;
using gpusim::Lanes;
using gpusim::Op;
using gpusim::Warp;

constexpr int kSubwarpSize = 8;
constexpr int kSubwarps = 4;
constexpr int kTileK = 64;  // K slice per stride; 8 per thread (LDG.128)

template <class T>
KernelRun sddmm_fpu_impl(gpusim::Device& dev, const DenseDevice<T>& a,
                         const DenseDevice<T>& b, const CvsDeviceT<T>& mask,
                         gpusim::Buffer<T>& out_values,
                         const SddmmFpuParams& params,
                         const gpusim::SimOptions& sim) {
  const int m = a.rows, k = a.cols, n = b.cols;
  const int v = mask.v;
  VSPARSE_CHECK(b.rows == k);
  VSPARSE_CHECK(mask.rows == m && mask.cols == n);
  VSPARSE_CHECK(a.layout == Layout::kRowMajor);
  VSPARSE_CHECK(b.layout == Layout::kColMajor);
  VSPARSE_CHECK(v == 1 || v == 2 || v == 4 || v == 8);
  VSPARSE_CHECK(out_values.size() ==
                mask.col_idx.size() * static_cast<std::size_t>(v));
  const int tile_n = params.tile_n;
  VSPARSE_CHECK(tile_n >= 1 && tile_n <= 8);  // CTA covers 4*tile_n <= 32

  const int vec_rows = mask.vec_rows();
  // CTA covers 4 subwarp tiles of one vector-row; grid sized for the
  // dense worst case with early exit, as the TCU kernels do.
  const int n_tiles = ceil_div(n, tile_n * kSubwarps);

  gpusim::LaunchConfig cfg;
  cfg.grid = vec_rows * n_tiles;
  cfg.cta_threads = 32;
  cfg.smem_bytes = 0;
  cfg.profile = {
      .name = std::string(sizeof(T) == 2 ? "sddmm_fpu_v" : "sddmm_fpu_f32_v") +
              std::to_string(v),
      // V x TileN fp32 partial sums per thread + operand buffers; V=8
      // spills (§6.1).
      .regs_per_thread = std::min(255, 28 + 2 * v * tile_n),
      .static_instrs = 2400 + 30 * v,  // Table 3 anchor: ~6% No-Instr
      .icache_pressure = 1.0,
      .ilp_factor = 1.0,
  };

  auto row_ptr = mask.row_ptr.host();
  auto mask_vals = mask.values.host();
  auto a_host = a.buf.host();
  auto b_host = b.buf.host();

  gpusim::KernelStats stats = gpusim::launch(dev, cfg, [&](Cta& cta) {
    const int vr = cta.cta_id() / n_tiles;
    const int tile = cta.cta_id() % n_tiles;
    Warp w = cta.warp(0);

    {
      // Two consecutive int32 row-pointer slots: a 4-byte-stride span.
      Lanes<std::int32_t> d{};
      w.ldg_span(mask.row_ptr.addr(static_cast<std::size_t>(vr)), 4, d, 0x3u);
      w.count(Op::kImad, 4);
    }
    const std::int32_t begin = row_ptr[static_cast<std::size_t>(vr)];
    const std::int32_t end = row_ptr[static_cast<std::size_t>(vr) + 1];
    const std::int32_t j0 = begin + tile * tile_n * kSubwarps;
    if (j0 >= end) return;
    const int jcnt =
        std::min<std::int32_t>(tile_n * kSubwarps, end - j0);

    // Column indices for the CTA's vectors (one coalesced LDG.32):
    // consecutive int32 slots, an affine span with a prefix mask.
    std::int32_t cols[32 * kSubwarps];
    {
      const int nl = std::min(jcnt, 32);
      const std::uint32_t msk = nl >= 32 ? 0xFFFFFFFFu : (1u << nl) - 1u;
      Lanes<std::int32_t> d{};
      w.ldg_span(mask.col_idx.addr(static_cast<std::size_t>(j0)), 4, d, msk);
      for (int l = 0; l < nl; ++l) {
        cols[l] = d[static_cast<std::size_t>(l)];
      }
    }

    // acc[subwarp][local j][t] fp32 partial sums (per-thread V x TileN
    // in the real kernel; threads' K slices are summed at the end).
    float acc[kSubwarps][32][8] = {};

    for (int k0 = 0; k0 < k; k0 += kTileK) {
      const int kcnt = std::min(kTileK, k - k0);
      // ---- A rows: each thread loads its 8-wide K slice of each of
      // the V rows (redundantly per subwarp — no smem, §6.1).
      // Lane (8s + t) reads the 8-wide slice at k0 + 8t of the same A
      // row: four 8-lane segments sharing one base (the redundant
      // per-subwarp broadcast), each striding the row.
      const int nt = std::min(kSubwarpSize, ceil_div(kcnt, 8));
      const std::uint32_t seg_prefix = (nt >= 8 ? 0xFFu : (1u << nt) - 1u);
      const std::uint32_t kmask = seg_prefix * 0x01010101u;  // x4 segments
      for (int t = 0; t < v; ++t) {
        std::uint64_t gbase[kSubwarps];
        for (int s = 0; s < kSubwarps; ++s) {
          gbase[s] = a.addr(vr * v + t, k0);
        }
        w.count(Op::kImad, 1);
        if constexpr (sizeof(T) == 2) {
          Lanes<std::array<T, 8>> d{};
          w.ldg_span(gbase, kSubwarps, kSubwarpSize, 16, d, kmask);
        } else {
          // fp32: 8 floats = 32 B -> two LDG.128.
          Lanes<std::array<T, 4>> d{};
          w.ldg_span(gbase, kSubwarps, kSubwarpSize, 32, d, kmask);
          for (auto& x : gbase) x += 16;
          w.ldg_span(gbase, kSubwarps, kSubwarpSize, 32, d, kmask);
        }
      }
      // ---- per output vector: B column slices + MACs ----------------
      for (int lj = 0; lj < tile_n; ++lj) {
        // All four subwarps issue together: lane (8s+t) loads column
        // cols[s*tile_n + lj], k slice 8t — a four-segment span whose
        // bases are the gathered column starts, each segment striding
        // its B column; segments past jcnt drop out of the mask.
        std::uint64_t gbase[kSubwarps] = {};
        std::uint32_t msk = 0;
        for (int s = 0; s < kSubwarps; ++s) {
          const int j = s * tile_n + lj;
          if (j >= jcnt) continue;
          gbase[s] = b.addr(k0, cols[j]);
          msk |= seg_prefix << (kSubwarpSize * s);
        }
        // Per-column address arithmetic on the gathered indices (the
        // dominant "Wait" source the paper profiles for this kernel).
        w.count(Op::kImad, 6);
        w.count(Op::kIadd3, 2);
        if (msk == 0) continue;
        if constexpr (sizeof(T) == 2) {
          Lanes<std::array<T, 8>> d{};
          w.ldg_span(gbase, kSubwarps, kSubwarpSize, 16, d, msk);
        } else {
          Lanes<std::array<T, 4>> d{};
          w.ldg_span(gbase, kSubwarps, kSubwarpSize, 32, d, msk);
          std::uint64_t gb2[kSubwarps];
          for (int s = 0; s < kSubwarps; ++s) gb2[s] = gbase[s] + 16;
          w.ldg_span(gb2, kSubwarps, kSubwarpSize, 32, d, msk);
        }
        // MACs: 8 per thread per (v, lj); fp16 multiplies pair into
        // HMUL2, the fp32 accumulation stays scalar FADD.
        if constexpr (sizeof(T) == 2) {
          w.count(Op::kHfma, static_cast<std::uint64_t>(4 * v));
          w.count(Op::kFfma, static_cast<std::uint64_t>(8 * v));
        } else {
          w.count(Op::kFfma, static_cast<std::uint64_t>(8 * v));
        }
        // Functional math for all active (s, j).
        for (int s = 0; s < kSubwarps; ++s) {
          const int j = s * tile_n + lj;
          if (j >= jcnt) continue;
          const std::int32_t col = cols[j];
          for (int t = 0; t < v; ++t) {
            float sum = 0.0f;
            const T* arow = &a_host[static_cast<std::size_t>(vr * v + t) *
                                        static_cast<std::size_t>(a.ld) +
                                    static_cast<std::size_t>(k0)];
            const T* bcol = &b_host[static_cast<std::size_t>(col) *
                                        static_cast<std::size_t>(b.ld) +
                                    static_cast<std::size_t>(k0)];
            for (int kk = 0; kk < kcnt; ++kk) {
              sum +=
                  static_cast<float>(arow[kk]) * static_cast<float>(bcol[kk]);
            }
            acc[s][lj][t] += sum;
          }
        }
      }
    }

    // ---- subwarp butterfly reduction: 3 rounds per partial sum -------
    w.count(Op::kShfl, static_cast<std::uint64_t>(3 * v * tile_n));
    w.count(Op::kFfma, static_cast<std::uint64_t>(3 * v * tile_n));

    // ---- apply mask and write back ------------------------------------
    if constexpr (sizeof(T) == 2) {
      w.count(Op::kCvt, static_cast<std::uint64_t>(v));
    }
    for (int pass = 0; pass < ceil_div(jcnt, 32); ++pass) {
      // The output vectors are consecutive: an affine span of stride
      // v*sizeof(T) with a prefix mask.
      const int nl = std::min(32, jcnt - pass * 32);
      const std::uint32_t msk = nl >= 32 ? 0xFFFFFFFFu : (1u << nl) - 1u;
      const std::uint64_t obase = out_values.addr(
          static_cast<std::size_t>(j0 + pass * 32) *
          static_cast<std::size_t>(v));
      Lanes<std::array<T, 8>> frag{};
      for (int lane = 0; lane < nl; ++lane) {
        const int l = pass * 32 + lane;
        const int s = l / tile_n;
        const int lj = l % tile_n;
        for (int t = 0; t < v; ++t) {
          const float mv = static_cast<float>(
              mask_vals[static_cast<std::size_t>(j0 + l) *
                            static_cast<std::size_t>(v) +
                        static_cast<std::size_t>(t)]);
          frag[static_cast<std::size_t>(lane)][static_cast<std::size_t>(t)] =
              T(acc[s][lj][t] * mv);
        }
      }
      // Width V elements per lane.
      const auto vbytes = static_cast<std::uint32_t>(v * sizeof(T));
      switch (static_cast<int>(v * sizeof(T))) {
        case 2: {
          Lanes<std::array<std::byte, 2>> d{};
          for (int l = 0; l < 32; ++l)
            std::memcpy(d[static_cast<std::size_t>(l)].data(),
                        frag[static_cast<std::size_t>(l)].data(), 2);
          w.stg_span(obase, vbytes, d, msk);
          break;
        }
        case 4: {
          Lanes<std::array<std::byte, 4>> d{};
          for (int l = 0; l < 32; ++l)
            std::memcpy(d[static_cast<std::size_t>(l)].data(),
                        frag[static_cast<std::size_t>(l)].data(), 4);
          w.stg_span(obase, vbytes, d, msk);
          break;
        }
        case 8: {
          Lanes<std::array<std::byte, 8>> d{};
          for (int l = 0; l < 32; ++l)
            std::memcpy(d[static_cast<std::size_t>(l)].data(),
                        frag[static_cast<std::size_t>(l)].data(), 8);
          w.stg_span(obase, vbytes, d, msk);
          break;
        }
        case 16: {
          Lanes<std::array<std::byte, 16>> d{};
          for (int l = 0; l < 32; ++l)
            std::memcpy(d[static_cast<std::size_t>(l)].data(),
                        frag[static_cast<std::size_t>(l)].data(), 16);
          w.stg_span(obase, vbytes, d, msk);
          break;
        }
        default: {  // fp32 V=8: two 16 B stores at stride 32
          if constexpr (sizeof(T) == 4) {
            Lanes<std::array<std::byte, 16>> lo{}, hi{};
            for (int l = 0; l < 32; ++l) {
              std::memcpy(lo[static_cast<std::size_t>(l)].data(),
                          frag[static_cast<std::size_t>(l)].data(), 16);
              std::memcpy(hi[static_cast<std::size_t>(l)].data(),
                          reinterpret_cast<const std::byte*>(
                              frag[static_cast<std::size_t>(l)].data()) +
                              16,
                          16);
            }
            w.stg_span(obase, vbytes, lo, msk);
            w.stg_span(obase + 16, vbytes, hi, msk);
          }
          break;
        }
      }
    }
  }, sim);

  return {stats, cfg};
}

}  // namespace

KernelRun sddmm_fpu_subwarp(gpusim::Device& dev, const DenseDevice<half_t>& a,
                            const DenseDevice<half_t>& b,
                            const CvsDevice& mask,
                            gpusim::Buffer<half_t>& out_values,
                            const SddmmFpuParams& params,
                            const gpusim::SimOptions& sim) {
  return sddmm_fpu_impl<half_t>(dev, a, b, mask, out_values, params, sim);
}

KernelRun sddmm_fpu_subwarp_f32(gpusim::Device& dev,
                                const DenseDevice<float>& a,
                                const DenseDevice<float>& b,
                                const CvsDeviceT<float>& mask,
                                gpusim::Buffer<float>& out_values,
                                const SddmmFpuParams& params,
                                const gpusim::SimOptions& sim) {
  return sddmm_fpu_impl<float>(dev, a, b, mask, out_values, params, sim);
}

}  // namespace vsparse::kernels

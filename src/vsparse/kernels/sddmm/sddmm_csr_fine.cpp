#include "vsparse/kernels/sddmm/sddmm_csr_fine.hpp"

#include <algorithm>
#include <string>

#include "vsparse/common/math.hpp"

namespace vsparse::kernels {

namespace {

using gpusim::Cta;
using gpusim::Lanes;
using gpusim::Op;
using gpusim::Warp;

template <class T>
KernelRun sddmm_csr_fine_impl(gpusim::Device& dev, const DenseDevice<T>& a,
                              const DenseDevice<T>& b,
                              const CvsDeviceT<T>& mask,
                              gpusim::Buffer<T>& out_values,
                              const gpusim::SimOptions& sim) {
  const int m = a.rows, k = a.cols, n = b.cols;
  VSPARSE_CHECK(mask.v == 1);
  VSPARSE_CHECK(b.rows == k);
  VSPARSE_CHECK(mask.rows == m && mask.cols == n);
  VSPARSE_CHECK(a.layout == Layout::kRowMajor);
  VSPARSE_CHECK(b.layout == Layout::kColMajor);
  VSPARSE_CHECK(out_values.size() == mask.col_idx.size());

  gpusim::LaunchConfig cfg;
  cfg.grid = m;  // one warp per output row
  cfg.cta_threads = 32;
  cfg.smem_bytes = 0;
  cfg.profile = {
      .name = sizeof(T) == 2 ? "sddmm_csr_fine_half" : "sddmm_csr_fine_f32",
      .regs_per_thread = 36,
      .static_instrs = 300,
      .icache_pressure = 1.0,
      .ilp_factor = 1.3,  // serialized per-nonzero chain
  };

  auto row_ptr = mask.row_ptr.host();
  auto col_host = mask.col_idx.host();
  auto mask_vals = mask.values.host();

  gpusim::KernelStats stats = gpusim::launch(dev, cfg, [&](Cta& cta) {
    const int row = cta.cta_id();
    Warp w = cta.warp(0);
    {
      // Two consecutive int32 row-pointer slots: a 4-byte-stride span.
      Lanes<std::int32_t> d{};
      w.ldg_span(mask.row_ptr.addr(static_cast<std::size_t>(row)), 4, d,
                 0x3u);
      w.count(Op::kImad, 2);
    }
    const std::int32_t begin = row_ptr[static_cast<std::size_t>(row)];
    const std::int32_t end = row_ptr[static_cast<std::size_t>(row) + 1];

    const int k_chunks = ceil_div(k, 32);
    for (std::int32_t j = begin; j < end; ++j) {
      const std::int32_t col = col_host[static_cast<std::size_t>(j)];
      // Column index (single-lane load: a one-lane span).
      {
        Lanes<std::int32_t> d{};
        w.ldg_span(mask.col_idx.addr(static_cast<std::size_t>(j)), 4, d,
                   0x1u);
        w.count(Op::kImad, 1);
      }
      float dot = 0.0f;
      for (int c = 0; c < k_chunks; ++c) {
        // Lane l covers k = 32c + l: the A row and the col-major B
        // column are both element-contiguous — two affine spans.
        const int nl = std::min(32, k - 32 * c);
        const std::uint32_t msk = nl >= 32 ? 0xFFFFFFFFu : (1u << nl) - 1u;
        Lanes<T> av{}, bv{};
        w.ldg_span(a.addr(row, 32 * c), sizeof(T), av, msk);
        w.ldg_span(b.addr(32 * c, col), sizeof(T), bv, msk);
        w.count(Op::kFfma, 1);
        for (int lane = 0; lane < nl; ++lane) {
          dot += static_cast<float>(av[static_cast<std::size_t>(lane)]) *
                 static_cast<float>(bv[static_cast<std::size_t>(lane)]);
        }
      }
      // Butterfly reduction across the warp.
      w.count(Op::kShfl, 5);
      w.count(Op::kFfma, 5);
      // Mask multiply + single-lane store.
      const float mv =
          static_cast<float>(mask_vals[static_cast<std::size_t>(j)]);
      Lanes<T> out{};
      out[0] = T(dot * mv);
      w.count(Op::kFfma, 1);
      w.stg_span(out_values.addr(static_cast<std::size_t>(j)), sizeof(T),
                 out, 0x1u);
    }
  }, sim);

  return {stats, cfg};
}

}  // namespace

KernelRun sddmm_csr_fine(gpusim::Device& dev, const DenseDevice<half_t>& a,
                         const DenseDevice<half_t>& b, const CvsDevice& mask,
                         gpusim::Buffer<half_t>& out_values,
                         const gpusim::SimOptions& sim) {
  return sddmm_csr_fine_impl<half_t>(dev, a, b, mask, out_values, sim);
}

KernelRun sddmm_csr_fine_f32(gpusim::Device& dev, const DenseDevice<float>& a,
                             const DenseDevice<float>& b,
                             const CvsDeviceT<float>& mask,
                             gpusim::Buffer<float>& out_values,
                             const gpusim::SimOptions& sim) {
  return sddmm_csr_fine_impl<float>(dev, a, b, mask, out_values, sim);
}

}  // namespace vsparse::kernels

#include "vsparse/kernels/sddmm/sddmm_wmma.hpp"

#include <algorithm>
#include <string>

#include "vsparse/common/math.hpp"
#include "vsparse/fp16/vec.hpp"

namespace vsparse::kernels {

namespace {

using gpusim::AddrLanes;
using gpusim::Cta;
using gpusim::Lanes;
using gpusim::Op;
using gpusim::Warp;

constexpr int kTileN = 32;  // must be a multiple of 32 (§6.2)
constexpr int kTileK = 64;

}  // namespace

KernelRun sddmm_wmma_warp(gpusim::Device& dev, const DenseDevice<half_t>& a,
                          const DenseDevice<half_t>& b, const CvsDevice& mask,
                          gpusim::Buffer<half_t>& out_values,
                          const gpusim::SimOptions& sim) {
  const int m = a.rows, k = a.cols, n = b.cols;
  const int v = mask.v;
  VSPARSE_CHECK(b.rows == k);
  VSPARSE_CHECK(mask.rows == m && mask.cols == n);
  VSPARSE_CHECK(a.layout == Layout::kRowMajor);
  VSPARSE_CHECK(b.layout == Layout::kColMajor);
  VSPARSE_CHECK(v == 2 || v == 4 || v == 8);
  VSPARSE_CHECK(out_values.size() ==
                mask.col_idx.size() * static_cast<std::size_t>(v));

  const int vec_rows = mask.vec_rows();
  const int n_tiles = ceil_div(n, kTileN);

  gpusim::LaunchConfig cfg;
  cfg.grid = vec_rows * n_tiles;
  cfg.cta_threads = 32;
  // The classic mapping coalesces its 16 B-grain fragments through
  // shared memory (§6.2: achieving guideline V here violates IV) —
  // the source of its Short Scoreboard stalls (Table 3).
  cfg.smem_bytes = 8192;
  cfg.profile = {
      .name = "sddmm_wmma_v" + std::to_string(v),
      // The LHS fragment is replicated across the four thread groups
      // (Fig. 13), costing ~4x its registers (§6.2).
      .regs_per_thread = 32 + 8 * v,
      .static_instrs = 420 + 8 * v,
      .icache_pressure = 1.0,
      .ilp_factor = 0.8,
  };

  auto row_ptr = mask.row_ptr.host();
  auto mask_vals = mask.values.host();
  auto a_host = a.buf.host();
  auto b_host = b.buf.host();

  gpusim::KernelStats stats = gpusim::launch(dev, cfg, [&](Cta& cta) {
    const int vr = cta.cta_id() / n_tiles;
    const int tile = cta.cta_id() % n_tiles;
    Warp w = cta.warp(0);

    {
      // Two consecutive int32 row-pointer slots: a 4-byte-stride span.
      Lanes<std::int32_t> d{};
      w.ldg_span(mask.row_ptr.addr(static_cast<std::size_t>(vr)), 4, d, 0x3u);
      w.count(Op::kImad, 3);
    }
    const std::int32_t begin = row_ptr[static_cast<std::size_t>(vr)];
    const std::int32_t end = row_ptr[static_cast<std::size_t>(vr) + 1];
    const std::int32_t j0 = begin + tile * kTileN;
    if (j0 >= end) return;
    const int jcnt = std::min<std::int32_t>(kTileN, end - j0);

    std::int32_t cols[kTileN];
    {
      // Consecutive int32 slots: an affine span with a prefix mask.
      const std::uint32_t msk =
          jcnt >= 32 ? 0xFFFFFFFFu : (1u << jcnt) - 1u;
      Lanes<std::int32_t> d{};
      w.ldg_span(mask.col_idx.addr(static_cast<std::size_t>(j0)), 4, d, msk);
      for (int l = 0; l < jcnt; ++l) cols[l] = d[static_cast<std::size_t>(l)];
    }

    float acc[kTileN][8] = {};

    for (int k0 = 0; k0 < k; k0 += kTileK) {
      const int kcnt = std::min(kTileK, k - k0);

      // ---- LHS fragment with the classic layout: each lane loads 8
      // contiguous halves, but lanes of a thread group hold the SAME
      // 16-element row slices (4 copies across groups) and consecutive
      // lanes sit 16 elements apart -> 16 B coalescing (§6.2).
      // Lane 8g+r reads k slice 16*(r % 4): eight 4-lane segments (two
      // per thread group) that all share the row base and stride 32 B —
      // the replication is the repeated-segment form of the span.
      const std::uint32_t kprefix =
          kcnt >= 64 ? 0xFu : (1u << ceil_div(kcnt, 16)) - 1u;
      std::uint32_t amask = 0;
      for (int seg = 0; seg < 8; ++seg) amask |= kprefix << (4 * seg);
      for (int t = 0; t < v; ++t) {
        std::uint64_t gbase[8];
        for (int seg = 0; seg < 8; ++seg) {
          gbase[seg] = a.addr(vr * v + t, k0);
        }
        Lanes<half8> d{};
        w.count(Op::kImad, 1);
        w.ldg_span(gbase, 8, 4, 32, d, amask);
      }

      // ---- RHS fragment (the 32 B columns), 16 B coalesced ----------
      // Per 4 wmma k-chunks: each lane loads an 8-half piece of one
      // column; columns are scattered by the sparsity pattern.
      for (int pass = 0; pass < 8; ++pass) {
        AddrLanes addr{};
        Lanes<half8> d{};
        std::uint32_t msk = 0;
        for (int lane = 0; lane < 32; ++lane) {
          const int j = 8 * (pass % 4) + lane % 8;
          const int kk = 8 * (lane / 8) + 32 * (pass / 4);
          if (j >= jcnt || kk >= kcnt) continue;
          addr[static_cast<std::size_t>(lane)] = b.addr(k0 + kk, cols[j]);
          msk |= 1u << lane;
        }
        w.count(Op::kImad, 1);
        w.ldg(addr, d, msk);
        // Round-trip through smem to fix up the 16 B-coalesced layout;
        // the staging slots are consecutive 16 B chunks — affine spans.
        w.sts_span(0, 16, d, msk);
        Lanes<half8> d2{};
        w.lds_span(0, 16, d2, msk);
      }

      // ---- 4 zero-padded wmma.m8n32k16 per K stride ------------------
      // Executed regardless of jcnt (the §6.2 residue overhead).
      w.count(Op::kHmma, 64);
      for (int j = 0; j < jcnt; ++j) {
        const std::int32_t col = cols[j];
        for (int t = 0; t < v; ++t) {
          float sum = 0.0f;
          const half_t* arow = &a_host[static_cast<std::size_t>(vr * v + t) *
                                           static_cast<std::size_t>(a.ld) +
                                       static_cast<std::size_t>(k0)];
          const half_t* bcol = &b_host[static_cast<std::size_t>(col) *
                                           static_cast<std::size_t>(b.ld) +
                                       static_cast<std::size_t>(k0)];
          for (int kk = 0; kk < kcnt; ++kk) {
            sum += static_cast<float>(arow[kk]) * static_cast<float>(bcol[kk]);
          }
          acc[j][t] += sum;
        }
      }
    }

    // ---- mask, convert, write back ------------------------------------
    w.count(Op::kHfma, static_cast<std::uint64_t>(v));
    w.count(Op::kCvt, static_cast<std::uint64_t>(v));
    {
      // One output vector per lane, contiguous in the CVS value array:
      // an affine span of stride V*2 with a prefix mask.
      const std::uint64_t obase = out_values.addr(
          static_cast<std::size_t>(j0) * static_cast<std::size_t>(v));
      const auto ostride = static_cast<std::uint32_t>(v) * 2u;
      const std::uint32_t msk =
          jcnt >= 32 ? 0xFFFFFFFFu : (1u << jcnt) - 1u;
      const auto fill = [&](auto& frag) {
        for (int l = 0; l < jcnt; ++l) {
          for (int t = 0; t < v; ++t) {
            const float mv = static_cast<float>(
                mask_vals[static_cast<std::size_t>(j0 + l) *
                              static_cast<std::size_t>(v) +
                          static_cast<std::size_t>(t)]);
            frag[static_cast<std::size_t>(l)][t] = half_t(acc[l][t] * mv);
          }
        }
      };
      switch (v) {
        case 2: {
          Lanes<half2> frag{};
          fill(frag);
          w.stg_span(obase, ostride, frag, msk);
          break;
        }
        case 4: {
          Lanes<half4> frag{};
          fill(frag);
          w.stg_span(obase, ostride, frag, msk);
          break;
        }
        default: {
          Lanes<half8> frag{};
          fill(frag);
          w.stg_span(obase, ostride, frag, msk);
          break;
        }
      }
    }
  }, sim);

  return {stats, cfg};
}

}  // namespace vsparse::kernels

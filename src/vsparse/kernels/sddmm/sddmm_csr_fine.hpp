// Fine-grained CSR SDDMM — re-implementation of cusparseSDDMM (the
// Fig. 4 baseline; the library offers it in single or higher precision
// only, but we provide half too for the §3.1 comparison).
//
// One warp per output row; per nonzero, the 32 lanes split the K
// dimension, each computing a strided partial dot product, combined
// with a 5-round butterfly shuffle.  The serialized per-nonzero walk
// plus full-warp reduction per output element is why the library needs
// > 95% sparsity to pay off.
#pragma once

#include "vsparse/formats/cvs.hpp"
#include "vsparse/formats/dense.hpp"
#include "vsparse/kernels/api.hpp"

namespace vsparse::kernels {

/// V must be 1.  A row-major, B column-major.
KernelRun sddmm_csr_fine(gpusim::Device& dev, const DenseDevice<half_t>& a,
                         const DenseDevice<half_t>& b, const CvsDevice& mask,
                         gpusim::Buffer<half_t>& out_values,
                         const gpusim::SimOptions& sim = {});

KernelRun sddmm_csr_fine_f32(gpusim::Device& dev, const DenseDevice<float>& a,
                             const DenseDevice<float>& b,
                             const CvsDeviceT<float>& mask,
                             gpusim::Buffer<float>& out_values,
                             const gpusim::SimOptions& sim = {});

}  // namespace vsparse::kernels

// SDDMM with FPU-based 1-D Subwarp Tiling — the baseline extended from
// Sputnik (§6.1, Fig. 12a).
//
// Each subwarp of 8 threads owns a 1-D tile of TileN nonzero output
// vectors of one vector-row; thread t covers the K slice
// [8t, 8t+8) of each TileK = 64 stride, loading its A-row and B-column
// segments with LDG.128 (guidelines IV & V hold).  Partial sums are
// combined across the subwarp with three butterfly shuffle rounds.
//
// The §6.1 pathologies are visible in the model: every thread holds
// V x TileN fp32 partial sums (register pressure / spilling at V=8),
// the unrolled inner loops blow up the SASS size, and all four
// subwarps of a warp redundantly re-load the same A rows (no smem).
#pragma once

#include "vsparse/formats/cvs.hpp"
#include "vsparse/formats/dense.hpp"
#include "vsparse/kernels/api.hpp"

namespace vsparse::kernels {

struct SddmmFpuParams {
  int tile_n = 8;  ///< nonzero vectors per subwarp (CTA covers 4x this)
};

/// out_values receives the masked products in mask storage order.
/// V in {1,2,4,8}; half precision.
KernelRun sddmm_fpu_subwarp(gpusim::Device& dev, const DenseDevice<half_t>& a,
                            const DenseDevice<half_t>& b,
                            const CvsDevice& mask,
                            gpusim::Buffer<half_t>& out_values,
                            const SddmmFpuParams& params = {},
                            const gpusim::SimOptions& sim = {});

/// Single-precision variant (Fig. 4's "sputnik" SDDMM panels).
KernelRun sddmm_fpu_subwarp_f32(gpusim::Device& dev,
                                const DenseDevice<float>& a,
                                const DenseDevice<float>& b,
                                const CvsDeviceT<float>& mask,
                                gpusim::Buffer<float>& out_values,
                                const SddmmFpuParams& params = {},
                                const gpusim::SimOptions& sim = {});

}  // namespace vsparse::kernels

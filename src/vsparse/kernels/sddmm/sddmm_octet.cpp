#include "vsparse/kernels/sddmm/sddmm_octet.hpp"

#include <algorithm>
#include <string>

#include "vsparse/common/math.hpp"
#include "vsparse/fp16/vec.hpp"

namespace vsparse::kernels {

namespace {

using gpusim::Cta;
using gpusim::Lanes;
using gpusim::Op;
using gpusim::Warp;

constexpr int kTileN = 32;  // nonzero output vectors per CTA (§6.4)
constexpr int kTileK = 64;  // K stride (§6.4)

const char* mode_suffix(InvertedPatternMode mode) {
  switch (mode) {
    case InvertedPatternMode::kExtraRegisters:
      return "reg";
    case InvertedPatternMode::kShuffle:
      return "shfl";
    case InvertedPatternMode::kArchSwitch:
      return "arch";
  }
  return "?";
}

}  // namespace

KernelRun sddmm_octet(gpusim::Device& dev, const DenseDevice<half_t>& a,
                      const DenseDevice<half_t>& b, const CvsDevice& mask,
                      gpusim::Buffer<half_t>& out_values,
                      const SddmmOctetParams& params,
                      const gpusim::SimOptions& sim) {
  const int m = a.rows, k = a.cols, n = b.cols;
  const int v = mask.v;
  VSPARSE_CHECK(b.rows == k);
  VSPARSE_CHECK(mask.rows == m && mask.cols == n);
  VSPARSE_CHECK(a.layout == Layout::kRowMajor);
  VSPARSE_CHECK_MSG(b.layout == Layout::kColMajor,
                    "sddmm expects a column-major RHS (§4.1)");
  VSPARSE_CHECK(v == 2 || v == 4 || v == 8);
  VSPARSE_CHECK(out_values.size() ==
                mask.col_idx.size() * static_cast<std::size_t>(v));

  const int vec_rows = mask.vec_rows();
  const int n_tiles = ceil_div(n, kTileN);

  gpusim::LaunchConfig cfg;
  cfg.grid = vec_rows * n_tiles;
  cfg.cta_threads = 32;
  cfg.smem_bytes = 0;  // both operands go straight to registers
  const bool reg_mode = params.mode == InvertedPatternMode::kExtraRegisters;
  const bool shfl_mode = params.mode == InvertedPatternMode::kShuffle;
  cfg.profile = {
      .name = std::string("sddmm_octet_") + mode_suffix(params.mode) + "_v" +
              std::to_string(v),
      // mma(arch) uses ~33% fewer registers than mma(reg) (§7.3.2).
      .regs_per_thread = reg_mode ? 24 + 8 * v : 24 + 5 * v,
      .static_instrs = 380 + 8 * v + (shfl_mode ? 64 : 0),
      .icache_pressure = 1.0,
      .ilp_factor = 0.7,
  };

  auto row_ptr = mask.row_ptr.host();
  auto mask_vals = mask.values.host();
  auto a_host = a.buf.host();
  auto b_host = b.buf.host();

  gpusim::KernelStats stats = gpusim::launch(dev, cfg, [&](Cta& cta) {
    const int vr = cta.cta_id() / n_tiles;
    const int tile = cta.cta_id() % n_tiles;
    Warp w = cta.warp(0);

    {
      // Two consecutive int32 row-pointer slots: a 4-byte-stride span.
      Lanes<std::int32_t> d{};
      w.ldg_span(mask.row_ptr.addr(static_cast<std::size_t>(vr)), 4, d, 0x3u);
      w.count(Op::kImad, 3);
    }
    const std::int32_t begin = row_ptr[static_cast<std::size_t>(vr)];
    const std::int32_t end = row_ptr[static_cast<std::size_t>(vr) + 1];
    const std::int32_t j0 = begin + tile * kTileN;
    if (j0 >= end) return;  // early-exit CTA (most of them at high sparsity)
    const int jcnt = std::min<std::int32_t>(kTileN, end - j0);

    // The tile's 32 column indices (one coalesced LDG.32): consecutive
    // int32 slots, an affine span with a prefix mask.
    std::int32_t cols[kTileN];
    {
      const std::uint32_t msk =
          jcnt >= 32 ? 0xFFFFFFFFu : (1u << jcnt) - 1u;
      Lanes<std::int32_t> d{};
      w.ldg_span(mask.col_idx.addr(static_cast<std::size_t>(j0)), 4, d, msk);
      w.count(Op::kImad, 2);
      for (int l = 0; l < jcnt; ++l) {
        cols[l] = d[static_cast<std::size_t>(l)];
      }
    }

    // fp32 partial sums: acc[j][t] for the 32 output vectors.
    float acc[kTileN][8] = {};

    for (int k0 = 0; k0 < k; k0 += kTileK) {
      const int kcnt = std::min(kTileK, k - k0);

      // ---- A fragment: V rows x 64 ks, LDG.128 straight to registers.
      // 8 lanes per row; V = 8 needs two passes.  Each pass is a
      // four-segment span: segment s sweeps row vr*v + (4*pass + s) at
      // 16 B stride; rows past V drop whole segments, K past kcnt a
      // per-segment prefix.
      const std::uint32_t kprefix =
          kcnt >= 64 ? 0xFFu : (1u << ceil_div(kcnt, 8)) - 1u;
      for (int pass = 0; pass < ceil_div(v * 8, 32); ++pass) {
        std::uint64_t gbase[4] = {};
        Lanes<half8> d{};
        std::uint32_t msk = 0;
        for (int seg = 0; seg < 4; ++seg) {
          const int t = pass * 4 + seg;
          if (t >= v) continue;
          gbase[seg] = a.addr(vr * v + t, k0);
          msk |= kprefix << (8 * seg);
        }
        w.count(Op::kImad, 1);
        w.ldg_span(gbase, 4, 8, 16, d, msk);
      }

      // ---- 4 sub-steps of 8 output vectors each --------------------
      for (int ss = 0; ss < 4; ++ss) {
        const int jbase = 8 * ss;
        if (jbase >= jcnt) break;
        // B fragment: 8 columns x 64 ks, two LDG.128 (8 128 B
        // transactions — each column is contiguous in the col-major B).
        // Four-segment gather span per pass: segment bases are the
        // gathered column starts, 16 B lane stride down each column.
        for (int pass = 0; pass < 2; ++pass) {
          std::uint64_t gbase[4] = {};
          Lanes<half8> d{};
          std::uint32_t msk = 0;
          for (int seg = 0; seg < 4; ++seg) {
            const int j = jbase + pass * 4 + seg;
            if (j >= jcnt) continue;
            gbase[seg] = b.addr(k0, cols[j]);
            msk |= kprefix << (8 * seg);
          }
          w.count(Op::kImad, 1);
          w.ldg_span(gbase, 4, 8, 16, d, msk);
        }
        // Four mma.m8n8k4 per sub-step: each octet owns a 16-wide K
        // slice of the (8 x 64)·(64 x V) switched product.
        w.count(Op::kHmma, 16);
        if (shfl_mode) {
          // Source operands of the inverted steps are exchanged between
          // thread groups i and i+4 before issue.
          w.count(Op::kShfl, 8);
        }
        // Functional math (operands were loaded above; values are
        // identical to the fragment contents).
        for (int j = jbase; j < std::min(jbase + 8, jcnt); ++j) {
          const std::int32_t col = cols[j];
          for (int t = 0; t < v; ++t) {
            float sum = 0.0f;
            const half_t* arow =
                &a_host[static_cast<std::size_t>(vr * v + t) *
                            static_cast<std::size_t>(a.ld) +
                        static_cast<std::size_t>(k0)];
            const half_t* bcol =
                &b_host[static_cast<std::size_t>(col) *
                            static_cast<std::size_t>(b.ld) +
                        static_cast<std::size_t>(k0)];
            for (int kk = 0; kk < kcnt; ++kk) {
              sum += static_cast<float>(arow[kk]) * static_cast<float>(bcol[kk]);
            }
            acc[j][t] += sum;
          }
        }
      }
    }

    // ---- combine the octet partial sums with warp shuffles ----------
    w.count(Op::kShfl, static_cast<std::uint64_t>(2 * v));
    w.count(Op::kFfma, static_cast<std::uint64_t>(2 * v));
    if (reg_mode) {
      // Merge the second accumulator set kept for the inverted steps.
      w.count(Op::kFfma, static_cast<std::uint64_t>(v));
    }

    // ---- apply the mask values and write back -----------------------
    w.count(Op::kHfma, static_cast<std::uint64_t>(v));
    w.count(Op::kCvt, static_cast<std::uint64_t>(v));
    {
      // One output vector per lane: width V*2 bytes, contiguous in the
      // CVS value array (perfectly coalesced) — an affine span of
      // stride V*2 with a prefix mask.
      const std::uint64_t obase = out_values.addr(
          static_cast<std::size_t>(j0) * static_cast<std::size_t>(v));
      const auto ostride = static_cast<std::uint32_t>(v) * 2u;
      const std::uint32_t msk =
          jcnt >= 32 ? 0xFFFFFFFFu : (1u << jcnt) - 1u;
      const auto fill = [&](auto& frag) {
        for (int l = 0; l < jcnt; ++l) {
          for (int t = 0; t < v; ++t) {
            const float mv = static_cast<float>(
                mask_vals[static_cast<std::size_t>(j0 + l) *
                              static_cast<std::size_t>(v) +
                          static_cast<std::size_t>(t)]);
            frag[static_cast<std::size_t>(l)][t] = half_t(acc[l][t] * mv);
          }
        }
      };
      switch (v) {
        case 2: {
          Lanes<half2> frag{};
          fill(frag);
          w.stg_span(obase, ostride, frag, msk);
          break;
        }
        case 4: {
          Lanes<half4> frag{};
          fill(frag);
          w.stg_span(obase, ostride, frag, msk);
          break;
        }
        default: {
          Lanes<half8> frag{};
          fill(frag);
          w.stg_span(obase, ostride, frag, msk);
          break;
        }
      }
    }
  }, sim);

  return {stats, cfg};
}

}  // namespace vsparse::kernels

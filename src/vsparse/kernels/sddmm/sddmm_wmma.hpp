// SDDMM with TCU-based 1-D Warp Tiling (§6.2) — the classic
// wmma.m8n32k16 mapping, used as the TCU baseline in Fig. 19 ("wmma";
// structured-sparse SDDMM is not offered by off-the-shelf libraries).
//
// Good kernel/compute efficiency (small SASS, one partial-sum copy),
// but the classic fragment layout of Fig. 13 degrades memory access to
// 16 B coalescing for both operands, copies the LHS fragment four times
// (register pressure), and forces TileN to a multiple of 32 with
// zero-padded residue wmma executions.
#pragma once

#include "vsparse/formats/cvs.hpp"
#include "vsparse/formats/dense.hpp"
#include "vsparse/kernels/api.hpp"

namespace vsparse::kernels {

/// out_values receives the masked products in mask storage order.
/// V in {2,4,8}; half precision only (TCU).
KernelRun sddmm_wmma_warp(gpusim::Device& dev, const DenseDevice<half_t>& a,
                          const DenseDevice<half_t>& b, const CvsDevice& mask,
                          gpusim::Buffer<half_t>& out_values,
                          const gpusim::SimOptions& sim = {});

}  // namespace vsparse::kernels

#include "vsparse/kernels/elementwise.hpp"

#include <cmath>

#include "vsparse/common/math.hpp"
#include "vsparse/fp16/vec.hpp"

namespace vsparse::kernels {

namespace {

using gpusim::AddrLanes;
using gpusim::Cta;
using gpusim::Lanes;
using gpusim::Op;
using gpusim::Warp;

constexpr int kChunk = 256;  // halves per warp pass (32 lanes x 8)

gpusim::LaunchConfig streaming_cfg(const char* name, std::int64_t elems) {
  gpusim::LaunchConfig cfg;
  // Each CTA (one warp) handles 8 chunks.
  cfg.grid = std::max<int>(
      1, static_cast<int>(ceil_div<std::int64_t>(elems, kChunk * 8)));
  cfg.cta_threads = 32;
  cfg.profile = {.name = name,
                 .regs_per_thread = 24,
                 .static_instrs = 128,
                 .icache_pressure = 1.0,
                 .ilp_factor = 0.7};
  return cfg;
}

/// Streams `elems` halves: per chunk, `body(base, frag)` transforms the
/// 8 halves each lane holds; results are stored back.
template <class BodyFn>
gpusim::KernelStats stream_transform(gpusim::Device& dev,
                                     const gpusim::LaunchConfig& cfg,
                                     const gpusim::Buffer<half_t>& buf,
                                     std::int64_t elems, BodyFn&& body) {
  return gpusim::launch(dev, cfg, [&](Cta& cta) {
    Warp w = cta.warp(0);
    for (int pass = 0; pass < 8; ++pass) {
      const std::int64_t base =
          (static_cast<std::int64_t>(cta.cta_id()) * 8 + pass) * kChunk;
      if (base >= elems) break;
      AddrLanes addr{};
      Lanes<half8> frag{};
      std::uint32_t mask = 0;
      for (int lane = 0; lane < 32; ++lane) {
        const std::int64_t idx = base + lane * 8;
        if (idx + 8 > elems) continue;
        addr[static_cast<std::size_t>(lane)] =
            buf.addr(static_cast<std::size_t>(idx));
        mask |= 1u << lane;
      }
      w.ldg(addr, frag, mask);
      body(w, base, frag, mask);
      w.stg(addr, frag, mask);
    }
  });
}

float gelu_tanh(float x) {
  constexpr float kSqrt2OverPi = 0.7978845608f;
  return 0.5f * x *
         (1.0f + std::tanh(kSqrt2OverPi * (x + 0.044715f * x * x * x)));
}

}  // namespace

KernelRun bias_add(gpusim::Device& dev, DenseDevice<half_t>& x,
                   const gpusim::Buffer<half_t>& bias) {
  VSPARSE_CHECK(x.layout == Layout::kRowMajor);
  VSPARSE_CHECK(x.cols % 8 == 0);
  VSPARSE_CHECK(bias.size() == static_cast<std::size_t>(x.cols));
  const std::int64_t elems = static_cast<std::int64_t>(x.rows) * x.cols;
  gpusim::LaunchConfig cfg = streaming_cfg("bias_add", elems);
  auto bias_host = bias.host();
  const int cols = x.cols;
  gpusim::KernelStats stats =
      stream_transform(dev, cfg, x.buf, elems,
                       [&](Warp& w, std::int64_t base, Lanes<half8>& frag,
                           std::uint32_t mask) {
                         // One extra LDG for the bias slice + 8 HADD.
                         AddrLanes baddr{};
                         Lanes<half8> bfrag{};
                         for (int lane = 0; lane < 32; ++lane) {
                           const std::int64_t idx = base + lane * 8;
                           baddr[static_cast<std::size_t>(lane)] = bias.addr(
                               static_cast<std::size_t>(idx % cols));
                         }
                         w.ldg(baddr, bfrag, mask);
                         w.count(Op::kHfma, 8);
                         for (int lane = 0; lane < 32; ++lane) {
                           if (!(mask & (1u << lane))) continue;
                           const std::int64_t idx = base + lane * 8;
                           for (int e = 0; e < 8; ++e) {
                             frag[static_cast<std::size_t>(lane)][e] = hadd(
                                 frag[static_cast<std::size_t>(lane)][e],
                                 bias_host[static_cast<std::size_t>(
                                     (idx + e) % cols)]);
                           }
                         }
                       });
  return {stats, cfg};
}

KernelRun residual_add(gpusim::Device& dev, DenseDevice<half_t>& x,
                       const DenseDevice<half_t>& y) {
  VSPARSE_CHECK(x.rows == y.rows && x.cols == y.cols);
  VSPARSE_CHECK(x.layout == y.layout);
  const std::int64_t elems = static_cast<std::int64_t>(x.rows) * x.cols;
  VSPARSE_CHECK(elems % 8 == 0);
  gpusim::LaunchConfig cfg = streaming_cfg("residual_add", elems);
  auto y_host = y.buf.host();
  gpusim::KernelStats stats = stream_transform(
      dev, cfg, x.buf, elems,
      [&](Warp& w, std::int64_t base, Lanes<half8>& frag,
          std::uint32_t mask) {
        AddrLanes yaddr{};
        Lanes<half8> yfrag{};
        for (int lane = 0; lane < 32; ++lane) {
          const std::int64_t idx = base + lane * 8;
          if (idx + 8 > elems) continue;
          yaddr[static_cast<std::size_t>(lane)] =
              y.buf.addr(static_cast<std::size_t>(idx));
        }
        w.ldg(yaddr, yfrag, mask);
        w.count(Op::kHfma, 8);
        for (int lane = 0; lane < 32; ++lane) {
          if (!(mask & (1u << lane))) continue;
          const std::int64_t idx = base + lane * 8;
          for (int e = 0; e < 8; ++e) {
            frag[static_cast<std::size_t>(lane)][e] =
                hadd(frag[static_cast<std::size_t>(lane)][e],
                     y_host[static_cast<std::size_t>(idx + e)]);
          }
        }
      });
  return {stats, cfg};
}

KernelRun gelu(gpusim::Device& dev, DenseDevice<half_t>& x) {
  const std::int64_t elems = static_cast<std::int64_t>(x.rows) * x.cols;
  VSPARSE_CHECK(elems % 8 == 0);
  gpusim::LaunchConfig cfg = streaming_cfg("gelu", elems);
  gpusim::KernelStats stats = stream_transform(
      dev, cfg, x.buf, elems,
      [&](Warp& w, std::int64_t, Lanes<half8>& frag, std::uint32_t mask) {
        // tanh path: ~4 FFMA + 1 MUFU per element per lane.
        w.count(Op::kFfma, 32);
        w.count(Op::kMisc, 8);
        for (int lane = 0; lane < 32; ++lane) {
          if (!(mask & (1u << lane))) continue;
          for (int e = 0; e < 8; ++e) {
            frag[static_cast<std::size_t>(lane)][e] = half_t(gelu_tanh(
                static_cast<float>(frag[static_cast<std::size_t>(lane)][e])));
          }
        }
      });
  return {stats, cfg};
}

KernelRun layer_norm(gpusim::Device& dev, DenseDevice<half_t>& x,
                     const gpusim::Buffer<half_t>& gamma,
                     const gpusim::Buffer<half_t>& beta, float eps) {
  VSPARSE_CHECK(x.layout == Layout::kRowMajor);
  VSPARSE_CHECK(x.cols % 8 == 0);
  VSPARSE_CHECK(gamma.size() == static_cast<std::size_t>(x.cols));
  VSPARSE_CHECK(beta.size() == static_cast<std::size_t>(x.cols));
  const int rows = x.rows, cols = x.cols;

  gpusim::LaunchConfig cfg;
  cfg.grid = std::max(1, rows);
  cfg.cta_threads = 32;
  cfg.profile = {.name = "layer_norm",
                 .regs_per_thread = 32,
                 .static_instrs = 220,
                 .icache_pressure = 1.0,
                 .ilp_factor = 0.8};

  auto x_host = x.buf.host();
  auto g_host = gamma.host();
  auto b_host = beta.host();

  gpusim::KernelStats stats = gpusim::launch(dev, cfg, [&](Cta& cta) {
    const int r = cta.cta_id();
    Warp w = cta.warp(0);
    half_t* row = &x_host[static_cast<std::size_t>(r) *
                          static_cast<std::size_t>(x.ld)];

    const auto pass = [&](bool store_pass, auto&& body) {
      for (int c0 = 0; c0 < cols; c0 += kChunk) {
        AddrLanes addr{};
        Lanes<half8> frag{};
        std::uint32_t mask = 0;
        for (int lane = 0; lane < 32; ++lane) {
          const int cc = c0 + lane * 8;
          if (cc >= cols) continue;
          addr[static_cast<std::size_t>(lane)] = x.addr(r, cc);
          mask |= 1u << lane;
        }
        w.ldg(addr, frag, mask);
        body(c0, std::min(kChunk, cols - c0));
        if (store_pass) {
          for (int lane = 0; lane < 32; ++lane) {
            if (!(mask & (1u << lane))) continue;
            for (int e = 0; e < 8; ++e) {
              const int cc = c0 + lane * 8 + e;
              if (cc < cols) frag[static_cast<std::size_t>(lane)][e] = row[cc];
            }
          }
          w.count(Op::kCvt, 8);
          w.stg(addr, frag, mask);
        }
      }
    };

    // Pass 1: mean and variance (Welford-free two-accumulator form).
    float sum = 0.0f, sq = 0.0f;
    pass(false, [&](int c0, int cc) {
      w.count(Op::kFfma, 16);
      for (int c = c0; c < c0 + cc; ++c) {
        const float v = static_cast<float>(row[c]);
        sum += v;
        sq += v * v;
      }
    });
    w.count(Op::kShfl, 10);
    w.count(Op::kFfma, 10);
    const float mean = sum / static_cast<float>(cols);
    const float var = std::max(0.0f, sq / static_cast<float>(cols) -
                                         mean * mean);
    const float inv_std = 1.0f / std::sqrt(var + eps);

    // Pass 2: normalize + affine (gamma LDG amortized; modeled as one
    // extra load per chunk).
    pass(true, [&](int c0, int cc) {
      w.count(Op::kLdg, 2);
      w.count(Op::kFfma, 16);
      for (int c = c0; c < c0 + cc; ++c) {
        const float v = static_cast<float>(row[c]);
        const float g = static_cast<float>(g_host[static_cast<std::size_t>(c)]);
        const float bb = static_cast<float>(b_host[static_cast<std::size_t>(c)]);
        row[c] = half_t((v - mean) * inv_std * g + bb);
      }
    });
  });
  return {stats, cfg};
}

}  // namespace vsparse::kernels

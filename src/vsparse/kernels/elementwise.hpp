// Element-wise / normalization kernels rounding out the transformer
// pipeline (the paper's "Others" bucket): bias add, residual add, GELU,
// and LayerNorm, all on half-precision row-major activations.
//
// Memory behaviour matters more than math here: every kernel streams
// with LDG.128/STG.128 (guideline V) and one warp handles 256 elements
// per pass.  LayerNorm is row-parallel (one warp per row) with two
// butterfly-shuffle reductions, matching the standard fused
// implementation.
#pragma once

#include "vsparse/formats/dense.hpp"
#include "vsparse/kernels/api.hpp"

namespace vsparse::kernels {

/// x <- x + bias (bias broadcast over rows).  cols % 8 == 0.
KernelRun bias_add(gpusim::Device& dev, DenseDevice<half_t>& x,
                   const gpusim::Buffer<half_t>& bias);

/// x <- x + y (same shape).  Element count % 8 == 0.
KernelRun residual_add(gpusim::Device& dev, DenseDevice<half_t>& x,
                       const DenseDevice<half_t>& y);

/// x <- GELU(x) (tanh approximation, as deployed transformers use).
KernelRun gelu(gpusim::Device& dev, DenseDevice<half_t>& x);

/// Row-wise LayerNorm: x[r] <- (x[r] - mean) / sqrt(var + eps) * gamma
/// + beta.  gamma/beta have x.cols elements; cols % 8 == 0.
KernelRun layer_norm(gpusim::Device& dev, DenseDevice<half_t>& x,
                     const gpusim::Buffer<half_t>& gamma,
                     const gpusim::Buffer<half_t>& beta, float eps = 1e-5f);

}  // namespace vsparse::kernels

// Static launch contracts for every registered kernel (+ the dense
// GEMM and softmax entry points the fig05 suites run).
//
// Each contract replays the span descriptors its kernel issues — read
// side by side with the kernel source — at the extremes that bound the
// address behaviour:
//
//   * CTA coordinates at their first and last grid values,
//   * staging loops at their first and last trip,
//   * per-row nonzero counts at {0, max, max-1} (the odd tail is what
//     exercises the pair-rounded index loads),
//   * the worst tail placement begin = nnz - cnt (a row's extent
//     ending exactly at the allocation's last element),
//   * data-dependent gather columns as whole-range intervals.
//
// Every address expression is monotone in each of these, so the
// extremes bound all intermediate shapes/iterations (the corner
// argument of shape_class.hpp, applied once more to the loop space).
#include "vsparse/kernels/contracts.hpp"

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <vector>

#include "vsparse/common/math.hpp"
#include "vsparse/gpusim/config.hpp"
#include "vsparse/gpusim/verify/machine.hpp"
#include "vsparse/gpusim/verify/shape_class.hpp"

namespace vsparse::kernels::contracts {

namespace {

using verify::CtaModel;
using verify::Ival;
using verify::prefix_mask;
using verify::ShapeCorner;
using verify::SpanPattern;

/// Repeat an `nt`-lane prefix over `segs` segments of `width` lanes.
std::uint32_t rep_prefix(int segs, int width, int nt) {
  std::uint32_t mask = 0;
  for (int s = 0; s < segs; ++s) {
    mask |= prefix_mask(nt) << (s * width);
  }
  return mask;
}

/// Distinct per-row nonzero-vector counts worth probing: empty, the
/// row-capacity maximum, and the odd value just under it (pair-rounded
/// index loads behave differently on odd tails).
std::vector<std::int64_t> cnt_probes(std::int64_t cnt_max) {
  std::vector<std::int64_t> out{0};
  if (cnt_max > 0) out.push_back(cnt_max);
  if (cnt_max > 1) out.push_back(cnt_max - 1);
  return out;
}

/// The CVS operand of an SpMM (cols = K) or the mask of an SDDMM
/// (cols = N), with the PR 5 tail-slack contracts of formats/cvs.cpp:
/// +1 element on col_idx (pair-rounded LDG.64), +7 halves on values
/// (16 B-aligned LDG.128).
struct CvsBufs {
  int row_ptr = -1, col_idx = -1, values = -1;
  std::int64_t vec_rows = 0;
  std::int64_t nnzv = 0;     ///< stored vectors (worst case: every slot)
  std::int64_t cnt_max = 0;  ///< per-vector-row maximum
};

CvsBufs declare_cvs(CtaModel& m, int rows, int cols, int v,
                    const char* prefix) {
  CvsBufs b;
  b.vec_rows = rows / v;
  b.nnzv = b.vec_rows * cols;
  b.cnt_max = cols;
  b.row_ptr = m.gbuf(std::string(prefix) + ".row_ptr", (b.vec_rows + 1) * 4);
  b.col_idx =
      m.gbuf(std::string(prefix) + ".col_idx", b.nnzv * 4, /*slack=*/4);
  b.values =
      m.gbuf(std::string(prefix) + ".values", b.nnzv * v * 2, /*slack=*/14);
  return b;
}

/// Dense half operand with the to_device tail slack (15 halves; covers
/// the TCU kernels' 8/16-half K-rounding on the last row/column).
int declare_dense(CtaModel& m, const char* name, std::int64_t rows,
                  std::int64_t cols) {
  return m.gbuf(name, rows * cols * 2, /*slack=*/30);
}

}  // namespace

// ---- SpMM ----------------------------------------------------------

void spmm_octet(CtaModel& m, const ShapeCorner& s,
                const gpusim::DeviceConfig& hw) {
  (void)hw;
  if (!m.require(s.v == 2 || s.v == 4 || s.v == 8, "spmm_octet.v",
                 "requires V in {2,4,8}")) {
    return;
  }
  if (!m.require(s.n % 64 == 0 && s.m % s.v == 0, "spmm_octet.shape",
                 "requires N % 64 == 0 and M % V == 0")) {
    return;
  }
  const int tile_k = 32;  // SpmmOctetParams default
  m.launch(1, tile_k * (4 + s.v * 2));
  const CvsBufs a = declare_cvs(m, s.m, s.k, s.v, "a");
  const int b = declare_dense(m, "b", s.k, s.n);
  const int c = declare_dense(m, "c", s.m, s.n);

  for (std::int64_t vr : {std::int64_t{0}, a.vec_rows - 1}) {
    for (std::int64_t n0 : {std::int64_t{0}, std::int64_t{s.n - 64}}) {
      for (std::int64_t cnt : cnt_probes(a.cnt_max)) {
        const std::int64_t begin = a.nnzv - cnt;  // worst tail placement
        m.ldg1(a.row_ptr, Ival(vr * 4), 4, 4, 0x3u, "spmm_octet.row_ptr");
        const std::int64_t last_i0 =
            cnt > 0 ? ((cnt - 1) / tile_k) * tile_k : 0;
        for (std::int64_t i0 : {std::int64_t{0}, last_i0}) {
          const int nstage =
              static_cast<int>(std::min<std::int64_t>(cnt - i0, tile_k));
          if (nstage <= 0) continue;
          // Stage indices + values for this stride.
          m.ldg1(a.col_idx, Ival((begin + i0) * 4), 4, 4,
                 prefix_mask(nstage), "spmm_octet.stage_idx");
          m.sts(0, {0}, 32, 4, 4, prefix_mask(nstage),
                "spmm_octet.stage_idx.sts");
          m.ldg1(a.values, Ival((begin + i0) * s.v * 2), s.v * 2, s.v * 2,
                 prefix_mask(nstage), "spmm_octet.stage_val");
          m.sts(0, {tile_k * 4}, 32, s.v * 2, s.v * 2, prefix_mask(nstage),
                "spmm_octet.stage_val.sts");
          const int last_step = (nstage - 1) / 4;
          for (int step : {0, last_step}) {
            const int valid = std::min(4, nstage - 4 * step);
            // B fragment: 4 column segments of one LDG.128 each, the
            // staged column as a whole-range gather interval.
            const Ival col_base(n0 * 2,
                                static_cast<std::int64_t>(s.k - 1) * s.n * 2 +
                                    n0 * 2);
            m.ldg(b, {col_base, col_base, col_base, col_base}, 8, 16, 16,
                  prefix_mask(8 * valid), "spmm_octet.b_frag");
            // Broadcast LDS of the step's staged A values.
            const int nseg = 32 / (2 * s.v);
            const std::vector<std::int64_t> off(
                static_cast<std::size_t>(nseg),
                tile_k * 4 + 4 * step * s.v * 2);
            const int nt = std::min(2 * s.v, valid * s.v / 2);
            m.lds(0, off, 2 * s.v, 4, 4, rep_prefix(nseg, 2 * s.v, nt),
                  "spmm_octet.a_lds");
          }
        }
        // Writeback: V rows x 64 columns in 4-row groups of LDG.128
        // segments.
        const int row_groups = std::max(1, s.v / 4);
        for (int g = 0; g < row_groups; ++g) {
          std::vector<Ival> bases;
          const int active = std::min(4, s.v - 4 * g);
          for (int t = 0; t < 4; ++t) {
            const std::int64_t r = vr * s.v + 4 * g + std::min(t, active - 1);
            bases.push_back(Ival(r * s.n * 2 + n0 * 2));
          }
          m.stg(c, bases, 8, 16, 16, prefix_mask(8 * active),
                "spmm_octet.writeback");
        }
      }
    }
  }
  m.finish();
}

void spmm_wmma_warp(CtaModel& m, const ShapeCorner& s,
                    const gpusim::DeviceConfig& hw) {
  (void)hw;
  if (!m.require(s.v == 2 || s.v == 4 || s.v == 8, "spmm_wmma.v",
                 "requires V in {2,4,8}")) {
    return;
  }
  if (!m.require(s.n % 64 == 0 && s.m % s.v == 0, "spmm_wmma.shape",
                 "requires N % 64 == 0 and M % V == 0")) {
    return;
  }
  m.launch(1, 0);
  const CvsBufs a = declare_cvs(m, s.m, s.k, s.v, "a");
  const int b = declare_dense(m, "b", s.k, s.n);
  const int c = declare_dense(m, "c", s.m, s.n);

  for (std::int64_t vr : {std::int64_t{0}, a.vec_rows - 1}) {
    for (std::int64_t n0 : {std::int64_t{0}, std::int64_t{s.n - 64}}) {
      for (std::int64_t cnt : cnt_probes(a.cnt_max)) {
        const std::int64_t begin = a.nnzv - cnt;
        const std::int64_t end = begin + cnt;
        m.ldg_lanes(a.row_ptr, Ival(vr * 4), Ival(vr * 4 + 8),
                    SpanPattern::kAffine, "spmm_wmma.row_ptr");
        if (cnt > 0) {
          m.ldg_lanes(a.col_idx, Ival(begin * 4), Ival(end * 4),
                      SpanPattern::kAffine, "spmm_wmma.col_idx");
          // Values stream in 16 B-aligned LDG.128s: the base rounds
          // down, the final fragment rounds up (PR 5 values slack).
          const std::int64_t lo = (begin * s.v * 2) / 16 * 16;
          const std::int64_t hi = ceil_div<std::int64_t>(end * s.v * 2, 16) * 16;
          m.ldg_lanes(a.values, Ival(lo), Ival(hi), SpanPattern::kAffine,
                      "spmm_wmma.values");
          // B gather: per nonzero, 64 consecutive halves of one row.
          m.ldg_lanes(b, Ival(n0 * 2),
                      Ival(static_cast<std::int64_t>(s.k - 1) * s.n * 2 +
                           n0 * 2 + 128),
                      SpanPattern::kSegmented, "spmm_wmma.b_gather");
        }
        m.stg_lanes(c, Ival(vr * s.v * s.n * 2 + n0 * 2),
                    Ival((vr * s.v + s.v - 1) * s.n * 2 + n0 * 2 + 128),
                    SpanPattern::kSegmented, "spmm_wmma.writeback");
      }
    }
  }
  m.finish();
}

void spmm_fpu_subwarp(CtaModel& m, const ShapeCorner& s,
                      const gpusim::DeviceConfig& hw) {
  (void)hw;
  const int tile_n = 16, tile_k = 16;  // SpmmFpuParams defaults
  if (!m.require(s.v == 1 || s.v == 2 || s.v == 4 || s.v == 8, "spmm_fpu.v",
                 "requires V in {1,2,4,8}")) {
    return;
  }
  if (!m.require(s.n % tile_n == 0 && s.m % s.v == 0, "spmm_fpu.shape",
                 "requires N % TileN == 0 and M % V == 0")) {
    return;
  }
  const int vbytes = s.v * 2;
  m.launch(1, 4 * tile_k * (4 + vbytes) + 16);
  const CvsBufs a = declare_cvs(m, s.m, s.k, s.v, "a");
  const int b = declare_dense(m, "b", s.k, s.n);
  const int c = declare_dense(m, "c", s.m, s.n);

  const std::int64_t row_groups = ceil_div<std::int64_t>(a.vec_rows, 4);
  const auto idx_off = [&](int sg, int j) {
    return static_cast<std::int64_t>((sg * tile_k + j) * 4);
  };
  const auto val_off = [&](int sg, int j) {
    return static_cast<std::int64_t>(4 * tile_k * 4 +
                                     (sg * tile_k + j) * vbytes);
  };

  for (std::int64_t rg : {std::int64_t{0}, row_groups - 1}) {
    const std::int64_t vr0 = rg * 4;
    const int live =
        static_cast<int>(std::min<std::int64_t>(4, a.vec_rows - vr0));
    for (std::int64_t n0 : {std::int64_t{0}, std::int64_t{s.n - tile_n}}) {
      // Row extents: one 5-lane LDG.32 prefix (clamped at the table end).
      const int nl =
          static_cast<int>(std::min<std::int64_t>(5, a.vec_rows - vr0 + 1));
      m.ldg1(a.row_ptr, Ival(vr0 * 4), 4, 4, prefix_mask(nl),
             "spmm_fpu.row_ptr");
      for (std::int64_t cnt : cnt_probes(a.cnt_max)) {
        const std::int64_t begin = a.nnzv - cnt;
        const std::int64_t last_i0 =
            cnt > 0 ? ((cnt - 1) / tile_k) * tile_k : 0;
        for (std::int64_t i0 : {std::int64_t{0}, last_i0}) {
          const std::int64_t rem = cnt - i0;
          if (rem <= 0) continue;
          // Index staging: per-subwarp pair-rounded LDG.64 prefixes.
          // The kernel issues one 4-segment span; segments only differ
          // in their (row-dependent) base, so per-segment replay is
          // bounds-equivalent.
          const int nt = static_cast<int>(
              std::clamp<std::int64_t>((rem + 1) / 2, 0, 8));
          for (int sg : {0, live - 1}) {
            m.ldg1(a.col_idx, Ival((begin + i0) * 4), 8, 8, prefix_mask(nt),
                   "spmm_fpu.stage_idx");
            m.sts(0, {idx_off(sg, 0)}, 32, 8, 8, prefix_mask(nt),
                  "spmm_fpu.stage_idx.sts");
            // Value staging: two 8-lane passes per stride, exact.
            for (int j0 : {0, 8}) {
              const int nv = static_cast<int>(
                  std::clamp<std::int64_t>(rem - j0, 0, 8));
              if (nv == 0) continue;
              m.ldg1(a.values, Ival((begin + i0 + j0) * vbytes), vbytes,
                     vbytes, prefix_mask(nv), "spmm_fpu.stage_val");
              m.sts(0, {val_off(sg, j0)}, 32, vbytes, vbytes,
                    prefix_mask(nv), "spmm_fpu.stage_val.sts");
            }
            // Inner walk at its first and last staged entry: broadcast
            // LDS of the staged value, B-row slice to registers.
            for (int kk : {0, static_cast<int>(rem - 1) % tile_k}) {
              m.lds(0, {val_off(sg, kk)}, 8, 0, std::min(vbytes, 4),
                    prefix_mask(8), "spmm_fpu.a_lds");
              const Ival col_base(
                  n0 * 2, static_cast<std::int64_t>(s.k - 1) * s.n * 2 +
                              n0 * 2);
              m.ldg(b, {col_base}, 8, 4, 4, prefix_mask(8),
                    "spmm_fpu.b_slice");
            }
          }
        }
        // Writeback: V passes of 4-segment TileN/8-wide slices for the
        // live subwarps.
        for (int vv : {0, s.v - 1}) {
          std::vector<Ival> bases;
          for (int sg = 0; sg < live; ++sg) {
            bases.push_back(
                Ival(((vr0 + sg) * s.v + vv) * s.n * 2 + n0 * 2));
          }
          m.stg(c, bases, 8, 4, 4, rep_prefix(live, 8, 8),
                "spmm_fpu.writeback");
        }
      }
    }
  }
  m.finish();
}

void spmm_csr_fine(CtaModel& m, const ShapeCorner& s,
                   const gpusim::DeviceConfig& hw) {
  (void)hw;
  if (!m.require(s.v == 1, "spmm_csr_fine.v", "requires V == 1")) return;
  if (!m.require(s.n % 32 == 0, "spmm_csr_fine.shape",
                 "requires N % 32 == 0")) {
    return;
  }
  m.launch(1, 0);
  const CvsBufs a = declare_cvs(m, s.m, s.k, 1, "a");
  const int b = declare_dense(m, "b", s.k, s.n);
  const int c = declare_dense(m, "c", s.m, s.n);

  for (std::int64_t row : {std::int64_t{0}, std::int64_t{s.m - 1}}) {
    for (std::int64_t n0 : {std::int64_t{0}, std::int64_t{s.n - 32}}) {
      for (std::int64_t cnt : cnt_probes(a.cnt_max)) {
        const std::int64_t begin = a.nnzv - cnt;
        m.ldg1(a.row_ptr, Ival(row * 4), 4, 4, 0x3u,
               "spmm_csr_fine.row_ptr");
        if (cnt > 0) {
          m.ldg_lanes(a.col_idx, Ival(begin * 4), Ival((begin + cnt) * 4),
                      SpanPattern::kAffine, "spmm_csr_fine.col_idx");
          m.ldg_lanes(a.values, Ival(begin * 2), Ival((begin + cnt) * 2),
                      SpanPattern::kAffine, "spmm_csr_fine.values");
          // Per nonzero: 32 consecutive halves of one B row — a span
          // the kernel still walks per-lane.
          m.ldg_lanes(b, Ival(n0 * 2),
                      Ival(static_cast<std::int64_t>(s.k - 1) * s.n * 2 +
                           n0 * 2 + 64),
                      SpanPattern::kAffine, "spmm_csr_fine.b_row");
        }
        m.stg1(c, Ival(row * s.n * 2 + n0 * 2), 2, 2, 0xFFFFFFFFu,
               "spmm_csr_fine.writeback");
      }
    }
  }
  m.finish();
}

void spmm_blocked_ell(CtaModel& m, const ShapeCorner& s,
                      const gpusim::DeviceConfig& hw) {
  (void)hw;
  const int blk = s.v;  // the serve ladder re-encodes with block = V
  if (!m.require(blk == 2 || blk == 4 || blk == 8 || blk == 16,
                 "spmm_blocked_ell.blk", "requires block in {2,4,8,16}")) {
    return;
  }
  if (!m.require(s.n % 64 == 0 && s.m % blk == 0 && s.k % blk == 0,
                 "spmm_blocked_ell.shape",
                 "requires N % 64 == 0 and M, K % block == 0")) {
    return;
  }
  const int tile_n = (s.n % 128 == 0) ? 128 : 64;
  m.launch(1, blk * blk * 2 + blk * 128 * 2);
  const std::int64_t block_rows = s.m / blk;
  const std::int64_t block_cols = s.k / blk;
  const int b = declare_dense(m, "b", s.k, s.n);
  const int c = declare_dense(m, "c", s.m, s.n);
  const auto block_off = [&](std::int64_t r, std::int64_t cc) {
    return (r * blk + cc) * 2;
  };
  const auto btile_off = [&](std::int64_t r, std::int64_t nn) {
    return blk * blk * 2 + (r * 128 + nn) * 2;
  };

  // blocks_per_row is data-dependent (the max nonzero-block count over
  // block-rows); the ELL buffers are sized by the same value the slot
  // loop runs to, so one probe at each extreme covers all encodings.
  for (std::int64_t bpr : {std::int64_t{1}, block_cols}) {
    const int col_idx = m.gbuf("ell.col_idx", block_rows * bpr * 4);
    const int values =
        m.gbuf("ell.values", block_rows * bpr * blk * blk * 2);
    for (std::int64_t brow : {std::int64_t{0}, block_rows - 1}) {
      for (std::int64_t n0 :
           {std::int64_t{0}, std::int64_t{s.n - tile_n}}) {
        // Up-front column-index gather, 32 slots per pass.
        const std::int64_t cpasses = ceil_div<std::int64_t>(bpr, 32);
        for (std::int64_t p : {std::int64_t{0}, cpasses - 1}) {
          const int nl =
              static_cast<int>(std::min<std::int64_t>(32, bpr - 32 * p));
          m.ldg1(col_idx, Ival((brow * bpr + 32 * p) * 4), 4, 4,
                 prefix_mask(nl), "spmm_blocked_ell.col_idx");
        }
        for (std::int64_t slot : {std::int64_t{0}, bpr - 1}) {
          // Value block through smem: one chunk per lane (blk = 2
          // blocks are 8 B total, smaller than one LDG.128).
          const int chunk = std::min(16, blk * blk * 2);
          const int chunks = ceil_div(blk * blk * 2, chunk);
          const std::int64_t vbase = (brow * bpr + slot) * blk * blk * 2;
          m.ldg1(values, Ival(vbase), chunk, chunk, prefix_mask(chunks),
                 "spmm_blocked_ell.value_block");
          m.sts(0, {0}, 32, chunk, chunk, prefix_mask(chunks),
                "spmm_blocked_ell.value_block.sts");
          // B stripe: two block rows per pass, 16-lane segments; the
          // block column is data-dependent (gathered index).
          const std::uint32_t seg_bits = tile_n >= 128 ? 0xFFFFu : 0xFFu;
          for (int pass = 0; pass < ceil_div(blk, 2); ++pass) {
            std::vector<Ival> gbase;
            std::vector<std::int64_t> soff;
            std::uint32_t mask = 0;
            for (int seg = 0; seg < 2; ++seg) {
              const std::int64_t r = 2 * pass + seg;
              if (r >= blk) {
                gbase.push_back(Ival(0));
                soff.push_back(0);
                continue;
              }
              // row = bcol * blk + r, bcol in [0, block_cols).
              gbase.push_back(Ival(r * s.n * 2 + n0 * 2,
                                   ((block_cols - 1) * blk + r) * s.n * 2 +
                                       n0 * 2));
              soff.push_back(btile_off(r, 0));
              mask |= seg_bits << (16 * seg);
            }
            m.ldg(b, gbase, 16, 16, 16, mask, "spmm_blocked_ell.b_stripe");
            m.sts(0, soff, 16, 16, 16, mask,
                  "spmm_blocked_ell.b_stripe.sts");
          }
          m.sync();
          // Fragment loads from smem.
          if (blk == 16) {
            for (std::int64_t rt : {std::int64_t{0}, std::int64_t{1}}) {
              std::vector<std::int64_t> soff;
              for (int seg = 0; seg < 8; ++seg) {
                soff.push_back(block_off(rt * 8 + seg, 0));
              }
              m.lds(0, soff, 4, 8, 8, 0xFFFFFFFFu,
                    "spmm_blocked_ell.a_frag");
            }
          } else {
            // Small blocks clamp both block coordinates per lane — a
            // genuinely divergent gather the engine runs element-wise.
            m.lds_lanes(0, 0, blk * blk * 2, SpanPattern::kIrregular,
                        "spmm_blocked_ell.a_frag");
          }
          for (std::int64_t ct :
               {std::int64_t{0}, std::int64_t{tile_n / 32 - 1}}) {
            for (int pass = 0; pass < 2; ++pass) {
              std::vector<std::int64_t> soff;
              for (int seg = 0; seg < 8; ++seg) {
                const std::int64_t r =
                    std::min<std::int64_t>(8 * pass + seg, blk - 1);
                soff.push_back(btile_off(r, 32 * ct));
              }
              m.lds(0, soff, 4, 16, 16, 0xFFFFFFFFu,
                    "spmm_blocked_ell.b_frag");
            }
          }
          m.sync();
        }
        // Writeback: tile_n/8 lanes per output row, whole-segment
        // predication past blk.
        const int wwidth = tile_n / 8;
        const int wsegs = 32 / wwidth;
        const int rows_per_pass = 256 / tile_n;
        const std::uint32_t wbits = prefix_mask(wwidth);
        const int passes = ceil_div(blk * tile_n, 32 * 8);
        for (int pass : {0, passes - 1}) {
          std::vector<Ival> gbase;
          std::uint32_t mask = 0;
          for (int seg = 0; seg < wsegs; ++seg) {
            const std::int64_t r =
                static_cast<std::int64_t>(pass) * rows_per_pass + seg;
            if (r >= blk) {
              gbase.push_back(Ival(0));
              continue;
            }
            gbase.push_back(Ival((brow * blk + r) * s.n * 2 + n0 * 2));
            mask |= wbits << (seg * wwidth);
          }
          m.stg(c, gbase, wwidth, 16, 16, mask,
                "spmm_blocked_ell.writeback");
        }
      }
    }
  }
  m.finish();
}

namespace {

/// Shared body for hgemm_tcu: the fig05 dense baseline and the SpMM
/// ladder's dense-decode rung.  `col_major_b` models the transpose
/// staging path (self-attention's B^T), whose element-wise smem
/// transpose is the lint pass's canonical per-lane-span finding.
void hgemm_contract(CtaModel& m, const ShapeCorner& s,
                    const gpusim::DeviceConfig& hw, bool col_major_b) {
  if (!m.require(s.m % 64 == 0 && s.n % 64 == 0 && s.k % 16 == 0,
                 "hgemm_tcu.shape",
                 "requires M, N % 64 == 0 and K % 16 == 0")) {
    return;
  }
  constexpr std::int64_t kMaxTileM = 128, kTileN = 64, kTileK = 16;
  const std::int64_t smem = (kMaxTileM * kTileK + kTileK * kTileN) * 2;
  const auto a_off = [](std::int64_t r, std::int64_t kk) {
    return (r * kTileK + kk) * 2;
  };
  const auto b_off = [](std::int64_t kk, std::int64_t nn) {
    return (kMaxTileM * kTileK + kk * kTileN + nn) * 2;
  };
  const std::int64_t tile_m = (s.m % kMaxTileM == 0) ? kMaxTileM : 64;
  const std::int64_t rows_per_warp = tile_m / 4;
  const std::int64_t grid_base = (s.m / tile_m) * (s.n / kTileN);
  // cuBLAS-style split-K sizing (mirrors the kernel's heuristic).
  std::int64_t split = 1;
  while (grid_base * split < 2 * hw.num_sms && split < 16 &&
         s.k % (2 * split * kTileK) == 0) {
    split *= 2;
  }
  const std::int64_t k_per_split = s.k / split;

  m.launch(4, smem);
  const int a = declare_dense(m, "a", s.m, s.k);
  const int b = declare_dense(m, "b", s.k, s.n);
  const int c = declare_dense(m, "c", s.m, s.n);
  const int ws = split > 1 ? m.gbuf("workspace", s.m * s.n * 4) : -1;

  for (std::int64_t m0 : {std::int64_t{0}, s.m - tile_m}) {
    for (std::int64_t n0 : {std::int64_t{0}, s.n - kTileN}) {
      for (std::int64_t sp : {std::int64_t{0}, split - 1}) {
        const std::int64_t k_begin = sp * k_per_split;
        for (std::int64_t k0 :
             {k_begin, k_begin + k_per_split - kTileK}) {
          for (int w = 0; w < 4; ++w) {
            // A tile staging: 16-row groups of LDG.128 + STS.128.
            for (std::int64_t g = 0; g < rows_per_warp / 16; ++g) {
              const std::int64_t tr0 = rows_per_warp * w + 16 * g;
              std::vector<Ival> gb;
              std::vector<std::int64_t> sb;
              for (int seg = 0; seg < 16; ++seg) {
                gb.push_back(Ival((m0 + tr0 + seg) * s.k * 2 + k0 * 2));
                sb.push_back(a_off(tr0 + seg, 0));
              }
              m.ldg(a, gb, 2, 16, 16, 0xFFFFFFFFu, "hgemm_tcu.stage_a");
              m.sts(w, sb, 2, 16, 16, 0xFFFFFFFFu, "hgemm_tcu.stage_a.sts");
            }
            if (!col_major_b) {
              // Row-major B: four rows per warp, 8-lane segments.
              std::vector<Ival> gb;
              std::vector<std::int64_t> sb;
              for (int seg = 0; seg < 4; ++seg) {
                gb.push_back(
                    Ival((k0 + 4 * w + seg) * s.n * 2 + n0 * 2));
                sb.push_back(b_off(4 * w + seg, 0));
              }
              m.ldg(b, gb, 8, 16, 16, 0xFFFFFFFFu, "hgemm_tcu.stage_b");
              m.sts(w, sb, 8, 16, 16, 0xFFFFFFFFu, "hgemm_tcu.stage_b.sts");
            } else {
              // Column-major B: 16 column segments down the columns,
              // then an element-wise transpose into smem.  The kernel
              // issues 8 x 32 scalar STS.16s; each is two 16-lane
              // affine runs, so the loop is span-expressible.
              std::vector<Ival> gb;
              for (int seg = 0; seg < 16; ++seg) {
                gb.push_back(
                    Ival((n0 + 16 * w + seg) * s.k * 2 + k0 * 2));
              }
              m.ldg(b, gb, 2, 16, 16, 0xFFFFFFFFu, "hgemm_tcu.stage_bt");
              m.note_lint(
                  "per-lane-span", "hgemm_tcu.stage_bt.transpose",
                  "element-wise smem transpose: each of the 8 STS rounds "
                  "is two 16-lane affine runs (one sts_span)");
              for (int e = 0; e < 8; ++e) {
                m.sts(w, {b_off(e, 16 * w), b_off(8 + e, 16 * w)}, 16, 2, 2,
                      0xFFFFFFFFu, "hgemm_tcu.stage_bt.transpose");
              }
            }
          }
          m.sync();
          for (int w = 0; w < 4; ++w) {
            for (std::int64_t rh : {std::int64_t{0},
                                    rows_per_warp / 8 - 1}) {
              std::vector<std::int64_t> soff;
              for (int seg = 0; seg < 8; ++seg) {
                soff.push_back(a_off(rows_per_warp * w + 8 * rh + seg, 0));
              }
              m.lds(w, soff, 4, 8, 8, 0xFFFFFFFFu, "hgemm_tcu.a_frag");
              for (int ch = 0; ch < 2; ++ch) {
                for (int hk = 0; hk < 2; ++hk) {
                  std::vector<std::int64_t> bo;
                  for (int seg = 0; seg < 8; ++seg) {
                    bo.push_back(b_off(8 * hk + seg, 32 * ch));
                  }
                  m.lds(w, bo, 4, 16, 16, 0xFFFFFFFFu, "hgemm_tcu.b_frag");
                }
              }
            }
          }
          m.sync();
        }
        // Writeback / split-K partials.
        for (int w = 0; w < 4; ++w) {
          if (split == 1) {
            for (std::int64_t g : {std::int64_t{0},
                                   rows_per_warp / 4 - 1}) {
              std::vector<Ival> gb;
              for (int seg = 0; seg < 4; ++seg) {
                gb.push_back(
                    Ival((m0 + rows_per_warp * w + 4 * g + seg) * s.n * 2 +
                         n0 * 2));
              }
              m.stg(c, gb, 8, 16, 16, 0xFFFFFFFFu, "hgemm_tcu.writeback");
            }
          } else {
            for (std::int64_t g : {std::int64_t{0},
                                   rows_per_warp / 2 - 1}) {
              std::vector<Ival> gb;
              for (int seg = 0; seg < 2; ++seg) {
                gb.push_back(
                    Ival((m0 + rows_per_warp * w + 2 * g + seg) * s.n * 4 +
                         n0 * 4));
              }
              m.stg(ws, gb, 16, 16, 16, 0xFFFFFFFFu,
                    "hgemm_tcu.splitk_partial");
            }
          }
        }
      }
    }
  }
  if (split > 1) {
    // Reduction pass: 32-thread CTAs sweeping 2048-float stripes with a
    // prefix-masked ragged tail.
    const std::int64_t total = s.m * static_cast<std::int64_t>(s.n);
    for (std::int64_t base :
         {std::int64_t{0}, (total - 1) / 128 * 128}) {
      int lanes = 0;
      for (int lane = 0; lane < 32; ++lane) {
        if (base + lane * 4 + 4 > total) break;
        ++lanes;
      }
      m.ldg1(ws, Ival(base * 4), 16, 16, prefix_mask(lanes),
             "hgemm_tcu.reduce_in");
      m.stg1(c, Ival(base * 2), 8, 8, prefix_mask(lanes),
             "hgemm_tcu.reduce_out");
    }
  }
  m.finish();
}

}  // namespace

void spmm_dense_gemm(CtaModel& m, const ShapeCorner& s,
                     const gpusim::DeviceConfig& hw) {
  hgemm_contract(m, s, hw, /*col_major_b=*/false);
}

// ---- SDDMM ---------------------------------------------------------

void sddmm_octet(CtaModel& m, const ShapeCorner& s,
                 const gpusim::DeviceConfig& hw) {
  (void)hw;
  if (!m.require(s.v == 2 || s.v == 4 || s.v == 8, "sddmm_octet.v",
                 "requires V in {2,4,8}")) {
    return;
  }
  if (!m.require(s.m % s.v == 0, "sddmm_octet.shape", "requires M % V == 0")) {
    return;
  }
  m.launch(1, 0);
  const CvsBufs mask = declare_cvs(m, s.m, s.n, s.v, "mask");
  const int a = declare_dense(m, "a", s.m, s.k);
  const int b = declare_dense(m, "b", s.k, s.n);  // col-major, ld = k
  const int out = m.gbuf("out_values", mask.nnzv * s.v * 2);

  for (std::int64_t vr : {std::int64_t{0}, mask.vec_rows - 1}) {
    for (std::int64_t cnt : cnt_probes(mask.cnt_max)) {
      const std::int64_t begin = mask.nnzv - cnt;
      m.ldg1(mask.row_ptr, Ival(vr * 4), 4, 4, 0x3u, "sddmm_octet.row_ptr");
      const std::int64_t tiles = std::max<std::int64_t>(
          1, ceil_div<std::int64_t>(std::max<std::int64_t>(cnt, 1), 32));
      for (std::int64_t tile : {std::int64_t{0}, tiles - 1}) {
        const std::int64_t j0 = 32 * tile;
        if (j0 >= cnt) continue;  // early-exit CTA (uniform, no barrier)
        const int jcnt =
            static_cast<int>(std::min<std::int64_t>(32, cnt - j0));
        m.ldg1(mask.col_idx, Ival((begin + j0) * 4), 4, 4,
               prefix_mask(jcnt), "sddmm_octet.cols");
        for (std::int64_t k0 :
             {std::int64_t{0}, std::int64_t{(s.k - 1) / 64 * 64}}) {
          const int kcnt =
              static_cast<int>(std::min<std::int64_t>(64, s.k - k0));
          const int kpre = static_cast<int>(ceil_div(kcnt, 8));
          // A rows: V row segments of LDG.128 along K (8-half
          // granularity rounds the row tail up — dense slack).
          {
            std::vector<Ival> bases;
            for (int t = 0; t < std::min(4, s.v); ++t) {
              bases.push_back(
                  Ival((vr * s.v + t) * s.k * 2 + k0 * 2));
            }
            m.ldg(a, bases, 8, 16, 16,
                  rep_prefix(static_cast<int>(bases.size()), 8, kpre),
                  "sddmm_octet.a_rows");
          }
          // B columns (col-major): gathered by the mask's columns,
          // same 8-half K granularity.
          {
            const Ival col(0, s.n - 1);
            const Ival base = col * (s.k * 2) + k0 * 2;
            m.ldg(b, {base, base, base, base}, 8, 16, 16,
                  rep_prefix(4, 8, kpre), "sddmm_octet.b_cols");
          }
        }
        // Output vectors: exact prefix.
        m.stg1(out, Ival((begin + j0) * s.v * 2), s.v * 2, s.v * 2,
               prefix_mask(jcnt), "sddmm_octet.writeback");
      }
    }
  }
  m.finish();
}

void sddmm_wmma_warp(CtaModel& m, const ShapeCorner& s,
                     const gpusim::DeviceConfig& hw) {
  (void)hw;
  if (!m.require(s.v == 2 || s.v == 4 || s.v == 8, "sddmm_wmma.v",
                 "requires V in {2,4,8}")) {
    return;
  }
  if (!m.require(s.m % s.v == 0, "sddmm_wmma.shape", "requires M % V == 0")) {
    return;
  }
  m.launch(1, 8192);
  const CvsBufs mask = declare_cvs(m, s.m, s.n, s.v, "mask");
  const int a = declare_dense(m, "a", s.m, s.k);
  const int b = declare_dense(m, "b", s.k, s.n);  // col-major
  const int out = m.gbuf("out_values", mask.nnzv * s.v * 2);

  for (std::int64_t vr : {std::int64_t{0}, mask.vec_rows - 1}) {
    for (std::int64_t cnt : cnt_probes(mask.cnt_max)) {
      const std::int64_t begin = mask.nnzv - cnt;
      m.ldg1(mask.row_ptr, Ival(vr * 4), 4, 4, 0x3u, "sddmm_wmma.row_ptr");
      const std::int64_t tiles = std::max<std::int64_t>(
          1, ceil_div<std::int64_t>(std::max<std::int64_t>(cnt, 1), 32));
      for (std::int64_t tile : {std::int64_t{0}, tiles - 1}) {
        const std::int64_t j0 = 32 * tile;
        if (j0 >= cnt) continue;
        const int jcnt =
            static_cast<int>(std::min<std::int64_t>(32, cnt - j0));
        m.ldg1(mask.col_idx, Ival((begin + j0) * 4), 4, 4,
               prefix_mask(jcnt), "sddmm_wmma.cols");
        for (std::int64_t k0 :
             {std::int64_t{0}, std::int64_t{(s.k - 1) / 64 * 64}}) {
          const int kcnt =
              static_cast<int>(std::min<std::int64_t>(64, s.k - k0));
          const int kpre = static_cast<int>(ceil_div(kcnt, 16));
          // A fragment: V row segments of 4 lanes x 32 B (16-half
          // granularity — the worst K-rounding in the codebase, and
          // what sizes the dense operands' 15-half tail slack).
          {
            std::vector<Ival> bases;
            for (int t = 0; t < std::min(8, s.v); ++t) {
              bases.push_back(
                  Ival((vr * s.v + t) * s.k * 2 + k0 * 2));
            }
            m.ldg(a, bases, 4, 32, 32,
                  rep_prefix(static_cast<int>(bases.size()), 4, kpre),
                  "sddmm_wmma.a_frag");
          }
          // B gather: per staged nonzero, 8-half runs of the mask
          // column, predicated on j < jcnt && kk < kcnt (exact).
          m.ldg_lanes(
              b, Ival(k0 * 2),
              Ival(static_cast<std::int64_t>(s.n - 1) * s.k * 2 +
                   (k0 + kcnt) * 2),
              SpanPattern::kGather, "sddmm_wmma.b_gather");
          // MMA staging through smem (<= 512 B per round, offset 0).
          m.sts(0, {0}, 32, 16, 16, prefix_mask(jcnt), "sddmm_wmma.sts");
          m.lds(0, {0}, 32, 16, 16, prefix_mask(jcnt), "sddmm_wmma.lds");
        }
        m.stg1(out, Ival((begin + j0) * s.v * 2), s.v * 2, s.v * 2,
               prefix_mask(jcnt), "sddmm_wmma.writeback");
      }
    }
  }
  m.finish();
}

void sddmm_fpu_subwarp(CtaModel& m, const ShapeCorner& s,
                       const gpusim::DeviceConfig& hw) {
  (void)hw;
  const int tile_n = 8;  // SddmmFpuParams default
  if (!m.require(s.v == 1 || s.v == 2 || s.v == 4 || s.v == 8,
                 "sddmm_fpu.v", "requires V in {1,2,4,8}")) {
    return;
  }
  if (!m.require(s.m % s.v == 0, "sddmm_fpu.shape", "requires M % V == 0")) {
    return;
  }
  m.launch(1, 0);
  const CvsBufs mask = declare_cvs(m, s.m, s.n, s.v, "mask");
  const int a = declare_dense(m, "a", s.m, s.k);
  const int b = declare_dense(m, "b", s.k, s.n);  // col-major
  const int out = m.gbuf("out_values", mask.nnzv * s.v * 2);

  for (std::int64_t vr : {std::int64_t{0}, mask.vec_rows - 1}) {
    for (std::int64_t cnt : cnt_probes(mask.cnt_max)) {
      const std::int64_t begin = mask.nnzv - cnt;
      m.ldg1(mask.row_ptr, Ival(vr * 4), 4, 4, 0x3u, "sddmm_fpu.row_ptr");
      const std::int64_t per_cta = 4 * tile_n;
      const std::int64_t tiles = std::max<std::int64_t>(
          1, ceil_div<std::int64_t>(std::max<std::int64_t>(cnt, 1), per_cta));
      for (std::int64_t tile : {std::int64_t{0}, tiles - 1}) {
        const std::int64_t j0 = per_cta * tile;
        if (j0 >= cnt) continue;
        const int jcnt = static_cast<int>(
            std::min<std::int64_t>(per_cta, cnt - j0));
        m.ldg1(mask.col_idx, Ival((begin + j0) * 4), 4, 4,
               prefix_mask(jcnt), "sddmm_fpu.cols");
        for (std::int64_t k0 :
             {std::int64_t{0}, std::int64_t{(s.k - 1) / 64 * 64}}) {
          const int kcnt =
              static_cast<int>(std::min<std::int64_t>(64, s.k - k0));
          const int kpre = static_cast<int>(ceil_div(kcnt, 8));
          // A rows, re-loaded by all four subwarps (8-half granularity).
          for (int t : {0, s.v - 1}) {
            const Ival base((vr * s.v + t) * s.k * 2 + k0 * 2);
            m.ldg(a, {base, base, base, base}, 8, 16, 16,
                  rep_prefix(4, 8, kpre), "sddmm_fpu.a_rows");
          }
          // B columns gathered via the mask, one per subwarp-owned
          // output vector.
          const Ival col(0, s.n - 1);
          const Ival base = col * (s.k * 2) + k0 * 2;
          m.ldg(b, {base, base, base, base}, 8, 16, 16,
                rep_prefix(4, 8, kpre), "sddmm_fpu.b_cols");
        }
        m.stg1(out, Ival((begin + j0) * s.v * 2), s.v * 2, s.v * 2,
               prefix_mask(std::min(jcnt, 32)), "sddmm_fpu.writeback");
      }
    }
  }
  m.finish();
}

void sddmm_csr_fine(CtaModel& m, const ShapeCorner& s,
                    const gpusim::DeviceConfig& hw) {
  (void)hw;
  if (!m.require(s.v == 1, "sddmm_csr_fine.v", "requires V == 1")) return;
  m.launch(1, 0);
  const CvsBufs mask = declare_cvs(m, s.m, s.n, 1, "mask");
  const int a = declare_dense(m, "a", s.m, s.k);
  const int b = declare_dense(m, "b", s.k, s.n);  // col-major
  const int out = m.gbuf("out_values", mask.nnzv * 2);

  for (std::int64_t row : {std::int64_t{0}, std::int64_t{s.m - 1}}) {
    for (std::int64_t cnt : cnt_probes(mask.cnt_max)) {
      const std::int64_t begin = mask.nnzv - cnt;
      m.ldg1(mask.row_ptr, Ival(row * 4), 4, 4, 0x3u,
             "sddmm_csr_fine.row_ptr");
      if (cnt == 0) continue;
      for (std::int64_t j : {begin, begin + cnt - 1}) {
        m.ldg1(mask.col_idx, Ival(j * 4), 4, 4, 0x1u,
               "sddmm_csr_fine.col");
        const std::int64_t chunks = ceil_div<std::int64_t>(s.k, 32);
        for (std::int64_t ch : {std::int64_t{0}, chunks - 1}) {
          const int nl =
              static_cast<int>(std::min<std::int64_t>(32, s.k - 32 * ch));
          // A row / B column chunks: exact 2 B-per-lane prefixes.
          m.ldg1(a, Ival(row * s.k * 2 + 32 * ch * 2), 2, 2,
                 prefix_mask(nl), "sddmm_csr_fine.a_chunk");
          const Ival col(0, s.n - 1);
          m.ldg1(b, col * (s.k * 2) + 32 * ch * 2, 2, 2, prefix_mask(nl),
                 "sddmm_csr_fine.b_chunk");
        }
        m.stg1(out, Ival(j * 2), 2, 2, 0x1u, "sddmm_csr_fine.writeback");
      }
    }
  }
  m.finish();
}

// ---- non-registry kernels (verifier extra set) ---------------------

void sgemm_fpu(CtaModel& m, const ShapeCorner& s,
               const gpusim::DeviceConfig& hw) {
  (void)hw;
  if (!m.require(s.m % 64 == 0 && s.n % 64 == 0 && s.k % 16 == 0,
                 "sgemm_fpu.shape",
                 "requires M, N % 64 == 0 and K % 16 == 0")) {
    return;
  }
  constexpr std::int64_t kTileM = 64, kTileN = 64, kTileK = 16;
  const std::int64_t smem = (kTileM * kTileK + kTileK * kTileN) * 4;
  const auto a_off = [](std::int64_t r, std::int64_t kk) {
    return (r * kTileK + kk) * 4;
  };
  const auto b_off = [](std::int64_t kk, std::int64_t nn) {
    return (kTileM * kTileK + kk * kTileN + nn) * 4;
  };
  m.launch(4, smem);
  const int a = m.gbuf("a", s.m * s.k * 4, 60);
  const int b = m.gbuf("b", s.k * s.n * 4, 60);
  const int c = m.gbuf("c", s.m * s.n * 4, 60);

  for (std::int64_t m0 : {std::int64_t{0}, s.m - kTileM}) {
    for (std::int64_t n0 : {std::int64_t{0}, s.n - kTileN}) {
      for (std::int64_t k0 : {std::int64_t{0}, s.k - kTileK}) {
        for (int w = 0; w < 4; ++w) {
          for (int pass = 0; pass < 2; ++pass) {
            std::vector<Ival> gb;
            std::vector<std::int64_t> sb;
            for (int seg = 0; seg < 8; ++seg) {
              const std::int64_t r = 16 * w + 8 * pass + seg;
              gb.push_back(Ival((m0 + r) * s.k * 4 + k0 * 4));
              sb.push_back(a_off(r, 0));
            }
            m.ldg(a, gb, 4, 16, 16, 0xFFFFFFFFu, "sgemm_fpu.stage_a");
            m.sts(w, sb, 4, 16, 16, 0xFFFFFFFFu, "sgemm_fpu.stage_a.sts");
          }
          for (int pass = 0; pass < 2; ++pass) {
            std::vector<Ival> gb;
            std::vector<std::int64_t> sb;
            for (int seg = 0; seg < 2; ++seg) {
              const std::int64_t kk = 4 * w + 2 * pass + seg;
              gb.push_back(Ival((k0 + kk) * s.n * 4 + n0 * 4));
              sb.push_back(b_off(kk, 0));
            }
            m.ldg(b, gb, 16, 16, 16, 0xFFFFFFFFu, "sgemm_fpu.stage_b");
            m.sts(w, sb, 16, 16, 16, 0xFFFFFFFFu, "sgemm_fpu.stage_b.sts");
          }
        }
        m.sync();
        for (int w = 0; w < 4; ++w) {
          for (int rep = 0; rep < 6; ++rep) {
            m.lds(w, {rep * 128}, 32, 4, 4, 0xFFFFFFFFu,
                  "sgemm_fpu.operand_lds");
          }
        }
        m.sync();
      }
      for (int w = 0; w < 4; ++w) {
        for (std::int64_t g : {std::int64_t{0}, std::int64_t{7}}) {
          std::vector<Ival> gb;
          for (int seg = 0; seg < 2; ++seg) {
            gb.push_back(Ival((m0 + 16 * w + 2 * g + seg) * s.n * 4 +
                              n0 * 4));
          }
          m.stg(c, gb, 16, 16, 16, 0xFFFFFFFFu, "sgemm_fpu.writeback");
        }
      }
    }
  }
  m.finish();
}

void sparse_softmax(CtaModel& m, const ShapeCorner& s,
                    const gpusim::DeviceConfig& hw) {
  (void)hw;
  if (!m.require(s.v == 1 || s.v == 2 || s.v == 4 || s.v == 8,
                 "sparse_softmax.v", "requires V in {1,2,4,8}")) {
    return;
  }
  if (!m.require(s.m % s.v == 0, "sparse_softmax.shape",
                 "requires M % V == 0")) {
    return;
  }
  m.launch(1, 0);
  const CvsBufs mask = declare_cvs(m, s.m, s.n, s.v, "mask");
  const int in = m.gbuf("in", mask.nnzv * s.v * 2);
  const int out = m.gbuf("out", mask.nnzv * s.v * 2);

  for (std::int64_t vr : {std::int64_t{0}, mask.vec_rows - 1}) {
    for (std::int64_t cnt : cnt_probes(mask.cnt_max)) {
      const std::int64_t begin = mask.nnzv - cnt;
      m.ldg1(mask.row_ptr, Ival(vr * 4), 4, 4, 0x3u,
             "sparse_softmax.row_ptr");
      if (cnt == 0) continue;
      const std::int64_t chunks = ceil_div<std::int64_t>(cnt, 32);
      // Three passes (max, sum, normalize+store) over the row's
      // vectors; all spans are exact V-wide prefixes.
      for (int pass = 0; pass < 3; ++pass) {
        for (std::int64_t ch : {std::int64_t{0}, chunks - 1}) {
          const int cc =
              static_cast<int>(std::min<std::int64_t>(32, cnt - 32 * ch));
          m.ldg1(in, Ival((begin + 32 * ch) * s.v * 2), s.v * 2, s.v * 2,
                 prefix_mask(cc), "sparse_softmax.load");
          if (pass == 2) {
            m.stg1(out, Ival((begin + 32 * ch) * s.v * 2), s.v * 2,
                   s.v * 2, prefix_mask(cc), "sparse_softmax.store");
          }
        }
      }
    }
  }
  m.finish();
}

void dense_softmax(CtaModel& m, const ShapeCorner& s,
                   const gpusim::DeviceConfig& hw) {
  (void)hw;
  if (!m.require(s.n % 8 == 0, "dense_softmax.shape",
                 "requires cols % 8 == 0")) {
    return;
  }
  m.launch(1, 0);
  const int in = m.gbuf("in", static_cast<std::int64_t>(s.m) * s.n * 2);
  const int out = m.gbuf("out", static_cast<std::int64_t>(s.m) * s.n * 2);
  for (std::int64_t row : {std::int64_t{0}, std::int64_t{s.m - 1}}) {
    const std::int64_t chunks =
        ceil_div<std::int64_t>(static_cast<std::int64_t>(s.n) * 2, 512);
    for (std::int64_t ch : {std::int64_t{0}, chunks - 1}) {
      const std::int64_t base = row * s.n * 2 + ch * 512;
      const std::int64_t left = (row + 1) * static_cast<std::int64_t>(s.n) *
                                    2 - base;
      const int lanes =
          static_cast<int>(std::min<std::int64_t>(32, left / 16));
      for (int pass = 0; pass < 3; ++pass) {
        m.ldg1(in, Ival(base), 16, 16, prefix_mask(lanes),
               "dense_softmax.load");
        if (pass == 2) {
          m.stg1(out, Ival(base), 16, 16, prefix_mask(lanes),
                 "dense_softmax.store");
        }
      }
    }
  }
  m.finish();
}

}  // namespace vsparse::kernels::contracts

#include "vsparse/kernels/spmm/spmm_fpu.hpp"

#include <algorithm>
#include <cstring>
#include <string>

#include "vsparse/common/math.hpp"
#include "vsparse/fp16/vec.hpp"

namespace vsparse::kernels {

namespace {

using gpusim::Cta;
using gpusim::Lanes;
using gpusim::Op;
using gpusim::Warp;

constexpr int kSubwarpSize = 8;
constexpr int kSubwarps = 4;  // per CTA (one warp)

template <class T>
KernelRun spmm_fpu_impl(gpusim::Device& dev, const CvsDeviceT<T>& a,
                        const DenseDevice<T>& b, DenseDevice<T>& c,
                        const SpmmFpuParams& params,
                        const gpusim::SimOptions& sim) {
  const int m = a.rows, k = a.cols, n = b.cols;
  const int v = a.v;
  VSPARSE_CHECK(b.rows == k && c.rows == m && c.cols == n);
  VSPARSE_CHECK(b.layout == Layout::kRowMajor &&
                c.layout == Layout::kRowMajor);
  VSPARSE_CHECK(v == 1 || v == 2 || v == 4 || v == 8);
  const int tile_n = params.tile_n;
  const int tile_k = params.tile_k;
  VSPARSE_CHECK(tile_n % kSubwarpSize == 0);
  VSPARSE_CHECK_MSG(n % tile_n == 0, "N must be a multiple of TileN="
                                         << tile_n);
  VSPARSE_CHECK(tile_k % 16 == 0 && tile_k <= 64);
  VSPARSE_CHECK(tile_n <= 64);
  const int wt = tile_n / kSubwarpSize;  ///< output columns per thread
  VSPARSE_CHECK(static_cast<std::size_t>(wt) * sizeof(T) <= 16);

  const int vec_rows = a.vec_rows();
  const int n_tiles = n / tile_n;
  const int row_groups = ceil_div(vec_rows, kSubwarps);

  gpusim::LaunchConfig cfg;
  cfg.grid = row_groups * n_tiles;
  cfg.cta_threads = 32;
  cfg.smem_bytes = static_cast<std::size_t>(kSubwarps) * tile_k *
                       (4 + static_cast<std::size_t>(v) * sizeof(T)) +
                   16;  // historical tail slack; kept so occupancy
                        // (smem per CTA) matches the calibrated model
  // Calibration (§7.2.2): the fully-unrolled V x TileK x (TileN/8)
  // loops produce 3776 / 6968 SASS lines at V = 4 / 8 (TileK=16, wt=2).
  cfg.profile = {
      .name = std::string(sizeof(T) == 2 ? "spmm_fpu_v" : "spmm_fpu_f32_v") +
              std::to_string(v),
      .regs_per_thread = 24 + 2 * v * wt,
      .static_instrs = 600 + 25 * v * tile_k * wt,
      .icache_pressure = 1.0,
      .ilp_factor = 1.0,
  };

  auto row_ptr = a.row_ptr.host();

  gpusim::KernelStats stats = gpusim::launch(dev, cfg, [&](Cta& cta) {
    // Row groups enumerate fastest (B-slice L1 reuse, as in Sputnik).
    const int vr0 = (cta.cta_id() % row_groups) * kSubwarps;
    const int n0 = (cta.cta_id() / row_groups) * tile_n;
    Warp w = cta.warp(0);

    // Row extents for the 4 vector-rows (one LDG.32, 5 lanes, affine).
    {
      Lanes<std::int32_t> dst{};
      std::uint32_t mask = 0;
      for (int l = 0; l < 5 && vr0 + l <= vec_rows; ++l) mask |= 1u << l;
      w.ldg_span(a.row_ptr.addr(static_cast<std::size_t>(vr0)), 4, dst, mask);
      w.count(Op::kImad, 4);
    }
    std::int32_t begin[kSubwarps], cnt[kSubwarps];
    int max_cnt = 0;
    for (int s = 0; s < kSubwarps; ++s) {
      if (vr0 + s < vec_rows) {
        begin[s] = row_ptr[static_cast<std::size_t>(vr0 + s)];
        cnt[s] = row_ptr[static_cast<std::size_t>(vr0 + s) + 1] - begin[s];
      } else {
        begin[s] = 0;
        cnt[s] = 0;
      }
      max_cnt = std::max(max_cnt, cnt[s]);
    }

    // Per-subwarp fp32 accumulators for the V x TileN tile (zero only
    // the [v][tile_n] region the parameters actually use).
    float acc[kSubwarps][8][64];
    for (int s = 0; s < kSubwarps; ++s) {
      for (int vv = 0; vv < v; ++vv) {
        std::memset(acc[s][vv], 0,
                    static_cast<std::size_t>(tile_n) * sizeof(float));
      }
    }

    const auto idx_off = [&](int s, int j) {
      return static_cast<std::uint32_t>((s * tile_k + j) * 4);
    };
    const auto val_off = [&](int s, int j, int t) {
      return static_cast<std::uint32_t>(kSubwarps * tile_k * 4 +
                                        ((s * tile_k + j) * v + t) *
                                            static_cast<int>(sizeof(T)));
    };
    const auto staged_idx = [&](int s, int j) {
      return *reinterpret_cast<const std::int32_t*>(cta.smem() +
                                                    idx_off(s, j));
    };
    const auto staged_val = [&](int s, int j, int t) {
      return static_cast<float>(
          *reinterpret_cast<const T*>(cta.smem() + val_off(s, j, t)));
    };

    const int steps = ceil_div(max_cnt, tile_k);
    for (int step = 0; step < steps; ++step) {
      const int i0 = step * tile_k;

      // ---- stage LHS indices: each lane takes two consecutive ints of
      // its subwarp's chunk per pass (one LDG.64 when tile_k=16).  Each
      // subwarp reads an affine run, so the whole pass is one 4-segment
      // span (active lanes form a per-segment prefix). ----------------
      for (int p = 0; p < tile_k / 16; ++p) {
        Lanes<std::array<std::int32_t, 2>> dst{};
        std::uint64_t gbase[kSubwarps] = {};
        std::uint32_t sbase[kSubwarps] = {};
        std::uint32_t mask = 0;
        for (int s = 0; s < kSubwarps; ++s) {
          const int rem = cnt[s] - (i0 + 16 * p);  // indices left this pass
          const int nt = std::clamp((rem + 1) / 2, 0, kSubwarpSize);
          if (nt == 0) continue;
          gbase[s] = a.col_idx.addr(
              static_cast<std::size_t>(begin[s] + i0 + 16 * p));
          sbase[s] = idx_off(s, 16 * p);
          mask |= ((1u << nt) - 1u) << (kSubwarpSize * s);
        }
        w.count(Op::kImad, 2);
        w.ldg_span(gbase, kSubwarps, kSubwarpSize, 8, dst, mask);
        w.sts_span(sbase, kSubwarps, kSubwarpSize, 8, dst, mask);
      }

      // ---- stage LHS values: one V-vector per lane per pass (same
      // 4-segment span shape, stride = the vector's byte size). --------
      const int passes = tile_k / kSubwarpSize;
      const std::uint32_t vbytes =
          static_cast<std::uint32_t>(v) * static_cast<std::uint32_t>(sizeof(T));
      for (int p = 0; p < passes; ++p) {
        const int j0 = p * kSubwarpSize;
        std::uint64_t gbase[kSubwarps] = {};
        std::uint32_t sbase[kSubwarps] = {};
        std::uint32_t mask = 0;
        for (int s = 0; s < kSubwarps; ++s) {
          const int nt = std::clamp(cnt[s] - (i0 + j0), 0, kSubwarpSize);
          if (nt == 0) continue;
          gbase[s] = a.values.addr(static_cast<std::size_t>(begin[s] + i0 + j0) *
                                   static_cast<std::size_t>(v));
          sbase[s] = val_off(s, j0, 0);
          mask |= ((1u << nt) - 1u) << (kSubwarpSize * s);
        }
        w.count(Op::kImad, 2);
        switch (static_cast<int>(vbytes)) {
          case 2: {
            Lanes<std::array<std::byte, 2>> d;
            w.ldg_span(gbase, kSubwarps, kSubwarpSize, vbytes, d, mask);
            w.sts_span(sbase, kSubwarps, kSubwarpSize, vbytes, d, mask);
            break;
          }
          case 4: {
            Lanes<std::array<std::byte, 4>> d;
            w.ldg_span(gbase, kSubwarps, kSubwarpSize, vbytes, d, mask);
            w.sts_span(sbase, kSubwarps, kSubwarpSize, vbytes, d, mask);
            break;
          }
          case 8: {
            Lanes<std::array<std::byte, 8>> d;
            w.ldg_span(gbase, kSubwarps, kSubwarpSize, vbytes, d, mask);
            w.sts_span(sbase, kSubwarps, kSubwarpSize, vbytes, d, mask);
            break;
          }
          case 16: {
            Lanes<std::array<std::byte, 16>> d;
            w.ldg_span(gbase, kSubwarps, kSubwarpSize, vbytes, d, mask);
            w.sts_span(sbase, kSubwarps, kSubwarpSize, vbytes, d, mask);
            break;
          }
          default: {  // float V=8: 32 B per vector, two LDG.128/STS.128
            std::uint64_t gb2[kSubwarps];
            std::uint32_t sb2[kSubwarps];
            for (int s = 0; s < kSubwarps; ++s) {
              gb2[s] = gbase[s] + 16;
              sb2[s] = sbase[s] + 16;
            }
            Lanes<std::array<std::byte, 16>> lo, hi;
            w.ldg_span(gbase, kSubwarps, kSubwarpSize, vbytes, lo, mask);
            w.ldg_span(gb2, kSubwarps, kSubwarpSize, vbytes, hi, mask);
            w.sts_span(sbase, kSubwarps, kSubwarpSize, vbytes, lo, mask);
            w.sts_span(sb2, kSubwarps, kSubwarpSize, vbytes, hi, mask);
            break;
          }
        }
      }

      // ---- walk the staged nonzeros (fully unrolled in SASS) ---------
      for (int kk = 0; kk < tile_k; ++kk) {
        std::uint32_t active = 0;
        for (int s = 0; s < kSubwarps; ++s) {
          if (i0 + kk < cnt[s]) {
            active |= 0xFFu << (8 * s);
          }
        }
        if (active == 0) continue;

        // Broadcast LDS of the staged values for this k (indices stay
        // in registers after staging, as Sputnik does).  The read is no
        // wider than the staged vector (LDS.U16 when a value slot is a
        // single half): a fixed 4B read would over-read the last staged
        // entry into bytes no sts ever wrote.
        {
          std::uint32_t soff[kSubwarps];
          for (int s = 0; s < kSubwarps; ++s) soff[s] = val_off(s, kk, 0);
          if (static_cast<int>(v * sizeof(T)) == 2) {
            Lanes<std::array<std::byte, 2>> d{};
            w.lds_span(soff, kSubwarps, kSubwarpSize, 0, d, active);
          } else {
            Lanes<std::array<std::byte, 4>> d{};
            w.lds_span(soff, kSubwarps, kSubwarpSize, 0, d, active);
          }
        }
        w.count(Op::kImad, 2);
        w.count(Op::kIadd3, 1);

        // Load each thread's B-row slice straight to registers: each
        // subwarp strides through one B row, a 4-segment affine span.
        std::uint64_t gbase[kSubwarps] = {};
        for (int s = 0; s < kSubwarps; ++s) {
          if (!(active & (1u << (kSubwarpSize * s)))) continue;
          gbase[s] = b.addr(staged_idx(s, kk), n0);
        }
        // MACs: V * wt per thread.  Half precision uses HMUL + FADD
        // (fp32 accumulate, §3.1); single uses FFMA.  The staged A
        // values are shared by all 8 lanes of a subwarp, so widen them
        // once per subwarp (exact), and each lane's B slice once per
        // lane instead of once per (vv, e) — same products, same
        // per-accumulator fold order, bit-identical results.  The MAC
        // loop consumes the span destination directly (no staging copy);
        // only lanes the span wrote are read.
        // The slice-width switch below fixes the per-lane element count
        // at compile time (kWt = SB / sizeof(T)), so the innermost MAC
        // loops fully unroll/vectorize instead of iterating a runtime
        // bound.  Same products, same fold order, bit-identical.
        const auto mac = [&]<std::size_t SB>(
                             const Lanes<std::array<std::byte, SB>>& d) {
          constexpr int kWt = static_cast<int>(SB / sizeof(T));
          if constexpr (sizeof(T) == 2) {
            w.count(Op::kHfma, static_cast<std::uint64_t>(v * kWt));
            w.count(Op::kFfma, static_cast<std::uint64_t>(v * kWt));
          } else {
            w.count(Op::kFfma, static_cast<std::uint64_t>(v * kWt));
          }
          for (int s = 0; s < kSubwarps; ++s) {
            if (!(active & (1u << (kSubwarpSize * s)))) continue;
            float av[8];
            if constexpr (sizeof(T) == 2) {
              // The v staged A values sit contiguously in smem: one
              // batched widen (exact) replaces v scalar converts.
              half_to_float_n(reinterpret_cast<const half_t*>(
                                  cta.smem() + val_off(s, kk, 0)),
                              av, static_cast<std::size_t>(v));
            } else {
              for (int vv = 0; vv < v; ++vv) av[vv] = staged_val(s, kk, vv);
            }
            for (int t = 0; t < kSubwarpSize; ++t) {
              const int lane = kSubwarpSize * s + t;
              const auto* bvals = reinterpret_cast<const T*>(
                  d[static_cast<std::size_t>(lane)].data());
              float bf[8];
              if constexpr (sizeof(T) == 2) {
                half_to_float_n(bvals, bf, static_cast<std::size_t>(kWt));
              } else {
                for (int e = 0; e < kWt; ++e) bf[e] = bvals[e];
              }
              for (int vv = 0; vv < v; ++vv) {
                for (int e = 0; e < kWt; ++e) {
                  acc[s][vv][kWt * t + e] += av[vv] * bf[e];
                }
              }
            }
          }
        };
        const int slice_bytes = wt * static_cast<int>(sizeof(T));
        const std::uint32_t sstride = static_cast<std::uint32_t>(slice_bytes);
        switch (slice_bytes) {
          case 2: {
            Lanes<std::array<std::byte, 2>> d;
            w.ldg_span(gbase, kSubwarps, kSubwarpSize, sstride, d, active);
            mac(d);
            break;
          }
          case 4: {
            Lanes<std::array<std::byte, 4>> d;
            w.ldg_span(gbase, kSubwarps, kSubwarpSize, sstride, d, active);
            mac(d);
            break;
          }
          case 8: {
            Lanes<std::array<std::byte, 8>> d;
            w.ldg_span(gbase, kSubwarps, kSubwarpSize, sstride, d, active);
            mac(d);
            break;
          }
          default: {
            Lanes<std::array<std::byte, 16>> d;
            w.ldg_span(gbase, kSubwarps, kSubwarpSize, sstride, d, active);
            mac(d);
            break;
          }
        }
      }
    }

    // ---- writeback ----------------------------------------------------
    if constexpr (sizeof(T) == 2) {
      w.count(Op::kCvt, static_cast<std::uint64_t>(v));
    }
    for (int vv = 0; vv < v; ++vv) {
      std::uint64_t gbase[kSubwarps] = {};
      std::uint32_t mask = 0;
      Lanes<std::array<std::byte, 16>> frag{};
      for (int lane = 0; lane < 32; ++lane) {
        const int s = lane / kSubwarpSize;
        const int t = lane % kSubwarpSize;
        if (vr0 + s >= vec_rows) continue;
        for (int e = 0; e < wt; ++e) {
          const T value = T(acc[s][vv][wt * t + e]);
          std::memcpy(frag[static_cast<std::size_t>(lane)].data() +
                          e * sizeof(T),
                      &value, sizeof(T));
        }
        mask |= 1u << lane;
      }
      for (int s = 0; s < kSubwarps; ++s) {
        if (vr0 + s >= vec_rows) continue;
        gbase[s] = c.addr((vr0 + s) * v + vv, n0);
      }
      const int slice_bytes = wt * static_cast<int>(sizeof(T));
      const std::uint32_t sstride = static_cast<std::uint32_t>(slice_bytes);
      switch (slice_bytes) {
        case 2: {
          Lanes<std::array<std::byte, 2>> d{};
          for (int l = 0; l < 32; ++l)
            std::memcpy(d[static_cast<std::size_t>(l)].data(),
                        frag[static_cast<std::size_t>(l)].data(), 2);
          w.stg_span(gbase, kSubwarps, kSubwarpSize, sstride, d, mask);
          break;
        }
        case 4: {
          Lanes<std::array<std::byte, 4>> d{};
          for (int l = 0; l < 32; ++l)
            std::memcpy(d[static_cast<std::size_t>(l)].data(),
                        frag[static_cast<std::size_t>(l)].data(), 4);
          w.stg_span(gbase, kSubwarps, kSubwarpSize, sstride, d, mask);
          break;
        }
        case 8: {
          Lanes<std::array<std::byte, 8>> d{};
          for (int l = 0; l < 32; ++l)
            std::memcpy(d[static_cast<std::size_t>(l)].data(),
                        frag[static_cast<std::size_t>(l)].data(), 8);
          w.stg_span(gbase, kSubwarps, kSubwarpSize, sstride, d, mask);
          break;
        }
        default:
          w.stg_span(gbase, kSubwarps, kSubwarpSize, sstride, frag, mask);
          break;
      }
    }
  }, sim);

  return {stats, cfg};
}

}  // namespace

KernelRun spmm_fpu_subwarp(gpusim::Device& dev, const CvsDevice& a,
                           const DenseDevice<half_t>& b,
                           DenseDevice<half_t>& c,
                           const SpmmFpuParams& params,
                           const gpusim::SimOptions& sim) {
  return spmm_fpu_impl<half_t>(dev, a, b, c, params, sim);
}

KernelRun spmm_fpu_subwarp_f32(gpusim::Device& dev,
                               const CvsDeviceT<float>& a,
                               const DenseDevice<float>& b,
                               DenseDevice<float>& c,
                               const SpmmFpuParams& params,
                               const gpusim::SimOptions& sim) {
  return spmm_fpu_impl<float>(dev, a, b, c, params, sim);
}

}  // namespace vsparse::kernels

#include "vsparse/kernels/spmm/spmm_fpu.hpp"

#include <algorithm>
#include <string>

#include "vsparse/common/math.hpp"
#include "vsparse/fp16/vec.hpp"

namespace vsparse::kernels {

namespace {

using gpusim::AddrLanes;
using gpusim::Cta;
using gpusim::Lanes;
using gpusim::Op;
using gpusim::Warp;

constexpr int kSubwarpSize = 8;
constexpr int kSubwarps = 4;  // per CTA (one warp)

/// Issue one warp-wide global load where lane `l` reads `width` bytes
/// from addr[l]; splits into the widest legal LDG ops.  Returns data as
/// raw bytes per lane.
template <int kWidth>
void ldg_bytes(Warp& w, const AddrLanes& addr, std::uint32_t mask,
               std::array<std::array<std::byte, kWidth>, 32>& out) {
  static_assert(kWidth == 2 || kWidth == 4 || kWidth == 8 || kWidth == 16 ||
                kWidth == 32);
  if constexpr (kWidth <= 16) {
    Lanes<std::array<std::byte, kWidth>> dst;
    w.ldg(addr, dst, mask);
    for (int l = 0; l < 32; ++l) out[static_cast<std::size_t>(l)] = dst[static_cast<std::size_t>(l)];
  } else {
    // 32 B per lane: two LDG.128.
    for (int half = 0; half < 2; ++half) {
      AddrLanes a2 = addr;
      for (auto& x : a2) x += static_cast<std::uint64_t>(16 * half);
      Lanes<std::array<std::byte, 16>> dst;
      w.ldg(a2, dst, mask);
      for (int l = 0; l < 32; ++l) {
        std::memcpy(out[static_cast<std::size_t>(l)].data() + 16 * half,
                    dst[static_cast<std::size_t>(l)].data(), 16);
      }
    }
  }
}

template <class T>
KernelRun spmm_fpu_impl(gpusim::Device& dev, const CvsDeviceT<T>& a,
                        const DenseDevice<T>& b, DenseDevice<T>& c,
                        const SpmmFpuParams& params,
                        const gpusim::SimOptions& sim) {
  const int m = a.rows, k = a.cols, n = b.cols;
  const int v = a.v;
  VSPARSE_CHECK(b.rows == k && c.rows == m && c.cols == n);
  VSPARSE_CHECK(b.layout == Layout::kRowMajor &&
                c.layout == Layout::kRowMajor);
  VSPARSE_CHECK(v == 1 || v == 2 || v == 4 || v == 8);
  const int tile_n = params.tile_n;
  const int tile_k = params.tile_k;
  VSPARSE_CHECK(tile_n % kSubwarpSize == 0);
  VSPARSE_CHECK_MSG(n % tile_n == 0, "N must be a multiple of TileN="
                                         << tile_n);
  VSPARSE_CHECK(tile_k % 16 == 0 && tile_k <= 64);
  VSPARSE_CHECK(tile_n <= 64);
  const int wt = tile_n / kSubwarpSize;  ///< output columns per thread
  VSPARSE_CHECK(static_cast<std::size_t>(wt) * sizeof(T) <= 16);

  const int vec_rows = a.vec_rows();
  const int n_tiles = n / tile_n;
  const int row_groups = ceil_div(vec_rows, kSubwarps);

  gpusim::LaunchConfig cfg;
  cfg.grid = row_groups * n_tiles;
  cfg.cta_threads = 32;
  cfg.smem_bytes = static_cast<std::size_t>(kSubwarps) * tile_k *
                       (4 + static_cast<std::size_t>(v) * sizeof(T)) +
                   16;  // historical tail slack; kept so occupancy
                        // (smem per CTA) matches the calibrated model
  // Calibration (§7.2.2): the fully-unrolled V x TileK x (TileN/8)
  // loops produce 3776 / 6968 SASS lines at V = 4 / 8 (TileK=16, wt=2).
  cfg.profile = {
      .name = std::string(sizeof(T) == 2 ? "spmm_fpu_v" : "spmm_fpu_f32_v") +
              std::to_string(v),
      .regs_per_thread = 24 + 2 * v * wt,
      .static_instrs = 600 + 25 * v * tile_k * wt,
      .icache_pressure = 1.0,
      .ilp_factor = 1.0,
  };

  auto row_ptr = a.row_ptr.host();

  gpusim::KernelStats stats = gpusim::launch(dev, cfg, [&](Cta& cta) {
    // Row groups enumerate fastest (B-slice L1 reuse, as in Sputnik).
    const int vr0 = (cta.cta_id() % row_groups) * kSubwarps;
    const int n0 = (cta.cta_id() / row_groups) * tile_n;
    Warp w = cta.warp(0);

    // Row extents for the 4 vector-rows (one LDG.32, 5 lanes).
    {
      AddrLanes addr{};
      Lanes<std::int32_t> dst{};
      std::uint32_t mask = 0;
      for (int l = 0; l < 5 && vr0 + l <= vec_rows; ++l) {
        addr[static_cast<std::size_t>(l)] =
            a.row_ptr.addr(static_cast<std::size_t>(vr0 + l));
        mask |= 1u << l;
      }
      w.ldg(addr, dst, mask);
      w.count(Op::kImad, 4);
    }
    std::int32_t begin[kSubwarps], cnt[kSubwarps];
    int max_cnt = 0;
    for (int s = 0; s < kSubwarps; ++s) {
      if (vr0 + s < vec_rows) {
        begin[s] = row_ptr[static_cast<std::size_t>(vr0 + s)];
        cnt[s] = row_ptr[static_cast<std::size_t>(vr0 + s) + 1] - begin[s];
      } else {
        begin[s] = 0;
        cnt[s] = 0;
      }
      max_cnt = std::max(max_cnt, cnt[s]);
    }

    // Per-subwarp fp32 accumulators for the V x TileN tile.
    float acc[kSubwarps][8][64] = {};

    const auto idx_off = [&](int s, int j) {
      return static_cast<std::uint32_t>((s * tile_k + j) * 4);
    };
    const auto val_off = [&](int s, int j, int t) {
      return static_cast<std::uint32_t>(kSubwarps * tile_k * 4 +
                                        ((s * tile_k + j) * v + t) *
                                            static_cast<int>(sizeof(T)));
    };
    const auto staged_idx = [&](int s, int j) {
      return *reinterpret_cast<const std::int32_t*>(cta.smem() +
                                                    idx_off(s, j));
    };
    const auto staged_val = [&](int s, int j, int t) {
      return static_cast<float>(
          *reinterpret_cast<const T*>(cta.smem() + val_off(s, j, t)));
    };

    const int steps = ceil_div(max_cnt, tile_k);
    for (int step = 0; step < steps; ++step) {
      const int i0 = step * tile_k;

      // ---- stage LHS indices: each lane takes two consecutive ints of
      // its subwarp's chunk per pass (one LDG.64 when tile_k=16). ------
      for (int p = 0; p < tile_k / 16; ++p) {
        AddrLanes addr{};
        Lanes<std::array<std::int32_t, 2>> dst{};
        Lanes<std::uint32_t> soff{};
        std::uint32_t mask = 0;
        for (int lane = 0; lane < 32; ++lane) {
          const int s = lane / kSubwarpSize;
          const int t = lane % kSubwarpSize;
          const int j = 16 * p + 2 * t;  // two consecutive indices per lane
          if (i0 + j >= cnt[s]) continue;
          addr[static_cast<std::size_t>(lane)] = a.col_idx.addr(
              static_cast<std::size_t>(begin[s] + i0 + j));
          soff[static_cast<std::size_t>(lane)] = idx_off(s, j);
          mask |= 1u << lane;
        }
        w.count(Op::kImad, 2);
        w.ldg(addr, dst, mask);
        w.sts(soff, dst, mask);
      }

      // ---- stage LHS values: one V-vector per lane per pass. ---------
      const int passes = tile_k / kSubwarpSize;
      for (int p = 0; p < passes; ++p) {
        AddrLanes addr{};
        Lanes<std::uint32_t> soff{};
        std::uint32_t mask = 0;
        for (int lane = 0; lane < 32; ++lane) {
          const int s = lane / kSubwarpSize;
          const int t = lane % kSubwarpSize;
          const int j = p * kSubwarpSize + t;
          if (i0 + j >= cnt[s]) continue;
          addr[static_cast<std::size_t>(lane)] = a.values.addr(
              static_cast<std::size_t>(begin[s] + i0 + j) *
              static_cast<std::size_t>(v));
          soff[static_cast<std::size_t>(lane)] = val_off(s, j, 0);
          mask |= 1u << lane;
        }
        w.count(Op::kImad, 2);
        switch (static_cast<int>(v * sizeof(T))) {
          case 2: {
            Lanes<std::array<std::byte, 2>> d;
            w.ldg(addr, d, mask);
            w.sts(soff, d, mask);
            break;
          }
          case 4: {
            Lanes<std::array<std::byte, 4>> d;
            w.ldg(addr, d, mask);
            w.sts(soff, d, mask);
            break;
          }
          case 8: {
            Lanes<std::array<std::byte, 8>> d;
            w.ldg(addr, d, mask);
            w.sts(soff, d, mask);
            break;
          }
          case 16: {
            Lanes<std::array<std::byte, 16>> d;
            w.ldg(addr, d, mask);
            w.sts(soff, d, mask);
            break;
          }
          default: {  // float V=8: 32 B per vector, two passes
            std::array<std::array<std::byte, 32>, 32> d;
            ldg_bytes<32>(w, addr, mask, d);
            Lanes<std::array<std::byte, 16>> lo, hi;
            for (int l = 0; l < 32; ++l) {
              std::memcpy(lo[static_cast<std::size_t>(l)].data(),
                          d[static_cast<std::size_t>(l)].data(), 16);
              std::memcpy(hi[static_cast<std::size_t>(l)].data(),
                          d[static_cast<std::size_t>(l)].data() + 16, 16);
            }
            w.sts(soff, lo, mask);
            Lanes<std::uint32_t> soff2 = soff;
            for (auto& o : soff2) o += 16;
            w.sts(soff2, hi, mask);
            break;
          }
        }
      }

      // ---- walk the staged nonzeros (fully unrolled in SASS) ---------
      for (int kk = 0; kk < tile_k; ++kk) {
        std::uint32_t active = 0;
        for (int s = 0; s < kSubwarps; ++s) {
          if (i0 + kk < cnt[s]) {
            active |= 0xFFu << (8 * s);
          }
        }
        if (active == 0) continue;

        // Broadcast LDS of the staged values for this k (indices stay
        // in registers after staging, as Sputnik does).  The read is no
        // wider than the staged vector (LDS.U16 when a value slot is a
        // single half): a fixed 4B read would over-read the last staged
        // entry into bytes no sts ever wrote.
        {
          Lanes<std::uint32_t> off{};
          for (int lane = 0; lane < 32; ++lane) {
            off[static_cast<std::size_t>(lane)] =
                val_off(lane / kSubwarpSize, kk, 0);
          }
          if (static_cast<int>(v * sizeof(T)) == 2) {
            Lanes<std::array<std::byte, 2>> d{};
            w.lds(off, d, active);
          } else {
            Lanes<std::array<std::byte, 4>> d{};
            w.lds(off, d, active);
          }
        }
        w.count(Op::kImad, 2);
        w.count(Op::kIadd3, 1);

        // Load each thread's B-row slice straight to registers.
        AddrLanes addr{};
        for (int lane = 0; lane < 32; ++lane) {
          if (!(active & (1u << lane))) continue;
          const int s = lane / kSubwarpSize;
          const int t = lane % kSubwarpSize;
          const std::int32_t row = staged_idx(s, kk);
          addr[static_cast<std::size_t>(lane)] = b.addr(row, n0 + wt * t);
        }
        constexpr int kSliceBytes = 16;  // upper bound; actual below
        std::array<std::array<std::byte, kSliceBytes>, 32> slice{};
        const int slice_bytes = wt * static_cast<int>(sizeof(T));
        switch (slice_bytes) {
          case 2: {
            Lanes<std::array<std::byte, 2>> d{};
            w.ldg(addr, d, active);
            for (int l = 0; l < 32; ++l)
              std::memcpy(slice[static_cast<std::size_t>(l)].data(),
                          d[static_cast<std::size_t>(l)].data(), 2);
            break;
          }
          case 4: {
            Lanes<std::array<std::byte, 4>> d{};
            w.ldg(addr, d, active);
            for (int l = 0; l < 32; ++l)
              std::memcpy(slice[static_cast<std::size_t>(l)].data(),
                          d[static_cast<std::size_t>(l)].data(), 4);
            break;
          }
          case 8: {
            Lanes<std::array<std::byte, 8>> d{};
            w.ldg(addr, d, active);
            for (int l = 0; l < 32; ++l)
              std::memcpy(slice[static_cast<std::size_t>(l)].data(),
                          d[static_cast<std::size_t>(l)].data(), 8);
            break;
          }
          default: {
            Lanes<std::array<std::byte, 16>> d{};
            w.ldg(addr, d, active);
            for (int l = 0; l < 32; ++l)
              std::memcpy(slice[static_cast<std::size_t>(l)].data(),
                          d[static_cast<std::size_t>(l)].data(), 16);
            break;
          }
        }

        // MACs: V * wt per thread.  Half precision uses HMUL + FADD
        // (fp32 accumulate, §3.1); single uses FFMA.
        if constexpr (sizeof(T) == 2) {
          w.count(Op::kHfma, static_cast<std::uint64_t>(v * wt));
          w.count(Op::kFfma, static_cast<std::uint64_t>(v * wt));
        } else {
          w.count(Op::kFfma, static_cast<std::uint64_t>(v * wt));
        }
        for (int lane = 0; lane < 32; ++lane) {
          if (!(active & (1u << lane))) continue;
          const int s = lane / kSubwarpSize;
          const int t = lane % kSubwarpSize;
          const auto* bvals =
              reinterpret_cast<const T*>(slice[static_cast<std::size_t>(lane)].data());
          for (int vv = 0; vv < v; ++vv) {
            const float av = staged_val(s, kk, vv);
            for (int e = 0; e < wt; ++e) {
              acc[s][vv][wt * t + e] += av * static_cast<float>(bvals[e]);
            }
          }
        }
      }
    }

    // ---- writeback ----------------------------------------------------
    if constexpr (sizeof(T) == 2) {
      w.count(Op::kCvt, static_cast<std::uint64_t>(v));
    }
    for (int vv = 0; vv < v; ++vv) {
      AddrLanes addr{};
      std::uint32_t mask = 0;
      Lanes<std::array<std::byte, 16>> frag{};
      for (int lane = 0; lane < 32; ++lane) {
        const int s = lane / kSubwarpSize;
        const int t = lane % kSubwarpSize;
        if (vr0 + s >= vec_rows) continue;
        addr[static_cast<std::size_t>(lane)] =
            c.addr((vr0 + s) * v + vv, n0 + wt * t);
        for (int e = 0; e < wt; ++e) {
          const T value = T(acc[s][vv][wt * t + e]);
          std::memcpy(frag[static_cast<std::size_t>(lane)].data() +
                          e * sizeof(T),
                      &value, sizeof(T));
        }
        mask |= 1u << lane;
      }
      const int slice_bytes = wt * static_cast<int>(sizeof(T));
      switch (slice_bytes) {
        case 2: {
          Lanes<std::array<std::byte, 2>> d{};
          for (int l = 0; l < 32; ++l)
            std::memcpy(d[static_cast<std::size_t>(l)].data(),
                        frag[static_cast<std::size_t>(l)].data(), 2);
          w.stg(addr, d, mask);
          break;
        }
        case 4: {
          Lanes<std::array<std::byte, 4>> d{};
          for (int l = 0; l < 32; ++l)
            std::memcpy(d[static_cast<std::size_t>(l)].data(),
                        frag[static_cast<std::size_t>(l)].data(), 4);
          w.stg(addr, d, mask);
          break;
        }
        case 8: {
          Lanes<std::array<std::byte, 8>> d{};
          for (int l = 0; l < 32; ++l)
            std::memcpy(d[static_cast<std::size_t>(l)].data(),
                        frag[static_cast<std::size_t>(l)].data(), 8);
          w.stg(addr, d, mask);
          break;
        }
        default:
          w.stg(addr, frag, mask);
          break;
      }
    }
  }, sim);

  return {stats, cfg};
}

}  // namespace

KernelRun spmm_fpu_subwarp(gpusim::Device& dev, const CvsDevice& a,
                           const DenseDevice<half_t>& b,
                           DenseDevice<half_t>& c,
                           const SpmmFpuParams& params,
                           const gpusim::SimOptions& sim) {
  return spmm_fpu_impl<half_t>(dev, a, b, c, params, sim);
}

KernelRun spmm_fpu_subwarp_f32(gpusim::Device& dev,
                               const CvsDeviceT<float>& a,
                               const DenseDevice<float>& b,
                               DenseDevice<float>& c,
                               const SpmmFpuParams& params,
                               const gpusim::SimOptions& sim) {
  return spmm_fpu_impl<float>(dev, a, b, c, params, sim);
}

}  // namespace vsparse::kernels

// SpMM with FPU-based 1-D Subwarp Tiling — the baseline extended from
// Sputnik (§5.1, Fig. 9a).
//
// Each 1-D tile (V x TileK)·(TileK x TileN) is owned by a subwarp of 8
// threads; a CTA holds 4 subwarps (one warp) covering 4 consecutive
// vector-rows of the same TileN column block.  The LHS fragment is
// staged through shared memory; every thread then walks the staged
// nonzeros, loading its TileN/8-wide slice of the corresponding B row
// straight into registers and accumulating with HMUL+FADD (half) or
// FFMA (single).
//
// The design trade-offs the paper analyzes are visible in the counters:
//  * memory access is good only when TileN/8 is wide (TileN=64 gives
//    LDG.128) — but the paper's tuned configuration uses TileN=16
//    (LDG.32, "Sectors/Req" ~4) to raise the grid size (guideline II
//    beats guideline V for this kernel);
//  * the fully-unrolled inner loops blow up the SASS size
//    (3776 / 6968 lines at V = 4 / 8 — guideline I violated), and the
//    address arithmetic shows up as IMAD/IADD3 "Wait" stalls;
//  * subwarps of a warp advance in lockstep to the longest row among
//    them (divergence penalty of row imbalance).
//
// V = 1 with float values IS Sputnik's fine-grained kernel (Fig. 4).
#pragma once

#include "vsparse/formats/cvs.hpp"
#include "vsparse/formats/dense.hpp"
#include "vsparse/kernels/api.hpp"

namespace vsparse::kernels {

struct SpmmFpuParams {
  int tile_n = 16;  ///< per-tile output width (the paper's tuned value)
  int tile_k = 16;  ///< staged nonzeros per stride
};

/// Half-precision FPU SpMM over a CVS operand (V in {1,2,4,8}).
/// Requires N % tile_n == 0.
KernelRun spmm_fpu_subwarp(gpusim::Device& dev, const CvsDevice& a,
                           const DenseDevice<half_t>& b,
                           DenseDevice<half_t>& c,
                           const SpmmFpuParams& params = {},
                           const gpusim::SimOptions& sim = {});

/// Single-precision variant (the Fig. 4 "sputnik (single)" baseline,
/// V = 1; larger V works too).
KernelRun spmm_fpu_subwarp_f32(gpusim::Device& dev,
                               const CvsDeviceT<float>& a,
                               const DenseDevice<float>& b,
                               DenseDevice<float>& c,
                               const SpmmFpuParams& params = {},
                               const gpusim::SimOptions& sim = {});

}  // namespace vsparse::kernels

#include "vsparse/kernels/spmm/spmm_blocked_ell.hpp"

#include <cstring>
#include <string>

#include "vsparse/common/math.hpp"
#include "vsparse/fp16/vec.hpp"
#include "vsparse/gpusim/tensorcore.hpp"

namespace vsparse::kernels {

namespace {

using gpusim::AddrLanes;
using gpusim::Cta;
using gpusim::Lanes;
using gpusim::Op;
using gpusim::Warp;

// Preferred output-stripe width; narrows to 64 when N is not a
// multiple of 128 (cuSPARSE handles any multiple of 64).
constexpr int kPreferredTileN = 128;

}  // namespace

KernelRun spmm_blocked_ell(gpusim::Device& dev, const BlockedEllDevice& a,
                           const DenseDevice<half_t>& b,
                           DenseDevice<half_t>& c,
                           const gpusim::SimOptions& sim) {
  const int m = a.rows, k = a.cols, n = b.cols;
  const int blk = a.block;
  VSPARSE_CHECK(b.rows == k && c.rows == m && c.cols == n);
  VSPARSE_CHECK(b.layout == Layout::kRowMajor &&
                c.layout == Layout::kRowMajor);
  VSPARSE_CHECK(blk == 2 || blk == 4 || blk == 8 || blk == 16);
  VSPARSE_CHECK_MSG(n % 64 == 0,
                    "blocked-ELL SpMM requires N % 64 == 0, got " << n);
  const int tile_n = n % kPreferredTileN == 0 ? kPreferredTileN : 64;

  const int block_rows = m / blk;
  const int n_tiles = n / tile_n;

  gpusim::LaunchConfig cfg;
  cfg.grid = block_rows * n_tiles;
  cfg.cta_threads = 32;
  // smem: the value block + the b x 128 B stripe.
  cfg.smem_bytes = static_cast<std::size_t>(blk) * blk * 2 +
                   static_cast<std::size_t>(blk) * kPreferredTileN * 2;
  cfg.profile = {
      .name = "spmm_blocked_ell_b" + std::to_string(blk),
      .regs_per_thread = 88,
      .static_instrs = 2800 + 7200 / blk,
      .icache_pressure = 2.4,
      .ilp_factor = 1.0,
  };

  auto col_host = a.col_idx.host();

  gpusim::KernelStats stats = gpusim::launch(dev, cfg, [&](Cta& cta) {
    const int brow = cta.cta_id() % block_rows;  // rows fastest
    const int n0 = (cta.cta_id() / block_rows) * tile_n;
    Warp w = cta.warp(0);
    w.count(Op::kImad, 4);

    // Accumulator for the blk x tile_n output block; zero only the
    // rows in use (blk <= 16, rows past blk are never read).
    float acc[32][kPreferredTileN];
    std::memset(acc, 0, static_cast<std::size_t>(blk) * sizeof(acc[0]));

    const auto block_off = [&](int r, int cc) {
      return static_cast<std::uint32_t>((r * blk + cc) * 2);
    };
    const auto btile_off = [&](int r, int nn) {
      return static_cast<std::uint32_t>(blk * blk * 2 + (r * kPreferredTileN + nn) * 2);
    };

    // Gather the block-row's column indices up front (coalesced):
    // consecutive int32 slots, a pure affine span per pass.
    for (int p = 0; p * 32 < a.blocks_per_row; ++p) {
      const int nl = std::min(32, a.blocks_per_row - p * 32);
      const std::uint32_t mask = nl >= 32 ? 0xFFFFFFFFu : (1u << nl) - 1u;
      Lanes<std::int32_t> d{};
      w.ldg_span(a.col_idx.addr(static_cast<std::size_t>(brow) *
                                    static_cast<std::size_t>(a.blocks_per_row) +
                                static_cast<std::size_t>(p * 32)),
                 4, d, mask);
      w.count(Op::kImad, 2);
    }

    for (int slot = 0; slot < a.blocks_per_row; ++slot) {
      // The library kernel recomputes tile/block addresses per slot:
      // a large integer-op share (the Table 1 "Wait" source).
      w.count(Op::kImad, 8);
      w.count(Op::kIadd3, 4);
      const std::int32_t bcol =
          col_host[static_cast<std::size_t>(brow) *
                       static_cast<std::size_t>(a.blocks_per_row) +
                   static_cast<std::size_t>(slot)];
      if (bcol < 0) continue;  // ELL padding slot

      // ---- stage the value block through smem -----------------------
      {
        // 16 B per lane when the block is big enough; blk = 2 blocks
        // are only 8 B total.
        const int chunk_bytes = std::min(16, blk * blk * 2);
        const int chunks = ceil_div(blk * blk * 2, chunk_bytes);
        const std::size_t base =
            (static_cast<std::size_t>(brow) *
                 static_cast<std::size_t>(a.blocks_per_row) +
             static_cast<std::size_t>(slot)) *
            static_cast<std::size_t>(blk) * static_cast<std::size_t>(blk);
        // One chunk per lane, consecutive in both global and shared
        // memory: affine spans of stride chunk_bytes.
        for (int pass = 0; pass < ceil_div(chunks, 32); ++pass) {
          const int nl = std::min(32, chunks - pass * 32);
          const std::uint32_t mask = nl >= 32 ? 0xFFFFFFFFu : (1u << nl) - 1u;
          const std::uint64_t gbase = a.values.addr(
              base + static_cast<std::size_t>(pass) * 32 *
                         static_cast<std::size_t>(chunk_bytes / 2));
          const auto sbase = static_cast<std::uint32_t>(pass * 32 * chunk_bytes);
          const auto cstride = static_cast<std::uint32_t>(chunk_bytes);
          if (chunk_bytes == 16) {
            Lanes<half8> d{};
            w.ldg_span(gbase, cstride, d, mask);
            w.sts_span(sbase, cstride, d, mask);
          } else {
            Lanes<half4> d{};
            w.ldg_span(gbase, cstride, d, mask);
            w.sts_span(sbase, cstride, d, mask);
          }
        }
      }

      // ---- stage the b x 128 B stripe through smem -------------------
      // Each pass: 32 lanes x 8 halves = 2 rows of 128, i.e. two
      // 16-lane segments striding a B row; when tile_n is 64 only the
      // first 8 lanes of each segment are active (prefix mask).
      for (int pass = 0; pass < ceil_div(blk, 2); ++pass) {
        std::uint64_t gbase[2] = {};
        std::uint32_t soff[2] = {};
        std::uint32_t mask = 0;
        const std::uint32_t seg_bits =
            tile_n >= kPreferredTileN ? 0xFFFFu : 0xFFu;
        for (int seg = 0; seg < 2; ++seg) {
          const int r = 2 * pass + seg;
          if (r >= blk) continue;
          gbase[seg] = b.addr(bcol * blk + r, n0);
          soff[seg] = btile_off(r, 0);
          mask |= seg_bits << (16 * seg);
        }
        Lanes<half8> d{};
        w.count(Op::kImad, 2);
        w.ldg_span(gbase, 2, 16, 16, d, mask);
        w.sts_span(soff, 2, 16, 16, d, mask);
      }
      cta.sync();

      // ---- compute with zero-padded wmma ------------------------------
      // ceil(blk/8) row tiles x 4 column tiles of m8n32k16, each padded
      // from k = blk to 16.  Fragments are read back from smem (LDS) —
      // the Short-Scoreboard-heavy pattern of §3.2.
      const int row_tiles = ceil_div(blk, 8);
      for (int rt = 0; rt < row_tiles; ++rt) {
        half_t afrag[8][16] = {};
        if (blk == 16) {
          // Unclamped gather: one 4-lane segment per block row, lanes
          // striding 8 B through it — a pure affine span.
          std::uint32_t soff[8];
          for (int seg = 0; seg < 8; ++seg) {
            soff[seg] = block_off(rt * 8 + seg, 0);
          }
          Lanes<half4> d;
          w.lds_span(soff, 8, 4, 8, d, 0xFFFFFFFFu);
        } else {
          // Small blocks clamp both coordinates (divergent pattern):
          // keep the per-lane op.
          Lanes<std::uint32_t> off{};
          Lanes<half4> d;
          for (int lane = 0; lane < 32; ++lane) {
            const int r = std::min(rt * 8 + lane / 4, blk - 1);
            const int cc = std::min(4 * (lane % 4), blk - 1);
            off[static_cast<std::size_t>(lane)] = block_off(r, cc);
          }
          w.lds(off, d);
        }
        for (int r = 0; r < 8; ++r) {
          const int gr = rt * 8 + r;
          if (gr >= blk) break;
          // The block row is contiguous in smem.
          std::memcpy(afrag[r], cta.smem() + block_off(gr, 0),
                      static_cast<std::size_t>(blk) * sizeof(half_t));
        }
        for (int ct = 0; ct < tile_n / 32; ++ct) {
          half_t bfrag[16][32] = {};
          for (int pass = 0; pass < 2; ++pass) {
            // Eight 4-lane segments, one per (clamped) B row, each
            // sweeping 32 halves at stride 16 B.
            std::uint32_t off[8];
            for (int seg = 0; seg < 8; ++seg) {
              const int r = std::min(8 * pass + seg, blk - 1);
              off[seg] = btile_off(r, 32 * ct);
            }
            Lanes<half8> d;
            w.lds_span(off, 8, 4, 16, d, 0xFFFFFFFFu);
          }
          for (int r = 0; r < blk && r < 16; ++r) {
            std::memcpy(bfrag[r], cta.smem() + btile_off(r, 32 * ct),
                        32 * sizeof(half_t));
          }
          // Accumulate straight into the acc tile (strided rows); rows
          // past blk would only ever add zero products and be discarded.
          const int crows = std::min(8, blk - rt * 8);
          float* crow[8] = {};
          for (int r = 0; r < crows; ++r) {
            crow[r] = &acc[rt * 8 + r][32 * ct];
          }
          w.wmma_m8n32k16(afrag, bfrag, crow, crows);
        }
      }
      cta.sync();
    }

    // ---- writeback ----------------------------------------------------
    w.count(Op::kCvt, static_cast<std::uint64_t>(blk * tile_n / 32));
    // tile_n/8 lanes cover one output row; rows past blk drop whole
    // segments, so the span mask is a per-segment prefix.
    const int wwidth = tile_n / 8;
    const int wsegs = 32 / wwidth;
    const int rows_per_pass = 256 / tile_n;
    for (int pass = 0; pass < ceil_div(blk * tile_n, 32 * 8); ++pass) {
      std::uint64_t gbase[4] = {};
      Lanes<half8> frag{};
      std::uint32_t mask = 0;
      const std::uint32_t seg_bits =
          wwidth >= 32 ? 0xFFFFFFFFu : (1u << wwidth) - 1u;
      for (int seg = 0; seg < wsegs; ++seg) {
        const int r = pass * rows_per_pass + seg;
        if (r >= blk) continue;
        gbase[seg] = c.addr(brow * blk + r, n0);
        mask |= seg_bits << (seg * wwidth);
        // One batched narrow covers the whole row: the segment's
        // wwidth lanes are contiguous half8 slots spanning
        // acc[r][0..tile_n).  Bit-identical to per-element conversion.
        half_t row[kPreferredTileN];
        float_to_half_n(acc[r], row, static_cast<std::size_t>(tile_n));
        std::memcpy(
            static_cast<void*>(&frag[static_cast<std::size_t>(seg * wwidth)]),
            row, static_cast<std::size_t>(tile_n) * sizeof(half_t));
      }
      w.stg_span(gbase, wsegs, wwidth, 16, frag, mask);
    }
  }, sim);

  return {stats, cfg};
}

}  // namespace vsparse::kernels

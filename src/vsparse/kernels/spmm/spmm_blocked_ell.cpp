#include "vsparse/kernels/spmm/spmm_blocked_ell.hpp"

#include <string>

#include "vsparse/common/math.hpp"
#include "vsparse/fp16/vec.hpp"
#include "vsparse/gpusim/tensorcore.hpp"

namespace vsparse::kernels {

namespace {

using gpusim::AddrLanes;
using gpusim::Cta;
using gpusim::Lanes;
using gpusim::Op;
using gpusim::Warp;

// Preferred output-stripe width; narrows to 64 when N is not a
// multiple of 128 (cuSPARSE handles any multiple of 64).
constexpr int kPreferredTileN = 128;

}  // namespace

KernelRun spmm_blocked_ell(gpusim::Device& dev, const BlockedEllDevice& a,
                           const DenseDevice<half_t>& b,
                           DenseDevice<half_t>& c,
                           const gpusim::SimOptions& sim) {
  const int m = a.rows, k = a.cols, n = b.cols;
  const int blk = a.block;
  VSPARSE_CHECK(b.rows == k && c.rows == m && c.cols == n);
  VSPARSE_CHECK(b.layout == Layout::kRowMajor &&
                c.layout == Layout::kRowMajor);
  VSPARSE_CHECK(blk == 2 || blk == 4 || blk == 8 || blk == 16);
  VSPARSE_CHECK_MSG(n % 64 == 0,
                    "blocked-ELL SpMM requires N % 64 == 0, got " << n);
  const int tile_n = n % kPreferredTileN == 0 ? kPreferredTileN : 64;

  const int block_rows = m / blk;
  const int n_tiles = n / tile_n;

  gpusim::LaunchConfig cfg;
  cfg.grid = block_rows * n_tiles;
  cfg.cta_threads = 32;
  // smem: the value block + the b x 128 B stripe.
  cfg.smem_bytes = static_cast<std::size_t>(blk) * blk * 2 +
                   static_cast<std::size_t>(blk) * kPreferredTileN * 2;
  cfg.profile = {
      .name = "spmm_blocked_ell_b" + std::to_string(blk),
      .regs_per_thread = 88,
      .static_instrs = 2800 + 7200 / blk,
      .icache_pressure = 2.4,
      .ilp_factor = 1.0,
  };

  auto col_host = a.col_idx.host();

  gpusim::KernelStats stats = gpusim::launch(dev, cfg, [&](Cta& cta) {
    const int brow = cta.cta_id() % block_rows;  // rows fastest
    const int n0 = (cta.cta_id() / block_rows) * tile_n;
    Warp w = cta.warp(0);
    w.count(Op::kImad, 4);

    float acc[32][kPreferredTileN] = {};

    const auto block_off = [&](int r, int cc) {
      return static_cast<std::uint32_t>((r * blk + cc) * 2);
    };
    const auto btile_off = [&](int r, int nn) {
      return static_cast<std::uint32_t>(blk * blk * 2 + (r * kPreferredTileN + nn) * 2);
    };

    // Gather the block-row's column indices up front (coalesced).
    for (int p = 0; p * 32 < a.blocks_per_row; ++p) {
      AddrLanes addr{};
      Lanes<std::int32_t> d{};
      std::uint32_t mask = 0;
      for (int l = 0; l < 32 && p * 32 + l < a.blocks_per_row; ++l) {
        addr[static_cast<std::size_t>(l)] = a.col_idx.addr(
            static_cast<std::size_t>(brow) *
                static_cast<std::size_t>(a.blocks_per_row) +
            static_cast<std::size_t>(p * 32 + l));
        mask |= 1u << l;
      }
      w.ldg(addr, d, mask);
      w.count(Op::kImad, 2);
    }

    for (int slot = 0; slot < a.blocks_per_row; ++slot) {
      // The library kernel recomputes tile/block addresses per slot:
      // a large integer-op share (the Table 1 "Wait" source).
      w.count(Op::kImad, 8);
      w.count(Op::kIadd3, 4);
      const std::int32_t bcol =
          col_host[static_cast<std::size_t>(brow) *
                       static_cast<std::size_t>(a.blocks_per_row) +
                   static_cast<std::size_t>(slot)];
      if (bcol < 0) continue;  // ELL padding slot

      // ---- stage the value block through smem -----------------------
      {
        // 16 B per lane when the block is big enough; blk = 2 blocks
        // are only 8 B total.
        const int chunk_bytes = std::min(16, blk * blk * 2);
        const int chunks = ceil_div(blk * blk * 2, chunk_bytes);
        const std::size_t base =
            (static_cast<std::size_t>(brow) *
                 static_cast<std::size_t>(a.blocks_per_row) +
             static_cast<std::size_t>(slot)) *
            static_cast<std::size_t>(blk) * static_cast<std::size_t>(blk);
        for (int pass = 0; pass < ceil_div(chunks, 32); ++pass) {
          AddrLanes addr{};
          Lanes<std::uint32_t> soff{};
          std::uint32_t mask = 0;
          for (int l = 0; l < 32; ++l) {
            const int chunk = pass * 32 + l;
            if (chunk >= chunks) break;
            addr[static_cast<std::size_t>(l)] = a.values.addr(
                base + static_cast<std::size_t>(chunk) *
                           static_cast<std::size_t>(chunk_bytes / 2));
            soff[static_cast<std::size_t>(l)] =
                static_cast<std::uint32_t>(chunk * chunk_bytes);
            mask |= 1u << l;
          }
          if (chunk_bytes == 16) {
            Lanes<half8> d{};
            w.ldg(addr, d, mask);
            w.sts(soff, d, mask);
          } else {
            Lanes<half4> d{};
            w.ldg(addr, d, mask);
            w.sts(soff, d, mask);
          }
        }
      }

      // ---- stage the b x 128 B stripe through smem -------------------
      // Each pass: 32 lanes x 8 halves = 2 rows of 128.
      for (int pass = 0; pass < ceil_div(blk, 2); ++pass) {
        AddrLanes addr{};
        Lanes<std::uint32_t> soff{};
        Lanes<half8> d{};
        std::uint32_t mask = 0;
        for (int lane = 0; lane < 32; ++lane) {
          const int r = 2 * pass + lane / 16;
          if (r >= blk) continue;
          const int nn = 8 * (lane % 16);
          if (nn >= tile_n) continue;
          addr[static_cast<std::size_t>(lane)] =
              b.addr(bcol * blk + r, n0 + nn);
          soff[static_cast<std::size_t>(lane)] = btile_off(r, nn);
          mask |= 1u << lane;
        }
        w.count(Op::kImad, 2);
        w.ldg(addr, d, mask);
        w.sts(soff, d, mask);
      }
      cta.sync();

      // ---- compute with zero-padded wmma ------------------------------
      // ceil(blk/8) row tiles x 4 column tiles of m8n32k16, each padded
      // from k = blk to 16.  Fragments are read back from smem (LDS) —
      // the Short-Scoreboard-heavy pattern of §3.2.
      const int row_tiles = ceil_div(blk, 8);
      for (int rt = 0; rt < row_tiles; ++rt) {
        half_t afrag[8][16] = {};
        {
          Lanes<std::uint32_t> off{};
          Lanes<half4> d;
          for (int lane = 0; lane < 32; ++lane) {
            const int r = std::min(rt * 8 + lane / 4, blk - 1);
            const int cc = std::min(4 * (lane % 4), blk - 1);
            off[static_cast<std::size_t>(lane)] = block_off(r, cc);
          }
          w.lds(off, d);
        }
        for (int r = 0; r < 8; ++r) {
          const int gr = rt * 8 + r;
          if (gr >= blk) break;
          for (int cc = 0; cc < blk; ++cc) {
            afrag[r][cc] = *reinterpret_cast<const half_t*>(cta.smem() +
                                                            block_off(gr, cc));
          }
        }
        for (int ct = 0; ct < tile_n / 32; ++ct) {
          half_t bfrag[16][32] = {};
          for (int pass = 0; pass < 2; ++pass) {
            Lanes<std::uint32_t> off{};
            Lanes<half8> d;
            for (int lane = 0; lane < 32; ++lane) {
              const int r = std::min(8 * pass + lane / 4, blk - 1);
              const int nn = 32 * ct + 8 * (lane % 4);
              off[static_cast<std::size_t>(lane)] = btile_off(r, nn);
            }
            w.lds(off, d);
          }
          for (int r = 0; r < blk && r < 16; ++r) {
            for (int nn = 0; nn < 32; ++nn) {
              bfrag[r][nn] = *reinterpret_cast<const half_t*>(
                  cta.smem() + btile_off(r, 32 * ct + nn));
            }
          }
          float cfrag[8][32];
          for (int r = 0; r < 8; ++r) {
            for (int nn = 0; nn < 32; ++nn) {
              const int gr = rt * 8 + r;
              cfrag[r][nn] = gr < blk ? acc[gr][32 * ct + nn] : 0.0f;
            }
          }
          gpusim::wmma_m8n32k16(w, afrag, bfrag, cfrag);
          for (int r = 0; r < 8; ++r) {
            const int gr = rt * 8 + r;
            if (gr >= blk) break;
            for (int nn = 0; nn < 32; ++nn) {
              acc[gr][32 * ct + nn] = cfrag[r][nn];
            }
          }
        }
      }
      cta.sync();
    }

    // ---- writeback ----------------------------------------------------
    w.count(Op::kCvt, static_cast<std::uint64_t>(blk * tile_n / 32));
    for (int pass = 0; pass < ceil_div(blk * tile_n, 32 * 8); ++pass) {
      AddrLanes addr{};
      Lanes<half8> frag{};
      std::uint32_t mask = 0;
      for (int lane = 0; lane < 32; ++lane) {
        const int flat = (pass * 32 + lane) * 8;
        const int r = flat / tile_n;
        if (r >= blk) continue;
        const int nn = flat % tile_n;
        addr[static_cast<std::size_t>(lane)] = c.addr(brow * blk + r, n0 + nn);
        for (int e = 0; e < 8; ++e) {
          frag[static_cast<std::size_t>(lane)][e] = half_t(acc[r][nn + e]);
        }
        mask |= 1u << lane;
      }
      w.stg(addr, frag, mask);
    }
  }, sim);

  return {stats, cfg};
}

}  // namespace vsparse::kernels

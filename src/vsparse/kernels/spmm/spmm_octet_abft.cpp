#include "vsparse/kernels/spmm/spmm_octet_abft.hpp"

#include <cmath>
#include <utility>
#include <vector>

#include "vsparse/gpusim/trace/trace.hpp"

namespace vsparse::kernels {

namespace {

constexpr int kTileN = 64;

/// Verify the V x 64 tile of vector-row `vr` at column tile `tn`
/// against the fp64 checksum expectation.  Host reads see clean data —
/// the simulator injects faults on the device read path only.
bool tile_ok(const CvsDevice& a, const DenseDevice<half_t>& b,
             const DenseDevice<half_t>& c, const std::vector<double>& w,
             int vr, int tn, const AbftOptions& opt) {
  auto row_ptr = a.row_ptr.host();
  auto col_idx = a.col_idx.host();
  auto bh = b.buf.host();
  auto ch = c.buf.host();
  const std::int32_t begin = row_ptr[static_cast<std::size_t>(vr)];
  const std::int32_t end = row_ptr[static_cast<std::size_t>(vr) + 1];
  const int n0 = tn * kTileN;
  for (int j = 0; j < kTileN; ++j) {
    double expected = 0.0, refmag = 0.0;
    for (std::int32_t i = begin; i < end; ++i) {
      const std::int32_t col = col_idx[static_cast<std::size_t>(i)];
      const double bv = static_cast<double>(static_cast<float>(
          bh[static_cast<std::size_t>(col) * b.ld + (n0 + j)]));
      expected += w[static_cast<std::size_t>(i)] * bv;
      refmag += std::abs(w[static_cast<std::size_t>(i)]) * std::abs(bv);
    }
    double actual = 0.0;
    for (int t = 0; t < a.v; ++t) {
      actual += static_cast<double>(static_cast<float>(
          ch[static_cast<std::size_t>(vr * a.v + t) * c.ld + n0 + j]));
    }
    const double tol = opt.abs_tol * a.v + opt.rel_tol * refmag;
    if (std::abs(actual - expected) > tol) return false;
  }
  return true;
}

}  // namespace

KernelRun spmm_octet_abft(gpusim::Device& dev, const CvsDevice& a,
                          const DenseDevice<half_t>& b, DenseDevice<half_t>& c,
                          const SpmmOctetParams& params,
                          const AbftOptions& abft,
                          const gpusim::SimOptions& sim) {
  KernelRun run = spmm_octet(dev, a, b, c, params, sim);
  run.abft.enabled = true;

  // Host-side ABFT work is launch-scope: annotate the trace sink (same
  // per-call-then-device inherit chain the engine resolves) so verify
  // passes and recompute launches show up next to the kernels they
  // protect.
  gpusim::Trace* trace_sink = sim.trace.sink != nullptr
                                  ? sim.trace.sink
                                  : dev.sim_options().trace.sink;

  const int vec_rows = a.vec_rows();
  const int tiles_n = b.cols / kTileN;

  // Checksum weights, one per stored nonzero vector: w_i = sum_t
  // values[i*v + t], formed on the host in fp64 (trusted ALU).
  std::vector<double> w(a.col_idx.size(), 0.0);
  {
    auto values = a.values.host();
    for (std::size_t i = 0; i < w.size(); ++i) {
      for (int t = 0; t < a.v; ++t) {
        w[i] += static_cast<double>(static_cast<float>(
            values[i * static_cast<std::size_t>(a.v) +
                   static_cast<std::size_t>(t)]));
      }
    }
  }

  std::vector<std::pair<int, int>> bad;
  for (int vr = 0; vr < vec_rows; ++vr) {
    for (int tn = 0; tn < tiles_n; ++tn) {
      if (!tile_ok(a, b, c, w, vr, tn, abft)) bad.emplace_back(vr, tn);
    }
  }
  run.abft.corrupted_tiles = static_cast<int>(bad.size());
  if (trace_sink != nullptr) {
    trace_sink->annotate(gpusim::TraceEventKind::kAbftVerify, bad.size());
  }

  for (int round = 0; !bad.empty() && round < abft.max_retries; ++round) {
    if (round > 0) run.abft.retries_used = round;
    std::vector<std::pair<int, int>> still;
    for (const auto& [vr, tn] : bad) {
      // Single-CTA sub-problem: one vector row, one 64-wide column
      // tile.  The kernel reads row_ptr entries as absolute offsets
      // into col_idx/values, so a two-entry row_ptr window at `vr`
      // addresses the full index/value buffers unchanged.
      CvsDevice a_sub = a;
      a_sub.rows = a.v;
      a_sub.row_ptr = gpusim::Buffer<std::int32_t>(
          &dev, a.row_ptr.addr(static_cast<std::size_t>(vr)), 2);
      DenseDevice<half_t> b_sub =
          sub_view(dev, b, 0, tn * kTileN, b.rows, kTileN);
      DenseDevice<half_t> c_sub =
          sub_view(dev, c, vr * a.v, tn * kTileN, a.v, kTileN);
      KernelRun rec = spmm_octet(dev, a_sub, b_sub, c_sub, params, sim);
      run.stats += rec.stats;
      ++run.abft.recompute_launches;
      if (trace_sink != nullptr) {
        trace_sink->annotate(gpusim::TraceEventKind::kAbftRecompute,
                             static_cast<std::uint64_t>(vr),
                             static_cast<std::uint64_t>(tn));
      }
      if (!tile_ok(a, b, c, w, vr, tn, abft)) still.emplace_back(vr, tn);
    }
    bad = std::move(still);
  }

  run.abft.clean = bad.empty();
  return run;
}

}  // namespace vsparse::kernels

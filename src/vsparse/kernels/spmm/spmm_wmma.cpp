#include "vsparse/kernels/spmm/spmm_wmma.hpp"

#include <string>

#include "vsparse/common/math.hpp"
#include "vsparse/fp16/vec.hpp"
#include "vsparse/gpusim/tensorcore.hpp"

namespace vsparse::kernels {

namespace {

using gpusim::AddrLanes;
using gpusim::Cta;
using gpusim::Lanes;
using gpusim::Op;
using gpusim::Warp;

constexpr int kTileN = 64;
constexpr int kTileK = 16;  // WMMA k — residue pads to 16 (§5.2)

}  // namespace

KernelRun spmm_wmma_warp(gpusim::Device& dev, const CvsDevice& a,
                         const DenseDevice<half_t>& b,
                         DenseDevice<half_t>& c,
                         const gpusim::SimOptions& sim) {
  const int m = a.rows, k = a.cols, n = b.cols;
  const int v = a.v;
  VSPARSE_CHECK(b.rows == k && c.rows == m && c.cols == n);
  VSPARSE_CHECK(b.layout == Layout::kRowMajor &&
                c.layout == Layout::kRowMajor);
  VSPARSE_CHECK(v == 2 || v == 4 || v == 8);
  VSPARSE_CHECK_MSG(n % kTileN == 0, "spmm_wmma requires N % 64 == 0");

  const int vec_rows = a.vec_rows();
  const int n_tiles = n / kTileN;

  gpusim::LaunchConfig cfg;
  cfg.grid = vec_rows * n_tiles;
  cfg.cta_threads = 32;
  cfg.smem_bytes = 0;  // everything lives in registers (classic layout)
  cfg.profile = {
      .name = "spmm_wmma_v" + std::to_string(v),
      .regs_per_thread = 40 + 2 * v,
      .static_instrs = 460 + 8 * v,
      .icache_pressure = 1.0,
      .ilp_factor = 0.9,
  };

  auto row_ptr = a.row_ptr.host();
  auto col_host = a.col_idx.host();
  auto val_host = a.values.host();

  gpusim::KernelStats stats = gpusim::launch(dev, cfg, [&](Cta& cta) {
    const int vr = cta.cta_id() % vec_rows;  // rows fastest (B-slice reuse)
    const int n0 = (cta.cta_id() / vec_rows) * kTileN;
    Warp w = cta.warp(0);

    {
      AddrLanes addr{};
      Lanes<std::int32_t> d{};
      addr[0] = a.row_ptr.addr(static_cast<std::size_t>(vr));
      addr[1] = a.row_ptr.addr(static_cast<std::size_t>(vr) + 1);
      w.ldg(addr, d, 0x3u);
      w.count(Op::kImad, 3);
    }
    const std::int32_t begin = row_ptr[static_cast<std::size_t>(vr)];
    const std::int32_t end = row_ptr[static_cast<std::size_t>(vr) + 1];

    float acc[8][kTileN] = {};

    // TileK must be a multiple of 16: the last chunk is ZERO-PADDED and
    // the wmma still executes (the §5.2 residue overhead).
    for (std::int32_t i0 = begin; i0 < end; i0 += kTileK) {
      const int cnt = std::min<std::int32_t>(kTileK, end - i0);

      // ---- load 16 column indices (LDG.32, <=16 lanes) ---------------
      {
        AddrLanes addr{};
        Lanes<std::int32_t> d{};
        std::uint32_t mask = 0;
        for (int l = 0; l < cnt; ++l) {
          addr[static_cast<std::size_t>(l)] =
              a.col_idx.addr(static_cast<std::size_t>(i0 + l));
          mask |= 1u << l;
        }
        w.ldg(addr, d, mask);
        w.count(Op::kImad, 2);
      }

      // ---- load the V x 16 sparse-value fragment to registers --------
      // Contiguous in CVS storage: ceil(cnt*v/8) lanes of LDG.128-class
      // loads; small, so a single request.
      {
        AddrLanes addr{};
        Lanes<half8> d{};
        std::uint32_t mask = 0;
        // Align the vector loads down to a 16 B boundary (the hardware
        // requirement LDG.128 imposes on the real kernel too).
        const std::int64_t vbase =
            round_down<std::int64_t>(static_cast<std::int64_t>(i0) * v, 8);
        const int lanes_needed = static_cast<int>(ceil_div<std::int64_t>(
            static_cast<std::int64_t>(i0 + cnt) * v - vbase, 8));
        for (int l = 0; l < std::min(lanes_needed, 32); ++l) {
          addr[static_cast<std::size_t>(l)] =
              a.values.addr(static_cast<std::size_t>(vbase) +
                            static_cast<std::size_t>(l) * 8);
          mask |= 1u << l;
        }
        w.ldg(addr, d, mask);
      }

      // Assemble the logical LHS tile (8 x 16, zero-padded rows/k).
      half_t afrag[8][16] = {};
      for (int j = 0; j < cnt; ++j) {
        for (int t = 0; t < v; ++t) {
          afrag[t][j] =
              val_host[(static_cast<std::size_t>(i0 + j)) *
                           static_cast<std::size_t>(v) +
                       static_cast<std::size_t>(t)];
        }
      }

      // ---- load the 16 x 64 B fragment with the CLASSIC layout -------
      // Fig. 10: each lane holds 4 consecutive halves of one B row
      // (LDG.64), 8 lanes per row => 64 B coalesced at best.
      half_t bfrag[16][kTileN] = {};
      for (int pass = 0; pass < 8; ++pass) {
        AddrLanes addr{};
        Lanes<half4> d{};
        std::uint32_t mask = 0;
        for (int lane = 0; lane < 32; ++lane) {
          const int j = 4 * (pass % 4) + lane / 8;  // fragment row
          const int nn = 32 * (pass / 4) + 4 * (lane % 8);
          if (j >= cnt) continue;
          const std::int32_t col = col_host[static_cast<std::size_t>(i0 + j)];
          addr[static_cast<std::size_t>(lane)] = b.addr(col, n0 + nn);
          mask |= 1u << lane;
        }
        w.count(Op::kImad, 1);
        w.ldg(addr, d, mask);
        for (int lane = 0; lane < 32; ++lane) {
          if (!(mask & (1u << lane))) continue;
          const int j = 4 * (pass % 4) + lane / 8;
          const int nn = 32 * (pass / 4) + 4 * (lane % 8);
          for (int e = 0; e < 4; ++e) {
            bfrag[j][nn + e] = d[static_cast<std::size_t>(lane)][e];
          }
        }
      }

      // ---- two wmma.m8n32k16 cover the V x 64 tile (V < 8 wasted) ----
      for (int ct = 0; ct < 2; ++ct) {
        half_t bsub[16][32];
        for (int j = 0; j < 16; ++j) {
          for (int nn = 0; nn < 32; ++nn) bsub[j][nn] = bfrag[j][32 * ct + nn];
        }
        float csub[8][32];
        for (int r = 0; r < 8; ++r) {
          for (int nn = 0; nn < 32; ++nn) csub[r][nn] = acc[r][32 * ct + nn];
        }
        gpusim::wmma_m8n32k16(w, afrag, bsub, csub);
        for (int r = 0; r < 8; ++r) {
          for (int nn = 0; nn < 32; ++nn) acc[r][32 * ct + nn] = csub[r][nn];
        }
      }
    }

    // ---- writeback ----------------------------------------------------
    w.count(Op::kCvt, static_cast<std::uint64_t>(v * kTileN / 32));
    for (int g = 0; g < ceil_div(v * kTileN, 32 * 8); ++g) {
      AddrLanes addr{};
      Lanes<half8> frag{};
      std::uint32_t mask = 0;
      for (int lane = 0; lane < 32; ++lane) {
        const int flat = (g * 32 + lane) * 8;
        const int t = flat / kTileN;
        if (t >= v) continue;
        const int nn = flat % kTileN;
        addr[static_cast<std::size_t>(lane)] = c.addr(vr * v + t, n0 + nn);
        for (int e = 0; e < 8; ++e) {
          frag[static_cast<std::size_t>(lane)][e] = half_t(acc[t][nn + e]);
        }
        mask |= 1u << lane;
      }
      w.stg(addr, frag, mask);
    }
    (void)row_ptr;
  }, sim);

  return {stats, cfg};
}

}  // namespace vsparse::kernels

// Blocked-ELL SpMM — re-implementation of the cuSPARSE TCU baseline the
// paper profiles in §3.2 and compares against in Figs. 6/17/18.
//
// Each CTA (one warp) produces a (block x 128) output stripe.  Per
// stored block slot it stages the b x b value block AND the b x 128 B
// tile through shared memory (the library kernel's pattern — which is
// exactly what §3.2's "Short Scoreboard" analysis criticizes: the B
// data has little reuse yet round-trips through smem), then computes
// with wmma ops zero-padded to k = 16, wasting (16 - b)/16 of the TCU
// work for small blocks.
//
// Profile calibration: §3.2 reports 4600 SASS lines at block size 4 and
// Table 1/2 stall fractions; `static_instrs = 2800 + 7200/b` reproduces
// the block-4 figure and shrinks for the simpler large-block loops.
// icache_pressure > 1 models the library kernel's irregular control
// flow re-fetching the overflowed program body each slot iteration.
#pragma once

#include "vsparse/formats/blocked_ell.hpp"
#include "vsparse/formats/dense.hpp"
#include "vsparse/kernels/api.hpp"

namespace vsparse::kernels {

/// C[MxN] = A_blocked_ell[MxK] * B[KxN] (half, row-major B and C).
/// Requires N % 128 == 0 and block in {2, 4, 8, 16}.
KernelRun spmm_blocked_ell(gpusim::Device& dev, const BlockedEllDevice& a,
                           const DenseDevice<half_t>& b,
                           DenseDevice<half_t>& c,
                           const gpusim::SimOptions& sim = {});

}  // namespace vsparse::kernels

#include "vsparse/kernels/spmm/spmm_octet.hpp"

#include <bit>
#include <string>
#include <vector>

#include "vsparse/common/math.hpp"
#include "vsparse/fp16/vec.hpp"

namespace vsparse::kernels {

namespace {

using gpusim::AddrLanes;
using gpusim::Cta;
using gpusim::Lanes;
using gpusim::Op;
using gpusim::Warp;

constexpr int kTileN = 64;

/// One staged B fragment: 4 B rows x 64 columns, loaded by a single
/// LDG.128 (lane l holds B[k_{l/8}][n0 + 8*(l%8) .. +8)).
struct BFrag {
  Lanes<half8> lanes;
  int valid = 0;  ///< how many of the 4 rows are real (residue handling)
};

}  // namespace

KernelRun spmm_octet(gpusim::Device& dev, const CvsDevice& a,
                     const DenseDevice<half_t>& b, DenseDevice<half_t>& c,
                     const SpmmOctetParams& params,
                     const gpusim::SimOptions& sim) {
  const int m = a.rows, k = a.cols, n = b.cols;
  const int v = a.v;
  VSPARSE_CHECK(b.rows == k && c.rows == m && c.cols == n);
  VSPARSE_CHECK(b.layout == Layout::kRowMajor);
  VSPARSE_CHECK(c.layout == Layout::kRowMajor);
  VSPARSE_CHECK_MSG(v == 2 || v == 4 || v == 8,
                    "spmm_octet supports V in {2,4,8}; got " << v);
  VSPARSE_CHECK_MSG(n % kTileN == 0, "spmm_octet requires N % 64 == 0");
  VSPARSE_CHECK(params.tile_k >= 4 && params.tile_k % 4 == 0 &&
                params.tile_k <= 32);

  const int tile_k = params.tile_k;
  const int vec_rows = a.vec_rows();
  const int n_tiles = n / kTileN;

  gpusim::LaunchConfig cfg;
  cfg.grid = vec_rows * n_tiles;
  cfg.cta_threads = 32;
  // smem: staged indices (tile_k ints) + values (tile_k * v halves).
  cfg.smem_bytes =
      static_cast<std::size_t>(tile_k) * (4 + static_cast<std::size_t>(v) * 2);
  // Profile calibrated to the paper's SASS statistics (§7.2.2): 384 /
  // 416 SASS lines for V = 4 / 8 at TileK = 32; registers hold the V*64
  // fp32 accumulator split across 32 lanes (2V each) plus operands.
  cfg.profile = {
      .name = "spmm_octet_v" + std::to_string(v),
      .regs_per_thread = 26 + 2 * v + tile_k / 4,
      .static_instrs = 352 + 8 * v + 2 * (tile_k - 32),
      .icache_pressure = 1.0,
      .ilp_factor = params.batch_loads ? 0.5 : 1.0,
      // Without the §5.4 batching, the compiler's register reuse
      // serializes the B-fragment loads behind the MMAs: fewer loads in
      // flight -> a fraction of peak memory bandwidth.
      .mlp_factor = params.batch_loads ? 1.0 : 0.65,
  };

  auto row_ptr = a.row_ptr.host();

  gpusim::KernelStats stats = gpusim::launch(dev, cfg, [&](Cta& cta) {
    // Rows enumerate fastest: consecutive CTAs on an SM share the same
    // 64-wide B slice, which then lives in that SM's L1 (K x 64 x 2 B
    // = at most 128 KiB) — the reuse structure §4 counts on.
    const int vr = cta.cta_id() % vec_rows;
    const int n0 = (cta.cta_id() / vec_rows) * kTileN;
    Warp w = cta.warp(0);

    // Row extent: two scalar loads of csrRowPtr (one LDG.32, 2 lanes).
    {
      AddrLanes addr{};
      Lanes<std::int32_t> dst{};
      addr[0] = a.row_ptr.addr(static_cast<std::size_t>(vr));
      addr[1] = a.row_ptr.addr(static_cast<std::size_t>(vr) + 1);
      w.ldg(addr, dst, 0x3u);
      w.count(Op::kImad, 3);  // vr/n0 decomposition + pointer math
    }
    const std::int32_t begin = row_ptr[static_cast<std::size_t>(vr)];
    const std::int32_t end = row_ptr[static_cast<std::size_t>(vr) + 1];

    // fp32 accumulator for the V x 64 output tile (2V registers/lane).
    float acc[8][kTileN] = {};

    std::vector<BFrag> frags(static_cast<std::size_t>(tile_k / 4));

    for (std::int32_t i0 = begin; i0 < end; i0 += tile_k) {
      const int cnt = std::min<std::int32_t>(tile_k, end - i0);

      // ---- stage the LHS fragment (indices + values) into smem ------
      {
        // Indices: one lane per staged vector, LDG.32 coalesced.
        AddrLanes addr{};
        Lanes<std::int32_t> idx{};
        std::uint32_t mask = 0;
        for (int l = 0; l < std::min(cnt, 32); ++l) {
          addr[static_cast<std::size_t>(l)] =
              a.col_idx.addr(static_cast<std::size_t>(i0 + l));
          mask |= 1u << l;
        }
        w.ldg(addr, idx, mask);
        Lanes<std::uint32_t> soff{};
        for (int l = 0; l < std::min(cnt, 32); ++l) {
          soff[static_cast<std::size_t>(l)] = static_cast<std::uint32_t>(l * 4);
        }
        w.sts(soff, idx, mask);
        w.count(Op::kImad, 2);
      }
      {
        // Values: one V-wide vector per lane; the CVS layout keeps the
        // whole stride contiguous, so this is 128 B coalesced.
        std::uint32_t mask = 0;
        AddrLanes addr{};
        for (int l = 0; l < std::min(cnt, 32); ++l) {
          addr[static_cast<std::size_t>(l)] = a.values.addr(
              static_cast<std::size_t>(i0 + l) * static_cast<std::size_t>(v));
          mask |= 1u << l;
        }
        Lanes<std::uint32_t> soff{};
        for (int l = 0; l < std::min(cnt, 32); ++l) {
          soff[static_cast<std::size_t>(l)] = static_cast<std::uint32_t>(
              tile_k * 4 + l * v * 2);
        }
        switch (v) {
          case 2: {
            Lanes<half2> val;
            w.ldg(addr, val, mask);
            w.sts(soff, val, mask);
            break;
          }
          case 4: {
            Lanes<half4> val;
            w.ldg(addr, val, mask);
            w.sts(soff, val, mask);
            break;
          }
          default: {
            Lanes<half8> val;
            w.ldg(addr, val, mask);
            w.sts(soff, val, mask);
            break;
          }
        }
        w.count(Op::kImad, 2);
      }

      const int steps = ceil_div(cnt, 4);
      const bool full_stride = cnt == tile_k;
      const bool batch = params.batch_loads && full_stride;

      // Reads back the staged column indices (broadcast LDS).
      const auto staged_col = [&](int j) -> std::int32_t {
        return *reinterpret_cast<const std::int32_t*>(cta.smem() + j * 4);
      };
      const auto staged_val = [&](int j, int t) -> float {
        return static_cast<float>(*reinterpret_cast<const half_t*>(
            cta.smem() + tile_k * 4 + (j * v + t) * 2));
      };

      // ---- per 4-vector step: load the 64x4 B fragment ---------------
      const auto load_bfrag = [&](int s, BFrag& f) {
        f.valid = std::min(4, cnt - 4 * s);
        AddrLanes addr{};
        std::uint32_t mask = 0;
        for (int lane = 0; lane < 32; ++lane) {
          const int j = lane / 8;  // which of the 4 B rows
          if (j >= f.valid) continue;
          const std::int32_t col = staged_col(4 * s + j);
          addr[static_cast<std::size_t>(lane)] =
              b.addr(col, n0 + 8 * (lane % 8));
          mask |= 1u << lane;
        }
        w.count(Op::kImad, 1);
        w.ldg(addr, f.lanes, mask);
      };

      // ---- the octet-tiling MMA: (64x4)·(4xV) -------------------------
      const auto issue_mma = [&](int s, const BFrag& f) {
        // LDS of the staged A values for this step (4 vectors x V
        // halves, held once per octet).
        {
          // The step's values span 8*v bytes of smem; lanes broadcast
          // over it in half2 units, predicated to the vectors actually
          // staged (a residue step stages fewer than 4, and the slots
          // beyond f.valid were never written).
          Lanes<std::uint32_t> off{};
          Lanes<half2> d;
          std::uint32_t lmask = 0;
          for (int lane = 0; lane < 32; ++lane) {
            off[static_cast<std::size_t>(lane)] = static_cast<std::uint32_t>(
                tile_k * 4 + 4 * s * v * 2 + (lane % (2 * v)) * 4);
            if ((lane % (2 * v)) * 2 / v < f.valid) lmask |= 1u << lane;
          }
          w.lds(off, d, lmask);
        }
        // Two mma.m8n8k4 (8 HMMA) cover the 64 output rows; with the
        // future-work SASS edit, STEP 2&3 vanish for V <= 4.
        const unsigned steps_mask =
            (params.skip_steps_for_small_v && v <= 4) ? 0x3u : 0xFu;
        w.count(Op::kHmma,
                2 * static_cast<std::uint64_t>(std::popcount(steps_mask)));
        // Functional math: acc[t][nn] += A[k_j][t] * B[k_j][nn].
        for (int j = 0; j < f.valid; ++j) {
          float avals[8];
          for (int t = 0; t < v; ++t) avals[t] = staged_val(4 * s + j, t);
          for (int lane = 0; lane < 32; ++lane) {
            if (lane / 8 != j) continue;
            const int nn0 = 8 * (lane % 8);
            for (int e = 0; e < 8; ++e) {
              const float bv =
                  static_cast<float>(f.lanes[static_cast<std::size_t>(lane)][e]);
              for (int t = 0; t < v; ++t) {
                acc[t][nn0 + e] += avals[t] * bv;
              }
            }
          }
        }
      };

      if (batch) {
        // §5.4: all loads first, a fence, then all MMAs — prevents the
        // compiler from serializing loads behind MMAs on shared regs.
        for (int s = 0; s < steps; ++s) load_bfrag(s, frags[static_cast<std::size_t>(s)]);
        w.fence();
        for (int s = 0; s < steps; ++s) issue_mma(s, frags[static_cast<std::size_t>(s)]);
      } else {
        // Residue stride: interleave load and compute per 4 vectors.
        for (int s = 0; s < steps; ++s) {
          load_bfrag(s, frags[0]);
          issue_mma(s, frags[0]);
        }
      }
    }

    // ---- writeback: shuffle-reorganize, convert, vector stores -------
    w.count(Op::kShfl, static_cast<std::uint64_t>(2 * v));
    w.count(Op::kCvt, static_cast<std::uint64_t>(v * kTileN / 32));
    const int row_groups = ceil_div(v * kTileN, 32 * 8);  // rows per STG.128
    for (int g = 0; g < row_groups; ++g) {
      AddrLanes addr{};
      Lanes<half8> frag{};
      std::uint32_t mask = 0;
      for (int lane = 0; lane < 32; ++lane) {
        const int flat = (g * 32 + lane) * 8;  // element offset in tile
        const int t = flat / kTileN;
        if (t >= v) continue;
        const int nn = flat % kTileN;
        addr[static_cast<std::size_t>(lane)] = c.addr(vr * v + t, n0 + nn);
        for (int e = 0; e < 8; ++e) {
          frag[static_cast<std::size_t>(lane)][e] = half_t(acc[t][nn + e]);
        }
        mask |= 1u << lane;
      }
      w.stg(addr, frag, mask);
    }
  }, sim);

  return {stats, cfg};
}

}  // namespace vsparse::kernels

#include "vsparse/kernels/spmm/spmm_octet.hpp"

#include <bit>
#include <cstring>
#include <string>
#include <vector>

#include "vsparse/common/math.hpp"
#include "vsparse/fp16/vec.hpp"

namespace vsparse::kernels {

namespace {

using gpusim::AddrLanes;
using gpusim::Cta;
using gpusim::Lanes;
using gpusim::Op;
using gpusim::Warp;

constexpr int kTileN = 64;

/// One staged B fragment: 4 B rows x 64 columns, loaded by a single
/// LDG.128 (lane l holds B[k_{l/8}][n0 + 8*(l%8) .. +8)).
struct BFrag {
  Lanes<half8> lanes;
  int valid = 0;  ///< how many of the 4 rows are real (residue handling)
};

}  // namespace

KernelRun spmm_octet(gpusim::Device& dev, const CvsDevice& a,
                     const DenseDevice<half_t>& b, DenseDevice<half_t>& c,
                     const SpmmOctetParams& params,
                     const gpusim::SimOptions& sim) {
  const int m = a.rows, k = a.cols, n = b.cols;
  const int v = a.v;
  VSPARSE_CHECK(b.rows == k && c.rows == m && c.cols == n);
  VSPARSE_CHECK(b.layout == Layout::kRowMajor);
  VSPARSE_CHECK(c.layout == Layout::kRowMajor);
  VSPARSE_CHECK_MSG(v == 2 || v == 4 || v == 8,
                    "spmm_octet supports V in {2,4,8}; got " << v);
  VSPARSE_CHECK_MSG(n % kTileN == 0, "spmm_octet requires N % 64 == 0");
  VSPARSE_CHECK(params.tile_k >= 4 && params.tile_k % 4 == 0 &&
                params.tile_k <= 32);

  const int tile_k = params.tile_k;
  const int vec_rows = a.vec_rows();
  const int n_tiles = n / kTileN;

  gpusim::LaunchConfig cfg;
  cfg.grid = vec_rows * n_tiles;
  cfg.cta_threads = 32;
  // smem: staged indices (tile_k ints) + values (tile_k * v halves).
  cfg.smem_bytes =
      static_cast<std::size_t>(tile_k) * (4 + static_cast<std::size_t>(v) * 2);
  // Profile calibrated to the paper's SASS statistics (§7.2.2): 384 /
  // 416 SASS lines for V = 4 / 8 at TileK = 32; registers hold the V*64
  // fp32 accumulator split across 32 lanes (2V each) plus operands.
  cfg.profile = {
      .name = "spmm_octet_v" + std::to_string(v),
      .regs_per_thread = 26 + 2 * v + tile_k / 4,
      .static_instrs = 352 + 8 * v + 2 * (tile_k - 32),
      .icache_pressure = 1.0,
      .ilp_factor = params.batch_loads ? 0.5 : 1.0,
      // Without the §5.4 batching, the compiler's register reuse
      // serializes the B-fragment loads behind the MMAs: fewer loads in
      // flight -> a fraction of peak memory bandwidth.
      .mlp_factor = params.batch_loads ? 1.0 : 0.65,
  };

  auto row_ptr = a.row_ptr.host();

  gpusim::KernelStats stats = gpusim::launch(dev, cfg, [&](Cta& cta) {
    // Rows enumerate fastest: consecutive CTAs on an SM share the same
    // 64-wide B slice, which then lives in that SM's L1 (K x 64 x 2 B
    // = at most 128 KiB) — the reuse structure §4 counts on.
    const int vr = cta.cta_id() % vec_rows;
    const int n0 = (cta.cta_id() / vec_rows) * kTileN;
    Warp w = cta.warp(0);

    // Row extent: two scalar loads of csrRowPtr (one LDG.32, affine).
    {
      Lanes<std::int32_t> dst{};
      w.ldg_span(a.row_ptr.addr(static_cast<std::size_t>(vr)), 4, dst, 0x3u);
      w.count(Op::kImad, 3);  // vr/n0 decomposition + pointer math
    }
    const std::int32_t begin = row_ptr[static_cast<std::size_t>(vr)];
    const std::int32_t end = row_ptr[static_cast<std::size_t>(vr) + 1];

    // fp32 accumulator for the V x 64 output tile (2V registers/lane);
    // zero only the v rows in use.
    float acc[8][kTileN];
    std::memset(acc, 0, static_cast<std::size_t>(v) * kTileN * sizeof(float));

    BFrag frags[8];  // tile_k <= 32 => at most 8 steps

    for (std::int32_t i0 = begin; i0 < end; i0 += tile_k) {
      const int cnt = std::min<std::int32_t>(tile_k, end - i0);

      // ---- stage the LHS fragment (indices + values) into smem ------
      // Both staging reads are pure affine spans: `cnt` consecutive
      // vectors of the CVS stream, one lane each.
      const int nstage = std::min(cnt, 32);
      const std::uint32_t stage_mask =
          nstage >= 32 ? 0xFFFFFFFFu : (1u << nstage) - 1u;
      {
        // Indices: one lane per staged vector, LDG.32 coalesced.
        Lanes<std::int32_t> idx{};
        w.ldg_span(a.col_idx.addr(static_cast<std::size_t>(i0)), 4, idx,
                   stage_mask);
        w.sts_span(0, 4, idx, stage_mask);
        w.count(Op::kImad, 2);
      }
      {
        // Values: one V-wide vector per lane; the CVS layout keeps the
        // whole stride contiguous, so this is 128 B coalesced.
        const std::uint64_t vbase = a.values.addr(
            static_cast<std::size_t>(i0) * static_cast<std::size_t>(v));
        const std::uint32_t vstride = static_cast<std::uint32_t>(v) * 2;
        const std::uint32_t voff = static_cast<std::uint32_t>(tile_k * 4);
        switch (v) {
          case 2: {
            Lanes<half2> val;
            w.ldg_span(vbase, vstride, val, stage_mask);
            w.sts_span(voff, vstride, val, stage_mask);
            break;
          }
          case 4: {
            Lanes<half4> val;
            w.ldg_span(vbase, vstride, val, stage_mask);
            w.sts_span(voff, vstride, val, stage_mask);
            break;
          }
          default: {
            Lanes<half8> val;
            w.ldg_span(vbase, vstride, val, stage_mask);
            w.sts_span(voff, vstride, val, stage_mask);
            break;
          }
        }
        w.count(Op::kImad, 2);
      }

      const int steps = ceil_div(cnt, 4);
      const bool full_stride = cnt == tile_k;
      const bool batch = params.batch_loads && full_stride;

      // Reads back the staged column indices (broadcast LDS).
      const auto staged_col = [&](int j) -> std::int32_t {
        return *reinterpret_cast<const std::int32_t*>(cta.smem() + j * 4);
      };
      const auto staged_val = [&](int j, int t) -> float {
        return static_cast<float>(*reinterpret_cast<const half_t*>(
            cta.smem() + tile_k * 4 + (j * v + t) * 2));
      };

      // ---- per 4-vector step: load the 64x4 B fragment ---------------
      // Four 8-lane segments, one per staged B row, each striding
      // through 64 half columns (8 halves per lane).
      const auto load_bfrag = [&](int s, BFrag& f) {
        f.valid = std::min(4, cnt - 4 * s);
        std::uint64_t gbase[4] = {};
        for (int j = 0; j < f.valid; ++j) {
          gbase[j] = b.addr(staged_col(4 * s + j), n0);
        }
        const std::uint32_t mask =
            f.valid >= 4 ? 0xFFFFFFFFu : (1u << (8 * f.valid)) - 1u;
        w.count(Op::kImad, 1);
        w.ldg_span(gbase, 4, 8, 16, f.lanes, mask);
      };

      // ---- the octet-tiling MMA: (64x4)·(4xV) -------------------------
      const auto issue_mma = [&](int s, const BFrag& f) {
        // LDS of the staged A values for this step (4 vectors x V
        // halves, held once per octet).
        {
          // The step's values span 8*v bytes of smem; lanes broadcast
          // over it in half2 units, predicated to the vectors actually
          // staged (a residue step stages fewer than 4, and the slots
          // beyond f.valid were never written).
          // Lanes broadcast over the step's 8V bytes in half2 units:
          // 32/(2V) repeated segments of width 2V, stride 4.  Active
          // lanes are a per-segment prefix when a residue step staged
          // fewer than 4 vectors.
          const int swidth = 2 * v;
          const int nseg = 32 / swidth;
          std::uint32_t soff[16];
          const std::uint32_t sbase =
              static_cast<std::uint32_t>(tile_k * 4 + 4 * s * v * 2);
          for (int seg = 0; seg < nseg; ++seg) soff[seg] = sbase;
          std::uint32_t lmask;
          if (f.valid >= 4) {
            lmask = 0xFFFFFFFFu;
          } else {
            const int nt = std::min(swidth, f.valid * v / 2);
            const std::uint32_t seg_bits = (1u << nt) - 1u;
            lmask = 0;
            for (int seg = 0; seg < nseg; ++seg) {
              lmask |= seg_bits << (seg * swidth);
            }
          }
          Lanes<half2> d;
          w.lds_span(soff, nseg, swidth, 4, d, lmask);
        }
        // Two mma.m8n8k4 (8 HMMA) cover the 64 output rows; with the
        // future-work SASS edit, STEP 2&3 vanish for V <= 4.
        const unsigned steps_mask =
            (params.skip_steps_for_small_v && v <= 4) ? 0x3u : 0xFu;
        w.count(Op::kHmma,
                2 * static_cast<std::uint64_t>(std::popcount(steps_mask)));
        // Functional math: acc[t][nn] += A[k_j][t] * B[k_j][nn].  Each
        // accumulator element receives exactly one += of the same
        // product as the naive loop; widening the B lane once (exact)
        // and running e innermost only reorders independent updates.
        for (int j = 0; j < f.valid; ++j) {
          float avals[8];
          for (int t = 0; t < v; ++t) avals[t] = staged_val(4 * s + j, t);
          for (int lz = 0; lz < 8; ++lz) {
            const int lane = 8 * j + lz;
            const int nn0 = 8 * lz;
            float bf[8];
            half_to_float_n(f.lanes[static_cast<std::size_t>(lane)].v.data(),
                            bf, 8);
            for (int t = 0; t < v; ++t) {
              const float at = avals[t];
              for (int e = 0; e < 8; ++e) {
                acc[t][nn0 + e] += at * bf[e];
              }
            }
          }
        }
      };

      if (batch) {
        // §5.4: all loads first, a fence, then all MMAs — prevents the
        // compiler from serializing loads behind MMAs on shared regs.
        for (int s = 0; s < steps; ++s) load_bfrag(s, frags[static_cast<std::size_t>(s)]);
        w.fence();
        for (int s = 0; s < steps; ++s) issue_mma(s, frags[static_cast<std::size_t>(s)]);
      } else {
        // Residue stride: interleave load and compute per 4 vectors.
        for (int s = 0; s < steps; ++s) {
          load_bfrag(s, frags[0]);
          issue_mma(s, frags[0]);
        }
      }
    }

    // ---- writeback: shuffle-reorganize, convert, vector stores -------
    w.count(Op::kShfl, static_cast<std::uint64_t>(2 * v));
    w.count(Op::kCvt, static_cast<std::uint64_t>(v * kTileN / 32));
    const int row_groups = ceil_div(v * kTileN, 32 * 8);  // rows per STG.128
    for (int g = 0; g < row_groups; ++g) {
      // Each 8-lane group covers one full 64-wide output row: a
      // 4-segment span, stride 16 B, prefix-active in the rows left.
      std::uint64_t gbase[4] = {};
      Lanes<half8> frag{};
      std::uint32_t mask = 0;
      for (int seg = 0; seg < 4; ++seg) {
        const int t = g * 4 + seg;
        if (t >= v) continue;
        gbase[seg] = c.addr(vr * v + t, n0);
        mask |= 0xFFu << (8 * seg);
        for (int lz = 0; lz < 8; ++lz) {
          const int lane = 8 * seg + lz;
          const int nn = 8 * lz;
          for (int e = 0; e < 8; ++e) {
            frag[static_cast<std::size_t>(lane)][e] = half_t(acc[t][nn + e]);
          }
        }
      }
      w.stg_span(gbase, 4, 8, 16, frag, mask);
    }
  }, sim);

  return {stats, cfg};
}

}  // namespace vsparse::kernels

#include "vsparse/kernels/spmm/spmm_csr_fine.hpp"

#include <algorithm>
#include <string>

#include "vsparse/common/math.hpp"

namespace vsparse::kernels {

namespace {

using gpusim::AddrLanes;
using gpusim::Cta;
using gpusim::Lanes;
using gpusim::Op;
using gpusim::Warp;

constexpr int kTileN = 32;  // one output column per lane

template <class T>
KernelRun spmm_csr_fine_impl(gpusim::Device& dev, const CvsDeviceT<T>& a,
                             const DenseDevice<T>& b, DenseDevice<T>& c,
                             const gpusim::SimOptions& sim) {
  const int m = a.rows, k = a.cols, n = b.cols;
  VSPARSE_CHECK(a.v == 1);
  VSPARSE_CHECK(b.rows == k && c.rows == m && c.cols == n);
  VSPARSE_CHECK(b.layout == Layout::kRowMajor &&
                c.layout == Layout::kRowMajor);
  VSPARSE_CHECK_MSG(n % kTileN == 0, "N % 32 == 0 required");

  const int n_tiles = n / kTileN;

  gpusim::LaunchConfig cfg;
  cfg.grid = m * n_tiles;
  cfg.cta_threads = 32;
  cfg.smem_bytes = 0;
  cfg.profile = {
      .name = sizeof(T) == 2 ? "spmm_csr_fine_half" : "spmm_csr_fine_f32",
      .regs_per_thread = 32,
      .static_instrs = 320,
      .icache_pressure = 1.0,
      .ilp_factor = 1.3,  // serialized per-nonzero dependency chain
  };

  auto row_ptr = a.row_ptr.host();
  auto col_host = a.col_idx.host();
  auto val_host = a.values.host();

  gpusim::KernelStats stats = gpusim::launch(dev, cfg, [&](Cta& cta) {
    const int row = cta.cta_id() % m;  // rows fastest (B-slice reuse)
    const int n0 = (cta.cta_id() / m) * kTileN;
    Warp w = cta.warp(0);
    {
      AddrLanes addr{};
      Lanes<std::int32_t> d{};
      addr[0] = a.row_ptr.addr(static_cast<std::size_t>(row));
      addr[1] = a.row_ptr.addr(static_cast<std::size_t>(row) + 1);
      w.ldg(addr, d, 0x3u);
      w.count(Op::kImad, 3);
    }
    const std::int32_t begin = row_ptr[static_cast<std::size_t>(row)];
    const std::int32_t end = row_ptr[static_cast<std::size_t>(row) + 1];

    float acc[kTileN] = {};

    for (std::int32_t i0 = begin; i0 < end; i0 += 32) {
      const int cnt = std::min<std::int32_t>(32, end - i0);
      // Gather indices + values for up to 32 nonzeros (coalesced).
      {
        AddrLanes addr{};
        Lanes<std::int32_t> d{};
        std::uint32_t mask = cnt >= 32 ? gpusim::kFullMask
                                       : ((1u << cnt) - 1u);
        for (int l = 0; l < cnt; ++l) {
          addr[static_cast<std::size_t>(l)] =
              a.col_idx.addr(static_cast<std::size_t>(i0 + l));
        }
        w.ldg(addr, d, mask);
        AddrLanes vaddr{};
        Lanes<T> vals{};
        for (int l = 0; l < cnt; ++l) {
          vaddr[static_cast<std::size_t>(l)] =
              a.values.addr(static_cast<std::size_t>(i0 + l));
        }
        w.ldg(vaddr, vals, mask);
        w.count(Op::kImad, 2);
      }
      // Serialized walk: per nonzero, every lane loads B[k][n0+lane].
      for (int j = 0; j < cnt; ++j) {
        const std::int32_t col = col_host[static_cast<std::size_t>(i0 + j)];
        const float av =
            static_cast<float>(val_host[static_cast<std::size_t>(i0 + j)]);
        AddrLanes addr{};
        Lanes<T> brow{};
        for (int lane = 0; lane < 32; ++lane) {
          addr[static_cast<std::size_t>(lane)] = b.addr(col, n0 + lane);
        }
        w.count(Op::kImad, 1);
        w.ldg(addr, brow);
        if constexpr (sizeof(T) == 2) {
          w.count(Op::kHfma, 1);
          w.count(Op::kFfma, 1);
        } else {
          w.count(Op::kFfma, 1);
        }
        for (int lane = 0; lane < 32; ++lane) {
          acc[lane] +=
              av * static_cast<float>(brow[static_cast<std::size_t>(lane)]);
        }
      }
    }

    // Writeback: one element per lane.
    if constexpr (sizeof(T) == 2) w.count(Op::kCvt, 1);
    AddrLanes addr{};
    Lanes<T> out{};
    for (int lane = 0; lane < 32; ++lane) {
      addr[static_cast<std::size_t>(lane)] = c.addr(row, n0 + lane);
      out[static_cast<std::size_t>(lane)] = T(acc[lane]);
    }
    w.stg(addr, out);
  }, sim);

  return {stats, cfg};
}

}  // namespace

KernelRun spmm_csr_fine(gpusim::Device& dev, const CvsDevice& a,
                        const DenseDevice<half_t>& b, DenseDevice<half_t>& c,
                        const gpusim::SimOptions& sim) {
  return spmm_csr_fine_impl<half_t>(dev, a, b, c, sim);
}

KernelRun spmm_csr_fine_f32(gpusim::Device& dev, const CvsDeviceT<float>& a,
                            const DenseDevice<float>& b,
                            DenseDevice<float>& c,
                            const gpusim::SimOptions& sim) {
  return spmm_csr_fine_impl<float>(dev, a, b, c, sim);
}

}  // namespace vsparse::kernels

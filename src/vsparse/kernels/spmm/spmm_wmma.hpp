// SpMM with TCU-based 1-D Warp Tiling (§5.2) — the classic
// wmma.m8n32k16 mapping used as an intermediate design point between
// the FPU baseline and the octet tiling.
//
// Grid and warp tile match the octet kernel (one V x 64 output tile per
// single-warp CTA — guidelines I/II/III hold), but the classic fragment
// layout of Fig. 10 caps the B loads at LDG.64 with 64 B coalescing
// (guideline V violated), TileK must be a multiple of 16 (costlier
// residue handling), and a (V x 16)·(16 x 32) wmma wastes computation
// whenever V < 8.
#pragma once

#include "vsparse/formats/cvs.hpp"
#include "vsparse/formats/dense.hpp"
#include "vsparse/kernels/api.hpp"

namespace vsparse::kernels {

/// C = A_cvs * B with the classic warp-level WMMA mapping.
/// Requires N % 64 == 0 and V in {2,4,8}.
KernelRun spmm_wmma_warp(gpusim::Device& dev, const CvsDevice& a,
                         const DenseDevice<half_t>& b,
                         DenseDevice<half_t>& c,
                         const gpusim::SimOptions& sim = {});

}  // namespace vsparse::kernels

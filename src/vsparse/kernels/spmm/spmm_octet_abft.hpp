// Checksum-augmented octet SpMM: spmm_octet with ABFT detect + recover.
// See kernels/abft.hpp for the checksum math and recovery contract.
#pragma once

#include "vsparse/kernels/abft.hpp"
#include "vsparse/kernels/spmm/spmm_octet.hpp"

namespace vsparse::kernels {

/// spmm_octet followed by per-CTA-tile checksum verification.  The
/// launch's CTA tile is the V x 64 output block of one (vector row,
/// column tile) pair; its checksum weight per stored nonzero vector is
/// w_i = sum_t values[i*v + t], giving the expectation
/// sum_i w_i * B[col_i][j] for each output column j.  Corrupted tiles
/// are recomputed in place by re-running spmm_octet on a single
/// vector-row / column-tile sub-problem (a two-entry row_ptr view plus
/// dense column windows), bounded by `abft.max_retries` rounds.
KernelRun spmm_octet_abft(gpusim::Device& dev, const CvsDevice& a,
                          const DenseDevice<half_t>& b,
                          DenseDevice<half_t>& c,
                          const SpmmOctetParams& params = {},
                          const AbftOptions& abft = {},
                          const gpusim::SimOptions& sim = {});

}  // namespace vsparse::kernels

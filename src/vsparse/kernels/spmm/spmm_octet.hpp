// SpMM with TCU-based 1-D Octet Tiling — the paper's primary
// contribution (§5.3 / §5.4).
//
// C[MxN] = A[MxK] * B[KxN], A in column-vector sparse encoding
// (V in {2,4,8}), B and C row-major half.
//
// Launch shape: ceil(M/V) x (N/64) CTAs of one warp each (§5.4), so the
// grid scales with M*N/(64V) (guideline II).  Each CTA:
//
//   * traverses the vector-row's nonzeros in strides of TileK,
//   * stages the LHS fragment (indices + values, contiguous in the CVS
//     layout) into shared memory once per stride — it is reused by all
//     64 output columns, so smem staging is the right choice
//     (guideline IV applies to the *B* operand, which has few reuse
//     opportunities and goes straight to registers),
//   * per 4 nonzero vectors, loads the 64x4 B fragment with ONE
//     LDG.128 (each lane takes 8 consecutive halves of one B row:
//     four 128 B coalesced transactions — guideline V),
//   * issues the octet-tiling MMA computing (64x4)·(4xV) — LHS/RHS
//     switched so V lies along TCU columns; 8 HMMA steps per step
//     (2 mma.m8n8k4), independent of V (STEP 2&3 removal for V<=4
//     needs an assembler, §7.1.3 — exposed as `skip_steps_for_small_v`
//     for the ablation bench only),
//   * batches all TileK/4 B-fragment loads, a __threadfence_block, then
//     all MMAs (the §5.4 ILP trick, `batch_loads`),
//   * reorganizes the accumulators with warp shuffles and writes C with
//     vector stores.
#pragma once

#include "vsparse/formats/cvs.hpp"
#include "vsparse/formats/dense.hpp"
#include "vsparse/kernels/api.hpp"

namespace vsparse::kernels {

struct SpmmOctetParams {
  int tile_k = 32;      ///< nonzero vectors staged per stride (multiple of 4)
  bool batch_loads = true;  ///< §5.4 ILP trick (ablation: set false)
  /// Future-work HMMA removal (§7.1.3): skip STEP 2&3 when V <= 4.
  /// Off by default to match the evaluated kernel.
  bool skip_steps_for_small_v = false;
};

/// Launch the octet-tiling SpMM.  Requires N % 64 == 0 and
/// a.v in {2,4,8} (use the FPU kernel for V=1).
KernelRun spmm_octet(gpusim::Device& dev, const CvsDevice& a,
                     const DenseDevice<half_t>& b, DenseDevice<half_t>& c,
                     const SpmmOctetParams& params = {},
                     const gpusim::SimOptions& sim = {});

}  // namespace vsparse::kernels

// Fine-grained CSR SpMM — re-implementation of the cusparseSpMM
// row-per-warp algorithm used as the cuSPARSE baseline in Fig. 4.
//
// Each CTA (one warp) produces a 1 x 32 output slice: the warp walks
// the row's nonzeros one at a time; for each, every lane loads one B
// element of its output column (narrow LDG, low reuse) and FMAs.  The
// serialized nonzero walk is why the library only pays off at very high
// (> 95%) sparsity.
#pragma once

#include "vsparse/formats/cvs.hpp"
#include "vsparse/formats/dense.hpp"
#include "vsparse/kernels/api.hpp"

namespace vsparse::kernels {

/// Half-precision fine-grained SpMM (V must be 1).  N % 32 == 0.
KernelRun spmm_csr_fine(gpusim::Device& dev, const CvsDevice& a,
                        const DenseDevice<half_t>& b, DenseDevice<half_t>& c,
                        const gpusim::SimOptions& sim = {});

/// Single-precision variant.
KernelRun spmm_csr_fine_f32(gpusim::Device& dev, const CvsDeviceT<float>& a,
                            const DenseDevice<float>& b,
                            DenseDevice<float>& c,
                            const gpusim::SimOptions& sim = {});

}  // namespace vsparse::kernels

// High-level dispatch API — the cuSPARSE-style entry points a
// downstream user calls without choosing a kernel by hand.
//
//   spmm(dev, a, b, c)    // picks octet / fpu by V, validates shapes
//   sddmm(dev, a, b, mask, out)
//
// Selection policy (documented, overridable):
//   * V in {2,4,8}  -> TCU-based 1-D Octet Tiling (the paper's kernel)
//   * V == 1        -> FPU 1-D subwarp tiling (Sputnik semantics; the
//                      TCU mappings need at least 2-wide vectors)
//   * Algorithm::k* -> force a specific implementation (for studies)
//
// All entry points return the KernelRun (counters + launch shape) so
// callers keep full observability.
#pragma once

#include "vsparse/formats/blocked_ell.hpp"
#include "vsparse/formats/cvs.hpp"
#include "vsparse/formats/dense.hpp"
#include "vsparse/kernels/api.hpp"

namespace vsparse::kernels {

enum class SpmmAlgorithm {
  kAuto,        ///< octet for V>=2, FPU subwarp for V=1
  kOctet,       ///< TCU-based 1-D Octet Tiling (§5.3)
  kWmmaWarp,    ///< classic warp-level WMMA mapping (§5.2)
  kFpuSubwarp,  ///< Sputnik-extended FPU tiling (§5.1)
  kCsrFine,     ///< fine-grained row-per-warp (cuSPARSE-style, V=1)
};

enum class SddmmAlgorithm {
  kAuto,        ///< octet(reg) for V>=2, FPU subwarp for V=1
  kOctet,       ///< §6.3 with the extra-registers inverted-pattern fix
  kWmmaWarp,    ///< §6.2
  kFpuSubwarp,  ///< §6.1
  kCsrFine,     ///< fine-grained (V=1)
};

/// C[MxN] = A_cvs[MxK] * B[KxN] (half, row-major B/C).
KernelRun spmm(gpusim::Device& dev, const CvsDevice& a,
               const DenseDevice<half_t>& b, DenseDevice<half_t>& c,
               SpmmAlgorithm algo = SpmmAlgorithm::kAuto,
               const gpusim::SimOptions& sim = {});

/// Fault-tolerant SpMM: the octet kernel wrapped in ABFT checksum
/// verification and tile recompute (kernels/spmm/spmm_octet_abft.hpp).
/// Only the octet algorithm has an ABFT variant, so `algo` must be
/// kAuto (with V >= 2) or kOctet.  The recovery outcome is reported in
/// the returned KernelRun::abft.
KernelRun spmm(gpusim::Device& dev, const CvsDevice& a,
               const DenseDevice<half_t>& b, DenseDevice<half_t>& c,
               const AbftOptions& abft,
               SpmmAlgorithm algo = SpmmAlgorithm::kAuto,
               const gpusim::SimOptions& sim = {});

/// out_values = (A[MxK] * B[KxN]) ⊙ mask in mask storage order
/// (A row-major, B column-major).
KernelRun sddmm(gpusim::Device& dev, const DenseDevice<half_t>& a,
                const DenseDevice<half_t>& b, const CvsDevice& mask,
                gpusim::Buffer<half_t>& out_values,
                SddmmAlgorithm algo = SddmmAlgorithm::kAuto,
                const gpusim::SimOptions& sim = {});

/// Convenience: full host-side round trip — encode, upload, run, and
/// download.  `algo` as in spmm().  Intended for quickstarts and tests;
/// steady-state users should keep operands resident.
DenseMatrix<half_t> spmm_host(const Cvs& a, const DenseMatrix<half_t>& b,
                              SpmmAlgorithm algo = SpmmAlgorithm::kAuto,
                              const gpusim::SimOptions& sim = {});

/// Host-side SDDMM round trip; returns the masked products as a Cvs
/// sharing `mask`'s pattern.
Cvs sddmm_host(const DenseMatrix<half_t>& a, const DenseMatrix<half_t>& b,
               const Cvs& mask,
               SddmmAlgorithm algo = SddmmAlgorithm::kAuto,
               const gpusim::SimOptions& sim = {});

}  // namespace vsparse::kernels

// High-level dispatch API — the cuSPARSE-style entry points a
// downstream user calls without choosing a kernel by hand.
//
//   spmm(dev, a, b, c);                                  // auto-select
//   spmm(dev, a, b, c, {.algorithm = SpmmAlgorithm::kOctet,
//                       .abft = AbftOptions{},
//                       .sim = {.threads = 8}});
//   sddmm(dev, a, b, mask, out, {.sim = {.threads = 4}});
//
// One descriptor struct per operation bundles everything a call can
// vary — algorithm, optional ABFT fault tolerance, the engine's
// SimOptions (threads, watchdog, per-SM stats, tracing), serving
// supervision, and an optional autotuned policy cache — so adding a
// knob never multiplies the overload set again.
//
// Selection policy (documented, overridable):
//   * V in {2,4,8}  -> TCU-based 1-D Octet Tiling (the paper's kernel)
//   * V == 1        -> FPU 1-D subwarp tiling (Sputnik semantics; the
//                      TCU mappings need at least 2-wide vectors)
//   * policy cache  -> with SpmmOptions::policy attached, kAuto first
//                      probes the autotuned per-architecture cache
//                      (kernels/policy.hpp) and falls back to the rule
//                      above on miss
//   * Algorithm::k* -> force a specific implementation (for studies)
//
// The algorithm enums and the kernel metadata behind every branch live
// in kernels/registry.hpp; this header stays the stable entry-point
// surface.  All entry points return the KernelRun (counters + launch
// shape) so callers keep full observability; the host round trips
// return a HostRun carrying the downloaded result *and* the KernelRun.
#pragma once

#include <optional>

#include "vsparse/formats/cvs.hpp"
#include "vsparse/formats/dense.hpp"
#include "vsparse/kernels/api.hpp"
#include "vsparse/kernels/registry.hpp"

namespace vsparse::serve {
struct ServePolicy;
struct ServeReport;
}  // namespace vsparse::serve

namespace vsparse::verify {
class CertStore;
}  // namespace vsparse::verify

namespace vsparse::kernels {

class PolicyCache;

/// Everything one spmm() call can vary.
struct SpmmOptions {
  SpmmAlgorithm algorithm = SpmmAlgorithm::kAuto;

  /// When set, the launch runs fault-tolerant: the octet kernel wrapped
  /// in ABFT checksum verification and per-tile recompute (kernels/
  /// spmm/spmm_octet_abft.hpp).  Only the octet algorithm has an ABFT
  /// variant, so `algorithm` must be kAuto (with V >= 2) or kOctet.
  /// The recovery outcome lands in the returned KernelRun::abft.
  std::optional<AbftOptions> abft;

  /// Engine options: threads, watchdog, per-SM stats, tracing.
  gpusim::SimOptions sim;

  /// Opt-in serving supervision (serve/supervisor.hpp): with a policy
  /// attached, the launch runs inside the fault boundary — bounded
  /// retries with deterministic backoff for retryable faults, then the
  /// degradation ladder.  Null (the default) is the zero-overhead fast
  /// path: dispatch is bit- and counter-identical to a build without
  /// the serving layer.  The policy must outlive the call.
  const serve::ServePolicy* serve = nullptr;
  /// Out-param (like SimOptions::per_sm_stats): when set together with
  /// `serve`, receives the attempt-by-attempt ServeReport.
  serve::ServeReport* serve_report = nullptr;

  /// Opt-in autotuned dispatch policy (kernels/policy.hpp): consulted
  /// only when `algorithm` is kAuto and no ABFT is requested.  Null
  /// (the default) or a cache miss reproduces the static heuristic
  /// exactly — same off-by-default contract as `serve`.  The cache
  /// must outlive the call.
  const PolicyCache* policy = nullptr;

  /// Opt-in static-verification gate (gpusim/verify/certs.hpp): with a
  /// certificate store attached, a kernel whose certified verdict for
  /// this (shape class, architecture) is `refuted` is never launched —
  /// kAuto diverts to the first non-refuted eligible kernel, and an
  /// explicitly requested refuted kernel raises kBadDispatch carrying
  /// the counterexample shape.  Null (the default), uncovered shapes,
  /// and `unknown` verdicts change nothing (the dynamic sanitizer
  /// stays authoritative there).  The store must outlive the call.
  const verify::CertStore* certs = nullptr;
};

/// Everything one sddmm() call can vary.  `abft` is reserved: no SDDMM
/// kernel has an ABFT variant yet, so setting it raises a structured
/// kBadDispatch error rather than silently running unprotected.
struct SddmmOptions {
  SddmmAlgorithm algorithm = SddmmAlgorithm::kAuto;
  std::optional<AbftOptions> abft;
  gpusim::SimOptions sim;

  /// Serving supervision, as in SpmmOptions.
  const serve::ServePolicy* serve = nullptr;
  serve::ServeReport* serve_report = nullptr;

  /// Autotuned dispatch policy, as in SpmmOptions.
  const PolicyCache* policy = nullptr;

  /// Static-verification gate, as in SpmmOptions.
  const verify::CertStore* certs = nullptr;
};

/// The DispatchShape (registry/policy key) of one SpMM call's operands
/// — O(1) host-side metadata only.
DispatchShape spmm_dispatch_shape(const CvsDevice& a,
                                  const DenseDevice<half_t>& b);

/// Likewise for SDDMM (the mask is the sparse operand; N is its cols).
DispatchShape sddmm_dispatch_shape(const DenseDevice<half_t>& a,
                                   const CvsDevice& mask);

/// C[MxN] = A_cvs[MxK] * B[KxN] (half, row-major B/C).
KernelRun spmm(gpusim::Device& dev, const CvsDevice& a,
               const DenseDevice<half_t>& b, DenseDevice<half_t>& c,
               const SpmmOptions& options = {});

/// out_values = (A[MxK] * B[KxN]) ⊙ mask in mask storage order
/// (A row-major, B column-major).
KernelRun sddmm(gpusim::Device& dev, const DenseDevice<half_t>& a,
                const DenseDevice<half_t>& b, const CvsDevice& mask,
                gpusim::Buffer<half_t>& out_values,
                const SddmmOptions& options = {});

/// What a host-side round trip produced: the downloaded result plus
/// the full KernelRun (counters, launch shape, ABFT outcome) — so
/// quickstart-style callers can report cost/speedup without dropping
/// to the device API.
template <class R>
struct HostRun {
  R result;
  KernelRun run;
};

/// Convenience: full host-side round trip — encode, upload, run, and
/// download.  Intended for quickstarts and tests; steady-state users
/// should keep operands resident.
HostRun<DenseMatrix<half_t>> spmm_host(const Cvs& a,
                                       const DenseMatrix<half_t>& b,
                                       const SpmmOptions& options = {});

/// Host-side SDDMM round trip; `result` is the masked products as a
/// Cvs sharing `mask`'s pattern.
HostRun<Cvs> sddmm_host(const DenseMatrix<half_t>& a,
                        const DenseMatrix<half_t>& b, const Cvs& mask,
                        const SddmmOptions& options = {});

}  // namespace vsparse::kernels

// Versioned dispatch-policy cache — the third registry consumer.
//
// kAuto's static heuristic (octet for V >= 2, FPU subwarp otherwise)
// is right in the bulk of the paper's sweeps but leaves ground on the
// margins: skinny outputs where the FPU tiling's lower launch overhead
// wins, near-dense panels where WMMA beats octet, V = 1 shapes where
// the fine-grained kernel overtakes the subwarp tiling.  The offline
// autotuner (autotune_policy, kernels/autotune.hpp) sweeps the full
// registry palette over a grid of shape classes per architecture
// preset, scores candidates with the existing cost model, and persists
// the winners here.
//
// Key structure: (op, arch, shape class) -> kernel name, where a shape
// class buckets M/K/N by log2, density by the paper's sparsity grid,
// and keeps V exact.  Lookup is O(1): one small key build plus one
// unordered_map probe — no scan of the registry or the cache.
//
// Contract: the cache is *advisory and opt-in*.  SpmmOptions::policy /
// SddmmOptions::policy default to null, and a null or missing-entry
// cache makes kAuto fall back to the static heuristic — dispatch is
// bit- and counter-identical to a build without this layer.  A cache
// never overrides an explicit algorithm request, never selects a
// kernel that does not support the operand's V, and never applies to
// ABFT launches (only the octet kernel has an ABFT variant).
//
// The JSON file is versioned ("vsparse-policy-v1"); loading any other
// version raises kBadDispatch rather than silently misapplying stale
// policies.  tools/validate_policy_cache.py checks the same schema
// offline in CI.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

#include "vsparse/kernels/registry.hpp"

namespace vsparse::kernels {

/// Schema version tag; bump on any incompatible key/field change.
inline constexpr const char* kPolicyCacheVersion = "vsparse-policy-v1";

/// External-artifact guardrails (loader hardening): a real cache is a
/// few KiB, so these caps are generous by orders of magnitude — any
/// violation means a corrupt or hostile artifact, and from_json/load
/// reject it with a structured kBadDispatch before allocating
/// proportionally to attacker-controlled lengths.
inline constexpr std::size_t kMaxPolicyCacheBytes = std::size_t{16} << 20;
inline constexpr std::size_t kMaxPolicyCacheEntries = 65536;
inline constexpr std::size_t kMaxPolicyStringLength = 256;

/// Log2 bucket of a problem extent: 0 for extents <= 1, else
/// ceil(log2(extent)).  Adjacent power-of-two shapes (the paper's
/// sweep grid) land in distinct buckets; off-grid shapes share the
/// bucket of the next power of two.
int extent_bucket(int extent);

/// Density bucket over the paper's sparsity grid {50, 70, 80, 90, 95,
/// 98, 99%}: index of the first grid sparsity >= the operand's, 0 for
/// denser-than-50% operands.
int density_bucket(double density);

/// The canonical cache key for one dispatch decision:
/// "<op>|<arch>|m<mb>k<kb>n<nb>d<db>v<V>".
std::string shape_class_key(KernelOp op, std::string_view arch,
                            const DispatchShape& shape);

/// One cached decision, with provenance for tooling.
struct PolicyEntry {
  std::string kernel;   ///< stable registry name ("spmm_octet")
  double cycles = 0.0;  ///< winner's model cycles when tuned
};

class PolicyCache {
 public:
  PolicyCache() = default;

  /// Record the winner for a shape class (last insert wins).
  void insert(KernelOp op, std::string_view arch, const DispatchShape& shape,
              std::string_view kernel, double cycles);

  /// O(1) probe.  Returns the cached kernel's desc, or nullptr when the
  /// class is absent, the cached name is unknown, or the kernel cannot
  /// take this operand (wrong op / unsupported V / not dispatchable) —
  /// every miss falls back to the static heuristic at the call site.
  const KernelDesc* lookup(KernelOp op, std::string_view arch,
                           const DispatchShape& shape) const;

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Probe counters (lookup is logically const; the counters are
  /// observability, mirroring SimOptions::per_sm_stats).
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

  /// Deterministic serialization: entries sorted by key, fixed field
  /// order, version tag first.
  std::string to_json() const;

  /// Parse; raises kBadDispatch on malformed JSON, a missing/mismatched
  /// version tag, or entries naming unknown kernels.
  static PolicyCache from_json(std::string_view text);

  void save(const std::string& path) const;
  static PolicyCache load(const std::string& path);

  /// Raw view for tests/tooling.
  const std::unordered_map<std::string, PolicyEntry>& entries() const {
    return entries_;
  }

 private:
  std::unordered_map<std::string, PolicyEntry> entries_;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
};

}  // namespace vsparse::kernels

// Tiling-parameter autotuner.
//
// §7.1.2: "The tiling sizes are tuned on a subset of benchmarks to find
// a configuration that brings the highest geometric mean speedup."
// This module does that mechanically: run each candidate configuration
// on the given problems, score by geometric-mean model cycles, return
// the winner.  Works for the octet SpMM (TileK, batching) and the FPU
// SpMM (TileN, TileK).
#pragma once

#include <vector>

#include "vsparse/formats/cvs.hpp"
#include "vsparse/formats/dense.hpp"
#include "vsparse/gpusim/config.hpp"
#include "vsparse/kernels/spmm/spmm_fpu.hpp"
#include "vsparse/kernels/spmm/spmm_octet.hpp"

namespace vsparse::kernels {

/// A tuning problem: one sparse operand + dense output width.
struct TuneProblem {
  Cvs a;
  int n = 256;
};

template <class Params>
struct TuneResult {
  Params best;
  double best_geomean_cycles = 0;
  /// All candidates with their scores (sorted best-first).
  std::vector<std::pair<Params, double>> ranking;
};

/// Sweep the octet SpMM's candidate TileK / batching settings.
TuneResult<SpmmOctetParams> autotune_spmm_octet(
    const std::vector<TuneProblem>& problems,
    const gpusim::DeviceConfig& hw = gpusim::DeviceConfig::volta_v100());

/// Sweep the FPU SpMM's TileN / TileK grid (the §5.1 trade-off).
TuneResult<SpmmFpuParams> autotune_spmm_fpu(
    const std::vector<TuneProblem>& problems,
    const gpusim::DeviceConfig& hw = gpusim::DeviceConfig::volta_v100());

}  // namespace vsparse::kernels

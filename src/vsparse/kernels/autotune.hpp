// Tiling-parameter autotuner.
//
// §7.1.2: "The tiling sizes are tuned on a subset of benchmarks to find
// a configuration that brings the highest geometric mean speedup."
// This module does that mechanically: run each candidate configuration
// on the given problems, score by geometric-mean model cycles, return
// the winner.  Works for the octet SpMM (TileK, batching) and the FPU
// SpMM (TileN, TileK).
//
// The same machinery extends to *dispatch* tuning: autotune_policy
// sweeps every dispatchable kernel in the registry over a grid of
// shape classes per architecture preset and returns the winners as a
// PolicyCache (kernels/policy.hpp) for kAuto to consult.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "vsparse/formats/cvs.hpp"
#include "vsparse/formats/dense.hpp"
#include "vsparse/gpusim/config.hpp"
#include "vsparse/kernels/policy.hpp"
#include "vsparse/kernels/spmm/spmm_fpu.hpp"
#include "vsparse/kernels/spmm/spmm_octet.hpp"

namespace vsparse::kernels {

/// A tuning problem: one sparse operand + dense output width.
struct TuneProblem {
  Cvs a;
  int n = 256;
};

template <class Params>
struct TuneResult {
  Params best;
  double best_geomean_cycles = 0;
  /// All candidates with their scores (sorted best-first).
  std::vector<std::pair<Params, double>> ranking;
};

/// Sweep the octet SpMM's candidate TileK / batching settings.
TuneResult<SpmmOctetParams> autotune_spmm_octet(
    const std::vector<TuneProblem>& problems,
    const gpusim::DeviceConfig& hw = gpusim::DeviceConfig::volta_v100());

/// Sweep the FPU SpMM's TileN / TileK grid (the §5.1 trade-off).
TuneResult<SpmmFpuParams> autotune_spmm_fpu(
    const std::vector<TuneProblem>& problems,
    const gpusim::DeviceConfig& hw = gpusim::DeviceConfig::volta_v100());

/// The dispatch-policy sweep grid: shape classes = the cross product of
/// the axes below, swept once per architecture preset.  Defaults are a
/// small representative slice of the paper's benchmark grid — enough
/// for the cache to disagree with the static heuristic where it should
/// (skinny N, V = 1, near-dense panels) while staying CI-fast.
struct PolicyTuneSpec {
  std::vector<std::string> arches{"volta-v100"};
  std::vector<int> ms{1024};
  std::vector<int> ks{1024};
  std::vector<int> ns{64, 256};
  std::vector<int> vs{1, 2, 8};
  std::vector<double> sparsities{0.70, 0.95};
  bool tune_spmm = true;
  bool tune_sddmm = true;
  std::uint64_t seed = 0x5eedu;
};

/// The pinned grid CI's policy-autotune job runs (tools/
/// validate_policy_cache.py checks the result).
PolicyTuneSpec default_policy_tune_spec();

/// Offline dispatch tuning: for every (arch, shape class) in the spec,
/// run each dispatchable, eligible registry kernel on a synthetic
/// problem of that class (fresh device per run), score by model
/// cycles on the preset's DeviceConfig, and record the winner.
PolicyCache autotune_policy(const PolicyTuneSpec& spec);

}  // namespace vsparse::kernels

#include "vsparse/kernels/dense/gemm_abft.hpp"

#include <cmath>
#include <utility>
#include <vector>

namespace vsparse::kernels {

namespace {

constexpr int kTileN = 64;

/// Host-side fp64 checksum state for one launch: per row-tile checksum
/// vectors s[k] = sum_r A[m0+r][k] plus accessors into the (clean,
/// host-visible) operand and output storage.  The simulator injects
/// faults on the *read path* only, so host reads see uncorrupted data
/// — the trusted checksum ALU of the ABFT scheme.
class GemmChecksum {
 public:
  GemmChecksum(const DenseDevice<half_t>& a, const DenseDevice<half_t>& b,
               const DenseDevice<half_t>& c, int tile_m)
      : a_(a), b_(b), c_(c), tile_m_(tile_m), k_(a.cols) {
    const int tiles_m = a.rows / tile_m;
    s_.assign(static_cast<std::size_t>(tiles_m) * static_cast<std::size_t>(k_),
              0.0);
    auto ah = a.buf.host();
    for (int tm = 0; tm < tiles_m; ++tm) {
      double* srow = s_.data() + static_cast<std::size_t>(tm) * k_;
      for (int r = 0; r < tile_m; ++r) {
        const half_t* arow =
            ah.data() + static_cast<std::size_t>(tm * tile_m + r) * a.ld;
        for (int kk = 0; kk < k_; ++kk) {
          srow[kk] += static_cast<double>(static_cast<float>(arow[kk]));
        }
      }
    }
  }

  /// Verify tile (tm, tn): actual column sums of C against s·B, with
  /// a magnitude-scaled tolerance.
  bool tile_ok(int tm, int tn, const AbftOptions& opt) const {
    auto bh = b_.buf.host();
    auto ch = c_.buf.host();
    const double* srow = s_.data() + static_cast<std::size_t>(tm) * k_;
    const int n0 = tn * kTileN;
    for (int j = 0; j < kTileN; ++j) {
      double expected = 0.0, refmag = 0.0;
      for (int kk = 0; kk < k_; ++kk) {
        const std::size_t bidx =
            b_.layout == Layout::kRowMajor
                ? static_cast<std::size_t>(kk) * b_.ld + (n0 + j)
                : static_cast<std::size_t>(n0 + j) * b_.ld + kk;
        const double bv = static_cast<double>(static_cast<float>(bh[bidx]));
        expected += srow[kk] * bv;
        refmag += std::abs(srow[kk]) * std::abs(bv);
      }
      double actual = 0.0;
      for (int r = 0; r < tile_m_; ++r) {
        actual += static_cast<double>(static_cast<float>(
            ch[static_cast<std::size_t>(tm * tile_m_ + r) * c_.ld + n0 + j]));
      }
      const double tol = opt.abs_tol * tile_m_ + opt.rel_tol * refmag;
      if (std::abs(actual - expected) > tol) return false;
    }
    return true;
  }

 private:
  const DenseDevice<half_t>& a_;
  const DenseDevice<half_t>& b_;
  const DenseDevice<half_t>& c_;
  int tile_m_;
  int k_;
  std::vector<double> s_;
};

}  // namespace

KernelRun hgemm_tcu_abft(gpusim::Device& dev, const DenseDevice<half_t>& a,
                         const DenseDevice<half_t>& b, DenseDevice<half_t>& c,
                         const HgemmParams& params, const AbftOptions& abft,
                         const gpusim::SimOptions& sim) {
  // split_k > 1 interleaves several CTAs into one output tile through
  // an fp32 workspace; tile-localized recompute then no longer matches
  // the per-tile accumulation order, so ABFT pins split_k = 1.
  HgemmParams p = params;
  p.split_k = 1;

  KernelRun run = hgemm_tcu(dev, a, b, c, p, sim);
  run.abft.enabled = true;

  const int m = a.rows, k = a.cols, n = b.cols;
  const int tile_m = (m % 128 == 0) ? 128 : 64;  // must mirror hgemm_tcu
  const int tiles_m = m / tile_m, tiles_n = n / kTileN;

  GemmChecksum checksum(a, b, c, tile_m);

  std::vector<std::pair<int, int>> bad;
  for (int tm = 0; tm < tiles_m; ++tm) {
    for (int tn = 0; tn < tiles_n; ++tn) {
      if (!checksum.tile_ok(tm, tn, abft)) bad.emplace_back(tm, tn);
    }
  }
  run.abft.corrupted_tiles = static_cast<int>(bad.size());

  for (int round = 0; !bad.empty() && round < abft.max_retries; ++round) {
    if (round > 0) run.abft.retries_used = round;
    std::vector<std::pair<int, int>> still;
    for (const auto& [tm, tn] : bad) {
      DenseDevice<half_t> a_sub = sub_view(dev, a, tm * tile_m, 0, tile_m, k);
      DenseDevice<half_t> b_sub = sub_view(dev, b, 0, tn * kTileN, k, kTileN);
      DenseDevice<half_t> c_sub =
          sub_view(dev, c, tm * tile_m, tn * kTileN, tile_m, kTileN);
      KernelRun rec = hgemm_tcu(dev, a_sub, b_sub, c_sub, p, sim);
      run.stats += rec.stats;
      ++run.abft.recompute_launches;
      if (!checksum.tile_ok(tm, tn, abft)) still.emplace_back(tm, tn);
    }
    bad = std::move(still);
  }

  run.abft.clean = bad.empty();
  return run;
}

}  // namespace vsparse::kernels

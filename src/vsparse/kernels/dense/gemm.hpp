// Dense GEMM baselines on the simulator — the stand-ins for
// cublasHgemm (TCU) and cublasSgemm (FPU) that every speedup in the
// paper is measured against.
//
// hgemm_tcu: classic smem-staged tensor-core GEMM.  CTA = 128 threads
// (4 warps) computing a 64x64 output tile; the K loop stages 64x16 A
// and 16x64 B tiles through shared memory with LDG.128 (128 B
// coalesced), then each warp computes a 16x64 stripe with
// wmma.m8n32k16.  This exhibits exactly the properties §3.1 profiles:
// high smem reuse (high smem-load-to-global-load ratio), HMMA-dominated
// math, small SASS footprint.
//
// sgemm_fpu: the same tiling computed with FFMA on fp32 operands
// (cublasSgemm stand-in for the single-precision panels of Fig. 4).
#pragma once

#include "vsparse/formats/dense.hpp"
#include "vsparse/kernels/api.hpp"

namespace vsparse::kernels {

struct HgemmParams {
  /// K-dimension split (cuBLAS-style): split_k CTAs cooperate on each
  /// output tile via an fp32 workspace + reduction pass, trading extra
  /// traffic for machine occupancy on small grids.  0 = auto heuristic
  /// (split until the grid covers ~2x the SM count).
  int split_k = 0;
};

/// C[MxN] (row-major, half) = A[MxK] (row-major, half) * B (half,
/// row- or column-major).  M, N must be multiples of 64; K of 16.
KernelRun hgemm_tcu(gpusim::Device& dev, const DenseDevice<half_t>& a,
                    const DenseDevice<half_t>& b, DenseDevice<half_t>& c,
                    const HgemmParams& params = {},
                    const gpusim::SimOptions& sim = {});

/// C[MxN] (row-major, float) = A * B in single precision on the FPU.
/// Same shape constraints.
KernelRun sgemm_fpu(gpusim::Device& dev, const DenseDevice<float>& a,
                    const DenseDevice<float>& b, DenseDevice<float>& c,
                    const gpusim::SimOptions& sim = {});

}  // namespace vsparse::kernels

#include "vsparse/kernels/dense/gemm.hpp"

#include <cstring>

#include "vsparse/common/math.hpp"
#include "vsparse/gpusim/tensorcore.hpp"

namespace vsparse::kernels {

namespace {

using gpusim::AddrLanes;
using gpusim::Cta;
using gpusim::Lanes;
using gpusim::Op;
using gpusim::Warp;

// CTA tile geometry shared by both dense kernels.  hgemm uses a
// 128-row CTA tile when M allows (as cuBLAS's HMMA kernels do — the
// extra rows double the B-tile reuse, which is where half precision's
// cache advantage in Fig. 5 comes from); sgemm and the fallback use 64.
constexpr int kTileM = 64;
constexpr int kTileN = 64;
constexpr int kTileK = 16;
constexpr int kWarps = 4;  // each warp owns a 16 x 64 stripe

// Shared-memory layout: A tile (tile_m x 16 halves) then B tile
// (16 x 64).  The B base uses the LARGEST tile_m so offsets are stable.
constexpr int kMaxTileM = 128;
constexpr std::uint32_t a_smem_off(int r, int k) {
  return static_cast<std::uint32_t>((r * kTileK + k) * 2);
}
constexpr std::uint32_t b_smem_off(int k, int n) {
  return static_cast<std::uint32_t>((kMaxTileM * kTileK + k * kTileN + n) * 2);
}
constexpr std::size_t kSmemBytes = (kMaxTileM * kTileK + kTileK * kTileN) * 2;

/// Stage 16 A-tile rows starting at tile-local row `tr0` through this
/// warp: one LDG.128 (8 halves/lane) + one STS.128.  Each row is a
/// 2-lane segment sweeping 32 contiguous bytes, in both global and
/// shared memory — a 16-segment affine span.
void stage_a_tile(Warp& w, const DenseDevice<half_t>& a, int m0, int tr0,
                  int k0) {
  std::uint64_t gbase[16];
  std::uint32_t sbase[16];
  Lanes<half8> frag;
  for (int seg = 0; seg < 16; ++seg) {
    gbase[seg] = a.addr(m0 + tr0 + seg, k0);
    sbase[seg] = a_smem_off(tr0 + seg, 0);
  }
  w.count(Op::kImad, 2);  // address arithmetic for the two index exprs
  w.ldg_span(gbase, 16, 2, 16, frag, 0xFFFFFFFFu);
  w.sts_span(sbase, 16, 2, 16, frag, 0xFFFFFFFFu);
}

/// Stage B rows [k0+4w, k0+4w+4) x [n0, n0+64).  Row-major B loads 8
/// consecutive n per lane; col-major B loads 8 consecutive k per lane
/// (both 128 B coalesced, as cuBLAS achieves for either transpose).
void stage_b_tile(Warp& w, const DenseDevice<half_t>& b, int k0, int n0) {
  Lanes<half8> frag;
  w.count(Op::kImad, 2);
  if (b.layout == Layout::kRowMajor) {
    // Four B rows per warp, each an 8-lane segment of 128 contiguous
    // bytes in global and shared memory.
    const int warp_k0 = 4 * w.warp_id();
    std::uint64_t gbase[4];
    std::uint32_t sbase[4];
    for (int seg = 0; seg < 4; ++seg) {
      gbase[seg] = b.addr(k0 + warp_k0 + seg, n0);
      sbase[seg] = b_smem_off(warp_k0 + seg, 0);
    }
    w.ldg_span(gbase, 4, 8, 16, frag, 0xFFFFFFFFu);
    w.sts_span(sbase, 4, 8, 16, frag, 0xFFFFFFFFu);
  } else {
    // Column-major: lane loads 8 consecutive k of one column — 16
    // column segments of 2 lanes, contiguous down the column.
    std::uint64_t gbase[16];
    for (int seg = 0; seg < 16; ++seg) {
      gbase[seg] = b.addr(k0, n0 + 16 * w.warp_id() + seg);
    }
    w.ldg_span(gbase, 16, 2, 16, frag, 0xFFFFFFFFu);
    // Transpose into smem element-wise: 8 STS.32 per half8 would be the
    // real pattern; we charge one STS per k-element group.
    for (int e = 0; e < 8; ++e) {
      Lanes<half_t> one;
      Lanes<std::uint32_t> eoff;
      for (int lane = 0; lane < 32; ++lane) {
        one[static_cast<std::size_t>(lane)] =
            frag[static_cast<std::size_t>(lane)][e];
        const int n = 16 * w.warp_id() + lane / 2;
        const int k = 8 * (lane % 2) + e;
        eoff[static_cast<std::size_t>(lane)] = b_smem_off(k, n);
      }
      w.sts(eoff, one);
    }
  }
}

/// Load an 8x16 A fragment (row-major from smem) for wmma, charging the
/// LDS traffic (8 B per lane): eight 4-lane row segments, stride 8 B.
void load_a_frag(Warp& w, Cta& cta, int row0, int k0_in_tile,
                 half_t (&a)[8][16]) {
  std::uint32_t soff[8];
  for (int seg = 0; seg < 8; ++seg) {
    soff[seg] = a_smem_off(row0 + seg, k0_in_tile);
  }
  Lanes<half4> frag;
  w.lds_span(soff, 8, 4, 8, frag, 0xFFFFFFFFu);
  for (int i = 0; i < 8; ++i) {
    // Each fragment row is 16 contiguous halves in smem.
    std::memcpy(a[i], cta.smem() + soff[i], 16 * sizeof(half_t));
  }
}

/// Load a 16x32 B fragment from smem (two LDS.128 per lane): eight
/// 4-lane row segments per pass, stride 16 B.
void load_b_frag(Warp& w, Cta& cta, int n0_in_tile, half_t (&b)[16][32]) {
  for (int half_k = 0; half_k < 2; ++half_k) {
    std::uint32_t soff[8];
    for (int seg = 0; seg < 8; ++seg) {
      soff[seg] = b_smem_off(8 * half_k + seg, n0_in_tile);
    }
    Lanes<half8> frag;
    w.lds_span(soff, 8, 4, 16, frag, 0xFFFFFFFFu);
  }
  for (int k = 0; k < 16; ++k) {
    std::memcpy(b[k], cta.smem() + b_smem_off(k, n0_in_tile),
                32 * sizeof(half_t));
  }
}

}  // namespace

KernelRun hgemm_tcu(gpusim::Device& dev, const DenseDevice<half_t>& a,
                    const DenseDevice<half_t>& b, DenseDevice<half_t>& c,
                    const HgemmParams& params,
                    const gpusim::SimOptions& sim) {
  const int m = a.rows, k = a.cols, n = b.cols;
  VSPARSE_CHECK(b.rows == k && c.rows == m && c.cols == n);
  VSPARSE_CHECK(a.layout == Layout::kRowMajor);
  VSPARSE_CHECK(c.layout == Layout::kRowMajor);
  VSPARSE_CHECK_MSG(m % kTileM == 0 && n % kTileN == 0 && k % kTileK == 0,
                    "hgemm_tcu requires M,N % 64 == 0 and K % 16 == 0; pad "
                    "the operands (got " << m << "x" << k << "x" << n << ")");

  const int tile_m = (m % kMaxTileM == 0) ? kMaxTileM : kTileM;
  const int rows_per_warp = tile_m / kWarps;  // 16 or 32
  const int grid_base = (m / tile_m) * (n / kTileN);
  // cuBLAS-style split-K: fill the machine when the tile grid is small.
  int split = params.split_k;
  if (split == 0) {
    split = 1;
    while (grid_base * split < 2 * dev.config().num_sms && split < 16 &&
           k % (2 * split * kTileK) == 0) {
      split *= 2;
    }
  }
  VSPARSE_CHECK(split >= 1 && k % (split * kTileK) == 0);
  const int k_per_split = k / split;
  gpusim::Buffer<float> workspace;
  if (split > 1) {
    workspace =
        dev.alloc<float>(static_cast<std::size_t>(m) * static_cast<std::size_t>(n));
  }

  gpusim::LaunchConfig cfg;
  cfg.grid = grid_base * split;
  cfg.cta_threads = kWarps * 32;
  cfg.smem_bytes = kSmemBytes;
  cfg.profile = {.name = "hgemm_tcu",
                 .regs_per_thread = 120,
                 .static_instrs = 420,
                 .icache_pressure = 1.0,
                 .ilp_factor = 0.6};  // cuBLAS-grade software pipelining

  gpusim::KernelStats stats = gpusim::launch(dev, cfg, [&](Cta& cta) {
    const int ctas_n = n / kTileN;
    const int tile_idx = cta.cta_id() % grid_base;  // tiles fastest
    const int s = cta.cta_id() / grid_base;
    const int m0 = (tile_idx / ctas_n) * tile_m;
    const int n0 = (tile_idx % ctas_n) * kTileN;
    const int k_begin = s * k_per_split;
    const int k_end = k_begin + k_per_split;

    // Per-warp fp32 accumulators for the (tile_m/4) x 64 stripe.
    static thread_local float acc[kWarps][kMaxTileM / kWarps][kTileN];
    for (auto& wa : acc) {
      for (auto& row : wa) {
        for (float& v : row) v = 0.0f;
      }
    }

    for (int k0 = k_begin; k0 < k_end; k0 += kTileK) {
      cta.for_each_warp([&](Warp& w) {
        for (int g = 0; g < rows_per_warp / 16; ++g) {
          stage_a_tile(w, a, m0, rows_per_warp * w.warp_id() + 16 * g, k0);
        }
        stage_b_tile(w, b, k0, n0);
      });
      cta.sync();
      cta.for_each_warp([&](Warp& w) {
        for (int rh = 0; rh < rows_per_warp / 8; ++rh) {  // 8-row halves
          half_t afrag[8][16];
          load_a_frag(w, cta, rows_per_warp * w.warp_id() + 8 * rh, 0, afrag);
          for (int ch = 0; ch < 2; ++ch) {         // two 32-col halves
            half_t bfrag[16][32];
            load_b_frag(w, cta, 32 * ch, bfrag);
            // Accumulate in place through the strided-row overload (no
            // cfrag staging copies; identical fold order).
            float* crow[8];
            for (int i = 0; i < 8; ++i) {
              crow[i] = &acc[w.warp_id()][8 * rh + i][32 * ch];
            }
            w.wmma_m8n32k16(afrag, bfrag, crow, 8);
          }
        }
      });
      cta.sync();
    }

    if (split == 1) {
      // Writeback: convert to half (one CVT issue slot per output
      // element per 32 lanes) and store with STG.128, 4 rows/request.
      cta.for_each_warp([&](Warp& w) {
        w.count(Op::kCvt,
                static_cast<std::uint64_t>(rows_per_warp) * kTileN / 32);
        for (int group = 0; group < rows_per_warp / 4; ++group) {
          // Four 8-lane row segments of 128 contiguous bytes; one
          // batched narrow per row fills the segment's lanes.
          std::uint64_t gbase[4];
          Lanes<half8> frag;
          for (int seg = 0; seg < 4; ++seg) {
            const int lr = 4 * group + seg;  // warp-local row
            gbase[seg] = c.addr(m0 + rows_per_warp * w.warp_id() + lr, n0);
            half_t row[kTileN];
            float_to_half_n(acc[w.warp_id()][lr], row, kTileN);
            std::memcpy(static_cast<void*>(&frag[static_cast<std::size_t>(
                            8 * seg)]),
                        row, kTileN * sizeof(half_t));
          }
          w.stg_span(gbase, 4, 8, 16, frag, 0xFFFFFFFFu);
        }
      });
    } else {
      // Split-K partial: RED.ADD the fp32 tile into the workspace
      // (store-class traffic; execution is serial so plain accumulate
      // is exact).
      cta.for_each_warp([&](Warp& w) {
        auto ws = workspace.host();
        for (int group = 0; group < rows_per_warp / 2; ++group) {
          // Two 16-lane row segments of 256 contiguous bytes each.
          std::uint64_t gbase[2];
          Lanes<std::array<float, 4>> frag;
          for (int seg = 0; seg < 2; ++seg) {
            const int lr = 2 * group + seg;
            const std::size_t idx =
                static_cast<std::size_t>(m0 + rows_per_warp * w.warp_id() +
                                         lr) *
                    n +
                static_cast<std::size_t>(n0);
            gbase[seg] = workspace.addr(idx);
            for (int col = 0; col < kTileN; ++col) {
              ws[idx + static_cast<std::size_t>(col)] +=
                  acc[w.warp_id()][lr][col];
            }
            std::memcpy(
                static_cast<void*>(&frag[static_cast<std::size_t>(16 * seg)]),
                &ws[idx], kTileN * sizeof(float));
          }
          w.stg_span(gbase, 2, 16, 16, frag, 0xFFFFFFFFu);
        }
      });
    }
  }, sim);

  if (split > 1) {
    // Reduction pass: convert the fp32 workspace to half C.
    gpusim::LaunchConfig rcfg;
    const std::int64_t total = static_cast<std::int64_t>(m) * n;
    rcfg.grid = static_cast<int>(ceil_div<std::int64_t>(total, 2048));
    rcfg.cta_threads = 32;
    rcfg.profile = {.name = "hgemm_splitk_reduce",
                    .regs_per_thread = 24,
                    .static_instrs = 96,
                    .icache_pressure = 1.0,
                    .ilp_factor = 0.8};
    gpusim::KernelStats rstats = gpusim::launch(dev, rcfg, [&](Cta& cta) {
      Warp w = cta.warp(0);
      auto ws = workspace.host();
      auto ch = c.buf.host();
      for (int pass = 0; pass < 16; ++pass) {
        const std::int64_t base =
            static_cast<std::int64_t>(cta.cta_id()) * 2048 + pass * 128;
        if (base >= total) break;
        // Lane `l` covers floats [base + 4l, base + 4l + 4): a single
        // affine span (prefix-masked at the ragged tail).
        Lanes<std::array<float, 4>> fin{};
        Lanes<half4> fout{};
        std::uint32_t mask = 0;
        for (int lane = 0; lane < 32; ++lane) {
          if (base + lane * 4 + 4 > total) break;
          mask |= 1u << lane;
        }
        w.ldg_span(workspace.addr(static_cast<std::size_t>(base)), 16, fin,
                   mask);
        w.count(Op::kCvt, 4);
        for (int lane = 0; lane < 32; ++lane) {
          if (!(mask & (1u << lane))) continue;
          const std::int64_t idx = base + lane * 4;
          for (int e = 0; e < 4; ++e) {
            const half_t h = half_t(ws[static_cast<std::size_t>(idx) +
                                       static_cast<std::size_t>(e)]);
            ch[static_cast<std::size_t>(idx) + static_cast<std::size_t>(e)] = h;
            fout[static_cast<std::size_t>(lane)][e] = h;
          }
        }
        w.stg_span(c.buf.addr(static_cast<std::size_t>(base)), 8, fout, mask);
      }
    }, sim);
    stats += rstats;
    dev.free(workspace);
  }
  return {stats, cfg};
}

KernelRun sgemm_fpu(gpusim::Device& dev, const DenseDevice<float>& a,
                    const DenseDevice<float>& b, DenseDevice<float>& c,
                    const gpusim::SimOptions& sim) {
  const int m = a.rows, k = a.cols, n = b.cols;
  VSPARSE_CHECK(b.rows == k && c.rows == m && c.cols == n);
  VSPARSE_CHECK(a.layout == Layout::kRowMajor);
  VSPARSE_CHECK(c.layout == Layout::kRowMajor);
  VSPARSE_CHECK_MSG(m % kTileM == 0 && n % kTileN == 0 && k % kTileK == 0,
                    "sgemm_fpu requires M,N % 64 == 0 and K % 16 == 0 (got "
                        << m << "x" << k << "x" << n << ")");

  gpusim::LaunchConfig cfg;
  cfg.grid = (m / kTileM) * (n / kTileN);
  cfg.cta_threads = kWarps * 32;
  cfg.smem_bytes = (kTileM * kTileK + kTileK * kTileN) * 4;
  cfg.profile = {.name = "sgemm_fpu",
                 .regs_per_thread = 128,
                 .static_instrs = 380,
                 .icache_pressure = 1.0,
                 .ilp_factor = 0.6};

  gpusim::KernelStats stats = gpusim::launch(dev, cfg, [&](Cta& cta) {
    const int ctas_n = n / kTileN;
    const int m0 = (cta.cta_id() / ctas_n) * kTileM;
    const int n0 = (cta.cta_id() % ctas_n) * kTileN;
    static thread_local float acc[kWarps][16][kTileN];
    for (auto& wa : acc) {
      for (auto& row : wa) {
        for (float& v : row) v = 0.0f;
      }
    }
    // smem layout: A tile then B tile (fp32).
    const auto a_off = [](int r, int kk) {
      return static_cast<std::uint32_t>((r * kTileK + kk) * 4);
    };
    const auto b_off = [](int kk, int nn) {
      return static_cast<std::uint32_t>(
          (kTileM * kTileK + kk * kTileN + nn) * 4);
    };

    for (int k0 = 0; k0 < k; k0 += kTileK) {
      cta.for_each_warp([&](Warp& w) {
        // A: warp stages its 16 x 16 rows (fp32: 4 floats per lane x 2).
        // Eight 4-lane row segments per pass, 64 contiguous bytes each.
        w.count(Op::kImad, 4);
        for (int pass = 0; pass < 2; ++pass) {
          std::uint64_t gbase[8];
          std::uint32_t sbase[8];
          Lanes<std::array<float, 4>> frag;
          for (int seg = 0; seg < 8; ++seg) {
            const int r = 16 * w.warp_id() + 8 * pass + seg;
            gbase[seg] = a.addr(m0 + r, k0);
            sbase[seg] = a_off(r, 0);
          }
          w.ldg_span(gbase, 8, 4, 16, frag, 0xFFFFFFFFu);
          w.sts_span(sbase, 8, 4, 16, frag, 0xFFFFFFFFu);
        }
        // B: warp stages rows [4w, 4w+4) — two 16-lane row segments of
        // 256 contiguous bytes per pass.
        for (int pass = 0; pass < 2; ++pass) {
          std::uint64_t gbase[2];
          std::uint32_t sbase[2];
          Lanes<std::array<float, 4>> frag;
          for (int seg = 0; seg < 2; ++seg) {
            const int kk = 4 * w.warp_id() + 2 * pass + seg;
            gbase[seg] = b.addr(k0 + kk, n0);
            sbase[seg] = b_off(kk, 0);
          }
          w.ldg_span(gbase, 2, 16, 16, frag, 0xFFFFFFFFu);
          w.sts_span(sbase, 2, 16, 16, frag, 0xFFFFFFFFu);
        }
      });
      cta.sync();
      cta.for_each_warp([&](Warp& w) {
        // Each lane computes a 2x16 sub-stripe: lane = 16 rows x 64 cols
        // over 32 lanes -> rows r = lane/2 x2? Simpler accounting: the
        // warp executes 16*64*16/32 FFMA issue slots per k-tile, with
        // operands read from smem in 4-float vector LDS.
        w.count(Op::kFfma, 16 * kTileN * kTileK / 32);
        // Charge representative smem reads: each lane re-reads A and B
        // fragments (register-blocked 2x4 micro-tile => per k: 2 A + 4 B
        // loads per lane, vectorized by 4).
        // Each rep reads 32 consecutive words starting at rep*128 (the
        // modulus in the historical form never wrapped), i.e. a pure
        // affine span of stride 4.
        Lanes<std::array<float, 4>> dummy;
        for (int rep = 0; rep < 6; ++rep) {
          w.lds_span(static_cast<std::uint32_t>(rep * 128), 4, dummy,
                     0xFFFFFFFFu);
        }
        // Functional math for the warp's stripe.
        for (int i = 0; i < 16; ++i) {
          const int r = 16 * w.warp_id() + i;
          for (int kk = 0; kk < kTileK; ++kk) {
            const float av = reinterpret_cast<const float*>(
                cta.smem() + a_off(r, kk))[0];
            for (int j = 0; j < kTileN; ++j) {
              const float bv = reinterpret_cast<const float*>(
                  cta.smem() + b_off(kk, j))[0];
              acc[w.warp_id()][i][j] += av * bv;
            }
          }
        }
      });
      cta.sync();
    }
    cta.for_each_warp([&](Warp& w) {
      for (int group = 0; group < 8; ++group) {  // fp32: 4 floats/lane
        // Two 16-lane row segments of 256 contiguous bytes each.
        std::uint64_t gbase[2];
        Lanes<std::array<float, 4>> frag;
        for (int seg = 0; seg < 2; ++seg) {
          const int lr = 2 * group + seg;
          gbase[seg] = c.addr(m0 + 16 * w.warp_id() + lr, n0);
          std::memcpy(
              static_cast<void*>(&frag[static_cast<std::size_t>(16 * seg)]),
              acc[w.warp_id()][lr], kTileN * sizeof(float));
        }
        w.stg_span(gbase, 2, 16, 16, frag, 0xFFFFFFFFu);
      }
    });
  }, sim);
  return {stats, cfg};
}

}  // namespace vsparse::kernels

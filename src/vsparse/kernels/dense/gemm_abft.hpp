// Checksum-augmented dense GEMM: hgemm_tcu with ABFT detect + recover.
// See kernels/abft.hpp for the checksum math and recovery contract.
#pragma once

#include "vsparse/kernels/abft.hpp"
#include "vsparse/kernels/dense/gemm.hpp"

namespace vsparse::kernels {

/// hgemm_tcu followed by per-CTA-tile checksum verification; corrupted
/// tiles are recomputed in place (bounded by `abft.max_retries`
/// rounds).  Forces split_k = 1 so each output tile is produced by
/// exactly one CTA in K order and a single-tile recompute is
/// bit-identical to a clean full run.  The outcome lands in
/// KernelRun::abft; `abft.clean == false` after the retries are
/// exhausted means the corruption persisted (a sticky fault).
KernelRun hgemm_tcu_abft(gpusim::Device& dev, const DenseDevice<half_t>& a,
                         const DenseDevice<half_t>& b, DenseDevice<half_t>& c,
                         const HgemmParams& params = {},
                         const AbftOptions& abft = {},
                         const gpusim::SimOptions& sim = {});

}  // namespace vsparse::kernels

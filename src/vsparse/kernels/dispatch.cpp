#include "vsparse/kernels/dispatch.hpp"

#include <algorithm>

#include "vsparse/gpusim/device.hpp"
#include "vsparse/kernels/policy.hpp"
#include "vsparse/serve/supervisor.hpp"

namespace vsparse::kernels {

namespace {

double cvs_density(const CvsDevice& m) {
  const double total = static_cast<double>(m.rows) * m.cols;
  if (total == 0) return 0.0;
  return static_cast<double>(m.col_idx.size()) * m.v / total;
}

}  // namespace

DispatchShape spmm_dispatch_shape(const CvsDevice& a,
                                  const DenseDevice<half_t>& b) {
  return DispatchShape{a.rows, a.cols, b.cols, a.v, cvs_density(a)};
}

DispatchShape sddmm_dispatch_shape(const DenseDevice<half_t>& a,
                                   const CvsDevice& mask) {
  return DispatchShape{mask.rows, a.cols, mask.cols, mask.v,
                       cvs_density(mask)};
}

KernelRun spmm(gpusim::Device& dev, const CvsDevice& a,
               const DenseDevice<half_t>& b, DenseDevice<half_t>& c,
               const SpmmOptions& options) {
  if (options.serve != nullptr) {
    return serve::supervised_spmm(dev, a, b, c, options);
  }
  SpmmAlgorithm algo = options.algorithm;
  if (options.abft.has_value()) {
    if (algo == SpmmAlgorithm::kAuto) {
      VSPARSE_CHECK_RAISE(a.v >= 2, ErrorCode::kBadDispatch,
                          "kernels.dispatch",
                          "ABFT spmm requires the octet kernel (V >= 2); "
                          "got V = " << a.v);
      algo = SpmmAlgorithm::kOctet;
    }
    VSPARSE_CHECK_RAISE(algo == SpmmAlgorithm::kOctet, ErrorCode::kBadDispatch,
                        "kernels.dispatch",
                        "ABFT is only implemented for the octet SpMM kernel");
    const AbftOptions abft = *options.abft;
    return kernel_for(algo).spmm_abft_launch(
        SpmmCall{dev, a, b, c, options.sim, &abft});
  }
  if (algo == SpmmAlgorithm::kAuto) {
    const DispatchShape shape = spmm_dispatch_shape(a, b);
    const KernelDesc* cached =
        options.policy != nullptr
            ? options.policy->lookup(KernelOp::kSpmm, dev.config().arch,
                                     shape)
            : nullptr;
    algo = cached != nullptr ? static_cast<SpmmAlgorithm>(cached->algorithm)
                             : resolve_auto_spmm(shape);
  }
  return kernel_for(algo).spmm_launch(SpmmCall{dev, a, b, c, options.sim});
}

KernelRun sddmm(gpusim::Device& dev, const DenseDevice<half_t>& a,
                const DenseDevice<half_t>& b, const CvsDevice& mask,
                gpusim::Buffer<half_t>& out_values,
                const SddmmOptions& options) {
  VSPARSE_CHECK_RAISE(!options.abft.has_value(), ErrorCode::kBadDispatch,
                      "kernels.dispatch",
                      "no SDDMM kernel has an ABFT variant yet; "
                      "SddmmOptions::abft must stay unset");
  if (options.serve != nullptr) {
    return serve::supervised_sddmm(dev, a, b, mask, out_values, options);
  }
  SddmmAlgorithm algo = options.algorithm;
  if (algo == SddmmAlgorithm::kAuto) {
    const DispatchShape shape = sddmm_dispatch_shape(a, mask);
    const KernelDesc* cached =
        options.policy != nullptr
            ? options.policy->lookup(KernelOp::kSddmm, dev.config().arch,
                                     shape)
            : nullptr;
    algo = cached != nullptr ? static_cast<SddmmAlgorithm>(cached->algorithm)
                             : resolve_auto_sddmm(shape);
  }
  return kernel_for(algo).sddmm_launch(
      SddmmCall{dev, a, b, mask, out_values, options.sim});
}

HostRun<DenseMatrix<half_t>> spmm_host(const Cvs& a,
                                       const DenseMatrix<half_t>& b,
                                       const SpmmOptions& options) {
  gpusim::DeviceConfig cfg = gpusim::DeviceConfig::volta_v100();
  const std::size_t need =
      a.values.size() * 2 + a.col_idx.size() * 8 +
      (static_cast<std::size_t>(b.rows()) * b.cols() +
       static_cast<std::size_t>(a.rows) * b.cols()) *
          2 +
      (16u << 20);
  cfg.dram_capacity = std::max(cfg.dram_capacity, need * 2);
  gpusim::Device dev(cfg);
  CvsDevice da = to_device(dev, a);
  DenseDevice<half_t> db = to_device(dev, b);
  DenseMatrix<half_t> c(a.rows, b.cols());
  DenseDevice<half_t> dc = to_device(dev, c);
  KernelRun run = spmm(dev, da, db, dc, options);
  return {from_device(dc), std::move(run)};
}

HostRun<Cvs> sddmm_host(const DenseMatrix<half_t>& a,
                        const DenseMatrix<half_t>& b, const Cvs& mask,
                        const SddmmOptions& options) {
  gpusim::Device dev;
  DenseDevice<half_t> da = to_device(dev, a);
  DenseDevice<half_t> db = to_device(dev, b);
  CvsDevice dmask = to_device(dev, mask);
  auto out = dev.alloc<half_t>(mask.values.size());
  KernelRun run = sddmm(dev, da, db, dmask, out, options);
  Cvs result = mask;
  auto host = out.host();
  std::copy(host.begin(), host.end(), result.values.begin());
  return {std::move(result), std::move(run)};
}

}  // namespace vsparse::kernels

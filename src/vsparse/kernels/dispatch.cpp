#include "vsparse/kernels/dispatch.hpp"

#include "vsparse/serve/supervisor.hpp"
#include "vsparse/kernels/sddmm/sddmm_csr_fine.hpp"
#include "vsparse/kernels/sddmm/sddmm_fpu.hpp"
#include "vsparse/kernels/sddmm/sddmm_octet.hpp"
#include "vsparse/kernels/sddmm/sddmm_wmma.hpp"
#include "vsparse/kernels/spmm/spmm_csr_fine.hpp"
#include "vsparse/kernels/spmm/spmm_fpu.hpp"
#include "vsparse/kernels/spmm/spmm_octet.hpp"
#include "vsparse/kernels/spmm/spmm_octet_abft.hpp"
#include "vsparse/kernels/spmm/spmm_wmma.hpp"

namespace vsparse::kernels {

KernelRun spmm(gpusim::Device& dev, const CvsDevice& a,
               const DenseDevice<half_t>& b, DenseDevice<half_t>& c,
               const SpmmOptions& options) {
  if (options.serve != nullptr) {
    return serve::supervised_spmm(dev, a, b, c, options);
  }
  SpmmAlgorithm algo = options.algorithm;
  if (options.abft.has_value()) {
    if (algo == SpmmAlgorithm::kAuto) {
      VSPARSE_CHECK_RAISE(a.v >= 2, ErrorCode::kBadDispatch,
                          "kernels.dispatch",
                          "ABFT spmm requires the octet kernel (V >= 2); "
                          "got V = " << a.v);
      algo = SpmmAlgorithm::kOctet;
    }
    VSPARSE_CHECK_RAISE(algo == SpmmAlgorithm::kOctet, ErrorCode::kBadDispatch,
                        "kernels.dispatch",
                        "ABFT is only implemented for the octet SpMM kernel");
    return spmm_octet_abft(dev, a, b, c, {}, *options.abft, options.sim);
  }
  if (algo == SpmmAlgorithm::kAuto) {
    algo = a.v >= 2 ? SpmmAlgorithm::kOctet : SpmmAlgorithm::kFpuSubwarp;
  }
  switch (algo) {
    case SpmmAlgorithm::kOctet:
      return spmm_octet(dev, a, b, c, {}, options.sim);
    case SpmmAlgorithm::kWmmaWarp:
      return spmm_wmma_warp(dev, a, b, c, options.sim);
    case SpmmAlgorithm::kFpuSubwarp:
      return spmm_fpu_subwarp(dev, a, b, c, {}, options.sim);
    case SpmmAlgorithm::kCsrFine:
      return spmm_csr_fine(dev, a, b, c, options.sim);
    case SpmmAlgorithm::kAuto:
      break;
  }
  VSPARSE_RAISE(ErrorCode::kBadDispatch, "kernels.dispatch",
                "unreachable spmm algorithm");
}

KernelRun sddmm(gpusim::Device& dev, const DenseDevice<half_t>& a,
                const DenseDevice<half_t>& b, const CvsDevice& mask,
                gpusim::Buffer<half_t>& out_values,
                const SddmmOptions& options) {
  VSPARSE_CHECK_RAISE(!options.abft.has_value(), ErrorCode::kBadDispatch,
                      "kernels.dispatch",
                      "no SDDMM kernel has an ABFT variant yet; "
                      "SddmmOptions::abft must stay unset");
  if (options.serve != nullptr) {
    return serve::supervised_sddmm(dev, a, b, mask, out_values, options);
  }
  SddmmAlgorithm algo = options.algorithm;
  if (algo == SddmmAlgorithm::kAuto) {
    algo = mask.v >= 2 ? SddmmAlgorithm::kOctet : SddmmAlgorithm::kFpuSubwarp;
  }
  switch (algo) {
    case SddmmAlgorithm::kOctet:
      return sddmm_octet(dev, a, b, mask, out_values, {}, options.sim);
    case SddmmAlgorithm::kWmmaWarp:
      return sddmm_wmma_warp(dev, a, b, mask, out_values, options.sim);
    case SddmmAlgorithm::kFpuSubwarp:
      return sddmm_fpu_subwarp(dev, a, b, mask, out_values, {}, options.sim);
    case SddmmAlgorithm::kCsrFine:
      return sddmm_csr_fine(dev, a, b, mask, out_values, options.sim);
    case SddmmAlgorithm::kAuto:
      break;
  }
  VSPARSE_RAISE(ErrorCode::kBadDispatch, "kernels.dispatch",
                "unreachable sddmm algorithm");
}

HostRun<DenseMatrix<half_t>> spmm_host(const Cvs& a,
                                       const DenseMatrix<half_t>& b,
                                       const SpmmOptions& options) {
  gpusim::DeviceConfig cfg = gpusim::DeviceConfig::volta_v100();
  const std::size_t need =
      a.values.size() * 2 + a.col_idx.size() * 8 +
      (static_cast<std::size_t>(b.rows()) * b.cols() +
       static_cast<std::size_t>(a.rows) * b.cols()) *
          2 +
      (16u << 20);
  cfg.dram_capacity = std::max(cfg.dram_capacity, need * 2);
  gpusim::Device dev(cfg);
  CvsDevice da = to_device(dev, a);
  DenseDevice<half_t> db = to_device(dev, b);
  DenseMatrix<half_t> c(a.rows, b.cols());
  DenseDevice<half_t> dc = to_device(dev, c);
  KernelRun run = spmm(dev, da, db, dc, options);
  return {from_device(dc), std::move(run)};
}

HostRun<Cvs> sddmm_host(const DenseMatrix<half_t>& a,
                        const DenseMatrix<half_t>& b, const Cvs& mask,
                        const SddmmOptions& options) {
  gpusim::Device dev;
  DenseDevice<half_t> da = to_device(dev, a);
  DenseDevice<half_t> db = to_device(dev, b);
  CvsDevice dmask = to_device(dev, mask);
  auto out = dev.alloc<half_t>(mask.values.size());
  KernelRun run = sddmm(dev, da, db, dmask, out, options);
  Cvs result = mask;
  auto host = out.host();
  std::copy(host.begin(), host.end(), result.values.begin());
  return {std::move(result), std::move(run)};
}

// ---- deprecated wrappers (forward to the descriptor entry points) ----

KernelRun spmm(gpusim::Device& dev, const CvsDevice& a,
               const DenseDevice<half_t>& b, DenseDevice<half_t>& c,
               SpmmAlgorithm algo, const gpusim::SimOptions& sim) {
  return spmm(dev, a, b, c, SpmmOptions{.algorithm = algo, .sim = sim});
}

KernelRun spmm(gpusim::Device& dev, const CvsDevice& a,
               const DenseDevice<half_t>& b, DenseDevice<half_t>& c,
               const AbftOptions& abft, SpmmAlgorithm algo,
               const gpusim::SimOptions& sim) {
  return spmm(dev, a, b, c,
              SpmmOptions{.algorithm = algo, .abft = abft, .sim = sim});
}

KernelRun sddmm(gpusim::Device& dev, const DenseDevice<half_t>& a,
                const DenseDevice<half_t>& b, const CvsDevice& mask,
                gpusim::Buffer<half_t>& out_values, SddmmAlgorithm algo,
                const gpusim::SimOptions& sim) {
  return sddmm(dev, a, b, mask, out_values,
               SddmmOptions{.algorithm = algo, .sim = sim});
}

DenseMatrix<half_t> spmm_host(const Cvs& a, const DenseMatrix<half_t>& b,
                              SpmmAlgorithm algo,
                              const gpusim::SimOptions& sim) {
  return spmm_host(a, b, SpmmOptions{.algorithm = algo, .sim = sim}).result;
}

Cvs sddmm_host(const DenseMatrix<half_t>& a, const DenseMatrix<half_t>& b,
               const Cvs& mask, SddmmAlgorithm algo,
               const gpusim::SimOptions& sim) {
  return sddmm_host(a, b, mask, SddmmOptions{.algorithm = algo, .sim = sim})
      .result;
}

}  // namespace vsparse::kernels

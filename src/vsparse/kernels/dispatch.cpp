#include "vsparse/kernels/dispatch.hpp"

#include <algorithm>

#include "vsparse/gpusim/device.hpp"
#include "vsparse/gpusim/verify/certs.hpp"
#include "vsparse/kernels/policy.hpp"
#include "vsparse/serve/supervisor.hpp"

namespace vsparse::kernels {

namespace {

double cvs_density(const CvsDevice& m) {
  const double total = static_cast<double>(m.rows) * m.cols;
  if (total == 0) return 0.0;
  return static_cast<double>(m.col_idx.size()) * m.v / total;
}

verify::ShapeCorner dispatch_corner(const DispatchShape& s) {
  return verify::ShapeCorner{s.m, s.k, s.n, s.v, s.density};
}

/// The refuting certificate for (kernel, arch) covering `shape`, or
/// nullptr when the store is absent, the shape is uncovered, or the
/// covering verdict is proved/unknown.
const verify::CertEntry* refuting_cert(const verify::CertStore* certs,
                                       const char* kernel,
                                       std::string_view arch,
                                       const DispatchShape& shape) {
  if (certs == nullptr) return nullptr;
  const verify::CertEntry* entry =
      certs->lookup(kernel, arch, dispatch_corner(shape));
  if (entry == nullptr || entry->verdict != verify::VerdictKind::kRefuted) {
    return nullptr;
  }
  return entry;
}

[[noreturn]] void raise_refuted(const verify::CertEntry& cert) {
  VSPARSE_RAISE(ErrorCode::kBadDispatch, "kernels.dispatch",
                "kernel " << cert.kernel
                          << " is statically refuted over shape class "
                          << cert.cls.name << " on " << cert.arch << " at "
                          << cert.site << " (counterexample "
                          << cert.counterexample.str() << ")");
}

/// kAuto divert: the first eligible CVS-operand kernel, in ladder-rank
/// order, without a refuting certificate.  Raises when every candidate
/// is refuted — a launch the verifier proved unsafe must never run.
template <class Algo>
Algo divert_auto(KernelOp op, Algo refuted_algo,
                 const verify::CertEntry& refuted,
                 const verify::CertStore* certs, std::string_view arch,
                 const DispatchShape& shape) {
  for (const LadderEntry& rung : fallback_ladder(op, shape)) {
    const KernelDesc& desc = *rung.desc;
    // Plain dispatch has CVS operands only and no ABFT context; the
    // re-encode / ABFT rungs belong to the serving ladder.
    if (!desc.dispatchable() || desc.format != OperandFormat::kCvs ||
        rung.abft) {
      continue;
    }
    if (static_cast<Algo>(desc.algorithm) == refuted_algo) continue;
    if (!desc.supports_v(shape.v)) continue;
    if (refuting_cert(certs, desc.name, arch, shape) != nullptr) continue;
    return static_cast<Algo>(desc.algorithm);
  }
  raise_refuted(refuted);
}

}  // namespace

DispatchShape spmm_dispatch_shape(const CvsDevice& a,
                                  const DenseDevice<half_t>& b) {
  return DispatchShape{a.rows, a.cols, b.cols, a.v, cvs_density(a)};
}

DispatchShape sddmm_dispatch_shape(const DenseDevice<half_t>& a,
                                   const CvsDevice& mask) {
  return DispatchShape{mask.rows, a.cols, mask.cols, mask.v,
                       cvs_density(mask)};
}

KernelRun spmm(gpusim::Device& dev, const CvsDevice& a,
               const DenseDevice<half_t>& b, DenseDevice<half_t>& c,
               const SpmmOptions& options) {
  if (options.serve != nullptr) {
    return serve::supervised_spmm(dev, a, b, c, options);
  }
  SpmmAlgorithm algo = options.algorithm;
  if (options.abft.has_value()) {
    if (algo == SpmmAlgorithm::kAuto) {
      VSPARSE_CHECK_RAISE(a.v >= 2, ErrorCode::kBadDispatch,
                          "kernels.dispatch",
                          "ABFT spmm requires the octet kernel (V >= 2); "
                          "got V = " << a.v);
      algo = SpmmAlgorithm::kOctet;
    }
    VSPARSE_CHECK_RAISE(algo == SpmmAlgorithm::kOctet, ErrorCode::kBadDispatch,
                        "kernels.dispatch",
                        "ABFT is only implemented for the octet SpMM kernel");
    // The ABFT wrapper replays the same octet launch geometry, so the
    // plain kernel's certificate gates it too.
    if (const verify::CertEntry* cert =
            refuting_cert(options.certs, kernel_for(algo).name,
                          dev.config().arch, spmm_dispatch_shape(a, b))) {
      raise_refuted(*cert);
    }
    const AbftOptions abft = *options.abft;
    return kernel_for(algo).spmm_abft_launch(
        SpmmCall{dev, a, b, c, options.sim, &abft});
  }
  const bool was_auto = algo == SpmmAlgorithm::kAuto;
  const DispatchShape shape = spmm_dispatch_shape(a, b);
  if (was_auto) {
    const KernelDesc* cached =
        options.policy != nullptr
            ? options.policy->lookup(KernelOp::kSpmm, dev.config().arch,
                                     shape)
            : nullptr;
    algo = cached != nullptr ? static_cast<SpmmAlgorithm>(cached->algorithm)
                             : resolve_auto_spmm(shape);
  }
  if (const verify::CertEntry* cert = refuting_cert(
          options.certs, kernel_for(algo).name, dev.config().arch, shape)) {
    if (!was_auto) raise_refuted(*cert);
    algo = divert_auto(KernelOp::kSpmm, algo, *cert, options.certs,
                       dev.config().arch, shape);
  }
  return kernel_for(algo).spmm_launch(SpmmCall{dev, a, b, c, options.sim});
}

KernelRun sddmm(gpusim::Device& dev, const DenseDevice<half_t>& a,
                const DenseDevice<half_t>& b, const CvsDevice& mask,
                gpusim::Buffer<half_t>& out_values,
                const SddmmOptions& options) {
  VSPARSE_CHECK_RAISE(!options.abft.has_value(), ErrorCode::kBadDispatch,
                      "kernels.dispatch",
                      "no SDDMM kernel has an ABFT variant yet; "
                      "SddmmOptions::abft must stay unset");
  if (options.serve != nullptr) {
    return serve::supervised_sddmm(dev, a, b, mask, out_values, options);
  }
  SddmmAlgorithm algo = options.algorithm;
  const bool was_auto = algo == SddmmAlgorithm::kAuto;
  const DispatchShape shape = sddmm_dispatch_shape(a, mask);
  if (was_auto) {
    const KernelDesc* cached =
        options.policy != nullptr
            ? options.policy->lookup(KernelOp::kSddmm, dev.config().arch,
                                     shape)
            : nullptr;
    algo = cached != nullptr ? static_cast<SddmmAlgorithm>(cached->algorithm)
                             : resolve_auto_sddmm(shape);
  }
  if (const verify::CertEntry* cert = refuting_cert(
          options.certs, kernel_for(algo).name, dev.config().arch, shape)) {
    if (!was_auto) raise_refuted(*cert);
    algo = divert_auto(KernelOp::kSddmm, algo, *cert, options.certs,
                       dev.config().arch, shape);
  }
  return kernel_for(algo).sddmm_launch(
      SddmmCall{dev, a, b, mask, out_values, options.sim});
}

HostRun<DenseMatrix<half_t>> spmm_host(const Cvs& a,
                                       const DenseMatrix<half_t>& b,
                                       const SpmmOptions& options) {
  gpusim::DeviceConfig cfg = gpusim::DeviceConfig::volta_v100();
  const std::size_t need =
      a.values.size() * 2 + a.col_idx.size() * 8 +
      (static_cast<std::size_t>(b.rows()) * b.cols() +
       static_cast<std::size_t>(a.rows) * b.cols()) *
          2 +
      (16u << 20);
  cfg.dram_capacity = std::max(cfg.dram_capacity, need * 2);
  gpusim::Device dev(cfg);
  CvsDevice da = to_device(dev, a);
  DenseDevice<half_t> db = to_device(dev, b);
  DenseMatrix<half_t> c(a.rows, b.cols());
  DenseDevice<half_t> dc = to_device(dev, c);
  KernelRun run = spmm(dev, da, db, dc, options);
  return {from_device(dc), std::move(run)};
}

HostRun<Cvs> sddmm_host(const DenseMatrix<half_t>& a,
                        const DenseMatrix<half_t>& b, const Cvs& mask,
                        const SddmmOptions& options) {
  gpusim::Device dev;
  DenseDevice<half_t> da = to_device(dev, a);
  DenseDevice<half_t> db = to_device(dev, b);
  CvsDevice dmask = to_device(dev, mask);
  auto out = dev.alloc<half_t>(mask.values.size());
  KernelRun run = sddmm(dev, da, db, dmask, out, options);
  Cvs result = mask;
  auto host = out.host();
  std::copy(host.begin(), host.end(), result.values.begin());
  return {std::move(result), std::move(run)};
}

}  // namespace vsparse::kernels

#include "vsparse/kernels/policy.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <sstream>
#include <vector>

#include "vsparse/serve/error.hpp"

namespace vsparse::kernels {

int extent_bucket(int extent) {
  if (extent <= 1) return 0;
  int bucket = 0;
  int reach = 1;
  while (reach < extent) {
    reach *= 2;
    ++bucket;
  }
  return bucket;  // ceil(log2(extent))
}

int density_bucket(double density) {
  // The paper's sparsity grid (Fig. 17/18 sweeps); one extra bucket
  // catches the >99% tail.
  static constexpr double kGrid[] = {0.50, 0.70, 0.80, 0.90,
                                     0.95, 0.98, 0.99};
  const double sparsity = 1.0 - density;
  int bucket = 0;
  for (double edge : kGrid) {
    if (sparsity <= edge) return bucket;
    ++bucket;
  }
  return bucket;  // sparser than the whole grid
}

std::string shape_class_key(KernelOp op, std::string_view arch,
                            const DispatchShape& shape) {
  std::string key;
  key.reserve(48);
  key += kernel_op_name(op);
  key += '|';
  key += arch;
  key += '|';
  key += 'm';
  key += std::to_string(extent_bucket(shape.m));
  key += 'k';
  key += std::to_string(extent_bucket(shape.k));
  key += 'n';
  key += std::to_string(extent_bucket(shape.n));
  key += 'd';
  key += std::to_string(density_bucket(shape.density));
  key += 'v';
  key += std::to_string(shape.v);
  return key;
}

void PolicyCache::insert(KernelOp op, std::string_view arch,
                         const DispatchShape& shape, std::string_view kernel,
                         double cycles) {
  entries_[shape_class_key(op, arch, shape)] =
      PolicyEntry{std::string(kernel), cycles};
}

const KernelDesc* PolicyCache::lookup(KernelOp op, std::string_view arch,
                                      const DispatchShape& shape) const {
  const auto it = entries_.find(shape_class_key(op, arch, shape));
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  const KernelDesc* desc = find_kernel(it->second.kernel);
  if (desc == nullptr || desc->op != op || !desc->dispatchable() ||
      !desc->supports_v(shape.v)) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return desc;
}

// ---- JSON serialization -------------------------------------------------

namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (char ch : s) {
    if (ch == '"' || ch == '\\') {
      out += '\\';
      out += ch;
    } else {
      out += ch;
    }
  }
}

std::string format_cycles(double cycles) {
  std::ostringstream os;
  os.precision(6);
  os << std::fixed << cycles;
  return os.str();
}

/// Minimal recursive-descent JSON reader — just enough for the policy
/// schema (objects, arrays, strings, numbers).  Kept here rather than
/// adding a dependency; tools/validate_policy_cache.py is the richer
/// offline checker.
class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : text_(text) {}

  void expect(char ch) {
    skip_ws();
    check(pos_ < text_.size() && text_[pos_] == ch,
          std::string("expected '") + ch + "'");
    ++pos_;
  }

  bool consume(char ch) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ch) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char ch = text_[pos_++];
      if (ch == '\\') {
        check(pos_ < text_.size(), "truncated escape");
        ch = text_[pos_++];
        check(ch == '"' || ch == '\\' || ch == '/', "unsupported escape");
      }
      out += ch;
    }
    check(pos_ < text_.size(), "unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  double number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    check(pos_ > start, "expected number");
    // std::stod throws unclassified std::out_of_range on exponents like
    // 1e99999; re-raise everything as the structured taxonomy error and
    // reject non-finite results — corrupted artifacts must never leak
    // NaN/inf cycles into dispatch decisions.
    double value = 0.0;
    try {
      value = std::stod(std::string(text_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      check(false, "unparseable number");
    }
    check(std::isfinite(value), "non-finite number");
    return value;
  }

  bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

  void check(bool ok, const std::string& what) {
    VSPARSE_CHECK_RAISE(ok, ErrorCode::kBadDispatch, "kernels.policy",
                        "malformed policy cache at offset "
                            << pos_ << ": " << what);
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string PolicyCache::to_json() const {
  std::vector<std::pair<std::string, const PolicyEntry*>> sorted;
  sorted.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) sorted.emplace_back(key, &entry);
  std::sort(sorted.begin(), sorted.end());

  std::string out;
  out += "{\n  \"version\": \"";
  out += kPolicyCacheVersion;
  out += "\",\n  \"entries\": [";
  bool first = true;
  for (const auto& [key, entry] : sorted) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"key\": \"";
    append_escaped(out, key);
    out += "\", \"kernel\": \"";
    append_escaped(out, entry->kernel);
    out += "\", \"cycles\": ";
    out += format_cycles(entry->cycles);
    out += "}";
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

PolicyCache PolicyCache::from_json(std::string_view text) {
  // External-artifact guardrails: a policy cache is a small offline
  // artifact, so anything oversized/overlong is corrupt or hostile,
  // not a bigger workload.  Reject before parsing or inserting —
  // the reserve/insert amplification stays bounded by these caps.
  VSPARSE_CHECK_RAISE(text.size() <= kMaxPolicyCacheBytes,
                      ErrorCode::kBadDispatch, "kernels.policy",
                      "policy cache blob is " << text.size()
                          << " B, cap " << kMaxPolicyCacheBytes);
  PolicyCache cache;
  JsonReader in(text);
  in.expect('{');
  bool saw_version = false;
  if (in.consume('}')) {
    VSPARSE_RAISE(ErrorCode::kBadDispatch, "kernels.policy",
                  "policy cache has no version tag");
  }
  do {
    const std::string field = in.string();
    in.expect(':');
    if (field == "version") {
      const std::string version = in.string();
      VSPARSE_CHECK_RAISE(version == kPolicyCacheVersion,
                          ErrorCode::kBadDispatch, "kernels.policy",
                          "policy cache version \""
                              << version << "\" does not match \""
                              << kPolicyCacheVersion
                              << "\"; re-run the autotuner");
      saw_version = true;
    } else if (field == "entries") {
      in.expect('[');
      if (!in.consume(']')) {
        do {
          in.expect('{');
          std::string key, kernel;
          double cycles = 0.0;
          do {
            const std::string name = in.string();
            in.expect(':');
            if (name == "key") {
              key = in.string();
            } else if (name == "kernel") {
              kernel = in.string();
            } else if (name == "cycles") {
              cycles = in.number();
            } else {
              in.check(false, "unknown entry field \"" + name + "\"");
            }
          } while (in.consume(','));
          in.expect('}');
          in.check(!key.empty() && !kernel.empty(),
                   "entry missing key/kernel");
          in.check(key.size() <= kMaxPolicyStringLength &&
                       kernel.size() <= kMaxPolicyStringLength,
                   "entry key/kernel string too long");
          in.check(cycles >= 0.0, "negative cycles");
          VSPARSE_CHECK_RAISE(find_kernel(kernel) != nullptr,
                              ErrorCode::kBadDispatch, "kernels.policy",
                              "policy cache entry names unknown kernel \""
                                  << kernel << "\"");
          in.check(cache.entries_.size() < kMaxPolicyCacheEntries,
                   "too many entries");
          cache.entries_[key] = PolicyEntry{kernel, cycles};
        } while (in.consume(','));
        in.expect(']');
      }
    } else {
      in.check(false, "unknown field \"" + field + "\"");
    }
  } while (in.consume(','));
  in.expect('}');
  VSPARSE_CHECK_RAISE(saw_version, ErrorCode::kBadDispatch, "kernels.policy",
                      "policy cache has no version tag");
  VSPARSE_CHECK_RAISE(in.at_end(), ErrorCode::kBadDispatch, "kernels.policy",
                      "trailing content after policy cache object");
  return cache;
}

void PolicyCache::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  VSPARSE_CHECK_RAISE(out.good(), ErrorCode::kBadDispatch, "kernels.policy",
                      "cannot open policy cache for writing: " << path);
  const std::string text = to_json();
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  VSPARSE_CHECK_RAISE(out.good(), ErrorCode::kBadDispatch, "kernels.policy",
                      "short write persisting policy cache: " << path);
}

PolicyCache PolicyCache::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  VSPARSE_CHECK_RAISE(in.good(), ErrorCode::kBadDispatch, "kernels.policy",
                      "cannot open policy cache: " << path);
  // Check the on-disk size before slurping the file, so a bogus path
  // (device file, multi-GB artifact) cannot balloon the process.
  in.seekg(0, std::ios::end);
  const auto bytes = in.tellg();
  VSPARSE_CHECK_RAISE(
      bytes >= 0 && static_cast<std::uint64_t>(bytes) <= kMaxPolicyCacheBytes,
      ErrorCode::kBadDispatch, "kernels.policy",
      "policy cache file is " << bytes << " B, cap " << kMaxPolicyCacheBytes
                              << ": " << path);
  in.seekg(0, std::ios::beg);
  std::ostringstream text;
  text << in.rdbuf();
  return from_json(text.str());
}

}  // namespace vsparse::kernels

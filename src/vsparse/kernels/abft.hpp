// Algorithm-based fault tolerance (ABFT) options and outcome report.
//
// The checksum-augmented kernel variants (hgemm_tcu_abft,
// spmm_octet_abft) maintain a checksum row per CTA output tile: the
// fp64 encoding s_k = sum_r A[r][k] of each tile's A rows is formed on
// the host (trusted ALU), and after the launch each tile's actual
// column sums sum_r C[r][j] are compared against the expectation
// sum_k s_k * B[k][j].  A mismatched column localizes the corruption
// to one CTA tile, which is recomputed in place by re-running the same
// kernel on sub-views of the operands — the per-element accumulation
// order is K-ordered and independent of the grid partition, so a clean
// recompute is bit-identical to a clean full run.  Detection therefore
// costs no extra device work; recovery costs one single-tile launch
// per corrupted tile per round, with at most `max_retries` rounds
// (a transient upset can strike the recompute too).
#pragma once

namespace vsparse::kernels {

/// Knobs for the checksum verify/recover loop.
struct AbftOptions {
  /// Per-column tolerance: |actual - expected| must not exceed
  /// abs_tol * tile_rows + rel_tol * sum_k |s_k|*|B[k][j]| — the second
  /// term absorbs fp16 round-off of legitimately large tiles.
  double rel_tol = 1e-3;
  double abs_tol = 1e-2;
  /// Verification rounds after the initial one; each round recomputes
  /// every still-corrupted tile once.
  int max_retries = 3;
};

/// What the ABFT layer observed and did for one kernel run.
struct AbftReport {
  bool enabled = false;    ///< an ABFT variant ran (else all fields zero)
  bool clean = false;      ///< final verification passed on every tile
  int corrupted_tiles = 0;    ///< tiles failing the first verification
  int recompute_launches = 0; ///< single-tile recovery launches issued
  int retries_used = 0;       ///< extra verify/recompute rounds needed
};

}  // namespace vsparse::kernels

// Kernel registry — the single place every SpMM/SDDMM implementation
// describes itself, and the single source of dispatch policy.
//
// Before this layer, "which kernels exist and when do they apply" was
// written down three times: the enum switches in kernels/dispatch.cpp,
// the Supervisor's hard-coded degradation ladder + eligibility
// predicates in serve/supervisor.cpp, and the two-kernel sweep in
// kernels/autotune.cpp.  Each implementation now registers one
// KernelDesc — stable name, op, supported vector granularities,
// operand format, ABFT-variant availability, degradation-ladder rank,
// eligibility predicate, and a type-erased launch thunk — and all
// three consumers became queries:
//
//   dispatch   kernel_for(algorithm) -> desc, desc->spmm_launch(call)
//   serve      ladder(op, shape) = registry in ladder-rank order,
//              filtered by eligibility (serve/supervisor.cpp)
//   autotune   the full palette: every desc with a dispatchable
//              algorithm, swept per shape class and architecture
//              preset (kernels/policy.hpp)
//
// Completeness is enforced the same way as the counter registry: a
// static_assert pins the enum sizes, and registry_test checks every
// SpmmAlgorithm/SddmmAlgorithm value maps to exactly one desc.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "vsparse/formats/blocked_ell.hpp"
#include "vsparse/formats/cvs.hpp"
#include "vsparse/formats/dense.hpp"
#include "vsparse/kernels/api.hpp"

namespace vsparse::gpusim {
struct DeviceConfig;
}  // namespace vsparse::gpusim

namespace vsparse::verify {
class CtaModel;
struct ShapeCorner;
}  // namespace vsparse::verify

namespace vsparse::kernels {

enum class SpmmAlgorithm : std::uint8_t {
  kAuto,        ///< octet for V>=2, FPU subwarp for V=1 (or policy cache)
  kOctet,       ///< TCU-based 1-D Octet Tiling (§5.3)
  kWmmaWarp,    ///< classic warp-level WMMA mapping (§5.2)
  kFpuSubwarp,  ///< Sputnik-extended FPU tiling (§5.1)
  kCsrFine,     ///< fine-grained row-per-warp (cuSPARSE-style, V=1)
  kNumSpmmAlgorithms
};

enum class SddmmAlgorithm : std::uint8_t {
  kAuto,        ///< octet(reg) for V>=2, FPU subwarp for V=1 (or cache)
  kOctet,       ///< §6.3 with the extra-registers inverted-pattern fix
  kWmmaWarp,    ///< §6.2
  kFpuSubwarp,  ///< §6.1
  kCsrFine,     ///< fine-grained (V=1)
  kNumSddmmAlgorithms
};

enum class KernelOp : std::uint8_t { kSpmm, kSddmm };

const char* kernel_op_name(KernelOp op);  ///< "spmm" | "sddmm"

/// What one dispatch decision can see: the problem shape, the vector
/// granularity, and the stored-fraction density.  Cheap to build from
/// device operands (all fields are O(1) host-side metadata).
struct DispatchShape {
  int m = 0;            ///< output rows
  int k = 0;            ///< contraction extent
  int n = 0;            ///< output columns
  int v = 1;            ///< CVS vector granularity
  double density = 1.0; ///< stored nnz / (rows * cols); 1 = dense
};

/// Which operand encoding a kernel consumes.  Non-CVS kernels are
/// degradation-ladder rungs only: the Supervisor re-encodes the (clean)
/// host copy before invoking them (serve/supervisor.cpp).
enum class OperandFormat : std::uint8_t { kCvs, kBlockedEll, kDense };

/// Operand bundle for a type-erased SpMM launch.  `abft` is set only
/// when the ABFT variant is being invoked; `ell` / `dense_a` carry the
/// re-encoded operand for the matching OperandFormat (the Supervisor
/// materializes them lazily; plain dispatch never reaches those descs).
struct SpmmCall {
  gpusim::Device& dev;
  const CvsDevice& a;
  const DenseDevice<half_t>& b;
  DenseDevice<half_t>& c;
  const gpusim::SimOptions& sim;
  const AbftOptions* abft = nullptr;
  const BlockedEllDevice* ell = nullptr;
  const DenseDevice<half_t>* dense_a = nullptr;
};

/// Operand bundle for a type-erased SDDMM launch.
struct SddmmCall {
  gpusim::Device& dev;
  const DenseDevice<half_t>& a;
  const DenseDevice<half_t>& b;
  const CvsDevice& mask;
  gpusim::Buffer<half_t>& out_values;
  const gpusim::SimOptions& sim;
};

/// Static launch contract (gpusim/verify): replays the address
/// behaviour of one representative CTA at a concrete corner shape
/// against the abstract CTA model.  Every registered kernel must
/// provide one (registry_test pins this); the verifier reports
/// `unknown` for a null hook.
using ContractFn = void (*)(verify::CtaModel& m,
                            const verify::ShapeCorner& shape,
                            const gpusim::DeviceConfig& hw);

/// A desc with no SpmmAlgorithm/SddmmAlgorithm value: reachable only
/// as a degradation-ladder rung, never by direct dispatch.
inline constexpr int kNoAlgorithm = -1;
/// A desc that is never a fallback rung (dispatch entry only).
inline constexpr int kNotInLadder = -1;

/// One registered kernel implementation.
struct KernelDesc {
  const char* name;  ///< stable export/policy-cache id ("spmm_octet")
  KernelOp op;
  /// The SpmmAlgorithm/SddmmAlgorithm value this desc implements (as
  /// int), or kNoAlgorithm for ladder-only re-encode kernels.
  int algorithm;
  OperandFormat format;
  /// Bit v set => vector granularity v supported (v in {1,2,4,8}).
  std::uint16_t v_mask;
  /// An ABFT checksum-recovery variant exists; its ladder rung is
  /// derived from this flag (the desc's ladder_rank runs *with* ABFT —
  /// plain re-runs are what retries already spent).
  bool has_abft;
  /// Canonical degradation-ladder position (lower falls back first),
  /// or kNotInLadder.  The Supervisor's ladder is the registry in this
  /// order, filtered by `eligible` — no second copy of the policy.
  int ladder_rank;
  /// Shape constraints beyond v_mask (output-width alignment etc.).
  /// Used by the serve ladder and the autotuner; plain dispatch defers
  /// to the kernels' own argument checks, exactly as before.
  bool (*eligible)(const DispatchShape& shape);
  /// Launch thunks; null when the op/variant does not apply.
  KernelRun (*spmm_launch)(const SpmmCall& call);
  KernelRun (*spmm_abft_launch)(const SpmmCall& call);
  KernelRun (*sddmm_launch)(const SddmmCall& call);
  /// Static launch contract for the verifier (kernels/contracts.cpp).
  ContractFn contract;

  bool supports_v(int v) const {
    return v >= 1 && v <= 15 && (v_mask & (1u << v)) != 0;
  }
  bool dispatchable() const { return algorithm != kNoAlgorithm; }
};

/// Every registered kernel, in canonical order (SpMM descs first, each
/// op's dispatchable descs before its ladder-only ones).
const std::vector<KernelDesc>& kernel_registry();

/// Lookup by stable name; nullptr when unknown.
const KernelDesc* find_kernel(std::string_view name);

/// Lookup by (op, algorithm enum value); nullptr for kAuto /
/// kNoAlgorithm / out-of-range values.
const KernelDesc* find_kernel(KernelOp op, int algorithm);

/// Non-null desc for a concrete algorithm; raises kBadDispatch on
/// kAuto (callers resolve auto first).
const KernelDesc& kernel_for(SpmmAlgorithm algorithm);
const KernelDesc& kernel_for(SddmmAlgorithm algorithm);

/// The static kAuto heuristic, unchanged from the pre-registry enum
/// switch: octet for V >= 2, FPU subwarp otherwise.  The policy cache
/// (kernels/policy.hpp), when attached, is consulted *before* this and
/// falls back here on miss.
SpmmAlgorithm resolve_auto_spmm(const DispatchShape& shape);
SddmmAlgorithm resolve_auto_sddmm(const DispatchShape& shape);

/// One degradation-ladder rung: a desc, possibly in its ABFT variant.
struct LadderEntry {
  const KernelDesc* desc;
  bool abft;
};

/// The fallback rungs for `shape`, in ladder-rank order, eligibility-
/// filtered.  The entry rung is not included (the Supervisor prepends
/// the requested/auto-selected kernel and skips it here if repeated).
std::vector<LadderEntry> fallback_ladder(KernelOp op,
                                         const DispatchShape& shape);

// The registry must grow in lockstep with the algorithm enums: when a
// value is added below kNum*, registry_test's exactly-once check and
// this count pin force a matching KernelDesc.
inline constexpr int kNumDispatchableSpmm =
    static_cast<int>(SpmmAlgorithm::kNumSpmmAlgorithms) - 1;  // minus kAuto
inline constexpr int kNumDispatchableSddmm =
    static_cast<int>(SddmmAlgorithm::kNumSddmmAlgorithms) - 1;

}  // namespace vsparse::kernels

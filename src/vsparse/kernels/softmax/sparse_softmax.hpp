// Sparse softmax over the column-vector sparse encoding — the custom
// kernel §7.4 implements for the sparse-attention pipeline:
//
//   A = Softmax((QKᵀ ⊙ C) / sqrt(k))
//
// Input and output are CVS value arrays sharing the attention mask's
// pattern; the softmax normalizes each *matrix* row over its stored
// nonzeros (absent entries are -inf, i.e. excluded).
//
// One warp per vector-row; the 32 lanes stride the row's nonzero
// vectors, making three passes (max, sum-of-exp, normalize) with
// butterfly-shuffle reductions.  The V elements of each vector are
// processed in the lane's registers (independent rows of the output).
#pragma once

#include "vsparse/formats/cvs.hpp"
#include "vsparse/formats/dense.hpp"
#include "vsparse/kernels/api.hpp"

namespace vsparse::kernels {

/// out_values <- softmax(scale * in_values) per matrix row, where both
/// arrays follow `pattern`'s storage order.  In-place (out == in) is
/// allowed.
KernelRun sparse_softmax(gpusim::Device& dev, const CvsDevice& pattern,
                         const gpusim::Buffer<half_t>& in_values,
                         gpusim::Buffer<half_t>& out_values, float scale);

/// Row-wise dense softmax (the dense-attention baseline path).  One
/// warp per row, three strided passes; in-place on a row-major matrix.
KernelRun dense_softmax(gpusim::Device& dev, DenseDevice<half_t>& mat,
                        float scale);

/// Single-precision dense softmax (the Dense(float) baseline path of
/// Table 4).
KernelRun dense_softmax_f32(gpusim::Device& dev, DenseDevice<float>& mat,
                            float scale);

}  // namespace vsparse::kernels

#include "vsparse/kernels/softmax/sparse_softmax.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "vsparse/common/math.hpp"
#include "vsparse/fp16/vec.hpp"

namespace vsparse::kernels {

namespace {

using gpusim::Cta;
using gpusim::Lanes;
using gpusim::Op;
using gpusim::Warp;

/// One warp load of a V-wide half vector per active lane (LDG.16/32/
/// 64/128 depending on V).  A row's vectors are consecutive in memory,
/// so the chunk is a single-segment affine span of stride v*2 bytes.
void issue_vector_ldg(Warp& w, std::uint64_t base, std::uint32_t msk,
                      int v) {
  const auto stride = static_cast<std::uint32_t>(v) * 2u;
  switch (v) {
    case 1: {
      Lanes<half_t> d{};
      w.ldg_span(base, stride, d, msk);
      break;
    }
    case 2: {
      Lanes<half2> d{};
      w.ldg_span(base, stride, d, msk);
      break;
    }
    case 4: {
      Lanes<half4> d{};
      w.ldg_span(base, stride, d, msk);
      break;
    }
    default: {
      Lanes<half8> d{};
      w.ldg_span(base, stride, d, msk);
      break;
    }
  }
}

}  // namespace

KernelRun sparse_softmax(gpusim::Device& dev, const CvsDevice& pattern,
                         const gpusim::Buffer<half_t>& in_values,
                         gpusim::Buffer<half_t>& out_values, float scale) {
  const int v = pattern.v;
  VSPARSE_CHECK(v == 1 || v == 2 || v == 4 || v == 8);
  const std::size_t expected =
      pattern.col_idx.size() * static_cast<std::size_t>(v);
  VSPARSE_CHECK(in_values.size() == expected);
  VSPARSE_CHECK(out_values.size() == expected);

  gpusim::LaunchConfig cfg;
  cfg.grid = std::max(1, pattern.vec_rows());
  cfg.cta_threads = 32;
  cfg.smem_bytes = 0;
  cfg.profile = {
      .name = "sparse_softmax_v" + std::to_string(v),
      .regs_per_thread = 32 + 2 * v,
      .static_instrs = 280,
      .icache_pressure = 1.0,
      .ilp_factor = 0.8,
  };

  auto row_ptr = pattern.row_ptr.host();
  auto in_host = in_values.host();

  gpusim::KernelStats stats = gpusim::launch(dev, cfg, [&](Cta& cta) {
    const int vr = cta.cta_id();
    if (vr >= pattern.vec_rows()) return;
    Warp w = cta.warp(0);
    {
      // Two consecutive int32 row-pointer slots: a 4-byte-stride span.
      Lanes<std::int32_t> d{};
      w.ldg_span(pattern.row_ptr.addr(static_cast<std::size_t>(vr)), 4, d,
                 0x3u);
      w.count(Op::kImad, 2);
    }
    const std::int32_t begin = row_ptr[static_cast<std::size_t>(vr)];
    const std::int32_t end = row_ptr[static_cast<std::size_t>(vr) + 1];
    const int cnt = end - begin;
    if (cnt == 0) return;

    // Per-element state for the V rows of the vector-row.
    float maxv[8], denom[8];
    for (int t = 0; t < v; ++t) {
      maxv[t] = -std::numeric_limits<float>::infinity();
      denom[t] = 0.0f;
    }

    // Helper issuing one strided pass over the row's vectors: each
    // active lane covers one V-wide vector.  Lane l addresses
    // (begin + c0 + l) * v — consecutive vectors, so every chunk is a
    // single-segment affine span with a prefix mask.
    const auto for_each_chunk = [&](auto&& body) {
      for (std::int32_t c0 = 0; c0 < cnt; c0 += 32) {
        const int cc = std::min<std::int32_t>(32, cnt - c0);
        const std::uint64_t base = in_values.addr(
            static_cast<std::size_t>(begin + c0) * static_cast<std::size_t>(v));
        const std::uint32_t msk =
            cc >= 32 ? 0xFFFFFFFFu : (1u << cc) - 1u;
        body(c0, cc, base, msk);
      }
    };

    // Pass 1: running maximum (for numerical stability).
    for_each_chunk([&](std::int32_t c0, int cc, std::uint64_t base,
                       std::uint32_t msk) {
      issue_vector_ldg(w, base, msk, v);
      w.count(Op::kHfma, static_cast<std::uint64_t>(v));  // max ops
      for (int l = 0; l < cc; ++l) {
        for (int t = 0; t < v; ++t) {
          const float x = static_cast<float>(
                              in_host[static_cast<std::size_t>(begin + c0 + l) *
                                          static_cast<std::size_t>(v) +
                                      static_cast<std::size_t>(t)]) *
                          scale;
          maxv[t] = std::max(maxv[t], x);
        }
      }
    });
    // Butterfly reduction of the per-lane maxima.
    w.count(Op::kShfl, static_cast<std::uint64_t>(5 * v));
    w.count(Op::kHfma, static_cast<std::uint64_t>(5 * v));

    // Pass 2: sum of exponentials (MUFU.EX2 ~ one issue slot each).
    for_each_chunk([&](std::int32_t c0, int cc, std::uint64_t base,
                       std::uint32_t msk) {
      issue_vector_ldg(w, base, msk, v);
      w.count(Op::kMisc, static_cast<std::uint64_t>(v));  // EX2
      w.count(Op::kFfma, static_cast<std::uint64_t>(v));
      for (int l = 0; l < cc; ++l) {
        for (int t = 0; t < v; ++t) {
          const float x = static_cast<float>(
                              in_host[static_cast<std::size_t>(begin + c0 + l) *
                                          static_cast<std::size_t>(v) +
                                      static_cast<std::size_t>(t)]) *
                          scale;
          denom[t] += std::exp(x - maxv[t]);
        }
      }
    });
    w.count(Op::kShfl, static_cast<std::uint64_t>(5 * v));
    w.count(Op::kFfma, static_cast<std::uint64_t>(5 * v));

    // Pass 3: normalize and store.
    for_each_chunk([&](std::int32_t c0, int cc, std::uint64_t base,
                       std::uint32_t msk) {
      issue_vector_ldg(w, base, msk, v);
      w.count(Op::kMisc, static_cast<std::uint64_t>(v));  // EX2
      w.count(Op::kFfma, static_cast<std::uint64_t>(v));
      w.count(Op::kCvt, static_cast<std::uint64_t>(v));
      // The output vectors mirror the input layout: same affine span,
      // rebased onto out_values.
      const std::uint64_t obase = out_values.addr(
          static_cast<std::size_t>(begin + c0) * static_cast<std::size_t>(v));
      const auto ostride = static_cast<std::uint32_t>(v) * 2u;
      const auto fill_and_store = [&](auto frag_proto) {
        using Frag = decltype(frag_proto);
        Lanes<Frag> frag{};
        for (int l = 0; l < cc; ++l) {
          for (int t = 0; t < v; ++t) {
            const float x =
                static_cast<float>(
                    in_host[static_cast<std::size_t>(begin + c0 + l) *
                                static_cast<std::size_t>(v) +
                            static_cast<std::size_t>(t)]) *
                scale;
            const float e = std::exp(x - maxv[t]);
            frag[static_cast<std::size_t>(l)][t] =
                half_t(denom[t] > 0 ? e / denom[t] : 0.0f);
          }
        }
        w.stg_span(obase, ostride, frag, msk);
      };
      switch (v) {
        case 1: {
          // 2-byte stores.
          Lanes<half_t> frag{};
          for (int l = 0; l < cc; ++l) {
            const float x =
                static_cast<float>(
                    in_host[static_cast<std::size_t>(begin + c0 + l)]) *
                scale;
            const float e = std::exp(x - maxv[0]);
            frag[static_cast<std::size_t>(l)] =
                half_t(denom[0] > 0 ? e / denom[0] : 0.0f);
          }
          w.stg_span(obase, ostride, frag, msk);
          break;
        }
        case 2:
          fill_and_store(half2{});
          break;
        case 4:
          fill_and_store(half4{});
          break;
        default:
          fill_and_store(half8{});
          break;
      }
    });
  });

  return {stats, cfg};
}

KernelRun dense_softmax(gpusim::Device& dev, DenseDevice<half_t>& mat,
                        float scale) {
  VSPARSE_CHECK(mat.layout == Layout::kRowMajor);
  VSPARSE_CHECK(mat.cols % 8 == 0);  // vectorized 8-half row chunks
  const int rows = mat.rows, cols = mat.cols;

  gpusim::LaunchConfig cfg;
  cfg.grid = std::max(1, rows);
  cfg.cta_threads = 32;
  cfg.profile = {
      .name = "dense_softmax",
      .regs_per_thread = 32,
      .static_instrs = 240,
      .icache_pressure = 1.0,
      .ilp_factor = 0.8,
  };

  auto host = mat.buf.host();

  gpusim::KernelStats stats = gpusim::launch(dev, cfg, [&](Cta& cta) {
    const int r = cta.cta_id();
    Warp w = cta.warp(0);
    half_t* row = &host[static_cast<std::size_t>(r) *
                        static_cast<std::size_t>(mat.ld)];

    // Lane l covers columns l*8 + [0,8) strided by 256 (LDG.128 passes):
    // contiguous 16 B chunks of one row — an affine span per pass.
    const auto pass = [&](bool store, auto&& body) {
      for (int c0 = 0; c0 < cols; c0 += 256) {
        const int active = std::min(32, (cols - c0 + 7) / 8);
        const std::uint32_t msk =
            active >= 32 ? 0xFFFFFFFFu : (1u << active) - 1u;
        const std::uint64_t base = mat.addr(r, c0);
        Lanes<half8> d{};
        w.ldg_span(base, 16, d, msk);
        body(c0, std::min(256, cols - c0));
        if (store) {
          // Re-pack the (now updated) row values into the store frags.
          for (int lane = 0; lane < active; ++lane) {
            for (int e = 0; e < 8; ++e) {
              const int cc = c0 + lane * 8 + e;
              if (cc < cols) d[static_cast<std::size_t>(lane)][e] = row[cc];
            }
          }
          w.count(Op::kCvt, 8);
          w.stg_span(base, 16, d, msk);
        }
      }
    };

    float maxv = -std::numeric_limits<float>::infinity();
    pass(false, [&](int c0, int cc) {
      w.count(Op::kHfma, 8);
      for (int c = c0; c < c0 + cc; ++c) {
        maxv = std::max(maxv, static_cast<float>(row[c]) * scale);
      }
    });
    w.count(Op::kShfl, 5);
    w.count(Op::kHfma, 5);
    float denom = 0.0f;
    pass(false, [&](int c0, int cc) {
      w.count(Op::kMisc, 8);
      w.count(Op::kFfma, 8);
      for (int c = c0; c < c0 + cc; ++c) {
        denom += std::exp(static_cast<float>(row[c]) * scale - maxv);
      }
    });
    w.count(Op::kShfl, 5);
    w.count(Op::kFfma, 5);
    pass(true, [&](int c0, int cc) {
      w.count(Op::kMisc, 8);
      w.count(Op::kFfma, 8);
      for (int c = c0; c < c0 + cc; ++c) {
        const float e = std::exp(static_cast<float>(row[c]) * scale - maxv);
        row[c] = half_t(denom > 0 ? e / denom : 0.0f);
      }
    });
  });

  return {stats, cfg};
}

KernelRun dense_softmax_f32(gpusim::Device& dev, DenseDevice<float>& mat,
                            float scale) {
  VSPARSE_CHECK(mat.layout == Layout::kRowMajor);
  VSPARSE_CHECK(mat.cols % 4 == 0);
  const int rows = mat.rows, cols = mat.cols;

  gpusim::LaunchConfig cfg;
  cfg.grid = std::max(1, rows);
  cfg.cta_threads = 32;
  cfg.profile = {
      .name = "dense_softmax_f32",
      .regs_per_thread = 32,
      .static_instrs = 240,
      .icache_pressure = 1.0,
      .ilp_factor = 0.8,
  };

  auto host = mat.buf.host();

  gpusim::KernelStats stats = gpusim::launch(dev, cfg, [&](Cta& cta) {
    const int r = cta.cta_id();
    Warp w = cta.warp(0);
    float* row = &host[static_cast<std::size_t>(r) *
                       static_cast<std::size_t>(mat.ld)];

    // Lane l covers 4 floats (LDG.128) strided by 128 columns per pass:
    // contiguous 16 B chunks of one row — an affine span per pass.
    const auto pass = [&](bool store, auto&& body) {
      for (int c0 = 0; c0 < cols; c0 += 128) {
        const int active = std::min(32, (cols - c0 + 3) / 4);
        const std::uint32_t msk =
            active >= 32 ? 0xFFFFFFFFu : (1u << active) - 1u;
        const std::uint64_t base = mat.addr(r, c0);
        Lanes<std::array<float, 4>> d{};
        w.ldg_span(base, 16, d, msk);
        body(c0, std::min(128, cols - c0));
        if (store) {
          for (int lane = 0; lane < active; ++lane) {
            for (int e = 0; e < 4; ++e) {
              const int cc = c0 + lane * 4 + e;
              if (cc < cols) d[static_cast<std::size_t>(lane)][static_cast<std::size_t>(e)] = row[cc];
            }
          }
          w.stg_span(base, 16, d, msk);
        }
      }
    };

    float maxv = -std::numeric_limits<float>::infinity();
    pass(false, [&](int c0, int cc) {
      w.count(Op::kFfma, 4);
      for (int c = c0; c < c0 + cc; ++c) {
        maxv = std::max(maxv, row[c] * scale);
      }
    });
    w.count(Op::kShfl, 5);
    w.count(Op::kFfma, 5);
    float denom = 0.0f;
    pass(false, [&](int c0, int cc) {
      w.count(Op::kMisc, 4);
      w.count(Op::kFfma, 4);
      for (int c = c0; c < c0 + cc; ++c) {
        denom += std::exp(row[c] * scale - maxv);
      }
    });
    w.count(Op::kShfl, 5);
    w.count(Op::kFfma, 5);
    pass(true, [&](int c0, int cc) {
      w.count(Op::kMisc, 4);
      w.count(Op::kFfma, 4);
      for (int c = c0; c < c0 + cc; ++c) {
        const float e = std::exp(row[c] * scale - maxv);
        row[c] = denom > 0 ? e / denom : 0.0f;
      }
    });
  });

  return {stats, cfg};
}

}  // namespace vsparse::kernels

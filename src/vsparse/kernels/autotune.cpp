#include "vsparse/kernels/autotune.hpp"

#include <algorithm>
#include <cmath>

#include "vsparse/gpusim/device.hpp"

namespace vsparse::kernels {

namespace {

/// Evaluate one configuration: geometric-mean model cycles across the
/// problems (fresh device per run so cache state is independent).
template <class RunFn>
double geomean_cycles(const std::vector<TuneProblem>& problems,
                      const gpusim::DeviceConfig& hw, RunFn&& run_fn) {
  VSPARSE_CHECK(!problems.empty());
  double log_sum = 0;
  for (const TuneProblem& p : problems) {
    gpusim::DeviceConfig cfg = hw;
    cfg.dram_capacity = std::size_t{1} << 30;
    gpusim::Device dev(cfg);
    CvsDevice a = to_device(dev, p.a);
    auto b = dev.alloc<half_t>(static_cast<std::size_t>(p.a.cols) * p.n);
    auto c = dev.alloc<half_t>(static_cast<std::size_t>(p.a.rows) * p.n);
    DenseDevice<half_t> db{b, p.a.cols, p.n, p.n, Layout::kRowMajor};
    DenseDevice<half_t> dc{c, p.a.rows, p.n, p.n, Layout::kRowMajor};
    log_sum += std::log(run_fn(dev, a, db, dc).cycles(hw));
  }
  return std::exp(log_sum / static_cast<double>(problems.size()));
}

template <class Params>
void finalize(TuneResult<Params>& result) {
  std::sort(result.ranking.begin(), result.ranking.end(),
            [](const auto& x, const auto& y) { return x.second < y.second; });
  result.best = result.ranking.front().first;
  result.best_geomean_cycles = result.ranking.front().second;
}

}  // namespace

TuneResult<SpmmOctetParams> autotune_spmm_octet(
    const std::vector<TuneProblem>& problems, const gpusim::DeviceConfig& hw) {
  TuneResult<SpmmOctetParams> result;
  for (int tile_k : {8, 16, 32}) {
    for (bool batch : {true, false}) {
      SpmmOctetParams params{.tile_k = tile_k, .batch_loads = batch};
      const double score = geomean_cycles(
          problems, hw, [&](auto& dev, auto& a, auto& b, auto& c) {
            return spmm_octet(dev, a, b, c, params);
          });
      result.ranking.emplace_back(params, score);
    }
  }
  finalize(result);
  return result;
}

TuneResult<SpmmFpuParams> autotune_spmm_fpu(
    const std::vector<TuneProblem>& problems, const gpusim::DeviceConfig& hw) {
  TuneResult<SpmmFpuParams> result;
  for (int tile_n : {16, 32, 64}) {
    for (int tile_k : {16, 32}) {
      SpmmFpuParams params{.tile_n = tile_n, .tile_k = tile_k};
      const double score = geomean_cycles(
          problems, hw, [&](auto& dev, auto& a, auto& b, auto& c) {
            return spmm_fpu_subwarp(dev, a, b, c, params);
          });
      result.ranking.emplace_back(params, score);
    }
  }
  finalize(result);
  return result;
}

}  // namespace vsparse::kernels

#include "vsparse/kernels/autotune.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "vsparse/common/rng.hpp"
#include "vsparse/formats/generate.hpp"
#include "vsparse/gpusim/device.hpp"
#include "vsparse/kernels/registry.hpp"

namespace vsparse::kernels {

namespace {

/// Evaluate one configuration: geometric-mean model cycles across the
/// problems (fresh device per run so cache state is independent).
template <class RunFn>
double geomean_cycles(const std::vector<TuneProblem>& problems,
                      const gpusim::DeviceConfig& hw, RunFn&& run_fn) {
  VSPARSE_CHECK(!problems.empty());
  double log_sum = 0;
  for (const TuneProblem& p : problems) {
    gpusim::DeviceConfig cfg = hw;
    cfg.dram_capacity = std::size_t{1} << 30;
    gpusim::Device dev(cfg);
    CvsDevice a = to_device(dev, p.a);
    auto b = dev.alloc<half_t>(static_cast<std::size_t>(p.a.cols) * p.n);
    auto c = dev.alloc<half_t>(static_cast<std::size_t>(p.a.rows) * p.n);
    DenseDevice<half_t> db{b, p.a.cols, p.n, p.n, Layout::kRowMajor};
    DenseDevice<half_t> dc{c, p.a.rows, p.n, p.n, Layout::kRowMajor};
    log_sum += std::log(run_fn(dev, a, db, dc).cycles(hw));
  }
  return std::exp(log_sum / static_cast<double>(problems.size()));
}

template <class Params>
void finalize(TuneResult<Params>& result) {
  std::sort(result.ranking.begin(), result.ranking.end(),
            [](const auto& x, const auto& y) { return x.second < y.second; });
  result.best = result.ranking.front().first;
  result.best_geomean_cycles = result.ranking.front().second;
}

}  // namespace

TuneResult<SpmmOctetParams> autotune_spmm_octet(
    const std::vector<TuneProblem>& problems, const gpusim::DeviceConfig& hw) {
  TuneResult<SpmmOctetParams> result;
  for (int tile_k : {8, 16, 32}) {
    for (bool batch : {true, false}) {
      SpmmOctetParams params{.tile_k = tile_k, .batch_loads = batch};
      const double score = geomean_cycles(
          problems, hw, [&](auto& dev, auto& a, auto& b, auto& c) {
            return spmm_octet(dev, a, b, c, params);
          });
      result.ranking.emplace_back(params, score);
    }
  }
  finalize(result);
  return result;
}

TuneResult<SpmmFpuParams> autotune_spmm_fpu(
    const std::vector<TuneProblem>& problems, const gpusim::DeviceConfig& hw) {
  TuneResult<SpmmFpuParams> result;
  for (int tile_n : {16, 32, 64}) {
    for (int tile_k : {16, 32}) {
      SpmmFpuParams params{.tile_n = tile_n, .tile_k = tile_k};
      const double score = geomean_cycles(
          problems, hw, [&](auto& dev, auto& a, auto& b, auto& c) {
            return spmm_fpu_subwarp(dev, a, b, c, params);
          });
      result.ranking.emplace_back(params, score);
    }
  }
  finalize(result);
  return result;
}

namespace {

/// Deterministic per-problem seed: the sweep must not depend on axis
/// iteration order, so each class hashes its own coordinates.
std::uint64_t class_seed(std::uint64_t base, int m, int k, int n, int v,
                        double sparsity) {
  std::uint64_t h = base;
  for (std::uint64_t x :
       {static_cast<std::uint64_t>(m), static_cast<std::uint64_t>(k),
        static_cast<std::uint64_t>(n), static_cast<std::uint64_t>(v),
        static_cast<std::uint64_t>(sparsity * 1e6)}) {
    h ^= x + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

gpusim::Device fresh_tune_device(const gpusim::DeviceConfig& hw) {
  gpusim::DeviceConfig cfg = hw;
  cfg.dram_capacity = std::size_t{1} << 30;
  return gpusim::Device(cfg);
}

void tune_spmm_class(PolicyCache& cache, const gpusim::DeviceConfig& hw,
                     std::uint64_t seed, int m, int k, int n, int v,
                     double sparsity) {
  Rng rng(class_seed(seed, m, k, n, v, sparsity));
  const Cvs a_host = make_cvs(m, k, v, sparsity, rng);
  const DispatchShape shape{m, k, n, v, 1.0 - a_host.sparsity()};
  const KernelDesc* best = nullptr;
  double best_cycles = std::numeric_limits<double>::infinity();
  for (const KernelDesc& desc : kernel_registry()) {
    if (desc.op != KernelOp::kSpmm || !desc.dispatchable()) continue;
    if (!desc.supports_v(v) || !desc.eligible(shape)) continue;
    gpusim::Device dev = fresh_tune_device(hw);
    CvsDevice a = to_device(dev, a_host);
    auto b = dev.alloc<half_t>(static_cast<std::size_t>(k) * n);
    auto c = dev.alloc<half_t>(static_cast<std::size_t>(m) * n);
    DenseDevice<half_t> db{b, k, n, n, Layout::kRowMajor};
    DenseDevice<half_t> dc{c, m, n, n, Layout::kRowMajor};
    const double cycles =
        desc.spmm_launch(SpmmCall{dev, a, db, dc, {}}).cycles(hw);
    if (cycles < best_cycles) {
      best_cycles = cycles;
      best = &desc;
    }
  }
  if (best != nullptr) {
    cache.insert(KernelOp::kSpmm, hw.arch, shape, best->name, best_cycles);
  }
}

void tune_sddmm_class(PolicyCache& cache, const gpusim::DeviceConfig& hw,
                      std::uint64_t seed, int m, int k, int n, int v,
                      double sparsity) {
  Rng rng(class_seed(seed, m, k, n, v, sparsity) ^ 0xdd);
  const Cvs mask_host = make_cvs_mask(m, n, v, sparsity, rng);
  const DispatchShape shape{m, k, n, v,
                            1.0 - mask_host.sparsity()};
  const KernelDesc* best = nullptr;
  double best_cycles = std::numeric_limits<double>::infinity();
  for (const KernelDesc& desc : kernel_registry()) {
    if (desc.op != KernelOp::kSddmm || !desc.dispatchable()) continue;
    if (!desc.supports_v(v) || !desc.eligible(shape)) continue;
    gpusim::Device dev = fresh_tune_device(hw);
    CvsDevice mask = to_device(dev, mask_host);
    auto a = dev.alloc<half_t>(static_cast<std::size_t>(m) * k);
    auto b = dev.alloc<half_t>(static_cast<std::size_t>(k) * n);
    auto out = dev.alloc<half_t>(mask_host.values.size());
    DenseDevice<half_t> da{a, m, k, k, Layout::kRowMajor};
    DenseDevice<half_t> db{b, k, n, k, Layout::kColMajor};
    const double cycles =
        desc.sddmm_launch(SddmmCall{dev, da, db, mask, out, {}}).cycles(hw);
    if (cycles < best_cycles) {
      best_cycles = cycles;
      best = &desc;
    }
  }
  if (best != nullptr) {
    cache.insert(KernelOp::kSddmm, hw.arch, shape, best->name, best_cycles);
  }
}

}  // namespace

PolicyTuneSpec default_policy_tune_spec() { return PolicyTuneSpec{}; }

PolicyCache autotune_policy(const PolicyTuneSpec& spec) {
  PolicyCache cache;
  for (const std::string& arch : spec.arches) {
    const gpusim::DeviceConfig hw = gpusim::DeviceConfig::preset(arch);
    for (int m : spec.ms) {
      for (int k : spec.ks) {
        for (int n : spec.ns) {
          for (int v : spec.vs) {
            for (double sparsity : spec.sparsities) {
              if (m % v != 0) continue;
              if (spec.tune_spmm) {
                tune_spmm_class(cache, hw, spec.seed, m, k, n, v, sparsity);
              }
              if (spec.tune_sddmm) {
                tune_sddmm_class(cache, hw, spec.seed, m, k, n, v, sparsity);
              }
            }
          }
        }
      }
    }
  }
  return cache;
}

}  // namespace vsparse::kernels

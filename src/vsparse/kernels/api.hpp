// Common result type for all kernels: the functional output lives in
// device memory; the performance-relevant products are the hardware
// counters plus the launch shape, which together feed the cost model.
#pragma once

#include <utility>

#include "vsparse/gpusim/costmodel.hpp"
#include "vsparse/gpusim/engine/launch.hpp"
#include "vsparse/gpusim/stats.hpp"
#include "vsparse/kernels/abft.hpp"

namespace vsparse::kernels {

/// What a kernel launch produced (besides its output buffers).
struct KernelRun {
  gpusim::KernelStats stats;
  gpusim::LaunchConfig config;

  /// Fault-tolerance outcome; default-inert unless an ABFT kernel
  /// variant (kernels/dense/gemm_abft.hpp, kernels/spmm/
  /// spmm_octet_abft.hpp) produced this run.
  AbftReport abft;

  KernelRun() = default;
  KernelRun(gpusim::KernelStats s, gpusim::LaunchConfig cfg)
      : stats(s), config(std::move(cfg)) {}

  /// Evaluate the performance model for this run.
  gpusim::CostEstimate cost(const gpusim::DeviceConfig& dev,
                            const gpusim::CostParams& params = {}) const {
    return gpusim::estimate_cost(dev, config, stats, params);
  }

  /// Model cycles (convenience for speedup ratios).
  double cycles(const gpusim::DeviceConfig& dev,
                const gpusim::CostParams& params = {}) const {
    return cost(dev, params).cycles;
  }
};

}  // namespace vsparse::kernels

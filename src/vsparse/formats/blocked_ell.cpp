#include "vsparse/formats/blocked_ell.hpp"

namespace vsparse {

double BlockedEll::sparsity() const {
  const double total = static_cast<double>(rows) * cols;
  if (total == 0) return 0.0;
  std::int64_t real_blocks = 0;
  for (std::int32_t c : col_idx) {
    if (c >= 0) ++real_blocks;
  }
  const double nz = static_cast<double>(real_blocks) * block * block;
  return 1.0 - nz / total;
}

void BlockedEll::validate() const {
  VSPARSE_CHECK(block >= 1);
  VSPARSE_CHECK(rows % block == 0);
  VSPARSE_CHECK(cols % block == 0);
  VSPARSE_CHECK(blocks_per_row >= 0);
  VSPARSE_CHECK(blocks_per_row <= cols / block);
  VSPARSE_CHECK(static_cast<std::int64_t>(col_idx.size()) == stored_blocks());
  VSPARSE_CHECK(static_cast<std::int64_t>(values.size()) ==
                stored_blocks() * block * block);
  for (std::int32_t c : col_idx) {
    VSPARSE_CHECK(c == -1 || (c >= 0 && c < cols / block));
  }
}

DenseMatrix<half_t> BlockedEll::to_dense() const {
  DenseMatrix<half_t> m(rows, cols);
  for (int brow = 0; brow < block_rows(); ++brow) {
    for (int slot = 0; slot < blocks_per_row; ++slot) {
      const std::int32_t bcol =
          col_idx[static_cast<std::size_t>(brow) *
                      static_cast<std::size_t>(blocks_per_row) +
                  static_cast<std::size_t>(slot)];
      if (bcol < 0) continue;
      for (int r = 0; r < block; ++r) {
        for (int c = 0; c < block; ++c) {
          m.at(brow * block + r, bcol * block + c) =
              values[value_index(brow, slot, r, c)];
        }
      }
    }
  }
  return m;
}

BlockedEllDevice to_device(gpusim::Device& dev, const BlockedEll& m) {
  return BlockedEllDevice{dev.alloc_copy<std::int32_t>(m.col_idx),
                          dev.alloc_copy<half_t>(m.values),
                          m.rows,
                          m.cols,
                          m.block,
                          m.blocks_per_row};
}

}  // namespace vsparse

#include "vsparse/formats/blocked_ell.hpp"

#include <algorithm>

#include "vsparse/serve/error.hpp"

namespace vsparse {

// Same classification as Cvs::validate — see cvs.cpp.
#define ELL_CHECK(cond) \
  VSPARSE_CHECK_RAISE(cond, ErrorCode::kMalformedFormat, \
                      "formats.blocked_ell", \
                      "blocked_ell: encoding invariant violated: " #cond)

double BlockedEll::sparsity() const {
  const double total = static_cast<double>(rows) * cols;
  if (total == 0) return 0.0;
  std::int64_t real_blocks = 0;
  for (std::int32_t c : col_idx) {
    if (c >= 0) ++real_blocks;
  }
  const double nz = static_cast<double>(real_blocks) * block * block;
  return 1.0 - nz / total;
}

void BlockedEll::validate() const {
  ELL_CHECK(block >= 1);
  ELL_CHECK(rows % block == 0);
  ELL_CHECK(cols % block == 0);
  ELL_CHECK(blocks_per_row >= 0);
  ELL_CHECK(blocks_per_row <= cols / block);
  ELL_CHECK(static_cast<std::int64_t>(col_idx.size()) == stored_blocks());
  ELL_CHECK(static_cast<std::int64_t>(values.size()) ==
            stored_blocks() * block * block);
  for (std::int32_t c : col_idx) {
    ELL_CHECK(c == -1 || (c >= 0 && c < cols / block));
  }
}

DenseMatrix<half_t> BlockedEll::to_dense() const {
  DenseMatrix<half_t> m(rows, cols);
  for (int brow = 0; brow < block_rows(); ++brow) {
    for (int slot = 0; slot < blocks_per_row; ++slot) {
      const std::int32_t bcol =
          col_idx[static_cast<std::size_t>(brow) *
                      static_cast<std::size_t>(blocks_per_row) +
                  static_cast<std::size_t>(slot)];
      if (bcol < 0) continue;
      for (int r = 0; r < block; ++r) {
        for (int c = 0; c < block; ++c) {
          m.at(brow * block + r, bcol * block + c) =
              values[value_index(brow, slot, r, c)];
        }
      }
    }
  }
  return m;
}

BlockedEll BlockedEll::from_dense(const DenseMatrix<half_t>& m, int block) {
  ELL_CHECK(block >= 1);
  ELL_CHECK(m.rows() % block == 0);
  ELL_CHECK(m.cols() % block == 0);
  BlockedEll out;
  out.rows = m.rows();
  out.cols = m.cols();
  out.block = block;

  // Pass 1: which blocks are nonzero, and the widest block-row.
  const int brows = m.rows() / block;
  const int bcols = m.cols() / block;
  std::vector<std::vector<std::int32_t>> row_blocks(
      static_cast<std::size_t>(brows));
  for (int brow = 0; brow < brows; ++brow) {
    for (int bcol = 0; bcol < bcols; ++bcol) {
      bool any = false;
      for (int r = 0; r < block && !any; ++r) {
        for (int c = 0; c < block; ++c) {
          if (static_cast<float>(
                  m.at(brow * block + r, bcol * block + c)) != 0.0f) {
            any = true;
            break;
          }
        }
      }
      if (any) row_blocks[static_cast<std::size_t>(brow)].push_back(bcol);
    }
    out.blocks_per_row = std::max(
        out.blocks_per_row,
        static_cast<int>(row_blocks[static_cast<std::size_t>(brow)].size()));
  }

  // Pass 2: fill slots (padding slots keep col -1 and zero values).
  out.col_idx.assign(static_cast<std::size_t>(out.stored_blocks()), -1);
  out.values.assign(
      static_cast<std::size_t>(out.stored_blocks()) *
          static_cast<std::size_t>(block) * static_cast<std::size_t>(block),
      half_t(0.0f));
  for (int brow = 0; brow < brows; ++brow) {
    const auto& blocks = row_blocks[static_cast<std::size_t>(brow)];
    for (int slot = 0; slot < static_cast<int>(blocks.size()); ++slot) {
      const std::int32_t bcol = blocks[static_cast<std::size_t>(slot)];
      out.col_idx[static_cast<std::size_t>(brow) *
                      static_cast<std::size_t>(out.blocks_per_row) +
                  static_cast<std::size_t>(slot)] = bcol;
      for (int r = 0; r < block; ++r) {
        for (int c = 0; c < block; ++c) {
          out.values[out.value_index(brow, slot, r, c)] =
              m.at(brow * block + r, bcol * block + c);
        }
      }
    }
  }
  out.validate();
  return out;
}

BlockedEllDevice to_device(gpusim::Device& dev, const BlockedEll& m) {
  return BlockedEllDevice{dev.alloc_copy<std::int32_t>(m.col_idx),
                          dev.alloc_copy<half_t>(m.values),
                          m.rows,
                          m.cols,
                          m.block,
                          m.blocks_per_row};
}

}  // namespace vsparse

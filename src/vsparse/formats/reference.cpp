#include "vsparse/formats/reference.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace vsparse {

DenseMatrix<half_t> spmm_reference(const Cvs& a,
                                   const DenseMatrix<half_t>& b) {
  VSPARSE_CHECK(a.cols == b.rows());
  DenseMatrix<half_t> c(a.rows, b.cols());
  std::vector<float> acc(static_cast<std::size_t>(b.cols()));
  for (int vr = 0; vr < a.vec_rows(); ++vr) {
    for (int t = 0; t < a.v; ++t) {
      std::fill(acc.begin(), acc.end(), 0.0f);
      for (std::int32_t i = a.row_ptr[static_cast<std::size_t>(vr)];
           i < a.row_ptr[static_cast<std::size_t>(vr) + 1]; ++i) {
        const std::int32_t k = a.col_idx[static_cast<std::size_t>(i)];
        const float av = static_cast<float>(
            a.values[static_cast<std::size_t>(i) *
                         static_cast<std::size_t>(a.v) +
                     static_cast<std::size_t>(t)]);
        for (int j = 0; j < b.cols(); ++j) {
          acc[static_cast<std::size_t>(j)] +=
              av * static_cast<float>(b.at(k, j));
        }
      }
      for (int j = 0; j < b.cols(); ++j) {
        c.at(vr * a.v + t, j) = half_t(acc[static_cast<std::size_t>(j)]);
      }
    }
  }
  return c;
}

Cvs sddmm_reference(const DenseMatrix<half_t>& a, const DenseMatrix<half_t>& b,
                    const Cvs& mask) {
  VSPARSE_CHECK(a.cols() == b.rows());
  VSPARSE_CHECK(mask.rows == a.rows());
  VSPARSE_CHECK(mask.cols == b.cols());
  Cvs out = mask;  // same pattern
  for (int vr = 0; vr < mask.vec_rows(); ++vr) {
    for (std::int32_t i = mask.row_ptr[static_cast<std::size_t>(vr)];
         i < mask.row_ptr[static_cast<std::size_t>(vr) + 1]; ++i) {
      const std::int32_t col = mask.col_idx[static_cast<std::size_t>(i)];
      for (int t = 0; t < mask.v; ++t) {
        const int row = vr * mask.v + t;
        float sum = 0.0f;
        for (int k = 0; k < a.cols(); ++k) {
          sum += static_cast<float>(a.at(row, k)) *
                 static_cast<float>(b.at(k, col));
        }
        const float m = static_cast<float>(
            mask.values[static_cast<std::size_t>(i) *
                            static_cast<std::size_t>(mask.v) +
                        static_cast<std::size_t>(t)]);
        out.values[static_cast<std::size_t>(i) *
                       static_cast<std::size_t>(mask.v) +
                   static_cast<std::size_t>(t)] = half_t(sum * m);
      }
    }
  }
  return out;
}

Cvs sparse_softmax_reference(const Cvs& logits, float scale) {
  Cvs out = logits;
  for (int vr = 0; vr < logits.vec_rows(); ++vr) {
    const std::int32_t begin = logits.row_ptr[static_cast<std::size_t>(vr)];
    const std::int32_t end = logits.row_ptr[static_cast<std::size_t>(vr) + 1];
    for (int t = 0; t < logits.v; ++t) {
      // Numerically stable softmax over this matrix row's nonzeros.
      float maxv = -std::numeric_limits<float>::infinity();
      for (std::int32_t i = begin; i < end; ++i) {
        maxv = std::max(
            maxv, static_cast<float>(
                      logits.values[static_cast<std::size_t>(i) *
                                        static_cast<std::size_t>(logits.v) +
                                    static_cast<std::size_t>(t)]) *
                      scale);
      }
      float denom = 0.0f;
      for (std::int32_t i = begin; i < end; ++i) {
        denom += std::exp(
            static_cast<float>(
                logits.values[static_cast<std::size_t>(i) *
                                  static_cast<std::size_t>(logits.v) +
                              static_cast<std::size_t>(t)]) *
                scale -
            maxv);
      }
      for (std::int32_t i = begin; i < end; ++i) {
        const std::size_t idx = static_cast<std::size_t>(i) *
                                    static_cast<std::size_t>(logits.v) +
                                static_cast<std::size_t>(t);
        const float e = std::exp(
            static_cast<float>(logits.values[idx]) * scale - maxv);
        out.values[idx] = half_t(denom > 0 ? e / denom : 0.0f);
      }
    }
  }
  return out;
}

}  // namespace vsparse

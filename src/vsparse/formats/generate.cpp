#include "vsparse/formats/generate.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace vsparse {

namespace {

/// Draw `count` distinct sorted columns from [0, cols) by partial
/// Fisher-Yates over a scratch index array.
void sample_columns(int cols, int count, Rng& rng,
                    std::vector<std::int32_t>& scratch,
                    std::vector<std::int32_t>& out) {
  VSPARSE_CHECK(count <= cols);
  if (static_cast<int>(scratch.size()) != cols) {
    scratch.resize(static_cast<std::size_t>(cols));
    std::iota(scratch.begin(), scratch.end(), 0);
  }
  for (int i = 0; i < count; ++i) {
    const auto j = static_cast<std::size_t>(
        i + static_cast<int>(rng.uniform_u64(
                static_cast<std::uint64_t>(cols - i))));
    std::swap(scratch[static_cast<std::size_t>(i)], scratch[j]);
  }
  const auto begin = out.size();
  out.insert(out.end(), scratch.begin(), scratch.begin() + count);
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(begin), out.end());
}

}  // namespace

void random_pattern(int rows, int cols, double sparsity, double row_jitter,
                    Rng& rng, std::vector<std::int32_t>& row_ptr,
                    std::vector<std::int32_t>& col_idx) {
  VSPARSE_CHECK(rows >= 0 && cols >= 0);
  VSPARSE_CHECK(sparsity >= 0.0 && sparsity <= 1.0);
  VSPARSE_CHECK(row_jitter >= 0.0 && row_jitter < 1.0);
  row_ptr.clear();
  col_idx.clear();
  row_ptr.reserve(static_cast<std::size_t>(rows) + 1);
  row_ptr.push_back(0);
  const double density = 1.0 - sparsity;
  std::vector<std::int32_t> scratch;
  for (int r = 0; r < rows; ++r) {
    const double jitter =
        1.0 + row_jitter * (2.0 * static_cast<double>(rng.uniform_float()) - 1.0);
    int count = static_cast<int>(std::lround(density * cols * jitter));
    count = std::clamp(count, 0, cols);
    sample_columns(cols, count, rng, scratch, col_idx);
    row_ptr.push_back(static_cast<std::int32_t>(col_idx.size()));
  }
}

Cvs make_cvs(int m, int k, int v, double sparsity, Rng& rng,
             double row_jitter) {
  VSPARSE_CHECK(m % v == 0);
  Cvs out;
  out.rows = m;
  out.cols = k;
  out.v = v;
  random_pattern(m / v, k, sparsity, row_jitter, rng, out.row_ptr,
                 out.col_idx);
  out.values.resize(out.col_idx.size() * static_cast<std::size_t>(v));
  for (half_t& h : out.values) h = half_t(rng.uniform_float(0.5f, 1.5f));
  return out;
}

Cvs make_cvs_mask(int m, int n, int v, double sparsity, Rng& rng,
                  double row_jitter) {
  Cvs out = make_cvs(m, n, v, sparsity, rng, row_jitter);
  std::fill(out.values.begin(), out.values.end(), half_t(1.0f));
  return out;
}

BlockedEll make_blocked_ell(int m, int k, int block, double sparsity,
                            Rng& rng) {
  VSPARSE_CHECK(m % block == 0 && k % block == 0);
  BlockedEll out;
  out.rows = m;
  out.cols = k;
  out.block = block;
  const int block_cols = k / block;
  out.blocks_per_row = std::clamp(
      static_cast<int>(std::ceil(block_cols * (1.0 - sparsity))), 0,
      block_cols);
  out.col_idx.reserve(static_cast<std::size_t>(out.stored_blocks()));
  std::vector<std::int32_t> scratch;
  std::vector<std::int32_t> row_cols;
  for (int brow = 0; brow < out.block_rows(); ++brow) {
    row_cols.clear();
    sample_columns(block_cols, out.blocks_per_row, rng, scratch, row_cols);
    out.col_idx.insert(out.col_idx.end(), row_cols.begin(), row_cols.end());
  }
  out.values.resize(static_cast<std::size_t>(out.stored_blocks()) *
                    static_cast<std::size_t>(block) *
                    static_cast<std::size_t>(block));
  for (half_t& h : out.values) h = half_t(rng.uniform_float(0.5f, 1.5f));
  return out;
}

Cvs make_attention_mask(int seq, int v, int band, double sparsity, Rng& rng) {
  VSPARSE_CHECK(seq % v == 0);
  Cvs out;
  out.rows = seq;
  out.cols = seq;
  out.v = v;
  out.row_ptr.push_back(0);
  const int per_row_target =
      std::clamp(static_cast<int>(std::lround(seq * (1.0 - sparsity))), 0, seq);
  std::vector<char> taken(static_cast<std::size_t>(seq));
  for (int vr = 0; vr < seq / v; ++vr) {
    std::fill(taken.begin(), taken.end(), char{0});
    const int center = vr * v;
    int count = 0;
    // Dense band along the diagonal.
    const int lo = std::max(0, center - band / 2);
    const int hi = std::min(seq - 1, center + band / 2);
    for (int c = lo; c <= hi && count < per_row_target; ++c) {
      taken[static_cast<std::size_t>(c)] = 1;
      ++count;
    }
    // Random off-diagonal attention up to the density target.
    while (count < per_row_target) {
      const auto c = static_cast<std::size_t>(
          rng.uniform_u64(static_cast<std::uint64_t>(seq)));
      if (!taken[c]) {
        taken[c] = 1;
        ++count;
      }
    }
    for (int c = 0; c < seq; ++c) {
      if (taken[static_cast<std::size_t>(c)]) out.col_idx.push_back(c);
    }
    out.row_ptr.push_back(static_cast<std::int32_t>(out.col_idx.size()));
  }
  out.values.assign(out.col_idx.size() * static_cast<std::size_t>(v),
                    half_t(1.0f));
  return out;
}

}  // namespace vsparse

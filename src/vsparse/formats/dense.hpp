// Host-side dense matrices and their device mirrors.
//
// Convention follows the paper (§4.1): activations and SpMM operands
// are row-major (PyTorch/TensorFlow layout); the SDDMM RHS is stored
// column-major to absorb the transpose that self-attention needs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "vsparse/common/macros.hpp"
#include "vsparse/common/rng.hpp"
#include "vsparse/fp16/half.hpp"
#include "vsparse/gpusim/device.hpp"

namespace vsparse {

enum class Layout : std::uint8_t { kRowMajor, kColMajor };

/// Dense rows x cols matrix with explicit layout.
template <class T>
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(int rows, int cols, Layout layout = Layout::kRowMajor)
      : rows_(rows), cols_(cols), layout_(layout) {
    VSPARSE_CHECK(rows >= 0 && cols >= 0);
    data_.resize(static_cast<std::size_t>(rows) *
                 static_cast<std::size_t>(cols));
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  Layout layout() const { return layout_; }

  T& at(int r, int c) {
    VSPARSE_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[index(r, c)];
  }
  const T& at(int r, int c) const {
    VSPARSE_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[index(r, c)];
  }

  std::span<T> data() { return data_; }
  std::span<const T> data() const { return data_; }

  /// Leading dimension (elements between consecutive rows for
  /// row-major, columns for col-major).
  int ld() const { return layout_ == Layout::kRowMajor ? cols_ : rows_; }

  /// Fill with uniform values in [lo, hi).
  void fill_random(Rng& rng, float lo = -1.0f, float hi = 1.0f) {
    for (T& v : data_) v = T(rng.uniform_float(lo, hi));
  }

  /// Fill with small integers (fp16-exact, order-insensitive sums) for
  /// bit-exact kernel-vs-reference testing.
  void fill_random_int(Rng& rng, int lo = -3, int hi = 3) {
    for (T& v : data_) v = T(static_cast<float>(rng.uniform_int(lo, hi)));
  }

  /// Layout-converted copy.
  DenseMatrix<T> with_layout(Layout target) const {
    if (target == layout_) return *this;
    DenseMatrix<T> out(rows_, cols_, target);
    for (int r = 0; r < rows_; ++r) {
      for (int c = 0; c < cols_; ++c) out.at(r, c) = at(r, c);
    }
    return out;
  }

 private:
  std::size_t index(int r, int c) const {
    return layout_ == Layout::kRowMajor
               ? static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
                     static_cast<std::size_t>(c)
               : static_cast<std::size_t>(c) * static_cast<std::size_t>(rows_) +
                     static_cast<std::size_t>(r);
  }

  int rows_ = 0;
  int cols_ = 0;
  Layout layout_ = Layout::kRowMajor;
  std::vector<T> data_;
};

/// Device mirror of a DenseMatrix: the buffer plus addressing metadata
/// kernels need to compute per-lane global addresses.
template <class T>
struct DenseDevice {
  gpusim::Buffer<T> buf;
  int rows = 0;
  int cols = 0;
  int ld = 0;
  Layout layout = Layout::kRowMajor;

  /// Device byte address of element (r, c).
  std::uint64_t addr(int r, int c) const {
    const auto idx = layout == Layout::kRowMajor
                         ? static_cast<std::size_t>(r) *
                                   static_cast<std::size_t>(ld) +
                               static_cast<std::size_t>(c)
                         : static_cast<std::size_t>(c) *
                                   static_cast<std::size_t>(ld) +
                               static_cast<std::size_t>(r);
    return buf.addr(idx);
  }
};

/// Upload a host matrix to the device.  The buffer declares 15
/// elements of vector-load tail slack (Device::alloc): the widest
/// vectorized access any kernel issues from an unaligned base inside
/// the matrix is 16 elements, so the last in-bounds element can be
/// loaded as the head of one such vector without a false OOB — the
/// same Sputnik-style contract the CVS arrays declare (cvs.cpp), and
/// what the static verifier's contracts assume for dense operands.
template <class T>
DenseDevice<T> to_device(gpusim::Device& dev, const DenseMatrix<T>& m) {
  return DenseDevice<T>{dev.alloc_copy<T>(m.data(), "dense",
                                          /*tail_slack_elems=*/15),
                        m.rows(), m.cols(), m.ld(), m.layout()};
}

/// A rows x cols window of a device matrix starting at (r0, c0), backed
/// by the same device memory (no copy).  The view keeps the parent's
/// leading dimension, so kernels address it exactly as they would a
/// standalone matrix — this is how the ABFT recovery path re-runs a
/// kernel on just one corrupted output tile.
template <class T>
DenseDevice<T> sub_view(gpusim::Device& dev, const DenseDevice<T>& m, int r0,
                        int c0, int rows, int cols) {
  VSPARSE_CHECK(rows > 0 && cols > 0);
  VSPARSE_CHECK(r0 >= 0 && c0 >= 0 && r0 + rows <= m.rows &&
                c0 + cols <= m.cols);
  // Elements spanned by the window in the parent's storage order: full
  // leading dimensions for all but the last row/column.
  const std::size_t count =
      m.layout == Layout::kRowMajor
          ? static_cast<std::size_t>(rows - 1) * static_cast<std::size_t>(m.ld) +
                static_cast<std::size_t>(cols)
          : static_cast<std::size_t>(cols - 1) * static_cast<std::size_t>(m.ld) +
                static_cast<std::size_t>(rows);
  return DenseDevice<T>{gpusim::Buffer<T>(&dev, m.addr(r0, c0), count), rows,
                        cols, m.ld, m.layout};
}

/// Download a device matrix into a host DenseMatrix.
template <class T>
DenseMatrix<T> from_device(const DenseDevice<T>& d) {
  DenseMatrix<T> m(d.rows, d.cols, d.layout);
  auto src = d.buf.host();
  std::copy(src.begin(), src.end(), m.data().begin());
  return m;
}

}  // namespace vsparse

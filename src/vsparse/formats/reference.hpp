// Host reference implementations of every operation the kernels
// compute.  Used by the test suite as ground truth and by examples for
// verification.  All references accumulate in fp32 (as the tensor core
// does) and round the final result to the output type.
#pragma once

#include <vector>

#include "vsparse/formats/blocked_ell.hpp"
#include "vsparse/formats/csr.hpp"
#include "vsparse/formats/cvs.hpp"
#include "vsparse/formats/dense.hpp"

namespace vsparse {

/// C[MxN] = A[MxK] * B[KxN], fp32 accumulation, output rounded to T.
/// Layouts of A and B are honored.
template <class T>
DenseMatrix<T> gemm_reference(const DenseMatrix<T>& a,
                              const DenseMatrix<T>& b) {
  VSPARSE_CHECK(a.cols() == b.rows());
  DenseMatrix<T> c(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < b.cols(); ++j) {
      float sum = 0.0f;
      for (int k = 0; k < a.cols(); ++k) {
        sum += static_cast<float>(a.at(i, k)) * static_cast<float>(b.at(k, j));
      }
      c.at(i, j) = T(sum);
    }
  }
  return c;
}

/// SpMM: C[MxN] = A_sparse[MxK] * B[KxN] (CVS A, row-major B).
DenseMatrix<half_t> spmm_reference(const Cvs& a, const DenseMatrix<half_t>& b);

/// SpMM with a fine-grained CSR LHS (the Fig. 4 baseline semantics).
template <class T>
DenseMatrix<T> spmm_csr_reference(const Csr<T>& a, const DenseMatrix<T>& b) {
  VSPARSE_CHECK(a.cols == b.rows());
  DenseMatrix<T> c(a.rows, b.cols());
  for (int r = 0; r < a.rows; ++r) {
    for (int j = 0; j < b.cols(); ++j) {
      float sum = 0.0f;
      for (std::int32_t i = a.row_ptr[static_cast<std::size_t>(r)];
           i < a.row_ptr[static_cast<std::size_t>(r) + 1]; ++i) {
        sum += static_cast<float>(a.values[static_cast<std::size_t>(i)]) *
               static_cast<float>(
                   b.at(a.col_idx[static_cast<std::size_t>(i)], j));
      }
      c.at(r, j) = T(sum);
    }
  }
  return c;
}

/// SDDMM: C = (A[MxK] * B[KxN]) masked to the pattern of `mask`
/// (a CVS-encoded binary mask).  Returns the nonzero values in the
/// mask's storage order (a Cvs sharing the mask's pattern).
/// B is expected column-major (§4.1).
Cvs sddmm_reference(const DenseMatrix<half_t>& a, const DenseMatrix<half_t>& b,
                    const Cvs& mask);

/// Row-wise softmax over the nonzeros of a CVS matrix: each *matrix*
/// row (not vector-row) is normalized over its stored entries, exactly
/// what the §7.4 sparse-attention softmax computes.  Returns a Cvs with
/// the same pattern.
Cvs sparse_softmax_reference(const Cvs& logits, float scale = 1.0f);

}  // namespace vsparse

// Synthetic sparse-matrix generators implementing the paper's benchmark
// construction (§7.1.1, Fig. 16) and the attention-mask pattern of
// §7.4.
//
// DLMC substitution: the paper takes csrRowPtr/csrColInd from ResNet-50
// magnitude-pruned matrices and randomizes the values.  We cannot ship
// DLMC, so the pattern itself is synthesized: per-row nonzero counts
// get a configurable jitter (magnitude pruning yields imbalanced rows)
// and column positions are uniform.  Values are random nonzero vectors,
// exactly as §7.1.1 does.
#pragma once

#include <cstdint>
#include <vector>

#include "vsparse/common/rng.hpp"
#include "vsparse/formats/blocked_ell.hpp"
#include "vsparse/formats/csr.hpp"
#include "vsparse/formats/cvs.hpp"

namespace vsparse {

/// Random CSR-structure pattern: `rows` x `cols`, target fraction of
/// zeros `sparsity`, per-row nonzero count jittered by up to
/// +-`row_jitter` (relative) to mimic magnitude-pruning imbalance.
/// Column indices are sorted unique uniform draws.
void random_pattern(int rows, int cols, double sparsity, double row_jitter,
                    Rng& rng, std::vector<std::int32_t>& row_ptr,
                    std::vector<std::int32_t>& col_idx);

/// §7.1.1 benchmark matrix: M x K column-vector sparse matrix with
/// grain V x 1, random nonzero values in (0.5, 1.5) (never zero, so the
/// encoded sparsity is exact).
Cvs make_cvs(int m, int k, int v, double sparsity, Rng& rng,
             double row_jitter = 0.25);

/// Binary mask in CVS encoding (all stored values 1.0) for SDDMM.
Cvs make_cvs_mask(int m, int n, int v, double sparsity, Rng& rng,
                  double row_jitter = 0.0);

/// §7.1.1 Blocked-ELL construction: block size b, blocks per block-row
/// = ceil((K/b) * (1 - sparsity)), uniform random distinct block
/// columns, random nonzero values.  Same problem size and sparsity as
/// the matching CVS benchmark.
BlockedEll make_blocked_ell(int m, int k, int block, double sparsity,
                            Rng& rng);

/// Fine-grained random CSR (the Fig. 4 baseline inputs).
template <class T>
Csr<T> make_csr(int m, int k, double sparsity, Rng& rng,
                double row_jitter = 0.25) {
  Csr<T> out;
  out.rows = m;
  out.cols = k;
  random_pattern(m, k, sparsity, row_jitter, rng, out.row_ptr, out.col_idx);
  out.values.resize(out.col_idx.size());
  for (T& v : out.values) v = T(rng.uniform_float(0.5f, 1.5f));
  return out;
}

/// §7.4 fixed attention mask: seq x seq, a dense band of width `band`
/// along the diagonal plus uniform random off-diagonal vectors, at
/// V x 1 vector granularity, hitting the target overall sparsity.
Cvs make_attention_mask(int seq, int v, int band, double sparsity, Rng& rng);

}  // namespace vsparse

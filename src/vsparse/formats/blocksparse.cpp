#include "vsparse/formats/blocksparse.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "vsparse/common/math.hpp"

namespace vsparse {

Cvs make_square_block_cvs(int m, int k, int v, double sparsity, Rng& rng) {
  VSPARSE_CHECK(v == 1 || v == 2 || v == 4 || v == 8);
  VSPARSE_CHECK(m % v == 0 && k % v == 0);
  const int block_rows = m / v;
  const int block_cols = k / v;
  const int keep = std::clamp(
      static_cast<int>(std::lround(block_cols * (1.0 - sparsity))), 0,
      block_cols);

  Cvs out;
  out.rows = m;
  out.cols = k;
  out.v = v;
  out.row_ptr.push_back(0);
  std::vector<std::int32_t> scratch(static_cast<std::size_t>(block_cols));
  std::iota(scratch.begin(), scratch.end(), 0);
  std::vector<std::int32_t> chosen;
  for (int br = 0; br < block_rows; ++br) {
    // Sample `keep` distinct block columns.
    for (int i = 0; i < keep; ++i) {
      const auto j = static_cast<std::size_t>(
          i + static_cast<int>(
                  rng.uniform_u64(static_cast<std::uint64_t>(block_cols - i))));
      std::swap(scratch[static_cast<std::size_t>(i)], scratch[j]);
    }
    chosen.assign(scratch.begin(), scratch.begin() + keep);
    std::sort(chosen.begin(), chosen.end());
    for (std::int32_t bc : chosen) {
      for (int t = 0; t < v; ++t) {  // v column vectors per block
        out.col_idx.push_back(bc * v + t);
        for (int r = 0; r < v; ++r) {
          out.values.push_back(half_t(rng.uniform_float(0.5f, 1.5f)));
        }
      }
    }
    out.row_ptr.push_back(static_cast<std::int32_t>(out.col_idx.size()));
  }
  return out;
}

bool has_square_block_structure(const Cvs& a) {
  if (a.cols % a.v != 0) return false;
  for (int vr = 0; vr < a.vec_rows(); ++vr) {
    const std::int32_t begin = a.row_ptr[static_cast<std::size_t>(vr)];
    const std::int32_t end = a.row_ptr[static_cast<std::size_t>(vr) + 1];
    if ((end - begin) % a.v != 0) return false;
    // Columns are sorted; every run of v must be a complete block.
    for (std::int32_t i = begin; i < end; i += a.v) {
      const std::int32_t c0 = a.col_idx[static_cast<std::size_t>(i)];
      if (c0 % a.v != 0) return false;
      for (int t = 1; t < a.v; ++t) {
        if (a.col_idx[static_cast<std::size_t>(i + t)] != c0 + t) return false;
      }
    }
  }
  return true;
}

Cvs transpose_square_block_cvs(const Cvs& a) {
  VSPARSE_CHECK_MSG(has_square_block_structure(a),
                    "transpose on the encoded form needs aligned square "
                    "blocks (§8 Case 1)");
  const int v = a.v;
  const int t_block_rows = a.cols / v;

  Cvs out;
  out.rows = a.cols;
  out.cols = a.rows;
  out.v = v;

  // Pass 1: count blocks per transposed block-row (CSC-style).
  std::vector<std::int32_t> counts(static_cast<std::size_t>(t_block_rows), 0);
  for (int vr = 0; vr < a.vec_rows(); ++vr) {
    for (std::int32_t i = a.row_ptr[static_cast<std::size_t>(vr)];
         i < a.row_ptr[static_cast<std::size_t>(vr) + 1]; i += v) {
      ++counts[static_cast<std::size_t>(
          a.col_idx[static_cast<std::size_t>(i)] / v)];
    }
  }
  out.row_ptr.resize(static_cast<std::size_t>(t_block_rows) + 1, 0);
  for (int br = 0; br < t_block_rows; ++br) {
    out.row_ptr[static_cast<std::size_t>(br) + 1] =
        out.row_ptr[static_cast<std::size_t>(br)] +
        counts[static_cast<std::size_t>(br)] * v;
  }
  out.col_idx.resize(static_cast<std::size_t>(out.row_ptr.back()));
  out.values.resize(out.col_idx.size() * static_cast<std::size_t>(v));

  // Pass 2: scatter blocks, transposing each block's v x v values.
  std::vector<std::int32_t> cursor(static_cast<std::size_t>(t_block_rows), 0);
  for (int vr = 0; vr < a.vec_rows(); ++vr) {
    for (std::int32_t i = a.row_ptr[static_cast<std::size_t>(vr)];
         i < a.row_ptr[static_cast<std::size_t>(vr) + 1]; i += v) {
      const int bc = a.col_idx[static_cast<std::size_t>(i)] / v;
      const std::int32_t dst =
          out.row_ptr[static_cast<std::size_t>(bc)] +
          cursor[static_cast<std::size_t>(bc)];
      cursor[static_cast<std::size_t>(bc)] += v;
      for (int t2 = 0; t2 < v; ++t2) {  // column within transposed block
        out.col_idx[static_cast<std::size_t>(dst + t2)] = vr * v + t2;
        for (int t1 = 0; t1 < v; ++t1) {
          // T[bc*v + t1][vr*v + t2] = A[vr*v + t2][bc*v + t1]:
          // source vector (i + t1) element t2.
          out.values[(static_cast<std::size_t>(dst) +
                      static_cast<std::size_t>(t2)) *
                         static_cast<std::size_t>(v) +
                     static_cast<std::size_t>(t1)] =
              a.values[(static_cast<std::size_t>(i) +
                        static_cast<std::size_t>(t1)) *
                           static_cast<std::size_t>(v) +
                       static_cast<std::size_t>(t2)];
        }
      }
    }
  }
  return out;
}

Cvs make_global_row_cvs(int m, int k, int v, int dense_vec_rows, Rng& rng) {
  VSPARSE_CHECK(m % v == 0);
  const int vec_rows = m / v;
  VSPARSE_CHECK(dense_vec_rows >= 0 && dense_vec_rows <= vec_rows);
  std::vector<char> dense(static_cast<std::size_t>(vec_rows), 0);
  int placed = 0;
  while (placed < dense_vec_rows) {
    const auto r = static_cast<std::size_t>(
        rng.uniform_u64(static_cast<std::uint64_t>(vec_rows)));
    if (!dense[r]) {
      dense[r] = 1;
      ++placed;
    }
  }
  Cvs out;
  out.rows = m;
  out.cols = k;
  out.v = v;
  out.row_ptr.push_back(0);
  for (int vr = 0; vr < vec_rows; ++vr) {
    if (dense[static_cast<std::size_t>(vr)]) {
      for (int c = 0; c < k; ++c) out.col_idx.push_back(c);
    }
    out.row_ptr.push_back(static_cast<std::int32_t>(out.col_idx.size()));
  }
  out.values.resize(out.col_idx.size() * static_cast<std::size_t>(v));
  for (half_t& h : out.values) h = half_t(rng.uniform_float(0.5f, 1.5f));
  return out;
}

}  // namespace vsparse

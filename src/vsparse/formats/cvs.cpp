#include "vsparse/formats/cvs.hpp"

#include "vsparse/serve/error.hpp"

namespace vsparse {

// Encoding invariants are classified malformed-format errors: a bad
// CVS fails every kernel the same way, so the serving layer rejects it
// outright instead of walking the degradation ladder.
#define CVS_CHECK(cond) \
  VSPARSE_CHECK_RAISE(cond, ErrorCode::kMalformedFormat, "formats.cvs", \
                      "cvs: encoding invariant violated: " #cond)

void Cvs::validate() const {
  CVS_CHECK(v == 1 || v == 2 || v == 4 || v == 8);
  CVS_CHECK(rows % v == 0);
  CVS_CHECK(static_cast<int>(row_ptr.size()) == vec_rows() + 1);
  CVS_CHECK(row_ptr.front() == 0);
  CVS_CHECK(row_ptr.back() == nnz_vectors());
  CVS_CHECK(values.size() ==
            col_idx.size() * static_cast<std::size_t>(v));
  for (int r = 0; r < vec_rows(); ++r) {
    CVS_CHECK(row_ptr[static_cast<std::size_t>(r)] <=
              row_ptr[static_cast<std::size_t>(r) + 1]);
    for (std::int32_t i = row_ptr[static_cast<std::size_t>(r)];
         i < row_ptr[static_cast<std::size_t>(r) + 1]; ++i) {
      const std::int32_t c = col_idx[static_cast<std::size_t>(i)];
      CVS_CHECK(c >= 0 && c < cols);
      if (i > row_ptr[static_cast<std::size_t>(r)]) {
        CVS_CHECK(col_idx[static_cast<std::size_t>(i) - 1] < c);
      }
    }
  }
}

Cvs Cvs::from_dense(const DenseMatrix<half_t>& m, int v) {
  VSPARSE_CHECK(v == 1 || v == 2 || v == 4 || v == 8);
  VSPARSE_CHECK_MSG(m.rows() % v == 0,
                    "rows " << m.rows() << " not divisible by V=" << v);
  Cvs out;
  out.rows = m.rows();
  out.cols = m.cols();
  out.v = v;
  out.row_ptr.reserve(static_cast<std::size_t>(out.vec_rows()) + 1);
  out.row_ptr.push_back(0);
  for (int vr = 0; vr < out.vec_rows(); ++vr) {
    for (int c = 0; c < m.cols(); ++c) {
      bool any = false;
      for (int t = 0; t < v; ++t) {
        if (static_cast<float>(m.at(vr * v + t, c)) != 0.0f) {
          any = true;
          break;
        }
      }
      if (any) {
        out.col_idx.push_back(c);
        for (int t = 0; t < v; ++t) out.values.push_back(m.at(vr * v + t, c));
      }
    }
    out.row_ptr.push_back(static_cast<std::int32_t>(out.col_idx.size()));
  }
  return out;
}

DenseMatrix<half_t> Cvs::to_dense() const {
  DenseMatrix<half_t> m(rows, cols);
  for (int vr = 0; vr < vec_rows(); ++vr) {
    for (std::int32_t i = row_ptr[static_cast<std::size_t>(vr)];
         i < row_ptr[static_cast<std::size_t>(vr) + 1]; ++i) {
      const std::int32_t c = col_idx[static_cast<std::size_t>(i)];
      for (int t = 0; t < v; ++t) {
        m.at(vr * v + t, c) =
            values[static_cast<std::size_t>(i) * static_cast<std::size_t>(v) +
                   static_cast<std::size_t>(t)];
      }
    }
  }
  return m;
}

// The device arrays declare vector-load tail slack (Device::alloc), as
// Sputnik requires its inputs padded: kernels that fetch indices in
// pairs (LDG.64) can issue the last pair of an odd-length row chunk,
// and kernels that stream values in 16 B-aligned LDG.128s (spmm_wmma)
// can issue the final fragment load — up to 7 halves past the last
// value — without tripping the boundscheck's red-zone guard.
CvsDevice to_device(gpusim::Device& dev, const Cvs& m) {
  return CvsDevice{dev.alloc_copy<std::int32_t>(m.row_ptr, "cvs.row_ptr"),
                   dev.alloc_copy<std::int32_t>(m.col_idx, "cvs.col_idx",
                                                /*tail_slack_elems=*/1),
                   dev.alloc_copy<half_t>(m.values, "cvs.values",
                                          /*tail_slack_elems=*/7),
                   m.rows,
                   m.cols,
                   m.v};
}

CvsDeviceT<float> to_device_f32(gpusim::Device& dev, const Cvs& m) {
  std::vector<float> widened(m.values.size());
  for (std::size_t i = 0; i < m.values.size(); ++i) {
    widened[i] = static_cast<float>(m.values[i]);
  }
  return CvsDeviceT<float>{dev.alloc_copy<std::int32_t>(m.row_ptr,
                                                        "cvs.row_ptr"),
                           dev.alloc_copy<std::int32_t>(m.col_idx,
                                                        "cvs.col_idx",
                                                        /*tail_slack_elems=*/1),
                           dev.alloc_copy<float>(widened, "cvs.values",
                                                 /*tail_slack_elems=*/7),
                           m.rows,
                           m.cols,
                           m.v};
}

}  // namespace vsparse

// DLMC .smtx file I/O.
//
// The Deep Learning Matrix Collection [22] distributes its pruned
// weight patterns as ".smtx" text files:
//
//   <rows>, <cols>, <nnz>\n
//   <row_ptr[0]> ... <row_ptr[rows]>\n
//   <col_idx[0]> ... <col_idx[nnz-1]>\n
//
// (pattern only — no values, which is why §7.1.1 randomizes them).
// These readers/writers let a user run the benchmarks on the *actual*
// DLMC matrices when the dataset is available, instead of the
// synthetic substitute in bench/suite.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "vsparse/common/rng.hpp"
#include "vsparse/formats/cvs.hpp"

namespace vsparse {

/// External-artifact guardrails (loader hardening).  DLMC matrices top
/// out around 33K x 33K with a few million nonzeros, so these caps are
/// generous for every real artifact while keeping a corrupt or hostile
/// header (e.g. rows = 2^31-1, which would otherwise size a rows+1
/// reserve) from ballooning allocations.  Violations raise a
/// structured kMalformedFormat before any proportional allocation.
inline constexpr int kMaxSmtxExtent = 1 << 22;            ///< rows / cols
inline constexpr std::int64_t kMaxSmtxNnz = 1 << 26;      ///< nonzeros
inline constexpr std::uint64_t kMaxSmtxFileBytes = std::uint64_t{256} << 20;

/// Pattern-only sparse matrix as stored in a .smtx file.
struct SmtxPattern {
  int rows = 0;
  int cols = 0;
  std::vector<std::int32_t> row_ptr;
  std::vector<std::int32_t> col_idx;
};

/// Parse a .smtx stream.  Throws CheckError on malformed input
/// (inconsistent nnz, out-of-range columns, non-monotone row_ptr).
SmtxPattern read_smtx(std::istream& is);
SmtxPattern read_smtx_file(const std::string& path);

/// Serialize in the same format.
void write_smtx(std::ostream& os, const SmtxPattern& p);
void write_smtx_file(const std::string& path, const SmtxPattern& p);

/// §7.1.1 benchmark construction on a real DLMC pattern: reinterpret
/// the CSR structure as vector-rows of grain V (the pattern's rows
/// become vector-rows, as the paper does) and attach random nonzero
/// values.  The resulting matrix is (rows*v) x cols.
Cvs smtx_to_cvs(const SmtxPattern& p, int v, Rng& rng);

/// Drop a Cvs back to its pattern (for round-trip archival).
SmtxPattern cvs_to_smtx(const Cvs& m);

}  // namespace vsparse
